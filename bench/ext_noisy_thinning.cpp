// Extension experiment (the paper's Section 13 future-work direction):
// "investigate the noisy setting for other balanced allocations processes,
// such as Mean-Thinning or (1+beta)".
//
// Sweeps the adversary power g for
//   * noisy Mean-Thinning (greedy / myopic threshold corruption), and
//   * noisy (1+beta) at beta in {0.25, 0.5, 1.0} (greedy comparison
//     corruption; beta = 1 is exactly g-Bounded),
// against the noise-free versions and the g-Bounded reference, asking the
// paper's question: does the O(g + log n) robustness of Two-Choice carry
// over to weaker-information processes?
#include "bench_common.hpp"

namespace {

using namespace nb;
using namespace nb::bench;

int run(int argc, const char* const* argv) {
  cli_parser cli("ext_noisy_thinning -- future-work extension: noise in Mean-Thinning and "
                 "(1+beta) (paper Section 13).");
  add_standard_flags(cli);
  auto cfg_opt = parse_standard(cli, argc, argv);
  if (!cfg_opt) return 0;
  auto cfg = *cfg_opt;
  warn_model_flags_unsupported(cfg, "ext_noisy_thinning");
  if (cfg.runs_override == 0 && !cfg.paper_mode()) cfg.runs_override = 5;

  const bin_count n =
      cfg.n_override > 0 ? static_cast<bin_count>(cfg.n_override) : bin_count{10000};
  const step_count m = static_cast<step_count>(cfg.m_multiplier) * n;
  const std::vector<load_t> gs = {0, 2, 4, 8, 16, 32};

  std::printf("=== Extension: noise in Mean-Thinning and (1+beta) (n=%s, m=%s, runs=%zu) ===\n\n",
              format_power_of_ten(n).c_str(), format_power_of_ten(m).c_str(), cfg.runs());

  stopwatch total;
  std::vector<cell> cells;
  for (const load_t g : gs) {
    cells.push_back({"thin-greedy",
                     [n, g] { return any_process(noisy_mean_thinning<thinning_greedy>(n, g)); }, m});
    cells.push_back({"thin-myopic",
                     [n, g] { return any_process(noisy_mean_thinning<thinning_random>(n, g)); }, m});
    cells.push_back({"1+b(0.25)",
                     [n, g] {
                       return any_process(noisy_one_plus_beta<greedy_reverser>(n, 0.25, g));
                     },
                     m});
    cells.push_back({"1+b(0.5)",
                     [n, g] {
                       return any_process(noisy_one_plus_beta<greedy_reverser>(n, 0.5, g));
                     },
                     m});
    cells.push_back({"g-bounded", [n, g] { return any_process(g_bounded(n, g)); }, m});
  }
  const auto results = run_cells(cells, cfg.runs(), cfg.seed, cfg.threads);
  constexpr std::size_t kPerG = 5;

  text_table table({"g", "mean-thin greedy", "mean-thin myopic", "(1+0.25) greedy",
                    "(1+0.5) greedy", "two-choice greedy (=g-bounded)"});
  for (std::size_t i = 0; i < gs.size(); ++i) {
    const auto* row = &results[i * kPerG];
    table.add_row({std::to_string(gs[i]), format_fixed(row[0].mean_gap(), 2),
                   format_fixed(row[1].mean_gap(), 2), format_fixed(row[2].mean_gap(), 2),
                   format_fixed(row[3].mean_gap(), 2), format_fixed(row[4].mean_gap(), 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Observations:\n"
      "  * g = 0 rows are the noise-free baselines: Mean-Thinning and (1+beta) start with a\n"
      "    larger gap than Two-Choice (they extract less information per ball).\n"
      "  * All columns grow ~linearly in g: the O(g + log n)-style robustness of Theorem 5.12\n"
      "    empirically carries over to both weaker-information processes -- the paper's\n"
      "    conjectured future-work direction holds in simulation.\n"
      "  * The *additive* damage gap(g) - gap(0) has roughly the same slope in g across the\n"
      "    (1+beta) columns and Two-Choice: corrupting fewer comparisons (small beta) does\n"
      "    not shrink the equilibrium damage -- the adversary's effect is set by the drift\n"
      "    it induces near the top of the load distribution, not by how many steps it\n"
      "    touches.  Only the myopic (random) threshold noise is clearly milder.\n");
  std::printf("[ext_noisy_thinning done in %s]\n", format_duration(total.seconds()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
