// Reproduces Table 12.3: the empirical gap *distribution* of g-Bounded,
// g-Myopic-Comp and sigma-Noisy-Load for g, sigma in {0, 1, 2, 4, 8, 16},
// n in {10^4, 5x10^4, 10^5}, m = 1000 n, printed side by side with the
// paper's published distribution.
//
// Note g = 0 and sigma = 0 are the noise-free Two-Choice process (the
// paper's sigma-Noisy-Load requires sigma > 0; its sigma=0 column equals
// Two-Choice, which is how we reproduce it) -- the param-0 configs map to
// the "two-choice" registry kind.
//
// One orchestrator campaign over the whole (n x process x parameter)
// grid; the aggregators' merged gap histograms ARE the table rows.
#include "bench_common.hpp"

namespace {

using namespace nb;
using namespace nb::bench;

int run(int argc, const char* const* argv) {
  cli_parser cli(
      "table_12_3_gap_distribution -- Table 12.3: empirical gap distributions of the three noisy "
      "processes at g, sigma in {0,1,2,4,8,16}.");
  add_standard_flags(cli);
  auto cfg_opt = parse_standard(cli, argc, argv);
  if (!cfg_opt) return 0;
  auto cfg = *cfg_opt;
  // Distributions need more repetitions than a mean: default to 25 in
  // quick mode (paper mode keeps 100).
  if (cfg.runs_override == 0 && !cfg.paper_mode()) cfg.runs_override = 25;

  const std::vector<int> params = {0, 1, 2, 4, 8, 16};
  const std::vector<std::string> processes = {"g-bounded", "g-myopic", "sigma-noisy-load"};

  std::printf("=== Table 12.3: empirical gap distribution (mode=%s, runs=%zu) ===\n\n",
              cfg.mode.c_str(), cfg.runs());

  const auto bins = cfg.bin_counts();
  std::vector<campaign_config> configs;
  for (const bin_count n : bins) {
    const step_count m = static_cast<step_count>(cfg.m_multiplier) * n;
    for (const auto& process : processes) {
      for (const int p : params) {
        const std::string kind = p == 0 ? "two-choice" : process;
        configs.push_back({process + "/" + std::to_string(p) + "@n=" + std::to_string(n), {}, m,
                           process_spec{kind, n, static_cast<double>(p)}});
      }
    }
  }
  apply_model_flags(configs, cfg);
  stopwatch total;
  const auto campaign = run_campaign(configs, campaign_options_for(cfg));

  std::unique_ptr<csv_writer> csv;
  if (!cfg.csv.empty()) {
    csv = std::make_unique<csv_writer>(
        cfg.csv, std::vector<std::string>{"n", "process", "param", "gap", "count"});
  }

  const std::size_t per_n = processes.size() * params.size();
  for (std::size_t ni = 0; ni < bins.size(); ++ni) {
    const bin_count n = bins[ni];
    const step_count m = static_cast<step_count>(cfg.m_multiplier) * n;
    for (std::size_t pi = 0; pi < processes.size(); ++pi) {
      text_table table({"g/sigma", "measured distribution", "paper distribution"});
      for (std::size_t gi = 0; gi < params.size(); ++gi) {
        const auto& agg = campaign.configs[ni * per_n + pi * params.size() + gi].aggregate;
        const auto& published = paper_distributions();
        const auto it = published.find(paper_key{processes[pi], params[gi], n});
        table.add_row({std::to_string(params[gi]), agg.gap_histogram().to_paper_style(),
                       it != published.end() ? paper_style(it->second) : "-"});
        if (csv) {
          for (const auto& [value, count] : agg.gap_histogram().entries()) {
            csv->write_row({csv_writer::field(static_cast<std::int64_t>(n)), processes[pi],
                            csv_writer::field(static_cast<std::int64_t>(params[gi])),
                            csv_writer::field(value), csv_writer::field(count)});
          }
        }
      }
      std::printf("%s, n = %s, m = %s:\n%s\n", processes[pi].c_str(),
                  format_power_of_ten(n).c_str(), format_power_of_ten(m).c_str(),
                  table.render().c_str());
    }
  }
  report_campaign(campaign, cfg);
  std::printf("[table_12_3 done in %s]\n", format_duration(total.seconds()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
