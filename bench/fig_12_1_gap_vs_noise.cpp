// Reproduces Figure 12.1: average gap of g-Bounded, g-Myopic-Comp (noise
// parameter g = 1..20) and sigma-Noisy-Load (sigma = 1..20) for
// n in {10^4, 5x10^4, 10^5}, m = 1000 n.
//
// One orchestrator campaign over the whole (n x process x parameter) grid:
// the declarative sweep_grid expands to campaign configs, run_campaign
// schedules every cell with derived seeds, and the streaming aggregators
// feed the tables.  --journal/--resume checkpoint the campaign; --json
// archives the aggregate.
//
// Output: one table per n with the measured mean gap (and stddev) per
// process per noise level, plus the paper's mean where Table 12.3 reports
// that configuration; optional CSV of the full series.
#include "bench_common.hpp"

namespace {

using namespace nb;
using namespace nb::bench;

int run(int argc, const char* const* argv) {
  cli_parser cli(
      "fig_12_1_gap_vs_noise -- Figure 12.1: mean gap vs noise parameter for the three noisy "
      "processes (m = 1000 n).");
  add_standard_flags(cli);
  cli.add_int("max-param", 20, "largest g / sigma in the sweep");
  const auto cfg = parse_standard(cli, argc, argv);
  if (!cfg) return 0;
  const auto max_param = cli.get_int("max-param");
  NB_REQUIRE(max_param >= 1, "--max-param must be >= 1");

  std::printf("=== Figure 12.1: average gap vs noise parameter (mode=%s, runs=%zu) ===\n\n",
              cfg->mode.c_str(), cfg->runs());

  sweep_grid grid;
  grid.kinds = {"g-bounded", "g-myopic", "sigma-noisy-load"};
  grid.params.clear();
  const auto params = arithmetic_range(1, max_param);
  for (const auto g : params) grid.params.push_back(static_cast<double>(g));
  grid.bins = cfg->bin_counts();
  grid.m_multiplier = cfg->m_multiplier;
  apply_model_flags(grid, *cfg);

  stopwatch total;
  const auto campaign = run_campaign(grid, campaign_options_for(*cfg));

  std::unique_ptr<csv_writer> csv;
  if (!cfg->csv.empty()) {
    csv = std::make_unique<csv_writer>(
        cfg->csv, std::vector<std::string>{"n", "process", "param", "mean_gap", "stddev", "runs"});
  }

  // expand_grid order: bins outermost, then kinds, then params -- so the
  // block for one n starts at n_index * kinds * params, laid out kind-major.
  const std::size_t per_n = grid.kinds.size() * params.size();
  for (std::size_t ni = 0; ni < grid.bins.size(); ++ni) {
    const bin_count n = grid.bins[ni];
    const step_count m = static_cast<step_count>(cfg->m_multiplier) * n;
    const auto at = [&](std::size_t kind, std::size_t param) -> const cell_aggregator& {
      return campaign.configs[ni * per_n + kind * params.size() + param].aggregate;
    };

    text_table table({"g / sigma", "g-Bounded", "(paper)", "g-Myopic", "(paper)", "s-Noisy-Load",
                      "(paper)"});
    for (std::size_t i = 0; i < params.size(); ++i) {
      const int p = static_cast<int>(params[i]);
      table.add_row({std::to_string(p), format_fixed(at(0, i).mean_gap(), 2),
                     opt_str(paper_mean_for("g-bounded", p, n)),
                     format_fixed(at(1, i).mean_gap(), 2),
                     opt_str(paper_mean_for("g-myopic", p, n)),
                     format_fixed(at(2, i).mean_gap(), 2),
                     opt_str(paper_mean_for("sigma-noisy-load", p, n))});
      if (csv) {
        const char* names[] = {"g-bounded", "g-myopic", "sigma-noisy-load"};
        for (std::size_t k = 0; k < 3; ++k) {
          const auto& agg = at(k, i);
          csv->write_row({csv_writer::field(static_cast<std::int64_t>(n)), names[k],
                          csv_writer::field(static_cast<std::int64_t>(p)),
                          csv_writer::field(agg.gap().mean()),
                          csv_writer::field(agg.gap_stddev()),
                          csv_writer::field(static_cast<std::int64_t>(agg.count()))});
        }
      }
    }
    std::printf("n = %s, m = %s balls:\n%s\n", format_power_of_ten(n).c_str(),
                format_power_of_ten(m).c_str(), table.render().c_str());
  }
  report_campaign(campaign, *cfg);
  std::printf("Expected shape (paper): all three curves increase ~linearly for large "
              "parameters,\nordered g-Bounded >= g-Myopic-Comp >= sigma-Noisy-Load.\n");
  std::printf("[fig_12_1 done in %s]\n", format_duration(total.seconds()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
