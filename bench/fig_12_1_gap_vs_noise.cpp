// Reproduces Figure 12.1: average gap of g-Bounded, g-Myopic-Comp (noise
// parameter g = 1..20) and sigma-Noisy-Load (sigma = 1..20) for
// n in {10^4, 5x10^4, 10^5}, m = 1000 n.
//
// Output: one table per n with the measured mean gap (and stddev) per
// process per noise level, plus the paper's mean where Table 12.3 reports
// that configuration; optional CSV of the full series.
#include "bench_common.hpp"

namespace {

using namespace nb;
using namespace nb::bench;

int run(int argc, const char* const* argv) {
  cli_parser cli(
      "fig_12_1_gap_vs_noise -- Figure 12.1: mean gap vs noise parameter for the three noisy "
      "processes (m = 1000 n).");
  add_standard_flags(cli);
  cli.add_int("max-param", 20, "largest g / sigma in the sweep");
  const auto cfg = parse_standard(cli, argc, argv);
  if (!cfg) return 0;
  const auto max_param = cli.get_int("max-param");
  NB_REQUIRE(max_param >= 1, "--max-param must be >= 1");

  std::printf("=== Figure 12.1: average gap vs noise parameter (mode=%s, runs=%zu) ===\n\n",
              cfg->mode.c_str(), cfg->runs());

  std::unique_ptr<csv_writer> csv;
  if (!cfg->csv.empty()) {
    csv = std::make_unique<csv_writer>(
        cfg->csv, std::vector<std::string>{"n", "process", "param", "mean_gap", "stddev", "runs"});
  }

  stopwatch total;
  for (const bin_count n : cfg->bin_counts()) {
    const step_count m = static_cast<step_count>(cfg->m_multiplier) * n;

    std::vector<cell> cells;
    const auto params = arithmetic_range(1, max_param);
    for (const auto g : params) {
      cells.push_back({"g-bounded", [n, g] { return any_process(g_bounded(n, static_cast<load_t>(g))); }, m});
      cells.push_back(
          {"g-myopic", [n, g] { return any_process(g_myopic_comp(n, static_cast<load_t>(g))); }, m});
      cells.push_back({"sigma-noisy-load",
                       [n, g] {
                         return any_process(
                             sigma_noisy_load(n, rho_gaussian(static_cast<double>(g))));
                       },
                       m});
    }
    const auto results = run_cells(cells, cfg->runs(), cfg->seed, cfg->threads);

    text_table table({"g / sigma", "g-Bounded", "(paper)", "g-Myopic", "(paper)", "s-Noisy-Load",
                      "(paper)"});
    for (std::size_t i = 0; i < params.size(); ++i) {
      const auto& bounded_res = results[3 * i];
      const auto& myopic_res = results[3 * i + 1];
      const auto& noisy_res = results[3 * i + 2];
      const int p = static_cast<int>(params[i]);
      table.add_row({std::to_string(p), format_fixed(bounded_res.mean_gap(), 2),
                     opt_str(paper_mean_for("g-bounded", p, n)),
                     format_fixed(myopic_res.mean_gap(), 2),
                     opt_str(paper_mean_for("g-myopic", p, n)),
                     format_fixed(noisy_res.mean_gap(), 2),
                     opt_str(paper_mean_for("sigma-noisy-load", p, n))});
      if (csv) {
        const repeat_result* rs[] = {&bounded_res, &myopic_res, &noisy_res};
        const char* names[] = {"g-bounded", "g-myopic", "sigma-noisy-load"};
        for (int k = 0; k < 3; ++k) {
          const auto s = rs[k]->gap_summary();
          csv->write_row({csv_writer::field(static_cast<std::int64_t>(n)), names[k],
                          csv_writer::field(static_cast<std::int64_t>(p)),
                          csv_writer::field(s.mean), csv_writer::field(s.stddev),
                          csv_writer::field(static_cast<std::int64_t>(s.count))});
        }
      }
    }
    std::printf("n = %s, m = %s balls:\n%s\n", format_power_of_ten(n).c_str(),
                format_power_of_ten(m).c_str(), table.render().c_str());
  }
  std::printf("Expected shape (paper): all three curves increase ~linearly for large "
              "parameters,\nordered g-Bounded >= g-Myopic-Comp >= sigma-Noisy-Load.\n");
  std::printf("[fig_12_1 done in %s]\n", format_duration(total.seconds()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
