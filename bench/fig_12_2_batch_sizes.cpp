// Reproduces Figure 12.2: the average gap of b-Batch for batch sizes
// b in {5, 10, 50, 100, ..., 10^5, 5x10^5} with n = 10^4 and m = 1000 n,
// against the One-Choice gap with m = b balls (the first-batch lower bound
// of Observation 11.6), plus the theory column
// log n / log((4n/b) log n) (Corollary 10.4).
//
// One orchestrator campaign: each batch size contributes a b-Batch config
// (m = 1000 n) and a One-Choice config (m = b), both registry-backed, so
// the campaign is journal-able and resumable (--journal/--resume).
#include <cmath>

#include "bench_common.hpp"
#include "core/theory/bounds.hpp"

namespace {

using namespace nb;
using namespace nb::bench;

int run(int argc, const char* const* argv) {
  cli_parser cli(
      "fig_12_2_batch_sizes -- Figure 12.2: mean gap of b-Batch vs batch size, with the "
      "One-Choice(m=b) baseline.");
  add_standard_flags(cli);
  const auto cfg = parse_standard(cli, argc, argv);
  if (!cfg) return 0;

  // The paper's Figure 12.2 uses a single n = 10^4; honor --n but default
  // to that even in paper mode.
  const bin_count n =
      cfg->n_override > 0 ? static_cast<bin_count>(cfg->n_override) : bin_count{10000};
  const step_count m = static_cast<step_count>(cfg->m_multiplier) * n;
  const auto batch_sizes = one_five_decades(5, 500000);

  std::printf("=== Figure 12.2: b-Batch gap vs batch size (n = %s, m = %s, runs=%zu) ===\n\n",
              format_power_of_ten(n).c_str(), format_power_of_ten(m).c_str(), cfg->runs());

  std::vector<campaign_config> configs;
  for (const auto b : batch_sizes) {
    configs.push_back({"b-batch/" + std::to_string(b), {}, m,
                       process_spec{"b-batch", n, static_cast<double>(b)}});
    // One-Choice ignores the parameter; keep b as metadata so the JSON /
    // CSV rows stay self-describing.
    configs.push_back({"one-choice/" + std::to_string(b), {}, b,
                       process_spec{"one-choice", n, static_cast<double>(b)}});
  }
  apply_model_flags(configs, *cfg);
  stopwatch total;
  const auto campaign = run_campaign(configs, campaign_options_for(*cfg));

  std::unique_ptr<csv_writer> csv;
  if (!cfg->csv.empty()) {
    csv = std::make_unique<csv_writer>(
        cfg->csv,
        std::vector<std::string>{"b", "batch_gap", "one_choice_gap", "theory_shape"});
  }

  text_table table({"b", "b-Batch gap", "(paper)", "One-Choice(m=b) gap", "max load",
                    "(paper max)", "theory log n/log((4n/b)log n)"});
  for (std::size_t i = 0; i < batch_sizes.size(); ++i) {
    const auto b = batch_sizes[i];
    const double batch_gap = campaign.configs[2 * i].aggregate.mean_gap();
    const auto& one = campaign.configs[2 * i + 1].aggregate;
    const double one_gap = one.mean_gap();
    // The paper's One-Choice series reports the *max load* = gap + b/n
    // (see EXPERIMENTS.md); print both for an apples-to-apples column.
    const double one_max = one.max_load().mean();
    const double shape =
        b <= static_cast<std::int64_t>(n * std::log(n))
            ? theory::batch_gap(n, static_cast<double>(b))
            : static_cast<double>(b) / n;
    table.add_row({format_power_of_ten(b), format_fixed(batch_gap, 2),
                   opt_str(paper_mean_for("b-batch", static_cast<int>(b), n)),
                   format_fixed(one_gap, 2), format_fixed(one_max, 2),
                   opt_str(paper_mean_for("one-choice", static_cast<int>(b), n)),
                   format_fixed(shape, 2)});
    if (csv) {
      csv->write_row({csv_writer::field(b), csv_writer::field(batch_gap),
                      csv_writer::field(one_gap), csv_writer::field(shape)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  report_campaign(campaign, *cfg);
  std::printf(
      "Expected shape (paper): flat Two-Choice-like gap for small b, then the b-Batch curve\n"
      "converges to the One-Choice(m=b) curve as b grows past n (batching forfeits the power\n"
      "of two choices within a batch); for b >= n log n both scale as Theta(b/n).\n");
  std::printf("[fig_12_2 done in %s]\n", format_duration(total.seconds()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
