// Shape-checks every *upper bound* row of Table 2.3 that this repo can
// exercise at laptop scale:
//
//   claim 1  g-Adv-Comp Gap = O(g + log n)        -- linear fit of gap vs g
//   claim 2  g-Adv-Comp Gap = O(g/log g loglog n) -- ratio stability, small g
//   claim 3  b-Batch   Gap = Theta(log n/log((4n/b)log n)) at b = n
//                                                 -- ratio stability across n
//   claim 4  b-Batch   Gap = Theta(b/n) for b >= n log n
//                                                 -- linear fit of gap vs b/n
//   claim 5  sigma-Noisy-Load between the paper's lower and upper bounds
//
// The measured gap cannot be expected to match the Theta-expressions with
// constant 1; what is checked is the *shape*: high R^2 for the linear
// claims and a bounded min/max ratio for the ratio claims.
#include "bench_common.hpp"

#include <cmath>

#include "core/theory/bounds.hpp"

namespace {

using namespace nb;
using namespace nb::bench;

struct verdict_row {
  std::string claim;
  std::string configuration;
  std::string statistic;
  std::string value;
  bool ok = false;
};

int run(int argc, const char* const* argv) {
  cli_parser cli(
      "table_2_3_bounds_check -- verifies the asymptotic *shapes* of the paper's Table 2.3 upper "
      "bounds against measured gaps.");
  add_standard_flags(cli);
  auto cfg_opt = parse_standard(cli, argc, argv);
  if (!cfg_opt) return 0;
  auto cfg = *cfg_opt;
  warn_model_flags_unsupported(cfg, "table_2_3_bounds_check");
  if (cfg.runs_override == 0 && !cfg.paper_mode()) cfg.runs_override = 5;

  stopwatch total;
  std::vector<verdict_row> verdicts;

  // --- Claim 1: Gap(m) = O(g + log n), Theorem 5.12.  For g >> log n the
  // curve is linear in g; fit gap vs g for the strongest shipped adversary.
  {
    const bin_count n = 4096;
    const step_count m = 500LL * n;
    std::vector<double> gs;
    std::vector<double> gaps;
    std::vector<cell> cells;
    for (const load_t g : {8, 16, 32, 64, 128}) {
      gs.push_back(g);
      cells.push_back({"g", [n, g] { return any_process(g_bounded(n, g)); }, m});
    }
    const auto results = run_cells(cells, cfg.runs(), cfg.seed, cfg.threads);
    for (const auto& r : results) gaps.push_back(r.mean_gap());
    const auto fit = fit_linear(gs, gaps);
    std::printf("claim 1 (Thm 5.12) gap vs g at n=%u: ", n);
    for (std::size_t i = 0; i < gs.size(); ++i) std::printf("g=%g->%.1f ", gs[i], gaps[i]);
    std::printf("\n  linear fit: slope=%.2f intercept=%.2f R^2=%.4f\n", fit.slope, fit.intercept,
                fit.r_squared);
    verdicts.push_back({"O(g + log n) [Thm 5.12]", "g-Bounded, n=4096, g=8..128",
                        "R^2 of linear fit", format_fixed(fit.r_squared, 4),
                        fit.r_squared > 0.98 && fit.slope > 0.5 && fit.slope < 3.0});
  }

  // --- Claim 2: Gap = O(g/log g * loglog n) for g <= log n, Theorem 9.2.
  // At fixed moderate n, the ratio gap / (g/log g * loglog n + g) must stay
  // within a constant band across g (we add +g: Corollary 11.4's tight
  // combined shape, since constants in either regime differ).
  {
    const bin_count n = 65536;
    const step_count m = 200LL * n;
    std::vector<double> ratios;
    std::vector<cell> cells;
    const std::vector<load_t> gs = {2, 3, 4, 6, 8, 11};  // up to ~log n
    for (const load_t g : gs) {
      cells.push_back({"g", [n, g] { return any_process(g_bounded(n, g)); }, m});
    }
    const auto results = run_cells(cells, cfg.runs(), cfg.seed, cfg.threads);
    std::printf("claim 2 (Thm 9.2) gap/(g/log g*loglog n + g) at n=%u:", n);
    for (std::size_t i = 0; i < gs.size(); ++i) {
      const double bound = theory::adv_comp_tight_gap(n, gs[i]);
      const double ratio = results[i].mean_gap() / bound;
      ratios.push_back(ratio);
      std::printf(" g=%d->%.2f", gs[i], ratio);
    }
    std::printf("\n");
    const auto [mn, mx] = std::minmax_element(ratios.begin(), ratios.end());
    verdicts.push_back({"O(g/log g loglog n) [Thm 9.2]", "g-Bounded, n=2^16, g=2..11",
                        "ratio max/min", format_fixed(*mx / *mn, 2), (*mx / *mn) < 2.5});
  }

  // --- Claim 3: b-Batch with b = n: Gap = Theta(log n / log log n)
  // (Theorem 10.2).  The ratio to the theory shape must be flat across n.
  {
    std::vector<double> ratios;
    std::vector<cell> cells;
    const std::vector<bin_count> ns = {1024, 4096, 16384, 65536};
    for (const bin_count n : ns) {
      cells.push_back(
          {"n", [n] { return any_process(b_batch(n, n)); }, 300LL * static_cast<step_count>(n)});
    }
    const auto results = run_cells(cells, cfg.runs(), cfg.seed, cfg.threads);
    std::printf("claim 3 (Thm 10.2) b-Batch b=n, gap/theory across n:");
    for (std::size_t i = 0; i < ns.size(); ++i) {
      const double bound = theory::batch_gap(ns[i], ns[i]);
      const double ratio = results[i].mean_gap() / bound;
      ratios.push_back(ratio);
      std::printf(" n=%u->%.2f", ns[i], ratio);
    }
    std::printf("\n");
    const auto [mn, mx] = std::minmax_element(ratios.begin(), ratios.end());
    verdicts.push_back({"Theta(log n/loglog n) [Thm 10.2]", "b-Batch, b=n, n=2^10..2^16",
                        "ratio max/min", format_fixed(*mx / *mn, 2), (*mx / *mn) < 2.0});
  }

  // --- Claim 4: b-Batch with b >= n log n: Gap = Theta(b/n) [LS22a rows].
  {
    const bin_count n = 1024;
    std::vector<double> xs;  // b/n
    std::vector<double> gaps;
    std::vector<cell> cells;
    for (const step_count b : {16LL * n, 32LL * n, 64LL * n, 128LL * n}) {
      xs.push_back(static_cast<double>(b) / n);
      // Measure at a batch boundary (the gap oscillates by Theta(b/n)
      // within a batch) after at least 16 batches / 500n balls.
      const auto batches = std::max<step_count>(16, (500LL * n + b - 1) / b);
      cells.push_back({"b", [n, b] { return any_process(b_batch(n, b)); }, batches * b});
    }
    const auto results = run_cells(cells, cfg.runs(), cfg.seed, cfg.threads);
    for (const auto& r : results) gaps.push_back(r.mean_gap());
    const auto fit = fit_linear(xs, gaps);
    std::printf("claim 4 (b >= n log n) gap vs b/n at n=%u: ", n);
    for (std::size_t i = 0; i < xs.size(); ++i) std::printf("b/n=%g->%.1f ", xs[i], gaps[i]);
    std::printf("\n  linear fit: slope=%.2f R^2=%.4f\n", fit.slope, fit.r_squared);
    verdicts.push_back({"Theta(b/n) [LS22a]", "b-Batch, n=1024, b/n=16..128", "R^2 of linear fit",
                        format_fixed(fit.r_squared, 4),
                        fit.r_squared > 0.98 && fit.slope > 0.2 && fit.slope < 3.0});
  }

  // --- Claim 5: sigma-Noisy-Load between Omega(min{sigma^{4/5},
  // sigma^{2/5} sqrt(log n)}) and O(sigma sqrt(log n) log(n sigma)).
  {
    const bin_count n = 10000;
    const step_count m = 1000LL * n;
    std::vector<cell> cells;
    const std::vector<double> sigmas = {2, 4, 8, 16, 32};
    for (const double s : sigmas) {
      cells.push_back(
          {"s", [n, s] { return any_process(sigma_noisy_load(n, rho_gaussian(s))); }, m});
    }
    const auto results = run_cells(cells, cfg.runs(), cfg.seed, cfg.threads);
    bool all_in_band = true;
    std::printf("claim 5 (Prop 10.1/11.5) sigma-Noisy-Load bands at n=%u:\n", n);
    for (std::size_t i = 0; i < sigmas.size(); ++i) {
      const double lower = 0.2 * theory::sigma_noisy_load_lower(n, sigmas[i]);
      const double upper = theory::sigma_noisy_load_upper(n, sigmas[i]);
      const double gap = results[i].mean_gap();
      const bool ok = gap >= lower && gap <= upper;
      all_in_band = all_in_band && ok;
      std::printf("  sigma=%-4g gap=%-7.2f band=[%.2f, %.2f] %s\n", sigmas[i], gap, lower, upper,
                  ok ? "ok" : "VIOLATED");
    }
    verdicts.push_back({"sigma bounds [Prop 10.1 + 11.5]", "sigma=2..32, n=10^4",
                        "all gaps within band", all_in_band ? "yes" : "no", all_in_band});
  }

  text_table table({"claim", "configuration", "statistic", "value", "verdict"});
  bool all_ok = true;
  for (const auto& v : verdicts) {
    table.add_row({v.claim, v.configuration, v.statistic, v.value, v.ok ? "OK" : "FAIL"});
    all_ok = all_ok && v.ok;
  }
  std::printf("\n=== Table 2.3 upper-bound shape checks ===\n%s\n", table.render().c_str());
  std::printf("[table_2_3_bounds_check done in %s, overall: %s]\n",
              format_duration(total.seconds()).c_str(), all_ok ? "OK" : "FAIL");
  return all_ok ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
