// Ablation: outdated information (Section 10.2).
//
// Sweeps the delay parameter tau across the regimes of Theorem 10.2 /
// Corollary 10.4 / Remark 10.6 and compares:
//   * tau-Delay with the adversarial sliding-window reporter (the setting
//     the upper bounds are proved for),
//   * tau-Delay with benign reporters (oldest value / random in window),
//   * b-Batch with b = tau (the fully synchronized special case).
//
// The paper's point: synchronized snapshots are *not* needed -- the
// asynchronous adversarial variant has the same Theta(log n / log((4n/tau)
// log n)) gap for tau around n.
#include "bench_common.hpp"

#include <cmath>

#include "core/theory/bounds.hpp"

namespace {

using namespace nb;
using namespace nb::bench;

int run(int argc, const char* const* argv) {
  cli_parser cli("ablation_delay -- tau-Delay strategies vs b-Batch across the tau regimes of "
                 "Section 10.2.");
  add_standard_flags(cli);
  auto cfg_opt = parse_standard(cli, argc, argv);
  if (!cfg_opt) return 0;
  auto cfg = *cfg_opt;
  warn_model_flags_unsupported(cfg, "ablation_delay");
  if (cfg.runs_override == 0 && !cfg.paper_mode()) cfg.runs_override = 5;

  const bin_count n = cfg.n_override > 0 ? static_cast<bin_count>(cfg.n_override) : bin_count{4096};
  const step_count m = 300LL * n;
  const auto nlogn = static_cast<step_count>(n * std::log(n));
  // tau regimes: sub-polynomial (Remark 10.6), around n (Thm 10.2), up to
  // n log n (Cor 10.4) and past it (the Theta(b/n) regime).
  const std::vector<step_count> taus = {n / 64, n / 8, n, 4LL * n, nlogn, 4 * nlogn};

  std::printf("=== Delay ablation (n=%s, m=%s, runs=%zu) ===\n\n", format_power_of_ten(n).c_str(),
              format_power_of_ten(m).c_str(), cfg.runs());

  stopwatch total;
  std::vector<cell> cells;
  for (const auto tau : taus) {
    cells.push_back({"adversarial",
                     [n, tau] { return any_process(tau_delay<delay_adversarial>(n, tau)); }, m});
    cells.push_back(
        {"oldest", [n, tau] { return any_process(tau_delay<delay_oldest>(n, tau)); }, m});
    cells.push_back(
        {"random", [n, tau] { return any_process(tau_delay<delay_random>(n, tau)); }, m});
    cells.push_back({"batch", [n, tau] { return any_process(b_batch(n, tau)); }, m});
  }
  const auto results = run_cells(cells, cfg.runs(), cfg.seed, cfg.threads);

  text_table table({"tau (= b)", "delay adversarial", "delay oldest", "delay random",
                    "b-batch", "theory shape"});
  for (std::size_t i = 0; i < taus.size(); ++i) {
    const auto* row = &results[4 * i];
    table.add_row({std::to_string(taus[i]), format_fixed(row[0].mean_gap(), 2),
                   format_fixed(row[1].mean_gap(), 2), format_fixed(row[2].mean_gap(), 2),
                   format_fixed(row[3].mean_gap(), 2),
                   format_fixed(theory::batch_gap(n, static_cast<double>(taus[i])), 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Expected shape: all four columns grow together with tau; the adversarial reporter\n"
      "dominates the benign ones but stays within a constant factor of b-Batch (Thm 10.2:\n"
      "synchronized updates are not essential); past tau = n log n everything is ~ tau/n.\n");
  std::printf("[ablation_delay done in %s]\n", format_duration(total.seconds()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
