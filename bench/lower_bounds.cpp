// Reproduces the lower-bound experiments of Section 11 (Table 11.1):
//
//   Obs  11.1  every g-Adv-Comp instance >= Two-Choice's gap
//   Prop 11.2i  g-Myopic-Comp: Gap(ng/2) >= g/35 for 2 <= g <= 6 log n
//   Prop 11.2ii g-Myopic-Comp: Gap(ng^2/(32 log n)) >= g/60 for g >= 6 log n
//   Thm  11.3  g-Myopic-Comp: Gap = Omega(g/log g loglog n) (magnitude check)
//   Prop 11.5  sigma-Noisy-Load: Gap(sigma^{4/5} n/2) >= min{sigma^{4/5}/2,
//              sigma^{2/5} sqrt(log n)/30} for sigma >= 32
//   Obs  11.6  the first batch of b-Batch is exactly One-Choice with b balls
#include "bench_common.hpp"

#include <cmath>

#include "core/theory/bounds.hpp"

namespace {

using namespace nb;
using namespace nb::bench;

int run(int argc, const char* const* argv) {
  cli_parser cli("lower_bounds -- Section 11 lower-bound experiments (Table 11.1).");
  add_standard_flags(cli);
  auto cfg_opt = parse_standard(cli, argc, argv);
  if (!cfg_opt) return 0;
  auto cfg = *cfg_opt;
  warn_model_flags_unsupported(cfg, "lower_bounds");
  if (cfg.runs_override == 0 && !cfg.paper_mode()) cfg.runs_override = 10;

  const bin_count n =
      cfg.n_override > 0 ? static_cast<bin_count>(cfg.n_override) : bin_count{10000};
  const double logn = std::log(static_cast<double>(n));
  stopwatch total;
  bool all_ok = true;
  text_table table({"bound", "configuration", "measured gap", "lower bound", "verdict"});

  // --- Observation 11.1: majorization floor.
  {
    const step_count m = 200LL * n;
    std::vector<cell> cells = {
        {"two-choice", [n] { return any_process(two_choice(n)); }, m},
        {"g-bounded", [n] { return any_process(g_bounded(n, 8)); }, m},
        {"g-myopic", [n] { return any_process(g_myopic_comp(n, 8)); }, m},
        {"g-adv-boost", [n] { return any_process(g_adv_comp<overload_booster>(n, 8)); }, m},
        {"g-adv-index", [n] { return any_process(g_adv_comp<index_bias>(n, 8)); }, m},
    };
    const auto results = run_cells(cells, cfg.runs(), cfg.seed, cfg.threads);
    const double floor = results[0].mean_gap();
    for (std::size_t i = 1; i < cells.size(); ++i) {
      const double gap = results[i].mean_gap();
      const bool ok = gap + 0.5 >= floor;  // statistical slack
      all_ok = all_ok && ok;
      table.add_row({"Obs 11.1 (>= Two-Choice)", cells[i].label + " g=8",
                     format_fixed(gap, 2), format_fixed(floor, 2) + " (Two-Choice)",
                     ok ? "OK" : "FAIL"});
    }
  }

  // --- Proposition 11.2 (i): Gap(ng/2) >= g/35.
  for (const load_t g : {8, 16, 32}) {
    const auto m = static_cast<step_count>(n) * g / 2;
    const auto results = run_cells(
        {{"m", [n, g] { return any_process(g_myopic_comp(n, g)); }, m}}, cfg.runs(), cfg.seed,
        cfg.threads);
    const double gap = results[0].mean_gap();
    const double bound = static_cast<double>(g) / 35.0;
    const bool ok = gap >= bound;
    all_ok = all_ok && ok;
    table.add_row({"Prop 11.2(i) Omega(g)", "g-Myopic g=" + std::to_string(g) + ", m=ng/2",
                   format_fixed(gap, 2), format_fixed(bound, 2), ok ? "OK" : "FAIL"});
  }

  // --- Proposition 11.2 (ii): large g regime, m = n g^2/(32 log n).
  {
    const auto g = static_cast<load_t>(std::ceil(6.0 * logn));
    const auto m = static_cast<step_count>(static_cast<double>(n) * g * g / (32.0 * logn));
    const auto results = run_cells(
        {{"m", [n, g] { return any_process(g_myopic_comp(n, g)); }, m}}, cfg.runs(), cfg.seed,
        cfg.threads);
    const double gap = results[0].mean_gap();
    const double bound = static_cast<double>(g) / 60.0;
    const bool ok = gap >= bound;
    all_ok = all_ok && ok;
    table.add_row({"Prop 11.2(ii) Omega(g)",
                   "g-Myopic g=" + std::to_string(g) + "=6log n, m=ng^2/(32log n)",
                   format_fixed(gap, 2), format_fixed(bound, 2), ok ? "OK" : "FAIL"});
  }

  // --- Theorem 11.3 magnitude: at m = 1000n the myopic gap exceeds
  // (1/8) g/log g loglog n (the theorem's constant at its own m = n*l; the
  // heavily loaded gap only grows, Observation 11.1 + majorization).
  for (const load_t g : {4, 8, 16}) {
    const step_count m = 1000LL * n;
    const auto results = run_cells(
        {{"m", [n, g] { return any_process(g_myopic_comp(n, g)); }, m}}, cfg.runs(), cfg.seed,
        cfg.threads);
    const double gap = results[0].mean_gap();
    const double bound = 0.125 * theory::adv_comp_sublinear_bound(n, g);
    const bool ok = gap >= bound;
    all_ok = all_ok && ok;
    table.add_row({"Thm 11.3 Omega(g/log g loglog n)",
                   "g-Myopic g=" + std::to_string(g) + ", m=1000n", format_fixed(gap, 2),
                   format_fixed(bound, 2), ok ? "OK" : "FAIL"});
  }

  // --- Proposition 11.5 (ii): sigma >= 32, m = sigma^{4/5} n / 2.
  for (const double sigma : {32.0, 64.0}) {
    const auto m = static_cast<step_count>(0.5 * std::pow(sigma, 0.8) * n);
    const auto results = run_cells(
        {{"m", [n, sigma] { return any_process(sigma_noisy_load(n, rho_gaussian(sigma))); }, m}},
        cfg.runs(), cfg.seed, cfg.threads);
    const double gap = results[0].mean_gap();
    const double bound =
        std::min(0.5 * std::pow(sigma, 0.8), std::pow(sigma, 0.4) * std::sqrt(logn) / 30.0);
    const bool ok = gap >= bound;
    all_ok = all_ok && ok;
    table.add_row({"Prop 11.5(ii) sigma lower bound",
                   "sigma=" + std::to_string(static_cast<int>(sigma)) + ", m=sigma^0.8 n/2",
                   format_fixed(gap, 2), format_fixed(bound, 2), ok ? "OK" : "FAIL"});
  }

  // --- Observation 11.6: Gap(b) of b-Batch == One-Choice with b balls.
  {
    const step_count b = n;
    std::vector<cell> cells = {
        {"b-batch first batch", [n, b] { return any_process(b_batch(n, b)); }, b},
        {"one-choice", [n] { return any_process(one_choice(n)); }, b},
    };
    const auto results = run_cells(cells, cfg.runs(), cfg.seed, cfg.threads);
    const double batch_gap = results[0].mean_gap();
    const double one_gap = results[1].mean_gap();
    const bool ok = std::fabs(batch_gap - one_gap) < 0.75;
    all_ok = all_ok && ok;
    table.add_row({"Obs 11.6 first batch == One-Choice", "b=n=" + std::to_string(n),
                   format_fixed(batch_gap, 2), format_fixed(one_gap, 2) + " (One-Choice)",
                   ok ? "OK" : "FAIL"});
  }

  std::printf("=== Section 11 lower-bound experiments (n=%s, runs=%zu) ===\n%s\n",
              format_power_of_ten(n).c_str(), cfg.runs(), table.render().c_str());
  std::printf("[lower_bounds done in %s, overall: %s]\n", format_duration(total.seconds()).c_str(),
              all_ok ? "OK" : "FAIL");
  return all_ok ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
