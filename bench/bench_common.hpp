// Shared infrastructure for the reproduction bench binaries:
//   * standard CLI (mode quick/paper, overrides for n/runs/seed/threads,
//     campaign journal/resume/JSON knobs)
//   * campaign_options_for(): maps the standard flags onto the experiment
//     orchestrator (src/exp/campaign.hpp), which owns cell scheduling --
//     the flattened (configuration, repetition) work queue, per-cell
//     derived seeds, engine routing, journaling and streaming aggregation
//   * the paper's published results (Tables 12.3 and 12.4) embedded for
//     side-by-side comparison
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "noisebalance.hpp"

namespace nb::bench {

/// Standard configuration shared by every bench binary.
struct bench_config {
  std::string mode = "quick";       // quick | paper
  std::int64_t n_override = 0;      // 0 = per-mode default
  std::int64_t runs_override = 0;   // 0 = per-mode default
  std::int64_t m_multiplier = 1000; // m = multiplier * n (the paper's ratio)
  std::uint64_t seed = 1;
  std::size_t threads = 0;          // 0 = hardware concurrency
  std::size_t threads_per_run = 0;  // 0 = serial runs; > 0 = intra-run shard engine
  std::size_t shards = 16;          // shard count (sampling contract)
  std::string kernel = "off";       // off | scalar | sse2 | avx2 | auto | simd
  std::size_t lanes = 8;            // kernel lanes (sampling contract)
  bool hugepages = false;           // THP request (execution-only)
  std::string weighting = "unit";   // ball-weighting spec (make_weighting)
  std::string sampler = "uniform";  // bin-sampler spec (make_sampler)
  std::string departures = "none";  // departure-channel spec (make_departures)
  std::int64_t churn = 0;           // churn occupancy override (0 = m)
  std::int64_t churn_telemetry = 0; // churn telemetry cadence in pairs
  std::string csv;                  // optional CSV output path ("" = none)
  std::string journal;              // optional campaign JSONL journal ("" = none)
  bool resume = false;              // replay --journal, run only missing cells
  std::string json;                 // optional campaign aggregate JSON ("" = none)

  [[nodiscard]] bool paper_mode() const { return mode == "paper"; }

  /// The kernel backend the --kernel flag selected, or nullopt for "off".
  [[nodiscard]] std::optional<kernel_isa> kernel_backend() const {
    return kernel_isa_from_name(kernel);
  }

  [[nodiscard]] std::vector<bin_count> bin_counts() const {
    if (n_override > 0) return {static_cast<bin_count>(n_override)};
    if (paper_mode()) return {10000, 50000, 100000};
    return {10000};
  }

  [[nodiscard]] std::size_t runs() const {
    if (runs_override > 0) return static_cast<std::size_t>(runs_override);
    return paper_mode() ? 100 : 10;
  }
};

/// Registers the standard flags on `cli`.  The engine-selection and
/// allocation-model families come from util/cli's shared registration, so
/// every binary spells them identically and a new flag lands once.
inline void add_standard_flags(cli_parser& cli) {
  cli.add_string("mode", "quick", "quick (n=10^4, 10 runs) or paper (n up to 10^5, 100 runs)");
  cli.add_int("n", 0, "override the number of bins (0 = per-mode default)");
  cli.add_int("runs", 0, "override the repetition count (0 = per-mode default)");
  cli.add_int("m-mult", 1000, "balls per bin: m = m-mult * n (paper uses 1000)");
  cli.add_int("seed", 1, "master seed; every run derives its own stream");
  cli.add_int("threads", 0, "worker threads (0 = hardware concurrency)");
  add_engine_flags(cli);
  add_model_flags(cli);
  cli.add_string("csv", "", "also write results to this CSV file");
  cli.add_string("journal", "",
                 "append-only JSONL cell journal for checkpoint/resume (see README "
                 "\"Running experiment campaigns\")");
  cli.add_bool("resume", false,
               "replay --journal and run only the cells it does not already contain");
  cli.add_string("json", "", "also write the campaign aggregate JSON to this file");
}

/// Parses standard flags into a bench_config.  Returns nullopt on --help.
inline std::optional<bench_config> parse_standard(cli_parser& cli, int argc,
                                                  const char* const* argv) {
  if (!cli.parse(argc, argv)) return std::nullopt;
  bench_config cfg;
  cfg.mode = cli.get_string("mode");
  NB_REQUIRE(cfg.mode == "quick" || cfg.mode == "paper", "--mode must be quick or paper");
  cfg.n_override = cli.get_int("n");
  cfg.runs_override = cli.get_int("runs");
  cfg.m_multiplier = cli.get_int("m-mult");
  NB_REQUIRE(cfg.m_multiplier >= 1, "--m-mult must be >= 1");
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  NB_REQUIRE(cli.get_int("threads") >= 0, "--threads must be >= 0");
  cfg.threads = static_cast<std::size_t>(cli.get_int("threads"));
  const engine_flag_values engine = get_engine_flags(cli);
  cfg.threads_per_run = static_cast<std::size_t>(engine.threads_per_run);
  cfg.shards = static_cast<std::size_t>(engine.shards);
  cfg.kernel = engine.kernel;
  NB_REQUIRE(cfg.kernel == "off" || kernel_isa_from_name(cfg.kernel).has_value(),
             "--kernel must be off, scalar, sse2, avx2, avx512, neon, auto or simd");
  NB_REQUIRE(engine.lanes <= static_cast<std::int64_t>(kernel_max_lanes),
             "--lanes must be in [1, kernel_max_lanes]");
  cfg.lanes = static_cast<std::size_t>(engine.lanes);
  cfg.hugepages = engine.hugepages;
  if (cfg.hugepages) set_hugepages_enabled(true);
  const model_flag_values model = get_model_flags(cli);
  cfg.weighting = model.weighting;
  cfg.sampler = model.sampler;
  cfg.departures = model.churn.departures;
  cfg.churn = model.churn.churn;
  cfg.churn_telemetry = model.churn.telemetry;
  // Parse-validate the weighting and departure specs up front; the sampler
  // is built per process (its table depends on n), so its spec is
  // validated on first use.
  (void)make_weighting(cfg.weighting);
  (void)make_departures(cfg.departures);
  cfg.csv = cli.get_string("csv");
  cfg.journal = cli.get_string("journal");
  cfg.resume = cli.get_bool("resume");
  NB_REQUIRE(!cfg.resume || !cfg.journal.empty(), "--resume needs --journal");
  cfg.json = cli.get_string("json");
  return cfg;
}

/// Maps the standard bench flags onto orchestrator options.  `repeats`
/// comes from the config's runs() (quick/paper default or --runs).
inline campaign_options campaign_options_for(const bench_config& cfg) {
  campaign_options opt;
  opt.repeats = cfg.runs();
  opt.seed = cfg.seed;
  opt.threads = cfg.threads;
  engine_config engine;
  engine.threads_per_run = cfg.threads_per_run;
  engine.shards = cfg.shards;
  engine.use_kernel = cfg.kernel_backend().has_value() && cfg.threads_per_run == 0;
  engine.lanes = cfg.lanes;
  engine.isa = cfg.kernel_backend().value_or(kernel_isa::auto_detect);
  opt.set_engine(engine);
  opt.journal_path = cfg.journal;
  opt.resume = cfg.resume;
  opt.churn_telemetry_every = static_cast<step_count>(cfg.churn_telemetry);
  return opt;
}

/// Applies the --weighting/--sampler flags to a declarative grid: the
/// model axes become single-element dimensions, so the expansion order and
/// labels are unchanged when the flags are left at their defaults.
inline void apply_model_flags(sweep_grid& grid, const bench_config& cfg) {
  grid.weightings = {cfg.weighting};
  grid.samplers = {cfg.sampler};
  grid.departures = {cfg.departures};
  if (cfg.churn > 0) {
    warn_once("bench-churn-grid",
              "--churn has no effect on declarative-grid binaries: churn cells expanded "
              "from a grid use the steady-state default occupancy = m");
  }
}

/// Same for an explicit configuration list, through the orchestrator's
/// shared override mapping (exp/campaign.hpp): registry-backed configs
/// take the specs; factory-built cells own their model, so non-default
/// flags on them trigger the house accepted-but-ineffective diagnostic
/// instead of silence.
inline void apply_model_flags(std::vector<campaign_config>& configs, const bench_config& cfg) {
  model_overrides overrides;
  overrides.weighting = cfg.weighting;
  overrides.sampler = cfg.sampler;
  overrides.departures = cfg.departures;
  overrides.churn_occupancy = static_cast<step_count>(cfg.churn);
  apply_model_overrides(configs, overrides);
}

/// For binaries whose cells are all factory-built (or that bypass the
/// campaign layer entirely): one-time diagnostic that non-default
/// --weighting/--sampler/--departures flags were accepted but cannot apply.
inline void warn_model_flags_unsupported(const bench_config& cfg, const std::string& binary) {
  if (cfg.weighting == "unit" && cfg.sampler == "uniform" && cfg.departures == "none") return;
  warn_once("bench-model-flags/" + binary,
            "--weighting/--sampler/--departures have no effect in " + binary +
                ": its cells are factory-built; the flags apply to registry-backed configs only");
}

/// Standard post-campaign emission: aggregate JSON (--json) and a
/// progress note about journal/resume cell accounting.
inline void report_campaign(const campaign_result& campaign, const bench_config& cfg) {
  if (!cfg.json.empty()) {
    campaign.write_json(cfg.json);
    std::printf("[campaign aggregate JSON -> %s]\n", cfg.json.c_str());
  }
  if (!cfg.journal.empty()) {
    std::printf("[journal %s: %zu cells executed, %zu resumed]\n", cfg.journal.c_str(),
                campaign.cells_executed, campaign.cells_resumed);
  }
}

// The cell list type and run_cells live in the orchestrator now
// (src/exp/campaign.hpp): same shared (configuration, repetition) work
// queue, but with flat per-cell seeds derive_seed(master_seed, cell index)
// and campaign-grade journaling available to every binary.

/// Wall-clock helper.
class stopwatch {
 public:
  stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Wall-clock statistics over repeated timed reps of one workload.
/// Reported numbers are medians; min/max bound the scheduling noise (a
/// single cold shot -- the old harness -- reads as min == median == max
/// with reps = 1 and warmup = 0, so JSON consumers can tell them apart).
struct timing_stats {
  int warmup = 0;
  int reps = 0;
  double min_s = 0.0;
  double median_s = 0.0;
  double max_s = 0.0;

  /// Throughput views of the same sample (work units / seconds).
  [[nodiscard]] double rate_median(double work) const { return work / median_s; }
  [[nodiscard]] double rate_min(double work) const { return work / max_s; }
  [[nodiscard]] double rate_max(double work) const { return work / min_s; }
};

/// Times `body()` with `warmup` untimed shots (cache/branch-predictor/page
/// warm-in) followed by `reps` timed shots; returns min/median/max.  The
/// body must be a repeatable workload -- same seed, same work -- so the
/// spread measures the machine, not the benchmark.
template <typename Body>
timing_stats time_median_of(int warmup, int reps, const Body& body) {
  NB_REQUIRE(reps >= 1, "need at least one timed rep");
  NB_REQUIRE(warmup >= 0, "warmup count must be non-negative");
  for (int i = 0; i < warmup; ++i) body();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const stopwatch clock;
    body();
    samples.push_back(clock.seconds());
  }
  std::sort(samples.begin(), samples.end());
  timing_stats out;
  out.warmup = warmup;
  out.reps = reps;
  out.min_s = samples.front();
  out.max_s = samples.back();
  // Median of an even sample: mean of the middle pair.
  const std::size_t mid = samples.size() / 2;
  out.median_s =
      samples.size() % 2 != 0 ? samples[mid] : 0.5 * (samples[mid - 1] + samples[mid]);
  return out;
}

// ---------------------------------------------------------------------------
// Published results (Tables 12.3 and 12.4 of the paper), for side-by-side
// comparison columns.  Keys: (process, parameter, n).

using distribution = std::vector<std::pair<int, int>>;  // (gap value, percent)

struct paper_key {
  std::string process;
  int param;
  std::int64_t n;
  bool operator<(const paper_key& o) const {
    return std::tie(process, param, n) < std::tie(o.process, o.param, o.n);
  }
};

/// The paper's Table 12.3 (g-Bounded / g-Myopic-Comp / sigma-Noisy-Load)
/// and Table 12.4 (b-Batch / One-Choice) empirical gap distributions.
[[nodiscard]] inline const std::map<paper_key, distribution>& paper_distributions() {
  static const std::map<paper_key, distribution> table = {
      // ----- Table 12.3: g-Bounded -----
      {{"g-bounded", 0, 10000}, {{2, 46}, {3, 54}}},
      {{"g-bounded", 1, 10000}, {{4, 74}, {5, 26}}},
      {{"g-bounded", 2, 10000}, {{5, 1}, {6, 89}, {7, 10}}},
      {{"g-bounded", 4, 10000}, {{8, 1}, {9, 82}, {10, 17}}},
      {{"g-bounded", 8, 10000}, {{13, 1}, {14, 35}, {15, 51}, {16, 11}, {17, 2}}},
      {{"g-bounded", 16, 10000}, {{23, 4}, {24, 37}, {25, 43}, {26, 11}, {27, 5}}},
      {{"g-bounded", 0, 50000}, {{2, 4}, {3, 96}}},
      {{"g-bounded", 1, 50000}, {{4, 13}, {5, 86}, {6, 1}}},
      {{"g-bounded", 2, 50000}, {{6, 67}, {7, 33}}},
      {{"g-bounded", 4, 50000}, {{9, 46}, {10, 51}, {11, 3}}},
      {{"g-bounded", 8, 50000}, {{14, 3}, {15, 72}, {16, 24}, {17, 1}}},
      {{"g-bounded", 16, 50000}, {{25, 25}, {26, 47}, {27, 23}, {28, 4}, {29, 1}}},
      {{"g-bounded", 0, 100000}, {{3, 100}}},
      {{"g-bounded", 1, 100000}, {{4, 1}, {5, 99}}},
      {{"g-bounded", 2, 100000}, {{6, 50}, {7, 50}}},
      {{"g-bounded", 4, 100000}, {{9, 32}, {10, 67}, {11, 1}}},
      {{"g-bounded", 8, 100000}, {{15, 39}, {16, 57}, {17, 4}}},
      {{"g-bounded", 16, 100000}, {{25, 9}, {26, 50}, {27, 33}, {28, 7}, {29, 1}}},
      // ----- Table 12.3: g-Myopic-Comp -----
      {{"g-myopic", 0, 10000}, {{2, 46}, {3, 54}}},
      {{"g-myopic", 1, 10000}, {{4, 97}, {5, 3}}},
      {{"g-myopic", 2, 10000}, {{5, 49}, {6, 51}}},
      {{"g-myopic", 4, 10000}, {{7, 2}, {8, 87}, {9, 11}}},
      {{"g-myopic", 8, 10000}, {{12, 37}, {13, 50}, {14, 12}, {15, 1}}},
      {{"g-myopic", 16, 10000}, {{20, 14}, {21, 47}, {22, 29}, {23, 8}, {25, 2}}},
      {{"g-myopic", 0, 50000}, {{2, 4}, {3, 96}}},
      {{"g-myopic", 1, 50000}, {{4, 73}, {5, 27}}},
      {{"g-myopic", 2, 50000}, {{5, 1}, {6, 97}, {7, 2}}},
      {{"g-myopic", 4, 50000}, {{8, 50}, {9, 50}}},
      {{"g-myopic", 8, 50000}, {{12, 1}, {13, 50}, {14, 44}, {15, 5}}},
      {{"g-myopic", 16, 50000}, {{21, 10}, {22, 44}, {23, 39}, {24, 6}, {26, 1}}},
      {{"g-myopic", 0, 100000}, {{3, 100}}},
      {{"g-myopic", 1, 100000}, {{4, 59}, {5, 41}}},
      {{"g-myopic", 2, 100000}, {{6, 99}, {7, 1}}},
      {{"g-myopic", 4, 100000}, {{8, 19}, {9, 78}, {10, 3}}},
      {{"g-myopic", 8, 100000}, {{13, 21}, {14, 72}, {15, 7}}},
      {{"g-myopic", 16, 100000}, {{22, 24}, {23, 51}, {24, 24}, {26, 1}}},
      // ----- Table 12.3: sigma-Noisy-Load -----
      {{"sigma-noisy-load", 0, 10000}, {{2, 46}, {3, 54}}},
      {{"sigma-noisy-load", 1, 10000}, {{3, 29}, {4, 71}}},
      {{"sigma-noisy-load", 2, 10000}, {{4, 9}, {5, 84}, {6, 7}}},
      {{"sigma-noisy-load", 4, 10000}, {{6, 20}, {7, 73}, {8, 7}}},
      {{"sigma-noisy-load", 8, 10000}, {{9, 36}, {10, 50}, {11, 12}, {12, 2}}},
      {{"sigma-noisy-load", 16, 10000},
       {{12, 2}, {13, 33}, {14, 42}, {15, 16}, {16, 6}, {18, 1}}},
      {{"sigma-noisy-load", 0, 50000}, {{2, 4}, {3, 96}}},
      {{"sigma-noisy-load", 1, 50000}, {{4, 98}, {5, 2}}},
      {{"sigma-noisy-load", 2, 50000}, {{5, 61}, {6, 39}}},
      {{"sigma-noisy-load", 4, 50000}, {{7, 51}, {8, 48}, {10, 1}}},
      {{"sigma-noisy-load", 8, 50000}, {{9, 1}, {10, 37}, {11, 52}, {12, 8}, {13, 2}}},
      {{"sigma-noisy-load", 16, 50000}, {{14, 24}, {15, 45}, {16, 24}, {17, 6}, {18, 1}}},
      {{"sigma-noisy-load", 0, 100000}, {{3, 100}}},
      {{"sigma-noisy-load", 1, 100000}, {{4, 95}, {5, 5}}},
      {{"sigma-noisy-load", 2, 100000}, {{5, 58}, {6, 41}, {7, 1}}},
      {{"sigma-noisy-load", 4, 100000}, {{7, 26}, {8, 69}, {9, 4}, {10, 1}}},
      {{"sigma-noisy-load", 8, 100000}, {{10, 13}, {11, 56}, {12, 26}, {13, 4}, {14, 1}}},
      {{"sigma-noisy-load", 16, 100000},
       {{14, 1}, {15, 49}, {16, 35}, {17, 8}, {18, 6}, {19, 1}}},
      // ----- Table 12.4: b-Batch at n = 10^4, m = 1000 n -----
      {{"b-batch", 10, 10000}, {{3, 44}, {4, 56}}},
      {{"b-batch", 100, 10000}, {{3, 40}, {4, 60}}},
      {{"b-batch", 1000, 10000}, {{4, 91}, {5, 9}}},
      {{"b-batch", 10000, 10000}, {{5, 29}, {6, 49}, {7, 18}, {8, 4}}},
      {{"b-batch", 100000, 10000},
       {{16, 1}, {17, 8}, {18, 15}, {19, 28}, {20, 18}, {21, 12}, {22, 14}, {24, 1}, {25, 2}, {26, 1}}},
      // ----- Table 12.4: One-Choice with m = b balls, n = 10^4 -----
      {{"one-choice", 10, 10000}, {{1, 100}}},
      {{"one-choice", 100, 10000}, {{1, 47}, {2, 52}, {3, 1}}},
      {{"one-choice", 1000, 10000}, {{2, 5}, {3, 88}, {4, 7}}},
      {{"one-choice", 10000, 10000}, {{6, 22}, {7, 56}, {8, 19}, {9, 3}}},
      {{"one-choice", 100000, 10000},
       {{21, 2}, {22, 12}, {23, 13}, {24, 21}, {25, 18}, {26, 17}, {27, 4}, {28, 8}, {29, 4}, {31, 1}}},
  };
  return table;
}

/// Mean of a published distribution.
[[nodiscard]] inline double paper_mean(const distribution& d) {
  double num = 0.0;
  double den = 0.0;
  for (const auto& [value, pct] : d) {
    num += static_cast<double>(value) * pct;
    den += pct;
  }
  return den > 0 ? num / den : 0.0;
}

/// Looks up the paper's mean gap if published for this configuration.
[[nodiscard]] inline std::optional<double> paper_mean_for(const std::string& process, int param,
                                                          std::int64_t n) {
  const auto& table = paper_distributions();
  const auto it = table.find(paper_key{process, param, n});
  if (it == table.end()) return std::nullopt;
  return paper_mean(it->second);
}

/// "v1:p1%  v2:p2%" rendering of a published distribution.
[[nodiscard]] inline std::string paper_style(const distribution& d) {
  std::string out;
  for (const auto& [value, pct] : d) {
    if (!out.empty()) out += "  ";
    out += std::to_string(value) + ":" + std::to_string(pct) + "%";
  }
  return out;
}

/// Formats an optional paper value for a table cell.
[[nodiscard]] inline std::string opt_str(std::optional<double> v, int decimals = 2) {
  return v ? format_fixed(*v, decimals) : "-";
}

}  // namespace nb::bench
