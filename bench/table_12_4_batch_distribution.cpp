// Reproduces Table 12.4: empirical gap distributions of b-Batch
// (n = 10^4, m = 1000 n) and of One-Choice with m = b balls, for
// b in {10, 10^2, 10^3, 10^4, 10^5}.
#include "bench_common.hpp"

namespace {

using namespace nb;
using namespace nb::bench;

int run(int argc, const char* const* argv) {
  cli_parser cli(
      "table_12_4_batch_distribution -- Table 12.4: gap distributions of b-Batch and the "
      "One-Choice(m=b) baseline.");
  add_standard_flags(cli);
  auto cfg_opt = parse_standard(cli, argc, argv);
  if (!cfg_opt) return 0;
  auto cfg = *cfg_opt;
  warn_model_flags_unsupported(cfg, "table_12_4_batch_distribution");
  if (cfg.runs_override == 0 && !cfg.paper_mode()) cfg.runs_override = 25;

  const bin_count n =
      cfg.n_override > 0 ? static_cast<bin_count>(cfg.n_override) : bin_count{10000};
  const step_count m = static_cast<step_count>(cfg.m_multiplier) * n;
  const std::vector<std::int64_t> batch_sizes = {10, 100, 1000, 10000, 100000};

  std::printf("=== Table 12.4: gap distributions, b-Batch vs One-Choice (n = %s, runs=%zu) ===\n\n",
              format_power_of_ten(n).c_str(), cfg.runs());

  std::vector<cell> cells;
  for (const auto b : batch_sizes) {
    cells.push_back(
        {"b-batch/" + std::to_string(b), [n, b] { return any_process(b_batch(n, b)); }, m});
    cells.push_back({"one-choice/" + std::to_string(b),
                     [n] { return any_process(one_choice(n)); }, b});
  }
  stopwatch total;
  const auto results = run_cells(cells, cfg.runs(), cfg.seed, cfg.threads, cfg.threads_per_run,
                                 cfg.kernel_backend(), cfg.lanes);

  const auto& published = paper_distributions();
  text_table batch_table({"b", "measured gap (b-Batch, m=1000n)", "paper"});
  text_table one_table({"b", "measured MAX LOAD (One-Choice, m=b)", "paper"});
  for (std::size_t i = 0; i < batch_sizes.size(); ++i) {
    const auto b = batch_sizes[i];
    const auto bp = published.find(paper_key{"b-batch", static_cast<int>(b), n});
    const auto op = published.find(paper_key{"one-choice", static_cast<int>(b), n});
    batch_table.add_row({format_power_of_ten(b), results[2 * i].gap_histogram.to_paper_style(),
                         bp != published.end() ? paper_style(bp->second) : "-"});
    // The paper's One-Choice column matches the *maximum load* (gap + b/n):
    // e.g. at b = 10^5 it reports ~24.8 where the gap is ~14.8 and b/n = 10.
    int_histogram max_hist;
    for (const auto& r : results[2 * i + 1].runs) max_hist.add(r.max_load);
    one_table.add_row({format_power_of_ten(b), max_hist.to_paper_style(),
                       op != published.end() ? paper_style(op->second) : "-"});
  }
  std::printf("b-Batch, m = %s:\n%s\n", format_power_of_ten(m).c_str(),
              batch_table.render().c_str());
  std::printf("One-Choice with m = b balls (the paper's column reports the max load, i.e.\n"
              "gap + b/n -- see EXPERIMENTS.md):\n%s\n",
              one_table.render().c_str());
  std::printf(
      "Expected shape (paper): for b >= n the two processes approach each other\n"
      "(Observation 11.6: the first batch *is* One-Choice), while for b << n the batch\n"
      "process stays at the Two-Choice level.\n");
  std::printf("[table_12_4 done in %s]\n", format_duration(total.seconds()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
