// Ablation: the potential-function machinery of Sections 4, 5 and 7.
//
// The paper's upper-bound proofs rest on three empirical claims that this
// bench measures directly:
//
//   (a) drop inequality (Theorem 4.3i): when the hyperbolic cosine
//       potential Gamma is large, it decreases in expectation;
//   (b) good steps (Lemma 5.4): in the stationary regime, a constant
//       fraction (in fact almost all) of steps satisfy Delta <= D n g;
//   (c) recovery/stabilization (Lemmas 5.9/5.10): after an adversarial
//       prefix inflates the gap, switching to correct comparisons brings
//       the gap back to the Two-Choice level within O(n log n)-ish steps.
#include "bench_common.hpp"

#include <cmath>

#include "core/analysis/allocation_probability.hpp"
#include "core/potential/super_exp_ladder.hpp"

namespace {

using namespace nb;
using namespace nb::bench;

int run(int argc, const char* const* argv) {
  cli_parser cli("ablation_potentials -- measures the potential-function behaviour that drives "
                 "the paper's upper-bound proofs (Sections 4-7).");
  add_standard_flags(cli);
  const auto cfg = parse_standard(cli, argc, argv);
  if (!cfg) return 0;
  warn_model_flags_unsupported(*cfg, "ablation_potentials");

  stopwatch total;

  // ------------------------------------------------------------------
  // (a) Per-step drift of Gamma in the inflation and recovery phases.
  //
  // Theorem 4.3(i): E[dGamma | F] <= -gamma/(96n) Gamma + c1.  When Gamma
  // is far above its stationary level (after an adversarial prefix), the
  // multiplicative term dominates and the drift must turn negative; during
  // the adversarial prefix the drift is positive.  We use gamma = 1/72
  // (the largest smoothing Lemma 4.2 permits) so Gamma visibly leaves its
  // floor of 2n at this scale.
  {
    const bin_count n = 256;
    const load_t g = 24;
    const double gamma = 1.0 / 72.0;
    const step_count poison = 200LL * n;
    const step_count recovery = 100LL * n;
    g_adv_comp<phase_switch> p(n, g, phase_switch{poison});
    rng_t rng(cfg->seed);
    double drift_poison = 0.0;
    double drift_recovery = 0.0;
    std::int64_t recovery_steps = 0;
    double prev = gamma_potential(p.state().normalized(), gamma);
    const double peak_after = [&] {
      for (step_count t = 0; t < poison; ++t) p.step(rng);
      return gamma_potential(p.state().normalized(), gamma);
    }();
    drift_poison = (peak_after - prev) / static_cast<double>(poison);
    prev = peak_after;
    const double near_floor = 2.002 * n;
    for (step_count t = 0; t < recovery; ++t) {
      p.step(rng);
      const double cur = gamma_potential(p.state().normalized(), gamma);
      if (prev > near_floor) {
        drift_recovery += cur - prev;
        ++recovery_steps;
      }
      prev = cur;
    }
    drift_recovery = recovery_steps > 0 ? drift_recovery / static_cast<double>(recovery_steps) : 0.0;
    std::printf("(a) Gamma drift (n=%u, g=%d, gamma=1/72):\n", n, g);
    std::printf("    Gamma/n after poisoning: %.4f (floor is 2.0)\n", peak_after / n);
    std::printf("    mean dGamma during adversarial prefix: %+.6f  (expected > 0)\n",
                drift_poison);
    std::printf("    mean dGamma while large, correct phase: %+.6f over %lld steps  "
                "(drop inequality: expected < 0)\n\n",
                drift_recovery, static_cast<long long>(recovery_steps));
  }

  // ------------------------------------------------------------------
  // (b) Fraction of good steps Delta <= D n g in the stationary regime.
  {
    const bin_count n = 1024;
    const step_count m = 400LL * n;
    for (const load_t g : {1, 4, 16}) {
      g_bounded p(n, g);
      rng_t rng(cfg->seed + g);
      trace_options opt;
      opt.sample_interval = n / 4;
      opt.record_good_step = true;
      opt.good_step_g = g;
      const auto tr = record_trace(p, m, rng, opt);
      std::int64_t good = 0;
      double max_delta_over_ng = 0.0;
      for (const auto& pt : tr.points) {
        if (pt.good_step) ++good;
        max_delta_over_ng =
            std::max(max_delta_over_ng, pt.absolute / (static_cast<double>(n) * g));
      }
      std::printf("(b) good steps, g-Bounded g=%-3d: %lld/%zu sampled steps good; max "
                  "Delta/(n g) = %.3f (threshold D = 365)\n",
                  g, static_cast<long long>(good), tr.points.size(), max_delta_over_ng);
    }
    std::printf("\n");
  }

  // ------------------------------------------------------------------
  // (c) Recovery: gap and Lambda trajectory across the adversarial switch.
  {
    const bin_count n = 1024;
    const load_t g = 16;
    const step_count poison = 300LL * n;
    const step_count m = 450LL * n;
    g_adv_comp<phase_switch> p(n, g, phase_switch{poison});
    rng_t rng(cfg->seed + 99);
    trace_options opt;
    opt.sample_interval = 15LL * n;
    opt.record_lambda = true;
    // Instrumentation offset g/2: the paper's proof offset c4 g = 730 g is
    // chosen for union bounds and is vacuous at this scale -- Lambda would
    // sit at exactly 2n throughout.
    opt.lambda_offset = g / 2.0;
    const auto tr = record_trace(p, m, rng, opt);
    std::printf("(c) recovery after adversarial prefix (n=%u, g=%d, switch at t=%lld):\n", n, g,
                static_cast<long long>(poison));
    std::printf("    %-10s %-8s %-14s\n", "t/n", "gap", "Lambda/n");
    for (const auto& pt : tr.points) {
      std::printf("    %-10.0f %-8.2f %-14.3f%s\n", static_cast<double>(pt.t) / n, pt.gap,
                  pt.lambda / n, pt.t == poison ? "   <-- adversary disabled" : "");
    }
    double recovered_at = -1.0;
    const double floor_gap = 6.0;  // ~Two-Choice level at this n
    for (const auto& pt : tr.points) {
      if (pt.t > poison && pt.gap <= floor_gap) {
        recovered_at = static_cast<double>(pt.t - poison) / n;
        break;
      }
    }
    if (recovered_at >= 0) {
      std::printf("    gap back to <= %.0f within %.0f n steps after the switch "
                  "(stabilization, Lemma 5.10 predicts O((g + log n)) n)\n\n",
                  floor_gap, recovered_at);
    } else {
      std::printf("    gap did not reach <= %.0f during the observed window\n\n", floor_gap);
    }
  }

  // ------------------------------------------------------------------
  // (d) Exact drift verification: sample load vectors along a g-Bounded
  // trajectory, compute the EXACT E[dUpsilon] from the exact allocation
  // probability vector, and confirm the Lemma 5.3 inequality
  // E[dUpsilon] <= -Delta/n + 2g + 1 pointwise (not statistically).
  {
    const bin_count n = 512;
    const load_t g = 6;
    g_bounded p(n, g);
    rng_t rng(cfg->seed + 7);
    int checked = 0;
    int satisfied = 0;
    double worst_margin = 1e100;
    for (int round = 0; round < 200; ++round) {
      for (bin_count t = 0; t < n; ++t) p.step(rng);
      const auto q = g_bounded_probabilities(p.state().loads(), g);
      const auto y = p.state().normalized();
      double delta = 0.0;
      for (const double v : y) delta += std::fabs(v);
      const double drift = lemma_5_1_quadratic_drift(y, q);
      const double bound = -delta / n + 2.0 * g + 1.0;
      ++checked;
      if (drift <= bound + 1e-9) ++satisfied;
      worst_margin = std::min(worst_margin, bound - drift);
    }
    std::printf("(d) exact Lemma 5.3 check (n=%u, g=%d): %d/%d sampled configurations satisfy\n"
                "    E[dUpsilon] <= -Delta/n + 2g + 1 exactly; smallest slack = %.3f\n\n",
                n, g, satisfied, checked, worst_margin);
  }

  // ------------------------------------------------------------------
  // (e) The super-exponential ladder (Section 6.1): all k levels stay
  // O(n) at stationarity, certifying Gap <= z_k (Theorem 9.2's final step).
  {
    const bin_count n = 65536;
    const double g = 3.0;
    super_exp_ladder ladder(n, g);
    g_bounded p(n, static_cast<load_t>(g));
    rng_t rng(cfg->seed + 13);
    for (step_count t = 0; t < 300LL * n; ++t) p.step(rng);
    const auto values = ladder.evaluate_all(p.state().normalized());
    std::printf("(e) super-exponential ladder at stationarity (n=%u, g=%g, k=%d levels):\n", n, g,
                ladder.k());
    for (int j = 0; j < ladder.levels(); ++j) {
      const auto& lv = ladder.level(j);
      std::printf("    Phi_%d (phi=%.3f, z=%.1f): value/n = %.4f %s\n", j, lv.smoothing,
                  lv.offset, values[static_cast<std::size_t>(j)] / n,
                  values[static_cast<std::size_t>(j)] <= 4.0 * n ? "(O(n) ok)" : "(LARGE)");
    }
    std::printf("    certified gap bound z_k = %.1f; measured gap = %.2f\n\n",
                ladder.final_offset(), p.state().gap());
  }

  std::printf("[ablation_potentials done in %s]\n", format_duration(total.seconds()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
