// Bulk-allocation throughput: balls/sec of the per-ball path (one
// step()/virtual call per ball -- the pre-refactor driver) against the
// bulk path (step_many with fused inner loops), plus the cost of
// observation checkpoints with and without the level-compressed load
// index.  Not a paper experiment -- this is the evidence that paper-scale
// runs (10^8 balls) are routine on a laptop.
//
// The headline number: two-choice, n = 10^4, m = 10^7, type-erased
// (exactly how the registry-driven sweep binaries execute), per-ball vs
// bulk.  Both paths are verified to produce bit-identical load vectors
// before any timing is reported.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace nb;

constexpr int kReps = 3;  // best-of to suppress scheduling noise

struct measurement {
  double balls_per_sec = 0.0;
  double gap = 0.0;
  std::vector<load_t> loads;
};

/// Best-of-kReps timing of `body(process, rng)` over m balls; every rep
/// re-creates the process and generator so reps are identical workloads.
template <typename MakeProcess, typename Body>
measurement time_run(const MakeProcess& make, step_count m, std::uint64_t seed, const Body& body) {
  measurement best;
  for (int rep = 0; rep < kReps; ++rep) {
    auto process = make();
    rng_t rng(seed);
    const bench::stopwatch clock;
    body(process, rng, m);
    const double elapsed = clock.seconds();
    const double rate = static_cast<double>(m) / elapsed;
    if (rate > best.balls_per_sec) best.balls_per_sec = rate;
    best.gap = process.state().gap();
    if (rep == kReps - 1) best.loads = process.state().loads();
  }
  return best;
}

template <typename MakeProcess>
void report(const char* label, const MakeProcess& make, step_count m, std::uint64_t seed) {
  const auto per_ball = time_run(make, m, seed, [](auto& p, rng_t& rng, step_count balls) {
    for (step_count t = 0; t < balls; ++t) p.step(rng);
  });
  const auto bulk = time_run(make, m, seed, [](auto& p, rng_t& rng, step_count balls) {
    step_many(p, rng, balls);
  });
  if (per_ball.loads != bulk.loads) {
    std::printf("PARITY FAILURE for %s: per-ball and bulk load vectors differ\n", label);
    std::exit(1);
  }
  std::printf("%-34s %14.3e %14.3e %9.2fx   (gap %.1f)\n", label, per_ball.balls_per_sec,
              bulk.balls_per_sec, bulk.balls_per_sec / per_ball.balls_per_sec, bulk.gap);
}

/// The end-to-end observed run: gap, underload gap and the median
/// normalized load at every checkpoint (one checkpoint per `interval`
/// balls; the default, interval = n, is one observation per unit of
/// normalized time -- the cadence of the paper's gap-dynamics traces).
///
/// Baseline = the pre-refactor execution strategy, reconstructed inline:
/// one step() per ball, and each checkpoint pays normalized() + an
/// O(n log n) descending sort (exactly what sorted_normalized_desc did
/// before the level index existed).  Bulk = step_many between checkpoints
/// and the sort-free level-index queries.  Both record the same values.
double report_observed_run(bin_count n, step_count m, step_count interval, std::uint64_t seed) {
  const auto make = [n] { return two_choice(n); };
  double check_per_ball = 0.0;
  double check_bulk = 0.0;
  const auto per_ball = time_run(make, m, seed, [&](auto& p, rng_t& rng, step_count balls) {
    double sink = 0.0;
    for (step_count t = 1; t <= balls; ++t) {
      p.step(rng);
      if (t % interval == 0 || t == balls) {
        const auto& s = p.state();
        const double avg = s.average_load();
        std::vector<double> y(s.loads().begin(), s.loads().end());
        std::sort(y.begin(), y.end(), std::greater<>());
        sink += (y.front() - avg) + (avg - y.back()) + (y[y.size() / 2] - avg);
      }
    }
    check_per_ball = sink;
  });
  const auto bulk = time_run(make, m, seed, [&](auto& p, rng_t& rng, step_count balls) {
    double sink = 0.0;
    for (step_count done = 0; done < balls; done += interval) {
      step_many(p, rng, std::min(interval, balls - done));
      const auto& s = p.state();
      const auto y = s.sorted_normalized_desc();
      sink += s.gap() + s.underload_gap() + y[y.size() / 2];
    }
    check_bulk = sink;
  });
  if (check_per_ball != check_bulk) {
    std::printf("PARITY FAILURE for observed run: %.6f != %.6f\n", check_per_ball, check_bulk);
    std::exit(1);
  }
  std::printf("%-34s %14.3e %14.3e %9.2fx   (gap %.1f)\n", "two-choice observed run",
              per_ball.balls_per_sec, bulk.balls_per_sec,
              bulk.balls_per_sec / per_ball.balls_per_sec, bulk.gap);
  return bulk.balls_per_sec / per_ball.balls_per_sec;
}

// ---------------------------------------------------------------------------
// Scale benchmark: the intra-run shard-parallel engine vs the serial bulk
// path on one huge b-Batch observed run (paper regime: n = 10^6 bins,
// m = 10^8 balls, b = n, one observation per batch).  Every batch's balls
// decide against the frozen batch-start snapshot, so the engine splits them
// across shards with block-sampled RNG and a compact 8-bit snapshot; the
// serial leg is PR 1's fused step_many loop.  Emits BENCH_throughput.json.

struct scale_measurement {
  double balls_per_sec = 0.0;
  double gap = 0.0;
  double sink = 0.0;  // checkpoint observations folded into one number
  std::vector<load_t> loads;
};

template <typename Move>
scale_measurement scale_observed_run(bin_count n, step_count m, step_count interval,
                                     std::uint64_t seed, Move&& move) {
  b_batch process(n, static_cast<step_count>(n));
  rng_t rng(seed);
  scale_measurement out;
  const bench::stopwatch clock;
  for (step_count done = 0; done < m;) {
    const step_count chunk = checkpoint_chunk(done, m - done, interval);
    move(process, rng, chunk);
    done += chunk;
    const auto& s = process.state();
    const auto y = s.sorted_normalized_desc();
    out.sink += s.gap() + s.underload_gap() + y[y.size() / 2];
  }
  const double elapsed = clock.seconds();
  out.balls_per_sec = static_cast<double>(m) / elapsed;
  out.gap = process.state().gap();
  out.loads = process.state().loads();
  return out;
}

void run_scale_benchmark(bin_count n, step_count m, std::size_t threads, std::size_t shards,
                         std::uint64_t seed, bool verify, const std::string& json_path) {
  const auto interval = static_cast<step_count>(n);
  std::printf("\nscale benchmark: b-batch b=n observed run, n = %u, m = %lld\n", n,
              static_cast<long long>(m));

  const auto serial = scale_observed_run(
      n, m, interval, seed,
      [](b_batch& p, rng_t& rng, step_count chunk) { step_many(p, rng, chunk); });
  std::printf("  serial bulk           %14.3e balls/s   (gap %.1f)\n", serial.balls_per_sec,
              serial.gap);

  shard_engine engine(shard_options{.threads = threads, .shards = shards});
  const auto parallel = scale_observed_run(
      n, m, interval, seed,
      [&engine](b_batch& p, rng_t& rng, step_count chunk) {
        step_many_parallel(p, rng, chunk, engine);
      });
  std::printf("  shard-parallel (t=%zu) %13.3e balls/s   (gap %.1f)\n", engine.threads(),
              parallel.balls_per_sec, parallel.gap);
  const double speedup = parallel.balls_per_sec / serial.balls_per_sec;
  std::printf("  speedup               %14.2fx on %u hardware cores\n", speedup,
              std::thread::hardware_concurrency());

  bool identical = true;
  if (verify) {
    // Determinism contract: same seed + same shard count under ONE worker
    // thread must reproduce the multi-threaded run bit for bit, including
    // every checkpoint observation.
    shard_engine engine1(shard_options{.threads = 1, .shards = shards});
    const auto replay = scale_observed_run(
        n, m, interval, seed,
        [&engine1](b_batch& p, rng_t& rng, step_count chunk) {
          step_many_parallel(p, rng, chunk, engine1);
        });
    identical = replay.loads == parallel.loads && replay.sink == parallel.sink;
    if (!identical) {
      std::printf("DETERMINISM FAILURE: 1-thread replay diverged from %zu-thread run\n",
                  engine.threads());
      std::exit(1);
    }
    std::printf("  determinism           1-thread replay bit-identical (loads + observations)\n");
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    NB_REQUIRE(f != nullptr, "cannot open --json output path");
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"throughput_scale\",\n"
                 "  \"process\": \"b-batch\",\n"
                 "  \"n\": %u,\n  \"m\": %lld,\n  \"b\": %u,\n  \"interval\": %lld,\n"
                 "  \"seed\": %llu,\n  \"threads\": %zu,\n  \"shards\": %zu,\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"serial_balls_per_sec\": %.6e,\n"
                 "  \"parallel_balls_per_sec\": %.6e,\n"
                 "  \"speedup\": %.4f,\n"
                 "  \"serial_gap\": %.2f,\n  \"parallel_gap\": %.2f,\n"
                 "  \"identical_across_thread_counts\": %s\n"
                 "}\n",
                 n, static_cast<long long>(m), n, static_cast<long long>(interval),
                 static_cast<unsigned long long>(seed), engine.threads(), shards,
                 std::thread::hardware_concurrency(), serial.balls_per_sec,
                 parallel.balls_per_sec, speedup, serial.gap, parallel.gap,
                 verify ? "true" : "null");
    std::fclose(f);
    std::printf("  wrote %s\n", json_path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  cli_parser cli(
      "Throughput of the per-ball vs bulk (step_many) allocation paths.\n"
      "Columns: balls/sec per-ball, balls/sec bulk, speedup.");
  cli.add_int("n", 10000, "number of bins");
  cli.add_int("m", 10000000, "number of balls");
  cli.add_int("interval", 0, "observation interval for the observed-run row (0 = n)");
  cli.add_int("seed", 42, "RNG seed (same stream for both paths)");
  cli.add_bool("scale", false, "also run the shard-parallel scale benchmark (b-batch b=n)");
  cli.add_int("scale-n", 1000000, "bins for the scale benchmark (paper scale: 10^6)");
  cli.add_int("scale-m", 100000000, "balls for the scale benchmark (paper scale: 10^8)");
  cli.add_int("scale-threads", 0, "intra-run worker threads for the scale benchmark (0 = cores)");
  cli.add_int("shards", 16, "fixed shard count for the parallel engine (sampling contract)");
  cli.add_bool("scale-verify", true, "replay the parallel leg on 1 thread and require bit parity");
  cli.add_string("json", "BENCH_throughput.json", "scale-result JSON path (\"\" = skip)");
  if (!cli.parse(argc, argv)) return 0;

  NB_REQUIRE(cli.get_int("n") >= 1 && cli.get_int("n") <= 0xFFFFFFFFLL,
             "--n must be in [1, 2^32)");
  NB_REQUIRE(cli.get_int("m") >= 1 && cli.get_int("m") <= max_run_balls,
             "--m must be in [1, max_run_balls] (per-bin loads are 32-bit)");
  const auto n = static_cast<bin_count>(cli.get_int("n"));
  const auto m = static_cast<step_count>(cli.get_int("m"));
  const auto interval =
      cli.get_int("interval") > 0 ? static_cast<step_count>(cli.get_int("interval"))
                                  : static_cast<step_count>(n);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::printf("n = %u, m = %lld, best of %d reps; per-ball = step() per ball,\n", n,
              static_cast<long long>(m), kReps);
  std::printf("bulk = one step_many call (bit-identical results, checked per row)\n\n");
  std::printf("%-34s %14s %14s %10s\n", "process", "per-ball b/s", "bulk b/s", "speedup");

  report("one-choice", [n] { return one_choice(n); }, m, seed);
  report("two-choice", [n] { return two_choice(n); }, m, seed);
  report("two-choice (type-erased driver)", [n] { return any_process(two_choice(n)); }, m, seed);
  report("d-choice (d=4)", [n] { return d_choice(n, 4); }, m, seed);
  report("(1+beta) beta=0.5", [n] { return one_plus_beta(n, 0.5); }, m, seed);
  report("g-bounded g=8", [n] { return g_bounded(n, 8); }, m, seed);
  report("sigma-noisy-load s=8", [n] { return sigma_noisy_load(n, rho_gaussian(8.0)); }, m, seed);
  report("b-batch b=n", [n] { return b_batch(n, n); }, m, seed);
  report("b-batch b=n (type-erased driver)", [n] { return any_process(b_batch(n, n)); }, m, seed);
  report("tau-delay tau=n", [n] { return tau_delay<delay_adversarial>(n, n); }, m, seed);
  const double observed_speedup = report_observed_run(n, m, interval, seed);

  std::printf(
      "\nheadline: the observed-run row is the before/after of this PR's\n"
      "bulk-step refactor -- per-ball stepping with the sort-based\n"
      "per-checkpoint observations the old code paid (O(n log n) each)\n"
      "versus step_many between checkpoints plus the level-compressed load\n"
      "index (sort-free).  Observed-run speedup: %.2fx at one checkpoint\n"
      "per %lld balls.  Pure-allocation rows above isolate the fused-loop\n"
      "gain alone (identical RNG draw order, bit-identical loads).\n",
      observed_speedup, static_cast<long long>(interval));

  if (cli.get_bool("scale")) {
    NB_REQUIRE(cli.get_int("scale-n") >= 1 && cli.get_int("scale-n") <= 0xFFFFFFFFLL,
               "--scale-n must be in [1, 2^32)");
    NB_REQUIRE(cli.get_int("scale-m") >= 1 && cli.get_int("scale-m") <= max_run_balls,
               "--scale-m must be in [1, max_run_balls]");
    NB_REQUIRE(cli.get_int("shards") >= 1, "--shards must be positive");
    NB_REQUIRE(cli.get_int("scale-threads") >= 0, "--scale-threads must be >= 0");
    run_scale_benchmark(static_cast<bin_count>(cli.get_int("scale-n")),
                        static_cast<step_count>(cli.get_int("scale-m")),
                        static_cast<std::size_t>(cli.get_int("scale-threads")),
                        static_cast<std::size_t>(cli.get_int("shards")), seed,
                        cli.get_bool("scale-verify"), cli.get_string("json"));
  }
  return 0;
}
