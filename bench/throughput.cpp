// Microbenchmarks (google-benchmark): cost per allocation step of every
// process, the type-erasure overhead, and the RNG primitives.  Not a paper
// experiment -- this is the evidence that paper-scale runs (10^8 balls)
// are routine on a laptop.
#include <benchmark/benchmark.h>

#include "noisebalance.hpp"

namespace {

using namespace nb;

constexpr bin_count kN = 1 << 16;

template <typename P>
void run_steps(benchmark::State& state, P process) {
  rng_t rng(42);
  for (auto _ : state) {
    process.step(rng);
    benchmark::DoNotOptimize(process.state().max_load());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_OneChoice(benchmark::State& state) { run_steps(state, one_choice(kN)); }
void BM_TwoChoice(benchmark::State& state) { run_steps(state, two_choice(kN)); }
void BM_DChoice4(benchmark::State& state) { run_steps(state, d_choice(kN, 4)); }
void BM_OnePlusBeta(benchmark::State& state) { run_steps(state, one_plus_beta(kN, 0.5)); }
void BM_GBounded(benchmark::State& state) { run_steps(state, g_bounded(kN, 8)); }
void BM_GMyopic(benchmark::State& state) { run_steps(state, g_myopic_comp(kN, 8)); }
void BM_GAdvLoad(benchmark::State& state) {
  run_steps(state, g_adv_load<inverting_estimates>(kN, 8));
}
void BM_SigmaNoisyRho(benchmark::State& state) {
  run_steps(state, sigma_noisy_load(kN, rho_gaussian(8.0)));
}
void BM_SigmaNoisyGauss(benchmark::State& state) {
  run_steps(state, sigma_noisy_load_gaussian(kN, 8.0));
}
void BM_BBatch(benchmark::State& state) { run_steps(state, b_batch(kN, kN)); }
void BM_TauDelay(benchmark::State& state) {
  run_steps(state, tau_delay<delay_adversarial>(kN, kN));
}
void BM_TypeErasedTwoChoice(benchmark::State& state) {
  run_steps(state, any_process(two_choice(kN)));
}

void BM_RngNext(benchmark::State& state) {
  rng_t rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
void BM_RngBounded(benchmark::State& state) {
  rng_t rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(bounded(rng, 10007));
}
void BM_RngGaussian(benchmark::State& state) {
  rng_t rng(1);
  gaussian_sampler gs;
  for (auto _ : state) benchmark::DoNotOptimize(gs.next(rng));
}

BENCHMARK(BM_OneChoice);
BENCHMARK(BM_TwoChoice);
BENCHMARK(BM_DChoice4);
BENCHMARK(BM_OnePlusBeta);
BENCHMARK(BM_GBounded);
BENCHMARK(BM_GMyopic);
BENCHMARK(BM_GAdvLoad);
BENCHMARK(BM_SigmaNoisyRho);
BENCHMARK(BM_SigmaNoisyGauss);
BENCHMARK(BM_BBatch);
BENCHMARK(BM_TauDelay);
BENCHMARK(BM_TypeErasedTwoChoice);
BENCHMARK(BM_RngNext);
BENCHMARK(BM_RngBounded);
BENCHMARK(BM_RngGaussian);

}  // namespace

BENCHMARK_MAIN();
