// Bulk-allocation throughput: balls/sec of the per-ball path (one
// step()/virtual call per ball -- the pre-refactor driver) against the
// bulk path (step_many with fused inner loops), plus the cost of
// observation checkpoints with and without the level-compressed load
// index.  Not a paper experiment -- this is the evidence that paper-scale
// runs (10^8 balls) are routine on a laptop.
//
// The scale section (--scale) is the before/after of the allocation
// kernel: one huge b-Batch observed run (paper regime n = 10^6, m = 10^8,
// b = n) executed by the serial fused loop, the lane-interleaved kernel
// (scalar and SIMD backends), and the shard-parallel engine, every leg
// timed warm with median-of-k reps.  Emits BENCH_throughput.json as an
// array of per-config entries {kernel, isa, threads, balls_per_sec, ...}.
//
// The scaling matrix (--threads-list / --workers-list, both part of
// --scale) makes multicore throughput a measured, regression-gated
// property: the shard engine sweeps intra-run worker threads and the
// campaign orchestrator sweeps cross-run workers over a heterogeneous
// cell mix, each leg reporting speedup-vs-1-thread, parallel efficiency
// and hardware perf counters (IPC, LLC misses, stalled cycles -- null on
// runners without a PMU), and each leg replayed single-threaded for bit
// (shard) / byte (campaign JSON) parity.  Host metadata (CPU model,
// cache line, hardware_concurrency) rides along so a committed baseline
// is interpretable on a different machine.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "util/host_info.hpp"
#include "util/perf_counters.hpp"

namespace {

using namespace nb;
using nb::bench::stopwatch;
using nb::bench::time_median_of;
using nb::bench::timing_stats;

/// timing_stats over externally collected shot times (the paired
/// tuned/untuned legs time their own shots instead of time_median_of).
timing_stats stats_from_samples(std::vector<double> samples, int warmup) {
  std::sort(samples.begin(), samples.end());
  timing_stats out;
  out.warmup = warmup;
  out.reps = static_cast<int>(samples.size());
  out.min_s = samples.front();
  out.max_s = samples.back();
  const std::size_t mid = samples.size() / 2;
  out.median_s =
      samples.size() % 2 != 0 ? samples[mid] : 0.5 * (samples[mid - 1] + samples[mid]);
  return out;
}

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 != 0 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

constexpr int kWarmup = 1;  // untimed warm-in shots per workload
constexpr int kReps = 3;    // timed reps; medians suppress scheduling noise
constexpr int kTuningPairs = 5;  // alternating tuned/untuned shot pairs

struct measurement {
  timing_stats timing;
  double gap = 0.0;
  std::vector<load_t> loads;
};

/// Warm median-of-kReps timing of `body(process, rng, m)`; every shot
/// re-creates the process and generator so shots are identical workloads.
template <typename MakeProcess, typename Body>
measurement time_run(const MakeProcess& make, step_count m, std::uint64_t seed, const Body& body) {
  measurement out;
  out.timing = time_median_of(kWarmup, kReps, [&] {
    auto process = make();
    rng_t rng(seed);
    body(process, rng, m);
    out.gap = process.state().gap();
    out.loads = process.state().loads();
  });
  return out;
}

template <typename MakeProcess>
void report(const char* label, const MakeProcess& make, step_count m, std::uint64_t seed) {
  const auto work = static_cast<double>(m);
  const auto per_ball = time_run(make, m, seed, [](auto& p, rng_t& rng, step_count balls) {
    for (step_count t = 0; t < balls; ++t) p.step(rng);
  });
  const auto bulk = time_run(make, m, seed, [](auto& p, rng_t& rng, step_count balls) {
    step_many(p, rng, balls);
  });
  if (per_ball.loads != bulk.loads) {
    std::printf("PARITY FAILURE for %s: per-ball and bulk load vectors differ\n", label);
    std::exit(1);
  }
  std::printf("%-34s %14.3e %14.3e %9.2fx   (gap %.1f)\n", label,
              per_ball.timing.rate_median(work), bulk.timing.rate_median(work),
              bulk.timing.rate_median(work) / per_ball.timing.rate_median(work), bulk.gap);
}

/// The end-to-end observed run: gap, underload gap and the median
/// normalized load at every checkpoint (one checkpoint per `interval`
/// balls; the default, interval = n, is one observation per unit of
/// normalized time -- the cadence of the paper's gap-dynamics traces).
///
/// Baseline = the pre-refactor execution strategy, reconstructed inline:
/// one step() per ball, and each checkpoint pays normalized() + an
/// O(n log n) descending sort (exactly what sorted_normalized_desc did
/// before the level index existed).  Bulk = step_many between checkpoints
/// and the sort-free level-index queries.  Both record the same values.
double report_observed_run(bin_count n, step_count m, step_count interval, std::uint64_t seed) {
  const auto make = [n] { return two_choice(n); };
  const auto work = static_cast<double>(m);
  double check_per_ball = 0.0;
  double check_bulk = 0.0;
  const auto per_ball = time_run(make, m, seed, [&](auto& p, rng_t& rng, step_count balls) {
    double sink = 0.0;
    for (step_count t = 1; t <= balls; ++t) {
      p.step(rng);
      if (t % interval == 0 || t == balls) {
        const auto& s = p.state();
        const double avg = s.average_load();
        std::vector<double> y(s.loads().begin(), s.loads().end());
        std::sort(y.begin(), y.end(), std::greater<>());
        sink += (y.front() - avg) + (avg - y.back()) + (y[y.size() / 2] - avg);
      }
    }
    check_per_ball = sink;
  });
  const auto bulk = time_run(make, m, seed, [&](auto& p, rng_t& rng, step_count balls) {
    double sink = 0.0;
    for (step_count done = 0; done < balls; done += interval) {
      step_many(p, rng, std::min(interval, balls - done));
      const auto& s = p.state();
      const auto y = s.sorted_normalized_desc();
      sink += s.gap() + s.underload_gap() + y[y.size() / 2];
    }
    check_bulk = sink;
  });
  if (check_per_ball != check_bulk) {
    std::printf("PARITY FAILURE for observed run: %.6f != %.6f\n", check_per_ball, check_bulk);
    std::exit(1);
  }
  std::printf("%-34s %14.3e %14.3e %9.2fx   (gap %.1f)\n", "two-choice observed run",
              per_ball.timing.rate_median(work), bulk.timing.rate_median(work),
              bulk.timing.rate_median(work) / per_ball.timing.rate_median(work), bulk.gap);
  return bulk.timing.rate_median(work) / per_ball.timing.rate_median(work);
}

// ---------------------------------------------------------------------------
// Scale benchmark: the allocation-kernel before/after on one huge b-Batch
// observed run (paper regime: n = 10^6 bins, m = 10^8 balls, b = n, one
// observation per batch).  Legs:
//   * kernel off      -- PR 1's serial fused step_many loop,
//   * kernel scalar   -- the lane-interleaved kernel, portable backend,
//   * kernel <simd>   -- the same kernel on every SIMD backend this CPU
//                        supports (sse2 / avx2 / avx512 / neon;
//                        bit-identical to scalar by contract, verified
//                        here run against run),
//   * kernel-untuned  -- the best backend with software prefetch and
//                        window interleaving off (the memory-latency
//                        tuning's recorded before/after),
//   * shard-parallel  -- the intra-run shard engine, kernel inside shards.
// Every leg is timed warm (kWarmup) with median-of-kReps.

struct scale_measurement {
  double gap = 0.0;
  double sink = 0.0;  // checkpoint observations folded into one number
  std::vector<load_t> loads;
};

/// One observed run of `make()`; `move` advances the process by a chunk.
template <typename Make, typename Move>
scale_measurement scale_observed_run_with(const Make& make, step_count m, step_count interval,
                                          std::uint64_t seed, const Move& move) {
  auto process = make();
  rng_t rng(seed);
  scale_measurement out;
  for (step_count done = 0; done < m;) {
    const step_count chunk = checkpoint_chunk(done, m - done, interval);
    move(process, rng, chunk);
    done += chunk;
    const auto& s = process.state();
    const auto y = s.sorted_normalized_desc();
    out.sink += s.gap() + s.underload_gap() + y[y.size() / 2];
  }
  out.gap = process.state().gap();
  out.loads = process.state().loads();
  return out;
}

/// The historical b-Batch (b = n) observed run the scale legs compare on.
template <typename Move>
scale_measurement scale_observed_run(bin_count n, step_count m, step_count interval,
                                     std::uint64_t seed, const Move& move) {
  return scale_observed_run_with([n] { return b_batch(n, static_cast<step_count>(n)); }, m,
                                 interval, seed, move);
}

/// One timed leg of the scale benchmark (a row of the JSON results array).
struct scale_entry {
  std::string kernel;  // off | kernel | kernel-untuned | shard | campaign
  std::string isa;     // resolved backend ("none" for the fused loop)
  std::size_t threads = 1;
  std::string process = "b-batch";   // workload the leg times
  std::string weighting = "unit";    // ball-weighting spec (leg key)
  std::string sampler = "uniform";   // bin-sampler spec (leg key)
  std::string departures = "none";   // departure-channel spec (leg key)
  timing_stats timing;
  scale_measurement run;
  /// Hardware counters over the leg's warmup + timed shots (available ==
  /// false on runners without a usable PMU; emitted as "perf": null).
  perf_sample perf;
  /// Execution environment the leg actually ran under, so a committed
  /// baseline number is attributable: the CPU's detected best backend, a
  /// --isa override if one forced the legs ("" = none), the huge-page
  /// outcome (off / granted / fallback + errno) observed while the leg
  /// allocated its buffers, and the kernel tuning in effect.
  std::string isa_detected;
  std::string isa_forced;
  std::string hugepages = "off";
  int hugepage_errno = 0;
  bool prefetch = true;
  bool interleave = true;
  /// Scaling-matrix legs additionally report speedup and efficiency
  /// against the matrix's 1-thread leg, plus whether the single-threaded
  /// parity replay passed (it exits on failure, so an emitted leg always
  /// says true).
  bool has_scaling = false;
  double speedup_vs_1t = 0.0;
  double efficiency = 0.0;
  bool parity_checked = false;
};

/// --isa override in effect for every engine the scale legs construct
/// (auto_detect = none requested) and its CLI spelling for the JSON.
kernel_isa g_isa_request = kernel_isa::auto_detect;
std::string g_isa_forced;

/// Stamps the environment fields on a finished leg; `before` is the
/// hugepage-stats snapshot taken when the leg started, so the outcome
/// reflects this leg's own allocations.
void annotate_env(scale_entry& entry, const hugepage_stats_t& before) {
  entry.isa_detected = kernel_isa_name(detect_kernel_isa());
  entry.isa_forced = g_isa_forced;
  const hugepage_stats_t after = hugepage_stats();
  if (after.failed > before.failed) {
    entry.hugepages = "fallback";
    entry.hugepage_errno = after.last_errno;
  } else if (after.advised > before.advised) {
    entry.hugepages = "granted";
  } else {
    entry.hugepages = "off";
  }
  const kernel_tuning tune = current_kernel_tuning();
  entry.prefetch = tune.prefetch;
  entry.interleave = tune.interleave;
}

/// "ipc 1.23, llc 4.5e+07" console tail for a leg, or the explicit
/// unavailability note.
std::string perf_note(const perf_sample& p) {
  if (!p.available) return "perf n/a";
  char buf[96];
  if (p.llc_misses >= 0.0) {
    std::snprintf(buf, sizeof buf, "ipc %.2f, llc %.2e", p.ipc(), p.llc_misses);
  } else {
    std::snprintf(buf, sizeof buf, "ipc %.2f", p.ipc());
  }
  return buf;
}

template <typename Move>
scale_entry time_scale_leg(std::string kernel, std::string isa, std::size_t threads, bin_count n,
                           step_count m, step_count interval, std::uint64_t seed,
                           perf_counter_set& counters, const Move& move) {
  scale_entry entry;
  entry.kernel = std::move(kernel);
  entry.isa = std::move(isa);
  entry.threads = threads;
  const hugepage_stats_t hp_before = hugepage_stats();
  counters.start();
  entry.timing =
      time_median_of(kWarmup, kReps, [&] { entry.run = scale_observed_run(n, m, interval, seed, move); });
  entry.perf = counters.stop();
  annotate_env(entry, hp_before);
  const auto work = static_cast<double>(m);
  std::printf("  %-10s isa=%-7s t=%zu %12.3e balls/s   (min %.3e, max %.3e, gap %.1f, %s)\n",
              entry.kernel.c_str(), entry.isa.c_str(), entry.threads,
              entry.timing.rate_median(work), entry.timing.rate_min(work),
              entry.timing.rate_max(work), entry.run.gap, perf_note(entry.perf).c_str());
  return entry;
}

// ---------------------------------------------------------------------------
// Scaling matrix.

/// Intra-run thread sweep: the shard engine at every requested worker
/// count on the same paper-scale b-Batch observed run.  Each leg is
/// replayed with 1 worker + the scalar backend and must match bit for bit
/// (loads AND checkpoint observations) -- the determinism contract is
/// *verified at paper scale per leg*, not assumed.  `threads_list` must
/// start with 1 (the caller normalizes): speedup and efficiency are
/// relative to that leg.
void run_threads_matrix(bin_count n, step_count m, step_count interval,
                        const std::vector<std::size_t>& threads_list, std::size_t shards,
                        std::size_t lanes, std::uint64_t seed,
                        std::vector<scale_entry>& results) {
  if (threads_list.empty()) return;
  const auto work = static_cast<double>(m);
  std::printf("\n  shard-engine thread scaling (shards = %zu, per-leg 1-thread replay):\n",
              shards);
  double rate_1t = 0.0;
  for (const std::size_t t : threads_list) {
    // Counters open before the engine so its pool threads, cloned after,
    // inherit them; the sample then covers the shard work, not just the
    // master thread.
    perf_counter_set counters;
    shard_engine engine(
        shard_options{.threads = t, .shards = shards, .lanes = lanes, .isa = g_isa_request});
    scale_entry entry =
        time_scale_leg("shard", kernel_isa_name(engine.isa()), t, n, m, interval, seed, counters,
                       [&engine](b_batch& p, rng_t& rng, step_count chunk) {
                         step_many_parallel(p, rng, chunk, engine);
                       });
    // Per-leg parity replay: 1 worker, scalar backend, same (seed,
    // shards, lanes) sampling contract.
    shard_engine replay_engine(shard_options{
        .threads = 1, .shards = shards, .lanes = lanes, .isa = kernel_isa::scalar});
    const auto replay = scale_observed_run(
        n, m, interval, seed, [&replay_engine](b_batch& p, rng_t& rng, step_count chunk) {
          step_many_parallel(p, rng, chunk, replay_engine);
        });
    if (replay.loads != entry.run.loads || replay.sink != entry.run.sink) {
      std::printf("DETERMINISM FAILURE: %zu-thread %s leg diverged from its 1-thread "
                  "scalar replay\n",
                  t, entry.isa.c_str());
      std::exit(1);
    }
    entry.has_scaling = true;
    entry.parity_checked = true;
    if (t == 1 && rate_1t == 0.0) rate_1t = entry.timing.rate_median(work);
    if (rate_1t > 0.0) {
      entry.speedup_vs_1t = entry.timing.rate_median(work) / rate_1t;
      entry.efficiency = entry.speedup_vs_1t / static_cast<double>(t);
    }
    std::printf("    t=%-3zu %12.3e balls/s   speedup %5.2fx  efficiency %5.1f%%  "
                "replay ok  (%s)\n",
                t, entry.timing.rate_median(work), entry.speedup_vs_1t,
                100.0 * entry.efficiency, perf_note(entry.perf).c_str());
    results.push_back(std::move(entry));
  }
}

/// Cross-run worker sweep: the campaign orchestrator's work-stealing
/// scheduler over a deliberately heterogeneous cell mix -- kernel-path
/// b-Batch cells alternating with fused-loop zipf two-choice cells, the
/// straggler pattern stealing exists for.  Every leg's aggregate JSON
/// must be byte-identical to the 1-worker leg's (the orchestrator's
/// determinism contract under stealing).
void run_workers_matrix(bin_count n, step_count total_m,
                        const std::vector<std::size_t>& workers_list, std::size_t lanes,
                        std::uint64_t seed, std::vector<scale_entry>& results) {
  if (workers_list.empty()) return;
  constexpr std::size_t kCells = 8;
  const step_count m_cell = std::max<step_count>(1, total_m / kCells);
  std::vector<campaign_config> configs;
  for (std::size_t c = 0; c < kCells; ++c) {
    campaign_config config;
    config.m = m_cell;
    if (c % 2 == 0) {
      config.label = "b-batch-" + std::to_string(c);
      config.factory = [n] { return any_process(b_batch(n, static_cast<step_count>(n))); };
    } else {
      config.label = "two-choice-zipf-" + std::to_string(c);
      config.factory = [n] {
        two_choice p(n);
        p.set_model(make_model("unit", "zipf:1", n));
        return any_process(std::move(p));
      };
    }
    configs.push_back(std::move(config));
  }
  const auto work = static_cast<double>(m_cell) * static_cast<double>(kCells);
  std::printf("\n  campaign worker scaling (%zu mixed cells x %lld balls, work stealing, "
              "byte-parity vs 1 worker):\n",
              kCells, static_cast<long long>(m_cell));
  std::string reference_json;
  double rate_1w = 0.0;
  for (const std::size_t w : workers_list) {
    campaign_options opt;
    opt.repeats = 1;
    opt.seed = seed;
    opt.threads = w;
    opt.use_kernel = true;
    opt.lanes = lanes;
    opt.isa = g_isa_request;
    perf_counter_set counters;
    const hugepage_stats_t hp_before = hugepage_stats();
    counters.start();
    scale_entry entry;
    entry.kernel = "campaign";
    entry.isa = kernel_isa_name(resolve_kernel_isa(g_isa_request));
    entry.threads = w;
    entry.process = "mixed";
    std::string json;
    entry.timing = time_median_of(kWarmup, kReps, [&] {
      const auto campaign = run_campaign(configs, opt);
      json = campaign.to_json();
    });
    entry.perf = counters.stop();
    annotate_env(entry, hp_before);
    if (reference_json.empty()) {
      reference_json = json;  // workers_list starts with 1 (normalized)
    } else if (json != reference_json) {
      std::printf("DETERMINISM FAILURE: %zu-worker campaign aggregate JSON diverged from "
                  "the 1-worker reference\n",
                  w);
      std::exit(1);
    }
    entry.has_scaling = true;
    entry.parity_checked = true;
    if (w == 1 && rate_1w == 0.0) rate_1w = entry.timing.rate_median(work);
    if (rate_1w > 0.0) {
      entry.speedup_vs_1t = entry.timing.rate_median(work) / rate_1w;
      entry.efficiency = entry.speedup_vs_1t / static_cast<double>(w);
    }
    std::printf("    w=%-3zu %12.3e balls/s   speedup %5.2fx  efficiency %5.1f%%  "
                "json ok  (%s)\n",
                w, entry.timing.rate_median(work), entry.speedup_vs_1t,
                100.0 * entry.efficiency, perf_note(entry.perf).c_str());
    results.push_back(std::move(entry));
  }
}

/// The price of kill-safety: the serial fused b-batch run re-timed with
/// real (encoded, CRC'd, fsync'd) checkpoint files written about every
/// `every` balls, against the same run without.  Returns the relative
/// slowdown; exits if checkpointing perturbed the loads at all.
double measure_checkpoint_overhead(bin_count n, step_count m, step_count every,
                                   std::uint64_t seed) {
  const std::string path = "BENCH_checkpoint.ckpt";
  const process_spec spec{"b-batch", n, static_cast<double>(n)};
  std::vector<load_t> plain_loads;
  std::vector<load_t> ckpt_loads;
  const auto timed_run = [&](step_count cadence, std::vector<load_t>& loads_out) {
    return time_median_of(kWarmup, kReps, [&] {
      any_process process = make_process(spec);
      rng_t rng(seed);
      run_engine engine((engine_options{}));
      (void)run_checkpointed(process, m, rng, engine, cadence, [&](step_count) {
        write_checkpoint_file(path,
                              capture_checkpoint(process, rng, engine.fingerprint(), 0, seed));
      });
      loads_out = process.state().loads();
    });
  };
  const timing_stats t_plain = timed_run(0, plain_loads);
  const timing_stats t_ckpt = timed_run(every, ckpt_loads);
  std::remove(path.c_str());
  if (plain_loads != ckpt_loads) {
    std::printf("CHECKPOINT PERTURBATION FAILURE: checkpointed run diverged from plain run\n");
    std::exit(1);
  }
  const double overhead = t_ckpt.median_s / t_plain.median_s - 1.0;
  const auto marks = static_cast<long long>(every > 0 ? (m - 1) / every : 0);
  std::printf("  checkpoint overhead   %+13.2f%% (every %lld balls: %lld fsync'd "
              "checkpoint file(s), loads unperturbed)\n",
              overhead * 100.0, static_cast<long long>(every), marks);
  return overhead;
}

void run_scale_benchmark(bin_count n, step_count m, std::size_t threads, std::size_t shards,
                         std::size_t lanes, const std::string& kernel_flag, std::uint64_t seed,
                         bool verify, const std::string& alias_spec, step_count checkpoint_every,
                         const std::vector<std::size_t>& threads_list,
                         const std::vector<std::size_t>& workers_list,
                         const std::string& departures_spec, step_count churn_occupancy,
                         const std::string& json_path) {
  const auto interval = static_cast<step_count>(n);
  const auto work = static_cast<double>(m);
  const kernel_isa best = detect_kernel_isa();
  const host_info host = detect_host_info();
  std::printf("\nscale benchmark: b-batch b=n observed run, n = %u, m = %lld, lanes = %zu\n", n,
              static_cast<long long>(m), lanes);
  std::printf("  warm median of %d reps (+%d warmup); CPU's best backend: %s\n", kReps, kWarmup,
              kernel_isa_name(best));
  std::printf("  host: %s (%u hardware threads, %zu-byte cache lines)\n",
              host.cpu_model.empty() ? "unknown CPU" : host.cpu_model.c_str(),
              host.hardware_concurrency, host.cache_line_size);

  std::vector<scale_entry> results;

  // Leg 1: the serial fused loop -- the scalar one-ball-at-a-time
  // baseline every kernel leg is measured against.
  {
    perf_counter_set counters;
    results.push_back(time_scale_leg(
        "off", "none", 1, n, m, interval, seed, counters,
        [](b_batch& p, rng_t& rng, step_count chunk) { step_many(p, rng, chunk); }));
  }
  const double fused_rate = results.front().timing.rate_median(work);

  // Legs 2..: the serial kernel engine per requested backend.  --kernel
  // scalar or simd narrows the list; auto runs scalar plus EVERY SIMD
  // backend this binary compiled in and this CPU supports, so e.g. avx2
  // and avx512 coexist as separately regression-gated legs.  An --isa
  // override wins over all of that and pins the single requested backend
  // (resolve_kernel_isa warn_once-falls-back if this CPU lacks it).
  std::vector<kernel_isa> backends;
  if (g_isa_request != kernel_isa::auto_detect) {
    backends = {resolve_kernel_isa(g_isa_request)};
  } else if (kernel_flag == "scalar") {
    backends = {kernel_isa::scalar};
  } else if (kernel_flag == "simd") {
    backends = {best};
  } else {  // auto
    backends = {kernel_isa::scalar};
    for (const kernel_isa isa :
         {kernel_isa::sse2, kernel_isa::avx2, kernel_isa::avx512, kernel_isa::neon}) {
      if (kernel_isa_supported(isa)) backends.push_back(isa);
    }
  }
  const std::size_t first_kernel_leg = results.size();
  for (const kernel_isa isa : backends) {
    perf_counter_set counters;
    kernel_engine engine(kernel_options{.lanes = lanes, .isa = isa});
    results.push_back(time_scale_leg(
        "kernel", kernel_isa_name(engine.isa()), 1, n, m, interval, seed, counters,
        [&engine](b_batch& p, rng_t& rng, step_count chunk) {
          step_many_kernel(p, rng, chunk, engine);
        }));
  }

  // Untuned leg: the best requested backend re-timed with software
  // prefetch and window interleaving off.  Tuning is execution-only
  // (bit-identical by contract, revalidated by the parity sweep below),
  // so this tuned/untuned pair is the recorded evidence of what the
  // memory-latency work buys.  Keyed "kernel-untuned" so the regression
  // gate tracks it separately from the tuned leg of the same ISA.
  //
  // Timed as PAIRED alternating shots (tuned, untuned, tuned, ...): on
  // shared/virtualized hosts slow drift between two separately timed
  // legs swamps a few-percent tuning delta, while the per-pair ratio
  // cancels it.  kernel_tuning_speedup is the median per-pair ratio.
  double tuning_speedup = 0.0;
  {
    const kernel_tuning tuned_cfg = current_kernel_tuning();
    kernel_engine engine(kernel_options{.lanes = lanes, .isa = backends.back()});
    const auto move = [&engine](b_batch& p, rng_t& rng, step_count chunk) {
      step_many_kernel(p, rng, chunk, engine);
    };
    scale_entry entry;
    entry.kernel = "kernel-untuned";
    entry.isa = kernel_isa_name(engine.isa());
    entry.threads = 1;
    const hugepage_stats_t hp_before = hugepage_stats();
    perf_counter_set counters;
    counters.start();
    (void)scale_observed_run(n, m, interval, seed, move);  // warm-in
    std::vector<double> untuned_s;
    std::vector<double> ratios;
    for (int pair = 0; pair < kTuningPairs; ++pair) {
      double tuned_shot = 0.0;
      {
        const stopwatch clock;
        (void)scale_observed_run(n, m, interval, seed, move);
        tuned_shot = clock.seconds();
      }
      set_kernel_tuning(kernel_tuning{.prefetch = false, .interleave = false});
      {
        const stopwatch clock;
        entry.run = scale_observed_run(n, m, interval, seed, move);
        untuned_s.push_back(clock.seconds());
      }
      set_kernel_tuning(tuned_cfg);
      ratios.push_back(untuned_s.back() / tuned_shot);  // > 1 = tuning wins
    }
    entry.perf = counters.stop();
    annotate_env(entry, hp_before);
    entry.prefetch = false;  // what the leg's timed shots ran under
    entry.interleave = false;
    entry.timing = stats_from_samples(untuned_s, 1);
    tuning_speedup = median_of(ratios);
    std::printf("  %-10s isa=%-7s t=1 %12.3e balls/s   (min %.3e, max %.3e, gap %.1f, %s)\n",
                entry.kernel.c_str(), entry.isa.c_str(), entry.timing.rate_median(work),
                entry.timing.rate_min(work), entry.timing.rate_max(work), entry.run.gap,
                perf_note(entry.perf).c_str());
    results.push_back(std::move(entry));
  }
  const std::size_t untuned_leg = results.size() - 1;

  // Kernel contract spot-check at full scale: every kernel leg -- all
  // backends AND the untuned leg -- ran the same (seed, lanes) sampling,
  // so loads AND observations must be bit-identical across the board.
  for (std::size_t i = first_kernel_leg + 1; i < results.size(); ++i) {
    if (results[i].run.loads != results[first_kernel_leg].run.loads ||
        results[i].run.sink != results[first_kernel_leg].run.sink) {
      std::printf("ISA PARITY FAILURE: %s (%s) diverged from %s\n", results[i].isa.c_str(),
                  results[i].kernel.c_str(), results[first_kernel_leg].isa.c_str());
      std::exit(1);
    }
  }
  // Only a run with >= 2 distinct backends actually exercised the
  // cross-ISA comparison; a single-backend run must not claim it.
  const bool isa_verified = backends.size() > 1;
  if (isa_verified) {
    std::printf("  isa parity            %zu backends (%s .. %s) bit for bit "
                "(loads + observations)\n",
                backends.size(), kernel_isa_name(backends.front()),
                kernel_isa_name(backends.back()));
  }
  // Headline speedup: the fastest tuned kernel leg (backends.back() is
  // the best requested ISA in every mode, but let the measurement decide).
  std::size_t best_kernel_leg = first_kernel_leg;
  for (std::size_t i = first_kernel_leg; i < untuned_leg; ++i) {
    if (results[i].timing.rate_median(work) >
        results[best_kernel_leg].timing.rate_median(work)) {
      best_kernel_leg = i;
    }
  }
  const double kernel_speedup =
      results[best_kernel_leg].timing.rate_median(work) / fused_rate;
  std::printf("  kernel vs fused       %14.2fx (%s, 1 thread)\n", kernel_speedup,
              results[best_kernel_leg].isa.c_str());
  std::printf("  tuned vs untuned      %14.2fx (prefetch + interleave on %s, median of %d "
              "paired shots)\n",
              tuning_speedup, results[untuned_leg].isa.c_str(), kTuningPairs);

  // Shard leg: the shard-parallel engine with the kernel inside each
  // shard (counters before the engine so pool threads are inherited).
  perf_counter_set shard_counters;
  shard_engine engine(shard_options{
      .threads = threads, .shards = shards, .lanes = lanes, .isa = g_isa_request});
  results.push_back(time_scale_leg(
      "shard", kernel_isa_name(engine.isa()), engine.threads(), n, m, interval, seed,
      shard_counters,
      [&engine](b_batch& p, rng_t& rng, step_count chunk) {
        step_many_parallel(p, rng, chunk, engine);
      }));
  const scale_entry shard = results.back();  // copy: the alias leg below may reallocate
  std::printf("  shard vs fused        %14.2fx on %u hardware cores\n",
              shard.timing.rate_median(work) / fused_rate, std::thread::hardware_concurrency());

  // Alias-sampled two-choice leg: the generalized-model smoke signal.  A
  // zipf-skewed bin sampler through the serial fused loop -- keyed by its
  // (weighting, sampler) pair in the JSON so the regression gate tracks
  // the alias fast path separately from the uniform legs.
  if (!alias_spec.empty()) {
    scale_entry alias_leg;
    alias_leg.kernel = "off";
    alias_leg.isa = "none";
    alias_leg.threads = 1;
    alias_leg.process = "two-choice";
    alias_leg.sampler = alias_spec;
    const auto make_alias_two_choice = [n, &alias_spec] {
      two_choice p(n);
      p.set_model(make_model("unit", alias_spec, n));
      return p;
    };
    perf_counter_set counters;
    const hugepage_stats_t hp_before = hugepage_stats();
    counters.start();
    alias_leg.timing = time_median_of(kWarmup, kReps, [&] {
      alias_leg.run = scale_observed_run_with(
          make_alias_two_choice, m, interval, seed,
          [](two_choice& p, rng_t& rng, step_count chunk) { step_many(p, rng, chunk); });
    });
    alias_leg.perf = counters.stop();
    annotate_env(alias_leg, hp_before);
    std::printf("  %-10s sampler=%-9s t=1 %12.3e balls/s   (two-choice, gap %.1f)\n", "off",
                alias_spec.c_str(), alias_leg.timing.rate_median(work), alias_leg.run.gap);
    results.push_back(std::move(alias_leg));
  }

  // Steady-state churn legs: the event-stream API under load, per
  // departure channel.  Each channel gets two legs reporting EVENTS per
  // second (arrivals + departures) at fixed occupancy:
  //   * "churn"        -- the serial per-event reference: a two-choice
  //                       system warmed to `churn_occupancy` residents,
  //                       then advance() on the master stream (PR 9's
  //                       committed baseline key, law unchanged);
  //   * "churn-kernel" -- the batched path: a b-Batch system (b = the
  //                       churn cycle, so arrivals vectorize too -- the
  //                       windowless two-choice would serialize them) in
  //                       cycles of kernel arrivals + kernel departure
  //                       blocks through the serial kernel engine.  The
  //                       cycle is max(min_window, n) -- the committed
  //                       observed-run window b = n, which amortizes the
  //                       per-block O(n) snapshot/commit passes over a
  //                       full window of events.
  // Keyed by (kernel, process, departures) in the JSON; the tail records
  // per-channel kernel-vs-serial speedups.  --departures narrows to one
  // channel; the default sweeps all three.
  const step_count churn_pairs = m / 10;
  std::vector<std::pair<std::string, double>> churn_speedups;
  if (churn_pairs > 0) {
    const std::vector<std::string> channels =
        departures_spec.empty() || departures_spec == "none"
            ? std::vector<std::string>{"random", "lease", "drain"}
            : std::vector<std::string>{departures_spec};
    const step_count occupancy =
        churn_occupancy > 0 ? churn_occupancy : static_cast<step_count>(n);
    const double churn_work = 2.0 * static_cast<double>(churn_pairs);
    for (const std::string& channel : channels) {
      double serial_rate = 0.0;
      {
        scale_entry leg;
        leg.kernel = "churn";
        leg.isa = "none";
        leg.threads = 1;
        leg.process = "two-choice";
        leg.departures = channel;
        perf_counter_set churn_counters;
        const hugepage_stats_t hp_before = hugepage_stats();
        two_choice warmed(n);
        warmed.set_model(make_model("unit", "uniform", n, channel));
        rng_t warm_rng(seed);
        nb::step_many(warmed, warm_rng, occupancy);
        churn_counters.start();
        leg.timing = time_median_of(kWarmup, kReps, [&] {
          two_choice p = warmed;  // every shot churns the same warmed system
          rng_t rng = warm_rng;
          advance(p, rng, traffic_spec{churn_pairs, churn_pairs});
          const auto& s = p.state();
          leg.run.gap = s.gap();
          leg.run.sink = s.gap() + s.underload_gap();
          leg.run.loads = s.loads();
        });
        leg.perf = churn_counters.stop();
        annotate_env(leg, hp_before);
        serial_rate = leg.timing.rate_median(churn_work);
        std::printf("  %-10s dep=%-8s t=1 %12.3e events/s  (two-choice at occupancy %lld, "
                    "gap %.1f, %s)\n",
                    "churn", channel.c_str(), serial_rate, static_cast<long long>(occupancy),
                    leg.run.gap, perf_note(leg.perf).c_str());
        results.push_back(std::move(leg));
      }
      {
        const step_count cycle = std::max<step_count>(4096, static_cast<step_count>(n));
        scale_entry leg;
        leg.kernel = "churn-kernel";
        leg.threads = 1;
        leg.process = "b-batch";
        leg.departures = channel;
        perf_counter_set churn_counters;
        const hugepage_stats_t hp_before = hugepage_stats();
        kernel_engine engine(kernel_options{.lanes = lanes, .isa = g_isa_request});
        leg.isa = kernel_isa_name(engine.isa());
        b_batch warmed(n, cycle);
        warmed.set_model(make_model("unit", "uniform", n, channel));
        rng_t warm_rng(seed);
        step_many_kernel(warmed, warm_rng, occupancy, engine);
        churn_counters.start();
        leg.timing = time_median_of(kWarmup, kReps, [&] {
          b_batch p = warmed;
          rng_t rng = warm_rng;
          for (step_count served = 0; served < churn_pairs;) {
            const step_count k = std::min(cycle, churn_pairs - served);
            step_many_kernel(p, rng, k, engine);
            depart_many_kernel(p, rng, k, engine);
            served += k;
          }
          const auto& s = p.state();
          leg.run.gap = s.gap();
          leg.run.sink = s.gap() + s.underload_gap();
          leg.run.loads = s.loads();
        });
        leg.perf = churn_counters.stop();
        annotate_env(leg, hp_before);
        const double kernel_rate = leg.timing.rate_median(churn_work);
        if (serial_rate > 0.0) churn_speedups.emplace_back(channel, kernel_rate / serial_rate);
        std::printf("  %-10s dep=%-8s isa=%-7s %10.3e events/s  (b-batch cycle %lld, "
                    "%5.2fx vs serial, gap %.1f, %s)\n",
                    "churn-kern", channel.c_str(), leg.isa.c_str(), kernel_rate,
                    static_cast<long long>(cycle),
                    serial_rate > 0.0 ? kernel_rate / serial_rate : 0.0, leg.run.gap,
                    perf_note(leg.perf).c_str());
        results.push_back(std::move(leg));
      }
    }
  }

  // Checkpoint-overhead leg: recorded (not speed-gated) so the cost of
  // making a run preemptible stays visible next to the throughput it taxes.
  double ckpt_overhead = -1.0;
  if (checkpoint_every > 0) {
    ckpt_overhead = measure_checkpoint_overhead(n, m, checkpoint_every, seed);
  }

  bool identical = true;
  if (verify) {
    // Determinism contract: same seed + same (shards, lanes) under ONE
    // worker thread and the scalar backend must reproduce the
    // multi-threaded SIMD run bit for bit, including every checkpoint.
    shard_engine engine1(shard_options{
        .threads = 1, .shards = shards, .lanes = lanes, .isa = kernel_isa::scalar});
    const auto replay = scale_observed_run(
        n, m, interval, seed, [&engine1](b_batch& p, rng_t& rng, step_count chunk) {
          step_many_parallel(p, rng, chunk, engine1);
        });
    identical = replay.loads == shard.run.loads && replay.sink == shard.run.sink;
    if (!identical) {
      std::printf("DETERMINISM FAILURE: 1-thread scalar replay diverged from %zu-thread %s run\n",
                  shard.threads, shard.isa.c_str());
      std::exit(1);
    }
    std::printf("  determinism           1-thread scalar replay bit-identical\n");
  }

  // The scaling matrix: intra-run threads x cross-run campaign workers.
  run_threads_matrix(n, m, interval, threads_list, shards, lanes, seed, results);
  // Campaign legs split a half-size total over 8 heterogeneous cells;
  // scheduling overhead, not per-ball throughput, is what they measure.
  run_workers_matrix(n, m / 2, workers_list, lanes, seed, results);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    NB_REQUIRE(f != nullptr, "cannot open --json output path");
    // CPU model strings are plain ASCII in practice; neutralize the two
    // characters that could still break the JSON literal.
    std::string cpu_model = host.cpu_model;
    for (char& c : cpu_model) {
      if (c == '"' || c == '\\') c = ' ';
    }
    // Every backend this binary + CPU pair can actually run: the
    // regression gate uses this to skip (with notice) baseline legs whose
    // ISA a fresh runner cannot reproduce, instead of failing them.
    std::string supported_isas;
    for (const kernel_isa isa : {kernel_isa::scalar, kernel_isa::sse2, kernel_isa::avx2,
                                 kernel_isa::avx512, kernel_isa::neon}) {
      if (!kernel_isa_supported(isa)) continue;
      if (!supported_isas.empty()) supported_isas += ", ";
      supported_isas += '"';
      supported_isas += kernel_isa_name(isa);
      supported_isas += '"';
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"throughput_scale\",\n"
                 "  \"process\": \"b-batch\",\n"
                 "  \"n\": %u,\n  \"m\": %lld,\n  \"b\": %u,\n  \"interval\": %lld,\n"
                 "  \"seed\": %llu,\n  \"shards\": %zu,\n  \"lanes\": %zu,\n"
                 "  \"cpu_model\": \"%s\",\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"cache_line\": %zu,\n"
                 "  \"supported_isas\": [%s],\n"
                 "  \"isa_forced\": %s%s%s,\n"
                 "  \"hugepages_requested\": %s,\n"
                 "  \"timing\": {\"warmup\": %d, \"reps\": %d, \"statistic\": \"median\"},\n"
                 "  \"results\": [\n",
                 n, static_cast<long long>(m), n, static_cast<long long>(interval),
                 static_cast<unsigned long long>(seed), shards, lanes, cpu_model.c_str(),
                 host.hardware_concurrency, host.cache_line_size, supported_isas.c_str(),
                 g_isa_forced.empty() ? "null" : "\"", g_isa_forced.c_str(),
                 g_isa_forced.empty() ? "" : "\"", hugepages_enabled() ? "true" : "false",
                 kWarmup, kReps);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const scale_entry& e = results[i];
      // Campaign legs split the work over half the balls (see above) and
      // churn legs count events (arrivals + departures), so their rates
      // use their own work terms.
      const double leg_work =
          e.kernel == "campaign" ? static_cast<double>(std::max<step_count>(1, m / 2 / 8)) * 8.0
          : e.kernel == "churn" || e.kernel == "churn-kernel"
              ? 2.0 * static_cast<double>(churn_pairs)
              : work;
      std::fprintf(f,
                   "    {\"kernel\": \"%s\", \"isa\": \"%s\", \"threads\": %zu,\n"
                   "     \"process\": \"%s\", \"weighting\": \"%s\", \"sampler\": \"%s\",\n"
                   "     \"departures\": \"%s\",\n"
                   "     \"isa_detected\": \"%s\", \"isa_forced\": %s%s%s,\n"
                   "     \"hugepages\": \"%s\", \"hugepage_errno\": %d,\n"
                   "     \"prefetch\": %s, \"interleave\": %s,\n"
                   "     \"balls_per_sec\": %.6e, \"balls_per_sec_min\": %.6e,\n"
                   "     \"balls_per_sec_max\": %.6e, \"seconds_median\": %.6f,\n"
                   "     \"gap\": %.2f",
                   e.kernel.c_str(), e.isa.c_str(), e.threads, e.process.c_str(),
                   e.weighting.c_str(), e.sampler.c_str(), e.departures.c_str(),
                   e.isa_detected.c_str(),
                   e.isa_forced.empty() ? "null" : "\"", e.isa_forced.c_str(),
                   e.isa_forced.empty() ? "" : "\"", e.hugepages.c_str(), e.hugepage_errno,
                   e.prefetch ? "true" : "false", e.interleave ? "true" : "false",
                   e.timing.rate_median(leg_work), e.timing.rate_min(leg_work),
                   e.timing.rate_max(leg_work), e.timing.median_s, e.run.gap);
      if (e.has_scaling) {
        std::fprintf(f,
                     ",\n     \"speedup_vs_1thread\": %.4f, \"parallel_efficiency\": %.4f,\n"
                     "     \"bit_identical_to_1thread\": %s",
                     e.speedup_vs_1t, e.efficiency, e.parity_checked ? "true" : "false");
      }
      if (e.perf.available) {
        std::fprintf(f, ",\n     \"perf\": {\"cycles\": %.6e, \"instructions\": %.6e, "
                        "\"ipc\": %.4f, ",
                     e.perf.cycles, e.perf.instructions, e.perf.ipc());
        if (e.perf.llc_misses >= 0.0) {
          std::fprintf(f, "\"llc_misses\": %.6e, ", e.perf.llc_misses);
        } else {
          std::fprintf(f, "\"llc_misses\": null, ");
        }
        if (e.perf.stalled_cycles >= 0.0) {
          std::fprintf(f, "\"stalled_cycles\": %.6e, \"stalled_frac\": %.4f}",
                       e.perf.stalled_cycles, e.perf.stalled_frac());
        } else {
          std::fprintf(f, "\"stalled_cycles\": null, \"stalled_frac\": null}");
        }
      } else {
        // Explicitly unavailable (no usable PMU on this runner), never
        // silently absent.
        std::fprintf(f, ",\n     \"perf\": null");
      }
      std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"kernel_vs_fused_speedup\": %.4f,\n"
                 "  \"kernel_tuning_speedup\": %.4f,\n"
                 "  \"shard_vs_fused_speedup\": %.4f,\n",
                 kernel_speedup, tuning_speedup, shard.timing.rate_median(work) / fused_rate);
    // Per-channel batched-departure speedups: churn-kernel events/s over
    // the serial churn reference on the same channel.
    if (churn_speedups.empty()) {
      std::fprintf(f, "  \"churn_kernel_vs_serial_speedup\": null,\n");
    } else {
      std::fprintf(f, "  \"churn_kernel_vs_serial_speedup\": {");
      for (std::size_t i = 0; i < churn_speedups.size(); ++i) {
        std::fprintf(f, "%s\"%s\": %.4f", i ? ", " : "", churn_speedups[i].first.c_str(),
                     churn_speedups[i].second);
      }
      std::fprintf(f, "},\n");
    }
    if (ckpt_overhead >= -0.5) {
      std::fprintf(f,
                   "  \"checkpoint_every\": %lld,\n  \"checkpoint_overhead_frac\": %.4f,\n",
                   static_cast<long long>(checkpoint_every), ckpt_overhead);
    } else {
      std::fprintf(f, "  \"checkpoint_every\": 0,\n  \"checkpoint_overhead_frac\": null,\n");
    }
    std::fprintf(f,
                 "  \"identical_across_isa_backends\": %s,\n"
                 "  \"identical_across_thread_counts\": %s\n"
                 "}\n",
                 isa_verified ? "true" : "null", verify ? "true" : "null");
    std::fclose(f);
    std::printf("  wrote %s\n", json_path.c_str());
  }
}

/// Parses a comma-separated list of positive thread counts ("1,2,4").
/// Normalized for the scaling matrix: sorted ascending, deduplicated, and
/// 1 prepended when missing (speedup/parity legs need the 1-thread
/// reference first).  Empty spec = matrix off.
std::vector<std::size_t> parse_count_list(const std::string& flag, const std::string& spec) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t next = spec.find(',', pos);
    if (next == std::string::npos) next = spec.size();
    const std::string token = spec.substr(pos, next - pos);
    if (!token.empty()) {
      NB_REQUIRE(token.find_first_not_of("0123456789") == std::string::npos,
                 "--" + flag + " entries must be positive integers");
      const unsigned long value = std::strtoul(token.c_str(), nullptr, 10);
      NB_REQUIRE(value >= 1 && value <= 1024, "--" + flag + " entries must be in [1, 1024]");
      out.push_back(static_cast<std::size_t>(value));
    }
    pos = next + 1;
  }
  if (out.empty()) return out;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (out.front() != 1) out.insert(out.begin(), 1);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  cli_parser cli(
      "Throughput of the per-ball vs bulk (step_many) allocation paths.\n"
      "Columns: balls/sec per-ball, balls/sec bulk, speedup.");
  cli.add_int("n", 10000, "number of bins");
  cli.add_int("m", 10000000, "number of balls");
  cli.add_int("interval", 0, "observation interval for the observed-run row (0 = n)");
  cli.add_int("seed", 42, "RNG seed (same stream for both paths)");
  cli.add_bool("scale", false, "also run the allocation-kernel scale benchmark (b-batch b=n)");
  cli.add_int("scale-n", 1000000, "bins for the scale benchmark (paper scale: 10^6)");
  cli.add_int("scale-m", 100000000, "balls for the scale benchmark (paper scale: 10^8)");
  cli.add_int("scale-threads", 0, "intra-run worker threads for the shard leg (0 = cores)");
  cli.add_int("shards", 16, "fixed shard count for the parallel engine (sampling contract)");
  cli.add_string("kernel", "auto",
                 "scale-benchmark kernel legs: scalar | simd | auto (auto = compare "
                 "scalar against every SIMD backend this CPU supports)");
  cli.add_string("isa", "",
                 "force one kernel ISA backend for every scale leg (scalar | sse2 | avx2 "
                 "| avx512 | neon; \"\" = auto-detect; unsupported requests warn once and "
                 "fall back)");
  cli.add_bool("hugepages", false,
               "request transparent-huge-page backing for the load array and compact "
               "snapshot (madvise; execution-only, fail-soft; also via NB_HUGEPAGES=1)");
  cli.add_int("lanes", 8, "kernel RNG lanes (sampling contract, like shards)");
  cli.add_bool("scale-verify", true,
               "replay the shard leg on 1 thread with the scalar backend and require bit parity");
  cli.add_string("alias-sampler", "zipf:1",
                 "bin-sampler spec for the alias-sampled two-choice scale leg "
                 "(\"\" = skip the leg)");
  cli.add_int("checkpoint-every", 10000000,
              "scale benchmark: also time the fused leg with fsync'd mid-run checkpoint "
              "files about every N balls and record the overhead (0 = skip the leg)");
  cli.add_string("threads-list", "1,2,4",
                 "scaling matrix: comma-separated shard-engine worker counts to sweep "
                 "(normalized to include 1; \"\" = skip the thread matrix)");
  cli.add_string("workers-list", "1,2,4",
                 "scaling matrix: comma-separated campaign worker counts to sweep over a "
                 "heterogeneous cell mix (\"\" = skip the campaign matrix)");
  // Shared steady-state churn family (util/cli).  Here --departures picks
  // the channel of the scale benchmark's churn leg ("none" = the default
  // channel, random) and --churn overrides its occupancy (0 = scale-n).
  add_churn_flags(cli);
  cli.add_string("json", "BENCH_throughput.json", "scale-result JSON path (\"\" = skip)");
  if (!cli.parse(argc, argv)) return 0;

  NB_REQUIRE(cli.get_int("n") >= 1 && cli.get_int("n") <= 0xFFFFFFFFLL,
             "--n must be in [1, 2^32)");
  NB_REQUIRE(cli.get_int("m") >= 1 && cli.get_int("m") <= max_run_balls,
             "--m must be in [1, max_run_balls]");
  const auto n = static_cast<bin_count>(cli.get_int("n"));
  const auto m = static_cast<step_count>(cli.get_int("m"));
  const auto interval =
      cli.get_int("interval") > 0 ? static_cast<step_count>(cli.get_int("interval"))
                                  : static_cast<step_count>(n);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::printf("n = %u, m = %lld, warm median of %d reps; per-ball = step() per ball,\n", n,
              static_cast<long long>(m), kReps);
  std::printf("bulk = one step_many call (bit-identical results, checked per row)\n\n");
  std::printf("%-34s %14s %14s %10s\n", "process", "per-ball b/s", "bulk b/s", "speedup");

  report("one-choice", [n] { return one_choice(n); }, m, seed);
  report("two-choice", [n] { return two_choice(n); }, m, seed);
  report("two-choice (type-erased driver)", [n] { return any_process(two_choice(n)); }, m, seed);
  report("d-choice (d=4)", [n] { return d_choice(n, 4); }, m, seed);
  report("(1+beta) beta=0.5", [n] { return one_plus_beta(n, 0.5); }, m, seed);
  report("g-bounded g=8", [n] { return g_bounded(n, 8); }, m, seed);
  report("sigma-noisy-load s=8", [n] { return sigma_noisy_load(n, rho_gaussian(8.0)); }, m, seed);
  report("b-batch b=n", [n] { return b_batch(n, n); }, m, seed);
  report("b-batch b=n (type-erased driver)", [n] { return any_process(b_batch(n, n)); }, m, seed);
  report("tau-delay tau=n", [n] { return tau_delay<delay_adversarial>(n, n); }, m, seed);
  const double observed_speedup = report_observed_run(n, m, interval, seed);

  std::printf(
      "\nheadline: the observed-run row is the before/after of PR 1's\n"
      "bulk-step refactor -- per-ball stepping with the sort-based\n"
      "per-checkpoint observations the old code paid (O(n log n) each)\n"
      "versus step_many between checkpoints plus the level-compressed load\n"
      "index (sort-free).  Observed-run speedup: %.2fx at one checkpoint\n"
      "per %lld balls.  The scale section (--scale) is the allocation\n"
      "kernel's before/after at paper scale.\n",
      observed_speedup, static_cast<long long>(interval));

  if (cli.get_bool("scale")) {
    NB_REQUIRE(cli.get_int("scale-n") >= 1 && cli.get_int("scale-n") <= 0xFFFFFFFFLL,
               "--scale-n must be in [1, 2^32)");
    NB_REQUIRE(cli.get_int("scale-m") >= 1 && cli.get_int("scale-m") <= max_run_balls,
               "--scale-m must be in [1, max_run_balls]");
    NB_REQUIRE(cli.get_int("shards") >= 1, "--shards must be positive");
    NB_REQUIRE(cli.get_int("scale-threads") >= 0, "--scale-threads must be >= 0");
    NB_REQUIRE(cli.get_int("lanes") >= 1 &&
                   cli.get_int("lanes") <= static_cast<std::int64_t>(kernel_max_lanes),
               "--lanes must be in [1, kernel_max_lanes]");
    const std::string kernel_flag = cli.get_string("kernel");
    NB_REQUIRE(kernel_flag == "scalar" || kernel_flag == "simd" || kernel_flag == "auto",
               "--kernel must be scalar, simd or auto");
    NB_REQUIRE(cli.get_int("checkpoint-every") >= 0, "--checkpoint-every must be >= 0");
    const std::string isa_flag = cli.get_string("isa");
    if (!isa_flag.empty()) {
      const auto parsed = kernel_isa_from_name(isa_flag);
      NB_REQUIRE(parsed.has_value(), "--isa must name a kernel backend (see --help)");
      if (*parsed != kernel_isa::auto_detect) {  // "--isa auto" = no force
        g_isa_request = *parsed;
        g_isa_forced = kernel_isa_name(*parsed);
      }
    }
    if (cli.get_bool("hugepages")) set_hugepages_enabled(true);
    const churn_flag_values churn = get_churn_flags(cli);
    // "none" (the default) sweeps all three churn channels; an explicit
    // --departures narrows the churn legs to that one channel.
    const std::string departures_spec = churn.departures;
    if (departures_spec != "none") {
      (void)make_departures(departures_spec);  // validate the spec up front
    }
    if (churn.telemetry > 0) {
      warn_once("throughput-churn-telemetry",
                "--churn-telemetry has no effect here: the churn leg times throughput and "
                "records only its final gap");
    }
    run_scale_benchmark(static_cast<bin_count>(cli.get_int("scale-n")),
                        static_cast<step_count>(cli.get_int("scale-m")),
                        static_cast<std::size_t>(cli.get_int("scale-threads")),
                        static_cast<std::size_t>(cli.get_int("shards")),
                        static_cast<std::size_t>(cli.get_int("lanes")), kernel_flag, seed,
                        cli.get_bool("scale-verify"), cli.get_string("alias-sampler"),
                        static_cast<step_count>(cli.get_int("checkpoint-every")),
                        parse_count_list("threads-list", cli.get_string("threads-list")),
                        parse_count_list("workers-list", cli.get_string("workers-list")),
                        departures_spec, static_cast<step_count>(churn.churn),
                        cli.get_string("json"));
  }
  return 0;
}
