// Ablation: adversary strength inside the g-Adv-Comp budget.
//
// The setting admits *any* adaptive adversary; the paper instantiates two
// (greedy = g-Bounded, random = g-Myopic-Comp).  This bench compares all
// shipped strategies at equal g, answering:
//   * how much of the O(g + log n) budget does each strategy realize?
//   * is greedy reversal actually the strongest simple strategy?
//   * does g-Adv-Load (inverting estimates, +/-g) stay inside the
//     (2g)-Adv-Comp envelope the paper's reduction promises?
#include "bench_common.hpp"

namespace {

using namespace nb;
using namespace nb::bench;

int run(int argc, const char* const* argv) {
  cli_parser cli("ablation_adversaries -- compares adversary strategies at equal g, plus the "
                 "g-Adv-Load -> (2g)-Adv-Comp reduction.");
  add_standard_flags(cli);
  auto cfg_opt = parse_standard(cli, argc, argv);
  if (!cfg_opt) return 0;
  auto cfg = *cfg_opt;
  warn_model_flags_unsupported(cfg, "ablation_adversaries");
  if (cfg.runs_override == 0 && !cfg.paper_mode()) cfg.runs_override = 5;

  const bin_count n =
      cfg.n_override > 0 ? static_cast<bin_count>(cfg.n_override) : bin_count{10000};
  const step_count m = static_cast<step_count>(cfg.m_multiplier) * n;
  const std::vector<load_t> gs = {4, 16, 64};

  std::printf("=== Adversary-strength ablation (n=%s, m=%s, runs=%zu) ===\n\n",
              format_power_of_ten(n).c_str(), format_power_of_ten(m).c_str(), cfg.runs());

  stopwatch total;
  std::vector<cell> cells;
  for (const load_t g : gs) {
    cells.push_back({"correct", [n, g] { return any_process(g_adv_comp<always_correct>(n, g)); }, m});
    cells.push_back({"myopic", [n, g] { return any_process(g_myopic_comp(n, g)); }, m});
    cells.push_back({"index-bias", [n, g] { return any_process(g_adv_comp<index_bias>(n, g)); }, m});
    cells.push_back({"boost", [n, g] { return any_process(g_adv_comp<overload_booster>(n, g)); }, m});
    cells.push_back({"greedy", [n, g] { return any_process(g_bounded(n, g)); }, m});
    cells.push_back(
        {"adv-load", [n, g] { return any_process(g_adv_load<inverting_estimates>(n, g)); }, m});
    cells.push_back({"greedy-2g", [n, g] { return any_process(g_bounded(n, 2 * g)); }, m});
  }
  const auto results = run_cells(cells, cfg.runs(), cfg.seed, cfg.threads);
  constexpr std::size_t kPerG = 7;

  text_table table({"g", "correct(=2-choice)", "myopic", "index-bias", "boost", "greedy(bounded)",
                    "adv-load(+/-g)", "greedy(2g) envelope"});
  bool reduction_ok = true;
  bool greedy_strongest = true;
  for (std::size_t i = 0; i < gs.size(); ++i) {
    const auto* row = &results[i * kPerG];
    table.add_row({std::to_string(gs[i]), format_fixed(row[0].mean_gap(), 2),
                   format_fixed(row[1].mean_gap(), 2), format_fixed(row[2].mean_gap(), 2),
                   format_fixed(row[3].mean_gap(), 2), format_fixed(row[4].mean_gap(), 2),
                   format_fixed(row[5].mean_gap(), 2), format_fixed(row[6].mean_gap(), 2)});
    // The paper's reduction: g-Adv-Load simulable by (2g)-Adv-Comp.
    reduction_ok = reduction_ok && row[5].mean_gap() <= row[6].mean_gap() + 1.0;
    // Greedy should dominate the other single-step strategies.
    for (int k = 1; k <= 3; ++k) {
      greedy_strongest = greedy_strongest && row[4].mean_gap() + 0.75 >= row[k].mean_gap();
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("g-Adv-Load stays within its (2g)-Adv-Comp envelope: %s\n",
              reduction_ok ? "yes" : "NO");
  std::printf("greedy reversal is the strongest shipped per-step strategy: %s\n",
              greedy_strongest ? "yes" : "NO");
  std::printf(
      "(Notably the overload-booster -- which reverses only onto already-overloaded bins --\n"
      " is *weaker* than unconditional greedy: reversals among underloaded pairs feed the\n"
      " escalation ladder that eventually pushes bins into the overloaded region, so skipping\n"
      " them wastes adversarial budget.  The deterministic index-bias adversary nearly matches\n"
      " greedy at large g: a fixed target set of hot bins is almost as damaging as adaptivity.)\n");
  std::printf("[ablation_adversaries done in %s]\n", format_duration(total.seconds()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
