#!/usr/bin/env python3
"""Crash-fault injection harness for the campaign checkpoint/restore path.

Runs the `campaign` example with journaling + mid-run checkpoints, SIGKILLs
it at a randomized ball count via the NB_CRASH_AFTER_BALLS hook (the process
raises SIGKILL against itself -- no destructors, no flushes), then resumes
with `--resume` -- possibly killing the resumed run again at a fresh random
point -- until a run completes.  The surviving aggregate JSON must be
byte-identical to an uninterrupted reference run, and no per-cell
checkpoint files may remain.

    $ python3 tools/crash_fuzz.py --binary build/campaign --trials 10

With --departures the registry-backed cells run as steady-state churn
cells (warm-up + arrival/departure pairs), so the kill points also land
mid-churn with the lease ring / occupancy counter in flight.

Exit status 0 iff every trial produced byte-identical output.
"""

import argparse
import glob
import os
import random
import shutil
import subprocess
import sys
import tempfile

SIGKILL_STATUS = -9  # subprocess reports a SIGKILLed child as -SIGKILL


def campaign_cmd(binary, args, json_path, journal=None, resume=False):
    cmd = [
        binary,
        "--n", str(args.n),
        "--m-mult", str(args.m_mult),
        "--runs", str(args.runs),
        "--seed", str(args.campaign_seed),
        "--threads", str(args.threads),
        "--json", json_path,
    ]
    if args.departures != "none":
        cmd += ["--departures", args.departures]
    if journal is not None:
        cmd += ["--journal", journal, "--checkpoint-every", str(args.checkpoint_every)]
    if resume:
        cmd.append("--resume")
    return cmd


def run_campaign(cmd, crash_after=None):
    env = os.environ.copy()
    env.pop("NB_CRASH_AFTER_BALLS", None)
    if crash_after is not None:
        env["NB_CRASH_AFTER_BALLS"] = str(crash_after)
    proc = subprocess.run(cmd, env=env, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT)
    return proc.returncode, proc.stdout.decode(errors="replace")


def read_bytes(path):
    with open(path, "rb") as f:
        return f.read()


def one_trial(trial, args, binary, reference, workdir):
    journal = os.path.join(workdir, "campaign.jsonl")
    json_path = os.path.join(workdir, "campaign.json")
    kills = 0
    attempts = 0
    resume = False
    while True:
        attempts += 1
        if attempts > args.max_resumes:
            print(f"trial {trial}: FAIL -- no completion after "
                  f"{args.max_resumes} resume attempts", flush=True)
            return False
        # Keep injecting fresh random kill points on resume too, but give
        # the last few attempts a clean run so the trial always terminates.
        crash_after = None
        if attempts <= args.max_resumes - 2:
            crash_after = random.randint(1, args.total_balls)
        cmd = campaign_cmd(binary, args, json_path, journal, resume=resume)
        status, output = run_campaign(cmd, crash_after)
        if status == 0:
            break
        if status != SIGKILL_STATUS:
            print(f"trial {trial}: FAIL -- unexpected exit {status} "
                  f"(crash_after={crash_after}):\n{output}", flush=True)
            return False
        kills += 1
        resume = True

    produced = read_bytes(json_path)
    if produced != reference:
        print(f"trial {trial}: FAIL -- resumed aggregate JSON differs from "
              f"uninterrupted reference after {kills} kill(s)", flush=True)
        return False
    leftovers = glob.glob(journal + ".cell*.ckpt")
    if leftovers:
        print(f"trial {trial}: FAIL -- stale checkpoint files after "
              f"completion: {leftovers}", flush=True)
        return False
    print(f"trial {trial}: ok ({kills} kill(s), {attempts} run(s), "
          f"byte-identical)", flush=True)
    return True


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True,
                        help="path to the built campaign example")
    parser.add_argument("--trials", type=int, default=10)
    parser.add_argument("--seed", type=int, default=20220713,
                        help="fuzzer RNG seed (crash points)")
    parser.add_argument("--n", type=int, default=200)
    parser.add_argument("--m-mult", type=int, default=20)
    parser.add_argument("--runs", type=int, default=3)
    parser.add_argument("--campaign-seed", type=int, default=2022)
    parser.add_argument("--threads", type=int, default=2)
    parser.add_argument("--checkpoint-every", type=int, default=500)
    parser.add_argument("--departures", default="none",
                        help="departure channel for the registry-backed cells "
                             "(none | random | lease | drain); non-none runs "
                             "them as steady-state churn cells")
    parser.add_argument("--max-resumes", type=int, default=40)
    args = parser.parse_args()

    binary = os.path.abspath(args.binary)
    if not os.path.exists(binary):
        print(f"error: no such binary: {binary}")
        return 2
    # The campaign example sweeps 9 configs (6 noise-grid + 2 batch + 1
    # factory); kill points are drawn from the whole campaign's ball span.
    # A churn cell's progress span is occupancy + 2 * events = 3m (the
    # factory cell stays insertion-only at m), vs m for a plain cell.
    per_cell = 3 * args.n * args.m_mult if args.departures != "none" \
        else args.n * args.m_mult
    args.total_balls = args.runs * (8 * per_cell + args.n * args.m_mult)
    random.seed(args.seed)

    root = tempfile.mkdtemp(prefix="nb_crash_fuzz_")
    try:
        ref_json = os.path.join(root, "reference.json")
        status, output = run_campaign(campaign_cmd(binary, args, ref_json))
        if status != 0:
            print(f"error: reference run failed ({status}):\n{output}")
            return 2
        reference = read_bytes(ref_json)

        failures = 0
        for trial in range(1, args.trials + 1):
            workdir = os.path.join(root, f"trial{trial}")
            os.makedirs(workdir)
            if not one_trial(trial, args, binary, reference, workdir):
                failures += 1
        if failures:
            print(f"crash fuzz: {failures}/{args.trials} trial(s) FAILED")
            return 1
        print(f"crash fuzz: all {args.trials} trials byte-identical "
              f"after SIGKILL + resume")
        return 0
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
