#!/usr/bin/env python3
"""Bench-regression gate: compare a fresh BENCH_throughput.json against the
committed baseline.

The throughput bench (bench/throughput.cpp --scale) emits a results array
of per-leg entries {kernel, isa, threads, balls_per_sec, ...}.  This gate
matches fresh legs to baseline legs and fails when any fresh leg is slower
than (1 - tolerance) x its baseline, or when a headline speedup ratio
(kernel_vs_fused_speedup, shard_vs_fused_speedup) drops below the same
bound.

Matching is by the exact (kernel, isa, threads, weighting, sampler,
departures) tuple:
since the bench's auto mode runs one leg per supported SIMD backend, avx2
and avx512 legs coexist as separately gated entries, and folding them
together would let a fast new backend mask a regression in an old one.
The weighting/sampler pair keys the generalized-model legs and the
departures spec keys the steady-state churn leg (entries without the
fields, from the pre-PR-5 / pre-PR-9 schemas, default to "unit"/
"uniform"/"none").

Cross-machine portability is handled by skipping, not failing:
  * a baseline leg whose ISA is absent from the fresh run's
    "supported_isas" (the bench records what its CPU can execute) is
    skipped with a notice -- an aarch64 runner can never reproduce an
    avx512 leg, and vice versa;
  * multi-thread scaling legs (threads > 1) are only gated when the fresh
    runner actually has that many cores ("hardware_concurrency"); an
    oversubscribed leg time-slices and its rate says nothing about the
    code;
  * legs present in only one file are reported and skipped.

The default tolerance is deliberately generous (40%): the baseline is
recorded at paper scale on a developer machine while CI runs a reduced
smoke scale on shared runners, so the gate is meant to catch real
regressions (a broken fast path, an accidental serial fallback), not
machine-to-machine noise.
"""

import argparse
import json
import sys


def leg_key(entry):
    return (entry["kernel"], entry["isa"], entry["threads"],
            entry.get("weighting", "unit"), entry.get("sampler", "uniform"),
            entry.get("departures", "none"))


def index_legs(doc):
    legs = {}
    for entry in doc.get("results", []):
        legs[leg_key(entry)] = entry
    return legs


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_throughput.json (the reference)")
    parser.add_argument("--fresh", required=True,
                        help="BENCH_throughput.json from this run")
    parser.add_argument("--tolerance", type=float, default=0.40,
                        help="allowed fractional slowdown before failing (default 0.40)")
    args = parser.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    base_legs = index_legs(baseline)
    fresh_legs = index_legs(fresh)
    floor = 1.0 - args.tolerance
    # The fresh file knows the runner it ran on; older baselines / fresh
    # files may predate the host-metadata and supported-ISA fields (None =
    # unknown, never skip on it).
    runner_cores = fresh.get("hardware_concurrency", 0)
    runner_isas = fresh.get("supported_isas")
    failures = []
    print(f"bench-regression gate: tolerance {args.tolerance:.0%} "
          f"(fail below {floor:.0%} of baseline)")
    if runner_cores:
        print(f"  runner: {fresh.get('cpu_model', 'unknown CPU')} "
              f"({runner_cores} hardware threads)")
    if runner_isas is not None:
        print(f"  runner backends: {', '.join(runner_isas)}")

    for key, base in sorted(base_legs.items()):
        kernel, isa, threads, weighting, sampler, departures = key
        label = f"kernel={kernel:<6} isa={isa:<6} threads={threads}"
        if weighting != "unit" or sampler != "uniform":
            label += f" weighting={weighting} sampler={sampler}"
        if departures != "none":
            label += f" departures={departures}"
        if (runner_isas is not None and isa not in ("none",)
                and isa not in runner_isas):
            print(f"  SKIP {label}: this runner's CPU does not support "
                  f"{isa} (supports: {', '.join(runner_isas)})")
            continue
        if key not in fresh_legs:
            print(f"  SKIP {label}: leg missing from fresh results")
            continue
        if runner_cores and threads > runner_cores:
            print(f"  SKIP {label}: leg needs {threads} threads but the runner "
                  f"has {runner_cores}; oversubscribed timings are not gateable")
            continue
        base_rate = base["balls_per_sec"]
        fresh_rate = fresh_legs[key]["balls_per_sec"]
        ratio = fresh_rate / base_rate
        verdict = "ok" if ratio >= floor else "REGRESSION"
        print(f"  {verdict:<10} {label}: {fresh_rate:.3e} vs baseline "
              f"{base_rate:.3e} balls/s ({ratio:.0%})")
        if ratio < floor:
            failures.append(label)

    for key in sorted(set(fresh_legs) - set(base_legs)):
        print(f"  NOTE new leg not in baseline: kernel={key[0]} isa={key[1]} threads={key[2]} "
              f"weighting={key[3]} sampler={key[4]} departures={key[5]}")

    # Headline speedup ratios are machine-independent-ish (same run, same
    # machine, two legs) but NOT scale-independent: at smoke scale the
    # serial fused loop is cache-resident and fast, at paper scale it is
    # DRAM-bound, so ratios over the fused leg shift with (n, m) even on
    # identical hardware.  Gate them only when both files ran the same
    # scale; a cross-scale comparison is skipped like any other
    # ungateable leg (the per-leg rate checks above still apply at every
    # scale and are what catch a broken fast path).
    same_scale = (baseline.get("n"), baseline.get("m")) == (fresh.get("n"), fresh.get("m"))
    for ratio_key in ("kernel_vs_fused_speedup", "shard_vs_fused_speedup"):
        if ratio_key not in baseline or ratio_key not in fresh:
            continue
        ratio = fresh[ratio_key] / baseline[ratio_key]
        if not same_scale:
            print(f"  SKIP {ratio_key}: {fresh[ratio_key]:.2f}x vs baseline "
                  f"{baseline[ratio_key]:.2f}x -- baseline scale "
                  f"n={baseline.get('n')}/m={baseline.get('m')} differs from fresh "
                  f"n={fresh.get('n')}/m={fresh.get('m')}; speedup-over-fused ratios "
                  f"are scale-dependent and not gateable across scales")
            continue
        verdict = "ok" if ratio >= floor else "REGRESSION"
        print(f"  {verdict:<10} {ratio_key}: {fresh[ratio_key]:.2f}x vs baseline "
              f"{baseline[ratio_key]:.2f}x ({ratio:.0%})")
        if ratio < floor:
            failures.append(ratio_key)

    if failures:
        print(f"FAILED: {len(failures)} regression(s): {', '.join(failures)}")
        return 1
    print("PASSED: no leg regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
