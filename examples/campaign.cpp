// Campaign: a mixed-scenario experiment campaign through the orchestrator.
//
//   $ ./campaign --journal campaign.jsonl --json campaign.json
//   ... interrupt it (Ctrl-C), then pick up where it left off:
//   $ ./campaign --journal campaign.jsonl --json campaign.json --resume
//
// One run_campaign call sweeps three scenario families at once:
//   * a declarative noise grid (g-Bounded and sigma-Noisy-Load at several
//     noise levels) expanded from a sweep_grid,
//   * batched allocation (b-Batch at b = n and b = 4n), registry-backed,
//   * a custom factory config (d-Choice with d = 4) showing that
//     non-registry processes join the same campaign.
//
// Every (config, repetition) cell gets seed derive_seed(seed, cell index),
// so the aggregate below is byte-identical for any --threads value, and a
// resumed campaign reproduces an uninterrupted one exactly.
#include <cstdio>

#include "noisebalance.hpp"

int main(int argc, char** argv) {
  using namespace nb;
  try {
    cli_parser cli(
        "campaign -- mixed-scenario experiment campaign with journaling, resume and "
        "JSON/CSV archives.");
    cli.add_int("n", 10000, "bins per configuration");
    cli.add_int("m-mult", 100, "balls per bin: m = m-mult * n");
    cli.add_int("runs", 10, "repetitions per configuration");
    cli.add_int("seed", 2022, "campaign master seed");
    cli.add_int("threads", 0, "scheduler workers (0 = hardware cores; never affects results)");
    cli.add_string("journal", "", "append-only JSONL cell journal (enables --resume)");
    cli.add_bool("resume", false, "replay --journal and run only the missing cells");
    cli.add_int("checkpoint-every", 0,
                "checkpoint each cell's mid-run state about every N balls next to --journal "
                "(0 = off; --resume then picks cells up mid-run; never affects results)");
    // The engine-selection and allocation-model families come from
    // util/cli's shared registration (canonical spelling everywhere).
    add_engine_flags(cli);
    add_model_flags(cli);
    cli.add_string("json", "", "write the aggregate JSON archive here");
    cli.add_string("csv", "", "write the per-config CSV here");
    if (!cli.parse(argc, argv)) return 0;

    const auto n = static_cast<bin_count>(cli.get_int("n"));
    const auto m = static_cast<step_count>(cli.get_int("m-mult")) * n;
    NB_REQUIRE(cli.get_int("n") >= 1, "--n must be positive");
    NB_REQUIRE(cli.get_int("m-mult") >= 1, "--m-mult must be positive");
    NB_REQUIRE(cli.get_int("runs") >= 1, "--runs must be positive");

    // Family 1: the declarative noise grid.
    sweep_grid noise;
    noise.kinds = {"g-bounded", "sigma-noisy-load"};
    noise.params = {1.0, 4.0, 8.0};
    noise.bins = {n};
    noise.m_override = m;
    auto configs = make_configs(expand_grid(noise));

    // Family 2: batched allocation, straight from the registry.
    configs.push_back({"b-batch/b=n", {}, m, process_spec{"b-batch", n, static_cast<double>(n)}});
    configs.push_back(
        {"b-batch/b=4n", {}, m, process_spec{"b-batch", n, static_cast<double>(4) * n}});

    // Family 3: a custom factory -- any allocation_process joins the
    // campaign, registry or not.
    configs.push_back({"d-choice/4 (factory)",
                       [n] { return any_process(d_choice(n, 4)); }, m});

    // --weighting/--sampler/--departures (and --churn occupancy) reshape
    // the registry-backed configs; with --departures the campaign runs
    // steady-state churn cells instead of pure insertion.
    const model_flag_values model = get_model_flags(cli);
    model_overrides overrides;
    overrides.weighting = model.weighting;
    overrides.sampler = model.sampler;
    overrides.departures = model.churn.departures;
    overrides.churn_occupancy = static_cast<step_count>(model.churn.churn);
    apply_model_overrides(configs, overrides);

    campaign_options opt;
    opt.repeats = static_cast<std::size_t>(cli.get_int("runs"));
    opt.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    opt.threads = static_cast<std::size_t>(cli.get_int("threads"));
    opt.journal_path = cli.get_string("journal");
    opt.resume = cli.get_bool("resume");
    NB_REQUIRE(cli.get_int("checkpoint-every") >= 0, "--checkpoint-every must be non-negative");
    opt.checkpoint_every = static_cast<step_count>(cli.get_int("checkpoint-every"));
    opt.churn_telemetry_every = static_cast<step_count>(model.churn.telemetry);

    const engine_flag_values engine_flags = get_engine_flags(cli);
    const auto backend = kernel_isa_from_name(engine_flags.kernel);
    NB_REQUIRE(engine_flags.kernel == "off" || backend.has_value(),
               "--kernel must be off, scalar, sse2, avx2, avx512, neon, auto or simd");
    if (engine_flags.hugepages) set_hugepages_enabled(true);
    engine_config engine;
    engine.threads_per_run = static_cast<std::size_t>(engine_flags.threads_per_run);
    engine.shards = static_cast<std::size_t>(engine_flags.shards);
    engine.use_kernel = backend.has_value() && engine.threads_per_run == 0;
    engine.lanes = static_cast<std::size_t>(engine_flags.lanes);
    engine.isa = backend.value_or(kernel_isa::auto_detect);
    opt.set_engine(engine);

    const auto campaign = run_campaign(configs, opt);

    std::printf("campaign: %zu configs x %zu repeats = %zu cells "
                "(%zu executed, %zu resumed from journal, %zu restored mid-run)\n\n",
                campaign.configs.size(), campaign.repeats,
                campaign.configs.size() * campaign.repeats, campaign.cells_executed,
                campaign.cells_resumed, campaign.cells_restored);
    text_table table({"config", "runs", "mean gap", "stddev", "median", "max"});
    for (const auto& cr : campaign.configs) {
      const auto& agg = cr.aggregate;
      table.add_row({cr.config.label, std::to_string(agg.count()),
                     format_fixed(agg.mean_gap(), 2), format_fixed(agg.gap_stddev(), 2),
                     std::to_string(agg.gap_quantile(0.5)), format_fixed(agg.gap().max(), 1)});
    }
    std::printf("%s\n", table.render().c_str());

    if (!cli.get_string("json").empty()) {
      campaign.write_json(cli.get_string("json"));
      std::printf("aggregate JSON -> %s\n", cli.get_string("json").c_str());
    }
    if (!cli.get_string("csv").empty()) {
      campaign.write_csv(cli.get_string("csv"));
      std::printf("per-config CSV -> %s\n", cli.get_string("csv").c_str());
    }
    if (!opt.journal_path.empty() && !opt.resume) {
      std::printf("journal -> %s (re-run with --resume to skip completed cells)\n",
                  opt.journal_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
