// Scenario: schedulers with *noisy* (rather than stale) load telemetry.
//
// Each sampled server reports its queue length perturbed by Gaussian
// measurement noise with standard deviation sigma (sampling jitter,
// ewma-smoothed counters, clock skew...).  This is the sigma-Noisy-Load
// process; the paper proves the gap is polynomial in sigma and only
// poly-logarithmic in n.
//
// The program sweeps sigma, prints the measured imbalance against the
// paper's upper/lower bound band, and demonstrates the two regimes:
// near-Two-Choice behaviour for small sigma and a graceful polynomial
// degradation (never a cliff) for large sigma.
#include <cstdio>

#include "noisebalance.hpp"

int main() {
  using namespace nb;

  constexpr bin_count n = 8192;
  constexpr step_count m = 500LL * n;
  constexpr std::uint64_t seed = 99;

  std::printf("Noisy telemetry: %u servers, %lld jobs, reports = queue + sigma * N(0,1)\n\n", n,
              static_cast<long long>(m));

  // Reference levels.
  two_choice exact(n);
  one_choice blind(n);
  rng_t r_exact(seed);
  rng_t r_blind(seed);
  const double exact_gap = simulate(exact, m, r_exact).gap;
  const double blind_gap = simulate(blind, m, r_blind).gap;

  text_table table({"sigma", "gap (physical Gaussian)", "gap (Eq. 2.1 rho-form)",
                    "paper upper bound", "paper lower bound"});
  for (const double sigma : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    sigma_noisy_load_gaussian physical(n, sigma);
    sigma_noisy_load rho_form(n, rho_gaussian(sigma));
    rng_t r1(seed);
    rng_t r2(seed);
    const double g_physical = simulate(physical, m, r1).gap;
    const double g_rho = simulate(rho_form, m, r2).gap;
    table.add_row({format_fixed(sigma, 1), format_fixed(g_physical, 1), format_fixed(g_rho, 1),
                   format_fixed(theory::sigma_noisy_load_upper(n, sigma), 1),
                   format_fixed(theory::sigma_noisy_load_lower(n, sigma), 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Reference levels: exact telemetry (Two-Choice) gap = %.1f; no telemetry "
              "(One-Choice) gap = %.1f.\n\n",
              exact_gap, blind_gap);
  std::printf(
      "Reading the table:\n"
      "  * sigma <~ 1: measurement noise is absorbed entirely -- the gap sits at the\n"
      "    Two-Choice level (noise below the integer load granularity rarely flips a\n"
      "    comparison that matters).\n"
      "  * growing sigma: the gap grows ~linearly in sigma (between the paper's bounds),\n"
      "    NOT to the One-Choice level -- far-apart queues still compare correctly, so\n"
      "    the scheduler keeps its self-correcting drift.\n"
      "  * the two implementations of the process (physical perturbation vs the paper's\n"
      "    Eq. 2.1 comparison-probability form) agree.\n");
  return 0;
}
