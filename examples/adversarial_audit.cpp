// Scenario: auditing worst-case damage from a compromised load-reporting
// component.
//
// Threat model: a malicious (or buggy) comparison service can lie about
// which of two servers is less loaded, but only when their loads are
// within g of each other -- bigger lies are caught by sanity checks.  This
// is exactly the paper's g-Adv-Comp setting.  The audit question: what is
// the worst imbalance such a component can engineer, and how fast does the
// system heal once the component is fixed?
//
// The program (1) compares attack strategies at increasing g against the
// O(g + log n) budget, and (2) runs a poison-then-heal timeline with the
// phase-switch adversary to show self-stabilization (the property behind
// the paper's recovery lemmas).
#include <cstdio>

#include "noisebalance.hpp"

int main() {
  using namespace nb;

  constexpr bin_count n = 8192;
  constexpr step_count m = 400LL * n;
  constexpr std::uint64_t seed = 31337;

  std::printf("Adversarial audit: %u servers, comparison lies limited to |load diff| <= g\n\n", n);

  // ---- 1. Attack strategies vs the theory budget. ----
  text_table table({"g", "random lies", "always lie (greedy)", "targeted (boost)",
                    "fixed-target (index)", "budget ~ g + log n"});
  for (const load_t g : {2, 8, 32, 128}) {
    g_myopic_comp random_lies(n, g);
    g_bounded greedy(n, g);
    g_adv_comp<overload_booster> boost(n, g);
    g_adv_comp<index_bias> fixed(n, g);
    rng_t r1(seed);
    rng_t r2(seed);
    rng_t r3(seed);
    rng_t r4(seed);
    table.add_row({std::to_string(g), format_fixed(simulate(random_lies, m, r1).gap, 1),
                   format_fixed(simulate(greedy, m, r2).gap, 1),
                   format_fixed(simulate(boost, m, r3).gap, 1),
                   format_fixed(simulate(fixed, m, r4).gap, 1),
                   format_fixed(theory::adv_comp_linear_bound(n, g), 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("No strategy escapes the O(g + log n) envelope (Theorem 5.12): the damage a\n"
              "comparison-level attacker can do is *linear* in how big a lie it can tell.\n\n");

  // ---- 2. Poison-then-heal timeline. ----
  constexpr load_t g = 64;
  constexpr step_count poison_until = 200LL * n;
  g_adv_comp<phase_switch> timeline(n, g, phase_switch{poison_until});
  rng_t rng(seed);
  std::printf("Timeline with g = %d: component malicious until t = %lld, then fixed:\n\n", g,
              static_cast<long long>(poison_until));
  std::printf("  %-12s %-10s\n", "t / n", "gap");
  const step_count sample_every = 25LL * n;
  for (step_count t = 0; t < 2 * poison_until; t += sample_every) {
    for (step_count s = 0; s < sample_every; ++s) timeline.step(rng);
    std::printf("  %-12lld %-10.1f%s\n",
                static_cast<long long>(timeline.state().balls() / n), timeline.state().gap(),
                timeline.state().balls() == poison_until ? "   <-- component fixed" : "");
  }
  std::printf("\nThe imbalance drains within ~O(n (g + log n)) further allocations\n"
              "(stabilization, Lemma 5.10): no manual rebalancing required.\n");
  return 0;
}
