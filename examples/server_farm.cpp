// Scenario: a dispatcher routing jobs to a server farm with *stale* load
// telemetry -- the paper's introductory motivation ("in a concurrent
// setting, bins may not be able to update their load immediately").
//
// A fleet of n servers exports its queue lengths to the dispatcher through
// one of three telemetry designs:
//
//   * periodic scrape   -- all queue lengths refreshed every `b` jobs
//                          (the b-Batch process);
//   * async gossip      -- each server's report may lag by up to `tau`
//                          jobs, refreshed independently (tau-Delay with
//                          benign random-in-window reports);
//   * worst-case lag    -- the adversarial tau-Delay reporter: the gap
//                          bound a pessimistic SRE should plan for.
//
// The program sweeps the refresh scale and prints the resulting imbalance
// (gap) next to the theory shape Theta(log n / log((4n/scale) log n)),
// answering the practical question: "how stale can telemetry get before
// two-choice routing stops being worth it?"
//
// Act 2 runs the farm at steady state: jobs do not only arrive, they
// finish.  The farm is warmed up to a fixed occupancy and then serves
// arrival/completion pairs through the symmetric allocate/release API
// (sim/churn.hpp), under three completion models -- random (memoryless
// service), lease (FIFO time-to-live expiry) and drain (a load-aware
// autoscaler retiring jobs from fuller servers) -- with gap telemetry
// sampled along the way.
#include <cstdio>

#include "noisebalance.hpp"

int main() {
  using namespace nb;

  constexpr bin_count n = 4096;          // servers
  constexpr step_count jobs = 400LL * n; // dispatched jobs
  constexpr std::uint64_t seed = 7;

  std::printf("Server farm: %u servers, %lld jobs, two-choice routing on stale telemetry\n\n",
              n, static_cast<long long>(jobs));

  text_table table({"refresh scale (jobs)", "periodic scrape", "async gossip",
                    "worst-case lag", "theory shape", "one-choice (no telemetry)"});

  // One-Choice = routing blind; the level at which telemetry is worthless.
  one_choice blind(n);
  rng_t blind_rng(seed);
  const double blind_gap = simulate(blind, jobs, blind_rng).gap;

  for (const step_count scale :
       {step_count{n} / 16, step_count{n} / 4, step_count{n}, 4 * step_count{n},
        16 * step_count{n}}) {
    b_batch scrape(n, scale);
    tau_delay<delay_random> gossip(n, scale);
    tau_delay<delay_adversarial> worst(n, scale);
    rng_t r1(seed);
    rng_t r2(seed);
    rng_t r3(seed);
    const double scrape_gap = simulate(scrape, jobs, r1).gap;
    const double gossip_gap = simulate(gossip, jobs, r2).gap;
    const double worst_gap = simulate(worst, jobs, r3).gap;
    table.add_row({std::to_string(scale), format_fixed(scrape_gap, 1),
                   format_fixed(gossip_gap, 1), format_fixed(worst_gap, 1),
                   format_fixed(theory::batch_gap(n, static_cast<double>(scale)), 1),
                   format_fixed(blind_gap, 1)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "Reading the table:\n"
      "  * Telemetry staleness up to ~n jobs costs only Theta(log n / log log n) imbalance\n"
      "    (Theorem 10.2) -- scraping faster than once per n jobs buys little.\n"
      "  * Synchronized scrapes and asynchronous gossip behave alike (the paper's point:\n"
      "    the batch setting's synchronized refresh is not essential).\n"
      "  * Even the *worst-case* lag pattern stays far below blind routing until the\n"
      "    refresh scale approaches n log n.\n");

  // ------------------------------------------------------------------
  // Act 2: the farm at steady state.  Warm up to `occupancy` resident
  // jobs, then serve arrival/completion pairs -- the long-running regime
  // a real dispatcher actually lives in.  The gap telemetry shows the
  // imbalance holding steady instead of growing with the job count.
  constexpr step_count occupancy = 100LL * n;
  constexpr step_count pairs = 400LL * n;

  std::printf("\nSteady state: %lld resident jobs, %lld arrival/completion pairs, "
              "two-choice routing\n\n",
              static_cast<long long>(occupancy), static_cast<long long>(pairs));

  text_table steady({"completion model", "gap 25%", "gap 50%", "gap 75%", "final gap",
                     "resident jobs"});
  for (const char* completion : {"random", "lease", "drain"}) {
    two_choice farm(n);
    farm.set_model(make_model("unit", "uniform", n, completion));
    any_process process(std::move(farm));
    rng_t rng(seed);
    run_engine engine{engine_config{}};
    churn_options opt;
    opt.occupancy = occupancy;
    opt.events = pairs;
    opt.telemetry_every = pairs / 4;
    const churn_result run = run_churn(process, opt, rng, engine);
    std::vector<std::string> row{completion};
    for (const churn_point& point : run.trajectory) row.push_back(format_fixed(point.gap, 1));
    while (row.size() < 5) row.push_back("-");
    row.push_back(std::to_string(run.trajectory.back().resident));
    steady.add_row(row);
  }
  std::printf("%s\n", steady.render().c_str());

  std::printf(
      "Reading the steady state:\n"
      "  * Under memoryless completions (random) the two-choice gap settles at a small\n"
      "    constant -- it does not grow with how long the farm has been running.\n"
      "  * FIFO lease expiry (lease) retires the oldest job wherever it sits; the\n"
      "    dispatcher's placement still keeps the farm balanced.\n"
      "  * A load-aware autoscaler (drain) retires jobs from fuller servers and\n"
      "    tightens the gap below the arrival-only equilibrium.\n");
  return 0;
}
