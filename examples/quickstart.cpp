// Quickstart: the smallest complete use of the noisebalance public API.
//
//   $ ./quickstart
//
// Allocates one million balls into ten thousand bins with noise-free
// Two-Choice and with three noisy variants of it, and prints the gap
// (maximum load minus average load) of each -- the paper's headline
// quantity.
#include <cstdio>

#include "noisebalance.hpp"

int main() {
  using namespace nb;

  constexpr bin_count n = 10'000;
  constexpr step_count m = 1'000'000;  // 100 balls per bin

  // Every process draws from an explicit generator; same seed = same run.
  constexpr std::uint64_t seed = 2022;

  // 1. The baseline: noise-free Two-Choice.
  two_choice baseline(n);
  rng_t rng1(seed);
  const run_result clean = simulate(baseline, m, rng1);

  // 2. An adversary that can flip comparisons between bins whose loads
  //    differ by at most g = 8 (the g-Bounded process).
  g_bounded adversarial(n, 8);
  rng_t rng2(seed);
  const run_result noisy_adv = simulate(adversarial, m, rng2);

  // 3. Comparisons that are simply *unreliable* among close bins
  //    (g-Myopic-Comp: a coin flip when loads differ by at most 8).
  g_myopic_comp myopic(n, 8);
  rng_t rng3(seed);
  const run_result noisy_myopic = simulate(myopic, m, rng3);

  // 4. Gaussian-perturbed load reports with sigma = 8 (sigma-Noisy-Load).
  sigma_noisy_load gaussian(n, rho_gaussian(8.0));
  rng_t rng4(seed);
  const run_result noisy_gauss = simulate(gaussian, m, rng4);

  std::printf("%u bins, %lld balls (m/n = %lld):\n\n", n, static_cast<long long>(m),
              static_cast<long long>(m / n));
  std::printf("  %-28s gap = %5.1f   max load = %d\n", baseline.name().c_str(), clean.gap,
              clean.max_load);
  std::printf("  %-28s gap = %5.1f   max load = %d\n", adversarial.name().c_str(), noisy_adv.gap,
              noisy_adv.max_load);
  std::printf("  %-28s gap = %5.1f   max load = %d\n", myopic.name().c_str(), noisy_myopic.gap,
              noisy_myopic.max_load);
  std::printf("  %-28s gap = %5.1f   max load = %d\n", gaussian.name().c_str(), noisy_gauss.gap,
              noisy_gauss.max_load);

  std::printf("\nThe paper's result: even with adversarially wrong comparisons among bins\n"
              "within g of each other, the gap stays O(g + log n) -- noise degrades the\n"
              "power of two choices gracefully rather than destroying it.\n");
  return 0;
}
