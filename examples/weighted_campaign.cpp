// Weighted campaign: weight-distribution skew x batch size through the
// experiment orchestrator -- the generalized allocation model (PR 5) as a
// production-style capacity study.
//
//   $ ./weighted_campaign --journal weighted.jsonl --json weighted.json
//   ... interrupt it (Ctrl-C), then pick up where it left off:
//   $ ./weighted_campaign --journal weighted.jsonl --json weighted.json --resume
//
// The grid crosses two axes the unit-weight paper model cannot express:
//
//   * ball weighting -- job sizes from unit through fixed batches to
//     heavy-tailed truncated-Pareto draws (decreasing alpha = heavier
//     tail = more weight skew),
//   * b-Batch batch size -- how stale the load information is when each
//     decision is made.
//
// plus an optional non-uniform bin sampler (--sampler zipf:1 models bins
// with power-law popularity).  Every (config, repetition) cell is seeded
// derive_seed(seed, cell index), so results are byte-identical for any
// --threads value, and the JSONL journal + --resume reproduce an
// uninterrupted campaign exactly -- weighted cells included, because the
// model specs are part of the journaled grid fingerprint.
//
// The table prints mean Gap(m) = max load - total weight / n per cell.
// Expect the gap to grow both down (bigger batches = staler info) and
// right (heavier tails = lumpier arrivals): weight skew and staleness
// compound.
#include <cstdio>

#include "noisebalance.hpp"

int main(int argc, char** argv) {
  using namespace nb;
  try {
    cli_parser cli(
        "weighted_campaign -- weight-distribution skew x batch size through the "
        "orchestrator, with JSONL journaling and resume.");
    cli.add_int("n", 10000, "bins per configuration");
    cli.add_int("m-mult", 100, "balls per bin: m = m-mult * n");
    cli.add_int("runs", 10, "repetitions per configuration");
    cli.add_int("seed", 2026, "campaign master seed");
    cli.add_int("threads", 0, "scheduler workers (0 = hardware cores; never affects results)");
    cli.add_string("sampler", "uniform",
                   "bin sampler for every cell: uniform | zipf:<s> | hot:<k>,<f>");
    cli.add_string("journal", "", "append-only JSONL cell journal (enables --resume)");
    cli.add_bool("resume", false, "replay --journal and run only the missing cells");
    cli.add_string("json", "", "write the aggregate JSON archive here");
    cli.add_string("csv", "", "write the per-config CSV here");
    if (!cli.parse(argc, argv)) return 0;

    NB_REQUIRE(cli.get_int("n") >= 1, "--n must be positive");
    NB_REQUIRE(cli.get_int("m-mult") >= 1, "--m-mult must be positive");
    NB_REQUIRE(cli.get_int("runs") >= 1, "--runs must be positive");
    const auto n = static_cast<bin_count>(cli.get_int("n"));
    const auto m = static_cast<step_count>(cli.get_int("m-mult")) * n;

    // The two swept axes.  Weightings go from the paper's unit model to a
    // heavy Pareto tail; all have mean O(1)-ish weights so the cells stay
    // comparable in total work.
    const std::vector<std::string> weightings = {
        "unit", "fixed:4", "two-point:1,32,0.05", "pareto:2", "pareto:1.2"};
    const std::vector<step_count> batch_sizes = {1, static_cast<step_count>(n) / 10,
                                                 static_cast<step_count>(n)};

    sweep_grid grid;
    grid.kinds = {"b-batch"};
    grid.params.clear();
    for (const auto b : batch_sizes) grid.params.push_back(static_cast<double>(b));
    grid.bins = {n};
    grid.m_override = m;
    grid.weightings = weightings;
    grid.samplers = {cli.get_string("sampler")};

    campaign_options opt;
    opt.repeats = static_cast<std::size_t>(cli.get_int("runs"));
    opt.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    opt.threads = static_cast<std::size_t>(cli.get_int("threads"));
    opt.journal_path = cli.get_string("journal");
    opt.resume = cli.get_bool("resume");
    NB_REQUIRE(!opt.resume || !opt.journal_path.empty(), "--resume needs --journal");

    std::printf("weighted campaign: b-batch, n = %u, m = %lld, %zu runs/cell, sampler = %s\n\n",
                n, static_cast<long long>(m), opt.repeats, cli.get_string("sampler").c_str());

    const auto campaign = run_campaign(grid, opt);

    // expand_grid order: params (batch sizes) outer, weightings inner.
    std::printf("mean Gap(m) = max load - W/n   (rows: batch size, columns: weighting)\n\n");
    std::printf("%-12s", "b \\ weights");
    for (const auto& w : weightings) std::printf(" %20s", w.c_str());
    std::printf("\n");
    for (std::size_t bi = 0; bi < batch_sizes.size(); ++bi) {
      std::printf("%-12lld", static_cast<long long>(batch_sizes[bi]));
      for (std::size_t wi = 0; wi < weightings.size(); ++wi) {
        const auto& agg = campaign.configs[bi * weightings.size() + wi].aggregate;
        std::printf(" %20.2f", agg.mean_gap());
      }
      std::printf("\n");
    }

    std::printf("\ncells executed: %zu, resumed from journal: %zu\n", campaign.cells_executed,
                campaign.cells_resumed);
    if (!cli.get_string("json").empty()) {
      campaign.write_json(cli.get_string("json"));
      std::printf("aggregate JSON -> %s\n", cli.get_string("json").c_str());
    }
    if (!cli.get_string("csv").empty()) {
      campaign.write_csv(cli.get_string("csv"));
      std::printf("per-config CSV -> %s\n", cli.get_string("csv").c_str());
    }
    std::printf(
        "\nReading the table: staleness (down) and weight skew (right) compound -- the\n"
        "heavy-tailed pareto:1.2 column dominates every batch size because one huge job\n"
        "can outweigh thousands of average ones, a regime the unit-weight analysis\n"
        "never sees.\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
