// Interactive exploration tool: run ANY process in the library from the
// command line and get the full statistics package -- gap distribution over
// repetitions, max/min loads, potential values and the relevant theory
// bounds.  The fastest way to poke at the paper's processes.
//
//   $ ./explore --list
//   $ ./explore --process g-bounded --param 8 --n 10000 --m-mult 1000
//   $ ./explore --process b-batch --param 10000 --runs 50 --csv out.csv
#include <cstdio>

#include "noisebalance.hpp"

namespace {

using namespace nb;

int run(int argc, const char* const* argv) {
  cli_parser cli("explore -- run any noisebalance process and print its gap statistics.");
  cli.add_bool("list", false, "list the available process kinds and exit");
  cli.add_string("process", "two-choice", "process kind (see --list)");
  cli.add_double("param", 0.0, "process parameter (g / sigma / b / tau / beta / d)");
  cli.add_int("n", 10000, "number of bins");
  cli.add_int("m-mult", 100, "balls per bin: m = m-mult * n");
  cli.add_int("runs", 10, "independent repetitions");
  cli.add_int("seed", 1, "master seed");
  cli.add_int("threads", 0, "worker threads (0 = hardware concurrency)");
  cli.add_string("csv", "", "write per-run results to this CSV file");
  if (!cli.parse(argc, argv)) return 0;

  if (cli.get_bool("list")) {
    std::printf("Available process kinds:\n");
    for (const auto& [kind, description] : registered_process_kinds()) {
      std::printf("  %-28s %s\n", kind.c_str(), description.c_str());
    }
    return 0;
  }

  process_spec spec;
  spec.kind = cli.get_string("process");
  spec.n = static_cast<bin_count>(cli.get_int("n"));
  spec.param = cli.get_double("param");
  const step_count m = cli.get_int("m-mult") * static_cast<step_count>(spec.n);

  repeat_options opt;
  opt.runs = static_cast<std::size_t>(cli.get_int("runs"));
  opt.master_seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  opt.threads = static_cast<std::size_t>(cli.get_int("threads"));

  const any_process prototype = make_process(spec);
  std::printf("process: %s   n = %u   m = %lld (%lld per bin)   runs = %zu\n\n",
              prototype.name().c_str(), spec.n, static_cast<long long>(m),
              static_cast<long long>(m / spec.n), opt.runs);

  const auto result = run_repeated([&spec] { return make_process(spec); }, m, opt);
  const auto s = result.gap_summary();

  std::printf("gap distribution : %s\n", result.gap_histogram.to_paper_style().c_str());
  std::printf("gap mean/stddev  : %.3f +- %.3f\n", s.mean, s.stddev);
  std::printf("gap min..max     : %.1f .. %.1f   (median %.1f)\n", s.min, s.max, s.median);
  double mean_under = 0.0;
  for (const auto& r : result.runs) mean_under += r.underload_gap;
  std::printf("underload gap    : %.3f (mean of t/n - min load)\n",
              mean_under / static_cast<double>(result.runs.size()));

  // Theory reference levels for context.
  const auto n = static_cast<double>(spec.n);
  std::printf("\nreference shapes at this n:\n");
  std::printf("  two-choice log2 log n          : %.2f\n", theory::two_choice_gap(n));
  std::printf("  one-choice gap at this m       : %.2f\n",
              theory::one_choice_gap(n, static_cast<double>(m)));
  if (spec.param > 1.0) {
    std::printf("  adv-comp tight  g + g/log g lln: %.2f (for g = %.0f)\n",
                theory::adv_comp_tight_gap(n, spec.param), spec.param);
    std::printf("  batch/delay shape              : %.2f (for b = tau = %.0f)\n",
                theory::batch_gap(n, spec.param), spec.param);
  }

  if (!cli.get_string("csv").empty()) {
    csv_writer csv(cli.get_string("csv"),
                   {"run", "seed", "gap", "max_load", "min_load", "balls"});
    for (std::size_t r = 0; r < result.runs.size(); ++r) {
      const auto& rr = result.runs[r];
      csv.write_row({csv_writer::field(static_cast<std::int64_t>(r)),
                     std::to_string(rr.seed), csv_writer::field(rr.gap),
                     csv_writer::field(static_cast<std::int64_t>(rr.max_load)),
                     csv_writer::field(static_cast<std::int64_t>(rr.min_load)),
                     csv_writer::field(rr.balls)});
    }
    std::printf("\nwrote %zu rows to %s\n", result.runs.size(), cli.get_string("csv").c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
