// Umbrella header: the full public API of the noisebalance library.
//
// Quick start:
//
//   #include "noisebalance.hpp"
//   nb::two_choice p(10'000);
//   nb::rng_t rng(42);
//   auto result = nb::simulate(p, 10'000'000, rng);
//   std::cout << "Gap(m) = " << result.gap << '\n';
//
// See examples/ for complete programs and DESIGN.md for the architecture.
#pragma once

#include "common/error.hpp"
#include "common/types.hpp"
#include "core/alloc_model.hpp"
#include "core/analysis/allocation_probability.hpp"
#include "core/analysis/exact_chain.hpp"
#include "core/basic_processes.hpp"
#include "core/kernel/kernel.hpp"
#include "core/load_vector.hpp"
#include "core/noise/adv_comp.hpp"
#include "core/noise/adv_load.hpp"
#include "core/noise/batch.hpp"
#include "core/noise/delay.hpp"
#include "core/noise/noisy_comp.hpp"
#include "core/noise/thinning.hpp"
#include "core/potential/majorization.hpp"
#include "core/potential/potentials.hpp"
#include "core/potential/super_exp_ladder.hpp"
#include "core/process.hpp"
#include "core/process_registry.hpp"
#include "core/theory/bounds.hpp"
#include "exp/campaign.hpp"
#include "exp/checkpoint.hpp"
#include "exp/journal.hpp"
#include "rng/rng.hpp"
#include "sim/churn.hpp"
#include "sim/recorder.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"
#include "stats/histogram.hpp"
#include "stats/regression.hpp"
#include "stats/summary.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/fsio.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
