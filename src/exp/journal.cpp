#include "exp/journal.hpp"

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "common/error.hpp"
#include "util/fsio.hpp"

namespace nb {

namespace {

/// Locates the raw value text of `"key":` in a machine-written JSON line.
/// The journal never nests objects or writes string values with escapes,
/// so scanning to the next delimiter is exact.
std::optional<std::string> find_value(const std::string& line, const char* key) {
  const std::string pattern = std::string("\"") + key + "\":";
  const auto pos = line.find(pattern);
  if (pos == std::string::npos) return std::nullopt;
  std::size_t start = pos + pattern.size();
  while (start < line.size() && line[start] == ' ') ++start;
  std::size_t end = start;
  while (end < line.size() && line[end] != ',' && line[end] != '}' && line[end] != '\n' &&
         line[end] != ' ') {
    ++end;
  }
  if (end == start) return std::nullopt;
  return line.substr(start, end - start);
}

std::optional<double> find_double(const std::string& line, const char* key) {
  const auto raw = find_value(line, key);
  if (!raw) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(raw->c_str(), &end);
  if (errno != 0 || end != raw->c_str() + raw->size()) return std::nullopt;
  return v;
}

std::optional<std::uint64_t> find_u64(const std::string& line, const char* key) {
  const auto raw = find_value(line, key);
  if (!raw || raw->empty() || !std::isdigit(static_cast<unsigned char>((*raw)[0]))) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(raw->c_str(), &end, 10);
  if (errno != 0 || end != raw->c_str() + raw->size()) return std::nullopt;
  return v;
}

std::optional<std::int64_t> find_i64(const std::string& line, const char* key) {
  const auto raw = find_value(line, key);
  if (!raw) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const std::int64_t v = std::strtoll(raw->c_str(), &end, 10);
  if (errno != 0 || end != raw->c_str() + raw->size()) return std::nullopt;
  return v;
}

/// A complete journal line ends in '}' -- a line truncated mid-number
/// would otherwise parse as a shorter, wrong value.
bool complete_object(const std::string& line) {
  std::size_t end = line.size();
  while (end > 0 && std::isspace(static_cast<unsigned char>(line[end - 1]))) --end;
  return end > 0 && line[end - 1] == '}';
}

}  // namespace

std::string json_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string journal_header_line(const journal_header& header) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "{\"type\":\"nb-campaign-journal\",\"version\":1,\"configs\":%zu,"
                "\"repeats\":%zu,\"seed\":%" PRIu64 ",\"grid\":%" PRIu64 "}",
                header.configs, header.repeats, header.seed, header.grid);
  return buf;
}

std::string journal_entry_line(const journal_entry& entry) {
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "{\"cell\":%zu,\"seed\":%" PRIu64 ",\"balls\":%" PRId64
                ",\"gap\":%s,\"underload_gap\":%s,\"max_load\":%" PRId64 ",\"min_load\":%" PRId64
                "}",
                entry.cell, entry.result.seed, static_cast<std::int64_t>(entry.result.balls),
                json_double(entry.result.gap).c_str(),
                json_double(entry.result.underload_gap).c_str(),
                static_cast<std::int64_t>(entry.result.max_load),
                static_cast<std::int64_t>(entry.result.min_load));
  return buf;
}

std::optional<journal_header> parse_journal_header(const std::string& line) {
  if (!complete_object(line)) return std::nullopt;
  if (line.find("\"nb-campaign-journal\"") == std::string::npos) return std::nullopt;
  const auto configs = find_u64(line, "configs");
  const auto repeats = find_u64(line, "repeats");
  const auto seed = find_u64(line, "seed");
  const auto grid = find_u64(line, "grid");
  if (!configs || !repeats || !seed || !grid) return std::nullopt;
  journal_header h;
  h.configs = static_cast<std::size_t>(*configs);
  h.repeats = static_cast<std::size_t>(*repeats);
  h.seed = *seed;
  h.grid = *grid;
  return h;
}

std::optional<journal_entry> parse_journal_entry(const std::string& line) {
  if (!complete_object(line)) return std::nullopt;
  const auto cell = find_u64(line, "cell");
  const auto seed = find_u64(line, "seed");
  const auto balls = find_i64(line, "balls");
  const auto gap = find_double(line, "gap");
  const auto underload = find_double(line, "underload_gap");
  const auto max_load = find_i64(line, "max_load");
  const auto min_load = find_i64(line, "min_load");
  if (!cell || !seed || !balls || !gap || !underload || !max_load || !min_load) {
    return std::nullopt;
  }
  journal_entry e;
  e.cell = static_cast<std::size_t>(*cell);
  e.result.seed = *seed;
  e.result.balls = *balls;
  e.result.gap = *gap;
  e.result.underload_gap = *underload;
  e.result.max_load = static_cast<load_t>(*max_load);
  e.result.min_load = static_cast<load_t>(*min_load);
  return e;
}

journal_writer::~journal_writer() {
  if (out_ != nullptr) std::fclose(out_);
}

void journal_writer::open(const std::string& path, const journal_header& header,
                          const std::vector<journal_entry>& preserve) {
  NB_REQUIRE(!path.empty(), "journal path must not be empty");
  const std::lock_guard<std::mutex> lock(mutex_);
  NB_REQUIRE(out_ == nullptr, "journal writer is already open");
  // Stage the rewritten journal in memory and land it atomically: the old
  // journal (with every replayed cell) stays intact until the new one is
  // fully durable.  In-place truncate-and-rewrite had a kill window in
  // which BOTH were lost.
  std::string staged = journal_header_line(header) + '\n';
  for (const auto& entry : preserve) staged += journal_entry_line(entry) + '\n';
  atomic_write_file(path, staged.data(), staged.size());
  out_ = std::fopen(path.c_str(), "ab");
  NB_REQUIRE(out_ != nullptr,
             "cannot open campaign journal '" + path + "' for appending: " + std::strerror(errno));
  path_ = path;
}

void journal_writer::append(const journal_entry& entry) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (out_ == nullptr) return;
  const std::string line = journal_entry_line(entry) + '\n';
  const std::size_t written = std::fwrite(line.data(), 1, line.size(), out_);
  NB_REQUIRE(written == line.size(),
             "failed to append to campaign journal '" + path_ + "': " + std::strerror(errno));
  flush_and_sync(out_, path_);
}

journal_replay replay_journal(const std::string& path) {
  journal_replay out;
  std::ifstream in(path);
  if (!in.is_open()) return out;
  out.file_exists = true;
  std::string line;
  if (!std::getline(in, line)) return out;
  const auto header = parse_journal_header(line);
  if (!header) return out;
  out.header_valid = true;
  out.header = *header;
  while (std::getline(in, line)) {
    auto entry = parse_journal_entry(line);
    if (!entry) break;  // torn final write: everything after is unreachable
    out.entries.push_back(*entry);
  }
  return out;
}

}  // namespace nb
