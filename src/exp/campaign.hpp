// The experiment orchestrator: deterministic multi-run campaigns.
//
// A campaign is a list of configurations (process x n x m grid points),
// each repeated `repeats` times.  Every (configuration, repetition) pair
// is one *cell* -- the schedulable unit -- with flat index
// `config * repeats + rep` and RNG seed `derive_seed(campaign_seed, index)`.
// Cells run across the shared thread_pool in any order; because sampling
// depends only on the cell index (never on scheduling) and aggregation
// always folds cells in index order, campaign results -- including the
// emitted aggregate JSON -- are byte-identical for ANY worker count
// (enforced by tests/test_orchestrator.cpp).
//
// Each cell routes through the fastest applicable engine, exactly like the
// single-configuration drivers in sim/runner.hpp: threads_per_run > 0
// engages the intra-run shard engine, use_kernel the serial SIMD kernel
// engine, anything else the serial fused loop.
//
// Cells are scheduled by parallel_for's chunked work-stealing distributor
// (util/thread_pool.hpp): heterogeneous cells rebalance onto idle workers
// instead of straggling behind a fixed hand-out order, and because the
// schedule never feeds into sampling or fold order, stealing cannot
// perturb results.
//
// Aggregation is streaming: per configuration the campaign keeps a
// cell_aggregator (Welford gap/underload/max-load stats + an integer gap
// histogram for quantiles), so memory stays O(cells) regardless of m.
//
// Checkpoint/resume: with a journal path every finished cell is appended
// to an append-only JSONL file (see exp/journal.hpp); `resume` replays the
// journal, skips completed cells, and -- because journal doubles
// round-trip bit-exactly -- produces byte-identical aggregates to an
// uninterrupted run.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/process_registry.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"

namespace nb {

/// One campaign grid point.  Processes come either from the registry
/// (`process.kind`, journaled and reported as metadata) or from an
/// arbitrary `factory` (which wins when both are set and must be safe to
/// call concurrently).  Field order keeps the historical positional
/// brace-init `{label, factory, m}` of the bench cell lists compiling.
struct campaign_config {
  std::string label;
  std::function<any_process()> factory;
  step_count m = 0;
  process_spec process{};
  /// > 0: steady-state churn cell -- warm the process up to this many
  /// resident balls, then serve `m` arrival/departure pairs through its
  /// departure channel (which must not be "none").  0 = the historical
  /// insertion-only cell.  make_config defaults it to m for sweep points
  /// with a departure axis (occupancy ~ m, the steady-state regime).
  step_count churn_occupancy = 0;
};

/// Historical name for a bench configuration list entry.
using cell = campaign_config;

/// Builds a registry-backed configuration from an expanded sweep point.
[[nodiscard]] campaign_config make_config(const sweep_point& point);
[[nodiscard]] std::vector<campaign_config> make_configs(const std::vector<sweep_point>& points);

/// Command-line model overrides for a configuration list: the string-level
/// values of util/cli's shared model flag family, applied in one place so
/// every binary maps the flags identically.
struct model_overrides {
  std::string weighting = "unit";
  std::string sampler = "uniform";
  std::string departures = "none";
  /// Occupancy for configs the `departures` override turns into
  /// steady-state churn cells (0 = each config's own m).
  step_count churn_occupancy = 0;
};

/// Applies the overrides to every registry-backed configuration.  Factory
/// cells own their model, so non-default overrides on them trigger the
/// house accepted-but-ineffective diagnostic instead of silence.  A
/// non-none departure override also makes each config a steady-state churn
/// cell (see campaign_config::churn_occupancy).
void apply_model_overrides(std::vector<campaign_config>& configs, const model_overrides& o);

/// Campaign execution knobs.  Only `repeats`, `seed`, `shards` and `lanes`
/// are part of the sampling contract; threads, worker counts and the ISA
/// backend never affect results.
struct campaign_options {
  std::size_t repeats = 10;
  std::uint64_t seed = 1;
  /// Scheduler workers over cells; 0 = one per hardware core, clamped to
  /// cores / threads_per_run when intra-run parallelism is also on (the
  /// product is what actually lands on the machine).  Explicit values are
  /// honored but warn_once when they oversubscribe.
  std::size_t threads = 0;
  /// > 0: every cell runs through the intra-run shard engine with this
  /// many workers (stale-snapshot windows go shard-parallel).
  std::size_t threads_per_run = 0;
  std::size_t shards = 16;
  /// threads_per_run == 0 only: route cells through the serial
  /// lane-interleaved SIMD kernel engine.
  bool use_kernel = false;
  std::size_t lanes = 8;
  kernel_isa isa = kernel_isa::auto_detect;
  /// Non-empty: append every finished cell to this JSONL journal.
  std::string journal_path;
  /// Replay `journal_path` first and run only the missing cells.
  bool resume = false;
  /// > 0: checkpoint every cell's mid-run state about every this many
  /// balls (first stale-snapshot window boundary at or after each
  /// multiple -- see exp/checkpoint.hpp), into one file per cell next to
  /// the journal.  With `resume`, a cell whose checkpoint survived picks
  /// up mid-run instead of restarting from ball zero.  Execution-only:
  /// the cadence NEVER affects results -- checkpointed, resumed and
  /// uninterrupted campaigns emit byte-identical aggregate JSON (enforced
  /// by tests/test_checkpoint.cpp and tools/crash_fuzz.py).  Requires a
  /// journal_path; processes without checkpoint support degrade to
  /// checkpoint-free execution with a one-time diagnostic.
  step_count checkpoint_every = 0;
  /// Churn-cell telemetry cadence (churn_options::telemetry_every),
  /// applied to every churn cell.  Execution-observability only: the
  /// trajectory is recorded, not journaled, and never affects results.
  step_count churn_telemetry_every = 0;

  /// The engine-selection slice of these options as the one shared
  /// struct (see sim/runner.hpp).  The flat threads_per_run / shards /
  /// use_kernel / lanes / isa fields above are its deprecated spelling,
  /// kept so existing call sites and journals keep working.
  [[nodiscard]] engine_config engine() const noexcept {
    return engine_config{.threads_per_run = threads_per_run,
                         .shards = shards,
                         .use_kernel = use_kernel,
                         .lanes = lanes,
                         .isa = isa};
  }
  /// Writes an engine_config back into the flat (deprecated) fields.
  void set_engine(const engine_config& e) noexcept {
    threads_per_run = e.threads_per_run;
    shards = e.shards;
    use_kernel = e.use_kernel;
    lanes = e.lanes;
    isa = e.isa;
  }
};

/// Path of the intra-cell checkpoint file for `cell`, derived from the
/// campaign's journal path (the journal names the campaign; its cells'
/// checkpoints live beside it).
[[nodiscard]] std::string checkpoint_cell_path(const std::string& journal_path, std::size_t cell);

/// Streaming per-configuration aggregate: Welford stats over the cells'
/// gap / underload gap / max load, plus the integer gap histogram the
/// paper's tables report (gaps rounded to nearest integer -- exact
/// whenever n | m, which holds for every paper experiment).
class cell_aggregator {
 public:
  void add(const run_result& r);
  void merge(const cell_aggregator& other);

  [[nodiscard]] std::size_t count() const noexcept { return gap_.count(); }
  [[nodiscard]] const running_stats& gap() const noexcept { return gap_; }
  [[nodiscard]] const running_stats& underload_gap() const noexcept { return underload_; }
  [[nodiscard]] const running_stats& max_load() const noexcept { return max_load_; }
  [[nodiscard]] const int_histogram& gap_histogram() const noexcept { return histogram_; }

  [[nodiscard]] double mean_gap() const noexcept { return gap_.mean(); }
  [[nodiscard]] double gap_stddev() const noexcept { return gap_.stddev(); }
  /// Quantile of the rounded-gap distribution (from the histogram).
  [[nodiscard]] std::int64_t gap_quantile(double q) const;

 private:
  running_stats gap_;
  running_stats underload_;
  running_stats max_load_;
  int_histogram histogram_;
};

/// One configuration's outcome.
struct config_result {
  campaign_config config;
  cell_aggregator aggregate;
};

/// Outcome of a whole campaign.
struct campaign_result {
  std::vector<config_result> configs;
  /// Flat per-cell results, config-major: cell = config * repeats + rep.
  std::vector<run_result> cells;
  std::size_t repeats = 0;
  std::uint64_t seed = 0;
  /// Cells executed fresh this invocation vs. replayed from the journal.
  /// Deliberately NOT part of to_json(): a resumed campaign must emit the
  /// same bytes as an uninterrupted one.
  std::size_t cells_executed = 0;
  std::size_t cells_resumed = 0;
  /// Of the executed cells, how many picked up mid-run from an intra-cell
  /// checkpoint file (subset of cells_executed; same to_json() exclusion).
  std::size_t cells_restored = 0;

  /// Deterministic aggregate JSON (config order, %.17g doubles): the
  /// machine-readable campaign archive.
  [[nodiscard]] std::string to_json() const;
  void write_json(const std::string& path) const;
  /// One row per configuration, through util/csv.
  void write_csv(const std::string& path) const;
};

/// Runs the campaign: expands configs x repeats into cells, schedules
/// them over the pool, journals, aggregates.  See the file comment for
/// the determinism and resume contracts.
[[nodiscard]] campaign_result run_campaign(const std::vector<campaign_config>& configs,
                                           const campaign_options& opt);

/// Declarative-grid convenience overload.
[[nodiscard]] campaign_result run_campaign(const sweep_grid& grid, const campaign_options& opt);

/// The historical bench entry point, now a thin wrapper over the
/// orchestrator: every (cell, repetition) job shares one work queue, with
/// seeds derive_seed(master_seed, cell * runs + rep).  threads_per_run
/// and `kernel` route jobs through the shard / serial-kernel engines as
/// before; results never depend on `threads` or the backend.
[[nodiscard]] std::vector<repeat_result> run_cells(
    const std::vector<cell>& cells, std::size_t runs, std::uint64_t master_seed,
    std::size_t threads, std::size_t threads_per_run = 0,
    std::optional<kernel_isa> kernel = std::nullopt, std::size_t lanes = 8);

}  // namespace nb
