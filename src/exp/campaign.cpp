#include "exp/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <exception>
#include <fstream>
#include <mutex>
#include <thread>

#include "exp/checkpoint.hpp"
#include "exp/journal.hpp"
#include "sim/churn.hpp"
#include "util/csv.hpp"

namespace nb {

// ---------------------------------------------------------------------------
// Aggregator.

void cell_aggregator::add(const run_result& r) {
  gap_.add(r.gap);
  underload_.add(r.underload_gap);
  max_load_.add(static_cast<double>(r.max_load));
  histogram_.add(static_cast<std::int64_t>(std::llround(r.gap)));
}

void cell_aggregator::merge(const cell_aggregator& other) {
  gap_.merge(other.gap_);
  underload_.merge(other.underload_);
  max_load_.merge(other.max_load_);
  histogram_.merge(other.histogram_);
}

std::int64_t cell_aggregator::gap_quantile(double q) const { return histogram_.quantile(q); }

// ---------------------------------------------------------------------------
// Config construction.

campaign_config make_config(const sweep_point& point) {
  campaign_config config;
  config.label = point.label;
  config.m = point.m;
  config.process = point.process;
  // A departure axis makes the point a steady-state cell: warm up to
  // occupancy ~ m resident balls, then churn for m pairs (the ROADMAP's
  // steady-state regime).
  if (point.process.departures != "none") config.churn_occupancy = point.m;
  return config;
}

std::vector<campaign_config> make_configs(const std::vector<sweep_point>& points) {
  std::vector<campaign_config> out;
  out.reserve(points.size());
  for (const auto& point : points) out.push_back(make_config(point));
  return out;
}

void apply_model_overrides(std::vector<campaign_config>& configs, const model_overrides& o) {
  if (o.weighting == "unit" && o.sampler == "uniform" && o.departures == "none") return;
  for (auto& config : configs) {
    if (config.factory) {
      warn_once("campaign-model-overrides/" + config.label,
                "--weighting/--sampler/--departures have no effect on factory-built cell '" +
                    config.label + "': the overrides apply to registry-backed configs only");
      continue;
    }
    config.process.weighting = o.weighting;
    config.process.sampler = o.sampler;
    config.process.departures = o.departures;
    if (o.departures != "none") {
      config.churn_occupancy = o.churn_occupancy > 0 ? o.churn_occupancy : config.m;
    }
  }
}

// ---------------------------------------------------------------------------
// Scheduler.

namespace {

/// FNV-1a fingerprint of the configuration list's identifying fields.
/// Journals store it in their header: per-cell seeds depend only on
/// (campaign seed, cell index), so without this a journal from a
/// same-shaped campaign over a *different* grid (other m, n, kinds or
/// labels) would pass every seed check and silently mix in on resume.
std::uint64_t grid_fingerprint(const std::vector<campaign_config>& configs) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](const std::string& field) {
    for (const unsigned char c : field) {
      h ^= c;
      h *= 1099511628211ULL;
    }
    h ^= 0xFFu;  // field separator, so ("ab","c") != ("a","bc")
    h *= 1099511628211ULL;
  };
  for (const auto& config : configs) {
    mix(config.label);
    mix(config.process.kind);
    mix(std::to_string(config.process.n));
    mix(json_double(config.process.param));
    mix(std::to_string(config.m));
    // Model axes joined the sampling contract in PR 5.  Mixed only when
    // non-default so journals recorded before the axes existed (implicitly
    // unit/uniform) keep resuming cleanly.
    if (config.process.weighting != "unit" || config.process.sampler != "uniform") {
      mix(config.process.weighting);
      mix(config.process.sampler);
    }
    // Same pattern for the churn axes (PR 9): insertion-only configs keep
    // their pre-churn fingerprint, so old journals keep resuming.
    if (config.process.departures != "none" || config.churn_occupancy > 0) {
      mix(config.process.departures);
      mix(std::to_string(config.churn_occupancy));
    }
  }
  return h;
}

run_result run_cell(const campaign_config& config, std::size_t index, std::uint64_t seed,
                    const campaign_options& opt, bool* restored) {
  any_process process = config.factory ? config.factory() : make_process(config.process);
  rng_t rng(seed);
  // Engine + scratch are per cell: intra-run parallelism targets few,
  // huge runs, where one run dwarfs the shard engine's ~ms startup.
  run_engine engine(opt.engine());

  bool checkpointing = opt.checkpoint_every > 0;
  if (checkpointing && !process.checkpointable()) {
    // Accepted-but-ineffective, like the engines' unsupported-process
    // traps: the run still completes, it is just not preemptible.
    warn_once("checkpoint/" + process.name(),
              "process '" + process.name() +
                  "' does not support mid-run checkpointing; cell runs checkpoint-free "
                  "(journal-level resume still applies)");
    checkpointing = false;
  }

  // Steady-state cell: warm up to occupancy, then m churn pairs; the
  // journaled run_result is the final boundary's observables.
  const bool churn = config.churn_occupancy > 0;
  churn_options churn_opt;
  if (churn) {
    churn_opt.occupancy = config.churn_occupancy;
    churn_opt.events = config.m;
    churn_opt.telemetry_every = opt.churn_telemetry_every;
  }

  run_result r;
  if (checkpointing) {
    const std::string ckpt_path = checkpoint_cell_path(opt.journal_path, index);
    step_count progress_done = 0;
    if (opt.resume) {
      if (const auto ckpt = try_read_checkpoint_file(ckpt_path)) {
        if (churn) {
          // Churn progress is not the resident ball count; the driver
          // validates the counter against its cycle structure.
          progress_done = restore_checkpoint_identity(process, rng, *ckpt,
                                                      engine.churn_fingerprint(), index, seed);
        } else {
          restore_from_checkpoint(process, rng, *ckpt, engine.fingerprint(), index, seed,
                                  config.m);
        }
        *restored = true;
      }
    }
    const auto save_mark = [&](step_count progress) {
      // Churn marks carry the batched-departure contract tag; insertion
      // marks keep the unchanged insertion fingerprint.
      const std::string& fp = churn ? engine.churn_fingerprint() : engine.fingerprint();
      write_checkpoint_file(ckpt_path,
                            capture_checkpoint(process, rng, fp, index, seed, progress));
    };
    if (churn) {
      r = run_churn_checkpointed(process, churn_opt, rng, engine, opt.checkpoint_every, save_mark,
                                 progress_done)
              .final_state;
    } else {
      r = run_checkpointed(process, config.m, rng, engine, opt.checkpoint_every, save_mark);
    }
    // The journal line the caller appends supersedes the checkpoint; a
    // stale file would only confuse the next resume.
    std::remove(ckpt_path.c_str());
  } else if (churn) {
    r = run_churn(process, churn_opt, rng, engine).final_state;
  } else {
    r = simulate_with(process, config.m, rng, engine);
  }
  r.seed = seed;
  return r;
}

}  // namespace

std::string checkpoint_cell_path(const std::string& journal_path, std::size_t cell) {
  return journal_path + ".cell" + std::to_string(cell) + ".ckpt";
}

campaign_result run_campaign(const std::vector<campaign_config>& configs,
                             const campaign_options& opt) {
  NB_REQUIRE(!configs.empty(), "campaign needs at least one configuration");
  NB_REQUIRE(opt.repeats >= 1, "campaign needs at least one repetition per configuration");
  NB_REQUIRE(opt.checkpoint_every >= 0, "checkpoint cadence must be non-negative");
  NB_REQUIRE(opt.checkpoint_every == 0 || !opt.journal_path.empty(),
             "intra-cell checkpointing needs a journal path (checkpoint files live beside it)");
  for (const auto& config : configs) {
    NB_REQUIRE(config.factory != nullptr || !config.process.kind.empty(),
               "campaign config '" + config.label + "' needs a factory or a registry spec");
    NB_REQUIRE(config.m >= 0 && config.m <= max_run_balls,
               "campaign config '" + config.label + "' has m outside [0, max_run_balls]");
    NB_REQUIRE(config.churn_occupancy >= 0 && config.churn_occupancy <= max_run_balls,
               "campaign config '" + config.label + "' has churn_occupancy outside "
               "[0, max_run_balls]");
    if (config.churn_occupancy > 0) {
      NB_REQUIRE(config.m <= (max_run_balls - config.churn_occupancy) / 2,
                 "campaign config '" + config.label +
                     "': churn occupancy + 2 * events must fit max_run_balls");
    }
    // Surface unknown kinds / bad parameters here, on the caller's thread:
    // pool tasks are noexcept by contract, so a spec error inside a worker
    // would terminate instead of throwing.
    if (!config.factory) (void)make_process(config.process);
  }

  const std::size_t total = configs.size() * opt.repeats;
  campaign_result out;
  out.repeats = opt.repeats;
  out.seed = opt.seed;
  out.cells.resize(total);

  // Resume: fold the journal's completed cells in before scheduling.
  std::vector<char> done(total, 0);
  std::vector<journal_entry> preserved;
  const journal_header header{configs.size(), opt.repeats, opt.seed, grid_fingerprint(configs)};
  if (opt.resume) {
    NB_REQUIRE(!opt.journal_path.empty(), "resume needs a journal path");
    auto replay = replay_journal(opt.journal_path);
    // A file with no valid campaign header is not ours to truncate: the
    // user may have pointed --journal at the wrong path.
    NB_REQUIRE(!replay.file_exists || replay.header_valid,
               "cannot resume: '" + opt.journal_path +
                   "' exists but is not a campaign journal; refusing to overwrite it");
    if (replay.header_valid) {
      NB_REQUIRE(replay.header == header,
                 "journal belongs to a different campaign "
                 "(configs/repeats/seed/grid mismatch)");
      for (auto& entry : replay.entries) {
        NB_REQUIRE(entry.cell < total, "journal cell index out of range");
        NB_REQUIRE(entry.result.seed == derive_seed(opt.seed, entry.cell),
                   "journal cell seed does not match this campaign's derivation");
        out.cells[entry.cell] = entry.result;
        done[entry.cell] = 1;
      }
      preserved = std::move(replay.entries);
    }
  }

  journal_writer journal;
  if (!opt.journal_path.empty()) journal.open(opt.journal_path, header, preserved);

  std::vector<std::size_t> pending;
  pending.reserve(total);
  for (std::size_t index = 0; index < total; ++index) {
    if (!done[index]) {
      pending.push_back(index);
    } else if (opt.checkpoint_every > 0) {
      // Journal-completed cell: any leftover mid-run checkpoint (e.g. the
      // kill landed between the journal append and the file removal) is
      // superseded -- drop it so nothing stale survives the campaign.
      std::remove(checkpoint_cell_path(opt.journal_path, index).c_str());
    }
  }
  out.cells_resumed = total - pending.size();
  out.cells_executed = pending.size();

  // Worker-count policy.  Explicit requests are honored (warned when
  // they oversubscribe); the *default* (threads == 0) used to mean "one
  // worker per core" even when every cell also runs threads_per_run
  // intra-run shard workers -- workers x threads_per_run threads on
  // hardware_concurrency cores, silent time-slicing.  Clamp the default
  // so the product fits the machine.
  std::size_t workers = opt.threads;
  const std::size_t per_run = std::max<std::size_t>(1, opt.threads_per_run);
  const auto cores =
      static_cast<std::size_t>(std::max(1u, std::thread::hardware_concurrency()));
  if (workers == 0 && per_run > 1) {
    workers = std::max<std::size_t>(1, cores / per_run);
  }
  warn_if_oversubscribed(resolve_workers(workers) * per_run, "campaign workers x threads_per_run");

  // Pool tasks are noexcept by contract, but weighted cells can fail at
  // runtime (e.g. a fixed-weight config whose per-bin loads overflow the
  // guarded 32-bit representation mid-run).  Capture the first error and
  // rethrow it on the caller's thread instead of terminating; the journal
  // keeps every cell that completed, so --resume picks up after a fix.
  //
  // Scheduling is parallel_for's chunked work stealing: heterogeneous
  // cells (zipf vs uniform, kernel vs fused, different m) rebalance onto
  // idle workers instead of straggling behind a fixed hand-out order.
  // Determinism is untouched -- cell seeds derive from the cell *index*
  // and the aggregation below folds in index order, so the JSON is
  // byte-identical for any worker count and any steal pattern (enforced
  // by tests/test_orchestrator.cpp and tests/test_multicore.cpp).
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::atomic<std::size_t> restored_cells{0};
  parallel_for(pending.size(), workers, [&](std::size_t job) {
    {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (first_error) return;  // fail fast: stop starting new cells
    }
    const std::size_t index = pending[job];
    const campaign_config& config = configs[index / opt.repeats];
    try {
      bool restored = false;
      run_result r = run_cell(config, index, derive_seed(opt.seed, index), opt, &restored);
      if (restored) restored_cells.fetch_add(1, std::memory_order_relaxed);
      out.cells[index] = r;
      journal.append({index, r});
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  });
  if (first_error) std::rethrow_exception(first_error);
  out.cells_restored = restored_cells.load(std::memory_order_relaxed);

  // Aggregate in cell-index order: deterministic for any worker count and
  // identical whether a cell ran fresh or was replayed from the journal.
  out.configs.reserve(configs.size());
  for (const auto& config : configs) {
    config_result cr;
    cr.config = config;
    out.configs.push_back(std::move(cr));
  }
  for (std::size_t index = 0; index < total; ++index) {
    out.configs[index / opt.repeats].aggregate.add(out.cells[index]);
  }
  return out;
}

campaign_result run_campaign(const sweep_grid& grid, const campaign_options& opt) {
  return run_campaign(make_configs(expand_grid(grid)), opt);
}

// ---------------------------------------------------------------------------
// Emission.

namespace {

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const unsigned char c : raw) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += static_cast<char>(c);
    } else if (c < 0x20) {  // control characters would break strict parsers
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
  return out;
}

}  // namespace

std::string campaign_result::to_json() const {
  std::string s;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\n  \"campaign\": {\"seed\": %" PRIu64
                ", \"repeats\": %zu, \"configs\": %zu, \"cells\": %zu},\n  \"results\": [\n",
                seed, repeats, configs.size(), configs.size() * repeats);
  s += buf;
  for (std::size_t c = 0; c < configs.size(); ++c) {
    const auto& config = configs[c].config;
    const auto& agg = configs[c].aggregate;
    s += "    {\"label\": \"" + json_escape(config.label) + "\"";
    s += ", \"kind\": \"" + json_escape(config.process.kind) + "\"";
    s += ", \"param\": " + json_double(config.process.param);
    s += ", \"weighting\": \"" + json_escape(config.process.weighting) + "\"";
    s += ", \"sampler\": \"" + json_escape(config.process.sampler) + "\"";
    s += ", \"departures\": \"" + json_escape(config.process.departures) + "\"";
    std::snprintf(buf, sizeof buf, ", \"churn_occupancy\": %" PRId64,
                  static_cast<std::int64_t>(config.churn_occupancy));
    s += buf;
    std::snprintf(buf, sizeof buf, ", \"n\": %u, \"m\": %" PRId64 ", \"runs\": %zu,\n",
                  config.process.n, static_cast<std::int64_t>(config.m), agg.count());
    s += buf;
    s += "     \"gap\": {\"mean\": " + json_double(agg.gap().mean());
    s += ", \"stddev\": " + json_double(agg.gap_stddev());
    s += ", \"min\": " + json_double(agg.gap().min());
    s += ", \"max\": " + json_double(agg.gap().max());
    s += ", \"q25\": " + std::to_string(agg.gap_quantile(0.25));
    s += ", \"median\": " + std::to_string(agg.gap_quantile(0.5));
    s += ", \"q75\": " + std::to_string(agg.gap_quantile(0.75)) + "},\n";
    s += "     \"underload_gap_mean\": " + json_double(agg.underload_gap().mean());
    s += ", \"max_load_mean\": " + json_double(agg.max_load().mean());
    s += ",\n     \"gap_histogram\": [";
    const auto entries = agg.gap_histogram().entries();
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (i > 0) s += ", ";
      s += "[" + std::to_string(entries[i].first) + ", " + std::to_string(entries[i].second) + "]";
    }
    s += "]}";
    s += c + 1 < configs.size() ? ",\n" : "\n";
  }
  s += "  ]\n}\n";
  return s;
}

void campaign_result::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  NB_REQUIRE(out.is_open(), "cannot open campaign JSON output '" + path + "'");
  out << to_json();
}

void campaign_result::write_csv(const std::string& path) const {
  csv_writer csv(path, {"label", "kind", "param", "weighting", "sampler", "departures",
                        "churn_occupancy", "n", "m", "runs", "mean_gap", "stddev_gap", "min_gap",
                        "max_gap", "gap_q25", "gap_median", "gap_q75", "mean_underload_gap",
                        "mean_max_load"});
  for (const auto& cr : configs) {
    const auto& config = cr.config;
    const auto& agg = cr.aggregate;
    csv.write_row({config.label, config.process.kind, csv_writer::field(config.process.param),
                   config.process.weighting, config.process.sampler, config.process.departures,
                   csv_writer::field(static_cast<std::int64_t>(config.churn_occupancy)),
                   csv_writer::field(static_cast<std::int64_t>(config.process.n)),
                   csv_writer::field(static_cast<std::int64_t>(config.m)),
                   csv_writer::field(static_cast<std::int64_t>(agg.count())),
                   csv_writer::field(agg.gap().mean()), csv_writer::field(agg.gap_stddev()),
                   csv_writer::field(agg.gap().min()), csv_writer::field(agg.gap().max()),
                   csv_writer::field(agg.gap_quantile(0.25)),
                   csv_writer::field(agg.gap_quantile(0.5)),
                   csv_writer::field(agg.gap_quantile(0.75)),
                   csv_writer::field(agg.underload_gap().mean()),
                   csv_writer::field(agg.max_load().mean())});
  }
}

// ---------------------------------------------------------------------------
// Historical bench entry point.

std::vector<repeat_result> run_cells(const std::vector<cell>& cells, std::size_t runs,
                                     std::uint64_t master_seed, std::size_t threads,
                                     std::size_t threads_per_run,
                                     std::optional<kernel_isa> kernel, std::size_t lanes) {
  NB_REQUIRE(runs >= 1, "need at least one run per cell");
  campaign_options opt;
  opt.repeats = runs;
  opt.seed = master_seed;
  opt.threads = threads;
  opt.threads_per_run = threads_per_run;
  opt.use_kernel = kernel.has_value() && threads_per_run == 0;
  opt.isa = kernel.value_or(kernel_isa::auto_detect);
  opt.lanes = lanes;
  const auto campaign = run_campaign(cells, opt);
  std::vector<repeat_result> results(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    results[c].runs.assign(campaign.cells.begin() + static_cast<std::ptrdiff_t>(c * runs),
                           campaign.cells.begin() + static_cast<std::ptrdiff_t>((c + 1) * runs));
    results[c].gap_histogram = campaign.configs[c].aggregate.gap_histogram();
  }
  return results;
}

}  // namespace nb
