// Append-only JSONL journal of campaign cells, the checkpoint/resume
// substrate of the experiment orchestrator (src/exp/campaign.hpp).
//
// File layout: one JSON object per line.  The first line is a header
// identifying the campaign shape; every following line records one
// completed cell.  Lines are flushed as cells finish, so an interrupted
// campaign leaves a valid prefix (at worst one truncated final line, which
// replay discards).  Schema:
//
//   {"type":"nb-campaign-journal","version":1,"configs":C,"repeats":R,"seed":S}
//   {"cell":7,"seed":11437862103275740807,"balls":1000000,"gap":4,
//    "underload_gap":3.2,"max_load":1004,"min_load":996}
//
// Doubles are written with %.17g so replayed values round-trip bit-exactly:
// a campaign resumed from a journal aggregates to byte-identical JSON as an
// uninterrupted run (enforced by tests/test_orchestrator.cpp).
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sim/runner.hpp"

namespace nb {

/// Identifies the campaign a journal belongs to.  Resume refuses journals
/// whose header does not match the running campaign: `grid` fingerprints
/// the actual configuration list (labels, specs, m values), so even a
/// same-shaped campaign with a different grid -- where every per-cell
/// seed check would pass -- cannot silently mix in.
struct journal_header {
  std::size_t configs = 0;
  std::size_t repeats = 0;
  std::uint64_t seed = 0;
  std::uint64_t grid = 0;

  bool operator==(const journal_header&) const = default;
};

/// One completed cell: its flat index and the full run outcome.
struct journal_entry {
  std::size_t cell = 0;
  run_result result;
};

/// Thread-safe append-only writer.  Default-constructed writers are
/// inactive (append is a no-op), so drivers without a journal path pay
/// nothing.
class journal_writer {
 public:
  journal_writer() = default;
  journal_writer(const journal_writer&) = delete;
  journal_writer& operator=(const journal_writer&) = delete;
  ~journal_writer();

  /// Rewrites `path` with the header line plus `preserve` (the entries
  /// replayed from a previous journal, so resumed campaigns end up with
  /// one clean, garbage-free journal), then reopens it for appending.
  /// The rewrite is ATOMIC and durable (util/fsio.hpp: temp + fsync +
  /// rename + parent-dir fsync): a kill anywhere inside open() leaves
  /// either the complete old journal or the complete new one on disk --
  /// never a truncated file that would forfeit the already-replayed
  /// cells.  Throws nb::contract_error on any IO failure.
  void open(const std::string& path, const journal_header& header,
            const std::vector<journal_entry>& preserve = {});

  [[nodiscard]] bool active() const noexcept { return out_ != nullptr; }

  /// Appends one cell line, then flushes AND fsyncs it: once append
  /// returns, that cell survives SIGKILL and power loss.  One fsync per
  /// cell is the durability policy the resume contract is priced in --
  /// cells are seconds-to-minutes of simulation, so the sync is noise.
  void append(const journal_entry& entry);

 private:
  std::FILE* out_ = nullptr;
  std::string path_;
  std::mutex mutex_;
};

/// A replayed journal: the header (if the file had a valid one) and every
/// complete, well-formed cell line before the first malformed one.
/// `file_exists` lets resume distinguish "no journal yet" (start fresh)
/// from "a file is there but it is not a campaign journal" (refuse to
/// overwrite it).
struct journal_replay {
  bool file_exists = false;
  bool header_valid = false;
  journal_header header;
  std::vector<journal_entry> entries;
};

/// Reads `path`, tolerating a missing file (header_valid == false) and a
/// truncated final line (dropped).  Replay stops at the first malformed
/// line: with the flush-per-line writer, anything after a torn write is
/// unreachable anyway.
[[nodiscard]] journal_replay replay_journal(const std::string& path);

/// %.17g rendering shared by the journal codec and the campaign JSON
/// emitter -- the one formatter the bit-exact round-trip contract (and
/// therefore resume-equals-fresh byte identity) depends on.
[[nodiscard]] std::string json_double(double v);

// Line codec, exposed for tests.
[[nodiscard]] std::string journal_header_line(const journal_header& header);
[[nodiscard]] std::string journal_entry_line(const journal_entry& entry);
[[nodiscard]] std::optional<journal_header> parse_journal_header(const std::string& line);
[[nodiscard]] std::optional<journal_entry> parse_journal_entry(const std::string& line);

}  // namespace nb
