#include "exp/checkpoint.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/serialize.hpp"
#include "util/fsio.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#define NB_HAVE_SIGKILL 1
#else
#define NB_HAVE_SIGKILL 0
#endif

namespace nb {

// ---------------------------------------------------------------------------
// CRC32, slicing-by-8.

namespace {

struct crc32_tables {
  std::uint32_t t[8][256];
  crc32_tables() noexcept {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      for (int j = 1; j < 8; ++j) t[j][i] = (t[j - 1][i] >> 8) ^ t[0][t[j - 1][i] & 0xFFu];
    }
  }
};

const crc32_tables crc_;

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  // Endian-independent slicing: the four CRC bytes are folded explicitly,
  // never through a type-punned load.
  while (size >= 8) {
    c ^= static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
    c = crc_.t[7][c & 0xFFu] ^ crc_.t[6][(c >> 8) & 0xFFu] ^ crc_.t[5][(c >> 16) & 0xFFu] ^
        crc_.t[4][c >> 24] ^ crc_.t[3][p[4]] ^ crc_.t[2][p[5]] ^ crc_.t[1][p[6]] ^ crc_.t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) c = crc_.t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// File container.

namespace {

constexpr char checkpoint_magic[6] = {'N', 'B', 'C', 'K', 'P', 'T'};
constexpr std::uint32_t checkpoint_version = 1;
// magic + version u32 + payload length u64 + CRC32 u32.
constexpr std::size_t checkpoint_header_size = sizeof(checkpoint_magic) + 4 + 8 + 4;

}  // namespace

std::vector<std::uint8_t> encode_checkpoint(const run_checkpoint& ckpt) {
  NB_REQUIRE(ckpt.balls_done >= 0 && ckpt.balls_done <= max_run_balls,
             "checkpoint ball count out of range");
  state_writer payload;
  payload.put_string(ckpt.process_name);
  payload.put_string(ckpt.engine);
  payload.put_u64(ckpt.cell);
  payload.put_u64(ckpt.seed);
  payload.put_i64(ckpt.balls_done);
  for (const std::uint64_t word : ckpt.rng_state) payload.put_u64(word);
  payload.put_vec(ckpt.process_state);
  const std::vector<std::uint8_t> body = payload.take();

  state_writer header;
  for (const char ch : checkpoint_magic) header.put_u8(static_cast<std::uint8_t>(ch));
  header.put_u32(checkpoint_version);
  header.put_u64(body.size());
  header.put_u32(crc32(body.data(), body.size()));
  std::vector<std::uint8_t> file = header.take();
  NB_ASSERT(file.size() == checkpoint_header_size);
  file.insert(file.end(), body.begin(), body.end());
  return file;
}

run_checkpoint decode_checkpoint(const std::vector<std::uint8_t>& bytes) {
  NB_REQUIRE(bytes.size() >= checkpoint_header_size,
             "checkpoint file truncated: shorter than its header");
  NB_REQUIRE(std::memcmp(bytes.data(), checkpoint_magic, sizeof(checkpoint_magic)) == 0,
             "not a noisebalance checkpoint file (bad magic)");
  state_reader header(bytes.data() + sizeof(checkpoint_magic),
                      checkpoint_header_size - sizeof(checkpoint_magic));
  const std::uint32_t version = header.get_u32();
  NB_REQUIRE(version == checkpoint_version,
             "unsupported checkpoint version " + std::to_string(version) + " (this build reads " +
                 std::to_string(checkpoint_version) + ")");
  const std::uint64_t length = header.get_u64();
  const std::uint32_t crc = header.get_u32();
  NB_REQUIRE(bytes.size() - checkpoint_header_size == length,
             "checkpoint file length does not match its header");
  const std::uint8_t* body = bytes.data() + checkpoint_header_size;
  NB_REQUIRE(crc32(body, static_cast<std::size_t>(length)) == crc,
             "checkpoint file failed its CRC check (corrupt or torn write)");

  state_reader r(body, static_cast<std::size_t>(length));
  run_checkpoint ckpt;
  ckpt.process_name = r.get_string();
  ckpt.engine = r.get_string();
  ckpt.cell = r.get_u64();
  ckpt.seed = r.get_u64();
  ckpt.balls_done = r.get_i64();
  for (std::uint64_t& word : ckpt.rng_state) word = r.get_u64();
  ckpt.process_state = r.get_vec<std::uint8_t>();
  r.expect_end();
  NB_REQUIRE(ckpt.balls_done >= 0 && ckpt.balls_done <= max_run_balls,
             "checkpoint ball count out of range");
  return ckpt;
}

void write_checkpoint_file(const std::string& path, const run_checkpoint& ckpt) {
  const std::vector<std::uint8_t> bytes = encode_checkpoint(ckpt);
  atomic_write_file(path, bytes.data(), bytes.size());
}

std::optional<run_checkpoint> try_read_checkpoint_file(const std::string& path) {
  auto bytes = read_file_bytes(path);
  if (!bytes.has_value()) return std::nullopt;
  try {
    return decode_checkpoint(*bytes);
  } catch (const contract_error& e) {
    // Add the path: "checkpoint CRC mismatch" alone is useless in a
    // campaign juggling one file per cell.
    throw contract_error(std::string(e.what()) + " [" + path + "]");
  }
}

// ---------------------------------------------------------------------------
// Capture / restore.

run_checkpoint capture_checkpoint(const any_process& process, const rng_t& rng,
                                  const std::string& engine_fingerprint, std::uint64_t cell,
                                  std::uint64_t seed) {
  return capture_checkpoint(process, rng, engine_fingerprint, cell, seed,
                            process.state().balls());
}

run_checkpoint capture_checkpoint(const any_process& process, const rng_t& rng,
                                  const std::string& engine_fingerprint, std::uint64_t cell,
                                  std::uint64_t seed, step_count progress) {
  run_checkpoint ckpt;
  ckpt.process_name = process.name();
  ckpt.engine = engine_fingerprint;
  ckpt.cell = cell;
  ckpt.seed = seed;
  ckpt.balls_done = progress;
  ckpt.rng_state = rng.state();
  state_writer w;
  process.save_checkpoint(w);
  ckpt.process_state = w.take();
  return ckpt;
}

step_count restore_checkpoint_identity(any_process& process, rng_t& rng,
                                       const run_checkpoint& ckpt,
                                       const std::string& engine_fingerprint, std::uint64_t cell,
                                       std::uint64_t seed) {
  NB_REQUIRE(ckpt.process_name == process.name(),
             "checkpoint belongs to process '" + ckpt.process_name + "', not '" + process.name() +
                 "'");
  NB_REQUIRE(ckpt.engine == engine_fingerprint,
             "checkpoint was written under engine '" + ckpt.engine + "', not '" +
                 engine_fingerprint + "' (shards/lanes are part of the sampling contract)");
  NB_REQUIRE(ckpt.cell == cell, "checkpoint belongs to a different campaign cell");
  NB_REQUIRE(ckpt.seed == seed, "checkpoint seed does not match this run's seed");
  state_reader r(ckpt.process_state);
  process.restore_checkpoint(r);
  r.expect_end();
  rng.set_state(ckpt.rng_state);
  return ckpt.balls_done;
}

step_count restore_from_checkpoint(any_process& process, rng_t& rng, const run_checkpoint& ckpt,
                                   const std::string& engine_fingerprint, std::uint64_t cell,
                                   std::uint64_t seed, step_count m) {
  NB_REQUIRE(ckpt.balls_done >= 0 && ckpt.balls_done <= m,
             "checkpoint ball count is outside this run's [0, m]");
  restore_checkpoint_identity(process, rng, ckpt, engine_fingerprint, cell, seed);
  NB_REQUIRE(process.state().balls() == ckpt.balls_done,
             "restored process disagrees with the checkpoint's ball count");
  return ckpt.balls_done;
}

// ---------------------------------------------------------------------------
// Crash-fault injection.

namespace {

/// NB_CRASH_AFTER_BALLS, read once; <= 0 or unparsable disarms the hook.
std::int64_t crash_limit() noexcept {
  static const std::int64_t limit = [] {
    const char* env = std::getenv("NB_CRASH_AFTER_BALLS");
    if (env == nullptr || *env == '\0') return std::int64_t{0};
    char* end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0' || v <= 0) return std::int64_t{0};
    return static_cast<std::int64_t>(v);
  }();
  return limit;
}

std::atomic<std::int64_t> crash_progress{0};

}  // namespace

void crash_test_tick(step_count balls) noexcept {
  const std::int64_t limit = crash_limit();
  if (limit <= 0 || balls <= 0) return;
  const std::int64_t before = crash_progress.fetch_add(balls, std::memory_order_relaxed);
  if (before < limit && before + balls >= limit) {
    // A real kill: no destructors, no flushes, no atexit.  Whatever the
    // checkpoint and journal layers made durable is all a resume gets.
#if NB_HAVE_SIGKILL
    (void)std::raise(SIGKILL);
#endif
    std::_Exit(137);  // unreachable on POSIX; the kill for everyone else
  }
}

// ---------------------------------------------------------------------------
// Window-aligned chunked driver.

run_result run_checkpointed(any_process& process, step_count m, rng_t& rng, run_engine& engine,
                            step_count checkpoint_every,
                            const std::function<void(step_count)>& at_mark) {
  NB_REQUIRE(m >= 0 && m <= max_run_balls, "ball count must be in [0, max_run_balls]");
  NB_REQUIRE(checkpoint_every >= 0 && checkpoint_every <= max_run_balls,
             "checkpoint cadence must be in [0, max_run_balls]");
  step_count done = process.state().balls();
  NB_REQUIRE(done <= m, "process already holds more balls than the requested total");
  const step_count every = checkpoint_every;
  step_count next_mark = every > 0 ? (done / every + 1) * every : 0;
  while (done < m) {
    const step_count remaining = m - done;
    const step_count window = process.snapshot_window();
    step_count chunk;
    if (window > 0) {
      // Frozen-window process: take the whole window (or the run end --
      // the uninterrupted run cuts there too).  Never cut mid-window, or
      // the shard/kernel engines would see a different token sequence.
      chunk = window < remaining ? window : remaining;
    } else {
      // Serial-path process: any cut is a boundary, so land on the mark.
      chunk = remaining;
      if (every > 0 && next_mark - done < chunk) chunk = next_mark - done;
    }
    engine.step(process, rng, chunk);
    done += chunk;
    if (every > 0 && done >= next_mark) {
      // No mark at the finish line: a completed run's result supersedes
      // its checkpoint (the campaign deletes the file right after).
      if (done < m && at_mark) at_mark(done);
      next_mark = (done / every + 1) * every;
    }
    crash_test_tick(chunk);
  }
  return detail::collect_run_result(process);
}

}  // namespace nb
