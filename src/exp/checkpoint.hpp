// Mid-run checkpoint/restore: preemptible, kill-safe paper-scale runs.
//
// A checkpoint captures the FULL mid-run state of one simulation run --
// the RNG stream, the load vector, and every piece of per-process noise
// state (delay rings, batch snapshots, cached Gaussian halves) -- so a
// SIGKILLed run resumes from the last checkpoint and finishes
// byte-identical to an uninterrupted one.  That identity is the design
// invariant everything here serves:
//
//     checkpoint + restore == uninterrupted, bit for bit,
//     across serial / shard / kernel engines and any thread count.
//
// Two ingredients make it hold:
//
//   1. Completeness.  capture_checkpoint() serializes the xoshiro256++
//      stream (4 words) next to the process payload each checkpointable
//      process defines (core/process.hpp's checkpointable_process
//      contract), so the resumed run continues the exact random sequence.
//
//   2. Window alignment.  The shard and kernel engines draw one master-
//      stream token per stale-snapshot window, and a step-call boundary
//      inside a window would split it (two tokens -- different results).
//      run_checkpointed() therefore cuts its chunks only at window
//      boundaries (process.snapshot_window(); serial-path processes
//      report 0 = cut anywhere), so the window sequence -- and hence the
//      result -- is unchanged no matter where or how often checkpoints
//      land.  Checkpoint cadence is an execution knob, never a sampling
//      parameter.
//
// On disk a checkpoint is a single self-validating file:
//
//     "NBCKPT" | version u32 | payload length u64 | CRC32 u32 | payload
//
// written atomically (util/fsio.hpp: temp + fsync + rename), so a crash
// DURING a checkpoint write leaves the previous checkpoint intact and a
// reader never observes a torn file.  Every corruption mode -- bad magic,
// unknown version, truncation, flipped bytes, trailing garbage -- throws
// nb::contract_error with a clean diagnostic (fuzzed in
// tests/test_checkpoint.cpp).
//
// Crash-fault injection: the NB_CRASH_AFTER_BALLS environment variable
// arms crash_test_tick(), which SIGKILLs the process (no destructors, no
// atexit -- a real crash) once that many balls have moved through
// checkpointed drivers.  tools/crash_fuzz.py uses it to kill campaigns at
// randomized points and assert resumed == uninterrupted, byte for byte.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/runner.hpp"

namespace nb {

/// CRC32 (IEEE reflected polynomial 0xEDB88320, the zlib/PNG checksum),
/// slicing-by-8 -- fast enough that guarding a paper-scale payload (the
/// n = 1e6 load vector is 4 MB) costs well under the file write itself.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size) noexcept;

/// The in-memory form of one run's checkpoint.  Identity fields
/// (process_name, engine, cell, seed) are validated on restore so a
/// checkpoint can never silently resume the wrong run; balls_done and the
/// RNG words are the resume position; process_state is the opaque payload
/// the process's save_checkpoint wrote.
struct run_checkpoint {
  std::string process_name;              ///< process.name() at save time
  std::string engine;                    ///< run_engine::fingerprint()
  std::uint64_t cell = 0;                ///< campaign cell index (0 standalone)
  std::uint64_t seed = 0;                ///< the run's RNG seed
  step_count balls_done = 0;             ///< balls allocated before the save
  std::array<std::uint64_t, 4> rng_state{};  ///< master xoshiro256++ words
  std::vector<std::uint8_t> process_state;   ///< checkpointable_process payload
};

/// Serializes to / parses from the "NBCKPT" container.  decode throws
/// nb::contract_error on every corruption mode (magic, version, length,
/// CRC, truncated or over-long payload) -- it never reads out of bounds
/// and never trusts a length prefix before checking it.
[[nodiscard]] std::vector<std::uint8_t> encode_checkpoint(const run_checkpoint& ckpt);
[[nodiscard]] run_checkpoint decode_checkpoint(const std::vector<std::uint8_t>& bytes);

/// Atomic, durable write of the encoded container (temp + fsync + rename:
/// a crash mid-write leaves the previous file).
void write_checkpoint_file(const std::string& path, const run_checkpoint& ckpt);

/// Missing file -> std::nullopt (start from scratch); unreadable or
/// corrupt file -> contract_error (must be surfaced, not silently
/// restarted).
[[nodiscard]] std::optional<run_checkpoint> try_read_checkpoint_file(const std::string& path);

/// Snapshots a mid-run process + its RNG stream.  The process must model
/// checkpointable_process (probe any_process::checkpointable() first;
/// save on an unsupporting process throws).
[[nodiscard]] run_checkpoint capture_checkpoint(const any_process& process, const rng_t& rng,
                                                const std::string& engine_fingerprint,
                                                std::uint64_t cell, std::uint64_t seed);

/// Same, but with an explicit progress counter instead of the process's
/// resident ball count.  Drivers whose progress is not balls() -- the
/// churn driver, where departures make balls() non-monotone -- store
/// their own unit (warm-up balls, then occupancy + events) in balls_done.
[[nodiscard]] run_checkpoint capture_checkpoint(const any_process& process, const rng_t& rng,
                                                const std::string& engine_fingerprint,
                                                std::uint64_t cell, std::uint64_t seed,
                                                step_count progress);

/// Restores `ckpt` into a freshly constructed process + RNG, validating
/// the full identity first: process name, engine fingerprint (sampling
/// contract -- resuming under a different thread count or ISA backend is
/// legal by construction, under different shards/lanes is not), cell,
/// seed, and 0 <= balls_done <= m; after the payload is applied the
/// process must agree it holds balls_done balls.  Returns balls_done.
step_count restore_from_checkpoint(any_process& process, rng_t& rng, const run_checkpoint& ckpt,
                                   const std::string& engine_fingerprint, std::uint64_t cell,
                                   std::uint64_t seed, step_count m);

/// The identity-and-payload half of restore_from_checkpoint: validates
/// process name / engine fingerprint / cell / seed, applies the payload
/// and RNG words, and returns balls_done WITHOUT interpreting it against
/// the process's resident ball count.  For drivers whose progress counter
/// is not balls() (the churn driver); insertion-only callers use
/// restore_from_checkpoint, which adds the resident-count checks.
step_count restore_checkpoint_identity(any_process& process, rng_t& rng,
                                       const run_checkpoint& ckpt,
                                       const std::string& engine_fingerprint, std::uint64_t cell,
                                       std::uint64_t seed);

/// Steps `process` from its current ball count up to `m` total balls
/// through `engine`, cutting only at stale-snapshot window boundaries,
/// and calls `at_mark(balls_done)` at the first boundary at or after each
/// multiple of `checkpoint_every` balls (0 = no marks).  Marks are keyed
/// on the ABSOLUTE ball count, so a resumed run lands on exactly the
/// boundaries the uninterrupted run would have -- the window sequence,
/// and therefore the result, is identical whether the run was cut zero,
/// one, or fifty times.  Windows longer than the cadence simply space the
/// marks out (the boundary wins; alignment is what preserves results).
/// Feeds crash_test_tick() once per chunk.
run_result run_checkpointed(any_process& process, step_count m, rng_t& rng, run_engine& engine,
                            step_count checkpoint_every,
                            const std::function<void(step_count)>& at_mark);

/// Crash-fault injection hook.  When NB_CRASH_AFTER_BALLS is set to a
/// positive integer, the process raises SIGKILL once that many balls
/// (summed process-wide, across threads and cells) have been reported
/// here.  Checked at chunk boundaries, so the kill lands between engine
/// steps -- exactly where a preemption or OOM kill would.  Unset or
/// invalid: a no-op that reads one atomic.
void crash_test_tick(step_count balls) noexcept;

}  // namespace nb
