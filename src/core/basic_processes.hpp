// Baseline (noise-free) allocation processes from the paper:
//
//   * One-Choice     -- each ball into a uniformly random bin.
//   * Two-Choice     -- sample two bins u.a.r. with replacement, allocate to
//                       the less loaded one [ABKU99]; ties broken by a fair
//                       coin (the paper allows arbitrary tie-breaking; the
//                       coin makes Two-Choice the exact g=0 instance of
//                       every noise setting we implement).
//   * d-Choice       -- least loaded of d samples [ABKU99/BCSV06].
//   * (1+beta)       -- Two-Choice step with probability beta, One-Choice
//                       step otherwise [PTW15].
//
// Every process carries an alloc_model (weighted balls + non-uniform bin
// sampling, default unit/uniform); see the contract note in process.hpp.
// Bin samples go through the model's sampler, deposits through deposit();
// the default model reproduces the historical streams bit for bit.
#pragma once

#include <string>

#include "core/process.hpp"

namespace nb {

class one_choice {
 public:
  explicit one_choice(bin_count n) : state_(n) {}

  void step(rng_t& rng) { step_one(rng, state_.n()); }

  /// Fused bulk loop: n hoisted out of the per-ball path.
  void step_many(rng_t& rng, step_count count) {
    const bin_count n = state_.n();
    const load_state::bulk_window window(state_, count);
    for (step_count t = 0; t < count; ++t) step_one(rng, n);
  }

  [[nodiscard]] const load_state& state() const noexcept { return state_; }
  void reset() { state_.reset(); }
  [[nodiscard]] std::string name() const {
    return with_model_suffix("one-choice", model_);
  }

  void set_model(alloc_model m) { install_model(state_, model_, std::move(m)); }
  [[nodiscard]] const alloc_model& model() const noexcept { return model_; }

  /// One departure event through the model's channel (see depart_ball).
  void depart(rng_t& rng) { depart_ball(state_, model_, rng); }
  /// Applies one engine-merged departure block (see apply_departure_block).
  void commit_departures(const std::vector<std::uint32_t>& rel, step_count k) {
    apply_departure_block(state_, model_, rel, k);
  }

  /// Checkpoint contract: the load state is the only mutable member
  /// (parameters and model are configuration, rebuilt from the spec).
  void save_checkpoint(state_writer& w) const { state_.save(w); }
  void restore_checkpoint(state_reader& r) { state_.restore(r); }

 private:
  void step_one(rng_t& rng, bin_count n) {
    deposit(state_, model_.weighting, model_.sampler.sample(rng, n), rng);
  }

  load_state state_;
  alloc_model model_;
};

class two_choice {
 public:
  explicit two_choice(bin_count n) : state_(n) {}

  void step(rng_t& rng) { step_one(rng, state_.n()); }

  /// Fused bulk loop: n hoisted, decision body inlined per iteration.
  void step_many(rng_t& rng, step_count count) {
    const bin_count n = state_.n();
    const load_state::bulk_window window(state_, count);
    for (step_count t = 0; t < count; ++t) step_one(rng, n);
  }

  [[nodiscard]] const load_state& state() const noexcept { return state_; }
  void reset() { state_.reset(); }
  [[nodiscard]] std::string name() const {
    return with_model_suffix("two-choice", model_);
  }

  void set_model(alloc_model m) { install_model(state_, model_, std::move(m)); }
  [[nodiscard]] const alloc_model& model() const noexcept { return model_; }

  /// One departure event through the model's channel (see depart_ball).
  void depart(rng_t& rng) { depart_ball(state_, model_, rng); }
  /// Applies one engine-merged departure block (see apply_departure_block).
  void commit_departures(const std::vector<std::uint32_t>& rel, step_count k) {
    apply_departure_block(state_, model_, rel, k);
  }

  /// Checkpoint contract: the load state is the only mutable member
  /// (parameters and model are configuration, rebuilt from the spec).
  void save_checkpoint(state_writer& w) const { state_.save(w); }
  void restore_checkpoint(state_reader& r) { state_.restore(r); }

 private:
  void step_one(rng_t& rng, bin_count n) {
    const bin_index i1 = model_.sampler.sample(rng, n);
    const bin_index i2 = model_.sampler.sample(rng, n);
    const load_t x1 = state_.load(i1);
    const load_t x2 = state_.load(i2);
    bin_index chosen;
    if (x1 < x2) {
      chosen = i1;
    } else if (x2 < x1) {
      chosen = i2;
    } else {
      chosen = coin_flip(rng) ? i1 : i2;
    }
    deposit(state_, model_.weighting, chosen, rng);
  }

  load_state state_;
  alloc_model model_;
};

/// Least loaded of d independent uniform samples (with replacement); ties
/// among the minima are broken uniformly via reservoir sampling.
class d_choice {
 public:
  d_choice(bin_count n, int d) : state_(n), d_(d) {
    NB_REQUIRE(d >= 1, "d-choice needs d >= 1");
  }

  void step(rng_t& rng) { step_one(rng, state_.n()); }

  /// Fused bulk loop: n and d stay in registers across balls.
  void step_many(rng_t& rng, step_count count) {
    const bin_count n = state_.n();
    const load_state::bulk_window window(state_, count);
    for (step_count t = 0; t < count; ++t) step_one(rng, n);
  }

  [[nodiscard]] const load_state& state() const noexcept { return state_; }
  void reset() { state_.reset(); }
  [[nodiscard]] std::string name() const {
    const std::string base = std::to_string(d_) + "-choice";
    return with_model_suffix(base, model_);
  }
  [[nodiscard]] int d() const noexcept { return d_; }

  void set_model(alloc_model m) { install_model(state_, model_, std::move(m)); }
  [[nodiscard]] const alloc_model& model() const noexcept { return model_; }

  /// One departure event through the model's channel (see depart_ball).
  void depart(rng_t& rng) { depart_ball(state_, model_, rng); }
  /// Applies one engine-merged departure block (see apply_departure_block).
  void commit_departures(const std::vector<std::uint32_t>& rel, step_count k) {
    apply_departure_block(state_, model_, rel, k);
  }

  /// Checkpoint contract: the load state is the only mutable member
  /// (parameters and model are configuration, rebuilt from the spec).
  void save_checkpoint(state_writer& w) const { state_.save(w); }
  void restore_checkpoint(state_reader& r) { state_.restore(r); }

 private:
  void step_one(rng_t& rng, bin_count n) {
    bin_index best = model_.sampler.sample(rng, n);
    load_t best_load = state_.load(best);
    std::uint64_t tie_count = 1;
    for (int k = 1; k < d_; ++k) {
      const bin_index candidate = model_.sampler.sample(rng, n);
      const load_t candidate_load = state_.load(candidate);
      if (candidate_load < best_load) {
        best = candidate;
        best_load = candidate_load;
        tie_count = 1;
      } else if (candidate_load == best_load) {
        ++tie_count;
        if (bounded(rng, tie_count) == 0) best = candidate;
      }
    }
    deposit(state_, model_.weighting, best, rng);
  }

  load_state state_;
  alloc_model model_;
  int d_;
};

/// The (1+beta)-process of Peres, Talwar and Wieder.
class one_plus_beta {
 public:
  one_plus_beta(bin_count n, double beta) : state_(n), beta_(beta) {
    NB_REQUIRE(beta >= 0.0 && beta <= 1.0, "beta must be in [0,1]");
  }

  void step(rng_t& rng) { step_one(rng, state_.n()); }

  /// Fused bulk loop: n and beta hoisted out of the per-ball path.
  void step_many(rng_t& rng, step_count count) {
    const bin_count n = state_.n();
    const load_state::bulk_window window(state_, count);
    for (step_count t = 0; t < count; ++t) step_one(rng, n);
  }

  [[nodiscard]] const load_state& state() const noexcept { return state_; }
  void reset() { state_.reset(); }
  [[nodiscard]] std::string name() const {
    const std::string base = "(1+beta)[" + std::to_string(beta_) + "]";
    return with_model_suffix(base, model_);
  }
  [[nodiscard]] double beta() const noexcept { return beta_; }

  void set_model(alloc_model m) { install_model(state_, model_, std::move(m)); }
  [[nodiscard]] const alloc_model& model() const noexcept { return model_; }

  /// One departure event through the model's channel (see depart_ball).
  void depart(rng_t& rng) { depart_ball(state_, model_, rng); }
  /// Applies one engine-merged departure block (see apply_departure_block).
  void commit_departures(const std::vector<std::uint32_t>& rel, step_count k) {
    apply_departure_block(state_, model_, rel, k);
  }

  /// Checkpoint contract: the load state is the only mutable member
  /// (parameters and model are configuration, rebuilt from the spec).
  void save_checkpoint(state_writer& w) const { state_.save(w); }
  void restore_checkpoint(state_reader& r) { state_.restore(r); }

 private:
  void step_one(rng_t& rng, bin_count n) {
    const bin_index i1 = model_.sampler.sample(rng, n);
    if (!bernoulli(rng, beta_)) {
      deposit(state_, model_.weighting, i1, rng);  // One-Choice step
      return;
    }
    const bin_index i2 = model_.sampler.sample(rng, n);
    const load_t x1 = state_.load(i1);
    const load_t x2 = state_.load(i2);
    bin_index chosen;
    if (x1 < x2) {
      chosen = i1;
    } else if (x2 < x1) {
      chosen = i2;
    } else {
      chosen = coin_flip(rng) ? i1 : i2;
    }
    deposit(state_, model_.weighting, chosen, rng);
  }

  load_state state_;
  alloc_model model_;
  double beta_;
};

static_assert(allocation_process<one_choice>);
static_assert(allocation_process<two_choice>);
static_assert(allocation_process<d_choice>);
static_assert(allocation_process<one_plus_beta>);
static_assert(modeled_process<one_choice>);
static_assert(modeled_process<two_choice>);
static_assert(modeled_process<d_choice>);
static_assert(modeled_process<one_plus_beta>);
static_assert(checkpointable_process<one_choice>);
static_assert(checkpointable_process<two_choice>);
static_assert(checkpointable_process<d_choice>);
static_assert(checkpointable_process<one_plus_beta>);
static_assert(departable_process<one_choice>);
static_assert(departable_process<two_choice>);
static_assert(departable_process<d_choice>);
static_assert(departable_process<one_plus_beta>);

}  // namespace nb
