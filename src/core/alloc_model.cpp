#include "core/alloc_model.hpp"

#include <algorithm>
#include <cstdio>

namespace nb {

// ---------------------------------------------------------------------------
// ball_weighting.

ball_weighting ball_weighting::fixed(weight_t w) {
  NB_REQUIRE(w >= 1 && w <= max_ball_weight, "fixed ball weight must be in [1, max_ball_weight]");
  ball_weighting out;
  out.kind_ = kind::fixed;
  out.a_ = w;
  out.b_ = w;
  return out;
}

ball_weighting ball_weighting::two_point(weight_t lo, weight_t hi, double p_hi) {
  NB_REQUIRE(lo >= 1 && hi >= lo && hi <= max_ball_weight,
             "two-point weights must satisfy 1 <= lo <= hi <= max_ball_weight");
  NB_REQUIRE(p_hi >= 0.0 && p_hi <= 1.0, "two-point p_hi must be in [0, 1]");
  ball_weighting out;
  out.kind_ = kind::two_point;
  out.a_ = lo;
  out.b_ = hi;
  out.p_ = p_hi;
  return out;
}

ball_weighting ball_weighting::pareto(double alpha, weight_t cap) {
  NB_REQUIRE(alpha > 0.0, "pareto tail index alpha must be positive");
  NB_REQUIRE(cap >= 1 && cap <= max_ball_weight, "pareto cap must be in [1, max_ball_weight]");
  ball_weighting out;
  out.kind_ = kind::pareto;
  out.a_ = 1;
  out.b_ = cap;
  out.p_ = alpha;
  return out;
}

namespace {
std::string trim_number(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}
}  // namespace

std::string ball_weighting::label() const {
  switch (kind_) {
    case kind::unit:
      return "unit";
    case kind::fixed:
      return "fixed[w=" + std::to_string(a_) + "]";
    case kind::two_point:
      return "two-point[" + std::to_string(a_) + "," + std::to_string(b_) +
             ",p=" + trim_number(p_) + "]";
    case kind::pareto:
      return "pareto[a=" + trim_number(p_) + ",cap=" + std::to_string(b_) + "]";
  }
  return "unit";
}

// ---------------------------------------------------------------------------
// alias_table (Vose's method).

alias_table::alias_table(const std::vector<double>& weights) {
  NB_REQUIRE(!weights.empty(), "alias table needs at least one bin");
  double sum = 0.0;
  for (const double w : weights) {
    NB_REQUIRE(w >= 0.0 && std::isfinite(w), "alias weights must be finite and non-negative");
    sum += w;
  }
  NB_REQUIRE(sum > 0.0, "alias weights must not all be zero");

  const std::size_t n = weights.size();
  n_ = n;
  thresh_.assign(n, 0);
  alias_.assign(n, 0);

  // Scaled probabilities p_i * n; slots with s < 1 donate capacity to
  // slots with s > 1.  Worklists are filled in index order and drained
  // back-to-front, so the construction is fully deterministic.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) scaled[i] = weights[i] / sum * static_cast<double>(n);
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }

  // keep-probability -> 64-bit fixed point.  p == 1 saturates to the max
  // representable threshold with alias == slot, so the (2^-64-probability)
  // "miss" still lands on the same bin -- the realized law is exact.
  const auto to_fixed = [](double keep) -> std::uint64_t {
    if (keep >= 1.0) return UINT64_MAX;
    if (keep <= 0.0) return 0;
    return static_cast<std::uint64_t>(keep * 0x1.0p64);
  };

  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    thresh_[s] = to_fixed(scaled[s]);
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers (floating-point slack) keep their own slot with certainty.
  for (const std::uint32_t i : small) {
    thresh_[i] = UINT64_MAX;
    alias_[i] = i;
  }
  for (const std::uint32_t i : large) {
    thresh_[i] = UINT64_MAX;
    alias_[i] = i;
  }
}

std::vector<double> alias_table::probabilities() const {
  std::vector<double> p(n_, 0.0);
  const double slot_mass = n_ == 0 ? 0.0 : 1.0 / static_cast<double>(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    const double keep = thresh_[i] == UINT64_MAX
                            ? 1.0
                            : static_cast<double>(thresh_[i]) * 0x1.0p-64;
    p[i] += slot_mass * keep;
    p[alias_[i]] += slot_mass * (1.0 - keep);
  }
  return p;
}

// ---------------------------------------------------------------------------
// bin_sampler.

bin_sampler bin_sampler::alias(const std::vector<double>& weights, std::string label) {
  bin_sampler out;
  out.table_ = alias_table(weights);
  out.label_ = std::move(label);
  return out;
}

void check_model(const alloc_model& model, bin_count n) {
  NB_REQUIRE(model.sampler.is_uniform() || model.sampler.bins() == n,
             "bin sampler was built for " + std::to_string(model.sampler.bins()) +
                 " bins but the process has " + std::to_string(n));
}

// ---------------------------------------------------------------------------
// Spec parsing.

namespace {

/// Splits "name:args" and returns args split on ','.
struct parsed_spec {
  std::string name;
  std::vector<std::string> args;
};

parsed_spec split_spec(const std::string& spec) {
  parsed_spec out;
  const auto colon = spec.find(':');
  out.name = spec.substr(0, colon);
  if (colon == std::string::npos) return out;
  std::string rest = spec.substr(colon + 1);
  std::size_t start = 0;
  while (start <= rest.size()) {
    const auto comma = rest.find(',', start);
    if (comma == std::string::npos) {
      out.args.push_back(rest.substr(start));
      break;
    }
    out.args.push_back(rest.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

double parse_double(const std::string& s, const std::string& what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    NB_REQUIRE(used == s.size(), "trailing characters in " + what + " '" + s + "'");
    return v;
  } catch (const contract_error&) {
    throw;
  } catch (const std::exception&) {
    throw contract_error("cannot parse " + what + " '" + s + "'");
  }
}

std::int64_t parse_int(const std::string& s, const std::string& what) {
  const double v = parse_double(s, what);
  NB_REQUIRE(v == std::floor(v) && std::abs(v) < 0x1.0p62, what + " must be an integer");
  return static_cast<std::int64_t>(v);
}

}  // namespace

ball_weighting make_weighting(const std::string& spec) {
  const parsed_spec p = split_spec(spec);
  if (p.name == "unit") {
    NB_REQUIRE(p.args.empty(), "'unit' takes no arguments");
    return ball_weighting::unit();
  }
  if (p.name == "fixed") {
    NB_REQUIRE(p.args.size() == 1, "expected fixed:<w>");
    return ball_weighting::fixed(parse_int(p.args[0], "fixed weight"));
  }
  if (p.name == "two-point") {
    NB_REQUIRE(p.args.size() == 3, "expected two-point:<lo>,<hi>,<p>");
    return ball_weighting::two_point(parse_int(p.args[0], "two-point lo"),
                                     parse_int(p.args[1], "two-point hi"),
                                     parse_double(p.args[2], "two-point p"));
  }
  if (p.name == "pareto") {
    NB_REQUIRE(p.args.size() == 1 || p.args.size() == 2,
               "expected pareto:<alpha> or pareto:<alpha>,<cap>");
    const double alpha = parse_double(p.args[0], "pareto alpha");
    const weight_t cap =
        p.args.size() == 2 ? parse_int(p.args[1], "pareto cap") : (weight_t{1} << 20);
    return ball_weighting::pareto(alpha, cap);
  }
  throw contract_error("unknown weighting spec '" + spec +
                       "' (unit | fixed:<w> | two-point:<lo>,<hi>,<p> | pareto:<alpha>[,<cap>])");
}

bin_sampler make_sampler(const std::string& spec, bin_count n) {
  NB_REQUIRE(n >= 1, "sampler needs at least one bin");
  const parsed_spec p = split_spec(spec);
  if (p.name == "uniform") {
    NB_REQUIRE(p.args.empty(), "'uniform' takes no arguments");
    return bin_sampler::uniform();
  }
  if (p.name == "zipf") {
    NB_REQUIRE(p.args.size() == 1, "expected zipf:<s>");
    const double s = parse_double(p.args[0], "zipf exponent");
    NB_REQUIRE(s >= 0.0, "zipf exponent must be non-negative");
    std::vector<double> w(n);
    for (bin_count i = 0; i < n; ++i) w[i] = std::pow(static_cast<double>(i) + 1.0, -s);
    return bin_sampler::alias(w, spec);
  }
  if (p.name == "hot") {
    NB_REQUIRE(p.args.size() == 2, "expected hot:<k>,<f>");
    const std::int64_t k = parse_int(p.args[0], "hot bin count");
    const double f = parse_double(p.args[1], "hot probability mass");
    NB_REQUIRE(k >= 1 && k < static_cast<std::int64_t>(n),
               "hot bin count must be in [1, n)");
    NB_REQUIRE(f > 0.0 && f < 1.0, "hot mass must be in (0, 1)");
    std::vector<double> w(n, (1.0 - f) / static_cast<double>(n - k));
    for (std::int64_t i = 0; i < k; ++i) w[static_cast<std::size_t>(i)] = f / static_cast<double>(k);
    return bin_sampler::alias(w, spec);
  }
  throw contract_error("unknown sampler spec '" + spec +
                       "' (uniform | zipf:<s> | hot:<k>,<f>)");
}

departure_model departure_model::random() {
  departure_model out;
  out.kind_ = kind::random;
  return out;
}

departure_model departure_model::lease() {
  departure_model out;
  out.kind_ = kind::lease;
  return out;
}

departure_model departure_model::drain() {
  departure_model out;
  out.kind_ = kind::drain;
  return out;
}

std::string departure_model::label() const {
  switch (kind_) {
    case kind::none:
      return "none";
    case kind::random:
      return "random";
    case kind::lease:
      return "lease";
    case kind::drain:
      return "drain";
  }
  return "none";
}

departure_model make_departures(const std::string& spec) {
  if (spec == "none") return departure_model::none();
  if (spec == "random") return departure_model::random();
  if (spec == "lease") return departure_model::lease();
  if (spec == "drain") return departure_model::drain();
  throw contract_error("unknown departure spec '" + spec +
                       "' (none | random | lease | drain)");
}

alloc_model make_model(const std::string& weighting_spec, const std::string& sampler_spec,
                       bin_count n, const std::string& departures_spec) {
  return alloc_model{make_weighting(weighting_spec), make_sampler(sampler_spec, n),
                     make_departures(departures_spec)};
}

}  // namespace nb
