// Lane-interleaved SIMD departure kernel: the bulk mirror of the
// allocation kernel for the steady-state churn regime.
//
// One call answers "serve k departure events against a frozen 8-bit load
// snapshot and count the departures per bin" -- the departure half of a
// churn cycle in the serial kernel engine and of a shard's block in the
// parallel engine.  Two channels vectorize (the lease channel is RNG-free
// FIFO ring popping and never needs a kernel):
//
//   * drain -- two-choice in reverse.  Per event, lane l consumes
//     bounded(n), bounded(n) and exactly one raw tie draw, and the FULLER
//     bin by snapshot offset wins (tie bit set -> first index).  That is
//     the allocation kernel's canonical min-select over the byte-INVERTED
//     snapshot (255 - off[i]) with identical tie semantics, so every
//     fill backend -- scalar, SSE2, AVX2, AVX-512, NEON -- is reused
//     verbatim and cross-backend bit-identity is inherited, not re-proven.
//     At fold time the chosen bin's *remaining* load (snapshot load minus
//     this call's own departures) must still cover the per-ball weight; a
//     drained-dry pick is re-served from a dedicated scalar replay stream
//     (rng_t(derive_seed(seed, lanes)), the stream "one past" the lanes)
//     that redraws (i, j[, tie]) over remaining loads under the serial
//     drain eligibility law, with a deterministic fullest-bin fallback
//     after a bounded attempt budget (contract_error when even that bin
//     cannot cover the weight).
//
//   * random -- vectorized rejection sampling over resident load.  The
//     acceptance bound freezes at the snapshot maximum B = base + span;
//     per attempt, lane l consumes bounded(n) (a bin j) then bounded(B)
//     (an acceptance draw u), and the attempt serves one departure iff
//     u < remaining(j) -- acceptance against the *remaining* load embeds
//     the capacity check and keeps the served distribution exactly
//     proportional to remaining load.  Attempts are consumed in ball
//     order until k are served; the unused tail of the final fixed-size
//     attempt block is discarded (part of the declared draw order).
//     Retires unit quanta only, like the serial channel.
//
// CONTRACT (mirroring kernel_run, enforced by tests/test_kernel.cpp): the
// per-bin departure counts are a pure function of (channel, lanes, n,
// snapshot + base, weight, k, seed).  The ISA backend is execution-only
// and bit-identical to the scalar reference; `lanes` is a sampling
// parameter exactly like the allocation kernel's.  The batched draw order
// is deliberately NOT the serial per-event stream (the serial channels
// sample live loads; the kernel samples the frozen snapshot plus its own
// counts) -- batched departures are a declared sampling-contract
// parameter exactly like engine windows and kernel lanes, and the
// per-event serial path in core/process.hpp remains the reference law.
//
// Snapshot gather safety: like kernel_run, `snap` must stay readable for
// compact_snapshot::tail_padding bytes past index n - 1.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.hpp"
#include "core/kernel/kernel.hpp"

namespace nb {

/// Departure channel served by the kernel.  The numeric values are not
/// serialized anywhere (fingerprints and bench JSON use channel labels).
enum class depart_channel : std::uint8_t {
  random = 0,  ///< a uniformly random resident load unit departs
  drain = 1,   ///< two-choice drain: the fuller of two samples loses one ball
};

/// Serves `k` departures against `snap` (n bins, 8-bit offsets over
/// `snap_base`, `snap_span` = max offset, tail-padded like kernel_run) and
/// accumulates `++rel[chosen]` per departing ball.  `weight_per_ball` is
/// the weight each drain departure retires (deterministic weightings only;
/// must be 1 for the random channel) -- the capacity fold guarantees
/// snap_base + snap[i] - weight_per_ball * rel[i] stays non-negative for
/// every bin, so the caller can apply the counts with
/// load_state::apply_releases unguarded.  The uint16 overload is the
/// shard-engine row (caller caps per-call departures like the allocation
/// row cap); the uint32 overload serves whole serial blocks.
void kernel_depart(kernel_isa isa, std::size_t lanes, depart_channel channel, bin_count n,
                   const std::uint8_t* snap, load_t snap_base, std::uint8_t snap_span,
                   weight_t weight_per_ball, std::uint16_t* rel, step_count k,
                   std::uint64_t seed);
void kernel_depart(kernel_isa isa, std::size_t lanes, depart_channel channel, bin_count n,
                   const std::uint8_t* snap, load_t snap_base, std::uint8_t snap_span,
                   weight_t weight_per_ball, std::uint32_t* rel, step_count k,
                   std::uint64_t seed);

}  // namespace nb
