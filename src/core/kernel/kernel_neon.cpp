// NEON backend of the allocation kernel: 2 lanes per 128-bit vector,
// compile-time selected on aarch64 (AdvSIMD is architecturally mandatory
// there, so no runtime feature test or target attribute is needed).
//
// Same split as the SSE2 backend: the arithmetic-heavy half -- the
// xoshiro256++ steps and the Lemire multiply-shift (vmull_u32 on the
// narrowed 32-bit halves gives the 96-bit product decomposition) -- runs
// vectorized, the snapshot loads stay scalar (no gathers on NEON), and
// the min-select runs on 32-bit NEON lanes.  Unlike SSE2's coarse
// "any high dword zero" superset, NEON has unsigned 64-bit compares
// (vcltq_u64), so the rejection test is EXACT: a group only leaves the
// vector path on a true Lemire rejection (~2^-32 per draw), a remainder
// lane, or the trailing partial round -- all through the shared scalar
// queue replay, preserving the per-lane draw order bit for bit.
//
// NEON shift/rotate immediates must be compile-time constants, hence the
// template<int K> rotate.
#if defined(__aarch64__)

#include <arm_neon.h>

#include "core/kernel/kernel_common.hpp"

namespace nb::kernel_detail {
namespace {

template <int K>
inline uint64x2_t rot64(uint64x2_t x) {
  return vorrq_u64(vshlq_n_u64(x, K), vshrq_n_u64(x, 64 - K));
}

/// One xoshiro256++ step for 2 lanes (same update as lane_soa::next).
inline uint64x2_t xo_step(uint64x2_t& s0, uint64x2_t& s1, uint64x2_t& s2, uint64x2_t& s3) {
  const uint64x2_t result = vaddq_u64(rot64<23>(vaddq_u64(s0, s3)), s0);
  const uint64x2_t t = vshlq_n_u64(s1, 17);
  s2 = veorq_u64(s2, s0);
  s3 = veorq_u64(s3, s1);
  s1 = veorq_u64(s1, s2);
  s0 = veorq_u64(s0, s3);
  s2 = veorq_u64(s2, t);
  s3 = rot64<45>(s3);
  return result;
}

/// Lemire multiply-shift for 2 draws (see lemire4 in kernel_avx2.cpp for
/// the decomposition; bound < 2^32).  vmull_u32 widens the narrowed
/// 32-bit halves straight into the two 64-bit partial products.
inline void lemire2(uint64x2_t x, uint32x2_t bound, uint64x2_t& candidate, uint64x2_t& low) {
  const uint64x2_t lo_prod = vmull_u32(vmovn_u64(x), bound);
  const uint64x2_t hi_prod = vmull_u32(vshrn_n_u64(x, 32), bound);
  candidate = vshrq_n_u64(vaddq_u64(hi_prod, vshrq_n_u64(lo_prod, 32)), 32);
  low = vaddq_u64(vshlq_n_u64(hi_prod, 32), lo_prod);
}

/// True when any 64-bit lane of `m` is all-ones.
inline bool any_lane(uint64x2_t m) { return vmaxvq_u32(vreinterpretq_u32_u64(m)) != 0; }

void fill_neon_impl(lane_soa& st, bin_count n, std::uint64_t threshold, const std::uint8_t* snap,
                    std::uint32_t* chosen, std::size_t balls) {
  const std::size_t lanes = st.lanes;
  const std::size_t vec_lanes = lanes - lanes % 2;
  const auto bound64 = static_cast<std::uint64_t>(n);
  const uint32x2_t bound = vdup_n_u32(static_cast<std::uint32_t>(bound64));
  const uint64x2_t thr = vdupq_n_u64(threshold);

  std::size_t t = 0;
  while (t + lanes <= balls) {
    for (std::size_t lane0 = 0; lane0 < vec_lanes; lane0 += 2) {
      uint64x2_t s0 = vld1q_u64(st.s0.data() + lane0);
      uint64x2_t s1 = vld1q_u64(st.s1.data() + lane0);
      uint64x2_t s2 = vld1q_u64(st.s2.data() + lane0);
      uint64x2_t s3 = vld1q_u64(st.s3.data() + lane0);
      const uint64x2_t a = xo_step(s0, s1, s2, s3);
      const uint64x2_t b = xo_step(s0, s1, s2, s3);
      const uint64x2_t c = xo_step(s0, s1, s2, s3);
      vst1q_u64(st.s0.data() + lane0, s0);
      vst1q_u64(st.s1.data() + lane0, s1);
      vst1q_u64(st.s2.data() + lane0, s2);
      vst1q_u64(st.s3.data() + lane0, s3);

      uint64x2_t i1;
      uint64x2_t i2;
      uint64x2_t low_a;
      uint64x2_t low_b;
      lemire2(a, bound, i1, low_a);
      lemire2(b, bound, i2, low_b);

      // Exact rejection test: reject iff the low product word clears the
      // hoisted Lemire threshold.
      if (any_lane(vorrq_u64(vcltq_u64(low_a, thr), vcltq_u64(low_b, thr)))) [[unlikely]] {
        std::uint64_t qa[2];
        std::uint64_t qb[2];
        std::uint64_t qc[2];
        vst1q_u64(qa, a);
        vst1q_u64(qb, b);
        vst1q_u64(qc, c);
        for (std::size_t l = 0; l < 2; ++l) {
          const std::uint64_t queue[3] = {qa[l], qb[l], qc[l]};
          chosen[t + lane0 + l] = replay_ball(st, lane0 + l, bound64, threshold, snap, queue, 3);
        }
        continue;
      }

      // Scalar snapshot loads (no gathers on NEON), vector min-select:
      // pick i1 when snap[i1] < snap[i2], or on a tie when draw c's top
      // bit is set.
      std::uint64_t idx1[2];
      std::uint64_t idx2[2];
      vst1q_u64(idx1, i1);
      vst1q_u64(idx2, i2);
      uint32x2_t ga = vdup_n_u32(snap[idx1[0]]);
      ga = vset_lane_u32(snap[idx1[1]], ga, 1);
      uint32x2_t gb = vdup_n_u32(snap[idx2[0]]);
      gb = vset_lane_u32(snap[idx2[1]], gb, 1);
      const uint32x2_t tie = vmovn_u64(vcltzq_s64(vreinterpretq_s64_u64(c)));
      const uint32x2_t pick =
          vorr_u32(vclt_u32(ga, gb), vand_u32(vceq_u32(ga, gb), tie));
      const uint32x2_t ch = vbsl_u32(pick, vmovn_u64(i1), vmovn_u64(i2));
      vst1_u32(chosen + t + lane0, ch);
    }
    for (std::size_t l = vec_lanes; l < lanes; ++l) {  // remainder lanes
      chosen[t + l] = replay_ball(st, l, bound64, threshold, snap, nullptr, 0);
    }
    t += lanes;
  }
  for (std::size_t l = 0; t < balls; ++l, ++t) {  // trailing partial round
    chosen[t] = replay_ball(st, l, bound64, threshold, snap, nullptr, 0);
  }
}

/// Alias-sampled fill: vector RNG + Lemire for the five draws per 2-lane
/// group, scalar table lookups (alias_pick) and decision -- the same
/// split as the SSE2 alias path, with NEON's exact rejection test.
void fill_alias_neon_impl(lane_soa& st, bin_count n, std::uint64_t threshold,
                          const std::uint8_t* snap, const std::uint64_t* thresh,
                          const bin_index* alias, std::uint32_t* chosen, std::size_t balls) {
  const std::size_t lanes = st.lanes;
  const std::size_t vec_lanes = lanes - lanes % 2;
  const auto bound64 = static_cast<std::uint64_t>(n);
  const uint32x2_t bound = vdup_n_u32(static_cast<std::uint32_t>(bound64));
  const uint64x2_t thr = vdupq_n_u64(threshold);

  std::size_t t = 0;
  while (t + lanes <= balls) {
    for (std::size_t lane0 = 0; lane0 < vec_lanes; lane0 += 2) {
      uint64x2_t s0 = vld1q_u64(st.s0.data() + lane0);
      uint64x2_t s1 = vld1q_u64(st.s1.data() + lane0);
      uint64x2_t s2 = vld1q_u64(st.s2.data() + lane0);
      uint64x2_t s3 = vld1q_u64(st.s3.data() + lane0);
      const uint64x2_t a = xo_step(s0, s1, s2, s3);   // slot 1
      const uint64x2_t u1 = xo_step(s0, s1, s2, s3);  // keep/alias test 1
      const uint64x2_t b = xo_step(s0, s1, s2, s3);   // slot 2
      const uint64x2_t u2 = xo_step(s0, s1, s2, s3);  // keep/alias test 2
      const uint64x2_t c = xo_step(s0, s1, s2, s3);   // tie bit
      vst1q_u64(st.s0.data() + lane0, s0);
      vst1q_u64(st.s1.data() + lane0, s1);
      vst1q_u64(st.s2.data() + lane0, s2);
      vst1q_u64(st.s3.data() + lane0, s3);

      uint64x2_t sl1;
      uint64x2_t sl2;
      uint64x2_t low_a;
      uint64x2_t low_b;
      lemire2(a, bound, sl1, low_a);
      lemire2(b, bound, sl2, low_b);

      std::uint64_t qu1[2];
      std::uint64_t qu2[2];
      std::uint64_t qc[2];
      vst1q_u64(qu1, u1);
      vst1q_u64(qu2, u2);
      vst1q_u64(qc, c);

      if (any_lane(vorrq_u64(vcltq_u64(low_a, thr), vcltq_u64(low_b, thr)))) [[unlikely]] {
        std::uint64_t qa[2];
        std::uint64_t qb[2];
        vst1q_u64(qa, a);
        vst1q_u64(qb, b);
        for (std::size_t l = 0; l < 2; ++l) {
          const std::uint64_t queue[5] = {qa[l], qu1[l], qb[l], qu2[l], qc[l]};
          chosen[t + lane0 + l] =
              replay_ball_alias(st, lane0 + l, bound64, threshold, snap, thresh, alias, queue, 5);
        }
        continue;
      }

      std::uint64_t slot1[2];
      std::uint64_t slot2[2];
      vst1q_u64(slot1, sl1);
      vst1q_u64(slot2, sl2);
      for (std::size_t l = 0; l < 2; ++l) {
        const std::uint32_t i1 =
            alias_pick(thresh, alias, static_cast<std::uint32_t>(slot1[l]), qu1[l]);
        const std::uint32_t i2 =
            alias_pick(thresh, alias, static_cast<std::uint32_t>(slot2[l]), qu2[l]);
        chosen[t + lane0 + l] = decide(snap[i1], snap[i2], qc[l], i1, i2);
      }
    }
    for (std::size_t l = vec_lanes; l < lanes; ++l) {
      chosen[t + l] = replay_ball_alias(st, l, bound64, threshold, snap, thresh, alias, nullptr, 0);
    }
    t += lanes;
  }
  for (std::size_t l = 0; t < balls; ++l, ++t) {
    chosen[t] = replay_ball_alias(st, l, bound64, threshold, snap, thresh, alias, nullptr, 0);
  }
}

}  // namespace

void fill_neon(lane_soa& st, bin_count n, std::uint64_t threshold, const std::uint8_t* snap,
               std::uint32_t* chosen, std::size_t balls, kernel_tuning /*tune*/) {
  fill_neon_impl(st, n, threshold, snap, chosen, balls);
}

void fill_alias_neon(lane_soa& st, bin_count n, std::uint64_t threshold, const std::uint8_t* snap,
                     const std::uint64_t* thresh, const bin_index* alias, std::uint32_t* chosen,
                     std::size_t balls, kernel_tuning /*tune*/) {
  fill_alias_neon_impl(st, n, threshold, snap, thresh, alias, chosen, balls);
}

}  // namespace nb::kernel_detail

#endif  // aarch64
