// Block driver of the departure kernel (see kernel_depart.hpp for the
// channel laws and the sampling contract).
//
// The driver owns everything backend-independent, mirroring kernel.cpp:
// lane-state setup, threshold hoists, cutting the run into L1-resident
// blocks at lane-count multiples, and folding decided events into the
// caller's departure-count row.  The fold is also where departures differ
// from arrivals: counts must never overdraw a bin, so the drain fold
// checks the chosen bin's remaining load per event (replaying drained-dry
// picks on a dedicated scalar stream) and the random fold folds the
// capacity check into the acceptance test itself.
#include "core/kernel/kernel_depart.hpp"

#include <string>
#include <vector>

#include "core/kernel/kernel_common.hpp"
#include "core/load_vector.hpp"

namespace nb {
namespace {

/// Same L1-resident block capacity as the allocation driver.
constexpr std::size_t kBlockBalls = 8192;
static_assert(kBlockBalls % kernel_max_lanes == 0);

/// Replay attempts before the drain fold falls back to the deterministic
/// fullest-bin scan.  Generous: a redraw only fails while nearly every
/// sampled pair is drained dry, so hitting the cap at all means the block
/// is retiring a large fraction of the snapshot's total load.
constexpr int kDrainReplayAttempts = 4096;

kernel_detail::fill_fn pick_fill(kernel_isa resolved) noexcept {
  switch (resolved) {
#if defined(__x86_64__) || defined(__i386__)
    case kernel_isa::sse2:
      return kernel_detail::fill_sse2;
    case kernel_isa::avx2:
      return kernel_detail::fill_avx2;
    case kernel_isa::avx512:
      return kernel_detail::fill_avx512;
#endif
#if defined(__aarch64__)
    case kernel_isa::neon:
      return kernel_detail::fill_neon;
#endif
    default:
      return kernel_detail::fill_scalar;
  }
}

kernel_detail::fill_pair_fn pick_fill_pair(kernel_isa resolved) noexcept {
  switch (resolved) {
#if defined(__x86_64__) || defined(__i386__)
    case kernel_isa::sse2:
      return kernel_detail::fill_pair_sse2;
    case kernel_isa::avx2:
      return kernel_detail::fill_pair_avx2;
    case kernel_isa::avx512:
      return kernel_detail::fill_pair_avx512;
#endif
    // aarch64 deliberately lands on the scalar reference (see the note in
    // kernel_common.hpp) -- bit-identical by contract.
    default:
      return kernel_detail::fill_pair_scalar;
  }
}

/// Drain: fill backends decide "fuller of two snapshot samples" over the
/// byte-inverted snapshot; the fold retires weight w per event with a
/// per-event remaining-capacity check.
template <typename Row>
void depart_drain(kernel_isa isa, std::size_t lanes, bin_count n, const std::uint8_t* snap,
                  load_t snap_base, weight_t w, Row* rel, step_count k, std::uint64_t seed) {
  const kernel_detail::fill_fn fill = pick_fill(resolve_kernel_isa(isa));
  const kernel_tuning tune = current_kernel_tuning();
  kernel_detail::lane_soa state;
  state.init(lanes, seed);
  const std::uint64_t threshold = kernel_detail::lemire_threshold(n);

  // Byte-inverted snapshot: max-select over off[] IS the canonical
  // min-select over 255 - off[] with identical tie semantics, so the
  // allocation fill backends serve drain verbatim.  Thread-local so shard
  // tasks reuse their buffer across windows; the tail padding stays
  // readable for the vector gathers, its values are never used.
  thread_local std::vector<std::uint8_t> inv;
  inv.resize(static_cast<std::size_t>(n) + compact_snapshot::tail_padding);
  for (bin_count i = 0; i < n; ++i) inv[i] = static_cast<std::uint8_t>(255 - snap[i]);
  for (std::size_t p = n; p < inv.size(); ++p) inv[p] = 0;

  // Dedicated scalar stream for drained-dry picks: lane streams occupy
  // derive_seed(seed, 0..lanes-1), so the replay stream is the next one.
  xoshiro256pp replay(derive_seed(seed, lanes));

  const auto remaining = [&](std::uint32_t c) noexcept -> weight_t {
    return static_cast<weight_t>(snap_base) + snap[c] - static_cast<weight_t>(rel[c]) * w;
  };
  const auto replay_one = [&]() {
    for (int attempt = 0; attempt < kDrainReplayAttempts; ++attempt) {
      const auto i = static_cast<std::uint32_t>(bounded(replay, n));
      const auto j = static_cast<std::uint32_t>(bounded(replay, n));
      const weight_t ri = remaining(i);
      const weight_t rj = remaining(j);
      // Serial drain's eligibility and selection laws, over remaining load.
      if (ri < w && rj < w) continue;
      std::uint32_t c;
      if (ri != rj) {
        c = ri > rj ? i : j;
      } else {
        c = (replay.next() >> 63) != 0 ? i : j;
      }
      ++rel[c];
      return;
    }
    // Deterministic fallback: the fullest remaining bin, first index wins.
    std::uint32_t best = 0;
    weight_t best_rem = remaining(0);
    for (bin_count i = 1; i < n; ++i) {
      const weight_t r = remaining(i);
      if (r > best_rem) {
        best = i;
        best_rem = r;
      }
    }
    NB_REQUIRE(best_rem >= w, "drain departure block cannot retire weight " + std::to_string(w) +
                                  ": no bin's remaining load covers it");
    ++rel[best];
  };

  const std::size_t block = (kBlockBalls / lanes) * lanes;
  alignas(64) std::uint32_t chosen[kBlockBalls];
  while (k > 0) {
    const std::size_t count =
        k < static_cast<step_count>(block) ? static_cast<std::size_t>(k) : block;
    fill(state, n, threshold, inv.data(), chosen, count, tune);
    for (std::size_t t = 0; t < count; ++t) {
      const std::uint32_t c = chosen[t];
      if (remaining(c) >= w) {
        ++rel[c];
      } else {
        replay_one();
      }
    }
    k -= static_cast<step_count>(count);
  }
}

/// Random: the pair fill bulk-generates (bin, acceptance) attempt pairs;
/// the fold serves an attempt iff its acceptance draw lands under the
/// bin's remaining load, until k departures are served.
template <typename Row>
void depart_random(kernel_isa isa, std::size_t lanes, bin_count n, const std::uint8_t* snap,
                   load_t snap_base, std::uint8_t snap_span, Row* rel, step_count k,
                   std::uint64_t seed) {
  // Frozen acceptance bound: the snapshot maximum.  load_t is 32-bit, so
  // base + span always fits the pair fill's < 2^32 bound contract.
  const std::uint64_t bound = static_cast<std::uint64_t>(snap_base) + snap_span;
  NB_REQUIRE(bound >= 1, "random departure kernel needs resident load in the snapshot");
  const kernel_detail::fill_pair_fn fill = pick_fill_pair(resolve_kernel_isa(isa));
  const kernel_tuning tune = current_kernel_tuning();
  kernel_detail::lane_soa state;
  state.init(lanes, seed);
  const std::uint64_t thresh_n = kernel_detail::lemire_threshold(n);
  const std::uint64_t thresh_b = kernel_detail::lemire_threshold(bound);
  const std::size_t block = (kBlockBalls / lanes) * lanes;
  alignas(64) std::uint32_t idx[kBlockBalls];
  alignas(64) std::uint32_t acc[kBlockBalls];
  while (k > 0) {
    // Full fixed-size attempt blocks until k departures are served; the
    // final block's unused tail is discarded (declared draw order).
    fill(state, n, thresh_n, bound, thresh_b, idx, acc, block, tune);
    for (std::size_t t = 0; t < block && k > 0; ++t) {
      const std::uint32_t j = idx[t];
      const weight_t rem =
          static_cast<weight_t>(snap_base) + snap[j] - static_cast<weight_t>(rel[j]);
      if (rem > 0 && static_cast<weight_t>(acc[t]) < rem) {
        ++rel[j];
        --k;
      }
    }
  }
}

template <typename Row>
void depart_impl(kernel_isa isa, std::size_t lanes, depart_channel channel, bin_count n,
                 const std::uint8_t* snap, load_t snap_base, std::uint8_t snap_span,
                 weight_t weight_per_ball, Row* rel, step_count k, std::uint64_t seed) {
  NB_REQUIRE(lanes >= 1 && lanes <= kernel_max_lanes, "kernel lanes must be in [1, 64]");
  NB_REQUIRE(n >= 1, "kernel needs at least one bin");
  NB_REQUIRE(weight_per_ball >= 1 && weight_per_ball <= max_ball_weight,
             "per-ball weight must be in [1, max_ball_weight]");
  NB_ASSERT(k >= 0 && snap != nullptr && rel != nullptr);
  switch (channel) {
    case depart_channel::drain:
      depart_drain(isa, lanes, n, snap, snap_base, weight_per_ball, rel, k, seed);
      return;
    case depart_channel::random:
      NB_REQUIRE(weight_per_ball == 1, "the random departure channel retires unit quanta");
      depart_random(isa, lanes, n, snap, snap_base, snap_span, rel, k, seed);
      return;
  }
}

}  // namespace

void kernel_depart(kernel_isa isa, std::size_t lanes, depart_channel channel, bin_count n,
                   const std::uint8_t* snap, load_t snap_base, std::uint8_t snap_span,
                   weight_t weight_per_ball, std::uint16_t* rel, step_count k,
                   std::uint64_t seed) {
  depart_impl(isa, lanes, channel, n, snap, snap_base, snap_span, weight_per_ball, rel, k, seed);
}

void kernel_depart(kernel_isa isa, std::size_t lanes, depart_channel channel, bin_count n,
                   const std::uint8_t* snap, load_t snap_base, std::uint8_t snap_span,
                   weight_t weight_per_ball, std::uint32_t* rel, step_count k,
                   std::uint64_t seed) {
  depart_impl(isa, lanes, channel, n, snap, snap_base, snap_span, weight_per_ball, rel, k, seed);
}

}  // namespace nb
