// SSE2 backend of the allocation kernel: 2 lanes per 128-bit vector.
//
// Vectorizes the arithmetic-heavy half of the pipeline -- the xoshiro256++
// steps and the Lemire multiply-shift -- and keeps the snapshot loads and
// the (branchless) decision scalar, since SSE2 has neither gathers nor
// 64-bit compares.  Same lane contract and the same rare-rejection replay
// as the other backends; SSE2 is the x86-64 baseline, so this TU needs no
// target attribute beyond the explicit one (harmless, and it keeps 32-bit
// x86 builds honest).
#if defined(__x86_64__) || defined(__i386__)

#include <emmintrin.h>

#include "core/kernel/kernel_common.hpp"

#define NB_TGT_SSE2 __attribute__((target("sse2")))

namespace nb::kernel_detail {
namespace {

NB_TGT_SSE2 inline __m128i rot64(__m128i x, int k) {
  return _mm_or_si128(_mm_slli_epi64(x, k), _mm_srli_epi64(x, 64 - k));
}

NB_TGT_SSE2 inline __m128i xo_step(__m128i& s0, __m128i& s1, __m128i& s2, __m128i& s3) {
  const __m128i result = _mm_add_epi64(rot64(_mm_add_epi64(s0, s3), 23), s0);
  const __m128i t = _mm_slli_epi64(s1, 17);
  s2 = _mm_xor_si128(s2, s0);
  s3 = _mm_xor_si128(s3, s1);
  s1 = _mm_xor_si128(s1, s2);
  s0 = _mm_xor_si128(s0, s3);
  s2 = _mm_xor_si128(s2, t);
  s3 = rot64(s3, 45);
  return result;
}

/// Lemire multiply-shift for 2 draws (see lemire4 in kernel_avx2.cpp for
/// the 96-bit product decomposition; bound < 2^32).
NB_TGT_SSE2 inline void lemire2(__m128i x, __m128i bound, __m128i& candidate, __m128i& low) {
  const __m128i lo_prod = _mm_mul_epu32(x, bound);
  const __m128i hi_prod = _mm_mul_epu32(_mm_srli_epi64(x, 32), bound);
  candidate = _mm_srli_epi64(_mm_add_epi64(hi_prod, _mm_srli_epi64(lo_prod, 32)), 32);
  low = _mm_add_epi64(_mm_slli_epi64(hi_prod, 32), lo_prod);
}

NB_TGT_SSE2 void fill_sse2_impl(lane_soa& st, bin_count n, std::uint64_t threshold,
                                const std::uint8_t* snap, std::uint32_t* chosen,
                                std::size_t balls) {
  const std::size_t lanes = st.lanes;
  const std::size_t vec_lanes = lanes - lanes % 2;
  const auto bound64 = static_cast<std::uint64_t>(n);
  const __m128i bound = _mm_set1_epi64x(static_cast<long long>(bound64));
  const __m128i zero = _mm_setzero_si128();

  std::size_t t = 0;
  while (t + lanes <= balls) {
    for (std::size_t lane0 = 0; lane0 < vec_lanes; lane0 += 2) {
      __m128i s0 = _mm_load_si128(reinterpret_cast<const __m128i*>(st.s0.data() + lane0));
      __m128i s1 = _mm_load_si128(reinterpret_cast<const __m128i*>(st.s1.data() + lane0));
      __m128i s2 = _mm_load_si128(reinterpret_cast<const __m128i*>(st.s2.data() + lane0));
      __m128i s3 = _mm_load_si128(reinterpret_cast<const __m128i*>(st.s3.data() + lane0));
      const __m128i a = xo_step(s0, s1, s2, s3);
      const __m128i b = xo_step(s0, s1, s2, s3);
      const __m128i c = xo_step(s0, s1, s2, s3);
      _mm_store_si128(reinterpret_cast<__m128i*>(st.s0.data() + lane0), s0);
      _mm_store_si128(reinterpret_cast<__m128i*>(st.s1.data() + lane0), s1);
      _mm_store_si128(reinterpret_cast<__m128i*>(st.s2.data() + lane0), s2);
      _mm_store_si128(reinterpret_cast<__m128i*>(st.s3.data() + lane0), s3);

      __m128i i1;
      __m128i i2;
      __m128i low_a;
      __m128i low_b;
      lemire2(a, bound, i1, low_a);
      lemire2(b, bound, i2, low_b);

      // Coarse rejection test, same reasoning as the AVX2 backend: a real
      // rejection forces the high dword of the low product word to zero.
      const __m128i hz =
          _mm_or_si128(_mm_cmpeq_epi32(low_a, zero), _mm_cmpeq_epi32(low_b, zero));
      const auto reject = static_cast<std::uint32_t>(_mm_movemask_epi8(hz)) & 0xF0F0u;

      alignas(16) std::uint64_t qa[2];
      alignas(16) std::uint64_t qb[2];
      alignas(16) std::uint64_t qc[2];
      _mm_store_si128(reinterpret_cast<__m128i*>(qa), a);
      _mm_store_si128(reinterpret_cast<__m128i*>(qb), b);
      _mm_store_si128(reinterpret_cast<__m128i*>(qc), c);
      if (reject != 0) [[unlikely]] {
        for (std::size_t l = 0; l < 2; ++l) {
          const std::uint64_t queue[3] = {qa[l], qb[l], qc[l]};
          chosen[t + lane0 + l] = replay_ball(st, lane0 + l, bound64, threshold, snap, queue, 3);
        }
        continue;
      }

      alignas(16) std::uint64_t idx1[2];
      alignas(16) std::uint64_t idx2[2];
      _mm_store_si128(reinterpret_cast<__m128i*>(idx1), i1);
      _mm_store_si128(reinterpret_cast<__m128i*>(idx2), i2);
      for (std::size_t l = 0; l < 2; ++l) {
        chosen[t + lane0 + l] =
            decide(snap[idx1[l]], snap[idx2[l]], qc[l], static_cast<std::uint32_t>(idx1[l]),
                   static_cast<std::uint32_t>(idx2[l]));
      }
    }
    for (std::size_t l = vec_lanes; l < lanes; ++l) {
      chosen[t + l] = replay_ball(st, l, bound64, threshold, snap, nullptr, 0);
    }
    t += lanes;
  }
  for (std::size_t l = 0; t < balls; ++l, ++t) {
    chosen[t] = replay_ball(st, l, bound64, threshold, snap, nullptr, 0);
  }
}

/// Bounded-pair fill for the departure kernel's random channel: two
/// xoshiro steps and two Lemire multiply-shifts per 2-lane group, one
/// against each bound.  The coarse rejection test covers both draws (both
/// thresholds are < their bounds < 2^32, so a real rejection still forces
/// the low product word's high dword to zero); a flagged group replays
/// both lanes from a {a, b} queue.
NB_TGT_SSE2 void fill_pair_sse2_impl(lane_soa& st, std::uint64_t b1, std::uint64_t t1,
                                     std::uint64_t b2, std::uint64_t t2, std::uint32_t* out1,
                                     std::uint32_t* out2, std::size_t count) {
  const std::size_t lanes = st.lanes;
  const std::size_t vec_lanes = lanes - lanes % 2;
  const __m128i bound1 = _mm_set1_epi64x(static_cast<long long>(b1));
  const __m128i bound2 = _mm_set1_epi64x(static_cast<long long>(b2));
  const __m128i zero = _mm_setzero_si128();

  std::size_t t = 0;
  while (t + lanes <= count) {
    for (std::size_t lane0 = 0; lane0 < vec_lanes; lane0 += 2) {
      __m128i s0 = _mm_load_si128(reinterpret_cast<const __m128i*>(st.s0.data() + lane0));
      __m128i s1 = _mm_load_si128(reinterpret_cast<const __m128i*>(st.s1.data() + lane0));
      __m128i s2 = _mm_load_si128(reinterpret_cast<const __m128i*>(st.s2.data() + lane0));
      __m128i s3 = _mm_load_si128(reinterpret_cast<const __m128i*>(st.s3.data() + lane0));
      const __m128i a = xo_step(s0, s1, s2, s3);
      const __m128i b = xo_step(s0, s1, s2, s3);
      _mm_store_si128(reinterpret_cast<__m128i*>(st.s0.data() + lane0), s0);
      _mm_store_si128(reinterpret_cast<__m128i*>(st.s1.data() + lane0), s1);
      _mm_store_si128(reinterpret_cast<__m128i*>(st.s2.data() + lane0), s2);
      _mm_store_si128(reinterpret_cast<__m128i*>(st.s3.data() + lane0), s3);

      __m128i i1;
      __m128i i2;
      __m128i low_a;
      __m128i low_b;
      lemire2(a, bound1, i1, low_a);
      lemire2(b, bound2, i2, low_b);

      const __m128i hz =
          _mm_or_si128(_mm_cmpeq_epi32(low_a, zero), _mm_cmpeq_epi32(low_b, zero));
      const auto reject = static_cast<std::uint32_t>(_mm_movemask_epi8(hz)) & 0xF0F0u;

      alignas(16) std::uint64_t qa[2];
      alignas(16) std::uint64_t qb[2];
      _mm_store_si128(reinterpret_cast<__m128i*>(qa), a);
      _mm_store_si128(reinterpret_cast<__m128i*>(qb), b);
      if (reject != 0) [[unlikely]] {
        for (std::size_t l = 0; l < 2; ++l) {
          const std::uint64_t queue[2] = {qa[l], qb[l]};
          replay_pair(st, lane0 + l, b1, t1, b2, t2, queue, 2, out1[t + lane0 + l],
                      out2[t + lane0 + l]);
        }
        continue;
      }

      alignas(16) std::uint64_t idx1[2];
      alignas(16) std::uint64_t idx2[2];
      _mm_store_si128(reinterpret_cast<__m128i*>(idx1), i1);
      _mm_store_si128(reinterpret_cast<__m128i*>(idx2), i2);
      for (std::size_t l = 0; l < 2; ++l) {
        out1[t + lane0 + l] = static_cast<std::uint32_t>(idx1[l]);
        out2[t + lane0 + l] = static_cast<std::uint32_t>(idx2[l]);
      }
    }
    for (std::size_t l = vec_lanes; l < lanes; ++l) {
      replay_pair(st, l, b1, t1, b2, t2, nullptr, 0, out1[t + l], out2[t + l]);
    }
    t += lanes;
  }
  for (std::size_t l = 0; t < count; ++l, ++t) {
    replay_pair(st, l, b1, t1, b2, t2, nullptr, 0, out1[t], out2[t]);
  }
}

/// Alias-sampled fill: vectorizes what pays on SSE2 -- the five xoshiro
/// steps per 2-lane group and the Lemire multiply-shift for both slots --
/// and does the alias/threshold/snapshot lookups scalar (no hardware
/// gathers; the scalar picks share alias_pick/decide with every backend,
/// so results stay bit-identical).  Rejections and remainder lanes take
/// the queue-replay path exactly like the uniform fill.
NB_TGT_SSE2 void fill_alias_sse2_impl(lane_soa& st, bin_count n, std::uint64_t threshold,
                                      const std::uint8_t* snap, const std::uint64_t* thresh,
                                      const bin_index* alias, std::uint32_t* chosen,
                                      std::size_t balls) {
  const std::size_t lanes = st.lanes;
  const std::size_t vec_lanes = lanes - lanes % 2;
  const auto bound64 = static_cast<std::uint64_t>(n);
  const __m128i bound = _mm_set1_epi64x(static_cast<long long>(bound64));
  const __m128i zero = _mm_setzero_si128();

  std::size_t t = 0;
  while (t + lanes <= balls) {
    for (std::size_t lane0 = 0; lane0 < vec_lanes; lane0 += 2) {
      __m128i s0 = _mm_load_si128(reinterpret_cast<const __m128i*>(st.s0.data() + lane0));
      __m128i s1 = _mm_load_si128(reinterpret_cast<const __m128i*>(st.s1.data() + lane0));
      __m128i s2 = _mm_load_si128(reinterpret_cast<const __m128i*>(st.s2.data() + lane0));
      __m128i s3 = _mm_load_si128(reinterpret_cast<const __m128i*>(st.s3.data() + lane0));
      const __m128i a = xo_step(s0, s1, s2, s3);   // slot 1
      const __m128i u1 = xo_step(s0, s1, s2, s3);  // keep/alias test 1
      const __m128i b = xo_step(s0, s1, s2, s3);   // slot 2
      const __m128i u2 = xo_step(s0, s1, s2, s3);  // keep/alias test 2
      const __m128i c = xo_step(s0, s1, s2, s3);   // tie bit
      _mm_store_si128(reinterpret_cast<__m128i*>(st.s0.data() + lane0), s0);
      _mm_store_si128(reinterpret_cast<__m128i*>(st.s1.data() + lane0), s1);
      _mm_store_si128(reinterpret_cast<__m128i*>(st.s2.data() + lane0), s2);
      _mm_store_si128(reinterpret_cast<__m128i*>(st.s3.data() + lane0), s3);

      __m128i sl1;
      __m128i sl2;
      __m128i low_a;
      __m128i low_b;
      lemire2(a, bound, sl1, low_a);
      lemire2(b, bound, sl2, low_b);

      alignas(16) std::uint64_t qa[2];
      alignas(16) std::uint64_t qu1[2];
      alignas(16) std::uint64_t qb[2];
      alignas(16) std::uint64_t qu2[2];
      alignas(16) std::uint64_t qc[2];
      _mm_store_si128(reinterpret_cast<__m128i*>(qa), a);
      _mm_store_si128(reinterpret_cast<__m128i*>(qu1), u1);
      _mm_store_si128(reinterpret_cast<__m128i*>(qb), b);
      _mm_store_si128(reinterpret_cast<__m128i*>(qu2), u2);
      _mm_store_si128(reinterpret_cast<__m128i*>(qc), c);

      // Coarse rejection test, same reasoning as the uniform fill.
      const __m128i hz =
          _mm_or_si128(_mm_cmpeq_epi32(low_a, zero), _mm_cmpeq_epi32(low_b, zero));
      const auto reject = static_cast<std::uint32_t>(_mm_movemask_epi8(hz)) & 0xF0F0u;
      if (reject != 0) [[unlikely]] {
        for (std::size_t l = 0; l < 2; ++l) {
          const std::uint64_t queue[5] = {qa[l], qu1[l], qb[l], qu2[l], qc[l]};
          chosen[t + lane0 + l] =
              replay_ball_alias(st, lane0 + l, bound64, threshold, snap, thresh, alias, queue, 5);
        }
        continue;
      }

      alignas(16) std::uint64_t slot1[2];
      alignas(16) std::uint64_t slot2[2];
      _mm_store_si128(reinterpret_cast<__m128i*>(slot1), sl1);
      _mm_store_si128(reinterpret_cast<__m128i*>(slot2), sl2);
      for (std::size_t l = 0; l < 2; ++l) {
        const std::uint32_t i1 =
            alias_pick(thresh, alias, static_cast<std::uint32_t>(slot1[l]), qu1[l]);
        const std::uint32_t i2 =
            alias_pick(thresh, alias, static_cast<std::uint32_t>(slot2[l]), qu2[l]);
        chosen[t + lane0 + l] = decide(snap[i1], snap[i2], qc[l], i1, i2);
      }
    }
    for (std::size_t l = vec_lanes; l < lanes; ++l) {
      chosen[t + l] = replay_ball_alias(st, l, bound64, threshold, snap, thresh, alias, nullptr, 0);
    }
    t += lanes;
  }
  for (std::size_t l = 0; t < balls; ++l, ++t) {
    chosen[t] = replay_ball_alias(st, l, bound64, threshold, snap, thresh, alias, nullptr, 0);
  }
}

}  // namespace

void fill_sse2(lane_soa& st, bin_count n, std::uint64_t threshold, const std::uint8_t* snap,
               std::uint32_t* chosen, std::size_t balls, kernel_tuning /*tune*/) {
  fill_sse2_impl(st, n, threshold, snap, chosen, balls);
}

void fill_pair_sse2(lane_soa& st, std::uint64_t b1, std::uint64_t t1, std::uint64_t b2,
                    std::uint64_t t2, std::uint32_t* out1, std::uint32_t* out2,
                    std::size_t count, kernel_tuning /*tune*/) {
  fill_pair_sse2_impl(st, b1, t1, b2, t2, out1, out2, count);
}

void fill_alias_sse2(lane_soa& st, bin_count n, std::uint64_t threshold, const std::uint8_t* snap,
                     const std::uint64_t* thresh, const bin_index* alias, std::uint32_t* chosen,
                     std::size_t balls, kernel_tuning /*tune*/) {
  fill_alias_sse2_impl(st, n, threshold, snap, thresh, alias, chosen, balls);
}

}  // namespace nb::kernel_detail

#endif  // x86
