// AVX2 backend of the allocation kernel: 4 lanes per 256-bit vector.
//
// Per round (one ball per lane) each group of 4 lanes takes three
// vectorized xoshiro256++ steps (draws a, b, c), a vectorized Lemire
// multiply-shift pass for both bin indices, a hardware gather of the two
// 8-bit snapshot loads, and a branchless min-select with the tie bit from
// draw c -- no data-dependent branch anywhere on the fast path.  The only
// exits are the coarse rejection test (fires with probability ~2^-32 per
// sample; the affected group replays through the scalar queue path, which
// preserves the per-lane draw order exactly) and remainder lanes
// (lane count not a multiple of 4) plus the trailing partial round, which
// take the same scalar replay path.
//
// Compiled with per-function target attributes so the rest of the build
// stays portable; kernel dispatch never calls this backend unless the CPU
// reports AVX2.
#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <algorithm>

#include "core/kernel/kernel_common.hpp"

#define NB_TGT_AVX2 __attribute__((target("avx2")))

namespace nb::kernel_detail {
namespace {

NB_TGT_AVX2 inline __m256i rot64(__m256i x, int k) {
  return _mm256_or_si256(_mm256_slli_epi64(x, k), _mm256_srli_epi64(x, 64 - k));
}

/// One xoshiro256++ step for 4 lanes at once (same update as lane_soa::next).
NB_TGT_AVX2 inline __m256i xo_step(__m256i& s0, __m256i& s1, __m256i& s2, __m256i& s3) {
  const __m256i result = _mm256_add_epi64(rot64(_mm256_add_epi64(s0, s3), 23), s0);
  const __m256i t = _mm256_slli_epi64(s1, 17);
  s2 = _mm256_xor_si256(s2, s0);
  s3 = _mm256_xor_si256(s3, s1);
  s1 = _mm256_xor_si256(s1, s2);
  s0 = _mm256_xor_si256(s0, s3);
  s2 = _mm256_xor_si256(s2, t);
  s3 = rot64(s3, 45);
  return result;
}

/// Lemire multiply-shift for 4 draws x against a bound < 2^32: with
/// x = x_hi * 2^32 + x_lo, the 96-bit product splits into two 32x32->64
/// multiplies, giving candidate = (x * bound) >> 64 (a bin index, high
/// halves zero) and low = (x * bound) mod 2^64 (the rejection word).
NB_TGT_AVX2 inline void lemire4(__m256i x, __m256i bound, __m256i& candidate, __m256i& low) {
  const __m256i lo_prod = _mm256_mul_epu32(x, bound);                       // x_lo * bound
  const __m256i hi_prod = _mm256_mul_epu32(_mm256_srli_epi64(x, 32), bound);  // x_hi * bound
  candidate = _mm256_srli_epi64(_mm256_add_epi64(hi_prod, _mm256_srli_epi64(lo_prod, 32)), 32);
  low = _mm256_add_epi64(_mm256_slli_epi64(hi_prod, 32), lo_prod);
}

NB_TGT_AVX2 void fill_avx2_impl(lane_soa& st, bin_count n, std::uint64_t threshold,
                                const std::uint8_t* snap, std::uint32_t* chosen,
                                std::size_t balls) {
  const std::size_t lanes = st.lanes;
  const std::size_t vec_lanes = lanes - lanes % 4;  // lanes handled 4 at a time
  const auto bound64 = static_cast<std::uint64_t>(n);
  const __m256i bound = _mm256_set1_epi64x(static_cast<long long>(bound64));
  const __m256i zero = _mm256_setzero_si256();
  const __m128i bmask = _mm_set1_epi32(0xFF);
  const __m256i even_dwords = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  const __m256i odd_dwords = _mm256_setr_epi32(1, 3, 5, 7, 0, 0, 0, 0);

  std::size_t t = 0;
  while (t + lanes <= balls) {  // full rounds only; the tail runs scalar
    for (std::size_t lane0 = 0; lane0 < vec_lanes; lane0 += 4) {
      __m256i s0 = _mm256_load_si256(reinterpret_cast<const __m256i*>(st.s0.data() + lane0));
      __m256i s1 = _mm256_load_si256(reinterpret_cast<const __m256i*>(st.s1.data() + lane0));
      __m256i s2 = _mm256_load_si256(reinterpret_cast<const __m256i*>(st.s2.data() + lane0));
      __m256i s3 = _mm256_load_si256(reinterpret_cast<const __m256i*>(st.s3.data() + lane0));
      const __m256i a = xo_step(s0, s1, s2, s3);
      const __m256i b = xo_step(s0, s1, s2, s3);
      const __m256i c = xo_step(s0, s1, s2, s3);
      _mm256_store_si256(reinterpret_cast<__m256i*>(st.s0.data() + lane0), s0);
      _mm256_store_si256(reinterpret_cast<__m256i*>(st.s1.data() + lane0), s1);
      _mm256_store_si256(reinterpret_cast<__m256i*>(st.s2.data() + lane0), s2);
      _mm256_store_si256(reinterpret_cast<__m256i*>(st.s3.data() + lane0), s3);

      __m256i i1;
      __m256i i2;
      __m256i low_a;
      __m256i low_b;
      lemire4(a, bound, i1, low_a);
      lemire4(b, bound, i2, low_b);

      // Coarse rejection test: an actual rejection needs low < threshold
      // < 2^32, which forces the high dword of `low` to zero -- so "any
      // high dword zero" (probability ~2^-32 per draw) is a conservative
      // superset.  False positives just take the exact scalar replay.
      const __m256i hz = _mm256_or_si256(_mm256_cmpeq_epi32(low_a, zero),
                                         _mm256_cmpeq_epi32(low_b, zero));
      const auto reject = static_cast<std::uint32_t>(_mm256_movemask_epi8(hz)) & 0xF0F0F0F0u;
      if (reject != 0) [[unlikely]] {
        alignas(32) std::uint64_t qa[4];
        alignas(32) std::uint64_t qb[4];
        alignas(32) std::uint64_t qc[4];
        _mm256_store_si256(reinterpret_cast<__m256i*>(qa), a);
        _mm256_store_si256(reinterpret_cast<__m256i*>(qb), b);
        _mm256_store_si256(reinterpret_cast<__m256i*>(qc), c);
        for (std::size_t l = 0; l < 4; ++l) {
          const std::uint64_t queue[3] = {qa[l], qb[l], qc[l]};
          chosen[t + lane0 + l] = replay_ball(st, lane0 + l, bound64, threshold, snap, queue, 3);
        }
        continue;
      }

      // Gather the two 8-bit snapshot loads (4-byte reads at byte offsets;
      // compact_snapshot guarantees 3 bytes of tail padding).
      const __m128i ga = _mm_and_si128(
          _mm256_i64gather_epi32(reinterpret_cast<const int*>(snap), i1, 1), bmask);
      const __m128i gb = _mm_and_si128(
          _mm256_i64gather_epi32(reinterpret_cast<const int*>(snap), i2, 1), bmask);

      // Branchless min-select: pick i1 when snap[i1] < snap[i2], or on a
      // tie when draw c's top bit is set.
      const __m128i lt = _mm_cmplt_epi32(ga, gb);
      const __m128i eq = _mm_cmpeq_epi32(ga, gb);
      const __m128i tie = _mm256_castsi256_si128(
          _mm256_permutevar8x32_epi32(_mm256_srai_epi32(c, 31), odd_dwords));
      const __m128i i1_32 =
          _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(i1, even_dwords));
      const __m128i i2_32 =
          _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(i2, even_dwords));
      const __m128i pick = _mm_or_si128(lt, _mm_and_si128(eq, tie));
      const __m128i ch = _mm_or_si128(_mm_and_si128(pick, i1_32), _mm_andnot_si128(pick, i2_32));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(chosen + t + lane0), ch);
    }
    for (std::size_t l = vec_lanes; l < lanes; ++l) {  // remainder lanes
      chosen[t + l] = replay_ball(st, l, bound64, threshold, snap, nullptr, 0);
    }
    t += lanes;
  }
  for (std::size_t l = 0; t < balls; ++l, ++t) {  // trailing partial round
    chosen[t] = replay_ball(st, l, bound64, threshold, snap, nullptr, 0);
  }
}

/// Bounded-pair fill for the departure kernel's random channel: two
/// xoshiro steps per 4-lane group, one Lemire multiply-shift against each
/// bound, and the even_dwords permute to narrow both 64-bit candidate
/// vectors for the stores.  Same coarse rejection test as the uniform
/// fill, covering both draws (both thresholds < bounds < 2^32); a flagged
/// group replays all four lanes from {a, b} queues.
NB_TGT_AVX2 void fill_pair_avx2_impl(lane_soa& st, std::uint64_t b1, std::uint64_t t1,
                                     std::uint64_t b2, std::uint64_t t2, std::uint32_t* out1,
                                     std::uint32_t* out2, std::size_t count) {
  const std::size_t lanes = st.lanes;
  const std::size_t vec_lanes = lanes - lanes % 4;
  const __m256i bound1 = _mm256_set1_epi64x(static_cast<long long>(b1));
  const __m256i bound2 = _mm256_set1_epi64x(static_cast<long long>(b2));
  const __m256i zero = _mm256_setzero_si256();
  const __m256i even_dwords = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);

  std::size_t t = 0;
  while (t + lanes <= count) {
    for (std::size_t lane0 = 0; lane0 < vec_lanes; lane0 += 4) {
      __m256i s0 = _mm256_load_si256(reinterpret_cast<const __m256i*>(st.s0.data() + lane0));
      __m256i s1 = _mm256_load_si256(reinterpret_cast<const __m256i*>(st.s1.data() + lane0));
      __m256i s2 = _mm256_load_si256(reinterpret_cast<const __m256i*>(st.s2.data() + lane0));
      __m256i s3 = _mm256_load_si256(reinterpret_cast<const __m256i*>(st.s3.data() + lane0));
      const __m256i a = xo_step(s0, s1, s2, s3);
      const __m256i b = xo_step(s0, s1, s2, s3);
      _mm256_store_si256(reinterpret_cast<__m256i*>(st.s0.data() + lane0), s0);
      _mm256_store_si256(reinterpret_cast<__m256i*>(st.s1.data() + lane0), s1);
      _mm256_store_si256(reinterpret_cast<__m256i*>(st.s2.data() + lane0), s2);
      _mm256_store_si256(reinterpret_cast<__m256i*>(st.s3.data() + lane0), s3);

      __m256i i1;
      __m256i i2;
      __m256i low_a;
      __m256i low_b;
      lemire4(a, bound1, i1, low_a);
      lemire4(b, bound2, i2, low_b);

      const __m256i hz = _mm256_or_si256(_mm256_cmpeq_epi32(low_a, zero),
                                         _mm256_cmpeq_epi32(low_b, zero));
      const auto reject = static_cast<std::uint32_t>(_mm256_movemask_epi8(hz)) & 0xF0F0F0F0u;
      if (reject != 0) [[unlikely]] {
        alignas(32) std::uint64_t qa[4];
        alignas(32) std::uint64_t qb[4];
        _mm256_store_si256(reinterpret_cast<__m256i*>(qa), a);
        _mm256_store_si256(reinterpret_cast<__m256i*>(qb), b);
        for (std::size_t l = 0; l < 4; ++l) {
          const std::uint64_t queue[2] = {qa[l], qb[l]};
          replay_pair(st, lane0 + l, b1, t1, b2, t2, queue, 2, out1[t + lane0 + l],
                      out2[t + lane0 + l]);
        }
        continue;
      }

      const __m128i i1_32 =
          _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(i1, even_dwords));
      const __m128i i2_32 =
          _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(i2, even_dwords));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out1 + t + lane0), i1_32);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out2 + t + lane0), i2_32);
    }
    for (std::size_t l = vec_lanes; l < lanes; ++l) {
      replay_pair(st, l, b1, t1, b2, t2, nullptr, 0, out1[t + l], out2[t + l]);
    }
    t += lanes;
  }
  for (std::size_t l = 0; t < count; ++l, ++t) {
    replay_pair(st, l, b1, t1, b2, t2, nullptr, 0, out1[t], out2[t]);
  }
}

/// Alias-sampled fill, fully gather-based: per 4-lane group five
/// vectorized xoshiro steps (slot1, u1, slot2, u2, tie), the Lemire
/// multiply-shift for both slots, then hardware gathers of the slots'
/// 64-bit keep-thresholds and 32-bit aliases, an unsigned 64-bit
/// compare (sign-flip + cmpgt) for the keep test, a blend to the final
/// bin indices, and the same gathered snapshot min-select as the uniform
/// fill.  Rejections, remainder lanes and partial rounds replay through
/// the scalar queue path with the five pre-drawn values, preserving the
/// per-lane draw order exactly.
/// One alias pick for 4 lanes: slot (64-bit lanes) + raw u64 draw ->
/// final bin index, still in 64-bit lanes for the snapshot gather.  keep
/// iff u < thresh[slot], unsigned (sign-flip + signed cmpgt).
NB_TGT_AVX2 inline __m256i pick4(__m256i slot, __m256i u, const std::uint64_t* thresh,
                                 const bin_index* alias) {
  const __m256i sign64 = _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  const __m256i th = _mm256_i64gather_epi64(reinterpret_cast<const long long*>(thresh), slot, 8);
  const __m128i al32 = _mm256_i64gather_epi32(reinterpret_cast<const int*>(alias), slot, 4);
  const __m256i al = _mm256_cvtepu32_epi64(al32);
  const __m256i keep =
      _mm256_cmpgt_epi64(_mm256_xor_si256(th, sign64), _mm256_xor_si256(u, sign64));
  return _mm256_blendv_epi8(al, slot, keep);
}

NB_TGT_AVX2 void fill_alias_avx2_impl(lane_soa& st, bin_count n, std::uint64_t threshold,
                                      const std::uint8_t* snap, const std::uint64_t* thresh,
                                      const bin_index* alias, std::uint32_t* chosen,
                                      std::size_t balls) {
  const std::size_t lanes = st.lanes;
  const std::size_t vec_lanes = lanes - lanes % 4;
  const auto bound64 = static_cast<std::uint64_t>(n);
  const __m256i bound = _mm256_set1_epi64x(static_cast<long long>(bound64));
  const __m256i zero = _mm256_setzero_si256();
  const __m128i bmask = _mm_set1_epi32(0xFF);
  const __m256i even_dwords = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  const __m256i odd_dwords = _mm256_setr_epi32(1, 3, 5, 7, 0, 0, 0, 0);

  std::size_t t = 0;
  while (t + lanes <= balls) {
    for (std::size_t lane0 = 0; lane0 < vec_lanes; lane0 += 4) {
      __m256i s0 = _mm256_load_si256(reinterpret_cast<const __m256i*>(st.s0.data() + lane0));
      __m256i s1 = _mm256_load_si256(reinterpret_cast<const __m256i*>(st.s1.data() + lane0));
      __m256i s2 = _mm256_load_si256(reinterpret_cast<const __m256i*>(st.s2.data() + lane0));
      __m256i s3 = _mm256_load_si256(reinterpret_cast<const __m256i*>(st.s3.data() + lane0));
      const __m256i a = xo_step(s0, s1, s2, s3);   // slot 1
      const __m256i u1 = xo_step(s0, s1, s2, s3);  // keep/alias test 1
      const __m256i b = xo_step(s0, s1, s2, s3);   // slot 2
      const __m256i u2 = xo_step(s0, s1, s2, s3);  // keep/alias test 2
      const __m256i c = xo_step(s0, s1, s2, s3);   // tie bit
      _mm256_store_si256(reinterpret_cast<__m256i*>(st.s0.data() + lane0), s0);
      _mm256_store_si256(reinterpret_cast<__m256i*>(st.s1.data() + lane0), s1);
      _mm256_store_si256(reinterpret_cast<__m256i*>(st.s2.data() + lane0), s2);
      _mm256_store_si256(reinterpret_cast<__m256i*>(st.s3.data() + lane0), s3);

      __m256i sl1;
      __m256i sl2;
      __m256i low_a;
      __m256i low_b;
      lemire4(a, bound, sl1, low_a);
      lemire4(b, bound, sl2, low_b);

      const __m256i hz = _mm256_or_si256(_mm256_cmpeq_epi32(low_a, zero),
                                         _mm256_cmpeq_epi32(low_b, zero));
      const auto reject = static_cast<std::uint32_t>(_mm256_movemask_epi8(hz)) & 0xF0F0F0F0u;
      if (reject != 0) [[unlikely]] {
        alignas(32) std::uint64_t qa[4];
        alignas(32) std::uint64_t qu1[4];
        alignas(32) std::uint64_t qb[4];
        alignas(32) std::uint64_t qu2[4];
        alignas(32) std::uint64_t qc[4];
        _mm256_store_si256(reinterpret_cast<__m256i*>(qa), a);
        _mm256_store_si256(reinterpret_cast<__m256i*>(qu1), u1);
        _mm256_store_si256(reinterpret_cast<__m256i*>(qb), b);
        _mm256_store_si256(reinterpret_cast<__m256i*>(qu2), u2);
        _mm256_store_si256(reinterpret_cast<__m256i*>(qc), c);
        for (std::size_t l = 0; l < 4; ++l) {
          const std::uint64_t queue[5] = {qa[l], qu1[l], qb[l], qu2[l], qc[l]};
          chosen[t + lane0 + l] =
              replay_ball_alias(st, lane0 + l, bound64, threshold, snap, thresh, alias, queue, 5);
        }
        continue;
      }

      const __m256i i1 = pick4(sl1, u1, thresh, alias);
      const __m256i i2 = pick4(sl2, u2, thresh, alias);

      // Gathered snapshot loads + branchless min-select, as in fill_avx2.
      const __m128i ga = _mm_and_si128(
          _mm256_i64gather_epi32(reinterpret_cast<const int*>(snap), i1, 1), bmask);
      const __m128i gb = _mm_and_si128(
          _mm256_i64gather_epi32(reinterpret_cast<const int*>(snap), i2, 1), bmask);
      const __m128i lt = _mm_cmplt_epi32(ga, gb);
      const __m128i eq = _mm_cmpeq_epi32(ga, gb);
      const __m128i tie = _mm256_castsi256_si128(
          _mm256_permutevar8x32_epi32(_mm256_srai_epi32(c, 31), odd_dwords));
      const __m128i i1_32 =
          _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(i1, even_dwords));
      const __m128i i2_32 =
          _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(i2, even_dwords));
      const __m128i pick = _mm_or_si128(lt, _mm_and_si128(eq, tie));
      const __m128i ch = _mm_or_si128(_mm_and_si128(pick, i1_32), _mm_andnot_si128(pick, i2_32));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(chosen + t + lane0), ch);
    }
    for (std::size_t l = vec_lanes; l < lanes; ++l) {
      chosen[t + l] = replay_ball_alias(st, l, bound64, threshold, snap, thresh, alias, nullptr, 0);
    }
    t += lanes;
  }
  for (std::size_t l = 0; t < balls; ++l, ++t) {
    chosen[t] = replay_ball_alias(st, l, bound64, threshold, snap, thresh, alias, nullptr, 0);
  }
}

}  // namespace

void fill_avx2(lane_soa& st, bin_count n, std::uint64_t threshold, const std::uint8_t* snap,
               std::uint32_t* chosen, std::size_t balls, kernel_tuning /*tune*/) {
  fill_avx2_impl(st, n, threshold, snap, chosen, balls);
}

void fill_pair_avx2(lane_soa& st, std::uint64_t b1, std::uint64_t t1, std::uint64_t b2,
                    std::uint64_t t2, std::uint32_t* out1, std::uint32_t* out2,
                    std::size_t count, kernel_tuning /*tune*/) {
  fill_pair_avx2_impl(st, b1, t1, b2, t2, out1, out2, count);
}

void fill_alias_avx2(lane_soa& st, bin_count n, std::uint64_t threshold, const std::uint8_t* snap,
                     const std::uint64_t* thresh, const bin_index* alias, std::uint32_t* chosen,
                     std::size_t balls, kernel_tuning /*tune*/) {
  fill_alias_avx2_impl(st, n, threshold, snap, thresh, alias, chosen, balls);
}

}  // namespace nb::kernel_detail

#endif  // x86
