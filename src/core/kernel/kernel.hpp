// Lane-interleaved SIMD allocation kernel: the data-parallel inner loop of
// every frozen-window allocation decision.
//
// One kernel call answers "given a frozen 8-bit load snapshot, allocate
// `balls` two-sample decisions and count the chosen bins" -- the body of a
// shard in the parallel engine and of a whole window in the serial kernel
// engine.  The kernel runs L independent xoshiro256++ *lanes* (lane l is
// seeded derive_seed(seed, l)); ball t belongs to lane t % L, and each ball
// consumes from its lane, in order:
//
//   1. one-or-more raw u64 draws for the first bin index i1 (Lemire
//      multiply-shift with rejection -- unbiased, same accept rule as
//      nb::bounded),
//   2. the same for the second bin index i2,
//   3. exactly one raw u64 draw c for the tie bit.
//
// The decision is the canonical two-sample rule over the snapshot:
// the less loaded of snap[i1]/snap[i2], ties broken by the top bit of c
// (bit set -> i1), and the chosen bin's counter is incremented.
//
// CONTRACT (enforced by tests/test_kernel.cpp): the accumulated counts are
// a pure function of (lanes, n, snapshot, balls, seed).  The instruction-
// set backend -- scalar, SSE2, AVX2, AVX-512 or NEON, selected at runtime
// -- is execution only and NEVER affects results; `lanes` is a sampling
// parameter exactly like shard_options::shards (changing it changes which
// lane streams exist and therefore the drawn randomness).  The same holds
// for the kernel_tuning knobs (software prefetch, round interleaving):
// they reorder memory traffic, never draws.
//
// Snapshot gather safety: vector backends read the snapshot 4 bytes at a
// time, so `snap` must stay readable for 3 bytes past index n - 1.
// compact_snapshot allocates exactly this tail padding.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

#include "common/types.hpp"

namespace nb {

/// Instruction-set backend of the allocation kernel.  Execution-only:
/// every backend is bit-identical for a fixed lane count.  The numeric
/// values are NOT serialized anywhere (checkpoint fingerprints and the
/// bench JSON both use the names), so the enum may grow freely.
enum class kernel_isa : std::uint8_t {
  scalar = 0,       ///< portable reference (defines the contract)
  sse2 = 1,         ///< 2 lanes per vector (x86-64 baseline)
  avx2 = 2,         ///< 4 lanes per vector + hardware gathers
  avx512 = 3,       ///< 8 lanes per vector, masked rejection replay
  neon = 4,         ///< aarch64 baseline: vector RNG/Lemire, scalar gathers
  auto_detect = 5,  ///< resolve to the best backend this CPU supports
};

/// Ceiling on the lane count (keeps lane state stack-resident; far above
/// any useful configuration -- AVX2 consumes 4 lanes per vector).
inline constexpr std::size_t kernel_max_lanes = 64;

/// Best backend the running CPU supports (never auto_detect).
[[nodiscard]] kernel_isa detect_kernel_isa() noexcept;

/// True when `isa` can execute on this CPU (auto_detect is always true).
[[nodiscard]] bool kernel_isa_supported(kernel_isa isa) noexcept;

/// Maps auto_detect to the detected best backend and downgrades an
/// unsupported request to the best supported one -- legal because the
/// backend never affects results.  The downgrade emits a one-shot
/// warn_once diagnostic (key "kernel-isa-fallback:<name>") so a forced
/// --isa that silently fell back is visible, not just legal.
[[nodiscard]] kernel_isa resolve_kernel_isa(kernel_isa requested) noexcept;

/// "scalar" / "sse2" / "avx2" / "avx512" / "neon" / "auto".
[[nodiscard]] const char* kernel_isa_name(kernel_isa isa) noexcept;

/// Inverse of kernel_isa_name, plus the aliases "simd" (= auto_detect)
/// used by bench CLIs.  nullopt for anything else.
[[nodiscard]] std::optional<kernel_isa> kernel_isa_from_name(std::string_view name) noexcept;

/// Memory-latency tuning of the kernel's execution.  Execution-only, like
/// the ISA backend: every combination is bit-identical (gtest-enforced) --
/// prefetching and round interleaving reorder loads and stores, never the
/// lane draws.  Defaults come from the environment once per process
/// (NB_KERNEL_PREFETCH / NB_KERNEL_INTERLEAVE, "0" or "off" disables) and
/// can be overridden programmatically for A/B benching.
struct kernel_tuning {
  /// Software-prefetch the count row entries a fixed distance ahead while
  /// folding a decided block (the dominant cache-miss source at paper
  /// scale: random increments over a 4 MB row).
  bool prefetch = true;
  /// Wide backends (AVX-512) draw and decide two lane rounds per loop
  /// iteration so the two rounds' snapshot gathers overlap in flight.
  bool interleave = true;
};

/// The process-wide tuning currently in effect (env-seeded on first use).
[[nodiscard]] kernel_tuning current_kernel_tuning() noexcept;

/// Replaces the process-wide tuning (bench/tests; thread-safe, takes
/// effect on the next kernel_run call).
void set_kernel_tuning(kernel_tuning tuning) noexcept;

/// Runs `balls` lane-interleaved decisions against `snap` (n bins, 8-bit
/// offsets, 3 bytes of tail padding) and accumulates `++row[chosen]` per
/// ball.  The uint16 overload is the shard-engine row (caller guarantees
/// <= 65535 balls per call, as shard_engine's window cap does); the uint32
/// overload serves whole serial windows.
void kernel_run(kernel_isa isa, std::size_t lanes, bin_count n, const std::uint8_t* snap,
                std::uint16_t* row, step_count balls, std::uint64_t seed);
void kernel_run(kernel_isa isa, std::size_t lanes, bin_count n, const std::uint8_t* snap,
                std::uint32_t* row, step_count balls, std::uint64_t seed);

/// Alias-sampled variant (non-uniform bin probabilities): each of a ball's
/// two bin indices is one alias draw -- a Lemire-bounded slot over [n)
/// followed by one raw u64 tested against the slot's 64-bit fixed-point
/// keep-threshold (`thresh[slot]`, else `alias[slot]`; both arrays live in
/// an nb::alias_table).  The decision over the snapshot is unchanged.
/// Same hard contract as kernel_run with the table joining the pure-
/// function inputs: counts depend only on (lanes, n, snap, thresh, alias,
/// balls, seed); backends are bit-identical (AVX2 gathers the tables and
/// the snapshot; SSE2 vectorizes the draw generation and picks scalar --
/// table lookups without hardware gathers don't pay).
void kernel_run_alias(kernel_isa isa, std::size_t lanes, bin_count n, const std::uint8_t* snap,
                      const std::uint64_t* thresh, const bin_index* alias, std::uint16_t* row,
                      step_count balls, std::uint64_t seed);
void kernel_run_alias(kernel_isa isa, std::size_t lanes, bin_count n, const std::uint8_t* snap,
                      const std::uint64_t* thresh, const bin_index* alias, std::uint32_t* row,
                      step_count balls, std::uint64_t seed);

}  // namespace nb
