// Internal machinery shared by the allocation-kernel backends.  Not part
// of the public API -- include core/kernel/kernel.hpp instead.
//
// The scalar pieces here (lane state stepping, the queue-replay ball) are
// the single source of truth for the kernel's sampling semantics: vector
// backends generate raw draws in bulk and fall back to replay_ball for
// remainder lanes, partial rounds and the (astronomically rare, ~2^-32
// per sample) Lemire rejections, so every backend consumes each lane's
// stream in exactly the reference order.
#pragma once

#include <array>
#include <cstdint>

#include "common/error.hpp"
#include "common/types.hpp"
#include "core/kernel/kernel.hpp"
#include "rng/rng.hpp"

namespace nb::kernel_detail {

/// Structure-of-arrays state of the kernel's xoshiro256++ lanes: word w of
/// lane l sits at sW[l], so a vector backend loads W consecutive lanes'
/// states with one aligned vector load per word.  Lane l's stream is
/// bit-identical to nb::xoshiro256pp(derive_seed(seed, l)).
struct lane_soa {
  std::size_t lanes = 0;
  alignas(64) std::array<std::uint64_t, kernel_max_lanes> s0{};
  alignas(64) std::array<std::uint64_t, kernel_max_lanes> s1{};
  alignas(64) std::array<std::uint64_t, kernel_max_lanes> s2{};
  alignas(64) std::array<std::uint64_t, kernel_max_lanes> s3{};

  void init(std::size_t lane_count, std::uint64_t seed) noexcept {
    NB_ASSERT(lane_count >= 1 && lane_count <= kernel_max_lanes);
    lanes = lane_count;
    for (std::size_t l = 0; l < lanes; ++l) {
      // Same state expansion as xoshiro256pp::reseed.
      splitmix64 sm(derive_seed(seed, l));
      s0[l] = sm.next();
      s1[l] = sm.next();
      s2[l] = sm.next();
      s3[l] = sm.next();
    }
  }

  /// One scalar step of lane l -- the same update as xoshiro256pp::next.
  std::uint64_t next(std::size_t l) noexcept {
    const std::uint64_t result = detail::rotl64(s0[l] + s3[l], 23) + s0[l];
    const std::uint64_t t = s1[l] << 17;
    s2[l] ^= s0[l];
    s3[l] ^= s1[l];
    s1[l] ^= s2[l];
    s0[l] ^= s3[l];
    s2[l] ^= t;
    s3[l] = detail::rotl64(s3[l], 45);
    return result;
  }
};

/// Lemire rejection threshold for `bound`, hoisted once per kernel run.
[[nodiscard]] inline std::uint64_t lemire_threshold(std::uint64_t bound) noexcept {
  return (0 - bound) % bound;
}

/// The canonical two-sample decision: less loaded of the two snapshot
/// offsets, ties broken by the top bit of c (set -> i1).
[[nodiscard]] inline std::uint32_t decide(std::uint8_t a, std::uint8_t b, std::uint64_t c,
                                          std::uint32_t i1, std::uint32_t i2) noexcept {
  const bool pick_first = (a < b) | ((a == b) & ((c >> 63) != 0));
  return pick_first ? i1 : i2;
}

/// Composite scalar draw stream of one lane: consumes `queue` first (raw
/// draws a vector backend already generated), then the lane's live stream,
/// which by construction sits exactly after the queued draws.  The cursor
/// persists across calls, so one stream can replay SEVERAL consecutive
/// balls of its lane against a single pre-drawn queue -- what the
/// interleaved (two-rounds-per-iteration) backends need when a rejection
/// fires after both rounds' draws were already taken.
struct ball_stream {
  lane_soa& st;
  std::size_t lane;
  const std::uint64_t* queue;
  int queued;
  int qi = 0;

  [[nodiscard]] std::uint64_t draw() noexcept {
    return qi < queued ? queue[qi++] : st.next(lane);
  }
  [[nodiscard]] std::uint32_t draw_bounded(std::uint64_t bound, std::uint64_t threshold) noexcept {
    for (;;) {
      const std::uint64_t x = draw();
      const auto m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      if (static_cast<std::uint64_t>(m) >= threshold) return static_cast<std::uint32_t>(m >> 64);
    }
  }
};

/// One ball decided scalar from `stream` (queue first, then live draws) --
/// the single source of truth for the uniform per-ball draw order:
/// bounded(i1), bounded(i2), one raw tie draw.
[[nodiscard]] inline std::uint32_t stream_ball(ball_stream& stream, std::uint64_t bound,
                                               std::uint64_t threshold,
                                               const std::uint8_t* snap) noexcept {
  const std::uint32_t i1 = stream.draw_bounded(bound, threshold);
  const std::uint32_t i2 = stream.draw_bounded(bound, threshold);
  const std::uint64_t c = stream.draw();
  return decide(snap[i1], snap[i2], c, i1, i2);
}

/// One ball of lane l, decided scalar: raw draws come first from `queue`
/// (draws a vector backend already generated for this ball), then live
/// from the lane.  With an accept-first queue of {a, b, c} this consumes
/// exactly the three queued values -- identical to the vector fast path --
/// and on rejection it transparently continues on the lane's live stream.
[[nodiscard]] inline std::uint32_t replay_ball(lane_soa& st, std::size_t l, std::uint64_t bound,
                                               std::uint64_t threshold, const std::uint8_t* snap,
                                               const std::uint64_t* queue, int queued) noexcept {
  ball_stream stream{st, l, queue, queued};
  return stream_ball(stream, bound, threshold, snap);
}

/// A backend fills chosen[0..balls) with the decided bin per ball, in ball
/// order, continuing the lane rotation from lane 0 (the driver only cuts
/// blocks at multiples of the lane count, so rotation stays aligned).
/// `tune` is execution-only (prefetch / interleave scheduling hints);
/// backends may ignore it and MUST produce identical results either way.
using fill_fn = void (*)(lane_soa& st, bin_count n, std::uint64_t threshold,
                         const std::uint8_t* snap, std::uint32_t* chosen, std::size_t balls,
                         kernel_tuning tune);

void fill_scalar(lane_soa& st, bin_count n, std::uint64_t threshold, const std::uint8_t* snap,
                 std::uint32_t* chosen, std::size_t balls, kernel_tuning tune);
#if defined(__x86_64__) || defined(__i386__)
void fill_sse2(lane_soa& st, bin_count n, std::uint64_t threshold, const std::uint8_t* snap,
               std::uint32_t* chosen, std::size_t balls, kernel_tuning tune);
void fill_avx2(lane_soa& st, bin_count n, std::uint64_t threshold, const std::uint8_t* snap,
               std::uint32_t* chosen, std::size_t balls, kernel_tuning tune);
void fill_avx512(lane_soa& st, bin_count n, std::uint64_t threshold, const std::uint8_t* snap,
                 std::uint32_t* chosen, std::size_t balls, kernel_tuning tune);
#endif
#if defined(__aarch64__)
void fill_neon(lane_soa& st, bin_count n, std::uint64_t threshold, const std::uint8_t* snap,
               std::uint32_t* chosen, std::size_t balls, kernel_tuning tune);
#endif

// ---------------------------------------------------------------------------
// Alias-sampled lane path (non-uniform bin probabilities).
//
// Same lane contract as the uniform path, but each bin index is one alias
// draw instead of one Lemire draw.  Per ball, lane l consumes, in order:
//
//   1. one-or-more raw u64 draws for alias slot s1 (Lemire over [n)),
//   2. exactly one raw u64 u1; bin i1 = u1 < thresh[s1] ? s1 : alias[s1],
//   3. the same two-draw pattern for i2,
//   4. exactly one raw u64 c for the tie bit.
//
// The decision over the snapshot is unchanged (canonical min rule).  The
// scalar pieces below define the order; vector backends bulk-generate the
// five draws and fall back to the queue replay for rejections, remainder
// lanes and partial rounds, exactly like the uniform path.

/// One alias pick: keep the slot iff u clears its 64-bit fixed-point
/// threshold, else take its alias (the exact expression every backend and
/// the serial alias_table::sample share).
[[nodiscard]] inline std::uint32_t alias_pick(const std::uint64_t* thresh,
                                              const bin_index* alias, std::uint32_t slot,
                                              std::uint64_t u) noexcept {
  return u < thresh[slot] ? slot : alias[slot];
}

/// One alias-sampled ball decided scalar from `stream` -- the single
/// source of truth for the alias per-ball draw order: bounded(s1), u1,
/// bounded(s2), u2, one raw tie draw.
[[nodiscard]] inline std::uint32_t stream_ball_alias(ball_stream& stream, std::uint64_t bound,
                                                     std::uint64_t threshold,
                                                     const std::uint8_t* snap,
                                                     const std::uint64_t* thresh,
                                                     const bin_index* alias) noexcept {
  const std::uint32_t s1 = stream.draw_bounded(bound, threshold);
  const std::uint32_t i1 = alias_pick(thresh, alias, s1, stream.draw());
  const std::uint32_t s2 = stream.draw_bounded(bound, threshold);
  const std::uint32_t i2 = alias_pick(thresh, alias, s2, stream.draw());
  const std::uint64_t c = stream.draw();
  return decide(snap[i1], snap[i2], c, i1, i2);
}

/// One alias-sampled ball of lane l, decided scalar; `queue` semantics as
/// in replay_ball (an accept-first queue of {s1, u1, s2, u2, c} consumes
/// exactly the five queued values -- the vector fast path -- and spills to
/// the lane's live stream on rejection).
[[nodiscard]] inline std::uint32_t replay_ball_alias(
    lane_soa& st, std::size_t l, std::uint64_t bound, std::uint64_t threshold,
    const std::uint8_t* snap, const std::uint64_t* thresh, const bin_index* alias,
    const std::uint64_t* queue, int queued) noexcept {
  ball_stream stream{st, l, queue, queued};
  return stream_ball_alias(stream, bound, threshold, snap, thresh, alias);
}

using fill_alias_fn = void (*)(lane_soa& st, bin_count n, std::uint64_t threshold,
                               const std::uint8_t* snap, const std::uint64_t* thresh,
                               const bin_index* alias, std::uint32_t* chosen, std::size_t balls,
                               kernel_tuning tune);

void fill_alias_scalar(lane_soa& st, bin_count n, std::uint64_t threshold,
                       const std::uint8_t* snap, const std::uint64_t* thresh,
                       const bin_index* alias, std::uint32_t* chosen, std::size_t balls,
                       kernel_tuning tune);
#if defined(__x86_64__) || defined(__i386__)
void fill_alias_sse2(lane_soa& st, bin_count n, std::uint64_t threshold, const std::uint8_t* snap,
                     const std::uint64_t* thresh, const bin_index* alias, std::uint32_t* chosen,
                     std::size_t balls, kernel_tuning tune);
void fill_alias_avx2(lane_soa& st, bin_count n, std::uint64_t threshold, const std::uint8_t* snap,
                     const std::uint64_t* thresh, const bin_index* alias, std::uint32_t* chosen,
                     std::size_t balls, kernel_tuning tune);
void fill_alias_avx512(lane_soa& st, bin_count n, std::uint64_t threshold,
                       const std::uint8_t* snap, const std::uint64_t* thresh,
                       const bin_index* alias, std::uint32_t* chosen, std::size_t balls,
                       kernel_tuning tune);
#endif
#if defined(__aarch64__)
void fill_alias_neon(lane_soa& st, bin_count n, std::uint64_t threshold, const std::uint8_t* snap,
                     const std::uint64_t* thresh, const bin_index* alias, std::uint32_t* chosen,
                     std::size_t balls, kernel_tuning tune);
#endif

// ---------------------------------------------------------------------------
// Bounded-pair lane path (the departure kernel's draw generator).
//
// The departure channels consume *pairs* of bounded draws per event
// attempt.  Drain needs (bounded(n), bounded(n), tie), which IS the
// uniform fill_* shape over a byte-inverted snapshot, so it reuses those
// backends verbatim.  The random channel needs (bounded(n), bounded(B))
// per rejection-sampling attempt -- a bin index plus an acceptance draw
// against the frozen load bound B -- with no snapshot gather and no tie
// draw; the pair fill below is that generic vector piece.  Per attempt,
// lane l consumes one-or-more raw u64 for the bounded(b1) draw, then the
// same for bounded(b2).  The scalar reference defines the order; vector
// backends bulk-generate both draws and queue-replay Lemire rejections
// exactly like the uniform fill.  Both bounds must be < 2^32.

/// One bounded pair of lane l decided scalar (queue semantics as in
/// replay_ball: an accept-first queue of {a, b} consumes exactly the two
/// queued values and spills to the lane's live stream on rejection).
inline void replay_pair(lane_soa& st, std::size_t l, std::uint64_t b1, std::uint64_t t1,
                        std::uint64_t b2, std::uint64_t t2, const std::uint64_t* queue,
                        int queued, std::uint32_t& o1, std::uint32_t& o2) noexcept {
  ball_stream stream{st, l, queue, queued};
  o1 = stream.draw_bounded(b1, t1);
  o2 = stream.draw_bounded(b2, t2);
}

/// A backend fills out1[t] = bounded(b1), out2[t] = bounded(b2) for every
/// attempt t in ball order, continuing the lane rotation from lane 0 (the
/// driver cuts blocks at multiples of the lane count).  t1/t2 are the
/// hoisted Lemire thresholds of b1/b2.  `tune` is execution-only.
using fill_pair_fn = void (*)(lane_soa& st, std::uint64_t b1, std::uint64_t t1, std::uint64_t b2,
                              std::uint64_t t2, std::uint32_t* out1, std::uint32_t* out2,
                              std::size_t count, kernel_tuning tune);

void fill_pair_scalar(lane_soa& st, std::uint64_t b1, std::uint64_t t1, std::uint64_t b2,
                      std::uint64_t t2, std::uint32_t* out1, std::uint32_t* out2,
                      std::size_t count, kernel_tuning tune);
#if defined(__x86_64__) || defined(__i386__)
void fill_pair_sse2(lane_soa& st, std::uint64_t b1, std::uint64_t t1, std::uint64_t b2,
                    std::uint64_t t2, std::uint32_t* out1, std::uint32_t* out2,
                    std::size_t count, kernel_tuning tune);
void fill_pair_avx2(lane_soa& st, std::uint64_t b1, std::uint64_t t1, std::uint64_t b2,
                    std::uint64_t t2, std::uint32_t* out1, std::uint32_t* out2,
                    std::size_t count, kernel_tuning tune);
void fill_pair_avx512(lane_soa& st, std::uint64_t b1, std::uint64_t t1, std::uint64_t b2,
                      std::uint64_t t2, std::uint32_t* out1, std::uint32_t* out2,
                      std::size_t count, kernel_tuning tune);
#endif
// No NEON pair fill: the path is pure ALU (no gathers to win back) and the
// build host cannot execute aarch64 code to validate one; dispatch routes
// aarch64 to the scalar reference, which is bit-identical by contract.

}  // namespace nb::kernel_detail
