// Runtime ISA dispatch and the block driver of the allocation kernel.
//
// The driver owns everything backend-independent: lane-state setup, the
// Lemire threshold hoist, cutting the run into L1-resident blocks (always
// at multiples of the lane count, so every backend sees the same aligned
// lane rotation), and folding the decided bins into the caller's count
// row.  Backends only fill the block's chosen-bin buffer.
#include "core/kernel/kernel.hpp"

#include <string>

#include "core/kernel/kernel_common.hpp"

namespace nb {
namespace {

/// Chosen-bin buffer capacity per block: 32 KiB, L1-resident alongside the
/// lane state, and a multiple of every legal lane count's round size after
/// the driver rounds it down.
constexpr std::size_t kBlockBalls = 8192;
static_assert(kBlockBalls % kernel_max_lanes == 0);

kernel_detail::fill_fn pick_fill(kernel_isa resolved) noexcept {
  switch (resolved) {
#if defined(__x86_64__) || defined(__i386__)
    case kernel_isa::sse2:
      return kernel_detail::fill_sse2;
    case kernel_isa::avx2:
      return kernel_detail::fill_avx2;
#endif
    default:
      return kernel_detail::fill_scalar;
  }
}

template <typename Row>
void run_impl(kernel_isa isa, std::size_t lanes, bin_count n, const std::uint8_t* snap, Row* row,
              step_count balls, std::uint64_t seed) {
  NB_REQUIRE(lanes >= 1 && lanes <= kernel_max_lanes, "kernel lanes must be in [1, 64]");
  NB_REQUIRE(n >= 1, "kernel needs at least one bin");
  NB_ASSERT(balls >= 0 && snap != nullptr && row != nullptr);
  const kernel_detail::fill_fn fill = pick_fill(resolve_kernel_isa(isa));
  kernel_detail::lane_soa state;
  state.init(lanes, seed);
  const std::uint64_t threshold = kernel_detail::lemire_threshold(n);
  const std::size_t block = (kBlockBalls / lanes) * lanes;  // multiple of the lane count
  alignas(64) std::uint32_t chosen[kBlockBalls];
  while (balls > 0) {
    const std::size_t count =
        balls < static_cast<step_count>(block) ? static_cast<std::size_t>(balls) : block;
    fill(state, n, threshold, snap, chosen, count);
    for (std::size_t i = 0; i < count; ++i) ++row[chosen[i]];
    balls -= static_cast<step_count>(count);
  }
}

kernel_detail::fill_alias_fn pick_fill_alias(kernel_isa resolved) noexcept {
  switch (resolved) {
#if defined(__x86_64__) || defined(__i386__)
    case kernel_isa::sse2:
      return kernel_detail::fill_alias_sse2;
    case kernel_isa::avx2:
      return kernel_detail::fill_alias_avx2;
#endif
    default:
      return kernel_detail::fill_alias_scalar;
  }
}

template <typename Row>
void run_alias_impl(kernel_isa isa, std::size_t lanes, bin_count n, const std::uint8_t* snap,
                    const std::uint64_t* thresh, const bin_index* alias, Row* row,
                    step_count balls, std::uint64_t seed) {
  NB_REQUIRE(lanes >= 1 && lanes <= kernel_max_lanes, "kernel lanes must be in [1, 64]");
  NB_REQUIRE(n >= 1, "kernel needs at least one bin");
  NB_ASSERT(balls >= 0 && snap != nullptr && thresh != nullptr && alias != nullptr &&
            row != nullptr);
  const kernel_detail::fill_alias_fn fill = pick_fill_alias(resolve_kernel_isa(isa));
  kernel_detail::lane_soa state;
  state.init(lanes, seed);
  const std::uint64_t threshold = kernel_detail::lemire_threshold(n);
  const std::size_t block = (kBlockBalls / lanes) * lanes;
  alignas(64) std::uint32_t chosen[kBlockBalls];
  while (balls > 0) {
    const std::size_t count =
        balls < static_cast<step_count>(block) ? static_cast<std::size_t>(balls) : block;
    fill(state, n, threshold, snap, thresh, alias, chosen, count);
    for (std::size_t i = 0; i < count; ++i) ++row[chosen[i]];
    balls -= static_cast<step_count>(count);
  }
}

}  // namespace

kernel_isa detect_kernel_isa() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return kernel_isa::avx2;
  if (__builtin_cpu_supports("sse2")) return kernel_isa::sse2;
#endif
  return kernel_isa::scalar;
}

bool kernel_isa_supported(kernel_isa isa) noexcept {
  switch (isa) {
    case kernel_isa::scalar:
    case kernel_isa::auto_detect:
      return true;
    case kernel_isa::sse2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("sse2") != 0;
#else
      return false;
#endif
    case kernel_isa::avx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

kernel_isa resolve_kernel_isa(kernel_isa requested) noexcept {
  if (requested == kernel_isa::auto_detect) return detect_kernel_isa();
  if (kernel_isa_supported(requested)) return requested;
  // Unsupported explicit request: downgrade to the best available backend.
  // Legal because backends are bit-identical; the caller can still probe
  // kernel_isa_supported() when the distinction matters (tests do).
  return detect_kernel_isa();
}

const char* kernel_isa_name(kernel_isa isa) noexcept {
  switch (isa) {
    case kernel_isa::scalar:
      return "scalar";
    case kernel_isa::sse2:
      return "sse2";
    case kernel_isa::avx2:
      return "avx2";
    case kernel_isa::auto_detect:
      return "auto";
  }
  return "unknown";
}

std::optional<kernel_isa> kernel_isa_from_name(std::string_view name) noexcept {
  if (name == "scalar") return kernel_isa::scalar;
  if (name == "sse2") return kernel_isa::sse2;
  if (name == "avx2") return kernel_isa::avx2;
  if (name == "auto" || name == "simd") return kernel_isa::auto_detect;
  return std::nullopt;
}

void kernel_run(kernel_isa isa, std::size_t lanes, bin_count n, const std::uint8_t* snap,
                std::uint16_t* row, step_count balls, std::uint64_t seed) {
  run_impl(isa, lanes, n, snap, row, balls, seed);
}

void kernel_run(kernel_isa isa, std::size_t lanes, bin_count n, const std::uint8_t* snap,
                std::uint32_t* row, step_count balls, std::uint64_t seed) {
  run_impl(isa, lanes, n, snap, row, balls, seed);
}

void kernel_run_alias(kernel_isa isa, std::size_t lanes, bin_count n, const std::uint8_t* snap,
                      const std::uint64_t* thresh, const bin_index* alias, std::uint16_t* row,
                      step_count balls, std::uint64_t seed) {
  run_alias_impl(isa, lanes, n, snap, thresh, alias, row, balls, seed);
}

void kernel_run_alias(kernel_isa isa, std::size_t lanes, bin_count n, const std::uint8_t* snap,
                      const std::uint64_t* thresh, const bin_index* alias, std::uint32_t* row,
                      step_count balls, std::uint64_t seed) {
  run_alias_impl(isa, lanes, n, snap, thresh, alias, row, balls, seed);
}

}  // namespace nb
