// Runtime ISA dispatch and the block driver of the allocation kernel.
//
// The driver owns everything backend-independent: lane-state setup, the
// Lemire threshold hoist, cutting the run into L1-resident blocks (always
// at multiples of the lane count, so every backend sees the same aligned
// lane rotation), and folding the decided bins into the caller's count
// row.  Backends only fill the block's chosen-bin buffer.
//
// The fold loop is where the kernel actually hits the memory wall at
// paper scale: `++row[chosen[i]]` is a random read-modify-write over a
// 4 MB uint32 row (n = 10^6), so with tuning.prefetch the driver issues a
// software prefetch a fixed distance ahead -- the chosen buffer already
// holds the whole block's targets, making this the rare case where the
// prefetch address is known thousands of cycles early.  Execution-only:
// the folded counts are identical either way.
#include "core/kernel/kernel.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "core/kernel/kernel_common.hpp"

namespace nb {
namespace {

/// Chosen-bin buffer capacity per block: 32 KiB, L1-resident alongside the
/// lane state, and a multiple of every legal lane count's round size after
/// the driver rounds it down.
constexpr std::size_t kBlockBalls = 8192;
static_assert(kBlockBalls % kernel_max_lanes == 0);

/// How many fold iterations ahead the row prefetch runs: far enough to
/// cover an LLC miss at ~1 fold per few cycles, near enough that the line
/// is still resident when the increment arrives.
constexpr std::size_t kFoldPrefetchDist = 48;

/// Process-wide tuning, encoded in one atomic byte (bit 0 = prefetch,
/// bit 1 = interleave); 0xFF = not yet initialized from the environment.
std::atomic<std::uint8_t> g_tuning{0xFF};

bool env_disabled(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return false;
  const std::string s(v);
  return s == "0" || s == "off" || s == "OFF" || s == "false";
}

std::uint8_t encode_tuning(kernel_tuning t) noexcept {
  return static_cast<std::uint8_t>((t.prefetch ? 1u : 0u) | (t.interleave ? 2u : 0u));
}

std::uint8_t tuning_byte() noexcept {
  std::uint8_t b = g_tuning.load(std::memory_order_relaxed);
  if (b == 0xFF) [[unlikely]] {
    kernel_tuning t;
    t.prefetch = !env_disabled("NB_KERNEL_PREFETCH");
    t.interleave = !env_disabled("NB_KERNEL_INTERLEAVE");
    b = encode_tuning(t);
    g_tuning.store(b, std::memory_order_relaxed);
  }
  return b;
}

kernel_detail::fill_fn pick_fill(kernel_isa resolved) noexcept {
  switch (resolved) {
#if defined(__x86_64__) || defined(__i386__)
    case kernel_isa::sse2:
      return kernel_detail::fill_sse2;
    case kernel_isa::avx2:
      return kernel_detail::fill_avx2;
    case kernel_isa::avx512:
      return kernel_detail::fill_avx512;
#endif
#if defined(__aarch64__)
    case kernel_isa::neon:
      return kernel_detail::fill_neon;
#endif
    default:
      return kernel_detail::fill_scalar;
  }
}

/// Folds one decided block into the caller's row, optionally prefetching
/// the increment targets kFoldPrefetchDist balls ahead.
template <typename Row>
void fold_block(Row* row, const std::uint32_t* chosen, std::size_t count, bool prefetch) {
  if (prefetch && count > kFoldPrefetchDist) {
    const std::size_t main = count - kFoldPrefetchDist;
    for (std::size_t i = 0; i < main; ++i) {
      __builtin_prefetch(&row[chosen[i + kFoldPrefetchDist]], 1, 1);
      ++row[chosen[i]];
    }
    for (std::size_t i = main; i < count; ++i) ++row[chosen[i]];
  } else {
    for (std::size_t i = 0; i < count; ++i) ++row[chosen[i]];
  }
}

template <typename Row>
void run_impl(kernel_isa isa, std::size_t lanes, bin_count n, const std::uint8_t* snap, Row* row,
              step_count balls, std::uint64_t seed) {
  NB_REQUIRE(lanes >= 1 && lanes <= kernel_max_lanes, "kernel lanes must be in [1, 64]");
  NB_REQUIRE(n >= 1, "kernel needs at least one bin");
  NB_ASSERT(balls >= 0 && snap != nullptr && row != nullptr);
  const kernel_detail::fill_fn fill = pick_fill(resolve_kernel_isa(isa));
  const kernel_tuning tune = current_kernel_tuning();
  kernel_detail::lane_soa state;
  state.init(lanes, seed);
  const std::uint64_t threshold = kernel_detail::lemire_threshold(n);
  const std::size_t block = (kBlockBalls / lanes) * lanes;  // multiple of the lane count
  alignas(64) std::uint32_t chosen[kBlockBalls];
  while (balls > 0) {
    const std::size_t count =
        balls < static_cast<step_count>(block) ? static_cast<std::size_t>(balls) : block;
    fill(state, n, threshold, snap, chosen, count, tune);
    fold_block(row, chosen, count, tune.prefetch);
    balls -= static_cast<step_count>(count);
  }
}

kernel_detail::fill_alias_fn pick_fill_alias(kernel_isa resolved) noexcept {
  switch (resolved) {
#if defined(__x86_64__) || defined(__i386__)
    case kernel_isa::sse2:
      return kernel_detail::fill_alias_sse2;
    case kernel_isa::avx2:
      return kernel_detail::fill_alias_avx2;
    case kernel_isa::avx512:
      return kernel_detail::fill_alias_avx512;
#endif
#if defined(__aarch64__)
    case kernel_isa::neon:
      return kernel_detail::fill_alias_neon;
#endif
    default:
      return kernel_detail::fill_alias_scalar;
  }
}

template <typename Row>
void run_alias_impl(kernel_isa isa, std::size_t lanes, bin_count n, const std::uint8_t* snap,
                    const std::uint64_t* thresh, const bin_index* alias, Row* row,
                    step_count balls, std::uint64_t seed) {
  NB_REQUIRE(lanes >= 1 && lanes <= kernel_max_lanes, "kernel lanes must be in [1, 64]");
  NB_REQUIRE(n >= 1, "kernel needs at least one bin");
  NB_ASSERT(balls >= 0 && snap != nullptr && thresh != nullptr && alias != nullptr &&
            row != nullptr);
  const kernel_detail::fill_alias_fn fill = pick_fill_alias(resolve_kernel_isa(isa));
  const kernel_tuning tune = current_kernel_tuning();
  kernel_detail::lane_soa state;
  state.init(lanes, seed);
  const std::uint64_t threshold = kernel_detail::lemire_threshold(n);
  const std::size_t block = (kBlockBalls / lanes) * lanes;
  alignas(64) std::uint32_t chosen[kBlockBalls];
  while (balls > 0) {
    const std::size_t count =
        balls < static_cast<step_count>(block) ? static_cast<std::size_t>(balls) : block;
    fill(state, n, threshold, snap, thresh, alias, chosen, count, tune);
    fold_block(row, chosen, count, tune.prefetch);
    balls -= static_cast<step_count>(count);
  }
}

}  // namespace

kernel_tuning current_kernel_tuning() noexcept {
  const std::uint8_t b = tuning_byte();
  kernel_tuning t;
  t.prefetch = (b & 1u) != 0;
  t.interleave = (b & 2u) != 0;
  return t;
}

void set_kernel_tuning(kernel_tuning tuning) noexcept {
  g_tuning.store(encode_tuning(tuning), std::memory_order_relaxed);
}

kernel_isa detect_kernel_isa() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  // AVX-512 gating: F (foundation) + DQ/BW/VL for the 64-bit mask
  // compares, narrowing converts and 256-bit masked blends the backend
  // uses -- the Skylake-SP+ server baseline.  CPUs with exotic partial
  // AVX-512 subsets fall back to AVX2.
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512bw") && __builtin_cpu_supports("avx512vl")) {
    return kernel_isa::avx512;
  }
  if (__builtin_cpu_supports("avx2")) return kernel_isa::avx2;
  if (__builtin_cpu_supports("sse2")) return kernel_isa::sse2;
#elif defined(__aarch64__)
  return kernel_isa::neon;  // AdvSIMD is architecturally mandatory on aarch64
#endif
  return kernel_isa::scalar;
}

bool kernel_isa_supported(kernel_isa isa) noexcept {
  switch (isa) {
    case kernel_isa::scalar:
    case kernel_isa::auto_detect:
      return true;
    case kernel_isa::sse2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("sse2") != 0;
#else
      return false;
#endif
    case kernel_isa::avx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case kernel_isa::avx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f") != 0 && __builtin_cpu_supports("avx512dq") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0 && __builtin_cpu_supports("avx512vl") != 0;
#else
      return false;
#endif
    case kernel_isa::neon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

kernel_isa resolve_kernel_isa(kernel_isa requested) noexcept {
  if (requested == kernel_isa::auto_detect) return detect_kernel_isa();
  if (kernel_isa_supported(requested)) return requested;
  // Unsupported explicit request: downgrade to the best available backend.
  // Legal because backends are bit-identical -- but an explicitly forced
  // backend falling back is usually a misconfigured bench or CI job, so
  // say it once instead of silently benchmarking the wrong ISA.
  const kernel_isa best = detect_kernel_isa();
  warn_once(std::string("kernel-isa-fallback:") + kernel_isa_name(requested),
            std::string("requested kernel ISA '") + kernel_isa_name(requested) +
                "' is not supported on this CPU; falling back to '" + kernel_isa_name(best) +
                "' (results are bit-identical across backends)");
  return best;
}

const char* kernel_isa_name(kernel_isa isa) noexcept {
  switch (isa) {
    case kernel_isa::scalar:
      return "scalar";
    case kernel_isa::sse2:
      return "sse2";
    case kernel_isa::avx2:
      return "avx2";
    case kernel_isa::avx512:
      return "avx512";
    case kernel_isa::neon:
      return "neon";
    case kernel_isa::auto_detect:
      return "auto";
  }
  return "unknown";
}

std::optional<kernel_isa> kernel_isa_from_name(std::string_view name) noexcept {
  if (name == "scalar") return kernel_isa::scalar;
  if (name == "sse2") return kernel_isa::sse2;
  if (name == "avx2") return kernel_isa::avx2;
  if (name == "avx512") return kernel_isa::avx512;
  if (name == "neon") return kernel_isa::neon;
  if (name == "auto" || name == "simd") return kernel_isa::auto_detect;
  return std::nullopt;
}

void kernel_run(kernel_isa isa, std::size_t lanes, bin_count n, const std::uint8_t* snap,
                std::uint16_t* row, step_count balls, std::uint64_t seed) {
  run_impl(isa, lanes, n, snap, row, balls, seed);
}

void kernel_run(kernel_isa isa, std::size_t lanes, bin_count n, const std::uint8_t* snap,
                std::uint32_t* row, step_count balls, std::uint64_t seed) {
  run_impl(isa, lanes, n, snap, row, balls, seed);
}

void kernel_run_alias(kernel_isa isa, std::size_t lanes, bin_count n, const std::uint8_t* snap,
                      const std::uint64_t* thresh, const bin_index* alias, std::uint16_t* row,
                      step_count balls, std::uint64_t seed) {
  run_alias_impl(isa, lanes, n, snap, thresh, alias, row, balls, seed);
}

void kernel_run_alias(kernel_isa isa, std::size_t lanes, bin_count n, const std::uint8_t* snap,
                      const std::uint64_t* thresh, const bin_index* alias, std::uint32_t* row,
                      step_count balls, std::uint64_t seed) {
  run_alias_impl(isa, lanes, n, snap, thresh, alias, row, balls, seed);
}

}  // namespace nb
