// Scalar backend of the allocation kernel: the portable reference that
// defines the lane contract.  Every ball goes straight through the
// queue-replay path with an empty queue, i.e. plain sequential draws from
// the owning lane -- trivially the reference order.  Still branch-light:
// the decision is the branchless decide() and the Lemire loop essentially
// never iterates.
#include "core/kernel/kernel_common.hpp"

namespace nb::kernel_detail {

void fill_scalar(lane_soa& st, bin_count n, std::uint64_t threshold, const std::uint8_t* snap,
                 std::uint32_t* chosen, std::size_t balls, kernel_tuning /*tune*/) {
  const std::size_t lanes = st.lanes;
  const auto bound = static_cast<std::uint64_t>(n);
  std::size_t t = 0;
  while (t + lanes <= balls) {  // full rounds: one ball per lane
    for (std::size_t l = 0; l < lanes; ++l, ++t) {
      chosen[t] = replay_ball(st, l, bound, threshold, snap, nullptr, 0);
    }
  }
  for (std::size_t l = 0; t < balls; ++l, ++t) {  // trailing partial round
    chosen[t] = replay_ball(st, l, bound, threshold, snap, nullptr, 0);
  }
}

void fill_pair_scalar(lane_soa& st, std::uint64_t b1, std::uint64_t t1, std::uint64_t b2,
                      std::uint64_t t2, std::uint32_t* out1, std::uint32_t* out2,
                      std::size_t count, kernel_tuning /*tune*/) {
  const std::size_t lanes = st.lanes;
  std::size_t t = 0;
  while (t + lanes <= count) {  // full rounds: one attempt per lane
    for (std::size_t l = 0; l < lanes; ++l, ++t) {
      replay_pair(st, l, b1, t1, b2, t2, nullptr, 0, out1[t], out2[t]);
    }
  }
  for (std::size_t l = 0; t < count; ++l, ++t) {  // trailing partial round
    replay_pair(st, l, b1, t1, b2, t2, nullptr, 0, out1[t], out2[t]);
  }
}

void fill_alias_scalar(lane_soa& st, bin_count n, std::uint64_t threshold,
                       const std::uint8_t* snap, const std::uint64_t* thresh,
                       const bin_index* alias, std::uint32_t* chosen, std::size_t balls,
                       kernel_tuning /*tune*/) {
  const std::size_t lanes = st.lanes;
  const auto bound = static_cast<std::uint64_t>(n);
  std::size_t t = 0;
  while (t + lanes <= balls) {
    for (std::size_t l = 0; l < lanes; ++l, ++t) {
      chosen[t] = replay_ball_alias(st, l, bound, threshold, snap, thresh, alias, nullptr, 0);
    }
  }
  for (std::size_t l = 0; t < balls; ++l, ++t) {
    chosen[t] = replay_ball_alias(st, l, bound, threshold, snap, thresh, alias, nullptr, 0);
  }
}

}  // namespace nb::kernel_detail
