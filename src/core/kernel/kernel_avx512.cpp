// AVX-512 backend of the allocation kernel: 8 lanes per 512-bit vector.
//
// Structurally the AVX2 backend doubled, with three upgrades the wider
// ISA makes cheap:
//
//  * Native 64-bit machinery end to end: vpgatherqq for the alias
//    thresholds, vpgatherqd for snapshot/alias bytes, vprolq for the
//    xoshiro rotates (one instruction instead of shift+shift+or), and
//    mask-register compares instead of vector masks + movemask.
//
//  * EXACT Lemire rejection via _mm512_cmplt_epu64_mask(low, threshold)
//    -- the AVX2 backend only has signed 32-bit compares and settles for
//    a conservative "any high dword zero" superset test.
//
//  * MASKED rejection replay: the vector result is computed
//    unconditionally (a Lemire candidate is < bound even for a rejected
//    draw, so every gather is in-bounds) and only the rejected lanes'
//    entries are overwritten by the scalar queue replay.  Accepted lanes
//    never leave the vector path, so a rejection costs one lane's
//    replay, not a whole group's.
//
// With tune.interleave the uniform path additionally draws and decides
// TWO lane rounds per loop iteration, issuing both rounds' snapshot
// gathers back to back so their cache misses overlap in flight; a
// rejection in either round replays both of the affected lane's balls
// through one shared 6-draw queue (ball_stream keeps the cursor across
// the two balls).  Execution-only by construction -- the drawn values
// and the decisions are identical either way.
//
// Compiled with per-function target attributes so the rest of the build
// stays portable; dispatch requires avx512f+dq+bw+vl (Skylake-SP+).
#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include "core/kernel/kernel_common.hpp"

#define NB_TGT_AVX512 __attribute__((target("avx512f,avx512dq,avx512bw,avx512vl")))

namespace nb::kernel_detail {
namespace {

/// One xoshiro256++ step for 8 lanes (same update as lane_soa::next);
/// vprolq gives the rotates in one instruction each.
NB_TGT_AVX512 inline __m512i xo_step(__m512i& s0, __m512i& s1, __m512i& s2, __m512i& s3) {
  const __m512i result = _mm512_add_epi64(_mm512_rol_epi64(_mm512_add_epi64(s0, s3), 23), s0);
  const __m512i t = _mm512_slli_epi64(s1, 17);
  s2 = _mm512_xor_si512(s2, s0);
  s3 = _mm512_xor_si512(s3, s1);
  s1 = _mm512_xor_si512(s1, s2);
  s0 = _mm512_xor_si512(s0, s3);
  s2 = _mm512_xor_si512(s2, t);
  s3 = _mm512_rol_epi64(s3, 45);
  return result;
}

/// Lemire multiply-shift for 8 draws (same 96-bit product decomposition
/// as lemire4 in kernel_avx2.cpp; bound < 2^32).
NB_TGT_AVX512 inline void lemire8(__m512i x, __m512i bound, __m512i& candidate, __m512i& low) {
  const __m512i lo_prod = _mm512_mul_epu32(x, bound);
  const __m512i hi_prod = _mm512_mul_epu32(_mm512_srli_epi64(x, 32), bound);
  candidate = _mm512_srli_epi64(_mm512_add_epi64(hi_prod, _mm512_srli_epi64(lo_prod, 32)), 32);
  low = _mm512_add_epi64(_mm512_slli_epi64(hi_prod, 32), lo_prod);
}

/// Gathered snapshot loads + mask-register min-select for 8 balls: pick
/// i1 when snap[i1] < snap[i2], or on a tie when draw c's top bit is set.
NB_TGT_AVX512 inline __m256i select8(__m512i i1, __m512i i2, __m512i c,
                                     const std::uint8_t* snap) {
  const __m256i bmask = _mm256_set1_epi32(0xFF);
  const __m256i ga = _mm256_and_si256(
      _mm512_i64gather_epi32(i1, reinterpret_cast<const void*>(snap), 1), bmask);
  const __m256i gb = _mm256_and_si256(
      _mm512_i64gather_epi32(i2, reinterpret_cast<const void*>(snap), 1), bmask);
  const __mmask8 tie = _mm512_cmplt_epi64_mask(c, _mm512_setzero_si512());
  const __mmask8 pick =
      _mm256_cmplt_epu32_mask(ga, gb) | (_mm256_cmpeq_epi32_mask(ga, gb) & tie);
  return _mm256_mask_blend_epi32(pick, _mm512_cvtepi64_epi32(i2), _mm512_cvtepi64_epi32(i1));
}

NB_TGT_AVX512 void fill_avx512_impl(lane_soa& st, bin_count n, std::uint64_t threshold,
                                    const std::uint8_t* snap, std::uint32_t* chosen,
                                    std::size_t balls, bool interleave) {
  const std::size_t lanes = st.lanes;
  const std::size_t vec_lanes = lanes - lanes % 8;  // lanes handled 8 at a time
  const auto bound64 = static_cast<std::uint64_t>(n);
  const __m512i bound = _mm512_set1_epi64(static_cast<long long>(bound64));
  const __m512i thr = _mm512_set1_epi64(static_cast<long long>(threshold));

  std::size_t t = 0;
  if (interleave) {
    while (t + 2 * lanes <= balls) {  // two full rounds per iteration
      for (std::size_t lane0 = 0; lane0 < vec_lanes; lane0 += 8) {
        __m512i s0 = _mm512_load_si512(st.s0.data() + lane0);
        __m512i s1 = _mm512_load_si512(st.s1.data() + lane0);
        __m512i s2 = _mm512_load_si512(st.s2.data() + lane0);
        __m512i s3 = _mm512_load_si512(st.s3.data() + lane0);
        const __m512i a1 = xo_step(s0, s1, s2, s3);
        const __m512i b1 = xo_step(s0, s1, s2, s3);
        const __m512i c1 = xo_step(s0, s1, s2, s3);
        const __m512i a2 = xo_step(s0, s1, s2, s3);
        const __m512i b2 = xo_step(s0, s1, s2, s3);
        const __m512i c2 = xo_step(s0, s1, s2, s3);
        _mm512_store_si512(st.s0.data() + lane0, s0);
        _mm512_store_si512(st.s1.data() + lane0, s1);
        _mm512_store_si512(st.s2.data() + lane0, s2);
        _mm512_store_si512(st.s3.data() + lane0, s3);

        __m512i j1;
        __m512i j2;
        __m512i k1;
        __m512i k2;
        __m512i lj1;
        __m512i lj2;
        __m512i lk1;
        __m512i lk2;
        lemire8(a1, bound, j1, lj1);
        lemire8(b1, bound, j2, lj2);
        lemire8(a2, bound, k1, lk1);
        lemire8(b2, bound, k2, lk2);
        const __mmask8 rej =
            _mm512_cmplt_epu64_mask(lj1, thr) | _mm512_cmplt_epu64_mask(lj2, thr) |
            _mm512_cmplt_epu64_mask(lk1, thr) | _mm512_cmplt_epu64_mask(lk2, thr);

        // Both rounds' gathers issued back to back: four independent
        // vpgatherqd whose misses overlap -- the interleave payoff.
        const __m256i ch1 = select8(j1, j2, c1, snap);
        const __m256i ch2 = select8(k1, k2, c2, snap);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(chosen + t + lane0), ch1);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(chosen + t + lanes + lane0), ch2);

        if (rej != 0) [[unlikely]] {
          alignas(64) std::uint64_t q[6][8];
          _mm512_store_si512(q[0], a1);
          _mm512_store_si512(q[1], b1);
          _mm512_store_si512(q[2], c1);
          _mm512_store_si512(q[3], a2);
          _mm512_store_si512(q[4], b2);
          _mm512_store_si512(q[5], c2);
          for (std::size_t l = 0; l < 8; ++l) {
            if (((rej >> l) & 1u) == 0) continue;
            // Both of this lane's balls replay against ONE shared queue:
            // the cursor persists, so a rejection in ball 1 shifts ball
            // 2's draws exactly as the reference stream does.
            const std::uint64_t queue[6] = {q[0][l], q[1][l], q[2][l],
                                            q[3][l], q[4][l], q[5][l]};
            ball_stream stream{st, lane0 + l, queue, 6};
            chosen[t + lane0 + l] = stream_ball(stream, bound64, threshold, snap);
            chosen[t + lanes + lane0 + l] = stream_ball(stream, bound64, threshold, snap);
          }
        }
      }
      for (std::size_t l = vec_lanes; l < lanes; ++l) {  // remainder lanes
        chosen[t + l] = replay_ball(st, l, bound64, threshold, snap, nullptr, 0);
        chosen[t + lanes + l] = replay_ball(st, l, bound64, threshold, snap, nullptr, 0);
      }
      t += 2 * lanes;
    }
  }
  while (t + lanes <= balls) {  // single full rounds
    for (std::size_t lane0 = 0; lane0 < vec_lanes; lane0 += 8) {
      __m512i s0 = _mm512_load_si512(st.s0.data() + lane0);
      __m512i s1 = _mm512_load_si512(st.s1.data() + lane0);
      __m512i s2 = _mm512_load_si512(st.s2.data() + lane0);
      __m512i s3 = _mm512_load_si512(st.s3.data() + lane0);
      const __m512i a = xo_step(s0, s1, s2, s3);
      const __m512i b = xo_step(s0, s1, s2, s3);
      const __m512i c = xo_step(s0, s1, s2, s3);
      _mm512_store_si512(st.s0.data() + lane0, s0);
      _mm512_store_si512(st.s1.data() + lane0, s1);
      _mm512_store_si512(st.s2.data() + lane0, s2);
      _mm512_store_si512(st.s3.data() + lane0, s3);

      __m512i i1;
      __m512i i2;
      __m512i low_a;
      __m512i low_b;
      lemire8(a, bound, i1, low_a);
      lemire8(b, bound, i2, low_b);
      const __mmask8 rej =
          _mm512_cmplt_epu64_mask(low_a, thr) | _mm512_cmplt_epu64_mask(low_b, thr);

      const __m256i ch = select8(i1, i2, c, snap);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(chosen + t + lane0), ch);

      if (rej != 0) [[unlikely]] {  // masked replay: rejected lanes only
        alignas(64) std::uint64_t qa[8];
        alignas(64) std::uint64_t qb[8];
        alignas(64) std::uint64_t qc[8];
        _mm512_store_si512(qa, a);
        _mm512_store_si512(qb, b);
        _mm512_store_si512(qc, c);
        for (std::size_t l = 0; l < 8; ++l) {
          if (((rej >> l) & 1u) == 0) continue;
          const std::uint64_t queue[3] = {qa[l], qb[l], qc[l]};
          chosen[t + lane0 + l] = replay_ball(st, lane0 + l, bound64, threshold, snap, queue, 3);
        }
      }
    }
    for (std::size_t l = vec_lanes; l < lanes; ++l) {
      chosen[t + l] = replay_ball(st, l, bound64, threshold, snap, nullptr, 0);
    }
    t += lanes;
  }
  for (std::size_t l = 0; t < balls; ++l, ++t) {  // trailing partial round
    chosen[t] = replay_ball(st, l, bound64, threshold, snap, nullptr, 0);
  }
}

/// Bounded-pair fill for the departure kernel's random channel: two
/// xoshiro steps per 8-lane group, one Lemire multiply-shift against each
/// bound, EXACT unsigned rejection against both thresholds, and masked
/// per-lane replay over the unconditionally stored vector results (a
/// rejected candidate is still < its bound, so the stores are safe to
/// overwrite lane-by-lane).
NB_TGT_AVX512 void fill_pair_avx512_impl(lane_soa& st, std::uint64_t b1, std::uint64_t t1,
                                         std::uint64_t b2, std::uint64_t t2, std::uint32_t* out1,
                                         std::uint32_t* out2, std::size_t count) {
  const std::size_t lanes = st.lanes;
  const std::size_t vec_lanes = lanes - lanes % 8;
  const __m512i bound1 = _mm512_set1_epi64(static_cast<long long>(b1));
  const __m512i bound2 = _mm512_set1_epi64(static_cast<long long>(b2));
  const __m512i thr1 = _mm512_set1_epi64(static_cast<long long>(t1));
  const __m512i thr2 = _mm512_set1_epi64(static_cast<long long>(t2));

  std::size_t t = 0;
  while (t + lanes <= count) {
    for (std::size_t lane0 = 0; lane0 < vec_lanes; lane0 += 8) {
      __m512i s0 = _mm512_load_si512(st.s0.data() + lane0);
      __m512i s1 = _mm512_load_si512(st.s1.data() + lane0);
      __m512i s2 = _mm512_load_si512(st.s2.data() + lane0);
      __m512i s3 = _mm512_load_si512(st.s3.data() + lane0);
      const __m512i a = xo_step(s0, s1, s2, s3);
      const __m512i b = xo_step(s0, s1, s2, s3);
      _mm512_store_si512(st.s0.data() + lane0, s0);
      _mm512_store_si512(st.s1.data() + lane0, s1);
      _mm512_store_si512(st.s2.data() + lane0, s2);
      _mm512_store_si512(st.s3.data() + lane0, s3);

      __m512i i1;
      __m512i i2;
      __m512i low_a;
      __m512i low_b;
      lemire8(a, bound1, i1, low_a);
      lemire8(b, bound2, i2, low_b);
      const __mmask8 rej =
          _mm512_cmplt_epu64_mask(low_a, thr1) | _mm512_cmplt_epu64_mask(low_b, thr2);

      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out1 + t + lane0),
                          _mm512_cvtepi64_epi32(i1));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out2 + t + lane0),
                          _mm512_cvtepi64_epi32(i2));

      if (rej != 0) [[unlikely]] {  // masked replay: rejected lanes only
        alignas(64) std::uint64_t qa[8];
        alignas(64) std::uint64_t qb[8];
        _mm512_store_si512(qa, a);
        _mm512_store_si512(qb, b);
        for (std::size_t l = 0; l < 8; ++l) {
          if (((rej >> l) & 1u) == 0) continue;
          const std::uint64_t queue[2] = {qa[l], qb[l]};
          replay_pair(st, lane0 + l, b1, t1, b2, t2, queue, 2, out1[t + lane0 + l],
                      out2[t + lane0 + l]);
        }
      }
    }
    for (std::size_t l = vec_lanes; l < lanes; ++l) {
      replay_pair(st, l, b1, t1, b2, t2, nullptr, 0, out1[t + l], out2[t + l]);
    }
    t += lanes;
  }
  for (std::size_t l = 0; t < count; ++l, ++t) {
    replay_pair(st, l, b1, t1, b2, t2, nullptr, 0, out1[t], out2[t]);
  }
}

/// One alias pick for 8 lanes: native 64-bit threshold gather
/// (vpgatherqq), a 32-bit alias gather widened back to 64-bit index
/// lanes, and an unsigned 64-bit mask compare for the keep test -- no
/// sign-flip tricks needed.
NB_TGT_AVX512 inline __m512i pick8(__m512i slot, __m512i u, const std::uint64_t* thresh,
                                   const bin_index* alias) {
  const __m512i th = _mm512_i64gather_epi64(slot, reinterpret_cast<const void*>(thresh), 8);
  const __m256i al32 = _mm512_i64gather_epi32(slot, reinterpret_cast<const void*>(alias), 4);
  const __mmask8 keep = _mm512_cmplt_epu64_mask(u, th);
  return _mm512_mask_blend_epi64(keep, _mm512_cvtepu32_epi64(al32), slot);
}

NB_TGT_AVX512 void fill_alias_avx512_impl(lane_soa& st, bin_count n, std::uint64_t threshold,
                                          const std::uint8_t* snap, const std::uint64_t* thresh,
                                          const bin_index* alias, std::uint32_t* chosen,
                                          std::size_t balls) {
  const std::size_t lanes = st.lanes;
  const std::size_t vec_lanes = lanes - lanes % 8;
  const auto bound64 = static_cast<std::uint64_t>(n);
  const __m512i bound = _mm512_set1_epi64(static_cast<long long>(bound64));
  const __m512i thr = _mm512_set1_epi64(static_cast<long long>(threshold));

  std::size_t t = 0;
  while (t + lanes <= balls) {
    for (std::size_t lane0 = 0; lane0 < vec_lanes; lane0 += 8) {
      __m512i s0 = _mm512_load_si512(st.s0.data() + lane0);
      __m512i s1 = _mm512_load_si512(st.s1.data() + lane0);
      __m512i s2 = _mm512_load_si512(st.s2.data() + lane0);
      __m512i s3 = _mm512_load_si512(st.s3.data() + lane0);
      const __m512i a = xo_step(s0, s1, s2, s3);   // slot 1
      const __m512i u1 = xo_step(s0, s1, s2, s3);  // keep/alias test 1
      const __m512i b = xo_step(s0, s1, s2, s3);   // slot 2
      const __m512i u2 = xo_step(s0, s1, s2, s3);  // keep/alias test 2
      const __m512i c = xo_step(s0, s1, s2, s3);   // tie bit
      _mm512_store_si512(st.s0.data() + lane0, s0);
      _mm512_store_si512(st.s1.data() + lane0, s1);
      _mm512_store_si512(st.s2.data() + lane0, s2);
      _mm512_store_si512(st.s3.data() + lane0, s3);

      __m512i sl1;
      __m512i sl2;
      __m512i low_a;
      __m512i low_b;
      lemire8(a, bound, sl1, low_a);
      lemire8(b, bound, sl2, low_b);
      const __mmask8 rej =
          _mm512_cmplt_epu64_mask(low_a, thr) | _mm512_cmplt_epu64_mask(low_b, thr);

      // Unconditional vector compute: even a rejected slot candidate is
      // < bound, so the table and snapshot gathers stay in-bounds.
      const __m512i i1 = pick8(sl1, u1, thresh, alias);
      const __m512i i2 = pick8(sl2, u2, thresh, alias);
      const __m256i ch = select8(i1, i2, c, snap);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(chosen + t + lane0), ch);

      if (rej != 0) [[unlikely]] {  // masked replay: rejected lanes only
        alignas(64) std::uint64_t q[5][8];
        _mm512_store_si512(q[0], a);
        _mm512_store_si512(q[1], u1);
        _mm512_store_si512(q[2], b);
        _mm512_store_si512(q[3], u2);
        _mm512_store_si512(q[4], c);
        for (std::size_t l = 0; l < 8; ++l) {
          if (((rej >> l) & 1u) == 0) continue;
          const std::uint64_t queue[5] = {q[0][l], q[1][l], q[2][l], q[3][l], q[4][l]};
          chosen[t + lane0 + l] =
              replay_ball_alias(st, lane0 + l, bound64, threshold, snap, thresh, alias, queue, 5);
        }
      }
    }
    for (std::size_t l = vec_lanes; l < lanes; ++l) {
      chosen[t + l] = replay_ball_alias(st, l, bound64, threshold, snap, thresh, alias, nullptr, 0);
    }
    t += lanes;
  }
  for (std::size_t l = 0; t < balls; ++l, ++t) {
    chosen[t] = replay_ball_alias(st, l, bound64, threshold, snap, thresh, alias, nullptr, 0);
  }
}

}  // namespace

void fill_avx512(lane_soa& st, bin_count n, std::uint64_t threshold, const std::uint8_t* snap,
                 std::uint32_t* chosen, std::size_t balls, kernel_tuning tune) {
  fill_avx512_impl(st, n, threshold, snap, chosen, balls, tune.interleave);
}

void fill_pair_avx512(lane_soa& st, std::uint64_t b1, std::uint64_t t1, std::uint64_t b2,
                      std::uint64_t t2, std::uint32_t* out1, std::uint32_t* out2,
                      std::size_t count, kernel_tuning /*tune*/) {
  fill_pair_avx512_impl(st, b1, t1, b2, t2, out1, out2, count);
}

void fill_alias_avx512(lane_soa& st, bin_count n, std::uint64_t threshold,
                       const std::uint8_t* snap, const std::uint64_t* thresh,
                       const bin_index* alias, std::uint32_t* chosen, std::size_t balls,
                       kernel_tuning /*tune*/) {
  fill_alias_avx512_impl(st, n, threshold, snap, thresh, alias, chosen, balls);
}

}  // namespace nb::kernel_detail

#endif  // x86
