// The central state of every balls-into-bins process: the load vector x^t.
//
// Paper notation (Section 3): after t allocations the load vector is
// x^t = (x^t_1 .. x^t_n); the normalized load is y^t_i = x^t_i - t/n sorted
// non-increasingly, and Gap(t) = max_i x^t_i - t/n = y^t_1.
//
// Generalized model (PR 5): a ball may deposit an integer *weight* w >= 1
// instead of 1, so levels are weight-based -- level L holds the bins whose
// accumulated weight is exactly L -- and "average load" means total weight
// over n.  Per-bin loads stay 32-bit (they are the hot random-access
// structures; the weighted deposit guards them against overflow), while
// every total accumulates in 64-bit weight_t.  The unit-weight
// configuration keeps every historical identity (level == ball count,
// total weight == balls) bit for bit.
//
// The hot loop only ever calls allocate().  A level-compressed companion
// index (`level_index`) counts how many bins sit at each load level and is
// maintained incrementally, so min/max load are O(1) and the sorted
// normalized vector / overloaded-bin count are O(span) resp. O(n) with no
// sorting, where span = max - min load (O(log n) for every process the
// paper studies).  Weighted allocations can blow the span up (one
// heavy-tailed draw may jump a bin thousands of levels); past
// level_index::max_dense_span the dense index stops paying for itself and
// load_state degrades those queries to explicit scans/sorts over the raw
// loads -- exact, just no longer sort-free.  Unit-weight runs never come
// near the cap, so the paper path keeps the O(1)/O(span) queries.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "common/types.hpp"

namespace nb {

/// Level-compressed summary of a load vector: for each load level L in
/// [min_level, max_level], how many bins currently hold weight exactly L.
///
/// Invariants (checked by tests against from-scratch recomputation):
///   * sum of counts == n,
///   * count_at(min_level) > 0 and count_at(max_level) > 0,
///   * allocations move a bin up (one level per unit weight, w levels per
///     weighted ball) and releases move it down by the released weight.
///
/// Storage is a dense window [base_, base_ + counts_.size()) of levels;
/// empty levels below the minimum are trimmed amortized-O(1), so memory is
/// O(max - min) rather than O(max).  The dense window is capped at
/// max_dense_span levels: a weighted jump or rebuild whose span would
/// exceed the cap reports failure instead of allocating, and the owning
/// load_state falls back to scan-based queries.
class level_index {
 public:
  /// Widest dense window the index will hold (4 MiB of counts).  Paper
  /// processes have spans of O(log n); only heavy-tailed weighted runs can
  /// cross this.
  static constexpr load_t max_dense_span = load_t{1} << 20;

  level_index() = default;

  /// All n bins at level 0.
  explicit level_index(bin_count n) { reset(n); }

  void reset(bin_count n) {
    counts_.assign(1, n);
    counts_.reserve(64);
    base_ = 0;
    min_ = 0;
    max_ = 0;
    n_ = n;
  }

  /// A bin moves from level `old_load` to `old_load + 1`.  Hot path.
  void on_allocate(load_t old_load) noexcept {
    const auto idx = static_cast<std::size_t>(old_load - base_);
    NB_ASSERT(idx < counts_.size() && counts_[idx] > 0);
    --counts_[idx];
    if (idx + 1 == counts_.size()) counts_.push_back(0);
    ++counts_[idx + 1];
    const load_t updated = old_load + 1;
    if (updated > max_) max_ = updated;
    if (old_load == min_ && counts_[idx] == 0) {
      ++min_;
      trim_front();
    }
  }

  /// Weighted jump: a bin moves from level `old_load` to `old_load + w`.
  /// Returns false -- leaving the index UNCHANGED and no longer
  /// maintainable -- when the resulting span would exceed max_dense_span;
  /// the caller must then stop incremental maintenance and fall back to
  /// scans until a rebuild brings the span back under the cap.
  [[nodiscard]] bool on_allocate(load_t old_load, weight_t w) {
    NB_ASSERT(w >= 1);
    const weight_t updated_wide = static_cast<weight_t>(old_load) + w;
    if (updated_wide - static_cast<weight_t>(min_) > static_cast<weight_t>(max_dense_span)) {
      return false;
    }
    const auto updated = static_cast<load_t>(updated_wide);
    const auto idx = static_cast<std::size_t>(old_load - base_);
    NB_ASSERT(idx < counts_.size() && counts_[idx] > 0);
    const auto target = static_cast<std::size_t>(updated - base_);
    if (target >= counts_.size()) counts_.resize(target + 1, 0);
    --counts_[idx];
    ++counts_[target];
    if (updated > max_) max_ = updated;
    if (old_load == min_ && counts_[idx] == 0) {
      while (counts_[static_cast<std::size_t>(min_ - base_)] == 0) ++min_;
      trim_front();
    }
    return true;
  }

  /// Weighted drop: a bin moves from level `old_load` down to
  /// `old_load - w` (the symmetric counterpart of the weighted
  /// on_allocate, for departures).  Returns false -- leaving the index
  /// UNCHANGED and no longer maintainable -- when the resulting span would
  /// exceed max_dense_span; the caller falls back to scan-based queries
  /// exactly as for an oversized upward jump.  The dense window grows
  /// downward on demand (with slack, so a minimum walking down one level
  /// per release stays amortized O(1)): before churn, levels only ever
  /// moved up, so the window never needed room below base_.
  [[nodiscard]] bool on_release(load_t old_load, weight_t w) {
    NB_ASSERT(w >= 1 && static_cast<weight_t>(old_load) >= w);
    const auto target = static_cast<load_t>(static_cast<weight_t>(old_load) - w);
    if (static_cast<weight_t>(max_) - static_cast<weight_t>(target) >
        static_cast<weight_t>(max_dense_span)) {
      return false;
    }
    if (target < base_) {
      const load_t new_base = target >= 64 ? target - 64 : 0;
      counts_.insert(counts_.begin(), static_cast<std::size_t>(base_ - new_base), 0);
      base_ = new_base;
    }
    const auto idx = static_cast<std::size_t>(old_load - base_);
    NB_ASSERT(idx < counts_.size() && counts_[idx] > 0);
    --counts_[idx];
    ++counts_[static_cast<std::size_t>(target - base_)];
    if (target < min_) min_ = target;
    if (old_load == max_ && counts_[idx] == 0) {
      // The released bin now sits at target >= min_, so the walk stops at
      // a non-empty level without an explicit min_ guard.
      while (counts_[static_cast<std::size_t>(max_ - base_)] == 0) --max_;
    }
    return true;
  }

  /// From-scratch recomputation, used to reconcile after a bulk window in
  /// which per-allocation maintenance was deferred.  O(n + span); yields a
  /// state query-identical to incremental maintenance of the same loads.
  /// Returns false (index unusable) when the span exceeds max_dense_span.
  [[nodiscard]] bool rebuild(const std::vector<load_t>& loads) {
    load_t mn = loads.front();
    load_t mx = loads.front();
    for (const load_t x : loads) {
      if (x < mn) mn = x;
      if (x > mx) mx = x;
    }
    if (mx - mn > max_dense_span) return false;
    base_ = mn;
    min_ = mn;
    max_ = mx;
    n_ = static_cast<bin_count>(loads.size());
    counts_.assign(static_cast<std::size_t>(mx - mn) + 1, 0);
    for (const load_t x : loads) ++counts_[static_cast<std::size_t>(x - mn)];
    return true;
  }

  [[nodiscard]] load_t min_level() const noexcept { return min_; }
  [[nodiscard]] load_t max_level() const noexcept { return max_; }
  [[nodiscard]] bin_count bins() const noexcept { return n_; }

  /// Number of distinct levels in [min, max] (the "span" + 1).
  [[nodiscard]] load_t level_count() const noexcept { return max_ - min_ + 1; }

  /// Bins with exactly `level` balls.  O(1).
  [[nodiscard]] bin_count count_at(load_t level) const noexcept {
    if (level < min_ || level > max_) return 0;
    return counts_[static_cast<std::size_t>(level - base_)];
  }

  /// Bins with at least `level` balls.  O(span).
  [[nodiscard]] bin_count count_at_or_above(load_t level) const noexcept {
    if (level <= min_) return n_;
    bin_count total = 0;
    for (load_t l = level; l <= max_; ++l) total += count_at(l);
    return total;
  }

  /// Calls f(level, count) for every non-empty level, highest level first.
  template <typename F>
  void for_each_level_desc(F&& f) const {
    for (load_t l = max_; l >= min_; --l) {
      const bin_count c = count_at(l);
      if (c > 0) f(l, c);
    }
  }

 private:
  void trim_front() {
    // Drop levels strictly below the minimum once they dominate the window;
    // the O(size) erase is amortized O(1) per minimum advance.
    const auto dead = static_cast<std::size_t>(min_ - base_);
    if (dead >= 64 && dead * 2 >= counts_.size()) {
      counts_.erase(counts_.begin(), counts_.begin() + static_cast<std::ptrdiff_t>(dead));
      base_ = min_;
    }
  }

  std::vector<bin_count> counts_;  ///< counts_[k] = bins at level base_ + k
  load_t base_ = 0;
  load_t min_ = 0;
  load_t max_ = 0;
  bin_count n_ = 0;
};

/// Compact 8-bit view of a frozen load vector: off(i) = loads[i] - base
/// with base = min load.  Valid whenever the span max - min fits in 255,
/// which is the paper regime by a huge margin -- Gap(m) + underload gap is
/// O(log n) w.h.p. for every process studied.  Load *comparisons* against
/// the snapshot only need the offsets (common base), and n = 10^6 bins
/// shrink from 4 MB to 1 MB, so an entire b-Batch window snapshot stays
/// L2-resident while shards hammer it with random reads.
class compact_snapshot {
 public:
  /// Zero bytes kept readable past the last offset so the allocation
  /// kernel's vector backends may gather 4 bytes at any valid bin index.
  static constexpr std::size_t tail_padding = 3;

  /// Rebuilds from `loads`.  O(n).  Returns false (and marks the snapshot
  /// unusable) when the span exceeds 255; callers must then fall back to
  /// the full-width loads.
  bool assign(const std::vector<load_t>& loads);

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] load_t base() const noexcept { return base_; }
  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] const std::uint8_t* data() const noexcept { return off_.data(); }
  [[nodiscard]] std::uint8_t off(bin_index i) const noexcept { return off_[i]; }
  /// Largest offset (= span of the frozen loads).  The departure kernel's
  /// random channel uses base() + max_off() as its frozen acceptance bound.
  [[nodiscard]] std::uint8_t max_off() const noexcept { return span_; }

 private:
  std::vector<std::uint8_t> off_;  ///< n_ offsets + tail_padding zero bytes
  /// Buffer the last huge-page advice was issued for: assign() re-advises
  /// only when the storage actually moved, not once per window.
  const std::uint8_t* advised_ = nullptr;
  std::size_t n_ = 0;
  load_t base_ = 0;
  std::uint8_t span_ = 0;
  bool ok_ = false;
};

/// Per-shard bin-increment accumulators for one parallel window.  Shard s
/// writes only row s (rows are disjoint, so no synchronization), and
/// sum_rows() folds the rows in fixed shard-index order -- the merged
/// increments depend only on the shard count, never on which thread ran
/// which shard or in what order shards finished.
///
/// Rows are 16-bit to halve the clear + merge memory traffic (the dominant
/// per-shard overhead at n = 10^6); a row counter is safe as long as one
/// shard feeds at most max_row_count balls into one bin, which the engine
/// guarantees by capping parallel windows at shards * max_row_count balls.
///
/// Rows are laid out with a padded, cache-line-aligned stride: row s
/// starts at a row_align_bytes boundary and the stride rounds n up to a
/// whole number of lines, so the last counters of row s and the first
/// counters of row s+1 never share a line.  Without the padding, two
/// shards hammering their row edges ping-pong the shared line on every
/// increment -- textbook false sharing, and at small n (tests, smoke
/// benches) the edges are most of the row.  Layout is internal: the
/// row()/sum_rows() API and the merged result are unchanged.
class shard_deltas {
 public:
  /// Worst-case balls one shard may route to a single bin in one window.
  static constexpr step_count max_row_count = 65535;

  /// Destructive-interference unit rows are padded and aligned to.  A
  /// build-time constant 64 rather than
  /// std::hardware_destructive_interference_size: that trait is a
  /// compile-target guess anyway (GCC warns on any ABI-sensitive use),
  /// and 64 is the line size of every x86/ARM target we build for.
  static constexpr std::size_t row_align_bytes = 64;

  /// Sets the geometry and zeroes every row.  Reuses storage when the
  /// geometry is unchanged.
  void reset(std::size_t shards, bin_count n);

  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }
  [[nodiscard]] bin_count bins() const noexcept { return n_; }
  /// Entries from row(s) to row(s) + bins() are shard s's counters; the
  /// padding entries beyond bins() (up to row_stride()) are zero and
  /// never read.
  [[nodiscard]] std::uint16_t* row(std::size_t s) noexcept {
    NB_ASSERT(s < shards_);
    return counts_.data() + base_ + s * stride_;
  }
  [[nodiscard]] const std::uint16_t* row(std::size_t s) const noexcept {
    NB_ASSERT(s < shards_);
    return counts_.data() + base_ + s * stride_;
  }

  /// Row-to-row distance in entries (n rounded up to whole cache lines).
  [[nodiscard]] std::size_t row_stride() const noexcept { return stride_; }

  /// Zeroes row s's counters.  Rows are disjoint, so distinct rows may be
  /// cleared concurrently (and concurrently with reads of other rows).
  void clear_row(std::size_t s) noexcept {
    std::uint16_t* r = row(s);
    for (bin_count i = 0; i < n_; ++i) r[i] = 0;
  }

  /// out[i] = sum over shards (in shard order) of row(s)[i], for the bin
  /// range [lo, hi).  Disjoint ranges may be summed concurrently.
  void sum_rows(std::vector<std::uint32_t>& out, bin_index lo, bin_index hi) const;

  /// Whole-vector convenience overload (resizes `out` to n).
  void sum_rows(std::vector<std::uint32_t>& out) const;

 private:
  std::vector<std::uint16_t> counts_;  ///< base_ skew + shards_ padded rows
  std::size_t base_ = 0;    ///< entries before row 0 (aligns it to a line)
  std::size_t stride_ = 0;  ///< entries between consecutive rows
  std::size_t shards_ = 0;
  bin_count n_ = 0;
};

class load_state {
 public:
  /// Creates n empty bins.  n must be at least 1.
  explicit load_state(bin_count n);

  /// Removes all balls (keeps n).
  void reset();

  [[nodiscard]] bin_count n() const noexcept { return static_cast<bin_count>(loads_.size()); }
  /// Number of allocation events (balls placed), regardless of weight.
  [[nodiscard]] step_count balls() const noexcept { return balls_; }
  /// Accumulated weight of all placed balls; == balls() for unit weights.
  [[nodiscard]] weight_t total_weight() const noexcept { return balls_ + extra_weight_; }
  [[nodiscard]] load_t load(bin_index i) const noexcept { return loads_[i]; }
  [[nodiscard]] const std::vector<load_t>& loads() const noexcept { return loads_; }

  /// Adds one unit-weight ball to bin i.  Hot path: no bounds check beyond
  /// debug assert.  Inside a bulk window the level index is not touched
  /// (one well-predicted branch); outside it every allocation leaves the
  /// index query-consistent.
  void allocate(bin_index i) noexcept {
    NB_ASSERT(i < loads_.size());
    const load_t old_load = loads_[i]++;
    if (!bulk_ && levels_ok_) levels_.on_allocate(old_load);
    ++balls_;
    // One predicted-not-taken branch when the lease channel is off; with
    // it on, recording may grow the ring inside this noexcept hot path
    // (terminate on OOM -- same stance as the level push above).
    if (lease_on_) lease_push(i, 1);
  }

  /// Adds one ball of weight w to bin i.  Weighted path: guards the
  /// 32-bit per-bin load AND the int64 total-weight accumulator against
  /// overflow -- the regression surface once weights replace unit
  /// increments -- and keeps the level index dense while the span allows
  /// it, degrading to scan-based queries past level_index::max_dense_span.
  void allocate(bin_index i, weight_t w) {
    NB_ASSERT(i < loads_.size());
    NB_REQUIRE(w >= 1 && w <= max_ball_weight, "ball weight must be in [1, max_ball_weight]");
    NB_REQUIRE(static_cast<weight_t>(loads_[i]) + w <=
                   static_cast<weight_t>(std::numeric_limits<load_t>::max()),
               "deposit of weight " + std::to_string(w) + " would overflow bin " +
                   std::to_string(i) + "'s 32-bit load (currently " +
                   std::to_string(loads_[i]) + ")");
    NB_REQUIRE(total_weight() <= max_total_weight - w,
               "run would overflow the total-weight accumulator (max_total_weight)");
    const load_t old_load = loads_[i];
    loads_[i] += static_cast<load_t>(w);
    if (!bulk_ && levels_ok_) levels_ok_ = levels_.on_allocate(old_load, w);
    ++balls_;
    extra_weight_ += w - 1;
    if (lease_on_) lease_push(i, w);
  }

  /// Removes one unit-weight ball from bin i (a departure).  The
  /// underflow-guarded mirror of allocate(i).
  void release(bin_index i) { release(i, 1); }

  /// Removes weight w from bin i: one departing ball of weight w (the
  /// lease channel replays the recorded arrival weight), or w = 1 for the
  /// unit-quantum channels (random, drain).  Mirrors the weighted
  /// allocate's guards with the signs flipped: the bin must hold at least
  /// w, a ball must be resident, and the extra-weight accumulator must
  /// cover w - 1, so the loads-vs-totals invariant (sum of loads == balls
  /// + extra weight) survives every departure.  Level-index maintenance
  /// degrades to scans past max_dense_span exactly like allocation.  Not
  /// valid inside a bulk window (departures are never bulk-deferred).
  void release(bin_index i, weight_t w) {
    NB_ASSERT(i < loads_.size());
    NB_ASSERT(!bulk_);
    NB_REQUIRE(w >= 1 && w <= max_ball_weight, "ball weight must be in [1, max_ball_weight]");
    NB_REQUIRE(static_cast<weight_t>(loads_[i]) >= w,
               "release of weight " + std::to_string(w) + " would underflow bin " +
                   std::to_string(i) + " (currently " + std::to_string(loads_[i]) + ")");
    NB_REQUIRE(balls_ >= 1, "release with no resident balls");
    NB_REQUIRE(extra_weight_ >= w - 1,
               "release of weight " + std::to_string(w) +
                   " from bin " + std::to_string(i) +
                   " exceeds the resident extra weight (" +
                   std::to_string(extra_weight_) + ")");
    const load_t old_load = loads_[i];
    loads_[i] -= static_cast<load_t>(w);
    if (levels_ok_) levels_ok_ = levels_.on_release(old_load, w);
    --balls_;
    extra_weight_ -= w - 1;
  }

  /// RAII bulk window: while open, allocate() skips the per-ball level
  /// maintenance; on close the index is rebuilt once from the raw loads
  /// (O(n + span), amortized over the chunk).  Engages only when the
  /// planned chunk is large enough for the rebuild to amortize; otherwise
  /// it is a no-op and allocations stay incrementally indexed.  Level-
  /// dependent queries (min/max load, gap, levels()) are stale while a
  /// window is open, so step_many implementations must not read them
  /// mid-chunk -- every strategy only consumes load()/balls()/
  /// average_load(), which stay exact.
  class bulk_window {
   public:
    bulk_window(load_state& state, step_count planned_count) noexcept
        : state_(planned_count * 4 >= static_cast<step_count>(state.n()) ? &state : nullptr) {
      if (state_ != nullptr) state_->begin_bulk();
    }
    ~bulk_window() {
      if (state_ != nullptr) state_->end_bulk();
    }
    bulk_window(const bulk_window&) = delete;
    bulk_window& operator=(const bulk_window&) = delete;

   private:
    load_state* state_;
  };

  /// Applies a merged parallel-window delta: loads_[i] += add[i] *
  /// weight_per_ball for every bin and balls_ += sum(add), then rebuilds
  /// the level index once (O(n + span)).  The resulting state is
  /// query-identical to having allocated the same balls one at a time.
  /// `add` must have size n; must not be called inside a bulk window.
  /// weight_per_ball covers the deterministic weightings the frozen-window
  /// engines support (unit and fixed); RNG-driven weights never reach this
  /// path (the engines fall back to the serial fused loop).
  void apply_increments(const std::vector<std::uint32_t>& add, weight_t weight_per_ball = 1);

  /// Signed generalization for churn windows: loads_[i] += delta[i]
  /// (weight units, may be negative) and balls_ += ball_delta, validated
  /// BEFORE any mutation (strong exception safety): no bin may go
  /// negative, ball and extra-weight totals must stay non-negative, and
  /// the total-weight ceiling still applies.  Rebuilds the level index
  /// once, like the unsigned path.  Refuses under lease tracking (a merged
  /// signed window cannot say *which* resident balls departed).
  void apply_increments(const std::vector<std::int64_t>& delta, step_count ball_delta);

  /// Applies a merged departure block: k departing balls, rel[i] of them
  /// leaving bin i, each retiring weight_per_ball.  The signed mirror of
  /// the unsigned apply_increments, validated BEFORE any mutation (strong
  /// exception safety) with the same contract-error vocabulary as
  /// release(i, w): no bin may underflow, a ball must be resident for each
  /// departure, and the extra-weight accumulator must cover the retired
  /// weight.  Rebuilds the level index once.  Refuses under lease tracking
  /// (a merged block cannot say *which* resident balls departed; the lease
  /// channel expires per-ball through release_oldest()).
  void apply_releases(const std::vector<std::uint32_t>& rel, weight_t weight_per_ball,
                      step_count k);

  /// ------------------------------------------------------------------
  /// FIFO lease ring (the "lease" departure channel): while tracking is
  /// on, every allocation appends its (bin, weight) and release_oldest()
  /// expires the front entry -- first in, first out, like connections
  /// timing out in arrival order.  Entries pack into one u64 (weight in
  /// the high bits; max_ball_weight fits in 24), so residency costs 8
  /// bytes per ball.

  /// Switches lease recording on or off.  Enabling requires an empty
  /// state (past arrivals were not recorded); disabling drops the ring.
  void set_lease_tracking(bool on) {
    if (on == lease_on_) return;
    NB_REQUIRE(!on || balls_ == 0,
               "lease tracking must be enabled before the first arrival");
    lease_on_ = on;
    lease_slots_.clear();
    lease_head_ = 0;
    lease_count_ = 0;
  }
  [[nodiscard]] bool lease_tracking() const noexcept { return lease_on_; }
  /// Resident (recorded, not yet expired) balls in the lease ring.
  [[nodiscard]] step_count leased() const noexcept {
    return static_cast<step_count>(lease_count_);
  }

  /// Expires the oldest resident ball: releases its recorded weight from
  /// its recorded bin.  Requires lease tracking and a resident ball.
  void release_oldest() {
    NB_REQUIRE(lease_on_, "release_oldest requires lease tracking");
    NB_REQUIRE(lease_count_ > 0, "release_oldest with no resident leases");
    const std::uint64_t slot = lease_slots_[lease_head_];
    lease_head_ = (lease_head_ + 1) % lease_slots_.size();
    --lease_count_;
    release(static_cast<bin_index>(slot & 0xFFFFFFFFu), static_cast<weight_t>(slot >> 32));
  }

  /// O(1) while the level index is dense; O(n) scan in the wide-span
  /// weighted regime.
  [[nodiscard]] load_t max_load() const noexcept {
    if (levels_ok_) return levels_.max_level();
    load_t mx = loads_.front();
    for (const load_t x : loads_) {
      if (x > mx) mx = x;
    }
    return mx;
  }
  /// O(1) while the level index is dense; O(n) scan otherwise.
  [[nodiscard]] load_t min_load() const noexcept {
    if (levels_ok_) return levels_.min_level();
    load_t mn = loads_.front();
    for (const load_t x : loads_) {
      if (x < mn) mn = x;
    }
    return mn;
  }

  /// The level-compressed load distribution.  Only meaningful while
  /// levels_valid(); wide-span weighted runs must query the raw loads.
  [[nodiscard]] const level_index& levels() const noexcept { return levels_; }

  /// False once a weighted run's span outgrew level_index::max_dense_span
  /// (queries silently switch to exact scans; this is the probe for it).
  [[nodiscard]] bool levels_valid() const noexcept { return levels_ok_; }

  [[nodiscard]] double average_load() const noexcept {
    return static_cast<double>(total_weight()) / static_cast<double>(n());
  }

  /// Gap(t) = max_i x^t_i - W_t/n (W_t = total weight; == t for unit
  /// weights, the paper's definition).  Integer whenever n divides W_t.
  [[nodiscard]] double gap() const noexcept {
    return static_cast<double>(max_load()) - average_load();
  }

  /// "Underload gap": W_t/n - min_i x^t_i (used by the two-sided potentials).
  [[nodiscard]] double underload_gap() const noexcept {
    return average_load() - static_cast<double>(min_load());
  }

  /// y_i = x_i - W_t/n in bin-index order (not sorted).
  [[nodiscard]] std::vector<double> normalized() const;

  /// y_1 >= y_2 >= ... >= y_n, the paper's sorted normalized load vector.
  /// Emitted from the level index in O(n + span) -- no sort -- while the
  /// index is dense; wide-span weighted runs pay one explicit sort.
  [[nodiscard]] std::vector<double> sorted_normalized_desc() const;

  /// Number of overloaded bins |B+| = |{i : y_i >= 0}|.  O(span) via the
  /// level index while dense, O(n) scan otherwise.
  [[nodiscard]] bin_count overloaded_count() const noexcept;

  /// Serializes the full load state (raw loads + ball/weight totals, plus
  /// the lease ring in FIFO order when tracking is on -- residency is
  /// genuine mid-run state: dropping it would expire different balls after
  /// a restore).  The level index is NOT written: it is a pure function of
  /// the loads and
  /// restore() rebuilds it, which by construction yields a state
  /// query-identical to incremental maintenance (same contract as
  /// end_bulk()).  Must not be called inside a bulk window.
  void save(state_writer& w) const;

  /// Inverse of save().  Validates bin count, non-negative loads and the
  /// loads-vs-totals consistency sum before touching *this; throws
  /// contract_error on any mismatch.
  void restore(state_reader& r);

 private:
  void begin_bulk() noexcept {
    NB_ASSERT(!bulk_);
    bulk_ = true;
  }
  void end_bulk() {
    bulk_ = false;
    levels_ok_ = levels_.rebuild(loads_);
  }

  /// Appends one resident ball to the lease ring, growing (with FIFO
  /// relinearization) when full.
  void lease_push(bin_index i, weight_t w) {
    NB_ASSERT(w >= 1 && w <= max_ball_weight);
    if (lease_count_ == lease_slots_.size()) {
      std::vector<std::uint64_t> grown(std::max<std::size_t>(lease_slots_.size() * 2, 1024));
      for (std::size_t k = 0; k < lease_count_; ++k) {
        grown[k] = lease_slots_[(lease_head_ + k) % lease_slots_.size()];
      }
      lease_slots_ = std::move(grown);
      lease_head_ = 0;
    }
    lease_slots_[(lease_head_ + lease_count_) % lease_slots_.size()] =
        static_cast<std::uint64_t>(w) << 32 | i;
    ++lease_count_;
  }

  std::vector<load_t> loads_;
  level_index levels_;
  step_count balls_ = 0;
  weight_t extra_weight_ = 0;  ///< total_weight() - balls(): 0 for unit runs
  bool bulk_ = false;
  bool levels_ok_ = true;
  /// Lease ring storage: a circular buffer of packed (weight << 32 | bin)
  /// entries, [head_, head_ + count_) mod size.
  std::vector<std::uint64_t> lease_slots_;
  std::size_t lease_head_ = 0;
  std::size_t lease_count_ = 0;
  bool lease_on_ = false;
};

}  // namespace nb
