// The central state of every balls-into-bins process: the load vector x^t.
//
// Paper notation (Section 3): after t allocations the load vector is
// x^t = (x^t_1 .. x^t_n); the normalized load is y^t_i = x^t_i - t/n sorted
// non-increasingly, and Gap(t) = max_i x^t_i - t/n = y^t_1.
//
// The hot loop only ever calls allocate(); max load is maintained
// incrementally (it is non-decreasing under insertions), everything else is
// computed on demand at observation points.
#pragma once

#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace nb {

class load_state {
 public:
  /// Creates n empty bins.  n must be at least 1.
  explicit load_state(bin_count n);

  /// Removes all balls (keeps n).
  void reset();

  [[nodiscard]] bin_count n() const noexcept { return static_cast<bin_count>(loads_.size()); }
  [[nodiscard]] step_count balls() const noexcept { return balls_; }
  [[nodiscard]] load_t load(bin_index i) const noexcept { return loads_[i]; }
  [[nodiscard]] const std::vector<load_t>& loads() const noexcept { return loads_; }

  /// Adds one ball to bin i.  Hot path: no bounds check beyond debug assert.
  void allocate(bin_index i) noexcept {
    NB_ASSERT(i < loads_.size());
    const load_t updated = ++loads_[i];
    if (updated > max_load_) max_load_ = updated;
    ++balls_;
  }

  [[nodiscard]] load_t max_load() const noexcept { return max_load_; }
  /// O(n) scan (max is tracked incrementally, min cannot be).
  [[nodiscard]] load_t min_load() const noexcept;

  [[nodiscard]] double average_load() const noexcept {
    return static_cast<double>(balls_) / static_cast<double>(n());
  }

  /// Gap(t) = max_i x^t_i - t/n.  Integer whenever n divides t.
  [[nodiscard]] double gap() const noexcept {
    return static_cast<double>(max_load_) - average_load();
  }

  /// "Underload gap": t/n - min_i x^t_i (used by the two-sided potentials).
  [[nodiscard]] double underload_gap() const noexcept {
    return average_load() - static_cast<double>(min_load());
  }

  /// y_i = x_i - t/n in bin-index order (not sorted).
  [[nodiscard]] std::vector<double> normalized() const;

  /// y_1 >= y_2 >= ... >= y_n, the paper's sorted normalized load vector.
  [[nodiscard]] std::vector<double> sorted_normalized_desc() const;

  /// Number of overloaded bins |B+| = |{i : y_i >= 0}|.
  [[nodiscard]] bin_count overloaded_count() const noexcept;

 private:
  std::vector<load_t> loads_;
  load_t max_load_ = 0;
  step_count balls_ = 0;
};

}  // namespace nb
