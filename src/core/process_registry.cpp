#include "core/process_registry.hpp"

#include <cmath>

#include "core/basic_processes.hpp"
#include "core/noise/adv_comp.hpp"
#include "core/noise/adv_load.hpp"
#include "core/noise/batch.hpp"
#include "core/noise/delay.hpp"
#include "core/noise/noisy_comp.hpp"
#include "core/noise/thinning.hpp"

namespace nb {

namespace {
load_t as_load(double param) {
  NB_REQUIRE(param >= 0.0 && param == std::floor(param), "parameter must be a non-negative integer");
  return static_cast<load_t>(param);
}
step_count as_steps(double param) {
  NB_REQUIRE(param >= 1.0 && param == std::floor(param), "parameter must be a positive integer");
  return static_cast<step_count>(param);
}
}  // namespace

namespace {

any_process build_process(const process_spec& spec);

/// Applies the spec's allocation model to a freshly built process.  The
/// default unit/uniform spec is a no-op, so registry behavior (and every
/// historical golden test) is untouched unless a model is asked for.
any_process with_model(any_process process, const process_spec& spec) {
  if (spec.weighting != "unit" || spec.sampler != "uniform" || spec.departures != "none") {
    process.set_model(
        make_model(spec.weighting, spec.sampler, process.state().n(), spec.departures));
  }
  return process;
}

}  // namespace

any_process make_process(const process_spec& spec) {
  return with_model(build_process(spec), spec);
}

namespace {

any_process build_process(const process_spec& spec) {
  const bin_count n = spec.n;
  NB_REQUIRE(n >= 1, "process spec needs n >= 1");
  const std::string& kind = spec.kind;
  const double p = spec.param;

  if (kind == "one-choice") return one_choice(n);
  if (kind == "two-choice") return two_choice(n);
  if (kind == "d-choice") return d_choice(n, static_cast<int>(as_steps(p)));
  if (kind == "one-plus-beta") return one_plus_beta(n, p);
  if (kind == "g-bounded") return g_bounded(n, as_load(p));
  if (kind == "g-myopic") return g_myopic_comp(n, as_load(p));
  if (kind == "g-adv-boost") return g_adv_comp<overload_booster>(n, as_load(p));
  if (kind == "g-adv-index") return g_adv_comp<index_bias>(n, as_load(p));
  if (kind == "g-adv-correct") return g_adv_comp<always_correct>(n, as_load(p));
  if (kind == "g-adv-load") return g_adv_load<inverting_estimates>(n, as_load(p));
  if (kind == "g-adv-load-uniform") return g_adv_load<uniform_noise_estimates>(n, as_load(p));
  if (kind == "sigma-noisy-load") return sigma_noisy_load(n, rho_gaussian(p));
  if (kind == "sigma-noisy-gauss") return sigma_noisy_load_gaussian(n, p);
  if (kind == "b-batch") return b_batch(n, as_steps(p));
  if (kind == "tau-delay") return tau_delay<delay_adversarial>(n, as_steps(p));
  if (kind == "tau-delay-oldest") return tau_delay<delay_oldest>(n, as_steps(p));
  if (kind == "tau-delay-random") return tau_delay<delay_random>(n, as_steps(p));
  if (kind == "mean-thinning") return mean_thinning(n, as_load(p));
  if (kind == "noisy-mean-thinning") return noisy_mean_thinning<thinning_greedy>(n, as_load(p));
  if (kind == "noisy-mean-thinning-myopic") {
    return noisy_mean_thinning<thinning_random>(n, as_load(p));
  }
  if (kind == "noisy-one-plus-beta") return noisy_one_plus_beta<greedy_reverser>(n, 0.5, as_load(p));

  throw contract_error("unknown process kind: '" + kind + "'");
}

}  // namespace

std::vector<std::pair<std::string, std::string>> registered_process_kinds() {
  return {
      {"one-choice", "each ball into a uniformly random bin"},
      {"two-choice", "less loaded of two uniform samples (ties: coin)"},
      {"d-choice", "least loaded of param=d uniform samples"},
      {"one-plus-beta", "Two-Choice step w.p. param=beta, else One-Choice"},
      {"g-bounded", "g-Adv-Comp with the greedy reverser (param=g)"},
      {"g-myopic", "g-Adv-Comp with random decisions among close bins (param=g)"},
      {"g-adv-boost", "g-Adv-Comp reversing only onto overloaded bins (param=g)"},
      {"g-adv-index", "g-Adv-Comp biased to the smaller bin index (param=g)"},
      {"g-adv-correct", "g-Adv-Comp playing correctly (== Two-Choice; param=g)"},
      {"g-adv-load", "estimates perturbed adversarially within +/-g (param=g)"},
      {"g-adv-load-uniform", "estimates perturbed uniformly within +/-g (param=g)"},
      {"sigma-noisy-load", "Gaussian-tail comparison noise, Eq. 2.1 (param=sigma)"},
      {"sigma-noisy-gauss", "physical Gaussian perturbation of reports (param=sigma)"},
      {"b-batch", "loads refreshed every param=b balls (random ties)"},
      {"tau-delay", "adversarial sliding-window estimates (param=tau)"},
      {"tau-delay-oldest", "every report param=tau steps stale"},
      {"tau-delay-random", "uniform report from the sliding window (param=tau)"},
      {"mean-thinning", "place on sampled bin iff below average, else fresh bin (param=g noise, 0 = exact)"},
      {"noisy-mean-thinning", "mean-thinning with a greedy adversarial threshold test (param=g)"},
      {"noisy-mean-thinning-myopic", "mean-thinning with a random threshold test within +/-g (param=g)"},
      {"noisy-one-plus-beta", "(1+beta), beta=0.5, with a greedy g-band adversary (param=g)"},
  };
}

}  // namespace nb
