// Probabilistic noise settings (Section 2, "Probabilistic Noise").
//
// rho-Noisy-Comp: a non-decreasing function rho : N -> [0,1] gives the
// probability that a comparison between bins with absolute load difference
// delta is *correct*; an incorrect comparison sends the ball to the heavier
// bin.  delta = 0 is a tie and is resolved by a fair coin (correct and
// incorrect coincide).
//
// Named rho instances (Fig. 2.2): step functions recover g-Bounded and
// g-Myopic-Comp; constants recover One-Choice (1/2), Two-Choice (1) and
// (1+beta) ((1+beta)/2); the Gaussian tail rho(delta) = 1 - exp(-(delta/
// sigma)^2)/2 defines sigma-Noisy-Load (Eq. 2.1).
//
// sigma_noisy_load_gaussian is the "physical" form of the same process:
// each sampled bin reports x + sigma * N(0,1) (fresh, independent noise per
// sample) and the ball goes to the smaller report.  Eq. 2.1 is exactly this
// after re-scaling sigma by sqrt(2) and tightening the Gaussian tail, so
// the two agree up to that re-scaling (tested).
#pragma once

#include <cmath>
#include <string>

#include "core/process.hpp"

namespace nb {

/// rho(delta) = 1 - exp(-(delta/sigma)^2) / 2  (Eq. 2.1).
class rho_gaussian {
 public:
  explicit rho_gaussian(double sigma) : sigma_(sigma) {
    NB_REQUIRE(sigma > 0.0, "sigma must be positive");
  }
  [[nodiscard]] double operator()(load_t delta) const {
    const double z = static_cast<double>(delta) / sigma_;
    return 1.0 - 0.5 * std::exp(-z * z);
  }
  [[nodiscard]] std::string label() const { return "sigma-noisy-load[s=" + format(sigma_) + "]"; }
  [[nodiscard]] double sigma() const noexcept { return sigma_; }

 private:
  static std::string format(double v) {
    std::string s = std::to_string(v);
    // trim trailing zeros for readable names
    while (s.size() > 1 && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
    return s;
  }
  double sigma_;
};

/// rho == c for all delta > 0.
class rho_constant {
 public:
  explicit rho_constant(double c) : c_(c) {
    NB_REQUIRE(c >= 0.0 && c <= 1.0, "rho must be in [0,1]");
  }
  [[nodiscard]] double operator()(load_t /*delta*/) const { return c_; }
  [[nodiscard]] std::string label() const { return "rho-const[" + std::to_string(c_) + "]"; }

 private:
  double c_;
};

/// rho(delta) = low for delta <= g, 1 otherwise: low=0 is g-Bounded,
/// low=1/2 is g-Myopic-Comp (Fig. 2.2 a/b).
class rho_step {
 public:
  rho_step(load_t g, double low) : g_(g), low_(low) {
    NB_REQUIRE(g >= 0, "step threshold g must be non-negative");
    NB_REQUIRE(low >= 0.0 && low <= 1.0, "rho must be in [0,1]");
  }
  [[nodiscard]] double operator()(load_t delta) const { return delta <= g_ ? low_ : 1.0; }
  [[nodiscard]] std::string label() const {
    return "rho-step[g=" + std::to_string(g_) + ",lo=" + std::to_string(low_) + "]";
  }

 private:
  load_t g_;
  double low_;
};

template <typename Rho>
class rho_noisy_comp {
 public:
  rho_noisy_comp(bin_count n, Rho rho) : state_(n), rho_(std::move(rho)) {}

  void step(rng_t& rng) { step_one(rng, state_.n()); }

  /// Fused bulk loop: n and rho hoisted out of the per-ball path.
  void step_many(rng_t& rng, step_count count) {
    const bin_count n = state_.n();
    const load_state::bulk_window window(state_, count);
    for (step_count t = 0; t < count; ++t) step_one(rng, n);
  }

  [[nodiscard]] const load_state& state() const noexcept { return state_; }
  void reset() { state_.reset(); }
  [[nodiscard]] std::string name() const {
    return with_model_suffix(rho_.label(), model_);
  }
  [[nodiscard]] const Rho& rho() const noexcept { return rho_; }

  void set_model(alloc_model m) { install_model(state_, model_, std::move(m)); }
  [[nodiscard]] const alloc_model& model() const noexcept { return model_; }

  /// One departure event through the model's channel (see depart_ball).
  void depart(rng_t& rng) { depart_ball(state_, model_, rng); }
  /// Applies one engine-merged departure block (see apply_departure_block).
  void commit_departures(const std::vector<std::uint32_t>& rel, step_count k) {
    apply_departure_block(state_, model_, rel, k);
  }

  /// Checkpoint contract: rho is configuration, the load state is the only
  /// mutable member.
  void save_checkpoint(state_writer& w) const { state_.save(w); }
  void restore_checkpoint(state_reader& r) { state_.restore(r); }

 private:
  void step_one(rng_t& rng, bin_count n) {
    const bin_index i1 = model_.sampler.sample(rng, n);
    const bin_index i2 = model_.sampler.sample(rng, n);
    const load_t x1 = state_.load(i1);
    const load_t x2 = state_.load(i2);
    bin_index chosen;
    if (x1 == x2) {
      chosen = coin_flip(rng) ? i1 : i2;
    } else {
      const bin_index lighter = (x1 < x2) ? i1 : i2;
      const bin_index heavier = (x1 < x2) ? i2 : i1;
      const load_t delta = (x1 < x2) ? (x2 - x1) : (x1 - x2);
      chosen = bernoulli(rng, rho_(delta)) ? lighter : heavier;
    }
    deposit(state_, model_.weighting, chosen, rng);
  }

  load_state state_;
  alloc_model model_;
  Rho rho_;
};

/// sigma-Noisy-Load in the form the paper benchmarks (Eq. 2.1).
using sigma_noisy_load = rho_noisy_comp<rho_gaussian>;

/// sigma-Noisy-Load in the physical form: fresh Gaussian perturbation of
/// each sampled bin's reported load.
class sigma_noisy_load_gaussian {
 public:
  sigma_noisy_load_gaussian(bin_count n, double sigma) : state_(n), sigma_(sigma) {
    NB_REQUIRE(sigma >= 0.0, "sigma must be non-negative");
  }

  void step(rng_t& rng) { step_one(rng, state_.n()); }

  /// Fused bulk loop: n and sigma hoisted out of the per-ball path.
  void step_many(rng_t& rng, step_count count) {
    const bin_count n = state_.n();
    const load_state::bulk_window window(state_, count);
    for (step_count t = 0; t < count; ++t) step_one(rng, n);
  }

  [[nodiscard]] const load_state& state() const noexcept { return state_; }
  void reset() {
    state_.reset();
    gauss_.reset();
  }
  [[nodiscard]] std::string name() const {
    const std::string base = "sigma-noisy-gauss[s=" + std::to_string(sigma_) + "]";
    return with_model_suffix(base, model_);
  }
  [[nodiscard]] double sigma() const noexcept { return sigma_; }

  void set_model(alloc_model m) { install_model(state_, model_, std::move(m)); }
  [[nodiscard]] const alloc_model& model() const noexcept { return model_; }

  /// One departure event through the model's channel (see depart_ball).
  void depart(rng_t& rng) { depart_ball(state_, model_, rng); }
  /// Applies one engine-merged departure block (see apply_departure_block).
  void commit_departures(const std::vector<std::uint32_t>& rel, step_count k) {
    apply_departure_block(state_, model_, rel, k);
  }

  /// Checkpoint contract.  Box-Muller draws Gaussians in pairs, so the
  /// sampler's cached second half is genuine mid-stream state: dropping it
  /// would shift every later Gaussian draw by one.
  void save_checkpoint(state_writer& w) const {
    state_.save(w);
    w.put_bool(gauss_.has_cached());
    w.put_double(gauss_.cached_value());
  }
  void restore_checkpoint(state_reader& r) {
    state_.restore(r);
    const bool has_cached = r.get_bool();
    const double cached = r.get_double();
    gauss_.set_cache(has_cached, cached);
  }

 private:
  void step_one(rng_t& rng, bin_count n) {
    const bin_index i1 = model_.sampler.sample(rng, n);
    const bin_index i2 = model_.sampler.sample(rng, n);
    const double e1 = static_cast<double>(state_.load(i1)) + sigma_ * gauss_.next(rng);
    const double e2 = static_cast<double>(state_.load(i2)) + sigma_ * gauss_.next(rng);
    bin_index chosen;
    if (e1 < e2) {
      chosen = i1;
    } else if (e2 < e1) {
      chosen = i2;
    } else {
      chosen = coin_flip(rng) ? i1 : i2;  // probability-zero path for sigma>0
    }
    deposit(state_, model_.weighting, chosen, rng);
  }

  load_state state_;
  alloc_model model_;
  double sigma_;
  gaussian_sampler gauss_;
};

static_assert(allocation_process<sigma_noisy_load>);
static_assert(allocation_process<rho_noisy_comp<rho_constant>>);
static_assert(allocation_process<rho_noisy_comp<rho_step>>);
static_assert(allocation_process<sigma_noisy_load_gaussian>);
static_assert(modeled_process<sigma_noisy_load>);
static_assert(modeled_process<sigma_noisy_load_gaussian>);
static_assert(checkpointable_process<sigma_noisy_load>);
static_assert(checkpointable_process<rho_noisy_comp<rho_constant>>);
static_assert(checkpointable_process<rho_noisy_comp<rho_step>>);
static_assert(checkpointable_process<sigma_noisy_load_gaussian>);
static_assert(departable_process<sigma_noisy_load>);
static_assert(departable_process<sigma_noisy_load_gaussian>);

}  // namespace nb
