// Extension (the paper's Section 13 "future work"): noisy versions of two
// further allocation processes.
//
//   * Mean-Thinning: sample a bin i; if its load is below the current
//     average, place the ball there, otherwise place it in a *fresh*
//     uniformly random bin (no second comparison).  A Two-Thinning process
//     with the mean as threshold [LSS22 "Twinning and Thinning"].
//
//   * (1+beta): with probability beta take a Two-Choice step, otherwise a
//     One-Choice step [PTW15].
//
// Their noisy counterparts put the same g-band adversary of g-Adv-Comp on
// the decision each process makes:
//
//   * noisy_mean_thinning<S>: the overloaded/underloaded test against the
//     mean is adversarial whenever |x_i - t/n| <= g;
//   * noisy_one_plus_beta<S>: the Two-Choice comparison is adversarial
//     whenever |x_{i1} - x_{i2}| <= g (One-Choice steps have no
//     comparison to corrupt).
//
// Shipped threshold strategies mirror adversary.hpp: greedy (always takes
// the damaging branch), random (myopic) and correct.
#pragma once

#include <cmath>
#include <string>

#include "core/noise/adversary.hpp"
#include "core/process.hpp"

namespace nb {

/// Decision strategies for the thinning threshold test.  `keep_here` is
/// the returned convention: true = place the ball in the sampled bin i,
/// false = divert to a fresh random bin.
struct thinning_greedy {
  static constexpr const char* label = "noisy-mean-thinning-greedy";
  /// The damaging choice: keep the ball on an overloaded bin, divert it
  /// away from an underloaded one.
  bool keep_here(double delta, rng_t& /*rng*/) const { return delta >= 0.0; }
};

struct thinning_random {
  static constexpr const char* label = "noisy-mean-thinning-myopic";
  bool keep_here(double /*delta*/, rng_t& rng) const { return coin_flip(rng); }
};

struct thinning_correct {
  static constexpr const char* label = "noisy-mean-thinning-correct";
  bool keep_here(double delta, rng_t& /*rng*/) const { return delta < 0.0; }
};

/// Mean-Thinning with a g-band adversary on the threshold test.  g = 0
/// with the `correct` strategy recovers noise-free Mean-Thinning (up to
/// the measure-zero boundary delta == 0).
template <typename Strategy>
class noisy_mean_thinning {
 public:
  noisy_mean_thinning(bin_count n, load_t g, Strategy strategy = Strategy{})
      : state_(n), g_(g), strategy_(std::move(strategy)) {
    NB_REQUIRE(g >= 0, "threshold noise g must be non-negative");
  }

  void step(rng_t& rng) { step_one(rng, state_.n()); }

  /// Fused bulk loop: n and the g-band half-width hoisted out of the
  /// per-ball path (the running average still changes every ball).
  void step_many(rng_t& rng, step_count count) {
    const bin_count n = state_.n();
    const load_state::bulk_window window(state_, count);
    for (step_count t = 0; t < count; ++t) step_one(rng, n);
  }

  [[nodiscard]] const load_state& state() const noexcept { return state_; }
  void reset() { state_.reset(); }
  [[nodiscard]] std::string name() const {
    const std::string base = std::string(Strategy::label) + "[g=" + std::to_string(g_) + "]";
    return with_model_suffix(base, model_);
  }
  [[nodiscard]] load_t g() const noexcept { return g_; }

  void set_model(alloc_model m) { install_model(state_, model_, std::move(m)); }
  [[nodiscard]] const alloc_model& model() const noexcept { return model_; }

  /// One departure event through the model's channel (see depart_ball).
  void depart(rng_t& rng) { depart_ball(state_, model_, rng); }
  /// Applies one engine-merged departure block (see apply_departure_block).
  void commit_departures(const std::vector<std::uint32_t>& rel, step_count k) {
    apply_departure_block(state_, model_, rel, k);
  }

  /// Checkpoint contract: the strategy and parameters are configuration,
  /// the load state is the only mutable member.
  void save_checkpoint(state_writer& w) const { state_.save(w); }
  void restore_checkpoint(state_reader& r) { state_.restore(r); }

 private:
  void step_one(rng_t& rng, bin_count n) {
    const bin_index i = model_.sampler.sample(rng, n);
    const double delta = static_cast<double>(state_.load(i)) - state_.average_load();
    bool keep;
    if (std::fabs(delta) <= static_cast<double>(g_)) {
      keep = strategy_.keep_here(delta, rng);
    } else {
      keep = delta < 0.0;  // correct: keep only on underloaded bins
    }
    const bin_index target = keep ? i : model_.sampler.sample(rng, n);
    deposit(state_, model_.weighting, target, rng);
  }

  load_state state_;
  alloc_model model_;
  load_t g_;
  Strategy strategy_;
};

/// (1+beta) whose Two-Choice steps run under a g-Adv-Comp adversary.
template <typename Strategy>
class noisy_one_plus_beta {
 public:
  noisy_one_plus_beta(bin_count n, double beta, load_t g, Strategy strategy = Strategy{})
      : state_(n), beta_(beta), g_(g), strategy_(std::move(strategy)) {
    NB_REQUIRE(beta >= 0.0 && beta <= 1.0, "beta must be in [0,1]");
    NB_REQUIRE(g >= 0, "adversary power g must be non-negative");
  }

  void step(rng_t& rng) { step_one(rng, state_.n()); }

  /// Fused bulk loop: n, beta and g hoisted out of the per-ball path.
  void step_many(rng_t& rng, step_count count) {
    const bin_count n = state_.n();
    const load_state::bulk_window window(state_, count);
    for (step_count t = 0; t < count; ++t) step_one(rng, n);
  }

  [[nodiscard]] const load_state& state() const noexcept { return state_; }
  void reset() { state_.reset(); }
  [[nodiscard]] std::string name() const {
    const std::string base = "noisy-(1+beta)-" + std::string(Strategy::label) +
                             "[beta=" + std::to_string(beta_) + ",g=" + std::to_string(g_) + "]";
    return with_model_suffix(base, model_);
  }
  [[nodiscard]] double beta() const noexcept { return beta_; }
  [[nodiscard]] load_t g() const noexcept { return g_; }

  void set_model(alloc_model m) { install_model(state_, model_, std::move(m)); }
  [[nodiscard]] const alloc_model& model() const noexcept { return model_; }

  /// One departure event through the model's channel (see depart_ball).
  void depart(rng_t& rng) { depart_ball(state_, model_, rng); }
  /// Applies one engine-merged departure block (see apply_departure_block).
  void commit_departures(const std::vector<std::uint32_t>& rel, step_count k) {
    apply_departure_block(state_, model_, rel, k);
  }

  /// Checkpoint contract: the strategy and parameters are configuration,
  /// the load state is the only mutable member.
  void save_checkpoint(state_writer& w) const { state_.save(w); }
  void restore_checkpoint(state_reader& r) { state_.restore(r); }

 private:
  void step_one(rng_t& rng, bin_count n) {
    const bin_index i1 = model_.sampler.sample(rng, n);
    if (!bernoulli(rng, beta_)) {
      deposit(state_, model_.weighting, i1, rng);  // One-Choice step: nothing to corrupt
      return;
    }
    const bin_index i2 = model_.sampler.sample(rng, n);
    const load_t x1 = state_.load(i1);
    const load_t x2 = state_.load(i2);
    const load_t diff = x1 >= x2 ? x1 - x2 : x2 - x1;
    bin_index chosen;
    if (diff <= g_) {
      chosen = strategy_.decide(i1, i2, state_, rng);
    } else {
      chosen = (x1 < x2) ? i1 : i2;
    }
    deposit(state_, model_.weighting, chosen, rng);
  }

  load_state state_;
  alloc_model model_;
  double beta_;
  load_t g_;
  Strategy strategy_;
};

/// Noise-free Mean-Thinning (the baseline for the extension experiments).
using mean_thinning = noisy_mean_thinning<thinning_correct>;

static_assert(allocation_process<noisy_mean_thinning<thinning_greedy>>);
static_assert(allocation_process<noisy_mean_thinning<thinning_random>>);
static_assert(allocation_process<mean_thinning>);
static_assert(allocation_process<noisy_one_plus_beta<greedy_reverser>>);
static_assert(allocation_process<noisy_one_plus_beta<random_decision>>);
static_assert(modeled_process<mean_thinning>);
static_assert(modeled_process<noisy_one_plus_beta<greedy_reverser>>);
static_assert(checkpointable_process<mean_thinning>);
static_assert(checkpointable_process<noisy_one_plus_beta<greedy_reverser>>);
static_assert(departable_process<mean_thinning>);
static_assert(departable_process<noisy_one_plus_beta<greedy_reverser>>);

}  // namespace nb
