// The g-Adv-Comp setting (Section 2, "Adversarial Load and Comparison").
//
// Two-Choice with an adaptive adversary of power g: at each step two bins
// i1, i2 are sampled u.a.r. with replacement; if |x_{i1} - x_{i2}| <= g the
// adversary decides the outcome of the comparison (and hence the
// allocation), otherwise the ball is placed in the less loaded bin.
// g = 0 recovers noise-free Two-Choice exactly (step-for-step, given the
// same RNG stream, because our Two-Choice breaks ties with the same coin).
//
// The adversary strategy is a template parameter (see adversary.hpp), so
// the per-ball cost stays free of indirect calls.
#pragma once

#include <cstdlib>
#include <string>

#include "core/noise/adversary.hpp"
#include "core/process.hpp"

namespace nb {

template <typename Strategy>
class g_adv_comp {
 public:
  g_adv_comp(bin_count n, load_t g, Strategy strategy = Strategy{})
      : state_(n), g_(g), strategy_(std::move(strategy)) {
    NB_REQUIRE(g >= 0, "adversary power g must be non-negative");
  }

  void step(rng_t& rng) { step_one(rng, state_.n()); }

  /// Fused bulk loop: n and g hoisted out of the per-ball path.
  void step_many(rng_t& rng, step_count count) {
    const bin_count n = state_.n();
    const load_state::bulk_window window(state_, count);
    for (step_count t = 0; t < count; ++t) step_one(rng, n);
  }

  [[nodiscard]] const load_state& state() const noexcept { return state_; }
  void reset() { state_.reset(); }
  [[nodiscard]] std::string name() const {
    const std::string base = std::string(Strategy::label) + "[g=" + std::to_string(g_) + "]";
    return with_model_suffix(base, model_);
  }
  [[nodiscard]] load_t g() const noexcept { return g_; }
  [[nodiscard]] const Strategy& strategy() const noexcept { return strategy_; }

  void set_model(alloc_model m) { install_model(state_, model_, std::move(m)); }
  [[nodiscard]] const alloc_model& model() const noexcept { return model_; }

  /// One departure event through the model's channel (see depart_ball).
  void depart(rng_t& rng) { depart_ball(state_, model_, rng); }
  /// Applies one engine-merged departure block (see apply_departure_block).
  void commit_departures(const std::vector<std::uint32_t>& rel, step_count k) {
    apply_departure_block(state_, model_, rel, k);
  }

  /// Checkpoint contract: the strategy and parameters are configuration,
  /// the load state is the only mutable member.
  void save_checkpoint(state_writer& w) const { state_.save(w); }
  void restore_checkpoint(state_reader& r) { state_.restore(r); }

 private:
  void step_one(rng_t& rng, bin_count n) {
    const bin_index i1 = model_.sampler.sample(rng, n);
    const bin_index i2 = model_.sampler.sample(rng, n);
    const load_t x1 = state_.load(i1);
    const load_t x2 = state_.load(i2);
    const load_t diff = x1 >= x2 ? x1 - x2 : x2 - x1;
    bin_index chosen;
    if (diff <= g_) {
      chosen = strategy_.decide(i1, i2, state_, rng);
      NB_ASSERT(chosen == i1 || chosen == i2);
    } else {
      chosen = (x1 < x2) ? i1 : i2;
    }
    deposit(state_, model_.weighting, chosen, rng);
  }

  load_state state_;
  alloc_model model_;
  load_t g_;
  Strategy strategy_;
};

/// The two processes the paper names (and benchmarks in Section 12).
using g_bounded = g_adv_comp<greedy_reverser>;
using g_myopic_comp = g_adv_comp<random_decision>;

static_assert(allocation_process<g_bounded>);
static_assert(allocation_process<g_myopic_comp>);
static_assert(modeled_process<g_bounded>);
static_assert(allocation_process<g_adv_comp<always_correct>>);
static_assert(allocation_process<g_adv_comp<overload_booster>>);
static_assert(allocation_process<g_adv_comp<index_bias>>);
static_assert(checkpointable_process<g_bounded>);
static_assert(checkpointable_process<g_myopic_comp>);
static_assert(departable_process<g_bounded>);
static_assert(departable_process<g_myopic_comp>);

}  // namespace nb
