// The tau-Delay setting (Section 2, "Adversarial Delay").
//
// When bins i1, i2 are sampled in step t, an adaptive adversary reports
// load estimates within the sliding windows [x^{t-tau}_i, x^{t-1}_i]; the
// ball goes to the bin with the smaller estimate (ties broken arbitrarily,
// i.e. adversarially).  tau = 1 collapses to noise-free Two-Choice.
//
// Implementation is O(1) per step: a ring buffer stores the targets of the
// last (tau-1) allocations -- exactly the allocations that are "in flight"
// and may be hidden -- and per-bin counters give
//     x^{t-tau}_i = x^{t-1}_i - (allocations to i inside the window).
//
// Estimate strategies:
//   * delay_oldest       -- every bin reports its oldest legal value
//     (maximum staleness everywhere; models "report what you knew tau
//     steps ago").
//   * delay_adversarial  -- the worst case: reverses the true comparison
//     whenever some legal pair of estimates allows it (this is the
//     adversary the paper's reduction to g-Adv-Comp bounds).
//   * delay_random       -- each bin reports a uniform legal value
//     (a benign asynchronous-update model).
#pragma once

#include <string>
#include <vector>

#include "core/process.hpp"

namespace nb {

struct delay_oldest {
  static constexpr const char* label = "tau-delay-oldest";
  bin_index decide(bin_index i1, load_t lo1, load_t /*hi1*/, bin_index i2, load_t lo2,
                   load_t /*hi2*/, rng_t& rng) const {
    if (lo1 < lo2) return i1;
    if (lo2 < lo1) return i2;
    return coin_flip(rng) ? i1 : i2;
  }
};

struct delay_adversarial {
  static constexpr const char* label = "tau-delay-adversarial";
  bin_index decide(bin_index i1, load_t lo1, load_t hi1, bin_index i2, load_t lo2, load_t hi2,
                   rng_t& rng) const {
    // Current (true) loads are the upper window ends.
    if (hi1 == hi2) return coin_flip(rng) ? i1 : i2;
    const bool first_heavier = hi1 > hi2;
    const bin_index heavier = first_heavier ? i1 : i2;
    const bin_index lighter = first_heavier ? i2 : i1;
    const load_t lo_heavy = first_heavier ? lo1 : lo2;
    const load_t hi_light = first_heavier ? hi2 : hi1;
    // The adversary reports lo for the heavier bin and hi for the lighter;
    // with adversarial tie-breaking the heavier bin receives the ball iff
    // lo_heavy <= hi_light.
    return lo_heavy <= hi_light ? heavier : lighter;
  }
};

struct delay_random {
  static constexpr const char* label = "tau-delay-random";
  bin_index decide(bin_index i1, load_t lo1, load_t hi1, bin_index i2, load_t lo2, load_t hi2,
                   rng_t& rng) const {
    const load_t e1 =
        lo1 + static_cast<load_t>(bounded(rng, static_cast<std::uint64_t>(hi1 - lo1) + 1));
    const load_t e2 =
        lo2 + static_cast<load_t>(bounded(rng, static_cast<std::uint64_t>(hi2 - lo2) + 1));
    if (e1 < e2) return i1;
    if (e2 < e1) return i2;
    return coin_flip(rng) ? i1 : i2;
  }
};

template <typename Strategy>
class tau_delay {
 public:
  tau_delay(bin_count n, step_count tau, Strategy strategy = Strategy{})
      : state_(n),
        tau_(tau),
        strategy_(std::move(strategy)),
        window_(static_cast<std::size_t>(tau > 0 ? tau - 1 : 0)),
        window_weights_(window_.size(), 1),
        in_window_(n, 0) {
    NB_REQUIRE(tau >= 1, "delay tau must be at least 1");
  }

  void step(rng_t& rng) {
    const bin_index chosen = decide_one(rng, state_.n());
    const weight_t w = deposit(state_, model_.weighting, chosen, rng);
    push_allocation(chosen, w);
  }

  /// Fused bulk loop.  After the first tau-1 allocations the ring buffer
  /// is full, so the steady-state inner loop evicts unconditionally and
  /// wraps the ring cursor with a compare instead of a modulo -- the
  /// fill/full branch is amortized over the whole chunk.
  void step_many(rng_t& rng, step_count count) {
    const bin_count n = state_.n();
    const load_state::bulk_window window(state_, count);
    if (window_.empty()) {  // tau == 1: no hidden allocations to track
      for (step_count t = 0; t < count; ++t) {
        deposit(state_, model_.weighting, decide_one(rng, n), rng);
      }
      return;
    }
    // Fill phase: at most tau-1 balls, per-step bookkeeping.
    while (count > 0 && window_size_ < window_.size()) {
      step(rng);
      --count;
    }
    // Steady state: the ring is full for the rest of the chunk.  The
    // hidden-allocation accounting is weight-denominated: each ring entry
    // evicts exactly the weight it deposited.
    const std::size_t wsize = window_.size();
    for (step_count t = 0; t < count; ++t) {
      const bin_index chosen = decide_one(rng, n);
      const weight_t w = deposit(state_, model_.weighting, chosen, rng);
      in_window_[window_[window_pos_]] -= window_weights_[window_pos_];
      window_[window_pos_] = chosen;
      window_weights_[window_pos_] = static_cast<load_t>(w);
      in_window_[chosen] += static_cast<load_t>(w);
      if (++window_pos_ == wsize) window_pos_ = 0;
    }
  }

  [[nodiscard]] const load_state& state() const noexcept { return state_; }

  void reset() {
    state_.reset();
    std::fill(in_window_.begin(), in_window_.end(), 0);
    window_size_ = 0;
    window_pos_ = 0;
  }

  [[nodiscard]] std::string name() const {
    const std::string base = std::string(Strategy::label) + "[tau=" + std::to_string(tau_) + "]";
    return with_model_suffix(base, model_);
  }
  [[nodiscard]] step_count tau() const noexcept { return tau_; }

  void set_model(alloc_model m) { install_model(state_, model_, std::move(m)); }
  [[nodiscard]] const alloc_model& model() const noexcept { return model_; }

  /// One departure event through the model's channel (see depart_ball).
  void depart(rng_t& rng) { depart_ball(state_, model_, rng); }
  /// Applies one engine-merged departure block (see apply_departure_block).
  void commit_departures(const std::vector<std::uint32_t>& rel, step_count k) {
    apply_departure_block(state_, model_, rel, k);
  }

  /// Window-parallel probe (see process.hpp): always 0.  tau-Delay's
  /// estimate window [x^{t-tau}, x^{t-1}] *slides* -- ball t+1's estimates
  /// can depend on ball t's target through in_window_ -- so no stretch of
  /// a run decides against frozen state and the shard engine must take the
  /// serial fused loop.  The fully synchronized instance whose windows ARE
  /// frozen is b-Batch (tau = b), which models the full window_parallel
  /// contract.
  [[nodiscard]] static constexpr step_count snapshot_window() noexcept { return 0; }

  /// Oldest legal estimate of bin i, i.e. x^{t-tau}_i (exposed for tests).
  [[nodiscard]] load_t stale_load(bin_index i) const { return state_.load(i) - in_window_[i]; }

  /// Checkpoint contract.  The ring of in-flight allocations (targets +
  /// weights + cursors) is the delay state proper; the per-bin hidden
  /// weight `in_window_` is a pure function of the valid ring entries and
  /// is rebuilt on restore rather than serialized (n entries saved, and
  /// the rebuild doubles as a consistency check on the ring).
  void save_checkpoint(state_writer& w) const {
    state_.save(w);
    w.put_vec(window_);
    w.put_vec(window_weights_);
    w.put_u64(window_size_);
    w.put_u64(window_pos_);
  }
  void restore_checkpoint(state_reader& r) {
    state_.restore(r);
    auto ring = r.get_vec<bin_index>();
    auto weights = r.get_vec<load_t>();
    const std::uint64_t size = r.get_u64();
    const std::uint64_t pos = r.get_u64();
    NB_REQUIRE(ring.size() == window_.size() && weights.size() == window_weights_.size(),
               "checkpoint delay-ring capacity does not match this run's tau");
    NB_REQUIRE(size <= ring.size(), "checkpoint delay-ring fill exceeds its capacity");
    if (size < ring.size()) {
      // Fill phase: entries [0, size) are valid and the cursor trails them.
      NB_REQUIRE(pos == size, "checkpoint delay-ring cursor inconsistent with its fill");
    } else {
      NB_REQUIRE(ring.empty() ? pos == 0 : pos < ring.size(),
                 "checkpoint delay-ring cursor out of range");
    }
    const auto n = static_cast<bin_index>(state_.n());
    std::fill(in_window_.begin(), in_window_.end(), 0);
    const std::size_t valid = size < ring.size() ? static_cast<std::size_t>(size) : ring.size();
    for (std::size_t idx = 0; idx < valid; ++idx) {
      NB_REQUIRE(ring[idx] < n, "checkpoint delay-ring target out of range");
      NB_REQUIRE(weights[idx] >= 1, "checkpoint delay-ring weight must be positive");
      in_window_[ring[idx]] += weights[idx];
    }
    window_ = std::move(ring);
    window_weights_ = std::move(weights);
    window_size_ = static_cast<std::size_t>(size);
    window_pos_ = static_cast<std::size_t>(pos);
  }

 private:
  bin_index decide_one(rng_t& rng, bin_count n) {
    const bin_index i1 = model_.sampler.sample(rng, n);
    const bin_index i2 = model_.sampler.sample(rng, n);
    const load_t hi1 = state_.load(i1);
    const load_t hi2 = state_.load(i2);
    const load_t lo1 = hi1 - in_window_[i1];
    const load_t lo2 = hi2 - in_window_[i2];
    const bin_index chosen = strategy_.decide(i1, lo1, hi1, i2, lo2, hi2, rng);
    NB_ASSERT(chosen == i1 || chosen == i2);
    return chosen;
  }

  void push_allocation(bin_index chosen, weight_t w) {
    if (window_.empty()) return;  // tau == 1: no hidden allocations
    if (window_size_ == window_.size()) {
      // Evict the allocation that just became tau steps old.
      in_window_[window_[window_pos_]] -= window_weights_[window_pos_];
    } else {
      ++window_size_;
    }
    window_[window_pos_] = chosen;
    window_weights_[window_pos_] = static_cast<load_t>(w);
    in_window_[chosen] += static_cast<load_t>(w);
    window_pos_ = (window_pos_ + 1) % window_.size();
  }

  load_state state_;
  alloc_model model_;
  step_count tau_;
  Strategy strategy_;
  std::vector<bin_index> window_;       // ring buffer of the last tau-1 targets
  std::vector<load_t> window_weights_;  // weight each ring entry deposited
  std::vector<load_t> in_window_;  // per-bin hidden weight inside the ring
  std::size_t window_size_ = 0;
  std::size_t window_pos_ = 0;
};

static_assert(allocation_process<tau_delay<delay_oldest>>);
static_assert(allocation_process<tau_delay<delay_adversarial>>);
static_assert(allocation_process<tau_delay<delay_random>>);
static_assert(window_probed<tau_delay<delay_oldest>>);
static_assert(!window_parallel<tau_delay<delay_oldest>>);
static_assert(modeled_process<tau_delay<delay_oldest>>);
static_assert(checkpointable_process<tau_delay<delay_oldest>>);
static_assert(checkpointable_process<tau_delay<delay_adversarial>>);
static_assert(checkpointable_process<tau_delay<delay_random>>);
static_assert(departable_process<tau_delay<delay_oldest>>);

}  // namespace nb
