// Adversary strategies for the g-Adv-Comp setting (Section 2).
//
// In g-Adv-Comp the process samples two bins i1, i2; when their load
// difference is at most g the *adversary* decides where the ball goes, and
// otherwise the ball goes to the less loaded bin.  A strategy is the
// adversary A_t restricted to the pairs it controls: it is invoked only
// when |x_{i1} - x_{i2}| <= g and returns the chosen bin.
//
// The paper's two named instances:
//   * greedy_reverser  == the g-Bounded process [Nadiradze'21]: always the
//     heavier bin (the "greedily revert all comparisons" adversary).
//   * random_decision  == g-Myopic-Comp: a fair coin.
//
// Extra strategies shipped for the adversary-strength ablation:
//   * always_correct   -- degenerates to noise-free Two-Choice.
//   * overload_booster -- spends the reversal budget only on bins that are
//     already overloaded (load >= average): pushes to the heavier bin when
//     doing so grows an overloaded bin, otherwise plays correctly.  A
//     sharper adaptive adversary than greedy within the same g budget.
//   * index_bias       -- deterministically prefers the smaller bin index,
//     creating a fixed target set of hot bins (tests robustness to
//     systematic, non-load-adaptive bias).
#pragma once

#include <string>

#include "core/load_vector.hpp"
#include "core/process.hpp"

namespace nb {

struct greedy_reverser {
  static constexpr const char* label = "g-bounded";
  bin_index decide(bin_index i1, bin_index i2, const load_state& s, rng_t& rng) const {
    const load_t x1 = s.load(i1);
    const load_t x2 = s.load(i2);
    if (x1 > x2) return i1;
    if (x2 > x1) return i2;
    return coin_flip(rng) ? i1 : i2;
  }
};

struct random_decision {
  static constexpr const char* label = "g-myopic-comp";
  bin_index decide(bin_index i1, bin_index i2, const load_state& /*s*/, rng_t& rng) const {
    return coin_flip(rng) ? i1 : i2;
  }
};

struct always_correct {
  static constexpr const char* label = "g-adv-correct";
  bin_index decide(bin_index i1, bin_index i2, const load_state& s, rng_t& rng) const {
    const load_t x1 = s.load(i1);
    const load_t x2 = s.load(i2);
    if (x1 < x2) return i1;
    if (x2 < x1) return i2;
    return coin_flip(rng) ? i1 : i2;
  }
};

struct overload_booster {
  static constexpr const char* label = "g-adv-boost";
  bin_index decide(bin_index i1, bin_index i2, const load_state& s, rng_t& rng) const {
    const load_t x1 = s.load(i1);
    const load_t x2 = s.load(i2);
    const bin_index heavier = (x1 >= x2) ? i1 : i2;
    const bin_index lighter = (x1 >= x2) ? i2 : i1;
    if (x1 == x2) {
      // Symmetric pair: grow it iff it is already overloaded.
      if (static_cast<double>(x1) >= s.average_load()) return coin_flip(rng) ? i1 : i2;
      return coin_flip(rng) ? i1 : i2;
    }
    // Reverse only when the heavier bin is overloaded -- reversals on
    // underloaded pairs merely flatten the bottom of the distribution.
    if (static_cast<double>(s.load(heavier)) >= s.average_load()) return heavier;
    return lighter;
  }
};

struct index_bias {
  static constexpr const char* label = "g-adv-index";
  bin_index decide(bin_index i1, bin_index i2, const load_state& /*s*/, rng_t& /*rng*/) const {
    return i1 < i2 ? i1 : i2;
  }
};

/// Greedy reverser until `switch_at` balls have been placed, correct
/// afterwards.  This is the adversary used to probe the *self-stabilization*
/// behaviour behind the paper's recovery lemmas (Lemma 5.9 / Theorem 5.12):
/// poison the load vector, stop interfering, and watch the gap recover.
struct phase_switch {
  static constexpr const char* label = "g-adv-phase-switch";
  step_count switch_at = 0;

  bin_index decide(bin_index i1, bin_index i2, const load_state& s, rng_t& rng) const {
    const load_t x1 = s.load(i1);
    const load_t x2 = s.load(i2);
    if (x1 == x2) return coin_flip(rng) ? i1 : i2;
    const bool reverse = s.balls() < switch_at;
    if (reverse) return x1 > x2 ? i1 : i2;
    return x1 < x2 ? i1 : i2;
  }
};

}  // namespace nb
