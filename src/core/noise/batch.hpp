// The b-Batch process [BCEFN'12] (Section 2): balls arrive in consecutive
// batches of size b; load queries during a batch see the loads from the
// *beginning* of the batch, and ties are broken uniformly at random.  The
// first batch therefore behaves exactly like One-Choice (Observation 11.6),
// and b = 1 collapses to Two-Choice.
//
// b-Batch is the fully synchronized instance of tau-Delay with tau = b.
//
// Implementation: a `stale` snapshot vector plus the list of bins touched
// in the current batch; at a batch boundary only the touched bins are
// refreshed, so the total maintenance cost is O(m) for the whole run
// regardless of b (a naive per-batch copy would be O(m/b * n)).
#pragma once

#include <string>
#include <vector>

#include "core/process.hpp"

namespace nb {

class b_batch {
 public:
  b_batch(bin_count n, step_count b) : state_(n), b_(b), stale_(n, 0) {
    NB_REQUIRE(b >= 1, "batch size b must be at least 1");
    touched_.reserve(static_cast<std::size_t>(std::min<step_count>(b, 1 << 20)));
  }

  void step(rng_t& rng) {
    step_one(rng, state_.n());
    if (state_.balls() % b_ == 0) refresh_snapshot();
  }

  /// Fused bulk loop: the batch-boundary test moves out of the per-ball
  /// path -- each inner chunk runs to the next boundary with no modulo,
  /// then the snapshot refresh is paid once per batch.
  void step_many(rng_t& rng, step_count count) {
    const bin_count n = state_.n();
    const load_state::bulk_window window(state_, count);
    while (count > 0) {
      const step_count to_boundary = b_ - (state_.balls() % b_);
      const step_count chunk = count < to_boundary ? count : to_boundary;
      for (step_count t = 0; t < chunk; ++t) step_one(rng, n);
      if (chunk == to_boundary) refresh_snapshot();
      count -= chunk;
    }
  }

  [[nodiscard]] const load_state& state() const noexcept { return state_; }

  void reset() {
    state_.reset();
    std::fill(stale_.begin(), stale_.end(), 0);
    touched_.clear();
  }

  [[nodiscard]] std::string name() const {
    const std::string base = "b-batch[b=" + std::to_string(b_) + "]";
    return with_model_suffix(base, model_);
  }
  [[nodiscard]] step_count batch_size() const noexcept { return b_; }

  void set_model(alloc_model m) { install_model(state_, model_, std::move(m)); }
  [[nodiscard]] const alloc_model& model() const noexcept { return model_; }

  /// One departure event through the model's channel (see depart_ball).
  void depart(rng_t& rng) { depart_ball(state_, model_, rng); }
  /// Applies one engine-merged departure block (see apply_departure_block).
  void commit_departures(const std::vector<std::uint32_t>& rel, step_count k) {
    apply_departure_block(state_, model_, rel, k);
  }

  /// The load of bin i as reported during the current batch (for tests).
  [[nodiscard]] load_t reported_load(bin_index i) const { return stale_[i]; }

  /// Checkpoint contract.  The stale snapshot is real mid-run state (it
  /// froze at the last batch boundary, which the current loads cannot
  /// reconstruct), so it is serialized along with the touched list.
  void save_checkpoint(state_writer& w) const {
    state_.save(w);
    w.put_vec(stale_);
    w.put_vec(touched_);
  }
  void restore_checkpoint(state_reader& r) {
    state_.restore(r);
    auto stale = r.get_vec<load_t>();
    auto touched = r.get_vec<bin_index>();
    NB_REQUIRE(stale.size() == stale_.size(), "checkpoint snapshot size does not match this run");
    const auto n = static_cast<bin_index>(state_.n());
    for (const load_t x : stale) {
      NB_REQUIRE(x >= 0, "checkpoint snapshot loads must be non-negative");
    }
    for (const bin_index i : touched) {
      NB_REQUIRE(i < n, "checkpoint touched-bin index out of range");
    }
    stale_ = std::move(stale);
    touched_ = std::move(touched);
  }

  // --- window-parallel contract (see process.hpp) ------------------------
  // b-Batch is the fully synchronized batched model: every ball until the
  // next batch boundary decides against the snapshot taken at the batch
  // start, so those balls are embarrassingly parallel.

  /// Balls until the next snapshot refresh; always in [1, b].
  [[nodiscard]] step_count snapshot_window() const noexcept {
    return b_ - state_.balls() % b_;
  }

  /// The frozen loads the current batch's decisions read.
  [[nodiscard]] const std::vector<load_t>& window_snapshot() const noexcept { return stale_; }

  /// b-Batch's snapshot_decide IS the canonical two-sample min rule, so
  /// its windows may run through the lane-interleaved SIMD kernel (the
  /// kernel_window_parallel contract; cross-checked by test_kernel.cpp).
  static constexpr bool kernel_min_select = true;

  /// One b-Batch decision over the compact snapshot: less loaded of the
  /// two sampled bins, ties by a fair coin -- the same rule as step_one,
  /// reading 8-bit offsets (order-preserving: common base, no saturation
  /// by compact_snapshot's contract) instead of 32-bit loads.
  static bin_index snapshot_decide(const std::uint8_t* snap, bin_index i1, bin_index i2,
                                   rng_t& rng) {
    const std::uint8_t s1 = snap[i1];
    const std::uint8_t s2 = snap[i2];
    if (s1 < s2) return i1;
    if (s2 < s1) return i2;
    return coin_flip(rng) ? i1 : i2;
  }

  /// Applies a merged window delta (inc[i] balls into bin i, all decided
  /// against the current snapshot) and refreshes exactly like the serial
  /// path: at a batch boundary the touched bins are re-read from the true
  /// loads; mid-batch (a partial window) they are only recorded as touched
  /// so a later boundary refresh covers them.  Each counted ball deposits
  /// the model's (deterministic) weight; the engines never route random
  /// weightings here.
  void commit_window(const std::vector<std::uint32_t>& inc, step_count balls) {
    NB_ASSERT(balls >= 1 && balls <= snapshot_window());
    state_.apply_increments(inc, model_.weighting.fixed_weight());
    const bin_count n = state_.n();
    if (state_.balls() % b_ == 0) {
      for (const bin_index i : touched_) stale_[i] = state_.load(i);
      touched_.clear();
      for (bin_index i = 0; i < n; ++i) {
        if (inc[i] != 0) stale_[i] = state_.load(i);
      }
    } else {
      for (bin_index i = 0; i < n; ++i) {
        if (inc[i] != 0) touched_.push_back(i);
      }
    }
  }

 private:
  void step_one(rng_t& rng, bin_count n) {
    const bin_index i1 = model_.sampler.sample(rng, n);
    const bin_index i2 = model_.sampler.sample(rng, n);
    const load_t s1 = stale_[i1];
    const load_t s2 = stale_[i2];
    bin_index chosen;
    if (s1 < s2) {
      chosen = i1;
    } else if (s2 < s1) {
      chosen = i2;
    } else {
      chosen = coin_flip(rng) ? i1 : i2;  // the paper specifies random ties
    }
    deposit(state_, model_.weighting, chosen, rng);
    touched_.push_back(chosen);
  }

  void refresh_snapshot() {
    for (const bin_index i : touched_) stale_[i] = state_.load(i);
    touched_.clear();
  }

  load_state state_;
  alloc_model model_;
  step_count b_;
  std::vector<load_t> stale_;
  std::vector<bin_index> touched_;
};

static_assert(allocation_process<b_batch>);
static_assert(window_parallel<b_batch>);
static_assert(modeled_process<b_batch>);
static_assert(checkpointable_process<b_batch>);
static_assert(departable_process<b_batch>);

}  // namespace nb
