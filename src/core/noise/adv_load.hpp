// The g-Adv-Load setting (Section 2): before each step the adversary fixes
// a load estimate for every bin within +/- g of the truth; the ball then
// goes to the sampled bin with the smaller *estimate*.
//
// The paper notes g-Adv-Load is simulable by (2g)-Adv-Comp, which is why
// its analysis focuses on Adv-Comp.  We implement Adv-Load directly with
// pluggable estimate strategies, both to validate that simulation claim
// experimentally and because the "perturbed load report" form is the one a
// systems user would actually configure.
//
// Estimate strategies (computed lazily for the two sampled bins only -- an
// oblivious per-bin rule fixed before sampling can be evaluated on demand):
//   * inverting_estimates  -- adversarial: overloaded bins under-report by
//     g, underloaded bins over-report by g, flipping every comparison it
//     legally can (the worst oblivious-per-bin adversary).
//   * uniform_noise_estimates -- benign: independent uniform perturbation
//     in [-g, +g] (integer), a discrete analogue of sigma-Noisy-Load.
//   * truthful_estimates   -- reports the exact load (Two-Choice).
#pragma once

#include <string>

#include "core/process.hpp"

namespace nb {

struct inverting_estimates {
  static constexpr const char* label = "g-adv-load-invert";
  /// Over-reports underloaded bins and under-reports overloaded ones.
  double estimate(bin_index i, const load_state& s, load_t g, rng_t& /*rng*/) const {
    const double x = static_cast<double>(s.load(i));
    return x >= s.average_load() ? x - static_cast<double>(g) : x + static_cast<double>(g);
  }
};

struct uniform_noise_estimates {
  static constexpr const char* label = "g-adv-load-uniform";
  double estimate(bin_index i, const load_state& s, load_t g, rng_t& rng) const {
    const auto offset =
        static_cast<double>(bounded(rng, 2 * static_cast<std::uint64_t>(g) + 1)) -
        static_cast<double>(g);
    return static_cast<double>(s.load(i)) + offset;
  }
};

struct truthful_estimates {
  static constexpr const char* label = "g-adv-load-truthful";
  double estimate(bin_index i, const load_state& s, load_t /*g*/, rng_t& /*rng*/) const {
    return static_cast<double>(s.load(i));
  }
};

template <typename EstimateStrategy>
class g_adv_load {
 public:
  g_adv_load(bin_count n, load_t g, EstimateStrategy strategy = EstimateStrategy{})
      : state_(n), g_(g), strategy_(std::move(strategy)) {
    NB_REQUIRE(g >= 0, "estimate perturbation g must be non-negative");
  }

  void step(rng_t& rng) { step_one(rng, state_.n()); }

  /// Fused bulk loop: n and g hoisted out of the per-ball path.
  void step_many(rng_t& rng, step_count count) {
    const bin_count n = state_.n();
    const load_state::bulk_window window(state_, count);
    for (step_count t = 0; t < count; ++t) step_one(rng, n);
  }

  [[nodiscard]] const load_state& state() const noexcept { return state_; }
  void reset() { state_.reset(); }
  [[nodiscard]] std::string name() const {
    const std::string base = std::string(EstimateStrategy::label) + "[g=" + std::to_string(g_) + "]";
    return with_model_suffix(base, model_);
  }
  [[nodiscard]] load_t g() const noexcept { return g_; }

  void set_model(alloc_model m) { install_model(state_, model_, std::move(m)); }
  [[nodiscard]] const alloc_model& model() const noexcept { return model_; }

  /// One departure event through the model's channel (see depart_ball).
  void depart(rng_t& rng) { depart_ball(state_, model_, rng); }
  /// Applies one engine-merged departure block (see apply_departure_block).
  void commit_departures(const std::vector<std::uint32_t>& rel, step_count k) {
    apply_departure_block(state_, model_, rel, k);
  }

  /// Checkpoint contract: the strategy and parameters are configuration,
  /// the load state is the only mutable member.
  void save_checkpoint(state_writer& w) const { state_.save(w); }
  void restore_checkpoint(state_reader& r) { state_.restore(r); }

 private:
  void step_one(rng_t& rng, bin_count n) {
    const bin_index i1 = model_.sampler.sample(rng, n);
    const bin_index i2 = model_.sampler.sample(rng, n);
    const double e1 = strategy_.estimate(i1, state_, g_, rng);
    const double e2 = strategy_.estimate(i2, state_, g_, rng);
    bin_index chosen;
    if (e1 < e2) {
      chosen = i1;
    } else if (e2 < e1) {
      chosen = i2;
    } else {
      chosen = coin_flip(rng) ? i1 : i2;
    }
    deposit(state_, model_.weighting, chosen, rng);
  }

  load_state state_;
  alloc_model model_;
  load_t g_;
  EstimateStrategy strategy_;
};

static_assert(allocation_process<g_adv_load<inverting_estimates>>);
static_assert(allocation_process<g_adv_load<uniform_noise_estimates>>);
static_assert(allocation_process<g_adv_load<truthful_estimates>>);
static_assert(modeled_process<g_adv_load<inverting_estimates>>);
static_assert(checkpointable_process<g_adv_load<inverting_estimates>>);
static_assert(checkpointable_process<g_adv_load<uniform_noise_estimates>>);
static_assert(departable_process<g_adv_load<inverting_estimates>>);

}  // namespace nb
