#include "core/theory/bounds.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace nb::theory {

namespace {
// Guards against log of values <= 1 blowing up shape formulas at tiny n.
double safe_log(double v) { return std::log(std::max(v, 1.0 + 1e-9)); }
}  // namespace

double two_choice_gap(double n) {
  NB_REQUIRE(n > 1.0, "n must exceed 1");
  return std::log2(std::max(safe_log(n), 1.0 + 1e-9));
}

double one_choice_maxload_light(double n, double m) {
  NB_REQUIRE(n > 1.0 && m > 0.0, "need n > 1 and m > 0");
  const double denom = safe_log((4.0 * n / m) * safe_log(n));
  return safe_log(n) / std::max(denom, 1e-9);
}

double one_choice_gap_heavy(double n, double m) {
  NB_REQUIRE(n > 1.0 && m > 0.0, "need n > 1 and m > 0");
  return std::sqrt((m / n) * safe_log(n));
}

double one_choice_gap(double n, double m) {
  if (m <= n * safe_log(n)) {
    // Light regime: the gap is dominated by the max load (average m/n <= log n).
    return std::max(one_choice_maxload_light(n, m) - m / n, 0.0);
  }
  return one_choice_gap_heavy(n, m);
}

double adv_comp_warmup_bound(double n, double g) {
  NB_REQUIRE(g >= 1.0, "g must be >= 1");
  return g * safe_log(n * g);
}

double adv_comp_linear_bound(double n, double g) {
  NB_REQUIRE(g >= 0.0, "g must be non-negative");
  return g + safe_log(n);
}

double adv_comp_sublinear_bound(double n, double g) {
  NB_REQUIRE(g > 1.0, "sublinear bound needs g > 1");
  return g / safe_log(g) * safe_log(safe_log(n));
}

double adv_comp_tight_gap(double n, double g) {
  if (g <= 1.0) return safe_log(safe_log(n));  // Theta(log log n) for g in {0, 1}
  return g + adv_comp_sublinear_bound(n, g);
}

double batch_gap(double n, double b) {
  NB_REQUIRE(n > 1.0 && b >= 1.0, "need n > 1 and b >= 1");
  if (b <= 1.0) return two_choice_gap(n);
  if (b >= n * safe_log(n)) return b / n;  // Theta(b/n) regime [LS22a]
  const double denom = safe_log((4.0 * n / b) * safe_log(n));
  return safe_log(n) / std::max(denom, 1e-9);
}

double sigma_noisy_load_upper(double n, double sigma) {
  NB_REQUIRE(sigma > 0.0, "sigma must be positive");
  const double delta_star = sigma * std::sqrt(safe_log(n));
  return delta_star * safe_log(n * std::max(delta_star, 1.0));
}

double sigma_noisy_load_lower(double n, double sigma) {
  NB_REQUIRE(sigma > 0.0, "sigma must be positive");
  return std::min(std::pow(sigma, 0.8), std::pow(sigma, 0.4) * std::sqrt(safe_log(n)));
}

double myopic_lower_bound_m(double n, double g) {
  NB_REQUIRE(g >= 0.0, "g must be non-negative");
  return 0.5 * n * g;
}

int layered_induction_levels(double n, double g) {
  NB_REQUIRE(g > 1.0, "layered induction needs g > 1");
  const double target = safe_log(n);  // alpha_1 = 1 in the shape version
  int k = 2;
  // smallest k >= 2 with target^{1/k} <= g (with tolerance for exact
  // boundaries such as g = sqrt(log n))
  while (std::pow(target, 1.0 / static_cast<double>(k)) > g * (1.0 + 1e-6) && k < 64) ++k;
  return k;
}

}  // namespace nb::theory
