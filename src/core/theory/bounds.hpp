// Closed forms of the paper's gap bounds (Tables 2.3 and 11.1), with the
// Theta-expression evaluated at constant 1.  Used by:
//   * the bounds-check bench, which fits measured gaps against these
//     predictors and reports R^2 / ratio stability, and
//   * envelope property tests, which assert measured gaps stay within a
//     generous constant multiple of the bound.
#pragma once

#include "common/types.hpp"

namespace nb::theory {

/// log2(log(n)): the Two-Choice gap shape [BCSV06] (m >= n, w.h.p.).
[[nodiscard]] double two_choice_gap(double n);

/// One-Choice maximum load for m <= n log n balls (Lemmas A.5/A.8/A.10):
/// log n / log((4n/m) * log n), the shape that is tight in both directions.
[[nodiscard]] double one_choice_maxload_light(double n, double m);

/// One-Choice gap for m = c n log n, c >= 1/log n (Lemma A.9):
/// sqrt(c) * log n / 10 shape, i.e. sqrt((m/n) * log n) up to constants.
[[nodiscard]] double one_choice_gap_heavy(double n, double m);

/// One-Choice gap estimate across regimes (light: max-load shape, heavy:
/// sqrt((m/n) log n)); continuous enough for plotting baselines.
[[nodiscard]] double one_choice_gap(double n, double m);

/// Warm-up upper bound O(g log(ng)) for g-Adv-Comp (Theorem 4.3).
[[nodiscard]] double adv_comp_warmup_bound(double n, double g);

/// O(g + log n) upper bound for g-Adv-Comp (Theorem 5.12).
[[nodiscard]] double adv_comp_linear_bound(double n, double g);

/// O(g / log g * log log n) for 1 < g <= log n (Theorem 9.2).
[[nodiscard]] double adv_comp_sublinear_bound(double n, double g);

/// The tight combined shape Theta(g + g/log g * log log n) (Corollary 11.4),
/// the paper's headline phase-transition curve.
[[nodiscard]] double adv_comp_tight_gap(double n, double g);

/// Batched/delay setting, b in [n e^{-log^c n}, n log n]:
/// Theta(log n / log((4n/b) log n)) (Corollary 10.4 + Observation 11.6).
[[nodiscard]] double batch_gap(double n, double b);

/// sigma-Noisy-Load upper bound O(sigma sqrt(log n) log(n sigma))
/// (Proposition 10.1 with delta* = sigma sqrt(log n)).
[[nodiscard]] double sigma_noisy_load_upper(double n, double sigma);

/// sigma-Noisy-Load lower bound Omega(min{sigma^{4/5}, sigma^{2/5}
/// sqrt(log n)}) for sigma >= 32 (Proposition 11.5 ii).
[[nodiscard]] double sigma_noisy_load_lower(double n, double sigma);

/// The myopic lower bound Omega(g) regime's ball count m = n*g/2
/// (Proposition 11.2 i).
[[nodiscard]] double myopic_lower_bound_m(double n, double g);

/// Number of layered-induction levels k(g): the unique integer k >= 2 with
/// (a1 log n)^{1/k} <= g < (a1 log n)^{1/(k-1)} (Section 6.1, a1 = 1).
[[nodiscard]] int layered_induction_levels(double n, double g);

}  // namespace nb::theory
