// The allocation-process abstraction.
//
// A process owns a load_state and knows how to allocate one ball per step
// given a source of randomness.  Concrete processes are plain value types
// (copyable, no virtual calls) so the simulation drivers can be templates
// with fully inlined hot loops; `any_process` adds type erasure for
// registry-style code.
//
// Bulk stepping: the free function `step_many(p, rng, count)` allocates
// `count` balls.  Processes that define a member `step_many(rng, count)`
// get a fused batch loop (amortized snapshot/window maintenance, hoisted
// invariants, and -- through any_process -- one indirect call per chunk
// instead of one per ball); everything else falls back to a plain loop
// over step().  Contract: a member step_many must consume randomness in
// exactly the same order as `count` calls of step(), so per-ball and bulk
// execution are bit-identical for a fixed seed (enforced by the
// step/step_many parity tests).
//
// Event streams: arrivals-only stepping is the degenerate case of the
// general traffic contract.  `advance(p, rng, traffic_spec)` interleaves
// arrivals (via step_many) with departures (via the process's depart(),
// which routes through its model's departure_model); a spec with zero
// departures IS step_many, bit for bit, so every historical stream is an
// event stream with an empty departure channel.
#pragma once

#include <algorithm>
#include <array>
#include <concepts>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/serialize.hpp"
#include "core/alloc_model.hpp"
#include "core/kernel/kernel.hpp"
#include "core/kernel/kernel_depart.hpp"
#include "core/load_vector.hpp"
#include "rng/rng.hpp"
#include "util/thread_pool.hpp"

namespace nb {

/// The library-wide generator type.  All processes consume randomness from
/// an explicit instance of this; nothing keeps hidden RNG state.
using rng_t = xoshiro256pp;

/// A type that can allocate one ball per step.
template <typename P>
concept single_steppable = requires(P p, rng_t& g) {
  { p.step(g) } -> std::same_as<void>;
};

/// A type with a native fused bulk loop.
template <typename P>
concept bulk_steppable = requires(P p, rng_t& g, step_count c) {
  { p.step_many(g, c) } -> std::same_as<void>;
};

/// Allocates `count` balls: dispatches to the process's fused member
/// `step_many` when it has one, otherwise loops over step().  This is the
/// entry point every driver (simulate, record_trace, the bench harness)
/// uses; both paths draw randomness in the same order, so results are
/// bit-identical either way.
template <single_steppable P>
inline void step_many(P& process, rng_t& rng, step_count count) {
  NB_ASSERT(count >= 0);
  if constexpr (bulk_steppable<P>) {
    process.step_many(rng, count);
  } else {
    for (step_count t = 0; t < count; ++t) process.step(rng);
  }
}

/// Concept every allocation process satisfies.  Bulk stepping is part of
/// the contract, but via the free-function dispatcher above, so processes
/// without a native member step_many keep working through the fallback.
template <typename P>
concept allocation_process = single_steppable<P> &&
    requires(P p, const P cp, rng_t& g, step_count c) {
      { step_many(p, g, c) } -> std::same_as<void>;
      { cp.state() } -> std::convertible_to<const load_state&>;
      { p.reset() } -> std::same_as<void>;
      { cp.name() } -> std::convertible_to<std::string>;
    };

/// A process whose full mid-run state can be serialized and restored.
/// Contract (the whole-simulation generalization of the RNG
/// save/draw/restore/identical-next-draw contract): after
///
///   p.save_checkpoint(w);  ...arbitrary further stepping of p...
///   q.restore_checkpoint(r)   // q freshly constructed with the SAME
///                             // configuration (n, params, model)
///
/// q is indistinguishable from p at the moment of the save -- stepping q
/// and the saved-state p with identical randomness produces bit-identical
/// results.  save_checkpoint must capture every mutable member (loads,
/// ball counts, delay rings, batch snapshots, cached Gaussian halves);
/// configuration (n, process parameters, the alloc_model) is NOT written
/// -- it is the caller's job to rebuild the process from its spec first,
/// and restore_checkpoint must validate sizes against it (throwing
/// nb::contract_error on mismatch, never reading out of bounds).
template <typename P>
concept checkpointable_process = allocation_process<P> &&
    requires(P p, const P cp, state_writer& w, state_reader& r) {
      { cp.save_checkpoint(w) } -> std::same_as<void>;
      { p.restore_checkpoint(r) } -> std::same_as<void>;
    };

/// Samples one bin uniformly at random (One-Choice primitive).
inline bin_index sample_bin(rng_t& rng, bin_count n) {
  return static_cast<bin_index>(bounded(rng, n));
}

// ---------------------------------------------------------------------------
// The generalized (weighting, sampler) contract.
//
// Every library process carries an alloc_model (core/alloc_model.hpp) and
// threads it through its step/step_many loops: bin samples go through the
// model's bin_sampler (uniform = the historical nb::bounded stream, bit
// for bit) and each placed ball deposits the model's ball weight (unit =
// the historical allocate(), drawing no randomness).  Draw order is part
// of the sampling contract: all of a ball's *bin* draws come first, the
// *weight* draw (if the weighting is random) comes after the placement
// decision, immediately before the deposit.

/// A process that exposes the generalized allocation model.  set_model is
/// a configuration call (pre-run); swapping models mid-run is legal but
/// changes the sampling contract from that ball on.
template <typename P>
concept modeled_process = requires(P p, const P cp, alloc_model m) {
  { cp.model() } -> std::convertible_to<const alloc_model&>;
  { p.set_model(m) } -> std::same_as<void>;
};

/// Deposits one decided ball and returns its weight: the unit fast path
/// is the historical allocate(i); weighted models draw the ball's weight
/// (after every bin draw of the step, per the contract above) and take
/// the guarded weighted path.  The returned weight feeds processes whose
/// bookkeeping is weight-denominated (e.g. tau-Delay's hidden-allocation
/// window); most callers ignore it.
inline weight_t deposit(load_state& state, const ball_weighting& weighting, bin_index i,
                        rng_t& rng) {
  if (weighting.is_unit()) {
    state.allocate(i);
    return 1;
  }
  const weight_t w = weighting.draw(rng);
  state.allocate(i, w);
  return w;
}

/// Installs a model on a process: validates it against the state's bin
/// count, switches lease tracking on/off to match the departure channel
/// (enabling requires an empty state, so lease models must be installed
/// before the first arrival), and moves the model into the process's
/// slot.  Every library process's set_model is this one call.
inline void install_model(load_state& state, alloc_model& slot, alloc_model m) {
  check_model(m, state.n());
  state.set_lease_tracking(m.departures.is_lease());
  slot = std::move(m);
}

/// The weight one drain departure retires under `weighting`: the fixed
/// per-ball weight for deterministic non-unit weightings (every resident
/// ball carries exactly that weight, so the departing ball's actual
/// weight is known), one load unit otherwise -- trivially under unit
/// weights, and under RNG-drawn weightings because the load vector
/// cannot recover which weight draw landed where.
[[nodiscard]] inline weight_t drain_weight(const ball_weighting& weighting) {
  return !weighting.is_unit() && !weighting.is_random() ? weighting.fixed_weight() : 1;
}

/// Removes one departure event's worth of load from `state` per the
/// model's departure channel.  The departure counterpart of deposit():
/// every library process's depart() delegates here, so the three channel
/// laws live in exactly one place.
///
///   * random -- one resident load unit uniformly at random: rejection-
///     sample (bin draw, acceptance draw) pairs until a draw lands on
///     resident load.  Uniform over balls under unit weights and weight-
///     proportional otherwise; releases a unit quantum, mirroring how
///     unit arrivals deposit one.
///   * lease -- FIFO expiry: the oldest resident ball departs whole, at
///     its recorded arrival weight (load_state's lease ring).
///   * drain -- weighted two-choice in reverse: sample two bins, release
///     one departing ball's weight (drain_weight above) from the FULLER
///     one that can cover it (ties broken by the next draw's top bit,
///     mirroring the arrival tie-break; pairs where neither bin covers
///     the weight redraw).  Under the unit law this is exactly the
///     historical "release a unit from the fuller non-empty bin", bit
///     for bit; a bin whose load cannot cover the fixed weight (a state
///     the fixed weighting never produces) trips release()'s underflow
///     contract error, naming the bin and the weight.
///
/// Draw order is part of the sampling contract exactly like arrivals:
/// each channel's draws above are exhaustive and consumed in the order
/// listed, so per-event and interleaved execution are bit-identical.
inline void depart_ball(load_state& state, const alloc_model& model, rng_t& rng) {
  const departure_model& departures = model.departures;
  NB_REQUIRE(!departures.is_none(),
             "depart() needs a departure channel, but the model's departure_model is 'none'");
  NB_REQUIRE(state.balls() > 0, "depart() with no resident balls");
  const bin_count n = state.n();
  const auto& loads = state.loads();
  switch (departures.departure_kind()) {
    case departure_model::kind::none:
      return;  // unreachable: guarded above
    case departure_model::kind::random: {
      // Acceptance bound hoisted: the maximum cannot change while we
      // reject, and in the degraded wide-span regime max_load() is an
      // O(n) scan we must not repeat per attempt.
      const auto bound = static_cast<std::uint64_t>(state.max_load());
      for (;;) {
        const auto j = static_cast<bin_index>(bounded(rng, n));
        if (bounded(rng, bound) < static_cast<std::uint64_t>(loads[j])) {
          state.release(j);
          return;
        }
      }
    }
    case departure_model::kind::lease:
      state.release_oldest();
      return;
    case departure_model::kind::drain: {
      const weight_t w = drain_weight(model.weighting);
      for (;;) {
        const auto i = static_cast<bin_index>(bounded(rng, n));
        const auto j = static_cast<bin_index>(bounded(rng, n));
        const load_t li = loads[i];
        const load_t lj = loads[j];
        if (static_cast<weight_t>(li) < w && static_cast<weight_t>(lj) < w) continue;
        bin_index chosen;
        if (li != lj) {
          chosen = li > lj ? i : j;
        } else {
          chosen = (rng.next() >> 63) != 0 ? i : j;
        }
        state.release(chosen, w);
        return;
      }
    }
  }
}

/// A process that can serve one departure event.
template <typename P>
concept departable_process = requires(P p, rng_t& g) {
  { p.depart(g) } -> std::same_as<void>;
};

/// Serves `count` departure events through the process's per-event
/// depart() -- the serial reference law batched paths are measured
/// against.  The per-event stream here IS the historical one, bit for
/// bit; the engines' depart_many draws different (identically
/// distributed) randomness, exactly like their step_many.
template <departable_process P>
inline void depart_many(P& process, rng_t& rng, step_count count) {
  NB_ASSERT(count >= 0);
  for (step_count t = 0; t < count; ++t) process.depart(rng);
}

/// Applies one merged departure block to `state` -- the bulk counterpart
/// of depart_ball, shared by every process's commit_departures.  The
/// lease channel expires the k oldest balls through the ring (RNG-free,
/// bit-identical to k per-event departures; `rel` is ignored); drain and
/// random apply a departure kernel's per-bin counts in one validated
/// pass, retiring the drain weight (resp. unit quanta) per departing
/// ball with release()'s contract-error vocabulary on any overdraw.
inline void apply_departure_block(load_state& state, const alloc_model& model,
                                  const std::vector<std::uint32_t>& rel, step_count k) {
  const departure_model& departures = model.departures;
  NB_REQUIRE(!departures.is_none(),
             "commit_departures needs a departure channel, but the model's "
             "departure_model is 'none'");
  switch (departures.departure_kind()) {
    case departure_model::kind::none:
      return;  // unreachable: guarded above
    case departure_model::kind::lease:
      for (step_count t = 0; t < k; ++t) state.release_oldest();
      return;
    case departure_model::kind::drain:
      state.apply_releases(rel, drain_weight(model.weighting), k);
      return;
    case departure_model::kind::random:
      state.apply_releases(rel, 1, k);
      return;
  }
}

/// A process whose departures can be served in merged blocks: it exposes
/// its model (the engines route on the departure channel) and applies a
/// per-bin departure-count row in one commit.  Every library process
/// implements commit_departures via apply_departure_block.
template <typename P>
concept batch_departable = departable_process<P> && modeled_process<P> &&
    requires(P p, const std::vector<std::uint32_t>& rel, step_count k) {
      { p.commit_departures(rel, k) } -> std::same_as<void>;
    };

/// An arrival/departure mix for advance(): `arrivals` balls arrive and
/// `departures` events depart, spread evenly across the stream.
struct traffic_spec {
  step_count arrivals = 0;
  step_count departures = 0;
  /// Departure granularity: departures are served in blocks of up to
  /// `grain` events, the arrival stream cut at the block boundaries
  /// (Bresenham over blocks instead of single events).  <= 1 reproduces
  /// the historical per-event interleave bit for bit.  Coarser grains
  /// are a declared sampling-contract parameter -- they regroup the
  /// stream's draw order -- and exist so engine-batched departure paths
  /// see blocks big enough to amortize (window granularity, e.g. the
  /// churn cycle length).
  step_count grain = 1;
};

/// Runs an event stream through `process`: departures are spread evenly
/// across the arrivals (Bresenham interleave, arrivals first within each
/// slice), each arrival slice going through the bulk step_many dispatcher
/// so fused loops and engines keep their speed under churn.  A spec with
/// departures == 0 is EXACTLY step_many(process, rng, arrivals) -- same
/// call, same draws, bit-identical to every historical stream.
template <single_steppable P>
  requires departable_process<P>
inline void advance(P& process, rng_t& rng, const traffic_spec& traffic) {
  const step_count a = traffic.arrivals;
  const step_count d = traffic.departures;
  const step_count g = traffic.grain > 1 ? traffic.grain : 1;
  NB_ASSERT(a >= 0 && d >= 0);
  if (d == 0) {
    nb::step_many(process, rng, a);
    return;
  }
  step_count placed = 0;
  for (step_count served = 0; served < d;) {
    const step_count block = g < d - served ? g : d - served;
    // The block ends after floor(a*(served+block)/d) arrivals; with
    // grain <= 1 this is the historical per-event Bresenham slice.
    // a,d <= max_run_balls keeps the product well inside int64.
    const step_count upto = a * (served + block) / d;
    nb::step_many(process, rng, upto - placed);
    placed = upto;
    nb::depart_many(process, rng, block);
    served += block;
  }
}

// ---------------------------------------------------------------------------
// Intra-run shard parallelism.
//
// In the paper's batched/delayed settings every allocation decision inside
// one stale-snapshot window depends only on state frozen at the window
// start, so the window's balls are embarrassingly parallel.  A process that
// can expose such windows implements the window_parallel contract below;
// shard_engine then splits each window into a *fixed* number of shards,
// gives every shard its own derived RNG substream
// (shard_stream_seed(window_token, s)), lets shards accumulate per-bin
// increment counts in disjoint rows, and merges the rows in fixed shard
// order.  Consequence: for one (seed, shard count) the result is
// bit-identical for ANY thread count -- threads only execute shards, they
// never influence sampling or merge order.  Relative to the serial bulk
// path the parallel path draws different (but identically distributed)
// randomness, so serial-vs-parallel agreement is distributional, not
// bitwise; tests enforce both contracts.
//
// The chunk pattern handed to step_many_parallel is also part of the
// sampling contract: a call boundary inside a window splits it into two
// smaller windows (two tokens).  Cuts on window boundaries -- the natural
// checkpoint cadence, e.g. every b balls for b-Batch -- leave the window
// sequence and therefore the results unchanged.

/// A process that can at least *report* whether its upcoming decisions are
/// frozen against a stale snapshot.  tau-Delay models only this probe (its
/// sliding window advances every step, so the answer is always 0 balls);
/// b-Batch models the full window_parallel contract.
template <typename P>
concept window_probed = requires(const P p) {
  { p.snapshot_window() } -> std::convertible_to<step_count>;
};

/// Full intra-run window-parallel contract (two-sample processes):
///   * snapshot_window(): how many upcoming balls decide against frozen
///     state (0 = none; the engine falls back to the serial fused loop),
///   * window_snapshot(): the frozen loads those decisions read,
///   * snapshot_decide(snap, i1, i2, rng): the decision rule over the
///     compact 8-bit snapshot -- must be a pure function of (snap[i1],
///     snap[i2], rng draws),
///   * commit_window(inc, balls): apply the merged per-bin increments and
///     refresh whatever the process keeps stale (inc[i] balls into bin i,
///     sum(inc) == balls == the window length the engine ran).
template <typename P>
concept window_parallel = allocation_process<P> && window_probed<P> &&
    requires(P p, const P cp, rng_t& g, const std::uint8_t* snap, bin_index i,
             const std::vector<std::uint32_t>& inc, step_count k) {
      { cp.window_snapshot() } -> std::convertible_to<const std::vector<load_t>&>;
      { P::snapshot_decide(snap, i, i, g) } -> std::convertible_to<bin_index>;
      { p.commit_window(inc, k) } -> std::same_as<void>;
    };

/// Window-parallel process whose snapshot_decide is the canonical
/// two-sample min rule ("less loaded of the two sampled bins, ties broken
/// by the next draw's top bit") -- declared by the process via
/// `static constexpr bool kernel_min_select = true` and cross-checked
/// against its snapshot_decide by the kernel test suite.  Only such
/// processes may run through the lane-interleaved allocation kernel
/// (core/kernel/); anything else keeps the generic snapshot_decide loop.
template <typename P>
concept kernel_window_parallel = window_parallel<P> && requires {
  requires P::kernel_min_select;
};

namespace engine_detail {

/// The stale-snapshot window walk shared by shard_engine and
/// kernel_engine: cuts `count` at window boundaries (and at `cap`, which
/// deterministically splits oversized windows), routes undersized windows
/// (below `min_window` or shorter than n/4 balls, where the per-window
/// O(n) work would not amortize) and span-saturated snapshots to the
/// serial fused loop on the master stream, and hands every remaining
/// window to `fast(k, snapshot)` with the snapshot freshly assigned.
/// `acquire()` hands out the compact_snapshot to assign into -- the shard
/// engine alternates two buffers so assigning window k+1 never overwrites
/// the buffer window k's shards may still be reading, the kernel engine
/// reuses one.  Keeping the routing in one place keeps both engines'
/// window selection identical.
template <window_probed P, typename Acquire, typename Fast>
void walk_windows(P& process, rng_t& rng, step_count count, step_count cap,
                  step_count min_window, const Acquire& acquire, const Fast& fast) {
  while (count > 0) {
    const step_count window = process.snapshot_window();
    if (window <= 0) {  // no frozen window: serial for the whole rest
      nb::step_many(process, rng, count);
      return;
    }
    step_count k = window < count ? window : count;
    if (k > cap) k = cap;
    const auto n = static_cast<step_count>(process.state().n());
    if (k < min_window || k * 4 < n) {
      nb::step_many(process, rng, k);
    } else {
      compact_snapshot& snapshot = acquire();
      if (!snapshot.assign(process.window_snapshot())) {
        nb::step_many(process, rng, k);
      } else {
        fast(k, snapshot);
      }
    }
    count -= k;
  }
}

}  // namespace engine_detail

/// Configuration for intra-run shard parallelism.  `shards` is part of the
/// sampling contract (changing it changes which substreams exist and hence
/// the drawn randomness); `threads` is execution only and never affects
/// results.
struct shard_options {
  /// Pool workers; 0 = one per hardware core.
  std::size_t threads = 0;
  /// Fixed shard count per window.  Keep it >= the largest thread count
  /// you will run with; the default covers typical desktops/CI runners.
  std::size_t shards = 16;
  /// Windows shorter than this run serially (shard + merge overhead would
  /// dominate); the engine also requires window >= n/4 so the O(n) merge
  /// amortizes.
  step_count min_window = 4096;
  /// Kernel lanes per shard.  Part of the sampling contract exactly like
  /// `shards`: lane seeds derive from the shard substream, so changing
  /// the lane count changes the drawn randomness.
  std::size_t lanes = 8;
  /// Kernel instruction-set backend.  Execution only: backends are
  /// bit-identical for a fixed lane count (kernel contract, enforced by
  /// tests/test_kernel.cpp), so like `threads` this never affects results.
  kernel_isa isa = kernel_isa::auto_detect;
};

/// The intra-run shard-parallel batch engine.  Owns the worker pool and
/// the per-window scratch (compact snapshot, shard delta rows), so one
/// engine instance amortizes both across all windows of a run -- create it
/// once per run (or reuse across runs of the same configuration).
class shard_engine {
 public:
  explicit shard_engine(shard_options opt = {})
      : opt_(opt), isa_(resolve_kernel_isa(opt.isa)), pool_(opt.threads) {
    NB_REQUIRE(opt.shards >= 1, "need at least one shard");
    NB_REQUIRE(opt.min_window >= 1, "min_window must be positive");
    NB_REQUIRE(opt.lanes >= 1 && opt.lanes <= kernel_max_lanes,
               "kernel lanes must be in [1, kernel_max_lanes]");
    // More workers than hardware threads only time-slices (results are
    // thread-count-independent by contract, so oversubscribing buys
    // nothing); this is the threads_per_run > cores trap, say so once.
    warn_if_oversubscribed(pool_.size(), "shard-engine threads_per_run");
  }

  /// Deferred row clears may still be queued on the pool; they touch
  /// deltas_, which is destroyed before pool_ (reverse declaration
  /// order), so join them first.
  ~shard_engine() { pool_.wait_idle(); }

  [[nodiscard]] const shard_options& options() const noexcept { return opt_; }
  [[nodiscard]] std::size_t threads() const noexcept { return pool_.size(); }
  /// The resolved kernel backend this engine's shards execute with.
  [[nodiscard]] kernel_isa isa() const noexcept { return isa_; }

  /// Allocates `count` balls through `process`.  Window-parallel processes
  /// run each sufficiently large stale-snapshot window across the pool;
  /// everything else (and every undersized or saturated window) takes the
  /// serial fused loop, drawing from `rng` exactly like nb::step_many.
  template <single_steppable P>
  void step_many(P& process, rng_t& rng, step_count count) {
    NB_ASSERT(count >= 0);
    if constexpr (!window_parallel<P>) {
      // The caller asked for intra-run parallelism (threads_per_run) but
      // this process exposes no parallel snapshot windows -- the request
      // is accepted but has no effect, which has historically been a
      // silent trap.  Say so, once per process kind.
      warn_once("shard-engine/" + process.name(),
                "threads_per_run has no effect on process '" + process.name() +
                    "': it exposes no parallel snapshot windows (window_parallel); "
                    "running the serial fused loop instead");
      nb::step_many(process, rng, count);
    } else {
      if constexpr (modeled_process<P>) {
        // RNG-drawn ball weights cannot ride the count-merging window
        // path: a merged per-bin count row cannot reconstruct which
        // weight draw landed where.  Accepted but ineffective, exactly
        // like the no-window trap above -- say so once.
        if (process.model().weighting.is_random()) {
          warn_once("shard-engine-weighted/" + process.name(),
                    "threads_per_run has no effect on process '" + process.name() +
                        "' with random ball weighting " + process.model().weighting.label() +
                        ": merged count rows cannot carry per-ball weight draws; "
                        "running the serial fused loop instead");
          nb::step_many(process, rng, count);
          return;
        }
      }
      // Cap parallel windows so even a shard that routed every one of its
      // balls into a single bin cannot overflow a 16-bit delta row; the
      // cap splits oversized windows deterministically (it depends only
      // on the shard count, never on threads).
      const step_count cap =
          static_cast<step_count>(opt_.shards) * shard_deltas::max_row_count;
      engine_detail::walk_windows(
          process, rng, count, cap, opt_.min_window,
          // Double-buffered snapshot: alternate buffers so assigning the
          // next window's snapshot on the master thread never races the
          // pool work still in flight from the previous window (today the
          // deferred row clears; the buffer swap is what makes any such
          // overlap safe by construction).
          [&]() -> compact_snapshot& {
            snapshot_index_ ^= 1;
            return snapshots_[snapshot_index_];
          },
          [&](step_count k, const compact_snapshot& snapshot) {
            run_window(process, rng, k, snapshot);
          });
    }
  }

  /// Serves `count` departure events through `process`, shard-parallel:
  /// each sufficiently large drain/random block snapshots the live loads,
  /// splits its events across the fixed shard set (shard s serves its
  /// share through the departure kernel on substream
  /// shard_stream_seed(token, s), counting into its own uint16 row), and
  /// merges the rows in fixed shard order.  Shards capacity-check against
  /// the shared snapshot with only their OWN counts, so the merged row
  /// can overdraw a bin; the merge clamps each bin to its snapshot
  /// capacity and re-serves the deficit from the dedicated scalar stream
  /// rng_t(derive_seed(token, shards)) under the serial channel law over
  /// remaining loads -- deterministic, and thread-count invariant exactly
  /// like step_many (threads only execute shards).  The lease channel
  /// commits in bulk unconditionally (RNG-free); undersized blocks and
  /// span-saturated loads fall back to the serial per-event loop with a
  /// one-time diagnostic.
  template <single_steppable P>
    requires departable_process<P>
  void depart_many(P& process, rng_t& rng, step_count count) {
    NB_ASSERT(count >= 0);
    if (count == 0) return;
    if constexpr (!batch_departable<P>) {
      warn_once("depart-engine/" + process.name(),
                "batched departures have no effect on process '" + process.name() +
                    "': it has no commit_departures (batch_departable); "
                    "running the serial per-event loop instead");
      nb::depart_many(process, rng, count);
    } else {
      const departure_model& departures = process.model().departures;
      if (departures.is_none()) {
        nb::depart_many(process, rng, count);
        return;
      }
      if (departures.is_lease()) {
        merged_.clear();
        process.commit_departures(merged_, count);
        return;
      }
      const auto n = static_cast<step_count>(process.state().n());
      // Same uint16-row overflow cap as arrival windows: chunk oversized
      // blocks deterministically (depends only on the shard count).
      const step_count cap =
          static_cast<step_count>(opt_.shards) * shard_deltas::max_row_count;
      while (count > 0) {
        const step_count k = count < cap ? count : cap;
        if (k < opt_.min_window || k * 4 < n) {
          warn_once("depart-engine-window/" + process.name(),
                    "batched departures fall back to the serial per-event loop on process '" +
                        process.name() +
                        "': departure blocks under min_window (or shorter than n/4 events) "
                        "cannot amortize the per-block snapshot");
          nb::depart_many(process, rng, k);
        } else if (!depart_block(process, rng, k)) {
          warn_once("depart-engine-span/" + process.name(),
                    "batched departures fall back to the serial per-event loop on process '" +
                        process.name() +
                        "': the live load span exceeds the compact snapshot's 8-bit range");
          nb::depart_many(process, rng, k);
        }
        count -= k;
      }
    }
  }

 private:
  /// One shard-parallel departure block of `k` events; false when the
  /// live loads cannot compact (caller falls back to the serial loop).
  template <batch_departable P>
  bool depart_block(P& process, rng_t& rng, step_count k) {
    // Same double-buffer rotation as arrival windows: the previous
    // block's deferred row clears may still be in flight on the pool.
    snapshot_index_ ^= 1;
    compact_snapshot& snapshot = snapshots_[snapshot_index_];
    if (!snapshot.assign(process.state().loads())) return false;
    const bin_count n = process.state().n();
    const std::size_t shards = opt_.shards;
    drain_deferred_clears();
    if (deltas_.shards() != shards || deltas_.bins() != n) {
      deltas_.reset(shards, n);
      rows_clean_ = true;
    }
    const std::uint64_t token = rng.next();
    const std::uint8_t* snap = snapshot.data();
    const load_t base = snapshot.base();
    const std::uint8_t span = snapshot.max_off();
    const bool drain =
        process.model().departures.departure_kind() == departure_model::kind::drain;
    const depart_channel channel = drain ? depart_channel::drain : depart_channel::random;
    const weight_t w = drain ? drain_weight(process.model().weighting) : weight_t{1};
    const bool clean = rows_clean_;
    for (std::size_t s = 0; s < shards; ++s) {
      const step_count shard_events =
          k / static_cast<step_count>(shards) +
          (static_cast<step_count>(s) < k % static_cast<step_count>(shards) ? 1 : 0);
      std::uint16_t* row = deltas_.row(s);
      if (shard_events == 0) {
        if (!clean) deltas_.clear_row(s);
        continue;
      }
      pool_.submit([n, snap, base, span, channel, w, row, shard_events, clean,
                    seed = shard_stream_seed(token, s), lanes = opt_.lanes, isa = isa_] {
        if (!clean) std::fill_n(row, n, std::uint16_t{0});
        kernel_depart(isa, lanes, channel, n, snap, base, span, w, row, shard_events, seed);
      });
    }
    pool_.wait_idle();
    rows_clean_ = false;
    merged_.resize(n);
    const auto chunk = static_cast<bin_count>((n + shards - 1) / shards);
    for (bin_index lo = 0; lo < n; lo += chunk) {
      const bin_index hi = lo + chunk < n ? lo + chunk : n;
      pool_.submit([this, lo, hi] { deltas_.sum_rows(merged_, lo, hi); });
    }
    pool_.wait_idle();
    // Clamp and repair: each shard guarded only its own counts, so the
    // merged row may overdraw a bin.  Clamp every bin to its snapshot
    // capacity, then re-serve the deficit serially from the stream one
    // past the shard substreams -- the same law the kernel's drain
    // replay uses, here over the merged remaining loads.
    const auto remaining = [&](bin_index c) -> weight_t {
      return static_cast<weight_t>(base) + snap[c] -
             static_cast<weight_t>(merged_[c]) * w;
    };
    step_count total = 0;
    for (bin_index i = 0; i < n; ++i) {
      const auto capacity = static_cast<std::uint32_t>(
          (static_cast<weight_t>(base) + snap[i]) / w);
      if (merged_[i] > capacity) merged_[i] = capacity;
      total += merged_[i];
    }
    if (total < k) {
      rng_t repair(derive_seed(token, shards));
      const std::uint64_t bound = static_cast<std::uint64_t>(base) + span;
      for (step_count t = total; t < k; ++t) {
        if (!drain) {  // random: rejection-sample over remaining load
          for (;;) {
            const auto j = static_cast<bin_index>(bounded(repair, n));
            if (bounded(repair, bound) < static_cast<std::uint64_t>(remaining(j))) {
              ++merged_[j];
              break;
            }
          }
          continue;
        }
        int attempts = 0;
        for (;;) {
          if (++attempts > 4096) {  // deterministic fullest-bin fallback
            bin_index best = 0;
            weight_t best_rem = remaining(0);
            for (bin_index i = 1; i < n; ++i) {
              const weight_t r = remaining(i);
              if (r > best_rem) {
                best = i;
                best_rem = r;
              }
            }
            NB_REQUIRE(best_rem >= w, "drain departure block cannot retire weight " +
                                          std::to_string(w) +
                                          ": no bin's remaining load covers it");
            ++merged_[best];
            break;
          }
          const auto i = static_cast<bin_index>(bounded(repair, n));
          const auto j = static_cast<bin_index>(bounded(repair, n));
          const weight_t ri = remaining(i);
          const weight_t rj = remaining(j);
          if (ri < w && rj < w) continue;
          const bin_index c =
              ri != rj ? (ri > rj ? i : j) : ((repair.next() >> 63) != 0 ? i : j);
          ++merged_[c];
          break;
        }
      }
    }
    for (std::size_t s = 0; s < shards; ++s) {
      pool_.submit([this, s] { deltas_.clear_row(s); });
    }
    clears_pending_ = true;
    process.commit_departures(merged_, k);
    return true;
  }

  /// Per-shard scratch that outlives one window: the generic (non-kernel)
  /// decide loop's index block.  Engine-owned and cache-line-aligned so a
  /// shard task allocates nothing per window and two shards' scratch
  /// never false-shares; 16 KiB per shard keeps each block L1-resident.
  static constexpr std::size_t kGenericBlock = 2048;
  struct alignas(64) shard_arena {
    std::array<bin_index, 2 * kGenericBlock> idx;
  };

  /// One parallel window of `k` balls, all decided against `snapshot`.
  template <window_parallel P>
  void run_window(P& process, rng_t& rng, step_count k, const compact_snapshot& snapshot) {
    const bin_count n = process.state().n();
    const std::size_t shards = opt_.shards;
    // Non-uniform bin sampling rides the same window machinery: shards
    // draw their bin pairs from the model's alias table instead of the
    // uniform Lemire path.  The table is immutable for the whole window
    // (the process is not stepped while shards run).
    const alias_table* table = nullptr;
    if constexpr (modeled_process<P>) {
      if (!process.model().sampler.is_uniform()) table = &process.model().sampler.table();
    }
    // The previous window's deferred row clears may still be running on
    // the pool; everything below touches the delta rows, so drain first.
    drain_deferred_clears();
    if (deltas_.shards() != shards || deltas_.bins() != n) {
      deltas_.reset(shards, n);
      rows_clean_ = true;
    }
    if (arenas_.size() != shards) arenas_ = std::vector<shard_arena>(shards);
    // One draw from the master stream per window; every shard substream
    // derives from this token, so shard results cannot depend on threads.
    const std::uint64_t window_token = rng.next();
    const std::uint8_t* snap = snapshot.data();
    // rows_clean_: the previous window's clears already zeroed every row
    // (the steady state), so shard tasks skip the redundant re-clear; the
    // first window after a geometry change is clean via reset().
    const bool clean = rows_clean_;
    for (std::size_t s = 0; s < shards; ++s) {
      const step_count shard_balls =
          k / static_cast<step_count>(shards) +
          (static_cast<step_count>(s) < k % static_cast<step_count>(shards) ? 1 : 0);
      std::uint16_t* row = deltas_.row(s);
      if (shard_balls == 0) {
        // Ball-less shard (k < shards): its row still feeds the merge, so
        // make sure no counts linger from the previous window.
        if (!clean) deltas_.clear_row(s);
        continue;
      }
      pool_.submit([n, snap, row, shard_balls, clean,
                    seed = shard_stream_seed(window_token, s), lanes = opt_.lanes, isa = isa_,
                    table, arena = &arenas_[s]] {
        if (!clean) std::fill_n(row, n, std::uint16_t{0});
        run_shard<P>(n, snap, row, shard_balls, seed, lanes, isa, table, arena->idx.data());
      });
    }
    pool_.wait_idle();
    rows_clean_ = false;
    // Merge: fixed shard order per bin, bin ranges summed concurrently
    // (disjoint, so still deterministic).
    merged_.resize(n);
    const auto chunk = static_cast<bin_count>((n + shards - 1) / shards);
    for (bin_index lo = 0; lo < n; lo += chunk) {
      const bin_index hi = lo + chunk < n ? lo + chunk : n;
      pool_.submit([this, lo, hi] { deltas_.sum_rows(merged_, lo, hi); });
    }
    pool_.wait_idle();
    // Overlap the next window's row clears (pool) with this window's
    // commit (master thread): the clears touch only the delta rows, the
    // commit only merged_ + the process state, so the two are disjoint.
    // At n = 10^6 and 16 shards the clears are ~32 MB of stores per
    // window -- off the serial path entirely in the steady state.
    for (std::size_t s = 0; s < shards; ++s) {
      pool_.submit([this, s] { deltas_.clear_row(s); });
    }
    clears_pending_ = true;
    process.commit_window(merged_, k);
  }

  /// Joins the deferred row clears of the previous window (no-op in the
  /// common case where the pool already drained them while the master
  /// thread was busy committing / assigning the next snapshot).
  void drain_deferred_clears() {
    if (!clears_pending_) return;
    pool_.wait_idle();
    clears_pending_ = false;
    rows_clean_ = true;
  }

  /// Shard body.  Min-select processes run the lane-interleaved SIMD
  /// kernel (vectorized block RNG + branchless snapshot decide, see
  /// core/kernel/); non-uniform samplers take the kernel's alias lane
  /// path.  Lane seeds derive from this shard's substream, so the
  /// sampling contract stays (seed, shards, lanes) and never sees threads
  /// or the ISA backend.  Processes with a bespoke snapshot_decide keep
  /// the generic block-sampled loop (uniform Lemire blocks or alias
  /// blocks, per the model) over `idx_block`, this shard's arena scratch
  /// (2 * kGenericBlock entries).
  template <window_parallel P>
  static void run_shard(bin_count n, const std::uint8_t* snap, std::uint16_t* row,
                        step_count shard_balls, std::uint64_t seed, std::size_t lanes,
                        kernel_isa isa, const alias_table* table, bin_index* idx_block) {
    if constexpr (kernel_window_parallel<P>) {
      if (table != nullptr) {
        kernel_run_alias(isa, lanes, n, snap, table->thresholds(), table->aliases(), row,
                         shard_balls, seed);
      } else {
        kernel_run(isa, lanes, n, snap, row, shard_balls, seed);
      }
    } else {
      rng_t srng(seed);
      while (shard_balls > 0) {
        const std::size_t chunk = shard_balls < static_cast<step_count>(kGenericBlock)
                                      ? static_cast<std::size_t>(shard_balls)
                                      : kGenericBlock;
        if (table != nullptr) {
          table->sample_block(srng, idx_block, 2 * chunk);
        } else {
          bounded_block(srng, n, idx_block, 2 * chunk);
        }
        for (std::size_t t = 0; t < chunk; ++t) {
          const bin_index chosen =
              P::snapshot_decide(snap, idx_block[2 * t], idx_block[2 * t + 1], srng);
          ++row[chosen];
        }
        shard_balls -= static_cast<step_count>(chunk);
      }
    }
  }

  shard_options opt_;
  kernel_isa isa_;
  thread_pool pool_;
  /// Two snapshot buffers, alternated per parallel window (see the
  /// acquire lambda in step_many).
  compact_snapshot snapshots_[2];
  std::size_t snapshot_index_ = 0;
  shard_deltas deltas_;
  std::vector<shard_arena> arenas_;
  std::vector<std::uint32_t> merged_;
  /// Deferred-clear state: true while the previous window's row-clear
  /// tasks may still be on the pool / once they finished, respectively.
  bool clears_pending_ = false;
  bool rows_clean_ = false;
};

/// Configuration of the serial kernel engine.  `lanes` is part of the
/// sampling contract (lane streams are derived per window token); `isa`
/// is execution only and never affects results.
struct kernel_options {
  std::size_t lanes = 8;
  kernel_isa isa = kernel_isa::auto_detect;
  /// Windows shorter than this (or shorter than n/4 balls) take the plain
  /// serial fused loop -- the per-window O(n) snapshot/commit would not
  /// amortize.
  step_count min_window = 4096;
};

/// Serial counterpart of shard_engine: every sufficiently large
/// stale-snapshot window runs through the lane-interleaved allocation
/// kernel -- no threads, no shard split, one uint32 increment vector --
/// so single-threaded drivers get the SIMD speedup too.  Sampling
/// contract: one token per window from the master stream; lane l of that
/// window draws from derive_seed(token, l).  For a fixed (seed, lanes)
/// the result is bit-identical across ISA backends; like the shard
/// engine it draws different (identically distributed) randomness than
/// the serial fused loop, so agreement with that path is distributional.
class kernel_engine {
 public:
  explicit kernel_engine(kernel_options opt = {})
      : opt_(opt), isa_(resolve_kernel_isa(opt.isa)) {
    NB_REQUIRE(opt.lanes >= 1 && opt.lanes <= kernel_max_lanes,
               "kernel lanes must be in [1, kernel_max_lanes]");
    NB_REQUIRE(opt.min_window >= 1, "min_window must be positive");
  }

  [[nodiscard]] const kernel_options& options() const noexcept { return opt_; }
  /// The resolved backend windows execute with.
  [[nodiscard]] kernel_isa isa() const noexcept { return isa_; }

  /// Allocates `count` balls through `process`: min-select frozen windows
  /// go through the kernel, everything else (and every undersized or
  /// saturated window) takes the serial fused loop, drawing from `rng`
  /// exactly like nb::step_many.
  template <single_steppable P>
  void step_many(P& process, rng_t& rng, step_count count) {
    NB_ASSERT(count >= 0);
    if constexpr (!kernel_window_parallel<P>) {
      // Same accepted-but-ineffective trap as the shard engine: use_kernel
      // only accelerates min-select frozen windows.
      warn_once("kernel-engine/" + process.name(),
                "use_kernel has no effect on process '" + process.name() +
                    "': it exposes no min-select snapshot windows (kernel_min_select); "
                    "running the serial fused loop instead");
      nb::step_many(process, rng, count);
    } else {
      if constexpr (modeled_process<P>) {
        // Same merged-count limitation as the shard engine: random ball
        // weights force the serial fused loop.  One-time diagnostic so
        // the silent fallback is visible.
        if (process.model().weighting.is_random()) {
          warn_once("kernel-engine-weighted/" + process.name(),
                    "use_kernel has no effect on process '" + process.name() +
                        "' with random ball weighting " + process.model().weighting.label() +
                        ": merged count rows cannot carry per-ball weight draws; "
                        "running the serial fused loop instead");
          nb::step_many(process, rng, count);
          return;
        }
      }
      // No row-width cap needed: whole windows accumulate into uint32
      // counters and a run is bounded by max_run_balls anyway.  Serial
      // engine, so a single snapshot buffer suffices (nothing outlives
      // the window that could race the next assign).
      engine_detail::walk_windows(
          process, rng, count, max_run_balls, opt_.min_window,
          [&]() -> compact_snapshot& { return snapshot_; },
          [&](step_count k, const compact_snapshot& snapshot) {
            // One master-stream draw per window (same cadence as the
            // shard engine), then the whole window decides in the kernel
            // -- the alias lane path when the model samples non-uniformly.
            const std::uint64_t token = rng.next();
            const bin_count n = process.state().n();
            inc_.assign(n, 0);
            const alias_table* table = nullptr;
            if constexpr (modeled_process<P>) {
              if (!process.model().sampler.is_uniform()) {
                table = &process.model().sampler.table();
              }
            }
            if (table != nullptr) {
              kernel_run_alias(isa_, opt_.lanes, n, snapshot.data(), table->thresholds(),
                               table->aliases(), inc_.data(), k, token);
            } else {
              kernel_run(isa_, opt_.lanes, n, snapshot.data(), inc_.data(), k, token);
            }
            process.commit_window(inc_, k);
          });
    }
  }

  /// Serves `count` departure events through `process`.  Sufficiently
  /// large drain/random blocks run the SIMD departure kernel against a
  /// snapshot of the LIVE loads (departures need no frozen window of
  /// their own -- the block freezes its snapshot at the block start, so
  /// windowless processes batch too) with one master-stream token per
  /// block, exactly the step_many cadence; the lease channel is RNG-free
  /// ring popping and commits in bulk unconditionally.  Undersized blocks
  /// and span-saturated loads fall back to the serial per-event loop with
  /// a one-time diagnostic -- like every engine fallback, accepted but
  /// ineffective is something the caller must hear about.
  template <single_steppable P>
    requires departable_process<P>
  void depart_many(P& process, rng_t& rng, step_count count) {
    NB_ASSERT(count >= 0);
    if (count == 0) return;
    if constexpr (!batch_departable<P>) {
      warn_once("depart-engine/" + process.name(),
                "batched departures have no effect on process '" + process.name() +
                    "': it has no commit_departures (batch_departable); "
                    "running the serial per-event loop instead");
      nb::depart_many(process, rng, count);
    } else {
      const departure_model& departures = process.model().departures;
      if (departures.is_none()) {
        // Let the per-event law raise its configuration error.
        nb::depart_many(process, rng, count);
        return;
      }
      if (departures.is_lease()) {
        rel_.clear();
        process.commit_departures(rel_, count);
        return;
      }
      const bin_count n = process.state().n();
      if (count < opt_.min_window || count * 4 < static_cast<step_count>(n)) {
        warn_once("depart-engine-window/" + process.name(),
                  "batched departures fall back to the serial per-event loop on process '" +
                      process.name() +
                      "': departure blocks under min_window (or shorter than n/4 events) "
                      "cannot amortize the per-block snapshot");
        nb::depart_many(process, rng, count);
        return;
      }
      if (!snapshot_.assign(process.state().loads())) {
        warn_once("depart-engine-span/" + process.name(),
                  "batched departures fall back to the serial per-event loop on process '" +
                      process.name() +
                      "': the live load span exceeds the compact snapshot's 8-bit range");
        nb::depart_many(process, rng, count);
        return;
      }
      const bool drain = departures.departure_kind() == departure_model::kind::drain;
      const weight_t w = drain ? drain_weight(process.model().weighting) : weight_t{1};
      const std::uint64_t token = rng.next();
      rel_.assign(n, 0);
      kernel_depart(isa_, opt_.lanes, drain ? depart_channel::drain : depart_channel::random, n,
                    snapshot_.data(), snapshot_.base(), snapshot_.max_off(), w, rel_.data(),
                    count, token);
      process.commit_departures(rel_, count);
    }
  }

 private:
  kernel_options opt_;
  kernel_isa isa_;
  compact_snapshot snapshot_;
  std::vector<std::uint32_t> inc_;
  std::vector<std::uint32_t> rel_;
};

/// Type-erased handle so heterogeneous processes can share registries,
/// factories and driver code.  Copy = deep clone.
class any_process {
 public:
  template <allocation_process P>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit wrap is the point.
  any_process(P process) : impl_(std::make_unique<model_t<P>>(std::move(process))) {}

  any_process(const any_process& other) : impl_(other.impl_->clone()) {}
  any_process& operator=(const any_process& other) {
    if (this != &other) impl_ = other.impl_->clone();
    return *this;
  }
  any_process(any_process&&) noexcept = default;
  any_process& operator=(any_process&&) noexcept = default;

  void step(rng_t& rng) { impl_->step(rng); }
  /// One indirect call for the whole chunk; the wrapped process's fused
  /// loop (or the fallback loop) runs fully inlined behind it.
  void step_many(rng_t& rng, step_count count) { impl_->step_many(rng, count); }
  /// One indirect call per chunk into the shard engine: window-parallel
  /// wrapped types run shard-parallel, everything else takes the serial
  /// fused loop -- same dispatch as the template path, behind type erasure.
  void step_many_parallel(rng_t& rng, step_count count, shard_engine& engine) {
    impl_->step_many_parallel(rng, count, engine);
  }
  /// Same, into the serial kernel engine: min-select frozen windows run
  /// the SIMD kernel, everything else the serial fused loop.
  void step_many_kernel(rng_t& rng, step_count count, kernel_engine& engine) {
    impl_->step_many_kernel(rng, count, engine);
  }
  /// One departure event through the wrapped process's channel.  Throws
  /// contract_error when the wrapped type is not departable (pre-churn
  /// process types that never adopted depart()).
  void depart(rng_t& rng) { impl_->depart(rng); }
  /// `count` departure events through the wrapped process's serial
  /// per-event loop -- one indirect call for the whole block.
  void depart_many(rng_t& rng, step_count count) { impl_->depart_many(rng, count); }
  /// Same, shard-parallel through the engine's batched departure path
  /// (batch-departable wrapped types; everything else falls back to the
  /// serial per-event loop inside the engine).
  void depart_many_parallel(rng_t& rng, step_count count, shard_engine& engine) {
    impl_->depart_many_parallel(rng, count, engine);
  }
  /// Same, through the serial kernel engine's batched departure path.
  void depart_many_kernel(rng_t& rng, step_count count, kernel_engine& engine) {
    impl_->depart_many_kernel(rng, count, engine);
  }
  [[nodiscard]] const load_state& state() const { return impl_->state(); }
  void reset() { impl_->reset(); }
  [[nodiscard]] std::string name() const { return impl_->name(); }
  /// Generalized-model plumbing: forwards to the wrapped process when it
  /// models the (weighting, sampler) contract; otherwise only the default
  /// unit/uniform model is accepted (anything else is a configuration
  /// error the caller must hear about).
  void set_model(alloc_model m) { impl_->set_model(std::move(m)); }
  [[nodiscard]] const alloc_model& model() const { return impl_->model(); }
  /// Checkpoint plumbing behind the erasure.  checkpointable() probes the
  /// wrapped type; save/restore on a non-checkpointable process throws
  /// contract_error (drivers probe first and degrade to checkpoint-free
  /// execution with a diagnostic).
  [[nodiscard]] bool checkpointable() const noexcept { return impl_->checkpointable(); }
  void save_checkpoint(state_writer& w) const { impl_->save_checkpoint(w); }
  void restore_checkpoint(state_reader& r) { impl_->restore_checkpoint(r); }
  /// Window probe for checkpoint cadence: balls until the wrapped
  /// process's next stale-snapshot window boundary (0 = no frozen window,
  /// any cut is a boundary).  Checkpoint cuts aligned to this leave the
  /// engines' window sequence -- and therefore the results -- unchanged.
  [[nodiscard]] step_count snapshot_window() const { return impl_->snapshot_window(); }

 private:
  struct base {
    virtual ~base() = default;
    virtual void step(rng_t&) = 0;
    virtual void step_many(rng_t&, step_count) = 0;
    virtual void step_many_parallel(rng_t&, step_count, shard_engine&) = 0;
    virtual void step_many_kernel(rng_t&, step_count, kernel_engine&) = 0;
    virtual void depart(rng_t&) = 0;
    virtual void depart_many(rng_t&, step_count) = 0;
    virtual void depart_many_parallel(rng_t&, step_count, shard_engine&) = 0;
    virtual void depart_many_kernel(rng_t&, step_count, kernel_engine&) = 0;
    [[nodiscard]] virtual const load_state& state() const = 0;
    virtual void reset() = 0;
    [[nodiscard]] virtual std::string name() const = 0;
    virtual void set_model(alloc_model) = 0;
    [[nodiscard]] virtual const alloc_model& model() const = 0;
    [[nodiscard]] virtual bool checkpointable() const noexcept = 0;
    virtual void save_checkpoint(state_writer&) const = 0;
    virtual void restore_checkpoint(state_reader&) = 0;
    [[nodiscard]] virtual step_count snapshot_window() const = 0;
    [[nodiscard]] virtual std::unique_ptr<base> clone() const = 0;
  };

  template <allocation_process P>
  struct model_t final : base {
    explicit model_t(P p) : process(std::move(p)) {}
    void step(rng_t& rng) override { process.step(rng); }
    void step_many(rng_t& rng, step_count count) override {
      nb::step_many(process, rng, count);
    }
    void step_many_parallel(rng_t& rng, step_count count, shard_engine& engine) override {
      engine.step_many(process, rng, count);
    }
    void step_many_kernel(rng_t& rng, step_count count, kernel_engine& engine) override {
      engine.step_many(process, rng, count);
    }
    void depart(rng_t& rng) override {
      if constexpr (departable_process<P>) {
        process.depart(rng);
      } else {
        throw contract_error("process '" + process.name() + "' does not support departures");
      }
    }
    void depart_many(rng_t& rng, step_count count) override {
      if constexpr (departable_process<P>) {
        nb::depart_many(process, rng, count);
      } else {
        throw contract_error("process '" + process.name() + "' does not support departures");
      }
    }
    void depart_many_parallel(rng_t& rng, step_count count, shard_engine& engine) override {
      if constexpr (departable_process<P>) {
        engine.depart_many(process, rng, count);
      } else {
        throw contract_error("process '" + process.name() + "' does not support departures");
      }
    }
    void depart_many_kernel(rng_t& rng, step_count count, kernel_engine& engine) override {
      if constexpr (departable_process<P>) {
        engine.depart_many(process, rng, count);
      } else {
        throw contract_error("process '" + process.name() + "' does not support departures");
      }
    }
    [[nodiscard]] const load_state& state() const override { return process.state(); }
    void reset() override { process.reset(); }
    [[nodiscard]] std::string name() const override { return process.name(); }
    void set_model(alloc_model m) override {
      if constexpr (modeled_process<P>) {
        process.set_model(std::move(m));
      } else {
        NB_REQUIRE(m.is_default(), "process '" + process.name() +
                                       "' does not support weighted/non-uniform allocation");
      }
    }
    [[nodiscard]] const alloc_model& model() const override {
      if constexpr (modeled_process<P>) {
        return process.model();
      } else {
        static const alloc_model default_model{};
        return default_model;
      }
    }
    [[nodiscard]] bool checkpointable() const noexcept override {
      return checkpointable_process<P>;
    }
    void save_checkpoint(state_writer& w) const override {
      if constexpr (checkpointable_process<P>) {
        process.save_checkpoint(w);
      } else {
        throw contract_error("checkpoint save/restore is not supported by process " +
                             process.name());
      }
    }
    void restore_checkpoint(state_reader& r) override {
      if constexpr (checkpointable_process<P>) {
        process.restore_checkpoint(r);
      } else {
        throw contract_error("checkpoint save/restore is not supported by process " +
                             process.name());
      }
    }
    [[nodiscard]] step_count snapshot_window() const override {
      if constexpr (window_probed<P>) {
        return process.snapshot_window();
      } else {
        return 0;
      }
    }
    [[nodiscard]] std::unique_ptr<base> clone() const override {
      return std::make_unique<model_t<P>>(process);
    }
    P process;
  };

  std::unique_ptr<base> impl_;
};

static_assert(allocation_process<any_process>);
static_assert(departable_process<any_process>);

/// Parallel counterpart of step_many(): allocates `count` balls through
/// `engine`, shard-parallel wherever the process exposes stale-snapshot
/// windows and serially everywhere else.  Drivers pick this entry point
/// when the caller asked for intra-run threads (threads_per_run > 0).
template <single_steppable P>
inline void step_many_parallel(P& process, rng_t& rng, step_count count, shard_engine& engine) {
  engine.step_many(process, rng, count);
}

/// Type-erased overload: one virtual call per chunk, engine dispatch on
/// the wrapped concrete type behind it.
inline void step_many_parallel(any_process& process, rng_t& rng, step_count count,
                               shard_engine& engine) {
  process.step_many_parallel(rng, count, engine);
}

/// Serial-kernel counterpart of step_many(): allocates `count` balls
/// through `engine`, SIMD-kernel wherever the process exposes min-select
/// stale-snapshot windows and the serial fused loop everywhere else.
template <single_steppable P>
inline void step_many_kernel(P& process, rng_t& rng, step_count count, kernel_engine& engine) {
  engine.step_many(process, rng, count);
}

/// Type-erased overload.
inline void step_many_kernel(any_process& process, rng_t& rng, step_count count,
                             kernel_engine& engine) {
  process.step_many_kernel(rng, count, engine);
}

/// Type-erased overload of the serial reference depart_many.
inline void depart_many(any_process& process, rng_t& rng, step_count count) {
  process.depart_many(rng, count);
}

/// Batched-departure counterparts of step_many_parallel/step_many_kernel:
/// serve `count` departure events through the engine, kernel-batched
/// wherever the process is batch-departable and its channel/block size
/// qualify, serially (with the engine's one-time fallback diagnostics)
/// everywhere else.
template <single_steppable P>
  requires departable_process<P>
inline void depart_many_parallel(P& process, rng_t& rng, step_count count,
                                 shard_engine& engine) {
  engine.depart_many(process, rng, count);
}

inline void depart_many_parallel(any_process& process, rng_t& rng, step_count count,
                                 shard_engine& engine) {
  process.depart_many_parallel(rng, count, engine);
}

template <single_steppable P>
  requires departable_process<P>
inline void depart_many_kernel(P& process, rng_t& rng, step_count count, kernel_engine& engine) {
  engine.depart_many(process, rng, count);
}

inline void depart_many_kernel(any_process& process, rng_t& rng, step_count count,
                               kernel_engine& engine) {
  process.depart_many_kernel(rng, count, engine);
}

}  // namespace nb
