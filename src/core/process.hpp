// The allocation-process abstraction.
//
// A process owns a load_state and knows how to allocate one ball per step
// given a source of randomness.  Concrete processes are plain value types
// (copyable, no virtual calls) so the simulation drivers can be templates
// with fully inlined hot loops; `any_process` adds type erasure for
// registry-style code.
//
// Bulk stepping: the free function `step_many(p, rng, count)` allocates
// `count` balls.  Processes that define a member `step_many(rng, count)`
// get a fused batch loop (amortized snapshot/window maintenance, hoisted
// invariants, and -- through any_process -- one indirect call per chunk
// instead of one per ball); everything else falls back to a plain loop
// over step().  Contract: a member step_many must consume randomness in
// exactly the same order as `count` calls of step(), so per-ball and bulk
// execution are bit-identical for a fixed seed (enforced by the
// step/step_many parity tests).
#pragma once

#include <concepts>
#include <memory>
#include <string>
#include <utility>

#include "core/load_vector.hpp"
#include "rng/rng.hpp"

namespace nb {

/// The library-wide generator type.  All processes consume randomness from
/// an explicit instance of this; nothing keeps hidden RNG state.
using rng_t = xoshiro256pp;

/// A type that can allocate one ball per step.
template <typename P>
concept single_steppable = requires(P p, rng_t& g) {
  { p.step(g) } -> std::same_as<void>;
};

/// A type with a native fused bulk loop.
template <typename P>
concept bulk_steppable = requires(P p, rng_t& g, step_count c) {
  { p.step_many(g, c) } -> std::same_as<void>;
};

/// Allocates `count` balls: dispatches to the process's fused member
/// `step_many` when it has one, otherwise loops over step().  This is the
/// entry point every driver (simulate, record_trace, the bench harness)
/// uses; both paths draw randomness in the same order, so results are
/// bit-identical either way.
template <single_steppable P>
inline void step_many(P& process, rng_t& rng, step_count count) {
  NB_ASSERT(count >= 0);
  if constexpr (bulk_steppable<P>) {
    process.step_many(rng, count);
  } else {
    for (step_count t = 0; t < count; ++t) process.step(rng);
  }
}

/// Concept every allocation process satisfies.  Bulk stepping is part of
/// the contract, but via the free-function dispatcher above, so processes
/// without a native member step_many keep working through the fallback.
template <typename P>
concept allocation_process = single_steppable<P> &&
    requires(P p, const P cp, rng_t& g, step_count c) {
      { step_many(p, g, c) } -> std::same_as<void>;
      { cp.state() } -> std::convertible_to<const load_state&>;
      { p.reset() } -> std::same_as<void>;
      { cp.name() } -> std::convertible_to<std::string>;
    };

/// Samples one bin uniformly at random (One-Choice primitive).
inline bin_index sample_bin(rng_t& rng, bin_count n) {
  return static_cast<bin_index>(bounded(rng, n));
}

/// Type-erased handle so heterogeneous processes can share registries,
/// factories and driver code.  Copy = deep clone.
class any_process {
 public:
  template <allocation_process P>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit wrap is the point.
  any_process(P process) : impl_(std::make_unique<model<P>>(std::move(process))) {}

  any_process(const any_process& other) : impl_(other.impl_->clone()) {}
  any_process& operator=(const any_process& other) {
    if (this != &other) impl_ = other.impl_->clone();
    return *this;
  }
  any_process(any_process&&) noexcept = default;
  any_process& operator=(any_process&&) noexcept = default;

  void step(rng_t& rng) { impl_->step(rng); }
  /// One indirect call for the whole chunk; the wrapped process's fused
  /// loop (or the fallback loop) runs fully inlined behind it.
  void step_many(rng_t& rng, step_count count) { impl_->step_many(rng, count); }
  [[nodiscard]] const load_state& state() const { return impl_->state(); }
  void reset() { impl_->reset(); }
  [[nodiscard]] std::string name() const { return impl_->name(); }

 private:
  struct base {
    virtual ~base() = default;
    virtual void step(rng_t&) = 0;
    virtual void step_many(rng_t&, step_count) = 0;
    [[nodiscard]] virtual const load_state& state() const = 0;
    virtual void reset() = 0;
    [[nodiscard]] virtual std::string name() const = 0;
    [[nodiscard]] virtual std::unique_ptr<base> clone() const = 0;
  };

  template <allocation_process P>
  struct model final : base {
    explicit model(P p) : process(std::move(p)) {}
    void step(rng_t& rng) override { process.step(rng); }
    void step_many(rng_t& rng, step_count count) override {
      nb::step_many(process, rng, count);
    }
    [[nodiscard]] const load_state& state() const override { return process.state(); }
    void reset() override { process.reset(); }
    [[nodiscard]] std::string name() const override { return process.name(); }
    [[nodiscard]] std::unique_ptr<base> clone() const override {
      return std::make_unique<model<P>>(process);
    }
    P process;
  };

  std::unique_ptr<base> impl_;
};

static_assert(allocation_process<any_process>);

}  // namespace nb
