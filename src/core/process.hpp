// The allocation-process abstraction.
//
// A process owns a load_state and knows how to allocate one ball per step
// given a source of randomness.  Concrete processes are plain value types
// (copyable, no virtual calls) so the simulation drivers can be templates
// with fully inlined hot loops; `any_process` adds type erasure for
// registry-style code where one indirect call per ball is acceptable.
#pragma once

#include <concepts>
#include <memory>
#include <string>
#include <utility>

#include "core/load_vector.hpp"
#include "rng/rng.hpp"

namespace nb {

/// The library-wide generator type.  All processes consume randomness from
/// an explicit instance of this; nothing keeps hidden RNG state.
using rng_t = xoshiro256pp;

/// Concept every allocation process satisfies.
template <typename P>
concept allocation_process = requires(P p, const P cp, rng_t& g) {
  { p.step(g) } -> std::same_as<void>;
  { cp.state() } -> std::convertible_to<const load_state&>;
  { p.reset() } -> std::same_as<void>;
  { cp.name() } -> std::convertible_to<std::string>;
};

/// Samples one bin uniformly at random (One-Choice primitive).
inline bin_index sample_bin(rng_t& rng, bin_count n) {
  return static_cast<bin_index>(bounded(rng, n));
}

/// Type-erased handle so heterogeneous processes can share registries,
/// factories and driver code.  Copy = deep clone.
class any_process {
 public:
  template <allocation_process P>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit wrap is the point.
  any_process(P process) : impl_(std::make_unique<model<P>>(std::move(process))) {}

  any_process(const any_process& other) : impl_(other.impl_->clone()) {}
  any_process& operator=(const any_process& other) {
    if (this != &other) impl_ = other.impl_->clone();
    return *this;
  }
  any_process(any_process&&) noexcept = default;
  any_process& operator=(any_process&&) noexcept = default;

  void step(rng_t& rng) { impl_->step(rng); }
  [[nodiscard]] const load_state& state() const { return impl_->state(); }
  void reset() { impl_->reset(); }
  [[nodiscard]] std::string name() const { return impl_->name(); }

 private:
  struct base {
    virtual ~base() = default;
    virtual void step(rng_t&) = 0;
    [[nodiscard]] virtual const load_state& state() const = 0;
    virtual void reset() = 0;
    [[nodiscard]] virtual std::string name() const = 0;
    [[nodiscard]] virtual std::unique_ptr<base> clone() const = 0;
  };

  template <allocation_process P>
  struct model final : base {
    explicit model(P p) : process(std::move(p)) {}
    void step(rng_t& rng) override { process.step(rng); }
    [[nodiscard]] const load_state& state() const override { return process.state(); }
    void reset() override { process.reset(); }
    [[nodiscard]] std::string name() const override { return process.name(); }
    [[nodiscard]] std::unique_ptr<base> clone() const override {
      return std::make_unique<model<P>>(process);
    }
    P process;
  };

  std::unique_ptr<base> impl_;
};

static_assert(allocation_process<any_process>);

}  // namespace nb
