// The generalized allocation model: *what* a ball deposits and *where* the
// samples come from.
//
// The paper's processes hardwire two assumptions: every ball has weight 1,
// and every sampled bin is uniform over [n].  Both generalize (weighted
// balls / heavy-tailed job sizes; biased sampling / heterogeneous-capacity
// bins), and the batched/noisy two-choice analysis extends naturally, so
// the library carries the pair as an explicit value:
//
//   * ball_weighting -- the per-ball weight law: unit (the paper's model),
//     fixed integer weight, or RNG-driven draws (two-point, truncated
//     discrete Pareto).  Unit and fixed draws consume NO randomness, so
//     the unit configuration is bit-identical to the historical code.
//   * bin_sampler    -- the per-sample bin law: uniform (Lemire fast path,
//     bit-identical to nb::bounded) or an alias table over an arbitrary
//     probability vector (Vose's method, two u64 draws per sample).
//
// Steady-state churn (PR 9) adds the third leg:
//
//   * departure_model -- *how* resident balls leave: none (the paper's
//     insertion-only model), random (a uniformly random resident load
//     unit departs), lease (FIFO expiry -- the oldest resident ball
//     departs whole, via the load_state's lease ring), or drain
//     (two-choice in reverse: a unit leaves the fuller of two sampled
//     bins).  The "none" configuration draws no randomness and keeps
//     every historical label and stream byte-identical.
//
// An alloc_model bundles one of each; every process carries one
// (defaulting to unit/uniform/none) and threads it through step/step_many,
// the frozen-window engines and the churn driver.  All three laws are part
// of the *sampling contract*: results are a pure function of (config,
// model, seed), never of thread counts or ISA backends.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "rng/rng.hpp"

namespace nb {

// ---------------------------------------------------------------------------
// Ball weighting.

class ball_weighting {
 public:
  enum class kind : std::uint8_t {
    unit,       ///< weight 1, no randomness (the paper's model)
    fixed,      ///< constant integer weight, no randomness
    two_point,  ///< lo w.p. 1-p, hi w.p. p (one canonical draw per ball)
    pareto,     ///< truncated discrete Pareto(alpha) >= 1 (one draw per ball)
  };

  /// The default: every ball deposits exactly 1.
  ball_weighting() = default;

  [[nodiscard]] static ball_weighting unit() { return {}; }

  /// Every ball deposits exactly `w` (job batches, fixed-size shards).
  [[nodiscard]] static ball_weighting fixed(weight_t w);

  /// Bimodal job sizes: `lo` with probability 1 - p_hi, `hi` with p_hi.
  [[nodiscard]] static ball_weighting two_point(weight_t lo, weight_t hi, double p_hi);

  /// Heavy-tailed job sizes: W = min(cap, floor((1-U)^(-1/alpha))) >= 1,
  /// the discrete truncated Pareto with tail index `alpha` (smaller alpha
  /// = heavier tail).  `cap` keeps single draws below max_ball_weight.
  [[nodiscard]] static ball_weighting pareto(double alpha, weight_t cap);

  [[nodiscard]] kind weighting_kind() const noexcept { return kind_; }
  /// True for the paper's unit model -- the bit-parity fast path.
  [[nodiscard]] bool is_unit() const noexcept { return kind_ == kind::unit; }
  /// True when draw() consumes randomness (two-point / pareto).  Random
  /// weights cannot ride the count-merging frozen-window engines: a merged
  /// per-bin *count* row cannot reconstruct which draw went where.
  [[nodiscard]] bool is_random() const noexcept {
    return kind_ == kind::two_point || kind_ == kind::pareto;
  }

  /// The constant weight of a non-random law (unit -> 1, fixed -> w).
  [[nodiscard]] weight_t fixed_weight() const {
    NB_REQUIRE(!is_random(), "fixed_weight() needs a deterministic weighting");
    return a_;
  }

  /// Upper bound on any single draw (overflow planning; <= max_ball_weight).
  [[nodiscard]] weight_t max_weight() const noexcept {
    switch (kind_) {
      case kind::unit:
      case kind::fixed:
        return a_;
      case kind::two_point:
        return a_ > b_ ? a_ : b_;
      case kind::pareto:
        return b_;  // the truncation cap
    }
    return a_;
  }

  /// One ball's weight.  Unit/fixed consume no generator output; two-point
  /// and pareto consume exactly one u64 (via canonical) per call.
  template <uniform_random_u64 G>
  [[nodiscard]] weight_t draw(G& rng) const {
    switch (kind_) {
      case kind::unit:
      case kind::fixed:
        return a_;
      case kind::two_point:
        return canonical(rng) < p_ ? b_ : a_;
      case kind::pareto: {
        // Inverse-CDF of the continuous Pareto, floored onto {1, 2, ...}
        // and truncated at the cap.  1 - canonical() is in (0, 1], so the
        // pow argument never hits 0.
        const double u = 1.0 - canonical(rng);
        const double w = std::floor(std::pow(u, -1.0 / p_));
        if (w >= static_cast<double>(b_)) return b_;
        return w < 1.0 ? weight_t{1} : static_cast<weight_t>(w);
      }
    }
    return a_;
  }

  /// Stable human/CLI-facing name: "unit", "fixed[w=8]",
  /// "two-point[1,64,p=0.1]", "pareto[a=1.5,cap=4096]".
  [[nodiscard]] std::string label() const;

  friend bool operator==(const ball_weighting&, const ball_weighting&) = default;

 private:
  kind kind_ = kind::unit;
  weight_t a_ = 1;  ///< unit/fixed weight, two-point lo
  weight_t b_ = 1;  ///< two-point hi, pareto cap
  double p_ = 0.0;  ///< two-point p_hi, pareto alpha
};

// ---------------------------------------------------------------------------
// Alias-table sampling (Vose's method).

/// O(1)-per-draw sampler for an arbitrary probability vector over [n):
/// slot = uniform index, then keep the slot iff one raw u64 falls below
/// its 64-bit fixed-point acceptance threshold, else take its alias.  Draw
/// order per sample -- Lemire-bounded slot (>= 1 u64), then exactly one
/// threshold u64 -- is part of the sampling contract and shared verbatim
/// by the serial path, the shard engine and the kernel's alias lane path.
class alias_table {
 public:
  alias_table() = default;

  /// Builds from non-negative (unnormalized) weights; at least one must be
  /// positive.  Construction is deterministic: the same vector always
  /// yields the same table, on every platform.
  explicit alias_table(const std::vector<double>& weights);

  [[nodiscard]] bin_count size() const noexcept { return static_cast<bin_count>(n_); }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }

  /// 64-bit fixed-point keep-thresholds, one per slot (kernel gathers).
  [[nodiscard]] const std::uint64_t* thresholds() const noexcept { return thresh_.data(); }
  /// Alias bin per slot (kernel gathers).
  [[nodiscard]] const bin_index* aliases() const noexcept { return alias_.data(); }

  /// The probability vector the table realizes (exactly: slot and alias
  /// contributions folded back together) -- for tests and diagnostics.
  [[nodiscard]] std::vector<double> probabilities() const;

  template <uniform_random_u64 G>
  [[nodiscard]] bin_index sample(G& rng) const {
    NB_ASSERT(n_ >= 1);
    const auto slot = static_cast<bin_index>(bounded(rng, n_));
    const std::uint64_t u = rng.next();
    return u < thresh_[slot] ? slot : alias_[slot];
  }

  /// Block counterpart (shard inner loops): fills dst[0..count) with
  /// i.i.d. draws, consuming the generator exactly like `count` sample()
  /// calls.  The Lemire rejection threshold is hoisted once.
  template <uniform_random_u64 G>
  void sample_block(G& rng, bin_index* dst, std::size_t count) const {
    NB_ASSERT(n_ >= 1);
    const std::uint64_t reject_below = (0 - n_) % n_;
    for (std::size_t i = 0; i < count; ++i) {
      std::uint64_t x = rng.next();
      auto m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n_);
      while (static_cast<std::uint64_t>(m) < reject_below) {
        x = rng.next();
        m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n_);
      }
      const auto slot = static_cast<bin_index>(m >> 64);
      const std::uint64_t u = rng.next();
      dst[i] = u < thresh_[slot] ? slot : alias_[slot];
    }
  }

 private:
  std::vector<std::uint64_t> thresh_;
  std::vector<bin_index> alias_;
  std::uint64_t n_ = 0;
};

// ---------------------------------------------------------------------------
// Bin sampler.

class bin_sampler {
 public:
  /// The default: uniform over [n) (the paper's model, Lemire fast path).
  bin_sampler() = default;

  [[nodiscard]] static bin_sampler uniform() { return {}; }

  /// Samples bin i with probability weights[i] / sum(weights).  `label`
  /// names the family for journals/bench legs (e.g. "zipf:1"); it defaults
  /// to "alias".
  [[nodiscard]] static bin_sampler alias(const std::vector<double>& weights,
                                         std::string label = "alias");

  [[nodiscard]] bool is_uniform() const noexcept { return table_.empty(); }
  /// Bin count a non-uniform sampler is bound to (0 = uniform, any n).
  [[nodiscard]] bin_count bins() const noexcept { return table_.size(); }
  [[nodiscard]] const alias_table& table() const noexcept { return table_; }

  /// One bin sample.  Uniform consumes generator output exactly like
  /// nb::bounded(rng, n) -- the historical stream, bit for bit.
  template <uniform_random_u64 G>
  [[nodiscard]] bin_index sample(G& rng, bin_count n) const {
    if (is_uniform()) return static_cast<bin_index>(bounded(rng, n));
    NB_ASSERT(table_.size() == n);
    return table_.sample(rng);
  }

  /// "uniform" or the alias family label ("zipf:1", "hot:10,0.5", ...).
  [[nodiscard]] std::string label() const { return is_uniform() ? "uniform" : label_; }

 private:
  alias_table table_;
  std::string label_;
};

// ---------------------------------------------------------------------------
// Departure model (steady-state churn).

/// *How* resident balls leave the system.  Pure policy, no mutable state:
/// the lease channel's FIFO residency record lives in load_state (enabled
/// by install_model when this channel is selected), mirroring how the
/// samplers' tables are configuration while the loads are state.
class departure_model {
 public:
  enum class kind : std::uint8_t {
    none,    ///< insertion-only (the paper's model); no churn surface
    random,  ///< a uniformly random resident load unit departs
    lease,   ///< FIFO lease expiry: the oldest resident ball departs whole
    drain,   ///< two-choice drain: a unit leaves the fuller of two samples
  };

  /// The default: nothing ever departs.
  departure_model() = default;

  [[nodiscard]] static departure_model none() { return {}; }
  [[nodiscard]] static departure_model random();
  [[nodiscard]] static departure_model lease();
  [[nodiscard]] static departure_model drain();

  [[nodiscard]] kind departure_kind() const noexcept { return kind_; }
  /// True for the paper's insertion-only model -- the bit-parity fast path.
  [[nodiscard]] bool is_none() const noexcept { return kind_ == kind::none; }
  /// True when the channel needs the load_state's FIFO lease ring.
  [[nodiscard]] bool is_lease() const noexcept { return kind_ == kind::lease; }

  /// Stable human/CLI-facing name: "none" | "random" | "lease" | "drain".
  [[nodiscard]] std::string label() const;

  friend bool operator==(const departure_model&, const departure_model&) = default;

 private:
  kind kind_ = kind::none;
};

// ---------------------------------------------------------------------------
// The bundled model.

struct alloc_model {
  ball_weighting weighting{};
  bin_sampler sampler{};
  departure_model departures{};

  /// True for the paper's unit-weight/uniform-sampling/insertion-only
  /// configuration -- the path every historical golden/parity test pins
  /// down.
  [[nodiscard]] bool is_default() const noexcept {
    return weighting.is_unit() && sampler.is_uniform() && departures.is_none();
  }

  /// "unit/uniform", "pareto[a=1.5,cap=4096]/zipf:1", with "/<departures>"
  /// appended only when a churn channel is configured, so insertion-only
  /// labels stay byte-identical to the pre-churn ones.
  [[nodiscard]] std::string label() const {
    std::string out = weighting.label() + "/" + sampler.label();
    if (!departures.is_none()) {
      out += '/';
      out += departures.label();
    }
    return out;
  }
};

/// Validates `model` against a process over n bins: a non-uniform sampler
/// must be built for exactly n bins.  Every set_model goes through this.
void check_model(const alloc_model& model, bin_count n);

/// The house process-name convention under the generalized model: the
/// historical name stays byte-identical for the default model, non-default
/// models append "|<weighting>/<sampler>".  Every process's name() uses
/// this so the suffix format cannot drift between classes.
[[nodiscard]] inline std::string with_model_suffix(std::string base, const alloc_model& model) {
  if (model.is_default()) return base;
  return base + "|" + model.label();
}

// ---------------------------------------------------------------------------
// Named spec parsing (CLI / sweep / campaign surface).

/// Parses a weighting spec:
///   "unit" | "fixed:<w>" | "two-point:<lo>,<hi>,<p>" |
///   "pareto:<alpha>" | "pareto:<alpha>,<cap>"  (default cap 2^20).
/// Throws contract_error on anything else.
[[nodiscard]] ball_weighting make_weighting(const std::string& spec);

/// Parses a sampler spec for n bins:
///   "uniform"            -- the paper's model,
///   "zipf:<s>"           -- p_i proportional to (i+1)^-s (heterogeneous
///                           capacities with a power-law profile),
///   "hot:<k>,<f>"        -- k hot bins share probability f, the rest
///                           split 1-f evenly (hotspot skew).
/// Throws contract_error on anything else.
[[nodiscard]] bin_sampler make_sampler(const std::string& spec, bin_count n);

/// Parses a departure spec: "none" | "random" | "lease" | "drain".
/// Throws contract_error on anything else.
[[nodiscard]] departure_model make_departures(const std::string& spec);

/// Bundles the parsers; "unit" + "uniform" (+ "none") yields the default
/// model.
[[nodiscard]] alloc_model make_model(const std::string& weighting_spec,
                                     const std::string& sampler_spec, bin_count n,
                                     const std::string& departures_spec = "none");

}  // namespace nb
