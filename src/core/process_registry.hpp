// Name-based construction of processes, for CLI-facing binaries.
//
// A process_spec is (kind, n, param); `make_process` maps it to a concrete
// process wrapped in any_process.  The registry covers every process the
// paper defines plus the extra adversary/delay strategies this repo ships.
#pragma once

#include <string>
#include <vector>

#include "core/process.hpp"

namespace nb {

struct process_spec {
  /// One of the names returned by registered_process_kinds().
  std::string kind;
  bin_count n = 0;
  /// Meaning depends on kind: g for adversarial kinds, sigma for noisy
  /// load, b for batch, tau for delay, beta for (1+beta), d for d-choice.
  /// Ignored by one-choice / two-choice.
  double param = 0.0;
  /// Generalized allocation model, as specs understood by make_weighting /
  /// make_sampler (core/alloc_model.hpp).  The defaults are the paper's
  /// unit-weight / uniform-sampling configuration; both are part of the
  /// sampling contract and are journaled with the campaign grid.
  std::string weighting = "unit";
  std::string sampler = "uniform";
  /// Departure channel, as a spec understood by make_departures ("none" |
  /// "random" | "lease" | "drain").  "none" is insertion-only -- the
  /// historical contract, bit for bit.
  std::string departures = "none";
};

/// Constructs the process described by `spec` (including its allocation
/// model).  Throws nb::contract_error for unknown kinds or invalid
/// parameters / model specs.
[[nodiscard]] any_process make_process(const process_spec& spec);

/// All valid `kind` strings, with a one-line description each.
[[nodiscard]] std::vector<std::pair<std::string, std::string>> registered_process_kinds();

}  // namespace nb
