#include "core/potential/potentials.hpp"

#include <cmath>

#include "common/error.hpp"

namespace nb {

double gamma_potential(const std::vector<double>& y, double gamma) {
  NB_REQUIRE(gamma > 0.0, "gamma must be positive");
  double acc = 0.0;
  for (const double yi : y) acc += std::exp(gamma * yi) + std::exp(-gamma * yi);
  return acc;
}

double lambda_potential(const std::vector<double>& y, double alpha, double offset) {
  NB_REQUIRE(alpha > 0.0, "alpha must be positive");
  NB_REQUIRE(offset >= 0.0, "offset must be non-negative");
  double acc = 0.0;
  for (const double yi : y) {
    const double over = yi - offset;
    const double under = -yi - offset;
    acc += std::exp(alpha * (over > 0.0 ? over : 0.0));
    acc += std::exp(alpha * (under > 0.0 ? under : 0.0));
  }
  return acc;
}

double absolute_potential(const std::vector<double>& y) {
  double acc = 0.0;
  for (const double yi : y) acc += std::fabs(yi);
  return acc;
}

double quadratic_potential(const std::vector<double>& y) {
  double acc = 0.0;
  for (const double yi : y) acc += yi * yi;
  return acc;
}

double super_exp_potential(const std::vector<double>& y, double phi, double z) {
  NB_REQUIRE(phi > 0.0, "phi must be positive");
  NB_REQUIRE(z > 0.0, "offset z must be positive");
  double acc = 0.0;
  for (const double yi : y) {
    const double over = yi - z;
    acc += std::exp(phi * (over > 0.0 ? over : 0.0));
  }
  return acc;
}

namespace paper_constants {
double gamma_for_g(double g) {
  NB_REQUIRE(g >= 1.0, "gamma_for_g expects g >= 1");
  return -std::log(1.0 - 1.0 / (8.0 * 48.0)) / g;
}
}  // namespace paper_constants

bool is_good_step(const std::vector<double>& y, double g, double d_constant) {
  NB_REQUIRE(g >= 1.0, "good-step predicate expects g >= 1");
  return absolute_potential(y) <= d_constant * static_cast<double>(y.size()) * g;
}

}  // namespace nb
