// Probability allocation vectors and majorization (Section 3, Appendix A.4).
//
// A process can be described by the probability r_i of allocating to the
// i-th most loaded bin.  Two-Choice without noise has p_i = (2i-1)/n^2;
// One-Choice is uniform.  Vector q majorizes r when every prefix sum of q
// dominates the corresponding prefix sum of r; by Lemma A.13, majorization
// of allocation vectors transfers to (a coupling of) sorted load vectors,
// which is how the paper's Observation 11.1 lower-bounds every g-Adv-Comp
// instance by noise-free Two-Choice.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace nb {

/// p_i = (2i - 1) / n^2 for i = 1..n (probability of hitting the i-th most
/// loaded bin under Two-Choice without noise).
[[nodiscard]] std::vector<double> two_choice_allocation_vector(bin_count n);

/// Uniform vector 1/n (One-Choice).
[[nodiscard]] std::vector<double> one_choice_allocation_vector(bin_count n);

/// The (1+beta) process mixes the two: beta * two_choice + (1-beta) * uniform.
[[nodiscard]] std::vector<double> one_plus_beta_allocation_vector(bin_count n, double beta);

/// True iff sum_{j<=k} q_j >= sum_{j<=k} r_j for every prefix k (with a
/// small tolerance for floating-point noise).  Requires equal lengths.
[[nodiscard]] bool majorizes(const std::vector<double>& q, const std::vector<double>& r,
                             double tolerance = 1e-12);

/// Majorization for *load* vectors: sorts both non-increasingly and checks
/// prefix dominance; requires equal sums (same ball count) and lengths.
[[nodiscard]] bool load_vector_majorizes(std::vector<load_t> a, std::vector<load_t> b);

}  // namespace nb
