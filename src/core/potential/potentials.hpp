// The potential functions the paper's analysis is built on (Appendix C).
//
// All take the *normalized* load vector y (y_i = x_i - t/n, any order):
//
//   Gamma(y; gamma)      = sum_i e^{gamma y_i} + e^{-gamma y_i}      (Eq. 4.1)
//   Lambda(y; a, off)    = sum_i e^{a(y_i-off)^+} + e^{a(-y_i-off)^+}(Eq. 5.1)
//   Delta(y)             = sum_i |y_i|                               (Eq. 5.2)
//   Upsilon(y)           = sum_i y_i^2                               (Eq. 5.3)
//   Phi(y; phi, z)       = sum_i e^{phi (y_i - z)^+}                 (Eq. 6.1)
//
// plus the paper's choice of smoothing parameters/constants, so the
// ablation bench can instrument exactly the quantities the proofs track
// (drop inequalities, the "good step" condition Delta <= D n g, ...).
#pragma once

#include <vector>

#include "common/types.hpp"

namespace nb {

/// Hyperbolic cosine potential Gamma(gamma) of Eq. (4.1).
[[nodiscard]] double gamma_potential(const std::vector<double>& y, double gamma);

/// Offset hyperbolic cosine potential Lambda(alpha, offset) of Eq. (5.1).
[[nodiscard]] double lambda_potential(const std::vector<double>& y, double alpha, double offset);

/// Absolute-value potential Delta of Eq. (5.2).
[[nodiscard]] double absolute_potential(const std::vector<double>& y);

/// Quadratic potential Upsilon of Eq. (5.3).
[[nodiscard]] double quadratic_potential(const std::vector<double>& y);

/// Super-exponential potential Phi(phi, z) of Eq. (6.1); only the
/// overloaded side contributes.
[[nodiscard]] double super_exp_potential(const std::vector<double>& y, double phi, double z);

/// The paper's constants (Table C.2) used to parameterize the potentials.
namespace paper_constants {
/// gamma := -log(1 - 1/(8*48)) / g, the smoothing parameter of Gamma
/// (Theorem 4.3).
[[nodiscard]] double gamma_for_g(double g);
/// D = 365: a step is "good" when Delta^t <= D * n * g (Section 5.3).
inline constexpr double kD = 365.0;
/// alpha = 1/18, the smoothing parameter of Lambda (Eq. 5.1).
inline constexpr double kAlpha = 1.0 / 18.0;
/// c4 = 730 = 2D, the offset multiplier of Lambda (Eq. 5.1).
inline constexpr double kC4 = 730.0;
/// epsilon = 1/12 (Lemma 5.7).
inline constexpr double kEpsilon = 1.0 / 12.0;
/// c = 12*18: Lambda is "large" above c*n (Lemma 5.7).
inline constexpr double kC = 12.0 * 18.0;
}  // namespace paper_constants

/// The "good step" predicate of Section 5.3: Delta^t <= D * n * g.
[[nodiscard]] bool is_good_step(const std::vector<double>& y, double g,
                                double d_constant = paper_constants::kD);

}  // namespace nb
