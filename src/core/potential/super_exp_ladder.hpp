// The layered-induction ladder of super-exponential potentials
// (Section 6.1): the machinery behind the O(g / log g * log log n) upper
// bound (Theorem 9.2).
//
// For 1 < g <= log n the paper picks the unique integer k >= 2 with
// (a1 log n)^{1/k} <= g < (a1 log n)^{1/(k-1)}, and defines k potentials
//
//   Phi_0 = sum_i exp(a2            (y_i - z_0)^+),   z_0 = c5 g,
//   Phi_j = sum_i exp(a2 log n g^{j-k} (y_i - z_j)^+),
//           z_j = c5 g + ceil(4/a2) j g,        1 <= j <= k-1,
//
// with a1 = 1/(6 kappa), a2 = a1/84 (Table C.2).  When every Phi_j = O(n),
// the gap is at most z_k = O(k g) = O(g / log g * log log n).
//
// The ladder here is parameterized by (n, g) with the option to override
// the constants (the paper's are chosen for union bounds at astronomical
// n; experiments use milder ones to make the levels visible).
#pragma once

#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace nb {

struct ladder_level {
  int j = 0;          ///< level index, 0-based
  double smoothing = 0.0;  ///< phi_j
  double offset = 0.0;     ///< z_j
};

class super_exp_ladder {
 public:
  /// Builds the ladder for (n, g).  Requires g > 1 (the paper's regime);
  /// `alpha2` and `c5` default to mild experiment-friendly constants.
  super_exp_ladder(bin_count n, double g, double alpha2 = 0.25, double c5 = 2.0);

  [[nodiscard]] int levels() const noexcept { return static_cast<int>(levels_.size()); }
  [[nodiscard]] const ladder_level& level(int j) const;
  [[nodiscard]] const std::vector<ladder_level>& all_levels() const noexcept { return levels_; }

  /// k(g): the number of layered-induction steps (Section 6.1).
  [[nodiscard]] int k() const noexcept { return k_; }

  /// The final offset z_k: when the top potential is O(n) the gap is at
  /// most this value (proof of Theorem 9.2).
  [[nodiscard]] double final_offset() const noexcept { return final_offset_; }

  /// Evaluates Phi_j on a normalized load vector.
  [[nodiscard]] double evaluate(int j, const std::vector<double>& y) const;

  /// Evaluates every level at once (single pass over y per level).
  [[nodiscard]] std::vector<double> evaluate_all(const std::vector<double>& y) const;

 private:
  std::vector<ladder_level> levels_;
  int k_ = 0;
  double final_offset_ = 0.0;
};

}  // namespace nb
