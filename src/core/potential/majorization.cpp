#include "core/potential/majorization.hpp"

#include <algorithm>
#include <functional>
#include <numeric>

#include "common/error.hpp"

namespace nb {

std::vector<double> two_choice_allocation_vector(bin_count n) {
  NB_REQUIRE(n >= 1, "need at least one bin");
  std::vector<double> p(n);
  const double n2 = static_cast<double>(n) * static_cast<double>(n);
  for (bin_count i = 0; i < n; ++i) {
    p[i] = (2.0 * static_cast<double>(i) + 1.0) / n2;  // (2i-1)/n^2, 1-based i
  }
  return p;
}

std::vector<double> one_choice_allocation_vector(bin_count n) {
  NB_REQUIRE(n >= 1, "need at least one bin");
  return std::vector<double>(n, 1.0 / static_cast<double>(n));
}

std::vector<double> one_plus_beta_allocation_vector(bin_count n, double beta) {
  NB_REQUIRE(beta >= 0.0 && beta <= 1.0, "beta must be in [0,1]");
  std::vector<double> p = two_choice_allocation_vector(n);
  const double uniform = 1.0 / static_cast<double>(n);
  for (auto& v : p) v = beta * v + (1.0 - beta) * uniform;
  return p;
}

bool majorizes(const std::vector<double>& q, const std::vector<double>& r, double tolerance) {
  NB_REQUIRE(q.size() == r.size(), "vectors must have the same length");
  double pq = 0.0;
  double pr = 0.0;
  for (std::size_t k = 0; k < q.size(); ++k) {
    pq += q[k];
    pr += r[k];
    if (pq + tolerance < pr) return false;
  }
  return true;
}

bool load_vector_majorizes(std::vector<load_t> a, std::vector<load_t> b) {
  NB_REQUIRE(a.size() == b.size(), "load vectors must have the same length");
  const auto sum_a = std::accumulate(a.begin(), a.end(), std::int64_t{0});
  const auto sum_b = std::accumulate(b.begin(), b.end(), std::int64_t{0});
  NB_REQUIRE(sum_a == sum_b, "load vectors must hold the same number of balls");
  std::sort(a.begin(), a.end(), std::greater<>());
  std::sort(b.begin(), b.end(), std::greater<>());
  std::int64_t pa = 0;
  std::int64_t pb = 0;
  for (std::size_t k = 0; k < a.size(); ++k) {
    pa += a[k];
    pb += b[k];
    if (pa < pb) return false;
  }
  return true;
}

}  // namespace nb
