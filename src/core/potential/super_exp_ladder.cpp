#include "core/potential/super_exp_ladder.hpp"

#include <cmath>

#include "core/potential/potentials.hpp"

namespace nb {

super_exp_ladder::super_exp_ladder(bin_count n, double g, double alpha2, double c5) {
  NB_REQUIRE(n >= 2, "need at least two bins");
  NB_REQUIRE(g > 1.0, "the ladder is defined for g > 1 (Section 6.1)");
  NB_REQUIRE(alpha2 > 0.0 && alpha2 <= 1.0, "alpha2 must be in (0,1]");
  NB_REQUIRE(c5 > 0.0, "c5 must be positive");
  const double logn = std::log(static_cast<double>(n));

  // k(g): smallest integer k >= 2 with (log n)^{1/k} <= g (the shape
  // version with a1 = 1; see theory::layered_induction_levels).
  k_ = 2;
  // Tolerance: (log n)^{1/k} <= g should hold at exact boundaries like
  // g = (log n)^{1/2} despite floating-point rounding of log n.
  while (std::pow(logn, 1.0 / k_) > g * (1.0 + 1e-6) && k_ < 64) ++k_;

  const double step = std::ceil(4.0 / alpha2) * g;
  for (int j = 0; j <= k_ - 1; ++j) {
    ladder_level level;
    level.j = j;
    level.offset = c5 * g + step * j;
    // Phi_0 has constant smoothing alpha2; higher levels multiply by
    // log n * g^{j-k} (Eq. 6.5 / 6.6).
    level.smoothing = (j == 0) ? alpha2 : alpha2 * logn * std::pow(g, j - k_);
    NB_ASSERT(level.smoothing > 0.0);
    levels_.push_back(level);
  }
  final_offset_ = c5 * g + step * k_;
}

const ladder_level& super_exp_ladder::level(int j) const {
  NB_REQUIRE(j >= 0 && j < levels(), "ladder level out of range");
  return levels_[static_cast<std::size_t>(j)];
}

double super_exp_ladder::evaluate(int j, const std::vector<double>& y) const {
  const ladder_level& lv = level(j);
  return super_exp_potential(y, lv.smoothing, lv.offset);
}

std::vector<double> super_exp_ladder::evaluate_all(const std::vector<double>& y) const {
  std::vector<double> values;
  values.reserve(levels_.size());
  for (const auto& lv : levels_) {
    values.push_back(super_exp_potential(y, lv.smoothing, lv.offset));
  }
  return values;
}

}  // namespace nb
