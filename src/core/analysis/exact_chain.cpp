#include "core/analysis/exact_chain.hpp"

#include <cmath>

namespace nb {

namespace {
double p_up(const rho_fn& rho, int d) { return 0.25 + 0.5 * (1.0 - rho(static_cast<load_t>(d))); }
double p_down(const rho_fn& rho, int d) { return 0.25 + 0.5 * rho(static_cast<load_t>(d)); }
}  // namespace

std::vector<double> two_bin_stationary_distribution(const rho_fn& rho, int max_diff) {
  NB_REQUIRE(rho != nullptr, "rho must not be empty");
  NB_REQUIRE(max_diff >= 2, "truncation must allow at least d = 2");
  std::vector<double> pi(static_cast<std::size_t>(max_diff) + 1, 0.0);
  // Unnormalized detailed-balance products.  From d = 0 the chain moves up
  // with probability 1, so pi(1) = pi(0) * 1 / p_down(1).
  pi[0] = 1.0;
  pi[1] = pi[0] * 1.0 / p_down(rho, 1);
  for (int d = 1; d < max_diff; ++d) {
    const double ratio = p_up(rho, d) / p_down(rho, d + 1);
    pi[static_cast<std::size_t>(d) + 1] = pi[static_cast<std::size_t>(d)] * ratio;
    if (pi[static_cast<std::size_t>(d) + 1] < 1e-300) break;  // numerically dead tail
  }
  double total = 0.0;
  for (const double v : pi) total += v;
  NB_ASSERT(total > 0.0);
  for (double& v : pi) v /= total;
  // The truncated tail must be negligible for the result to be exact in
  // any useful sense.
  NB_REQUIRE(pi.back() < 1e-9,
             "truncation too small for this rho (mass left at the boundary)");
  return pi;
}

double two_bin_stationary_gap(const rho_fn& rho, int max_diff) {
  const auto pi = two_bin_stationary_distribution(rho, max_diff);
  double mean_diff = 0.0;
  for (std::size_t d = 0; d < pi.size(); ++d) {
    mean_diff += static_cast<double>(d) * pi[d];
  }
  return mean_diff / 2.0;
}

}  // namespace nb
