// Exact one-step analysis of comparison-based allocation processes.
//
// Every two-sample process in this library is characterized by the
// probability rho(delta) of a *correct* comparison at load difference
// delta (Section 2): Two-Choice is rho == 1, g-Bounded is the 0/1 step,
// g-Myopic-Comp the 1/2 step, sigma-Noisy-Load the Gaussian tail.  Given a
// concrete load vector x, the per-bin allocation probabilities
//
//   q_i = P(the next ball lands in bin i | x)
//
// are therefore computable exactly, and with them the exact expected
// one-step change ("drift") of any separable potential sum_i f(y_i).  This
// turns the paper's drift lemmas (Lemma 4.1, Lemma 5.1-5.3) into
// *deterministically checkable* statements on arbitrary load vectors --
// used by tests and by the potential ablation bench.
//
// These are analysis tools (O(n^2) / O(n log n)), not hot-path code.
#pragma once

#include <functional>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace nb {

/// rho as a plain function double(load_t delta), delta >= 1.
using rho_fn = std::function<double(load_t)>;

/// Exact allocation probabilities of the two-sample process with
/// comparison-correctness function `rho`, at load vector `loads`.
/// Ties (delta = 0) are resolved by a fair coin, matching every process in
/// this library.  O(n^2); exact up to floating point.
[[nodiscard]] std::vector<double> rho_allocation_probabilities(const std::vector<load_t>& loads,
                                                               const rho_fn& rho);

/// Convenience wrappers for the named processes.
[[nodiscard]] std::vector<double> two_choice_probabilities(const std::vector<load_t>& loads);
[[nodiscard]] std::vector<double> g_bounded_probabilities(const std::vector<load_t>& loads,
                                                          load_t g);
[[nodiscard]] std::vector<double> g_myopic_probabilities(const std::vector<load_t>& loads,
                                                         load_t g);

/// Exact expected one-step change of the separable potential
/// Phi(y) = sum_i f(y_i), where y_i = x_i - t/n, when one ball is placed
/// according to `q` (all coordinates then shift by -1/n):
///
///   E[dPhi] = sum_k [f(y_k - 1/n) - f(y_k)]
///           + sum_i q_i [f(y_i + 1 - 1/n) - f(y_i - 1/n)].
///
/// O(n) given q.
[[nodiscard]] double expected_potential_drift(const std::vector<double>& y,
                                              const std::vector<double>& q,
                                              const std::function<double(double)>& f);

/// The right-hand side of Lemma 4.1 evaluated exactly:
///   sum_i [ (q_i (gamma + gamma^2) - gamma/n + gamma^2/n^2) e^{gamma y_i}
///         + (q_i (-gamma + gamma^2) + gamma/n + gamma^2/n^2) e^{-gamma y_i} ].
/// The exact drift of Gamma is provably <= this bound; tests verify the
/// inequality on arbitrary vectors.
[[nodiscard]] double lemma_4_1_upper_bound(const std::vector<double>& y,
                                           const std::vector<double>& q, double gamma);

/// The exact identity of Lemma 5.1(i): E[dUpsilon] = sum_i 2 q_i y_i + 1 - 1/n.
[[nodiscard]] double lemma_5_1_quadratic_drift(const std::vector<double>& y,
                                               const std::vector<double>& q);

}  // namespace nb
