#include "core/analysis/allocation_probability.hpp"

#include <cmath>

namespace nb {

std::vector<double> rho_allocation_probabilities(const std::vector<load_t>& loads,
                                                 const rho_fn& rho) {
  NB_REQUIRE(!loads.empty(), "need at least one bin");
  NB_REQUIRE(rho != nullptr, "rho must not be empty");
  const std::size_t n = loads.size();
  const double pair_mass = 1.0 / (static_cast<double>(n) * static_cast<double>(n));
  std::vector<double> q(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    // Self-pair (i1 = i2 = i): the ball lands in i with certainty.
    q[i] += pair_mass;
    for (std::size_t j = i + 1; j < n; ++j) {
      // Unordered pair {i, j} has total sampling mass 2/n^2.
      double p_i;  // probability the ball lands in i given this pair
      if (loads[i] == loads[j]) {
        p_i = 0.5;
      } else {
        const load_t delta =
            loads[i] < loads[j] ? loads[j] - loads[i] : loads[i] - loads[j];
        const double correct = rho(delta);
        NB_REQUIRE(correct >= 0.0 && correct <= 1.0, "rho must map into [0,1]");
        p_i = loads[i] < loads[j] ? correct : 1.0 - correct;
      }
      q[i] += 2.0 * pair_mass * p_i;
      q[j] += 2.0 * pair_mass * (1.0 - p_i);
    }
  }
  return q;
}

std::vector<double> two_choice_probabilities(const std::vector<load_t>& loads) {
  return rho_allocation_probabilities(loads, [](load_t) { return 1.0; });
}

std::vector<double> g_bounded_probabilities(const std::vector<load_t>& loads, load_t g) {
  NB_REQUIRE(g >= 0, "g must be non-negative");
  return rho_allocation_probabilities(loads,
                                      [g](load_t delta) { return delta <= g ? 0.0 : 1.0; });
}

std::vector<double> g_myopic_probabilities(const std::vector<load_t>& loads, load_t g) {
  NB_REQUIRE(g >= 0, "g must be non-negative");
  return rho_allocation_probabilities(loads,
                                      [g](load_t delta) { return delta <= g ? 0.5 : 1.0; });
}

double expected_potential_drift(const std::vector<double>& y, const std::vector<double>& q,
                                const std::function<double(double)>& f) {
  NB_REQUIRE(y.size() == q.size(), "load and probability vectors must match");
  NB_REQUIRE(f != nullptr, "potential term f must not be empty");
  const double shift = 1.0 / static_cast<double>(y.size());
  double drift = 0.0;
  for (std::size_t k = 0; k < y.size(); ++k) {
    drift += f(y[k] - shift) - f(y[k]);                             // common average shift
    drift += q[k] * (f(y[k] + 1.0 - shift) - f(y[k] - shift));      // the allocated ball
  }
  return drift;
}

double lemma_4_1_upper_bound(const std::vector<double>& y, const std::vector<double>& q,
                             double gamma) {
  NB_REQUIRE(y.size() == q.size(), "load and probability vectors must match");
  NB_REQUIRE(gamma > 0.0 && gamma < 1.0, "gamma must be in (0,1)");
  const auto n = static_cast<double>(y.size());
  double bound = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double over = std::exp(gamma * y[i]);
    const double under = std::exp(-gamma * y[i]);
    bound += (q[i] * (gamma + gamma * gamma) - gamma / n + gamma * gamma / (n * n)) * over;
    bound += (q[i] * (-gamma + gamma * gamma) + gamma / n + gamma * gamma / (n * n)) * under;
  }
  return bound;
}

double lemma_5_1_quadratic_drift(const std::vector<double>& y, const std::vector<double>& q) {
  NB_REQUIRE(y.size() == q.size(), "load and probability vectors must match");
  double acc = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) acc += 2.0 * q[i] * y[i];
  return acc + 1.0 - 1.0 / static_cast<double>(y.size());
}

}  // namespace nb
