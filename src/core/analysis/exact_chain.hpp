// Exact stationary analysis of the n = 2 case.
//
// With two bins, every comparison-based process reduces to a birth-death
// chain on the load difference d = |x_1 - x_2|:
//
//   d = 0: the next ball makes d = 1 (with certainty);
//   d >= 1: the sampled pair is a self-pair of the heavier bin w.p. 1/4
//           (d increases), a self-pair of the lighter bin w.p. 1/4
//           (d decreases), or mixed w.p. 1/2, in which case the comparison
//           is correct w.p. rho(d):
//
//     p_up(d)   = 1/4 + (1 - rho(d)) / 2,
//     p_down(d) = 1/4 + rho(d) / 2.
//
// The stationary distribution pi follows from detailed balance,
// pi(d+1) = pi(d) * p_up(d) / p_down(d+1), and the stationary expected gap
// is E[d] / 2 (the gap of a two-bin system is half the difference).
//
// This gives *exact* reference values every simulated process must match
// at n = 2 -- a strong end-to-end correctness check used by the tests.
#pragma once

#include <vector>

#include "core/analysis/allocation_probability.hpp"

namespace nb {

/// Stationary distribution of the two-bin load-difference chain, truncated
/// at `max_diff` (mass beyond is provably geometric-decaying for any rho
/// with rho(d) > 1/2 eventually; pick max_diff generously).
/// Returns pi(0..max_diff), normalized.
[[nodiscard]] std::vector<double> two_bin_stationary_distribution(const rho_fn& rho,
                                                                  int max_diff);

/// Exact stationary expected gap E[d]/2 of the two-bin chain.
[[nodiscard]] double two_bin_stationary_gap(const rho_fn& rho, int max_diff = 4096);

}  // namespace nb
