#include "core/load_vector.hpp"

#include <algorithm>
#include <cmath>

namespace nb {

load_state::load_state(bin_count n) {
  NB_REQUIRE(n >= 1, "need at least one bin");
  loads_.assign(n, 0);
  levels_.reset(n);
}

void load_state::reset() {
  std::fill(loads_.begin(), loads_.end(), 0);
  levels_.reset(n());
  balls_ = 0;
}

bool compact_snapshot::assign(const std::vector<load_t>& loads) {
  NB_ASSERT(!loads.empty());
  load_t mn = loads.front();
  load_t mx = loads.front();
  for (const load_t x : loads) {
    if (x < mn) mn = x;
    if (x > mx) mx = x;
  }
  base_ = mn;
  ok_ = (mx - mn) <= 255;
  if (!ok_) return false;
  n_ = loads.size();
  off_.resize(n_ + tail_padding);
  for (std::size_t i = 0; i < n_; ++i) {
    off_[i] = static_cast<std::uint8_t>(loads[i] - mn);
  }
  for (std::size_t p = n_; p < off_.size(); ++p) off_[p] = 0;
  return true;
}

void shard_deltas::reset(std::size_t shards, bin_count n) {
  NB_REQUIRE(shards >= 1 && n >= 1, "shard_deltas needs at least one shard and one bin");
  shards_ = shards;
  n_ = n;
  counts_.assign(shards * static_cast<std::size_t>(n), 0);
}

void shard_deltas::sum_rows(std::vector<std::uint32_t>& out, bin_index lo, bin_index hi) const {
  NB_ASSERT(lo <= hi && hi <= n_ && out.size() == n_);
  for (std::size_t s = 0; s < shards_; ++s) {
    const std::uint16_t* r = row(s);
    if (s == 0) {
      for (bin_index i = lo; i < hi; ++i) out[i] = r[i];
    } else {
      for (bin_index i = lo; i < hi; ++i) out[i] += r[i];
    }
  }
}

void shard_deltas::sum_rows(std::vector<std::uint32_t>& out) const {
  out.resize(n_);
  sum_rows(out, 0, n_);
}

void load_state::apply_increments(const std::vector<std::uint32_t>& add) {
  NB_ASSERT(!bulk_);
  NB_REQUIRE(add.size() == loads_.size(), "increment vector must have one entry per bin");
  step_count total = 0;
  for (std::size_t i = 0; i < loads_.size(); ++i) {
    loads_[i] += static_cast<load_t>(add[i]);
    total += add[i];
  }
  balls_ += total;
  NB_ASSERT(balls_ <= max_run_balls);
  levels_.rebuild(loads_);
}

std::vector<double> load_state::normalized() const {
  const double avg = average_load();
  std::vector<double> y(loads_.size());
  for (std::size_t i = 0; i < loads_.size(); ++i) {
    y[i] = static_cast<double>(loads_[i]) - avg;
  }
  return y;
}

std::vector<double> load_state::sorted_normalized_desc() const {
  const double avg = average_load();
  std::vector<double> y;
  y.reserve(loads_.size());
  levels_.for_each_level_desc([&](load_t level, bin_count count) {
    y.insert(y.end(), count, static_cast<double>(level) - avg);
  });
  return y;
}

bin_count load_state::overloaded_count() const noexcept {
  // x >= avg over integer loads is exactly x >= ceil(avg): count levels in
  // the index instead of scanning all n bins.
  const auto threshold = static_cast<load_t>(std::ceil(average_load()));
  return levels_.count_at_or_above(threshold);
}

}  // namespace nb
