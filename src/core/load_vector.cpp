#include "core/load_vector.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "util/hugepage.hpp"

namespace nb {

load_state::load_state(bin_count n) {
  NB_REQUIRE(n >= 1, "need at least one bin");
  loads_.assign(n, 0);
  // The loads are the hottest random-access buffer in the system (4 MB at
  // paper scale); huge-page backing, when enabled, cuts its dTLB footprint
  // ~500x.  One advice per allocation, execution-only.
  advise_hugepages(loads_.data(), loads_.size() * sizeof(load_t));
  levels_.reset(n);
}

void load_state::reset() {
  std::fill(loads_.begin(), loads_.end(), 0);
  levels_.reset(n());
  balls_ = 0;
  extra_weight_ = 0;
  levels_ok_ = true;
}

bool compact_snapshot::assign(const std::vector<load_t>& loads) {
  NB_ASSERT(!loads.empty());
  load_t mn = loads.front();
  load_t mx = loads.front();
  for (const load_t x : loads) {
    if (x < mn) mn = x;
    if (x > mx) mx = x;
  }
  base_ = mn;
  ok_ = (mx - mn) <= 255;
  if (!ok_) return false;
  n_ = loads.size();
  off_.resize(n_ + tail_padding);
  if (hugepages_enabled() && off_.data() != advised_) {
    // assign() runs once per frozen window; only re-advise when the
    // buffer actually moved (first use or a growth realloc).
    advise_hugepages(off_.data(), off_.size());
    advised_ = off_.data();
  }
  for (std::size_t i = 0; i < n_; ++i) {
    off_[i] = static_cast<std::uint8_t>(loads[i] - mn);
  }
  for (std::size_t p = n_; p < off_.size(); ++p) off_[p] = 0;
  return true;
}

void shard_deltas::reset(std::size_t shards, bin_count n) {
  NB_REQUIRE(shards >= 1 && n >= 1, "shard_deltas needs at least one shard and one bin");
  shards_ = shards;
  n_ = n;
  // Pad the stride to whole cache lines and over-allocate one line of
  // slack so row 0 can be skewed onto a line boundary regardless of where
  // the vector's buffer lands (the allocator only guarantees
  // alignof(std::uint16_t)).
  constexpr std::size_t line_entries = row_align_bytes / sizeof(std::uint16_t);
  stride_ = (static_cast<std::size_t>(n) + line_entries - 1) / line_entries * line_entries;
  counts_.assign(shards * stride_ + line_entries, 0);
  const auto addr = reinterpret_cast<std::uintptr_t>(counts_.data());
  base_ = (row_align_bytes - addr % row_align_bytes) % row_align_bytes / sizeof(std::uint16_t);
}

void shard_deltas::sum_rows(std::vector<std::uint32_t>& out, bin_index lo, bin_index hi) const {
  NB_ASSERT(lo <= hi && hi <= n_ && out.size() == n_);
  for (std::size_t s = 0; s < shards_; ++s) {
    const std::uint16_t* r = row(s);
    if (s == 0) {
      for (bin_index i = lo; i < hi; ++i) out[i] = r[i];
    } else {
      for (bin_index i = lo; i < hi; ++i) out[i] += r[i];
    }
  }
}

void shard_deltas::sum_rows(std::vector<std::uint32_t>& out) const {
  out.resize(n_);
  sum_rows(out, 0, n_);
}

void load_state::apply_increments(const std::vector<std::uint32_t>& add,
                                  weight_t weight_per_ball) {
  NB_ASSERT(!bulk_);
  NB_REQUIRE(add.size() == loads_.size(), "increment vector must have one entry per bin");
  NB_REQUIRE(weight_per_ball >= 1 && weight_per_ball <= max_ball_weight,
             "per-ball weight must be in [1, max_ball_weight]");
  step_count total = 0;
  for (const std::uint32_t a : add) total += a;
  // Same int64-overflow audit as the weighted allocate(), phrased as a
  // division so the bound itself cannot overflow (total * weight_per_ball
  // may exceed int64 at the ceilings' corner).
  NB_REQUIRE(total <= (max_total_weight - total_weight()) / weight_per_ball,
             "window would overflow the total-weight accumulator (max_total_weight)");
  if (weight_per_ball == 1) {
    for (std::size_t i = 0; i < loads_.size(); ++i) {
      loads_[i] += static_cast<load_t>(add[i]);
    }
  } else {
    // Validate every bin BEFORE mutating any (strong exception safety,
    // like allocate(i, w)): a mid-loop throw must not leave a prefix of
    // bins inflated while balls_/levels_ still reflect the old state.
    constexpr auto bin_cap = static_cast<weight_t>(std::numeric_limits<load_t>::max());
    for (std::size_t i = 0; i < loads_.size(); ++i) {
      NB_REQUIRE(static_cast<weight_t>(loads_[i]) +
                         static_cast<weight_t>(add[i]) * weight_per_ball <=
                     bin_cap,
                 "window would overflow a bin's 32-bit load");
    }
    for (std::size_t i = 0; i < loads_.size(); ++i) {
      loads_[i] += static_cast<load_t>(static_cast<weight_t>(add[i]) * weight_per_ball);
    }
  }
  balls_ += total;
  extra_weight_ += total * (weight_per_ball - 1);
  NB_ASSERT(balls_ <= max_run_balls);
  levels_ok_ = levels_.rebuild(loads_);
}

void load_state::save(state_writer& w) const {
  NB_REQUIRE(!bulk_, "cannot checkpoint a load_state inside an open bulk window");
  w.put_vec(loads_);
  w.put_i64(balls_);
  w.put_i64(extra_weight_);
}

void load_state::restore(state_reader& r) {
  auto loads = r.get_vec<load_t>();
  const std::int64_t balls = r.get_i64();
  const std::int64_t extra = r.get_i64();
  NB_REQUIRE(loads.size() == loads_.size(), "checkpoint bin count does not match this run");
  NB_REQUIRE(balls >= 0 && balls <= max_run_balls, "checkpoint ball count out of range");
  NB_REQUIRE(extra >= 0, "checkpoint extra weight must be non-negative");
  weight_t total = 0;
  for (const load_t x : loads) {
    NB_REQUIRE(x >= 0, "checkpoint loads must be non-negative");
    total += x;
  }
  NB_REQUIRE(total == balls + extra, "checkpoint loads do not sum to the recorded total weight");
  loads_ = std::move(loads);
  advise_hugepages(loads_.data(), loads_.size() * sizeof(load_t));  // new buffer
  balls_ = balls;
  extra_weight_ = extra;
  bulk_ = false;
  levels_ok_ = levels_.rebuild(loads_);
}

std::vector<double> load_state::normalized() const {
  const double avg = average_load();
  std::vector<double> y(loads_.size());
  for (std::size_t i = 0; i < loads_.size(); ++i) {
    y[i] = static_cast<double>(loads_[i]) - avg;
  }
  return y;
}

std::vector<double> load_state::sorted_normalized_desc() const {
  const double avg = average_load();
  std::vector<double> y;
  y.reserve(loads_.size());
  if (levels_ok_) {
    levels_.for_each_level_desc([&](load_t level, bin_count count) {
      y.insert(y.end(), count, static_cast<double>(level) - avg);
    });
  } else {
    // Wide-span weighted regime: the dense level index gave up; one
    // explicit sort keeps the query exact.
    for (const load_t x : loads_) y.push_back(static_cast<double>(x) - avg);
    std::sort(y.begin(), y.end(), std::greater<>());
  }
  return y;
}

bin_count load_state::overloaded_count() const noexcept {
  // x >= avg over integer loads is exactly x >= ceil(avg): count levels in
  // the index instead of scanning all n bins.
  const auto threshold = static_cast<load_t>(std::ceil(average_load()));
  if (levels_ok_) return levels_.count_at_or_above(threshold);
  bin_count over = 0;
  for (const load_t x : loads_) over += x >= threshold ? 1 : 0;
  return over;
}

}  // namespace nb
