#include "core/load_vector.hpp"

#include <algorithm>
#include <cmath>

namespace nb {

load_state::load_state(bin_count n) {
  NB_REQUIRE(n >= 1, "need at least one bin");
  loads_.assign(n, 0);
  levels_.reset(n);
}

void load_state::reset() {
  std::fill(loads_.begin(), loads_.end(), 0);
  levels_.reset(n());
  balls_ = 0;
}

std::vector<double> load_state::normalized() const {
  const double avg = average_load();
  std::vector<double> y(loads_.size());
  for (std::size_t i = 0; i < loads_.size(); ++i) {
    y[i] = static_cast<double>(loads_[i]) - avg;
  }
  return y;
}

std::vector<double> load_state::sorted_normalized_desc() const {
  const double avg = average_load();
  std::vector<double> y;
  y.reserve(loads_.size());
  levels_.for_each_level_desc([&](load_t level, bin_count count) {
    y.insert(y.end(), count, static_cast<double>(level) - avg);
  });
  return y;
}

bin_count load_state::overloaded_count() const noexcept {
  // x >= avg over integer loads is exactly x >= ceil(avg): count levels in
  // the index instead of scanning all n bins.
  const auto threshold = static_cast<load_t>(std::ceil(average_load()));
  return levels_.count_at_or_above(threshold);
}

}  // namespace nb
