#include "core/load_vector.hpp"

#include <algorithm>
#include <functional>

namespace nb {

load_state::load_state(bin_count n) {
  NB_REQUIRE(n >= 1, "need at least one bin");
  loads_.assign(n, 0);
}

void load_state::reset() {
  std::fill(loads_.begin(), loads_.end(), 0);
  max_load_ = 0;
  balls_ = 0;
}

load_t load_state::min_load() const noexcept {
  return *std::min_element(loads_.begin(), loads_.end());
}

std::vector<double> load_state::normalized() const {
  const double avg = average_load();
  std::vector<double> y(loads_.size());
  for (std::size_t i = 0; i < loads_.size(); ++i) {
    y[i] = static_cast<double>(loads_[i]) - avg;
  }
  return y;
}

std::vector<double> load_state::sorted_normalized_desc() const {
  std::vector<double> y = normalized();
  std::sort(y.begin(), y.end(), std::greater<>());
  return y;
}

bin_count load_state::overloaded_count() const noexcept {
  const double avg = average_load();
  bin_count count = 0;
  for (const load_t x : loads_) {
    if (static_cast<double>(x) >= avg) ++count;
  }
  return count;
}

}  // namespace nb
