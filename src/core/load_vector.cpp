#include "core/load_vector.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "util/hugepage.hpp"

namespace nb {

load_state::load_state(bin_count n) {
  NB_REQUIRE(n >= 1, "need at least one bin");
  loads_.assign(n, 0);
  // The loads are the hottest random-access buffer in the system (4 MB at
  // paper scale); huge-page backing, when enabled, cuts its dTLB footprint
  // ~500x.  One advice per allocation, execution-only.
  advise_hugepages(loads_.data(), loads_.size() * sizeof(load_t));
  levels_.reset(n);
}

void load_state::reset() {
  std::fill(loads_.begin(), loads_.end(), 0);
  levels_.reset(n());
  balls_ = 0;
  extra_weight_ = 0;
  levels_ok_ = true;
  // Keep the lease channel configured, but no balls are resident anymore.
  lease_head_ = 0;
  lease_count_ = 0;
}

bool compact_snapshot::assign(const std::vector<load_t>& loads) {
  NB_ASSERT(!loads.empty());
  load_t mn = loads.front();
  load_t mx = loads.front();
  for (const load_t x : loads) {
    if (x < mn) mn = x;
    if (x > mx) mx = x;
  }
  base_ = mn;
  ok_ = (mx - mn) <= 255;
  if (!ok_) return false;
  span_ = static_cast<std::uint8_t>(mx - mn);
  n_ = loads.size();
  off_.resize(n_ + tail_padding);
  if (hugepages_enabled() && off_.data() != advised_) {
    // assign() runs once per frozen window; only re-advise when the
    // buffer actually moved (first use or a growth realloc).
    advise_hugepages(off_.data(), off_.size());
    advised_ = off_.data();
  }
  for (std::size_t i = 0; i < n_; ++i) {
    off_[i] = static_cast<std::uint8_t>(loads[i] - mn);
  }
  for (std::size_t p = n_; p < off_.size(); ++p) off_[p] = 0;
  return true;
}

void shard_deltas::reset(std::size_t shards, bin_count n) {
  NB_REQUIRE(shards >= 1 && n >= 1, "shard_deltas needs at least one shard and one bin");
  shards_ = shards;
  n_ = n;
  // Pad the stride to whole cache lines and over-allocate one line of
  // slack so row 0 can be skewed onto a line boundary regardless of where
  // the vector's buffer lands (the allocator only guarantees
  // alignof(std::uint16_t)).
  constexpr std::size_t line_entries = row_align_bytes / sizeof(std::uint16_t);
  stride_ = (static_cast<std::size_t>(n) + line_entries - 1) / line_entries * line_entries;
  counts_.assign(shards * stride_ + line_entries, 0);
  const auto addr = reinterpret_cast<std::uintptr_t>(counts_.data());
  base_ = (row_align_bytes - addr % row_align_bytes) % row_align_bytes / sizeof(std::uint16_t);
}

void shard_deltas::sum_rows(std::vector<std::uint32_t>& out, bin_index lo, bin_index hi) const {
  NB_ASSERT(lo <= hi && hi <= n_ && out.size() == n_);
  for (std::size_t s = 0; s < shards_; ++s) {
    const std::uint16_t* r = row(s);
    if (s == 0) {
      for (bin_index i = lo; i < hi; ++i) out[i] = r[i];
    } else {
      for (bin_index i = lo; i < hi; ++i) out[i] += r[i];
    }
  }
}

void shard_deltas::sum_rows(std::vector<std::uint32_t>& out) const {
  out.resize(n_);
  sum_rows(out, 0, n_);
}

void load_state::apply_increments(const std::vector<std::uint32_t>& add,
                                  weight_t weight_per_ball) {
  NB_ASSERT(!bulk_);
  NB_REQUIRE(add.size() == loads_.size(), "increment vector must have one entry per bin");
  NB_REQUIRE(weight_per_ball >= 1 && weight_per_ball <= max_ball_weight,
             "per-ball weight must be in [1, max_ball_weight]");
  step_count total = 0;
  for (const std::uint32_t a : add) total += a;
  // Same int64-overflow audit as the weighted allocate(), phrased as a
  // division so the bound itself cannot overflow (total * weight_per_ball
  // may exceed int64 at the ceilings' corner).
  NB_REQUIRE(total <= (max_total_weight - total_weight()) / weight_per_ball,
             "window would overflow the total-weight accumulator (max_total_weight)");
  if (weight_per_ball == 1) {
    for (std::size_t i = 0; i < loads_.size(); ++i) {
      loads_[i] += static_cast<load_t>(add[i]);
    }
  } else {
    // Validate every bin BEFORE mutating any (strong exception safety,
    // like allocate(i, w)): a mid-loop throw must not leave a prefix of
    // bins inflated while balls_/levels_ still reflect the old state.
    constexpr auto bin_cap = static_cast<weight_t>(std::numeric_limits<load_t>::max());
    for (std::size_t i = 0; i < loads_.size(); ++i) {
      NB_REQUIRE(static_cast<weight_t>(loads_[i]) +
                         static_cast<weight_t>(add[i]) * weight_per_ball <=
                     bin_cap,
                 "window would overflow a bin's 32-bit load");
    }
    for (std::size_t i = 0; i < loads_.size(); ++i) {
      loads_[i] += static_cast<load_t>(static_cast<weight_t>(add[i]) * weight_per_ball);
    }
  }
  balls_ += total;
  extra_weight_ += total * (weight_per_ball - 1);
  NB_ASSERT(balls_ <= max_run_balls);
  if (lease_on_ && total > 0) {
    // A merged window has no per-ball arrival order; record residents in
    // bin-index order.  That order is a pure function of the merged
    // counts, so it is identical for every thread count / ISA backend of
    // the engine that produced the window (the windowed engines' own
    // determinism contract) -- it just differs from the serial per-ball
    // order, exactly as the window's sampling already does.
    for (std::size_t i = 0; i < add.size(); ++i) {
      for (std::uint32_t k = 0; k < add[i]; ++k) {
        lease_push(static_cast<bin_index>(i), weight_per_ball);
      }
    }
  }
  levels_ok_ = levels_.rebuild(loads_);
}

void load_state::apply_increments(const std::vector<std::int64_t>& delta,
                                  step_count ball_delta) {
  NB_ASSERT(!bulk_);
  NB_REQUIRE(delta.size() == loads_.size(), "delta vector must have one entry per bin");
  NB_REQUIRE(!lease_on_,
             "signed increments cannot maintain the lease ring (use per-ball "
             "allocate/release or release_oldest under lease tracking)");
  // Validate every bin and the totals BEFORE mutating any (strong
  // exception safety, like the unsigned path).
  constexpr auto bin_cap = static_cast<weight_t>(std::numeric_limits<load_t>::max());
  weight_t net = 0;
  for (std::size_t i = 0; i < loads_.size(); ++i) {
    const weight_t updated = static_cast<weight_t>(loads_[i]) + delta[i];
    NB_REQUIRE(updated >= 0, "signed window would underflow bin " + std::to_string(i) +
                                 " (currently " + std::to_string(loads_[i]) + ", delta " +
                                 std::to_string(delta[i]) + ")");
    NB_REQUIRE(updated <= bin_cap, "signed window would overflow bin " + std::to_string(i) +
                                       "'s 32-bit load (currently " +
                                       std::to_string(loads_[i]) + ", delta " +
                                       std::to_string(delta[i]) + ")");
    net += delta[i];
  }
  const step_count balls_after = balls_ + ball_delta;
  const weight_t extra_after = extra_weight_ + (net - ball_delta);
  NB_REQUIRE(balls_after >= 0 && balls_after <= max_run_balls,
             "signed window would leave the ball count out of [0, max_run_balls]");
  NB_REQUIRE(extra_after >= 0,
             "signed window would leave the extra-weight accumulator negative");
  NB_REQUIRE(net <= max_total_weight - total_weight(),
             "window would overflow the total-weight accumulator (max_total_weight)");
  for (std::size_t i = 0; i < loads_.size(); ++i) {
    loads_[i] = static_cast<load_t>(static_cast<weight_t>(loads_[i]) + delta[i]);
  }
  balls_ = balls_after;
  extra_weight_ = extra_after;
  levels_ok_ = levels_.rebuild(loads_);
}

void load_state::apply_releases(const std::vector<std::uint32_t>& rel,
                                weight_t weight_per_ball, step_count k) {
  NB_ASSERT(!bulk_);
  NB_REQUIRE(rel.size() == loads_.size(), "release vector must have one entry per bin");
  NB_REQUIRE(weight_per_ball >= 1 && weight_per_ball <= max_ball_weight,
             "per-ball weight must be in [1, max_ball_weight]");
  NB_REQUIRE(!lease_on_,
             "bulk releases cannot maintain the lease ring (the lease channel "
             "expires per-ball through release_oldest)");
  // Validate every bin and the totals BEFORE mutating any (strong
  // exception safety, matching both apply_increments overloads), with the
  // same bin-and-weight error vocabulary as release(i, w).
  step_count total = 0;
  for (std::size_t i = 0; i < rel.size(); ++i) {
    const weight_t retired = static_cast<weight_t>(rel[i]) * weight_per_ball;
    NB_REQUIRE(retired <= static_cast<weight_t>(loads_[i]),
               "release of weight " + std::to_string(retired) + " would underflow bin " +
                   std::to_string(i) + " (currently " + std::to_string(loads_[i]) + ")");
    total += rel[i];
  }
  NB_REQUIRE(total == k, "departure block counts do not sum to the block size");
  NB_REQUIRE(balls_ >= k, "release with no resident balls");
  NB_REQUIRE(extra_weight_ >= k * (weight_per_ball - 1),
             "departure block of weight " + std::to_string(weight_per_ball) +
                 " per ball exceeds the resident extra weight (" +
                 std::to_string(extra_weight_) + ")");
  for (std::size_t i = 0; i < loads_.size(); ++i) {
    loads_[i] -= static_cast<load_t>(static_cast<weight_t>(rel[i]) * weight_per_ball);
  }
  balls_ -= k;
  extra_weight_ -= k * (weight_per_ball - 1);
  levels_ok_ = levels_.rebuild(loads_);
}

void load_state::save(state_writer& w) const {
  NB_REQUIRE(!bulk_, "cannot checkpoint a load_state inside an open bulk window");
  w.put_vec(loads_);
  w.put_i64(balls_);
  w.put_i64(extra_weight_);
  w.put_bool(lease_on_);
  if (lease_on_) {
    // Linearized FIFO order; the head/capacity split is storage detail.
    std::vector<std::uint64_t> entries(lease_count_);
    for (std::size_t k = 0; k < lease_count_; ++k) {
      entries[k] = lease_slots_[(lease_head_ + k) % lease_slots_.size()];
    }
    w.put_vec(entries);
  }
}

void load_state::restore(state_reader& r) {
  auto loads = r.get_vec<load_t>();
  const std::int64_t balls = r.get_i64();
  const std::int64_t extra = r.get_i64();
  NB_REQUIRE(loads.size() == loads_.size(), "checkpoint bin count does not match this run");
  NB_REQUIRE(balls >= 0 && balls <= max_run_balls, "checkpoint ball count out of range");
  NB_REQUIRE(extra >= 0, "checkpoint extra weight must be non-negative");
  weight_t total = 0;
  for (const load_t x : loads) {
    NB_REQUIRE(x >= 0, "checkpoint loads must be non-negative");
    total += x;
  }
  NB_REQUIRE(total == balls + extra, "checkpoint loads do not sum to the recorded total weight");
  const bool lease_on = r.get_bool();
  std::vector<std::uint64_t> entries;
  if (lease_on) {
    entries = r.get_vec<std::uint64_t>();
    // Under lease tracking every resident ball has exactly one ring entry,
    // and the recorded (bin, weight) pairs must reproduce the loads
    // exactly -- per bin, not just in total.
    NB_REQUIRE(static_cast<std::int64_t>(entries.size()) == balls,
               "checkpoint lease ring does not hold one entry per resident ball");
    std::vector<weight_t> per_bin(loads.size(), 0);
    for (const std::uint64_t slot : entries) {
      const auto bin = static_cast<std::size_t>(slot & 0xFFFFFFFFu);
      const auto weight = static_cast<weight_t>(slot >> 32);
      NB_REQUIRE(bin < loads.size(), "checkpoint lease entry names a bin out of range");
      NB_REQUIRE(weight >= 1 && weight <= max_ball_weight,
                 "checkpoint lease entry weight out of range");
      per_bin[bin] += weight;
    }
    for (std::size_t i = 0; i < loads.size(); ++i) {
      NB_REQUIRE(per_bin[i] == static_cast<weight_t>(loads[i]),
                 "checkpoint lease ring does not reproduce the loads");
    }
  }
  loads_ = std::move(loads);
  advise_hugepages(loads_.data(), loads_.size() * sizeof(load_t));  // new buffer
  balls_ = balls;
  extra_weight_ = extra;
  bulk_ = false;
  levels_ok_ = levels_.rebuild(loads_);
  lease_on_ = lease_on;
  lease_slots_ = std::move(entries);
  lease_head_ = 0;
  lease_count_ = lease_slots_.size();
}

std::vector<double> load_state::normalized() const {
  const double avg = average_load();
  std::vector<double> y(loads_.size());
  for (std::size_t i = 0; i < loads_.size(); ++i) {
    y[i] = static_cast<double>(loads_[i]) - avg;
  }
  return y;
}

std::vector<double> load_state::sorted_normalized_desc() const {
  const double avg = average_load();
  std::vector<double> y;
  y.reserve(loads_.size());
  if (levels_ok_) {
    levels_.for_each_level_desc([&](load_t level, bin_count count) {
      y.insert(y.end(), count, static_cast<double>(level) - avg);
    });
  } else {
    // Wide-span weighted regime: the dense level index gave up; one
    // explicit sort keeps the query exact.
    for (const load_t x : loads_) y.push_back(static_cast<double>(x) - avg);
    std::sort(y.begin(), y.end(), std::greater<>());
  }
  return y;
}

bin_count load_state::overloaded_count() const noexcept {
  // x >= avg over integer loads is exactly x >= ceil(avg): count levels in
  // the index instead of scanning all n bins.
  const auto threshold = static_cast<load_t>(std::ceil(average_load()));
  if (levels_ok_) return levels_.count_at_or_above(threshold);
  bin_count over = 0;
  for (const load_t x : loads_) over += x >= threshold ? 1 : 0;
  return over;
}

}  // namespace nb
