#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "common/error.hpp"

namespace nb {

thread_pool::thread_pool(std::size_t threads) {
  std::size_t n = threads;
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

thread_pool::~thread_pool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void thread_pool::submit(std::function<void()> task) {
  NB_REQUIRE(task != nullptr, "cannot submit an empty task");
  {
    std::unique_lock lock(mutex_);
    NB_ASSERT(!stopping_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void thread_pool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void thread_pool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& body) {
  NB_REQUIRE(body != nullptr, "parallel_for body must not be empty");
  if (count == 0) return;
  if (threads == 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  thread_pool pool(std::min(threads == 0 ? std::size_t{0} : threads, count));
  std::atomic<std::size_t> next{0};
  const std::size_t workers = pool.size();
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([&next, count, &body] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        body(i);
      }
    });
  }
  pool.wait_idle();
}

}  // namespace nb
