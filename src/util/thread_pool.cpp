#include "util/thread_pool.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace nb {

thread_pool::thread_pool(std::size_t threads) {
  const std::size_t n = resolve_workers(threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

thread_pool::~thread_pool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void thread_pool::submit(std::function<void()> task) {
  NB_REQUIRE(task != nullptr, "cannot submit an empty task");
  {
    std::unique_lock lock(mutex_);
    NB_ASSERT(!stopping_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void thread_pool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void thread_pool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

work_stealing_queues::work_stealing_queues(std::size_t count, std::size_t workers,
                                           std::size_t min_chunk) {
  NB_REQUIRE(workers >= 1, "work stealing needs at least one worker");
  NB_REQUIRE(min_chunk >= 1, "chunks must hold at least one index");
  worker_count_ = workers;
  chunk_ = std::max(min_chunk, count / (workers * 8));
  lanes_ = std::make_unique<lane[]>(workers);
  // Deal contiguous chunks round-robin: a straggler-heavy prefix (e.g.
  // the expensive configs of a campaign grid listed first) spreads over
  // every deque instead of loading one worker's.
  std::size_t next_lane = 0;
  for (std::size_t begin = 0; begin < count; begin += chunk_) {
    const span s{begin, std::min(begin + chunk_, count)};
    lanes_[next_lane].q.push_back(s);
    next_lane = next_lane + 1 == workers ? 0 : next_lane + 1;
  }
}

bool work_stealing_queues::try_pop(std::size_t worker, span& out) {
  NB_ASSERT(worker < worker_count_);
  lane& l = lanes_[worker];
  const std::lock_guard<std::mutex> lock(l.m);
  if (l.q.empty()) return false;
  out = l.q.front();
  l.q.pop_front();
  return true;
}

bool work_stealing_queues::try_steal(std::size_t worker, span& out) {
  NB_ASSERT(worker < worker_count_);
  for (std::size_t i = 1; i < worker_count_; ++i) {
    lane& victim = lanes_[(worker + i) % worker_count_];
    const std::lock_guard<std::mutex> lock(victim.m);
    if (victim.q.empty()) continue;
    out = victim.q.back();  // opposite end from the owner
    victim.q.pop_back();
    return true;
  }
  return false;
}

void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& body) {
  NB_REQUIRE(body != nullptr, "parallel_for body must not be empty");
  if (count == 0) return;
  const std::size_t workers = std::min(resolve_workers(threads), count);
  if (workers <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  work_stealing_queues queues(count, workers);
  thread_pool pool(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([w, &queues, &body] {
      // Drain own deque, then steal until every deque is empty.  No chunk
      // is ever added after construction, so a failed pop+steal really
      // means done (another worker may still be *executing*, but never
      // producing).
      work_stealing_queues::span s;
      while (queues.try_pop(w, s) || queues.try_steal(w, s)) {
        for (std::size_t i = s.begin; i < s.end; ++i) body(i);
      }
    });
  }
  pool.wait_idle();
}

std::size_t resolve_workers(std::size_t requested) noexcept {
  if (requested > 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

bool warn_if_oversubscribed(std::size_t workers, const std::string& what) {
  const auto cores = static_cast<std::size_t>(
      std::max(1u, std::thread::hardware_concurrency()));
  if (workers <= cores) return false;
  return warn_once("oversubscribed/" + what,
                   what + ": " + std::to_string(workers) +
                       " worker threads exceed this machine's " + std::to_string(cores) +
                       " hardware threads; execution will time-slice (results are "
                       "unchanged by the determinism contract, wall-clock is not)");
}

}  // namespace nb
