// Minimal fixed-size thread pool plus a deterministic work-stealing
// parallel_for.
//
// The simulation driver runs repetitions concurrently; determinism comes
// from giving each *index* (not each thread) its own derived RNG seed, so
// results are identical for any thread count, including 1.  Scheduling --
// which worker runs which index, in what order -- is free to vary, and
// parallel_for exploits that with work stealing: heterogeneous bodies
// (zipf vs uniform campaign cells, kernel vs fused) no longer straggle
// behind a fixed hand-out order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

namespace nb {

class thread_pool {
 public:
  /// Creates `threads` workers (0 means std::thread::hardware_concurrency,
  /// with a floor of 1).
  explicit thread_pool(std::size_t threads = 0);
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; tasks must not throw (wrap and capture if needed).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Chunked work-stealing index distributor backing parallel_for.
///
/// The index range [0, count) is pre-split into contiguous chunks dealt
/// round-robin across per-worker deques at construction -- nothing is
/// pushed later, so "empty everywhere" means "done".  A worker drains its
/// own deque from the front; once empty it scans the other workers and
/// steals one chunk from the *back* of a victim's deque, keeping thief
/// and owner at opposite ends.  Deques are mutex-protected (chunks are
/// coarse enough that lock traffic is noise next to the work inside a
/// chunk) and padded apart so two workers' queue heads never share a
/// cache line.
///
/// Scheduling only: which worker executes which chunk varies run to run,
/// which is exactly why every consumer keys results on the *index*
/// (derived seeds, index-ordered folds), never on the executing thread.
class work_stealing_queues {
 public:
  struct span {
    std::size_t begin = 0;
    std::size_t end = 0;  // exclusive
  };

  /// Splits [0, count) into chunks of ~count / (workers * 8) indices
  /// (floor `min_chunk`): small enough that stealing can rebalance a
  /// straggler tail, large enough that lock traffic stays negligible.
  work_stealing_queues(std::size_t count, std::size_t workers, std::size_t min_chunk = 1);

  /// Pops the next chunk from `worker`'s own deque.  False when empty.
  bool try_pop(std::size_t worker, span& out);

  /// Steals one chunk from the back of some other worker's deque,
  /// scanning victims round-robin from `worker + 1`.  False when every
  /// deque is empty (all chunks handed out).
  bool try_steal(std::size_t worker, span& out);

  [[nodiscard]] std::size_t workers() const noexcept { return worker_count_; }
  [[nodiscard]] std::size_t chunk() const noexcept { return chunk_; }

 private:
  // Padded to the destructive-interference unit (64B on every target we
  // build for) so per-worker queue state never false-shares.
  struct alignas(64) lane {
    std::mutex m;
    std::deque<span> q;
  };

  std::unique_ptr<lane[]> lanes_;
  std::size_t worker_count_ = 0;
  std::size_t chunk_ = 0;
};

/// Runs body(i) for i in [0, count) across `threads` workers (0 = one per
/// hardware core) via work stealing.  Exceptions escaping `body`
/// terminate (tasks are noexcept by contract); callers that can throw
/// should capture into a result slot instead.  Determinism contract:
/// stealing only reorders *execution*; any result keyed on the index is
/// identical for every thread count, including 1.
void parallel_for(std::size_t count, std::size_t threads, const std::function<void(std::size_t)>& body);

/// `requested` worker threads resolved the way thread_pool resolves them
/// (0 = hardware_concurrency with a floor of 1).
[[nodiscard]] std::size_t resolve_workers(std::size_t requested) noexcept;

/// warn_once (keyed on `what`) when `workers` exceeds this machine's
/// hardware threads: oversubscription silently time-slices -- results are
/// unchanged by contract, wall-clock is not.  Returns true when the
/// warning fired.
bool warn_if_oversubscribed(std::size_t workers, const std::string& what);

}  // namespace nb
