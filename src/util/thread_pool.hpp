// Minimal fixed-size thread pool plus a deterministic parallel_for.
//
// The simulation driver runs repetitions concurrently; determinism comes
// from giving each *index* (not each thread) its own derived RNG seed, so
// results are identical for any thread count, including 1.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace nb {

class thread_pool {
 public:
  /// Creates `threads` workers (0 means std::thread::hardware_concurrency,
  /// with a floor of 1).
  explicit thread_pool(std::size_t threads = 0);
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; tasks must not throw (wrap and capture if needed).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, count) across `threads` workers.  Exceptions
/// escaping `body` terminate (tasks are noexcept by contract); callers that
/// can throw should capture into a result slot instead.
void parallel_for(std::size_t count, std::size_t threads, const std::function<void(std::size_t)>& body);

}  // namespace nb
