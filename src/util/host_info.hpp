// Host hardware metadata for benchmark provenance.
//
// Every committed BENCH_throughput.json is only meaningful relative to the
// machine that produced it: a 1-core CI runner cannot reproduce a 4-thread
// scaling leg, and the regression gate must know that to skip rather than
// fail.  host_info collects the three facts the scaling matrix keys on --
// CPU model string, hardware thread count, and cache-line size -- with
// portable fallbacks (empty model, line size 64) when the platform does
// not expose them.
#pragma once

#include <cstddef>
#include <string>

namespace nb {

struct host_info {
  /// Marketing name from /proc/cpuinfo ("model name"), or "" when the
  /// platform does not expose one.
  std::string cpu_model;
  /// std::thread::hardware_concurrency() with a floor of 1 (the standard
  /// permits 0 for "unknown"; a floor keeps ratio arithmetic safe).
  unsigned hardware_concurrency = 1;
  /// L1 data cache line size in bytes; 64 when undetectable.  This is the
  /// destructive-interference unit the shard-delta row padding targets.
  std::size_t cache_line_size = 64;
};

/// Detects the current host.  Cheap enough to call per bench run; never
/// throws (every field has a defined fallback).
[[nodiscard]] host_info detect_host_info();

}  // namespace nb
