// Crash-safe file IO primitives shared by the checkpoint writer and the
// campaign journal.
//
// The durability contract of atomic_write_file(): after it returns, the
// target path holds exactly the new bytes even if the process is SIGKILLed
// or the machine loses power at ANY point -- before, during, or after the
// call.  Mechanism (the classic POSIX sequence):
//
//   1. write the bytes to <path>.tmp,
//   2. fsync the temp file (data hits the disk before the name does),
//   3. rename(2) it over <path> -- atomic within a filesystem,
//   4. fsync the parent directory (the rename itself becomes durable).
//
// A crash before (3) leaves the old file untouched (a stale .tmp is
// harmless and overwritten next time); a crash after (3) leaves the new
// file.  There is no window in which a reader can observe a torn file.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

namespace nb {

/// Atomically and durably replaces `path` with `size` bytes from `data`.
/// Throws nb::contract_error (with errno context) on any IO failure.
void atomic_write_file(const std::string& path, const void* data, std::size_t size);

/// Whole-file read.  Returns std::nullopt when the file does not exist;
/// throws nb::contract_error on any other IO failure.  (Distinguishing
/// "no checkpoint yet" from "checkpoint unreadable" is load-bearing for
/// resume logic: the former starts fresh, the latter must be surfaced.)
[[nodiscard]] std::optional<std::vector<std::uint8_t>> read_file_bytes(const std::string& path);

/// fsync of an open stdio stream (flushes stdio buffers first).  Throws
/// nb::contract_error on failure.  No-op on platforms without fsync.
void flush_and_sync(std::FILE* file, const std::string& path_for_errors);

/// Best-effort fsync of the directory containing `path` (makes a rename
/// or creation in it durable).  Silently ignores filesystems that refuse
/// directory fsync; no-op on platforms without it.
void sync_parent_dir(const std::string& path);

}  // namespace nb
