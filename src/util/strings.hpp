// Small string/format helpers shared by benches and examples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nb {

/// "1.234" style formatting with a fixed number of decimals.
[[nodiscard]] std::string format_fixed(double v, int decimals);

/// Human-readable large integers: 10000 -> "10^4" when an exact power of
/// ten, "5x10^4" for 5*10^k, otherwise plain digits (matches paper axes).
[[nodiscard]] std::string format_power_of_ten(std::int64_t v);

/// Splits on a delimiter (no empty-token collapsing).
[[nodiscard]] std::vector<std::string> split(const std::string& text, char delim);

/// Parses a comma-separated list of integers; throws on malformed input.
[[nodiscard]] std::vector<std::int64_t> parse_int_list(const std::string& text);

/// Elapsed seconds formatted as "12.3s" / "1m02s".
[[nodiscard]] std::string format_duration(double seconds);

}  // namespace nb
