#include "util/csv.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace nb {

csv_writer::csv_writer(const std::string& path, const std::vector<std::string>& header)
    : out_(path, std::ios::trunc), columns_(header.size()) {
  NB_REQUIRE(out_.is_open(), "cannot open CSV file for writing: " + path);
  NB_REQUIRE(!header.empty(), "CSV header must not be empty");
  write_line(header);
}

void csv_writer::write_row(const std::vector<std::string>& fields) {
  NB_REQUIRE(fields.size() == columns_, "CSV row width differs from header");
  write_line(fields);
  ++rows_;
}

void csv_writer::write_line(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

std::string csv_writer::escape(const std::string& raw) {
  const bool needs_quotes = raw.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return raw;
  std::string quoted = "\"";
  for (char c : raw) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

std::string csv_writer::field(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

std::string csv_writer::field(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  return buf;
}

}  // namespace nb
