// Tiny declarative command-line flag parser for the bench/example binaries.
//
// Supported syntax: --name value, --name=value, and bare --flag for booleans.
// Unknown flags are an error (catches typos in experiment scripts); --help
// prints the registered flags with defaults and descriptions.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nb {

class cli_parser {
 public:
  explicit cli_parser(std::string program_description);

  void add_int(const std::string& name, std::int64_t default_value, const std::string& help);
  void add_double(const std::string& name, double default_value, const std::string& help);
  void add_string(const std::string& name, const std::string& default_value, const std::string& help);
  void add_bool(const std::string& name, bool default_value, const std::string& help);

  /// Parses argv.  Returns false if --help was requested (help text is
  /// printed to stdout); throws nb::contract_error on malformed input.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  [[nodiscard]] std::string help_text() const;

 private:
  enum class kind { integer, real, text, boolean };
  struct flag {
    kind type;
    std::string help;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
    bool bool_value = false;
  };

  const flag& find(const std::string& name, kind expected) const;
  void set_from_text(const std::string& name, const std::string& text);

  std::string description_;
  std::map<std::string, flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace nb
