// Tiny declarative command-line flag parser for the bench/example binaries.
//
// Supported syntax: --name value, --name=value, and bare --flag for booleans.
// Unknown flags are an error (catches typos in experiment scripts); --help
// prints the registered flags with defaults and descriptions.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nb {

class cli_parser {
 public:
  explicit cli_parser(std::string program_description);

  void add_int(const std::string& name, std::int64_t default_value, const std::string& help);
  void add_double(const std::string& name, double default_value, const std::string& help);
  void add_string(const std::string& name, const std::string& default_value, const std::string& help);
  void add_bool(const std::string& name, bool default_value, const std::string& help);

  /// Parses argv.  Returns false if --help was requested (help text is
  /// printed to stdout); throws nb::contract_error on malformed input.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  [[nodiscard]] std::string help_text() const;

 private:
  enum class kind { integer, real, text, boolean };
  struct flag {
    kind type;
    std::string help;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
    bool bool_value = false;
  };

  const flag& find(const std::string& name, kind expected) const;
  void set_from_text(const std::string& name, const std::string& text);

  std::string description_;
  std::map<std::string, flag> flags_;
  std::vector<std::string> order_;
};

// ---------------------------------------------------------------------------
// Shared flag families.
//
// The engine-selection and allocation-model flags are common to every
// model-facing binary (the bench/ tools, examples/campaign, the fig/table
// reproductions).  They are registered HERE, once, with the canonical
// spelling, defaults and help text, so a new flag -- like the steady-state
// --departures/--churn family -- lands in one place and every binary picks
// it up.  This layer is string-level only: util knows nothing about models
// or kernels, so validation stays where the specs live (make_weighting,
// make_departures, kernel_isa_from_name, ...).

/// Raw values of the engine-selection family (execution routing; shards
/// and lanes are part of the sampling contract, the rest never affects
/// results).
struct engine_flag_values {
  std::int64_t threads_per_run = 0;
  std::int64_t shards = 16;
  std::string kernel;  ///< "off" or a kernel backend spec
  std::int64_t lanes = 8;
  bool hugepages = false;
};

/// Registers --threads-per-run, --shards, --kernel, --lanes, --hugepages.
void add_engine_flags(cli_parser& cli);
[[nodiscard]] engine_flag_values get_engine_flags(const cli_parser& cli);

/// Raw values of the steady-state churn family (see README
/// "Steady-state churn").
struct churn_flag_values {
  std::string departures;       ///< departure-channel spec ("none" = insertion-only)
  std::int64_t churn = 0;       ///< occupancy override for churn cells (0 = m)
  std::int64_t telemetry = 0;   ///< gap-telemetry cadence in pairs (0 = final only)
};

/// Registers --departures, --churn, --churn-telemetry.
void add_churn_flags(cli_parser& cli);
[[nodiscard]] churn_flag_values get_churn_flags(const cli_parser& cli);

/// Raw values of the allocation-model family (all sampling contract).
struct model_flag_values {
  std::string weighting;
  std::string sampler;
  churn_flag_values churn;
};

/// Registers --weighting, --sampler and the churn family.
void add_model_flags(cli_parser& cli);
[[nodiscard]] model_flag_values get_model_flags(const cli_parser& cli);

}  // namespace nb
