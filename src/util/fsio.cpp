#include "util/fsio.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define NB_HAVE_POSIX_IO 1
#else
#define NB_HAVE_POSIX_IO 0
#endif

namespace nb {
namespace {

[[noreturn]] void io_fail(const std::string& what, const std::string& path) {
  throw contract_error(what + " '" + path + "': " + std::strerror(errno));
}

std::string parent_dir_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

void flush_and_sync(std::FILE* file, const std::string& path_for_errors) {
  NB_REQUIRE(file != nullptr, "flush_and_sync needs an open stream");
  if (std::fflush(file) != 0) io_fail("failed to flush", path_for_errors);
#if NB_HAVE_POSIX_IO
  if (::fsync(::fileno(file)) != 0) io_fail("failed to fsync", path_for_errors);
#endif
}

void sync_parent_dir(const std::string& path) {
#if NB_HAVE_POSIX_IO
  const std::string dir = parent_dir_of(path);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;  // best effort: an unsyncable parent is not an error
  ::fsync(fd);         // some filesystems (EINVAL) refuse directory fsync
  ::close(fd);
#else
  (void)path;
#endif
}

void atomic_write_file(const std::string& path, const void* data, std::size_t size) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) io_fail("failed to open temp file", tmp);
  if (size > 0 && std::fwrite(data, 1, size, file) != size) {
    std::fclose(file);
    std::remove(tmp.c_str());
    io_fail("failed to write", tmp);
  }
  try {
    flush_and_sync(file, tmp);
  } catch (...) {
    std::fclose(file);
    std::remove(tmp.c_str());
    throw;
  }
  if (std::fclose(file) != 0) {
    std::remove(tmp.c_str());
    io_fail("failed to close", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    io_fail("failed to rename temp file over", path);
  }
  sync_parent_dir(path);
}

std::optional<std::vector<std::uint8_t>> read_file_bytes(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (errno == ENOENT) return std::nullopt;
    io_fail("failed to open", path);
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const std::size_t got = std::fread(buf, 1, sizeof(buf), file);
    bytes.insert(bytes.end(), buf, buf + got);
    if (got < sizeof(buf)) {
      if (std::ferror(file) != 0) {
        std::fclose(file);
        io_fail("failed to read", path);
      }
      break;
    }
  }
  std::fclose(file);
  return bytes;
}

}  // namespace nb
