#include "util/hugepage.hpp"

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace nb {
namespace {

std::atomic<int> g_enabled{-1};  // -1 = not yet seeded from the environment
std::atomic<bool> g_force_fail{false};
std::atomic<std::size_t> g_advised{0};
std::atomic<std::size_t> g_failed{0};
std::atomic<int> g_last_errno{0};

bool env_truthy(const char* name) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return false;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
           std::strcmp(v, "OFF") == 0 || std::strcmp(v, "false") == 0);
}

void record_failure(int err) noexcept {
  g_failed.fetch_add(1, std::memory_order_relaxed);
  g_last_errno.store(err, std::memory_order_relaxed);
}

}  // namespace

bool hugepages_enabled() noexcept {
  int e = g_enabled.load(std::memory_order_relaxed);
  if (e < 0) {
    e = env_truthy("NB_HUGEPAGES") ? 1 : 0;
    g_enabled.store(e, std::memory_order_relaxed);
  }
  return e == 1;
}

void set_hugepages_enabled(bool enabled) noexcept {
  g_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

bool advise_hugepages(void* ptr, std::size_t bytes) noexcept {
  if (!hugepages_enabled() || ptr == nullptr || bytes == 0) return false;
  if (g_force_fail.load(std::memory_order_relaxed)) {
    record_failure(EINVAL);
    return false;
  }
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  // madvise wants page-aligned whole pages: round the range inward (the
  // vector allocator gives no page alignment).  THP only promotes 2 MB
  // extents anyway, so losing the partial edge pages costs nothing.
  const long page_long = sysconf(_SC_PAGESIZE);
  const auto page = page_long > 0 ? static_cast<std::uintptr_t>(page_long) : 4096u;
  const auto lo = reinterpret_cast<std::uintptr_t>(ptr);
  const std::uintptr_t begin = (lo + page - 1) & ~(page - 1);
  const std::uintptr_t end = (lo + bytes) & ~(page - 1);
  if (end <= begin) return false;  // no whole page in range: nothing to advise
  if (madvise(reinterpret_cast<void*>(begin), end - begin, MADV_HUGEPAGE) != 0) {
    record_failure(errno);
    return false;
  }
  g_advised.fetch_add(1, std::memory_order_relaxed);
  return true;
#else
  record_failure(ENOTSUP);
  return false;
#endif
}

hugepage_stats_t hugepage_stats() noexcept {
  hugepage_stats_t s;
  s.advised = g_advised.load(std::memory_order_relaxed);
  s.failed = g_failed.load(std::memory_order_relaxed);
  s.last_errno = g_last_errno.load(std::memory_order_relaxed);
  return s;
}

void reset_hugepage_stats() noexcept {
  g_advised.store(0, std::memory_order_relaxed);
  g_failed.store(0, std::memory_order_relaxed);
  g_last_errno.store(0, std::memory_order_relaxed);
}

void force_hugepage_failure_for_testing(bool force) noexcept {
  g_force_fail.store(force, std::memory_order_relaxed);
}

}  // namespace nb
