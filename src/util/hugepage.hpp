// Transparent-huge-page backing for the hot allocation-path buffers.
//
// At paper scale the kernel's working set -- the 4 MB load/count row and
// the 1 MB compact snapshot -- spans ~1300 4 KiB pages, enough for random
// gathers/increments to thrash the dTLB.  madvise(MADV_HUGEPAGE) asks the
// Linux kernel to back those ranges with 2 MB transparent huge pages
// (~3 TLB entries instead of ~1300).  Strictly execution-only: page size
// never changes results, so the knob is safe to flip per run.
//
// Opt-in and fail-soft by design: THP is off unless the NB_HUGEPAGES
// environment variable (or repeat_options::hugepages / the bench
// --hugepages flag) turns it on, and when the kernel refuses -- THP
// disabled system-wide, non-Linux build, unaligned tiny buffer -- the
// advice quietly degrades to normal pages.  The outcome (advised /
// failed + errno) is recorded in process-wide stats so benchmarks can
// attribute results to the backing that was actually granted.
#pragma once

#include <cstddef>

namespace nb {

/// Outcome counters for every advise_hugepages call so far (process-wide).
struct hugepage_stats_t {
  std::size_t advised = 0;  ///< regions the kernel accepted MADV_HUGEPAGE for
  std::size_t failed = 0;   ///< regions where madvise failed (or no THP support)
  int last_errno = 0;       ///< errno of the most recent failure, 0 if none
};

/// Whether allocation-path buffers request huge-page backing.  Seeded once
/// per process from NB_HUGEPAGES ("0"/"off"/"false" or unset = disabled).
[[nodiscard]] bool hugepages_enabled() noexcept;

/// Overrides the process-wide setting (bench/tests; thread-safe).
void set_hugepages_enabled(bool enabled) noexcept;

/// Advises the kernel to back [ptr, ptr + bytes) with transparent huge
/// pages.  No-op returning false when the knob is off, the range contains
/// no whole page, or the platform lacks madvise; a true madvise failure is
/// counted in hugepage_stats with its errno.  Returns true iff the advice
/// was accepted.  Never throws, never affects results.
bool advise_hugepages(void* ptr, std::size_t bytes) noexcept;

[[nodiscard]] hugepage_stats_t hugepage_stats() noexcept;
void reset_hugepage_stats() noexcept;

/// Test hook: when forced, every advise attempt fails as if madvise
/// returned EINVAL (exercises the graceful-fallback path deterministically).
void force_hugepage_failure_for_testing(bool force) noexcept;

}  // namespace nb
