#include "util/strings.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "common/error.hpp"

namespace nb {

std::string format_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string format_power_of_ten(std::int64_t v) {
  if (v <= 0) return std::to_string(v);
  for (std::int64_t mant : {std::int64_t{1}, std::int64_t{5}}) {
    std::int64_t p = mant;
    int exp = 0;
    while (p < v) {
      p *= 10;
      ++exp;
    }
    if (p == v) {
      if (exp == 0) return std::to_string(mant);
      std::string s = (mant == 1) ? "" : std::to_string(mant) + "x";
      return s + "10^" + std::to_string(exp);
    }
  }
  return std::to_string(v);
}

std::vector<std::string> split(const std::string& text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::int64_t> parse_int_list(const std::string& text) {
  std::vector<std::int64_t> out;
  if (text.empty()) return out;
  for (const auto& token : split(text, ',')) {
    try {
      std::size_t pos = 0;
      const std::int64_t v = std::stoll(token, &pos);
      NB_REQUIRE(pos == token.size(), "trailing characters in integer list: '" + token + "'");
      out.push_back(v);
    } catch (const std::invalid_argument&) {
      throw contract_error("malformed integer in list: '" + token + "'");
    } catch (const std::out_of_range&) {
      throw contract_error("integer out of range in list: '" + token + "'");
    }
  }
  return out;
}

std::string format_duration(double seconds) {
  if (seconds < 60.0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1fs", seconds);
    return buf;
  }
  const auto minutes = static_cast<std::int64_t>(seconds / 60.0);
  const auto rem = static_cast<std::int64_t>(std::lround(seconds - static_cast<double>(minutes) * 60.0));
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lldm%02llds", static_cast<long long>(minutes),
                static_cast<long long>(rem));
  return buf;
}

}  // namespace nb
