// CSV output for bench results, so reproduction data can be re-plotted.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace nb {

/// Writes rows to a CSV file with RFC-4180 style quoting of fields that
/// contain commas, quotes or newlines.
class csv_writer {
 public:
  /// Opens (truncates) `path` and writes the header row.  Throws
  /// nb::contract_error if the file cannot be opened.
  csv_writer(const std::string& path, const std::vector<std::string>& header);

  void write_row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with enough precision for round-trips.
  static std::string field(double v);
  static std::string field(std::int64_t v);

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  void write_line(const std::vector<std::string>& fields);
  static std::string escape(const std::string& raw);

  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

}  // namespace nb
