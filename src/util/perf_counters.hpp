// Hardware performance counters for the bench legs, via Linux
// perf_event_open, with a graceful no-op fallback everywhere else.
//
// The scaling matrix wants to record *why* a flat spot is flat, not just
// that it is: a leg that stops scaling because it is memory-bound shows
// up as rising LLC misses and stalled cycles at constant IPC, while a
// scheduling problem shows up as falling IPC with flat misses.  Each
// bench leg wraps its timed region in start()/stop() and writes the
// sample into its JSON entry.
//
// Availability is a property of the runner, not the build: containers and
// VMs routinely ship the header but refuse the syscall (no PMU, or
// perf_event_paranoid locked down).  Every refusal degrades to
// available() == false and samples that say so explicitly -- the bench
// then emits "perf": null rather than zeros masquerading as measurements.
//
// Threading: events are opened with inherit=1, so worker threads spawned
// AFTER construction (the shard engine's pool, campaign workers) are
// aggregated into the parent's counts.  Construct the counter set before
// the engine whose threads you want counted.  Counters run from
// construction; start()/stop() bracket a region by snapshotting, so
// multiplexed events are time-scaled per region.
#pragma once

#include <cstdint>

namespace nb {

/// One measured region.  Counts are multiplex-scaled (count *
/// time_enabled / time_running) and therefore doubles.  A negative value
/// for llc_misses / stalled_cycles means that single event could not be
/// opened on this CPU (common for the stalled-cycles event); `available`
/// covers the core pair (cycles + instructions).
struct perf_sample {
  bool available = false;
  double cycles = 0.0;
  double instructions = 0.0;
  double llc_misses = -1.0;
  double stalled_cycles = -1.0;

  [[nodiscard]] double ipc() const noexcept {
    return cycles > 0.0 ? instructions / cycles : 0.0;
  }
  [[nodiscard]] double stalled_frac() const noexcept {
    return (cycles > 0.0 && stalled_cycles >= 0.0) ? stalled_cycles / cycles : -1.0;
  }
};

/// A fixed set of per-thread-inherited hardware counters: CPU cycles,
/// retired instructions, LLC misses, backend-stalled cycles.  Copying is
/// disabled (each instance owns kernel fds on Linux).
class perf_counter_set {
 public:
  perf_counter_set();
  ~perf_counter_set();
  perf_counter_set(const perf_counter_set&) = delete;
  perf_counter_set& operator=(const perf_counter_set&) = delete;

  /// True when at least cycles + instructions opened successfully.
  [[nodiscard]] bool available() const noexcept;

  /// Marks the start of a measured region (snapshots all counters).
  void start();
  /// Ends the region and returns the scaled deltas since start().
  perf_sample stop();

 private:
  struct event {
    int fd = -1;
    std::uint64_t count = 0;    // baseline at start()
    std::uint64_t enabled = 0;  // time_enabled at start()
    std::uint64_t running = 0;  // time_running at start()
  };
  // Order: cycles, instructions, llc_misses, stalled_cycles.
  event events_[4];
};

}  // namespace nb
