#include "util/perf_counters.hpp"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define NB_HAVE_PERF_EVENTS 1
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#else
#define NB_HAVE_PERF_EVENTS 0
#endif

namespace nb {

#if NB_HAVE_PERF_EVENTS

namespace {

struct read_triple {
  std::uint64_t count = 0;
  std::uint64_t enabled = 0;
  std::uint64_t running = 0;
};

int open_counter(std::uint32_t type, std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.type = type;
  attr.size = sizeof attr;
  attr.config = config;
  // Counting starts at open (disabled = 0) on purpose: inherited child
  // events copy the enable state at clone time, and a later ioctl(ENABLE)
  // on the parent fd does NOT propagate to already-cloned children.
  // Regions are measured as read() deltas instead.
  attr.disabled = 0;
  attr.inherit = 1;  // aggregate pool threads spawned after open
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // inherit=1 forbids PERF_FORMAT_GROUP, hence one fd per event; the
  // enabled/running times let us scale counts under multiplexing.
  attr.read_format = PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  const long fd = syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
                          /*group_fd=*/-1, /*flags=*/0UL);
  return static_cast<int>(fd);
}

bool read_counter(int fd, read_triple& out) {
  std::uint64_t buf[3] = {0, 0, 0};
  if (fd < 0) return false;
  const ssize_t got = read(fd, buf, sizeof buf);
  if (got != static_cast<ssize_t>(sizeof buf)) return false;
  out.count = buf[0];
  out.enabled = buf[1];
  out.running = buf[2];
  return true;
}

/// Multiplex-scaled delta between two snapshots of one counter.
double scaled_delta(const read_triple& before, const read_triple& after) {
  const double count = static_cast<double>(after.count - before.count);
  const double enabled = static_cast<double>(after.enabled - before.enabled);
  const double running = static_cast<double>(after.running - before.running);
  if (running <= 0.0) return 0.0;
  return count * (enabled / running);
}

}  // namespace

perf_counter_set::perf_counter_set() {
  events_[0].fd = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
  events_[1].fd = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
  events_[2].fd = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES);
  events_[3].fd = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND);
  // The core pair is all-or-nothing: an IPC built from one working and one
  // refused counter would be garbage.
  if (events_[0].fd < 0 || events_[1].fd < 0) {
    for (event& e : events_) {
      if (e.fd >= 0) close(e.fd);
      e.fd = -1;
    }
  }
}

perf_counter_set::~perf_counter_set() {
  for (event& e : events_) {
    if (e.fd >= 0) close(e.fd);
  }
}

bool perf_counter_set::available() const noexcept { return events_[0].fd >= 0; }

void perf_counter_set::start() {
  for (event& e : events_) {
    read_triple now;
    if (!read_counter(e.fd, now)) continue;
    e.count = now.count;
    e.enabled = now.enabled;
    e.running = now.running;
  }
}

perf_sample perf_counter_set::stop() {
  perf_sample sample;
  if (!available()) return sample;
  double values[4] = {0.0, 0.0, -1.0, -1.0};
  for (int i = 0; i < 4; ++i) {
    read_triple now;
    if (!read_counter(events_[i].fd, now)) continue;
    const read_triple before{events_[i].count, events_[i].enabled, events_[i].running};
    values[i] = scaled_delta(before, now);
  }
  sample.available = true;
  sample.cycles = values[0];
  sample.instructions = values[1];
  sample.llc_misses = events_[2].fd >= 0 ? values[2] : -1.0;
  sample.stalled_cycles = events_[3].fd >= 0 ? values[3] : -1.0;
  return sample;
}

#else  // !NB_HAVE_PERF_EVENTS: every call is a defined no-op.

perf_counter_set::perf_counter_set() = default;
perf_counter_set::~perf_counter_set() = default;
bool perf_counter_set::available() const noexcept { return false; }
void perf_counter_set::start() {}
perf_sample perf_counter_set::stop() { return {}; }

#endif

}  // namespace nb
