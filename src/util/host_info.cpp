#include "util/host_info.hpp"

#include <algorithm>
#include <fstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace nb {

namespace {

std::string detect_cpu_model() {
#if defined(__linux__)
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    // x86 says "model name", some ARM kernels say "Processor"/"model name";
    // take the first match either way.
    const auto key_end = line.find(':');
    if (key_end == std::string::npos) continue;
    std::string key = line.substr(0, key_end);
    key.erase(std::remove(key.begin(), key.end(), '\t'), key.end());
    while (!key.empty() && key.back() == ' ') key.pop_back();
    if (key != "model name" && key != "Processor") continue;
    std::string value = line.substr(key_end + 1);
    const auto first = value.find_first_not_of(' ');
    return first == std::string::npos ? std::string{} : value.substr(first);
  }
#endif
  return {};
}

std::size_t detect_cache_line_size() {
#if defined(_SC_LEVEL1_DCACHE_LINESIZE)
  const long line = sysconf(_SC_LEVEL1_DCACHE_LINESIZE);
  if (line > 0) return static_cast<std::size_t>(line);
#endif
#if defined(__linux__)
  // Some kernels report 0 through sysconf but still populate sysfs.
  std::ifstream sysfs("/sys/devices/system/cpu/cpu0/cache/index0/coherency_line_size");
  std::size_t line_size = 0;
  if (sysfs >> line_size && line_size > 0) return line_size;
#endif
  return 64;
}

}  // namespace

host_info detect_host_info() {
  host_info info;
  info.cpu_model = detect_cpu_model();
  info.hardware_concurrency = std::max(1u, std::thread::hardware_concurrency());
  info.cache_line_size = detect_cache_line_size();
  return info;
}

}  // namespace nb
