// Fixed-width text tables: the bench binaries print results in the shape of
// the paper's tables, aligned for terminal reading.
#pragma once

#include <string>
#include <vector>

namespace nb {

class text_table {
 public:
  explicit text_table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Inserts a horizontal rule before the next added row.
  void add_rule();

  /// Renders with column padding; numeric-looking cells are right-aligned.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  static bool looks_numeric(const std::string& cell);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector encodes a rule
};

}  // namespace nb
