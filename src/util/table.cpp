#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/error.hpp"

namespace nb {

text_table::text_table(std::vector<std::string> header) : header_(std::move(header)) {
  NB_REQUIRE(!header_.empty(), "table header must not be empty");
}

void text_table::add_row(std::vector<std::string> row) {
  NB_REQUIRE(row.size() == header_.size(), "table row width differs from header");
  rows_.push_back(std::move(row));
}

void text_table::add_rule() { rows_.emplace_back(); }

bool text_table::looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  std::size_t i = (cell[0] == '-' || cell[0] == '+') ? 1 : 0;
  if (i >= cell.size()) return false;
  bool any_digit = false;
  for (; i < cell.size(); ++i) {
    const char c = cell[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      any_digit = true;
    } else if (c != '.' && c != 'e' && c != 'E' && c != '-' && c != '+' && c != '%' && c != 'x') {
      return false;
    }
  }
  return any_digit;
}

std::string text_table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    if (row.empty()) continue;
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto emit_row = [&](std::ostringstream& os, const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << "  ";
      const std::size_t pad = widths[c] - row[c].size();
      if (looks_numeric(row[c])) {
        os << std::string(pad, ' ') << row[c];
      } else {
        os << row[c] << std::string(pad, ' ');
      }
    }
    os << '\n';
  };

  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c == 0 ? 0 : 2);

  std::ostringstream os;
  emit_row(os, header_);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    if (row.empty()) {
      os << std::string(total, '-') << '\n';
    } else {
      emit_row(os, row);
    }
  }
  return os.str();
}

}  // namespace nb
