#include "util/cli.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "common/error.hpp"

namespace nb {

cli_parser::cli_parser(std::string program_description)
    : description_(std::move(program_description)) {}

void cli_parser::add_int(const std::string& name, std::int64_t default_value, const std::string& help) {
  NB_REQUIRE(!flags_.count(name), "duplicate flag: " + name);
  flag f;
  f.type = kind::integer;
  f.help = help;
  f.int_value = default_value;
  flags_.emplace(name, std::move(f));
  order_.push_back(name);
}

void cli_parser::add_double(const std::string& name, double default_value, const std::string& help) {
  NB_REQUIRE(!flags_.count(name), "duplicate flag: " + name);
  flag f;
  f.type = kind::real;
  f.help = help;
  f.double_value = default_value;
  flags_.emplace(name, std::move(f));
  order_.push_back(name);
}

void cli_parser::add_string(const std::string& name, const std::string& default_value,
                            const std::string& help) {
  NB_REQUIRE(!flags_.count(name), "duplicate flag: " + name);
  flag f;
  f.type = kind::text;
  f.help = help;
  f.string_value = default_value;
  flags_.emplace(name, std::move(f));
  order_.push_back(name);
}

void cli_parser::add_bool(const std::string& name, bool default_value, const std::string& help) {
  NB_REQUIRE(!flags_.count(name), "duplicate flag: " + name);
  flag f;
  f.type = kind::boolean;
  f.help = help;
  f.bool_value = default_value;
  flags_.emplace(name, std::move(f));
  order_.push_back(name);
}

void cli_parser::set_from_text(const std::string& name, const std::string& text) {
  auto it = flags_.find(name);
  NB_REQUIRE(it != flags_.end(), "unknown flag: --" + name);
  flag& f = it->second;
  try {
    switch (f.type) {
      case kind::integer:
        f.int_value = std::stoll(text);
        break;
      case kind::real:
        f.double_value = std::stod(text);
        break;
      case kind::text:
        f.string_value = text;
        break;
      case kind::boolean:
        if (text == "true" || text == "1" || text == "yes") {
          f.bool_value = true;
        } else if (text == "false" || text == "0" || text == "no") {
          f.bool_value = false;
        } else {
          throw std::invalid_argument("not a boolean");
        }
        break;
    }
  } catch (const std::exception&) {
    throw contract_error("invalid value for --" + name + ": '" + text + "'");
  }
}

bool cli_parser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help_text().c_str(), stdout);
      return false;
    }
    NB_REQUIRE(arg.rfind("--", 0) == 0, "expected --flag, got '" + arg + "'");
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      set_from_text(arg.substr(0, eq), arg.substr(eq + 1));
      continue;
    }
    auto it = flags_.find(arg);
    NB_REQUIRE(it != flags_.end(), "unknown flag: --" + arg);
    if (it->second.type == kind::boolean) {
      // Bare --flag sets true unless the next token is an explicit boolean.
      if (i + 1 < argc) {
        const std::string next = argv[i + 1];
        if (next == "true" || next == "false" || next == "0" || next == "1") {
          set_from_text(arg, next);
          ++i;
          continue;
        }
      }
      it->second.bool_value = true;
      continue;
    }
    NB_REQUIRE(i + 1 < argc, "missing value for --" + arg);
    set_from_text(arg, argv[++i]);
  }
  return true;
}

const cli_parser::flag& cli_parser::find(const std::string& name, kind expected) const {
  auto it = flags_.find(name);
  NB_REQUIRE(it != flags_.end(), "flag not registered: " + name);
  NB_REQUIRE(it->second.type == expected, "flag type mismatch for: " + name);
  return it->second;
}

std::int64_t cli_parser::get_int(const std::string& name) const {
  return find(name, kind::integer).int_value;
}
double cli_parser::get_double(const std::string& name) const {
  return find(name, kind::real).double_value;
}
const std::string& cli_parser::get_string(const std::string& name) const {
  return find(name, kind::text).string_value;
}
bool cli_parser::get_bool(const std::string& name) const {
  return find(name, kind::boolean).bool_value;
}

std::string cli_parser::help_text() const {
  std::ostringstream os;
  os << description_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const flag& f = flags_.at(name);
    os << "  --" << name;
    switch (f.type) {
      case kind::integer:
        os << " <int>     (default " << f.int_value << ")";
        break;
      case kind::real:
        os << " <float>   (default " << f.double_value << ")";
        break;
      case kind::text:
        os << " <string>  (default '" << f.string_value << "')";
        break;
      case kind::boolean:
        os << "           (default " << (f.bool_value ? "true" : "false") << ")";
        break;
    }
    os << "\n      " << f.help << "\n";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Shared flag families.

void add_engine_flags(cli_parser& cli) {
  cli.add_int("threads-per-run", 0,
              "intra-run shard-engine workers (0 = serial runs; stale-snapshot "
              "windows, e.g. b-batch batches, then run shard-parallel)");
  cli.add_int("shards", 16, "fixed shard count for the parallel engine (sampling contract)");
  cli.add_string("kernel", "off",
                 "allocation-kernel backend for frozen windows: off | scalar | "
                 "sse2 | avx2 | avx512 | neon | auto | simd (auto/simd = best "
                 "this CPU supports; an unsupported request warns once and falls "
                 "back; backends are bit-identical for a fixed lane count)");
  cli.add_int("lanes", 8, "kernel RNG lanes (sampling contract, like shards)");
  cli.add_bool("hugepages", false,
               "request transparent-huge-page backing for the load array and compact "
               "snapshot (madvise; execution-only, fail-soft; also via NB_HUGEPAGES=1)");
}

engine_flag_values get_engine_flags(const cli_parser& cli) {
  engine_flag_values v;
  v.threads_per_run = cli.get_int("threads-per-run");
  v.shards = cli.get_int("shards");
  v.kernel = cli.get_string("kernel");
  v.lanes = cli.get_int("lanes");
  v.hugepages = cli.get_bool("hugepages");
  NB_REQUIRE(v.threads_per_run >= 0, "--threads-per-run must be >= 0");
  NB_REQUIRE(v.shards >= 1, "--shards must be positive");
  NB_REQUIRE(v.lanes >= 1, "--lanes must be positive");
  return v;
}

void add_churn_flags(cli_parser& cli) {
  cli.add_string("departures", "none",
                 "departure-channel spec: none | random | lease | drain (sampling "
                 "contract; non-none turns cells into steady-state churn cells -- "
                 "see README \"Steady-state churn\")");
  cli.add_int("churn", 0,
              "steady-state occupancy for churn cells (0 = m, the steady-state "
              "default; needs a non-none --departures)");
  cli.add_int("churn-telemetry", 0,
              "record a gap/occupancy telemetry point about every N churn pairs "
              "(0 = final point only; execution-only, never affects results)");
}

churn_flag_values get_churn_flags(const cli_parser& cli) {
  churn_flag_values v;
  v.departures = cli.get_string("departures");
  v.churn = cli.get_int("churn");
  v.telemetry = cli.get_int("churn-telemetry");
  NB_REQUIRE(v.churn >= 0, "--churn must be >= 0");
  NB_REQUIRE(v.telemetry >= 0, "--churn-telemetry must be >= 0");
  NB_REQUIRE(v.churn == 0 || v.departures != "none",
             "--churn needs a departure channel (--departures random | lease | drain)");
  return v;
}

void add_model_flags(cli_parser& cli) {
  cli.add_string("weighting", "unit",
                 "ball-weighting spec: unit | fixed:<w> | two-point:<lo>,<hi>,<p> | "
                 "pareto:<alpha>[,<cap>] (sampling contract; see README \"Weighted balls\")");
  cli.add_string("sampler", "uniform",
                 "bin-sampler spec: uniform | zipf:<s> | hot:<k>,<f> (sampling contract)");
  add_churn_flags(cli);
}

model_flag_values get_model_flags(const cli_parser& cli) {
  model_flag_values v;
  v.weighting = cli.get_string("weighting");
  v.sampler = cli.get_string("sampler");
  v.churn = get_churn_flags(cli);
  return v;
}

}  // namespace nb
