#include "util/cli.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "common/error.hpp"

namespace nb {

cli_parser::cli_parser(std::string program_description)
    : description_(std::move(program_description)) {}

void cli_parser::add_int(const std::string& name, std::int64_t default_value, const std::string& help) {
  NB_REQUIRE(!flags_.count(name), "duplicate flag: " + name);
  flag f;
  f.type = kind::integer;
  f.help = help;
  f.int_value = default_value;
  flags_.emplace(name, std::move(f));
  order_.push_back(name);
}

void cli_parser::add_double(const std::string& name, double default_value, const std::string& help) {
  NB_REQUIRE(!flags_.count(name), "duplicate flag: " + name);
  flag f;
  f.type = kind::real;
  f.help = help;
  f.double_value = default_value;
  flags_.emplace(name, std::move(f));
  order_.push_back(name);
}

void cli_parser::add_string(const std::string& name, const std::string& default_value,
                            const std::string& help) {
  NB_REQUIRE(!flags_.count(name), "duplicate flag: " + name);
  flag f;
  f.type = kind::text;
  f.help = help;
  f.string_value = default_value;
  flags_.emplace(name, std::move(f));
  order_.push_back(name);
}

void cli_parser::add_bool(const std::string& name, bool default_value, const std::string& help) {
  NB_REQUIRE(!flags_.count(name), "duplicate flag: " + name);
  flag f;
  f.type = kind::boolean;
  f.help = help;
  f.bool_value = default_value;
  flags_.emplace(name, std::move(f));
  order_.push_back(name);
}

void cli_parser::set_from_text(const std::string& name, const std::string& text) {
  auto it = flags_.find(name);
  NB_REQUIRE(it != flags_.end(), "unknown flag: --" + name);
  flag& f = it->second;
  try {
    switch (f.type) {
      case kind::integer:
        f.int_value = std::stoll(text);
        break;
      case kind::real:
        f.double_value = std::stod(text);
        break;
      case kind::text:
        f.string_value = text;
        break;
      case kind::boolean:
        if (text == "true" || text == "1" || text == "yes") {
          f.bool_value = true;
        } else if (text == "false" || text == "0" || text == "no") {
          f.bool_value = false;
        } else {
          throw std::invalid_argument("not a boolean");
        }
        break;
    }
  } catch (const std::exception&) {
    throw contract_error("invalid value for --" + name + ": '" + text + "'");
  }
}

bool cli_parser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help_text().c_str(), stdout);
      return false;
    }
    NB_REQUIRE(arg.rfind("--", 0) == 0, "expected --flag, got '" + arg + "'");
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      set_from_text(arg.substr(0, eq), arg.substr(eq + 1));
      continue;
    }
    auto it = flags_.find(arg);
    NB_REQUIRE(it != flags_.end(), "unknown flag: --" + arg);
    if (it->second.type == kind::boolean) {
      // Bare --flag sets true unless the next token is an explicit boolean.
      if (i + 1 < argc) {
        const std::string next = argv[i + 1];
        if (next == "true" || next == "false" || next == "0" || next == "1") {
          set_from_text(arg, next);
          ++i;
          continue;
        }
      }
      it->second.bool_value = true;
      continue;
    }
    NB_REQUIRE(i + 1 < argc, "missing value for --" + arg);
    set_from_text(arg, argv[++i]);
  }
  return true;
}

const cli_parser::flag& cli_parser::find(const std::string& name, kind expected) const {
  auto it = flags_.find(name);
  NB_REQUIRE(it != flags_.end(), "flag not registered: " + name);
  NB_REQUIRE(it->second.type == expected, "flag type mismatch for: " + name);
  return it->second;
}

std::int64_t cli_parser::get_int(const std::string& name) const {
  return find(name, kind::integer).int_value;
}
double cli_parser::get_double(const std::string& name) const {
  return find(name, kind::real).double_value;
}
const std::string& cli_parser::get_string(const std::string& name) const {
  return find(name, kind::text).string_value;
}
bool cli_parser::get_bool(const std::string& name) const {
  return find(name, kind::boolean).bool_value;
}

std::string cli_parser::help_text() const {
  std::ostringstream os;
  os << description_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const flag& f = flags_.at(name);
    os << "  --" << name;
    switch (f.type) {
      case kind::integer:
        os << " <int>     (default " << f.int_value << ")";
        break;
      case kind::real:
        os << " <float>   (default " << f.double_value << ")";
        break;
      case kind::text:
        os << " <string>  (default '" << f.string_value << "')";
        break;
      case kind::boolean:
        os << "           (default " << (f.bool_value ? "true" : "false") << ")";
        break;
    }
    os << "\n      " << f.help << "\n";
  }
  return os.str();
}

}  // namespace nb
