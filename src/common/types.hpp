// Shared strong-ish aliases used across the library.
//
// The paper's notation: n bins, m balls, loads x^t_i, normalized loads
// y^t_i = x^t_i - t/n, and Gap(t) = max_i y^t_i.  We keep the same names in
// code wherever practical.
//
// Generalized allocation (PR 5): balls may carry integer *weights* and the
// per-bin load is the accumulated weight, so the load and weight types are
// the same 64-bit signed integer.  The unit-weight configuration (weight 1
// per ball) keeps every historical identity: load == ball count per bin and
// total weight == balls.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace nb {

/// Index of a bin, in [0, n).  The paper uses 1-based [n]; code is 0-based.
using bin_index = std::uint32_t;

/// Weight of one ball, and the type every *accumulated* weight total uses.
/// Unit-weight processes use 1 everywhere; weighted processes draw from a
/// ball_weighting (core/alloc_model.hpp).  64-bit: a run's total weight
/// (balls x weight) blows through 32 bits almost immediately, so all
/// total-load accounting is int64 by type -- the overflow audit the
/// weighted model forced.
using weight_t = std::int64_t;

/// Absolute (integer) load of a bin: the accumulated weight of the balls
/// it holds.  Deliberately 32-bit -- the load vector and the stale
/// snapshots are the hot random-access structures (2 reads + 1 write per
/// ball), and widening them measurably slows the paper-scale fused loops.
/// The weighted path guards every deposit against per-bin overflow
/// instead (load_state::allocate(i, w)); totals live in weight_t.
using load_t = std::int32_t;

/// Number of balls / steps.  m can reach 10^8 at paper scale (n=1e5, m=1000n).
using step_count = std::int64_t;

/// Count of bins.
using bin_count = std::uint32_t;

/// Ceiling on the number of balls in one run, derived from the load
/// representation: per-bin loads are load_t (32-bit signed), and even the
/// degenerate unit-weight run that lands every ball in a single bin must
/// not overflow one.  Kept a round 2*10^9 (just under the 2147483647 type
/// limit) so CLI bounds and error messages stay human-readable.
inline constexpr step_count max_run_balls = 2'000'000'000;
static_assert(max_run_balls <= static_cast<step_count>(std::numeric_limits<load_t>::max()),
              "a run at the ceiling must fit the per-bin load type");

/// Ceiling on a single ball's weight (2^24).  Large enough for heavy-
/// tailed job-size models with orders-of-magnitude spread, small enough
/// that the guarded weighted deposit -- not this constant -- is what
/// decides when a bin would overflow its 32-bit load.
inline constexpr weight_t max_ball_weight = weight_t{1} << 24;

/// Ceiling on the accumulated total weight of one run.  Half the int64
/// range: average-load and gap arithmetic on totals stays overflow-free.
/// With 32-bit per-bin loads the per-bin guard almost always binds first;
/// this one exists so the int64 accumulator itself can never silently
/// wrap, no matter the bin count.
inline constexpr weight_t max_total_weight = std::numeric_limits<weight_t>::max() / 2;

static_assert(max_run_balls <= max_total_weight,
              "a unit-weight run at the ball ceiling must fit the weight ceiling");
static_assert(max_ball_weight < std::numeric_limits<load_t>::max(),
              "one maximal ball must fit a bin");

}  // namespace nb
