// Shared strong-ish aliases used across the library.
//
// The paper's notation: n bins, m balls, loads x^t_i, normalized loads
// y^t_i = x^t_i - t/n, and Gap(t) = max_i y^t_i.  We keep the same names in
// code wherever practical.
#pragma once

#include <cstddef>
#include <cstdint>

namespace nb {

/// Index of a bin, in [0, n).  The paper uses 1-based [n]; code is 0-based.
using bin_index = std::uint32_t;

/// Absolute (integer) load of a bin.  With m <= 2^31 balls a 32-bit count
/// is ample; the simulator checks m against this limit on construction.
using load_t = std::int32_t;

/// Number of balls / steps.  m can reach 10^8 at paper scale (n=1e5, m=1000n).
using step_count = std::int64_t;

/// Count of bins.
using bin_count = std::uint32_t;

}  // namespace nb
