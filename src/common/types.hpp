// Shared strong-ish aliases used across the library.
//
// The paper's notation: n bins, m balls, loads x^t_i, normalized loads
// y^t_i = x^t_i - t/n, and Gap(t) = max_i y^t_i.  We keep the same names in
// code wherever practical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace nb {

/// Index of a bin, in [0, n).  The paper uses 1-based [n]; code is 0-based.
using bin_index = std::uint32_t;

/// Absolute (integer) load of a bin.  With m <= 2^31 balls a 32-bit count
/// is ample; the simulator checks m against this limit on construction.
using load_t = std::int32_t;

/// Number of balls / steps.  m can reach 10^8 at paper scale (n=1e5, m=1000n).
using step_count = std::int64_t;

/// Count of bins.
using bin_count = std::uint32_t;

/// Ceiling on the number of balls in one run, derived from the load
/// representation: per-bin loads are load_t (32-bit signed), and even the
/// degenerate run that lands every ball in a single bin must not overflow
/// one.  Kept a round 2*10^9 (just under the 2147483647 type limit) so CLI
/// bounds and error messages stay human-readable.
inline constexpr step_count max_run_balls = 2'000'000'000;
static_assert(max_run_balls <= static_cast<step_count>(std::numeric_limits<load_t>::max()),
              "a run at the ceiling must fit the per-bin load type");

}  // namespace nb
