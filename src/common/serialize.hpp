// Little-endian binary state codec for mid-run checkpoints.
//
// `state_writer` appends fixed-width primitives to a growable byte buffer;
// `state_reader` consumes the same encoding with hard bounds checks -- every
// malformed read (truncation, oversized length prefix) throws
// nb::contract_error instead of reading past the end or allocating an
// attacker-controlled amount of memory.  The encoding is explicitly
// little-endian and width-stable, so a checkpoint written on one host is a
// byte-identical function of the simulation state on any other.
//
// The codec is deliberately dumb: no tags, no schema evolution.  Versioning
// lives one level up, in the checkpoint file header (exp/checkpoint.hpp);
// a version bump rewrites the payload layout wholesale.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/error.hpp"

namespace nb {

class state_writer {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u32(std::uint32_t v) { put_le(v); }
  void put_u64(std::uint64_t v) { put_le(v); }
  void put_i32(std::int32_t v) { put_le(static_cast<std::uint32_t>(v)); }
  void put_i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_double(double v) { put_le(std::bit_cast<std::uint64_t>(v)); }

  /// u64 byte count + raw bytes.
  void put_string(const std::string& s) {
    put_u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// u64 element count + elements.  T must be a fixed-width integral type.
  template <typename T>
  void put_vec(const std::vector<T>& v) {
    static_assert(std::is_integral_v<T> && (sizeof(T) == 1 || sizeof(T) == 2 ||
                                            sizeof(T) == 4 || sizeof(T) == 8));
    put_u64(v.size());
    if constexpr (std::endian::native == std::endian::little) {
      // Bulk copy: checkpoints carry n-sized vectors (the load array is
      // 4 MB at paper scale) and a per-element loop shows up in the
      // checkpoint-overhead bench.
      const std::size_t bytes = v.size() * sizeof(T);
      const std::size_t at = buf_.size();
      buf_.resize(at + bytes);
      if (bytes > 0) std::memcpy(buf_.data() + at, v.data(), bytes);
    } else {
      for (const T x : v) put_le(static_cast<std::make_unsigned_t<T>>(x));
    }
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }

 private:
  template <typename U>
  void put_le(U v) {
    for (std::size_t i = 0; i < sizeof(U); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

class state_reader {
 public:
  state_reader(const std::uint8_t* data, std::size_t size) noexcept : data_(data), size_(size) {}
  explicit state_reader(const std::vector<std::uint8_t>& bytes) noexcept
      : state_reader(bytes.data(), bytes.size()) {}

  [[nodiscard]] std::uint8_t get_u8() {
    need(1);
    return data_[pos_++];
  }
  [[nodiscard]] std::uint32_t get_u32() { return get_le<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t get_u64() { return get_le<std::uint64_t>(); }
  [[nodiscard]] std::int32_t get_i32() { return static_cast<std::int32_t>(get_le<std::uint32_t>()); }
  [[nodiscard]] std::int64_t get_i64() { return static_cast<std::int64_t>(get_le<std::uint64_t>()); }
  [[nodiscard]] bool get_bool() { return get_u8() != 0; }
  [[nodiscard]] double get_double() { return std::bit_cast<double>(get_le<std::uint64_t>()); }

  [[nodiscard]] std::string get_string() {
    const std::uint64_t len = get_u64();
    need_count(len, 1);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return s;
  }

  template <typename T>
  [[nodiscard]] std::vector<T> get_vec() {
    static_assert(std::is_integral_v<T> && (sizeof(T) == 1 || sizeof(T) == 2 ||
                                            sizeof(T) == 4 || sizeof(T) == 8));
    const std::uint64_t count = get_u64();
    // Reject the length prefix BEFORE allocating: a corrupt count must
    // produce a clean diagnostic, not a multi-gigabyte bad_alloc.
    need_count(count, sizeof(T));
    std::vector<T> v(static_cast<std::size_t>(count));
    if constexpr (std::endian::native == std::endian::little) {
      if (count > 0) std::memcpy(v.data(), data_ + pos_, v.size() * sizeof(T));
      pos_ += v.size() * sizeof(T);
    } else {
      for (auto& x : v) x = static_cast<T>(get_le<std::make_unsigned_t<T>>());
    }
    return v;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }

  /// Trailing bytes after the last field mean writer/reader disagree on the
  /// layout -- reject rather than silently ignore.
  void expect_end() const {
    NB_REQUIRE(pos_ == size_, "checkpoint payload has trailing bytes (layout mismatch)");
  }

 private:
  void need(std::size_t bytes) const {
    NB_REQUIRE(bytes <= size_ - pos_, "checkpoint payload truncated");
  }
  void need_count(std::uint64_t count, std::size_t elem_size) const {
    NB_REQUIRE(count <= (size_ - pos_) / elem_size,
               "checkpoint payload length prefix exceeds remaining bytes");
  }

  template <typename U>
  [[nodiscard]] U get_le() {
    need(sizeof(U));
    U v = 0;
    for (std::size_t i = 0; i < sizeof(U); ++i) {
      v |= static_cast<U>(static_cast<U>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(U);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace nb
