// Contract and error-handling support for the noisebalance library.
//
// Two levels of checks, following the Core Guidelines (I.5-I.8, P.6-P.7):
//
//  * NB_REQUIRE(cond, msg)  -- precondition on a *public* interface.  A
//    violation is a caller bug or bad configuration; throws
//    nb::contract_error (derived from std::invalid_argument) with file/line
//    context.  Always compiled in: configuration errors must be catchable in
//    release builds too.
//
//  * NB_ASSERT(cond)        -- internal invariant.  Compiled in unless
//    NB_NO_INTERNAL_CHECKS is defined; aborts with a diagnostic.  Used in
//    cold paths and at state-transition boundaries, never in the per-ball
//    hot loop (hot-loop invariants are covered by tests instead).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace nb {

/// Thrown when a public-interface precondition is violated.
class contract_error : public std::invalid_argument {
 public:
  explicit contract_error(const std::string& what) : std::invalid_argument(what) {}
};

/// One-shot diagnostics for accepted-but-ineffective configuration (e.g.
/// threads_per_run on a process with no parallel windows): emits
/// "noisebalance: warning: <message>" to stderr the first time each `key`
/// is seen in this process, and never again.  Thread-safe.  Returns true
/// iff this call was the one that emitted.
bool warn_once(const std::string& key, const std::string& message);

/// True iff warn_once has already fired for `key` (regression-test hook).
[[nodiscard]] bool warned(const std::string& key);

namespace detail {
[[noreturn]] void throw_contract_error(std::string_view condition, std::string_view message,
                                       std::string_view file, long line);
[[noreturn]] void fail_assert(std::string_view condition, std::string_view file, long line);
}  // namespace detail

}  // namespace nb

#define NB_REQUIRE(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::nb::detail::throw_contract_error(#cond, (msg), __FILE__, __LINE__); \
    }                                                                      \
  } while (false)

#if defined(NB_NO_INTERNAL_CHECKS)
#define NB_ASSERT(cond) ((void)0)
#else
#define NB_ASSERT(cond)                                          \
  do {                                                           \
    if (!(cond)) {                                               \
      ::nb::detail::fail_assert(#cond, __FILE__, __LINE__);      \
    }                                                            \
  } while (false)
#endif
