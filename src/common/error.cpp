#include "common/error.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <sstream>

namespace nb {

namespace {
std::mutex warn_mutex;
std::set<std::string>& warned_keys() {
  static std::set<std::string> keys;
  return keys;
}
}  // namespace

bool warn_once(const std::string& key, const std::string& message) {
  {
    const std::lock_guard<std::mutex> lock(warn_mutex);
    if (!warned_keys().insert(key).second) return false;
  }
  std::fprintf(stderr, "noisebalance: warning: %s\n", message.c_str());
  return true;
}

bool warned(const std::string& key) {
  const std::lock_guard<std::mutex> lock(warn_mutex);
  return warned_keys().count(key) != 0;
}

}  // namespace nb

namespace nb::detail {

[[noreturn]] void throw_contract_error(std::string_view condition, std::string_view message,
                                       std::string_view file, long line) {
  std::ostringstream os;
  os << "precondition violated: " << message << " [" << condition << "] at " << file << ":" << line;
  throw contract_error(os.str());
}

[[noreturn]] void fail_assert(std::string_view condition, std::string_view file, long line) {
  std::fprintf(stderr, "noisebalance internal invariant failed: %.*s at %.*s:%ld\n",
               static_cast<int>(condition.size()), condition.data(),
               static_cast<int>(file.size()), file.data(), line);
  std::abort();
}

}  // namespace nb::detail
