#include "common/error.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace nb::detail {

[[noreturn]] void throw_contract_error(std::string_view condition, std::string_view message,
                                       std::string_view file, long line) {
  std::ostringstream os;
  os << "precondition violated: " << message << " [" << condition << "] at " << file << ":" << line;
  throw contract_error(os.str());
}

[[noreturn]] void fail_assert(std::string_view condition, std::string_view file, long line) {
  std::fprintf(stderr, "noisebalance internal invariant failed: %.*s at %.*s:%ld\n",
               static_cast<int>(condition.size()), condition.data(),
               static_cast<int>(file.size()), file.data(), line);
  std::abort();
}

}  // namespace nb::detail
