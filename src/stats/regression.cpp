#include "stats/regression.hpp"

#include <cmath>

#include "common/error.hpp"

namespace nb {

namespace {
struct moments {
  double mean_x = 0.0, mean_y = 0.0, sxx = 0.0, syy = 0.0, sxy = 0.0;
};

moments compute_moments(const std::vector<double>& x, const std::vector<double>& y) {
  NB_REQUIRE(x.size() == y.size(), "x and y must have the same length");
  NB_REQUIRE(x.size() >= 2, "need at least two points");
  moments m;
  const auto n = static_cast<double>(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    m.mean_x += x[i];
    m.mean_y += y[i];
  }
  m.mean_x /= n;
  m.mean_y /= n;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - m.mean_x;
    const double dy = y[i] - m.mean_y;
    m.sxx += dx * dx;
    m.syy += dy * dy;
    m.sxy += dx * dy;
  }
  return m;
}
}  // namespace

linear_fit fit_linear(const std::vector<double>& x, const std::vector<double>& y) {
  const moments m = compute_moments(x, y);
  NB_REQUIRE(m.sxx > 0.0, "x values must not all be equal");
  linear_fit fit;
  fit.slope = m.sxy / m.sxx;
  fit.intercept = m.mean_y - fit.slope * m.mean_x;
  if (m.syy == 0.0) {
    fit.r_squared = 1.0;  // y constant: the fit (slope 0) explains everything.
  } else {
    fit.r_squared = (m.sxy * m.sxy) / (m.sxx * m.syy);
  }
  return fit;
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  const moments m = compute_moments(x, y);
  if (m.sxx == 0.0 || m.syy == 0.0) return 0.0;
  return m.sxy / std::sqrt(m.sxx * m.syy);
}

}  // namespace nb
