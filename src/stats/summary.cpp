#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace nb {

void running_stats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void running_stats::merge(const running_stats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb_ = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb_;
  mean_ += delta * nb_ / total;
  m2_ += other.m2_ + delta * delta * na * nb_ / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double running_stats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double running_stats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile_sorted(const std::vector<double>& sorted, double q) {
  NB_REQUIRE(!sorted.empty(), "quantile of empty sample");
  NB_REQUIRE(q >= 0.0 && q <= 1.0, "quantile level must be in [0,1]");
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

summary summarize(std::vector<double> values) {
  summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  running_stats rs;
  for (double v : values) rs.add(v);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = values.front();
  s.max = values.back();
  s.median = quantile_sorted(values, 0.5);
  s.q25 = quantile_sorted(values, 0.25);
  s.q75 = quantile_sorted(values, 0.75);
  return s;
}

}  // namespace nb
