// Integer-valued histograms in the style of the paper's Tables 12.3/12.4,
// which report the empirical gap distribution as "value : percentage of
// runs" lines.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nb {

/// Frequency table over integer outcomes (e.g. the gap of each run).
class int_histogram {
 public:
  void add(std::int64_t value, std::int64_t weight = 1);

  [[nodiscard]] std::int64_t total() const noexcept { return total_; }
  [[nodiscard]] std::int64_t count(std::int64_t value) const;
  /// Fraction of mass at `value`, in [0,1].
  [[nodiscard]] double fraction(std::int64_t value) const;
  [[nodiscard]] bool empty() const noexcept { return total_ == 0; }
  [[nodiscard]] std::int64_t min_value() const;
  [[nodiscard]] std::int64_t max_value() const;
  /// Mass-weighted mean.
  [[nodiscard]] double mean() const;
  /// Smallest value v with cumulative fraction >= q.
  [[nodiscard]] std::int64_t quantile(double q) const;
  /// Value with the largest count (ties: smallest value).
  [[nodiscard]] std::int64_t mode() const;

  /// Sorted (value, count) pairs.
  [[nodiscard]] std::vector<std::pair<std::int64_t, std::int64_t>> entries() const;

  /// Renders the paper-table style "v : p%" lines, one per value, in
  /// ascending value order (percentages rounded to nearest integer).
  [[nodiscard]] std::string to_paper_style() const;

  /// Merges another histogram into this one.
  void merge(const int_histogram& other);

 private:
  std::map<std::int64_t, std::int64_t> counts_;
  std::int64_t total_ = 0;
};

}  // namespace nb
