// Summary statistics used throughout the benches and tests.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace nb {

/// Numerically stable streaming mean/variance (Welford's algorithm).
class running_stats {
 public:
  void add(double x) noexcept;
  void merge(const running_stats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One-shot summary of a sample.
struct summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double q25 = 0.0;
  double q75 = 0.0;
};

/// Computes a full summary of `values` (which is copied and sorted).
[[nodiscard]] summary summarize(std::vector<double> values);

/// Exact quantile with linear interpolation between order statistics.
/// q must be in [0, 1]; `sorted` must be non-empty and ascending.
[[nodiscard]] double quantile_sorted(const std::vector<double>& sorted, double q);

}  // namespace nb
