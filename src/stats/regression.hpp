// Least-squares fitting and correlation, used by the bounds-check benches to
// verify *shapes*: e.g. that Gap grows linearly in g for g >= log n, or like
// log n / log log n in the batched setting.  Fitting gap against a candidate
// predictor and reporting R^2 makes "the shape holds" a quantitative claim.
#pragma once

#include <vector>

namespace nb {

/// Result of an ordinary least squares fit y ~ slope * x + intercept.
struct linear_fit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0, 1] (1 = perfect linear relation).
  double r_squared = 0.0;
};

/// Fits y against x (sizes must match and be >= 2).
[[nodiscard]] linear_fit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

/// Pearson correlation coefficient in [-1, 1].
[[nodiscard]] double pearson(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace nb
