#include "stats/histogram.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace nb {

void int_histogram::add(std::int64_t value, std::int64_t weight) {
  NB_REQUIRE(weight > 0, "histogram weight must be positive");
  counts_[value] += weight;
  total_ += weight;
}

std::int64_t int_histogram::count(std::int64_t value) const {
  auto it = counts_.find(value);
  return it == counts_.end() ? 0 : it->second;
}

double int_histogram::fraction(std::int64_t value) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(value)) / static_cast<double>(total_);
}

std::int64_t int_histogram::min_value() const {
  NB_REQUIRE(!counts_.empty(), "min of empty histogram");
  return counts_.begin()->first;
}

std::int64_t int_histogram::max_value() const {
  NB_REQUIRE(!counts_.empty(), "max of empty histogram");
  return counts_.rbegin()->first;
}

double int_histogram::mean() const {
  NB_REQUIRE(total_ > 0, "mean of empty histogram");
  double acc = 0.0;
  for (const auto& [value, cnt] : counts_) {
    acc += static_cast<double>(value) * static_cast<double>(cnt);
  }
  return acc / static_cast<double>(total_);
}

std::int64_t int_histogram::quantile(double q) const {
  NB_REQUIRE(total_ > 0, "quantile of empty histogram");
  NB_REQUIRE(q >= 0.0 && q <= 1.0, "quantile level must be in [0,1]");
  const auto target = static_cast<std::int64_t>(std::ceil(q * static_cast<double>(total_)));
  std::int64_t cum = 0;
  for (const auto& [value, cnt] : counts_) {
    cum += cnt;
    if (cum >= target) return value;
  }
  return counts_.rbegin()->first;
}

std::int64_t int_histogram::mode() const {
  NB_REQUIRE(total_ > 0, "mode of empty histogram");
  std::int64_t best_value = counts_.begin()->first;
  std::int64_t best_count = 0;
  for (const auto& [value, cnt] : counts_) {
    if (cnt > best_count) {
      best_count = cnt;
      best_value = value;
    }
  }
  return best_value;
}

std::vector<std::pair<std::int64_t, std::int64_t>> int_histogram::entries() const {
  return {counts_.begin(), counts_.end()};
}

std::string int_histogram::to_paper_style() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [value, cnt] : counts_) {
    const double pct = 100.0 * static_cast<double>(cnt) / static_cast<double>(total_);
    if (!first) os << "  ";
    os << value << ":" << static_cast<std::int64_t>(std::lround(pct)) << "%";
    first = false;
  }
  return os.str();
}

void int_histogram::merge(const int_histogram& other) {
  for (const auto& [value, cnt] : other.counts_) {
    counts_[value] += cnt;
    total_ += cnt;
  }
}

}  // namespace nb
