// rng is header-only for inlining; this TU exists to give the module a
// compiled anchor (and to catch ODR/ABI issues early in the build).
#include "rng/rng.hpp"

namespace nb {
namespace {
// Force instantiation of the templated entry points against both generators.
[[maybe_unused]] std::uint64_t instantiate_smoke() {
  xoshiro256pp a(1);
  xoshiro256ss b(2);
  gaussian_sampler gs;
  return bounded(a, 10) ^ bounded(b, 10) ^ static_cast<std::uint64_t>(canonical(a) * 8) ^
         static_cast<std::uint64_t>(gs.next(b));
}
}  // namespace
}  // namespace nb
