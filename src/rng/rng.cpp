// rng is header-only for inlining; this TU exists to give the module a
// compiled anchor (and to catch ODR/ABI issues early in the build).
#include "rng/rng.hpp"

namespace nb {
namespace {
// Force instantiation of the templated entry points against both generators.
[[maybe_unused]] std::uint64_t instantiate_smoke() {
  xoshiro256pp a(1);
  xoshiro256ss b(2);
  gaussian_sampler gs;
  std::uint32_t block[4];
  bounded_block(a, 10, block, 4);
  return bounded(a, 10) ^ bounded(b, 10) ^ static_cast<std::uint64_t>(canonical(a) * 8) ^
         static_cast<std::uint64_t>(gs.next(b)) ^ block[0] ^
         shard_stream_seed(block[1], block[2]);
}
}  // namespace
}  // namespace nb
