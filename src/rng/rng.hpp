// Pseudo-random number generation for the simulator.
//
// The allocation processes draw two bin indices per ball; at paper scale a
// single run is 10^8 steps, so generator speed matters.  We implement (from
// scratch, following the public-domain reference algorithms):
//
//   * splitmix64       -- seeding / stream derivation / cheap mixing
//   * xoshiro256++     -- the workhorse generator (fast, passes BigCrush)
//   * xoshiro256**     -- alternative with the same state layout, used in
//                         tests to cross-check statistical behaviour
//
// plus the distributions the paper needs: unbiased bounded uniforms
// (Lemire's multiply-shift rejection method), canonical doubles, Bernoulli,
// Gaussian (for sigma-Noisy-Load), exponential and Poisson (for the
// One-Choice Poisson-approximation utilities, Lemma A.3).
//
// Everything takes the generator as an explicit argument; there is no
// global RNG state (Core Guidelines I.2).
#pragma once

#include <array>
#include <cmath>
#include <concepts>
#include <cstdint>
#include <limits>

#include "common/error.hpp"

namespace nb {

/// Concept satisfied by our 64-bit generators (and any compatible one).
template <typename G>
concept uniform_random_u64 = requires(G g) {
  { g.next() } -> std::convertible_to<std::uint64_t>;
};

/// splitmix64: tiny, high-quality 64-bit mixer.  Primary use: expanding a
/// single user seed into the 256-bit state of xoshiro and deriving
/// independent per-run seeds.
class splitmix64 {
 public:
  explicit constexpr splitmix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97f4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless mixing of (seed, stream) pairs into fresh seeds.  Used to give
/// every repetition of an experiment an independent, reproducible stream
/// regardless of scheduling order or thread count.
constexpr std::uint64_t derive_seed(std::uint64_t master_seed, std::uint64_t stream) noexcept {
  splitmix64 sm(master_seed ^ (0x9E3779B97f4A7C15ULL * (stream + 1)));
  sm.next();
  return sm.next();
}

/// Substream seed for shard `shard` of one intra-run parallel window.  The
/// caller draws a single `window_token` from the run's master generator
/// (one next() per window), then every shard gets an independent stream
/// that depends only on (token, shard index) -- never on which thread
/// executes the shard -- so shard-parallel results are bit-identical for
/// any thread count.
constexpr std::uint64_t shard_stream_seed(std::uint64_t window_token, std::uint64_t shard) noexcept {
  return derive_seed(window_token, shard);
}

namespace detail {
constexpr std::uint64_t rotl64(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace detail

/// xoshiro256++ (Blackman & Vigna).  256 bits of state, period 2^256-1.
class xoshiro256pp {
 public:
  explicit constexpr xoshiro256pp(std::uint64_t seed) noexcept { reseed(seed); }

  constexpr void reseed(std::uint64_t seed) noexcept {
    splitmix64 sm(seed);
    for (auto& word : s_) word = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = detail::rotl64(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = detail::rotl64(s_[3], 45);
    return result;
  }

  /// Equivalent to 2^128 calls of next(); used to split one seed into
  /// non-overlapping subsequences.
  constexpr void jump() noexcept {
    constexpr std::array<std::uint64_t, 4> kJump = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                                    0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
    for (std::uint64_t word : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (word & (std::uint64_t{1} << b)) {
          for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= s_[static_cast<std::size_t>(i)];
        }
        next();
      }
    }
    s_ = acc;
  }

  /// UniformRandomBitGenerator interface so <random> adapters also work.
  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return std::numeric_limits<std::uint64_t>::max(); }
  result_type operator()() noexcept { return next(); }

  /// Raw 256-bit state, for mid-stream checkpoint/restore: after
  /// set_state(state()) the generator produces the identical continuation
  /// of the stream.  The all-zero state is the one fixed point of the
  /// transition function and is rejected.
  [[nodiscard]] constexpr std::array<std::uint64_t, 4> state() const noexcept { return s_; }
  constexpr void set_state(const std::array<std::uint64_t, 4>& s) {
    NB_REQUIRE(s[0] != 0 || s[1] != 0 || s[2] != 0 || s[3] != 0,
               "xoshiro256 state must not be all zero");
    s_ = s;
  }

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// xoshiro256** (same family, different output scrambler).
class xoshiro256ss {
 public:
  explicit constexpr xoshiro256ss(std::uint64_t seed) noexcept { reseed(seed); }

  constexpr void reseed(std::uint64_t seed) noexcept {
    splitmix64 sm(seed);
    for (auto& word : s_) word = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = detail::rotl64(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = detail::rotl64(s_[3], 45);
    return result;
  }

  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return std::numeric_limits<std::uint64_t>::max(); }
  result_type operator()() noexcept { return next(); }

  /// Mid-stream state access; see xoshiro256pp::state().
  [[nodiscard]] constexpr std::array<std::uint64_t, 4> state() const noexcept { return s_; }
  constexpr void set_state(const std::array<std::uint64_t, 4>& s) {
    NB_REQUIRE(s[0] != 0 || s[1] != 0 || s[2] != 0 || s[3] != 0,
               "xoshiro256 state must not be all zero");
    s_ = s;
  }

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// Unbiased uniform integer in [0, bound) via Lemire's multiply-shift
/// rejection method.  bound must be positive.
template <uniform_random_u64 G>
inline std::uint64_t bounded(G& rng, std::uint64_t bound) {
  NB_ASSERT(bound > 0);
  // 128-bit multiply; the high word is an unbiased sample after rejection.
  std::uint64_t x = rng.next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = rng.next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

/// Block counterpart of bounded(): fills dst[0..count) with i.i.d. unbiased
/// uniforms in [0, bound), hoisting Lemire's rejection threshold -- an
/// integer division -- out of the loop so the amortized per-sample cost is
/// one 128-bit multiply.  Accepts and rejects exactly like bounded(), so it
/// consumes generator output in the same order as `count` successive
/// bounded() calls (enforced by tests).  bound-1 must fit the output type.
template <uniform_random_u64 G, std::unsigned_integral Out>
inline void bounded_block(G& rng, std::uint64_t bound, Out* dst, std::size_t count) {
  NB_ASSERT(bound > 0);
  NB_ASSERT(bound - 1 <= std::numeric_limits<Out>::max());
  const std::uint64_t threshold = (0 - bound) % bound;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t x = rng.next();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
    while (static_cast<std::uint64_t>(m) < threshold) {
      x = rng.next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
    }
    dst[i] = static_cast<Out>(m >> 64);
  }
}

/// Uniform double in [0, 1) with 53 random bits.
template <uniform_random_u64 G>
inline double canonical(G& rng) {
  return static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
}

/// Bernoulli(p) draw; p outside [0,1] is clamped (p<=0 -> false, p>=1 -> true).
template <uniform_random_u64 G>
inline bool bernoulli(G& rng, double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return canonical(rng) < p;
}

/// Fair coin using a single bit of entropy.
template <uniform_random_u64 G>
inline bool coin_flip(G& rng) {
  return (rng.next() >> 63) != 0;
}

/// Standard normal draws via the Box-Muller transform, caching the second
/// value of each pair.  Cheap, branch-light and precise enough for the
/// sigma-Noisy-Load perturbations.
class gaussian_sampler {
 public:
  template <uniform_random_u64 G>
  double next(G& rng) {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    // u in (0,1] to avoid log(0); v in [0,1).
    const double u = 1.0 - canonical(rng);
    const double v = canonical(rng);
    const double r = std::sqrt(-2.0 * std::log(u));
    const double theta = 2.0 * kPi * v;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  void reset() noexcept { has_cached_ = false; }

  /// Box-Muller produces values in pairs, so "how far into the current
  /// pair" is real mid-stream state: a checkpoint must carry the cached
  /// second value or the restored stream diverges after one draw.
  [[nodiscard]] bool has_cached() const noexcept { return has_cached_; }
  [[nodiscard]] double cached_value() const noexcept { return cached_; }
  void set_cache(bool has_cached, double value) noexcept {
    has_cached_ = has_cached;
    cached_ = value;
  }

 private:
  static constexpr double kPi = 3.14159265358979323846;
  double cached_ = 0.0;
  bool has_cached_ = false;
};

/// Exponential(rate) draw.
template <uniform_random_u64 G>
inline double exponential(G& rng, double rate) {
  NB_REQUIRE(rate > 0.0, "exponential rate must be positive");
  return -std::log(1.0 - canonical(rng)) / rate;
}

/// Poisson(mean) draw.  Knuth inversion for small means; for large means the
/// additivity Poisson(a+b) = Poisson(a) + Poisson(b) splits the mean into
/// chunks of <= 16, which keeps inversion numerically safe (e^-16 ~ 1e-7)
/// and exact in distribution.  Intended for analysis utilities, not the
/// per-ball hot loop.
template <uniform_random_u64 G>
inline std::int64_t poisson(G& rng, double mean) {
  NB_REQUIRE(mean >= 0.0, "poisson mean must be non-negative");
  std::int64_t total = 0;
  while (mean > 16.0) {
    // Draw one chunk of mean exactly 16.
    const double l = std::exp(-16.0);
    std::int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= canonical(rng);
    } while (p > l);
    total += k - 1;
    mean -= 16.0;
  }
  if (mean > 0.0) {
    const double l = std::exp(-mean);
    std::int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= canonical(rng);
    } while (p > l);
    total += k - 1;
  }
  return total;
}

}  // namespace nb
