// record_trace is a header template; this TU anchors the module and forces
// an instantiation against the type-erased process for ABI hygiene.
#include "sim/recorder.hpp"

#include "core/basic_processes.hpp"

namespace nb {
namespace {
[[maybe_unused]] trace instantiate_smoke() {
  two_choice p(8);
  any_process erased(p);
  rng_t rng(7);
  trace_options opt;
  opt.sample_interval = 4;
  return record_trace(erased, 8, rng, opt);
}
}  // namespace
}  // namespace nb
