// Simulation drivers: run a process for m balls, repeat with independent
// seeds (in parallel), and collect the gap statistics the paper reports.
//
// Determinism: run r of an experiment with master seed s always uses RNG
// seed derive_seed(s, r), so results are bit-identical for any thread
// count.  All drivers move balls through step_many (the bulk allocation
// path), so even the any_process overloads pay one indirect call per chunk
// rather than one per ball, with the process's fused loop inlined behind
// it.
#pragma once

#include <cmath>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "core/process.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"
#include "util/hugepage.hpp"
#include "util/thread_pool.hpp"

namespace nb {

/// Outcome of one simulated run.
struct run_result {
  double gap = 0.0;          ///< Gap(m) = max load - m/n
  double underload_gap = 0.0;///< m/n - min load
  load_t max_load = 0;
  load_t min_load = 0;
  step_count balls = 0;
  std::uint64_t seed = 0;
};

/// THE engine-selection struct, shared by every driver that moves balls
/// (run_repeated_with, the campaign orchestrator, the checkpointed-run
/// driver, the churn driver).  threads_per_run > 0 selects the shard
/// engine, else use_kernel the serial kernel engine, else the plain fused
/// loop.  shards / use_kernel / lanes are part of the sampling contract;
/// threads_per_run and isa are execution-only and never affect results.
///
/// repeat_options and campaign_options still expose these as flat fields
/// (deprecated; kept so existing call sites and journals keep working) and
/// convert via their engine() / set_engine() accessors.
struct engine_config {
  std::size_t threads_per_run = 0;
  std::size_t shards = 16;
  bool use_kernel = false;
  std::size_t lanes = 8;
  kernel_isa isa = kernel_isa::auto_detect;
};

/// Deprecated name for engine_config (pre-churn API).
using engine_options = engine_config;

/// One run's engine: owns the optional shard/kernel engine the options
/// select and presents a single step() entry point, so drivers stop
/// duplicating the three-way dispatch.  Create one per run (the engines
/// amortize their scratch across all chunks of that run).
class run_engine {
 public:
  explicit run_engine(const engine_config& opt) {
    if (opt.threads_per_run > 0) {
      shard_.emplace(shard_options{.threads = opt.threads_per_run,
                                   .shards = opt.shards,
                                   .lanes = opt.lanes,
                                   .isa = opt.isa});
      fingerprint_ = "shard[shards=" + std::to_string(opt.shards) +
                     ",lanes=" + std::to_string(opt.lanes) + "]";
    } else if (opt.use_kernel) {
      kernel_.emplace(kernel_options{.lanes = opt.lanes, .isa = opt.isa});
      fingerprint_ = "kernel[lanes=" + std::to_string(opt.lanes) + "]";
    } else {
      fingerprint_ = "serial";
    }
    churn_fingerprint_ = fingerprint_;
    if (shard_.has_value() || kernel_.has_value()) {
      // Engine-selected runs serve departure blocks through the batched
      // path, an additional sampling-contract parameter the insertion
      // fingerprint does not carry (insertion-only journals stay
      // restorable across this change).
      churn_fingerprint_.insert(churn_fingerprint_.size() - 1, ",depart=batch");
    }
  }

  /// Allocates `count` balls through the selected engine, drawing from
  /// `rng` exactly like the corresponding step_many* free function.
  template <single_steppable P>
  void step(P& process, rng_t& rng, step_count count) {
    if (shard_.has_value()) {
      step_many_parallel(process, rng, count, *shard_);
    } else if (kernel_.has_value()) {
      step_many_kernel(process, rng, count, *kernel_);
    } else {
      nb::step_many(process, rng, count);
    }
  }

  /// Serves `count` departure events through the selected engine: the
  /// SIMD departure kernel (shard-parallel or serial) for qualifying
  /// drain/random blocks, the bulk lease pop, or the serial per-event
  /// reference loop -- exactly the depart_many* free-function dispatch.
  template <single_steppable P>
    requires departable_process<P>
  void depart(P& process, rng_t& rng, step_count count) {
    if (shard_.has_value()) {
      depart_many_parallel(process, rng, count, *shard_);
    } else if (kernel_.has_value()) {
      depart_many_kernel(process, rng, count, *kernel_);
    } else {
      nb::depart_many(process, rng, count);
    }
  }

  /// The engine's sampling-contract identity: mode plus the parameters
  /// that influence the drawn randomness (shards, lanes) -- and nothing
  /// execution-only (threads, ISA backend).  A checkpoint written under
  /// one fingerprint may only be restored under the same one; resuming
  /// with a different thread count or ISA is legal by construction.
  [[nodiscard]] const std::string& fingerprint() const noexcept { return fingerprint_; }

  /// The sampling-contract identity of runs that also serve departures
  /// through this engine (churn runs): equal to fingerprint() for the
  /// serial engine, and tagged with the batched-departure contract for
  /// the shard/kernel engines (e.g. "kernel[lanes=8,depart=batch]") --
  /// a churn checkpoint written under the batched path must not resume
  /// under a pre-batch journal's engine, and vice versa.  Insertion-only
  /// checkpoints keep using fingerprint(), which is unchanged.
  [[nodiscard]] const std::string& churn_fingerprint() const noexcept {
    return churn_fingerprint_;
  }

 private:
  std::optional<shard_engine> shard_;
  std::optional<kernel_engine> kernel_;
  std::string fingerprint_;
  std::string churn_fingerprint_;
};

/// Options for repeated runs.
struct repeat_options {
  std::size_t runs = 10;
  std::uint64_t master_seed = 1;
  /// 0 = one thread per hardware core.
  std::size_t threads = 0;
  // -- Engine selection.  DEPRECATED as individual fields: these five are
  // the flat spelling of engine_config, kept so existing call sites and
  // journals keep working.  New code should read/write them through
  // engine() / set_engine().
  /// > 0 routes every run through the intra-run shard engine with this
  /// many workers per run (see process.hpp): stale-snapshot windows (e.g.
  /// b-Batch batches) run shard-parallel inside each run.  Results depend
  /// on `shards`, never on this thread count.  Intended for few, huge runs
  /// -- combined with `threads` > 1 the products of the two multiplies.
  /// Processes without parallel windows run serially regardless; the
  /// engine emits a one-time warn_once diagnostic when that happens.
  std::size_t threads_per_run = 0;
  /// Fixed shard count for the intra-run engine (sampling contract).
  std::size_t shards = 16;
  /// threads_per_run == 0 only: when true, serial runs move through the
  /// lane-interleaved allocation kernel (kernel_engine) instead of the
  /// plain fused loop -- the single-threaded SIMD path.  Results depend
  /// on `lanes`, never on `isa`.
  bool use_kernel = false;
  /// Kernel lanes for both engines (sampling contract, like `shards`).
  std::size_t lanes = 8;
  /// Kernel ISA backend for both engines (execution only; bit-identical
  /// across backends).
  kernel_isa isa = kernel_isa::auto_detect;
  /// Generalized allocation model applied to every run's process (specs
  /// per make_weighting / make_sampler).  The defaults leave the factory's
  /// processes untouched, so historical call sites are bit-identical.
  /// Both are part of the sampling contract.
  std::string weighting = "unit";
  std::string sampler = "uniform";
  /// Request transparent-huge-page backing for the load array and compact
  /// snapshot of every run (see util/hugepage.hpp).  Execution-only and
  /// fail-soft: results never depend on it, and a refused madvise quietly
  /// degrades to normal pages.  Also reachable via NB_HUGEPAGES=1.
  bool hugepages = false;

  /// The engine-selection slice of these options as the one shared struct
  /// (see engine_config).
  [[nodiscard]] engine_config engine() const noexcept {
    return engine_config{.threads_per_run = threads_per_run,
                         .shards = shards,
                         .use_kernel = use_kernel,
                         .lanes = lanes,
                         .isa = isa};
  }
  /// Writes an engine_config back into the flat (deprecated) fields.
  void set_engine(const engine_config& e) noexcept {
    threads_per_run = e.threads_per_run;
    shards = e.shards;
    use_kernel = e.use_kernel;
    lanes = e.lanes;
    isa = e.isa;
  }
};

/// Aggregate over repetitions of one configuration.
struct repeat_result {
  std::vector<run_result> runs;
  /// Histogram of gaps rounded to the nearest integer (exact when n | m,
  /// which holds for every paper experiment).
  int_histogram gap_histogram;

  [[nodiscard]] summary gap_summary() const;
  [[nodiscard]] double mean_gap() const;
};

namespace detail {
template <typename P>
run_result collect_run_result(const P& process) {
  run_result r;
  const load_state& s = process.state();
  r.gap = s.gap();
  r.underload_gap = s.underload_gap();
  r.max_load = s.max_load();
  r.min_load = s.min_load();
  r.balls = s.balls();
  return r;
}

template <typename P>
void check_run_ceiling(const P& process, step_count m) {
  NB_REQUIRE(m >= 0, "ball count must be non-negative");
  NB_REQUIRE(process.state().balls() + m <= max_run_balls,
             "run would overflow the per-bin load representation (max_run_balls)");
}
}  // namespace detail

/// Runs `process` (from its current state) for `m` additional balls via
/// the bulk path (one step_many call; bit-identical to the per-ball loop).
template <allocation_process P>
run_result simulate(P& process, step_count m, rng_t& rng) {
  detail::check_run_ceiling(process, m);
  step_many(process, rng, m);
  return detail::collect_run_result(process);
}

/// Intra-run parallel variant: moves the m balls through `engine`, so
/// stale-snapshot windows run shard-parallel (serial fused loop for
/// everything else).  Same observables as simulate(); results are
/// bit-identical for any engine thread count but differ bitwise (not
/// distributionally) from the serial path's stream usage.
template <allocation_process P>
run_result simulate_parallel(P& process, step_count m, rng_t& rng, shard_engine& engine) {
  detail::check_run_ceiling(process, m);
  step_many_parallel(process, rng, m, engine);
  return detail::collect_run_result(process);
}

/// Serial-kernel variant: moves the m balls through the lane-interleaved
/// allocation kernel wherever the process exposes min-select frozen
/// windows (serial fused loop elsewhere).  Same observables as simulate();
/// results are bit-identical across ISA backends for a fixed lane count.
template <allocation_process P>
run_result simulate_kernel(P& process, step_count m, rng_t& rng, kernel_engine& engine) {
  detail::check_run_ceiling(process, m);
  step_many_kernel(process, rng, m, engine);
  return detail::collect_run_result(process);
}

/// Options-routed variant: moves the m balls through whichever engine the
/// options selected (run_engine).  This is what run_repeated_with and the
/// campaign cells use; the three simulate* templates above stay for
/// callers that manage an engine themselves.
template <allocation_process P>
run_result simulate_with(P& process, step_count m, rng_t& rng, run_engine& engine) {
  detail::check_run_ceiling(process, m);
  engine.step(process, rng, m);
  return detail::collect_run_result(process);
}

/// Runs `factory()` for m balls, `opt.runs` times with derived seeds, in
/// parallel, and aggregates.  The factory must yield a fresh process (same
/// configuration) on every call and must be safe to call concurrently.
template <typename Factory>
repeat_result run_repeated_with(Factory&& factory, step_count m, const repeat_options& opt) {
  NB_REQUIRE(opt.runs >= 1, "need at least one run");
  // Scoped huge-page request: the knob is process-global (the allocation
  // sites in load_state / compact_snapshot consult it), so raise it for
  // the duration of this call and restore on every exit path.  The knob
  // only adds an madvise; it never lowers an environment-enabled setting.
  struct hugepage_scope {
    bool prev = hugepages_enabled();
    explicit hugepage_scope(bool want) {
      if (want) set_hugepages_enabled(true);
    }
    ~hugepage_scope() { set_hugepages_enabled(prev); }
  } hp_scope(opt.hugepages);
  // Build the shared allocation model ONCE on the caller's thread (alias
  // tables are O(n) to construct -- zipf alone is one pow per bin) and
  // copy it into every run; this also validates the specs before any pool
  // task starts.  Applied after construction so any factory-provided model
  // loses to an explicit request; the default spec never touches the
  // process.
  const bool custom_model = opt.weighting != "unit" || opt.sampler != "uniform";
  alloc_model shared_model;
  if (custom_model) {
    auto probe = factory();
    using P = std::remove_cvref_t<decltype(probe)>;
    if constexpr (modeled_process<P> || std::is_same_v<P, any_process>) {
      shared_model = make_model(opt.weighting, opt.sampler, probe.state().n());
      probe.set_model(shared_model);  // validates sampler bins against n
    } else {
      throw contract_error("process '" + probe.name() +
                           "' does not support weighted/non-uniform allocation");
    }
  }
  std::vector<run_result> results(opt.runs);
  // Weighted runs can fail mid-flight (guarded per-bin/total overflow);
  // pool tasks are noexcept by contract, so capture the first error and
  // rethrow it here instead of terminating.
  std::mutex error_mutex;
  std::exception_ptr first_error;
  parallel_for(opt.runs, opt.threads, [&](std::size_t r) {
    {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (first_error) return;
    }
    try {
      auto process = factory();
      if (custom_model) {
        using P = std::remove_cvref_t<decltype(process)>;
        if constexpr (modeled_process<P> || std::is_same_v<P, any_process>) {
          process.set_model(shared_model);
        }
      }
      rng_t rng(derive_seed(opt.master_seed, r));
      run_engine engine(opt.engine());
      results[r] = simulate_with(process, m, rng, engine);
      results[r].seed = derive_seed(opt.master_seed, r);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  });
  if (first_error) std::rethrow_exception(first_error);
  repeat_result agg;
  agg.runs = std::move(results);
  for (const auto& r : agg.runs) {
    agg.gap_histogram.add(static_cast<std::int64_t>(std::llround(r.gap)));
  }
  return agg;
}

/// Dynamic-process convenience overload.
repeat_result run_repeated(const std::function<any_process()>& factory, step_count m,
                           const repeat_options& opt);

}  // namespace nb
