// Simulation drivers: run a process for m balls, repeat with independent
// seeds (in parallel), and collect the gap statistics the paper reports.
//
// Determinism: run r of an experiment with master seed s always uses RNG
// seed derive_seed(s, r), so results are bit-identical for any thread
// count.  All drivers move balls through step_many (the bulk allocation
// path), so even the any_process overloads pay one indirect call per chunk
// rather than one per ball, with the process's fused loop inlined behind
// it.
#pragma once

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "core/process.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"
#include "util/thread_pool.hpp"

namespace nb {

/// Outcome of one simulated run.
struct run_result {
  double gap = 0.0;          ///< Gap(m) = max load - m/n
  double underload_gap = 0.0;///< m/n - min load
  load_t max_load = 0;
  load_t min_load = 0;
  step_count balls = 0;
  std::uint64_t seed = 0;
};

/// Options for repeated runs.
struct repeat_options {
  std::size_t runs = 10;
  std::uint64_t master_seed = 1;
  /// 0 = one thread per hardware core.
  std::size_t threads = 0;
};

/// Aggregate over repetitions of one configuration.
struct repeat_result {
  std::vector<run_result> runs;
  /// Histogram of gaps rounded to the nearest integer (exact when n | m,
  /// which holds for every paper experiment).
  int_histogram gap_histogram;

  [[nodiscard]] summary gap_summary() const;
  [[nodiscard]] double mean_gap() const;
};

/// Runs `process` (from its current state) for `m` additional balls via
/// the bulk path (one step_many call; bit-identical to the per-ball loop).
template <allocation_process P>
run_result simulate(P& process, step_count m, rng_t& rng) {
  NB_REQUIRE(m >= 0, "ball count must be non-negative");
  NB_REQUIRE(process.state().balls() + m <= step_count{2000000000},
             "run would overflow 32-bit per-bin loads");
  step_many(process, rng, m);
  run_result r;
  const load_state& s = process.state();
  r.gap = s.gap();
  r.underload_gap = s.underload_gap();
  r.max_load = s.max_load();
  r.min_load = s.min_load();
  r.balls = s.balls();
  return r;
}

/// Runs `factory()` for m balls, `opt.runs` times with derived seeds, in
/// parallel, and aggregates.  The factory must yield a fresh process (same
/// configuration) on every call and must be safe to call concurrently.
template <typename Factory>
repeat_result run_repeated_with(Factory&& factory, step_count m, const repeat_options& opt) {
  NB_REQUIRE(opt.runs >= 1, "need at least one run");
  std::vector<run_result> results(opt.runs);
  parallel_for(opt.runs, opt.threads, [&](std::size_t r) {
    auto process = factory();
    rng_t rng(derive_seed(opt.master_seed, r));
    results[r] = simulate(process, m, rng);
    results[r].seed = derive_seed(opt.master_seed, r);
  });
  repeat_result agg;
  agg.runs = std::move(results);
  for (const auto& r : agg.runs) {
    agg.gap_histogram.add(static_cast<std::int64_t>(std::llround(r.gap)));
  }
  return agg;
}

/// Dynamic-process convenience overload.
repeat_result run_repeated(const std::function<any_process()>& factory, step_count m,
                           const repeat_options& opt);

}  // namespace nb
