// The steady-state churn driver: warm-up-to-occupancy, then churn.
//
// A churn run has two phases.  The warm-up allocates `occupancy` balls
// from an empty state through the selected engine (an ordinary insertion
// run).  The churn phase then serves `events` arrival/departure pairs in
// fixed-size cycles: each cycle moves `cycle` arrivals through the engine
// followed by a block of `cycle` departures through the SAME engine --
// qualifying drain/random blocks run the SIMD departure kernel
// (core/kernel/kernel_depart.hpp), lease blocks pop the ring in bulk,
// and everything else (including every serial-engine run) takes the
// per-event reference loop on the master stream, so fused loops, shard
// windows and both kernels keep their speed under churn.  At every cycle
// boundary the resident ball count is back at `occupancy` -- that is
// where telemetry samples and checkpoint marks land.
//
// Sampling contract: `cycle` is part of it (it decides how arrivals and
// departures interleave in the master stream), exactly like the engines'
// shard/lane counts and the batched-departure path itself
// (run_engine::churn_fingerprint); threads and the ISA backend remain
// execution-only.  The gap trajectory is therefore bit-identical for any
// thread count, across ISA backends, and -- for processes without
// stale-snapshot windows under the serial per-event departure law, where
// every engine takes the identical serial fused loop -- across the
// serial/shard/kernel engines too (tests/test_churn.cpp).
//
// Checkpoint/resume: progress is counted in events, not resident balls
// (departures make balls() non-monotone), as warm-up balls first and
// occupancy + 2 * pairs after; marks land only at cycle boundaries, so a
// resumed run re-enters the exact engine-call sequence the uninterrupted
// run would have issued from that boundary -- bit-identity by
// construction, with the lease ring restored in flight.
#pragma once

#include <functional>
#include <vector>

#include "sim/runner.hpp"

namespace nb {

/// Steady-state run description.  `occupancy` and `events` are the load
/// and length; `cycle` is the arrival/departure interleaving grain
/// (sampling contract, see above).
struct churn_options {
  /// Resident balls after warm-up (and at every cycle boundary).
  step_count occupancy = 0;
  /// Arrival/departure pairs to serve after warm-up.
  step_count events = 0;
  /// Pairs per cycle: `cycle` engine arrivals, then `cycle` serial
  /// departures.  Part of the sampling contract.
  step_count cycle = 8192;
  /// > 0: record a gap/occupancy telemetry point at the first cycle
  /// boundary at or after each multiple of this many pairs (the final
  /// boundary is always recorded).  0 = final point only.
  step_count telemetry_every = 0;
};

/// One occupancy-telemetry sample, taken at a cycle boundary.
struct churn_point {
  step_count events_done = 0;  ///< pairs served when the sample was taken
  double gap = 0.0;
  double underload_gap = 0.0;
  load_t max_load = 0;
  step_count resident = 0;  ///< balls in the system (== occupancy here)
};

/// Outcome of a churn run: the final-state observables plus the recorded
/// gap trajectory.
struct churn_result {
  run_result final_state;
  std::vector<churn_point> trajectory;
  step_count occupancy = 0;
  step_count events = 0;
};

/// Runs warm-up + churn on `process` (which must be freshly reset and
/// carry a model with a non-none departure channel) through `engine`.
[[nodiscard]] churn_result run_churn(any_process& process, const churn_options& opt, rng_t& rng,
                                     run_engine& engine);

/// Preemptible variant: calls `at_mark(progress)` at window-aligned
/// warm-up boundaries and churn cycle boundaries, about every
/// `checkpoint_every` progress units (progress = balls during warm-up,
/// occupancy + 2 * pairs during churn; 0 = no marks).  `progress_done`
/// resumes from a checkpoint previously captured at one of these marks
/// (restore the process/RNG first -- see restore_checkpoint_identity);
/// the resumed run is bit-identical to an uninterrupted one.
[[nodiscard]] churn_result run_churn_checkpointed(
    any_process& process, const churn_options& opt, rng_t& rng, run_engine& engine,
    step_count checkpoint_every, const std::function<void(step_count)>& at_mark,
    step_count progress_done = 0);

/// Total progress units of a churn run (the checkpointed driver's final
/// counter): occupancy warm-up balls + 2 per churn pair.
[[nodiscard]] step_count churn_total_progress(const churn_options& opt);

}  // namespace nb
