#include "sim/sweep.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace nb {

namespace {
/// Compact parameter rendering for sweep-point labels: integral values
/// print without a decimal point ("8"), everything else as %g ("0.5").
std::string param_label(double p) {
  char buf[32];
  if (p == std::floor(p) && std::abs(p) < 1e15) {
    std::snprintf(buf, sizeof buf, "%" PRId64, static_cast<std::int64_t>(p));
  } else {
    std::snprintf(buf, sizeof buf, "%g", p);
  }
  return buf;
}
}  // namespace

std::vector<std::int64_t> arithmetic_range(std::int64_t lo, std::int64_t hi, std::int64_t step) {
  NB_REQUIRE(step >= 1, "step must be positive");
  NB_REQUIRE(lo <= hi, "range must be non-empty");
  std::vector<std::int64_t> out;
  for (std::int64_t v = lo; v <= hi; v += step) out.push_back(v);
  return out;
}

std::vector<std::int64_t> geometric_range(std::int64_t base, std::int64_t hi, std::int64_t factor) {
  NB_REQUIRE(base >= 1 && factor >= 2, "need base >= 1 and factor >= 2");
  std::vector<std::int64_t> out;
  for (std::int64_t v = base; v <= hi;) {
    out.push_back(v);
    // v * factor may wrap std::int64_t before the loop condition sees it
    // (signed overflow is UB); the division guard terminates first.
    if (v > hi / factor) break;
    v *= factor;
  }
  return out;
}

step_count checkpoint_chunk(step_count balls_so_far, step_count remaining, step_count interval) {
  NB_REQUIRE(balls_so_far >= 0 && remaining >= 0, "ball counts must be non-negative");
  NB_REQUIRE(interval >= 1, "checkpoint interval must be positive");
  const step_count to_next = interval - balls_so_far % interval;
  return to_next < remaining ? to_next : remaining;
}

std::vector<std::int64_t> one_five_decades(std::int64_t lo, std::int64_t hi) {
  NB_REQUIRE(lo >= 1 && lo <= hi, "need 1 <= lo <= hi");
  std::vector<std::int64_t> out;
  std::int64_t decade = 1;
  while (decade <= hi) {
    for (std::int64_t mant : {std::int64_t{1}, std::int64_t{5}}) {
      const std::int64_t v = mant * decade;
      if (v >= lo && v <= hi) out.push_back(v);
    }
    decade *= 10;
  }
  return out;
}

std::vector<sweep_point> expand_grid(const sweep_grid& grid) {
  NB_REQUIRE(!grid.kinds.empty(), "sweep grid needs at least one process kind");
  NB_REQUIRE(!grid.bins.empty(), "sweep grid needs at least one bin count");
  NB_REQUIRE(!grid.params.empty(), "sweep grid needs at least one parameter value");
  NB_REQUIRE(!grid.weightings.empty(), "sweep grid needs at least one weighting spec");
  NB_REQUIRE(!grid.samplers.empty(), "sweep grid needs at least one sampler spec");
  NB_REQUIRE(!grid.departures.empty(), "sweep grid needs at least one departure spec");
  NB_REQUIRE(grid.m_override >= 0, "m_override must be non-negative");
  NB_REQUIRE(grid.m_override > 0 || grid.m_multiplier >= 1,
             "need m_override > 0 or m_multiplier >= 1");
  std::vector<sweep_point> out;
  out.reserve(grid.bins.size() * grid.kinds.size() * grid.params.size() *
              grid.weightings.size() * grid.samplers.size() * grid.departures.size());
  for (const bin_count n : grid.bins) {
    NB_REQUIRE(n >= 1, "sweep grid bin counts must be positive");
    const step_count m =
        grid.m_override > 0 ? grid.m_override : grid.m_multiplier * static_cast<step_count>(n);
    for (const auto& kind : grid.kinds) {
      for (const double p : grid.params) {
        for (const auto& weighting : grid.weightings) {
          for (const auto& sampler : grid.samplers) {
            for (const auto& departure : grid.departures) {
              sweep_point point;
              point.process = process_spec{kind, n, p, weighting, sampler, departure};
              point.m = m;
              point.label = kind + "/" + param_label(p) + "@n=" + std::to_string(n);
              // Model axes only mark non-default legs, keeping historical
              // labels (and everything keyed on them) byte-identical.
              if (weighting != "unit") point.label += "|w=" + weighting;
              if (sampler != "uniform") point.label += "|s=" + sampler;
              if (departure != "none") point.label += "|d=" + departure;
              out.push_back(std::move(point));
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace nb
