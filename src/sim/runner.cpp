#include "sim/runner.hpp"

#include <cmath>

namespace nb {

summary repeat_result::gap_summary() const {
  std::vector<double> gaps;
  gaps.reserve(runs.size());
  for (const auto& r : runs) gaps.push_back(r.gap);
  return summarize(std::move(gaps));
}

double repeat_result::mean_gap() const {
  if (runs.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& r : runs) acc += r.gap;
  return acc / static_cast<double>(runs.size());
}

repeat_result run_repeated(const std::function<any_process()>& factory, step_count m,
                           const repeat_options& opt) {
  NB_REQUIRE(factory != nullptr, "process factory must not be empty");
  return run_repeated_with(factory, m, opt);
}

}  // namespace nb
