#include "sim/churn.hpp"

#include "exp/checkpoint.hpp"

namespace nb {

namespace {

void validate(const churn_options& opt) {
  NB_REQUIRE(opt.occupancy >= 1 && opt.occupancy <= max_run_balls,
             "churn occupancy must be in [1, max_run_balls]");
  NB_REQUIRE(opt.events >= 0, "churn event count must be non-negative");
  NB_REQUIRE(opt.cycle >= 1, "churn cycle must be positive");
  NB_REQUIRE(opt.telemetry_every >= 0, "telemetry cadence must be non-negative");
  // Progress (the checkpoint counter) is occupancy + 2 per pair and must
  // stay within the range the checkpoint container accepts.
  NB_REQUIRE(opt.events <= (max_run_balls - opt.occupancy) / 2,
             "churn run too long: occupancy + 2 * events must fit max_run_balls");
}

}  // namespace

step_count churn_total_progress(const churn_options& opt) {
  validate(opt);
  return opt.occupancy + 2 * opt.events;
}

churn_result run_churn(any_process& process, const churn_options& opt, rng_t& rng,
                       run_engine& engine) {
  return run_churn_checkpointed(process, opt, rng, engine, 0, nullptr, 0);
}

churn_result run_churn_checkpointed(any_process& process, const churn_options& opt, rng_t& rng,
                                    run_engine& engine, step_count checkpoint_every,
                                    const std::function<void(step_count)>& at_mark,
                                    step_count progress_done) {
  validate(opt);
  NB_REQUIRE(checkpoint_every >= 0, "checkpoint cadence must be non-negative");
  NB_REQUIRE(progress_done >= 0 && progress_done <= churn_total_progress(opt),
             "resume progress outside this churn run's range");

  churn_result out;
  out.occupancy = opt.occupancy;
  out.events = opt.events;

  step_count pairs_done = 0;
  if (progress_done <= opt.occupancy) {
    // Fresh run or a mid-warm-up resume: the warm-up is an ordinary
    // insertion run, so the insertion driver supplies window-aligned
    // chunking, marks and crash ticks (progress == resident balls here).
    NB_REQUIRE(process.state().balls() == progress_done,
               "resumed process disagrees with the checkpoint's warm-up progress");
    (void)run_checkpointed(process, opt.occupancy, rng, engine, checkpoint_every, at_mark);
  } else {
    // Mid-churn resume: marks land only at cycle boundaries, where the
    // system is back at full occupancy and a whole number of pairs done.
    const step_count churned = progress_done - opt.occupancy;
    NB_REQUIRE(churned % 2 == 0, "churn resume progress is not a whole number of pairs");
    pairs_done = churned / 2;
    NB_REQUIRE(pairs_done % opt.cycle == 0 || pairs_done == opt.events,
               "churn resume progress does not sit on a cycle boundary");
    NB_REQUIRE(process.state().balls() == opt.occupancy,
               "resumed process is not at full occupancy");
  }

  // Churn cycles.  Boundaries sit at absolute multiples of `cycle` (plus
  // the final partial cycle), so a fresh run and any resumed run issue
  // the same engine-call sequence -- bit-identity by construction.
  const step_count every = checkpoint_every;
  step_count progress = opt.occupancy + 2 * pairs_done;
  step_count next_mark = every > 0 ? (progress / every + 1) * every : 0;
  step_count next_tel =
      opt.telemetry_every > 0 ? (pairs_done / opt.telemetry_every + 1) * opt.telemetry_every : 0;
  const auto sample = [&] {
    churn_point point;
    point.events_done = pairs_done;
    const load_state& s = process.state();
    point.gap = s.gap();
    point.underload_gap = s.underload_gap();
    point.max_load = s.max_load();
    point.resident = s.balls();
    out.trajectory.push_back(point);
  };
  while (pairs_done < opt.events) {
    const step_count remaining = opt.events - pairs_done;
    const step_count k = opt.cycle < remaining ? opt.cycle : remaining;
    engine.step(process, rng, k);
    engine.depart(process, rng, k);
    pairs_done += k;
    progress += 2 * k;
    crash_test_tick(2 * k);
    if (opt.telemetry_every > 0 && pairs_done >= next_tel && pairs_done < opt.events) {
      sample();
      next_tel = (pairs_done / opt.telemetry_every + 1) * opt.telemetry_every;
    }
    if (every > 0 && progress >= next_mark) {
      // No mark at the finish line, mirroring run_checkpointed: the
      // completed result supersedes the checkpoint.
      if (pairs_done < opt.events && at_mark) at_mark(progress);
      next_mark = (progress / every + 1) * every;
    }
  }
  sample();  // the final boundary is always recorded
  out.final_state = detail::collect_run_result(process);
  return out;
}

}  // namespace nb
