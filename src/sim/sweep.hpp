// Parameter sweeps: the value-range helpers shared by the bench binaries
// plus the declarative cross-run grid the experiment orchestrator
// (src/exp/campaign.hpp) expands into campaign configurations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/process_registry.hpp"

namespace nb {

/// {1, 2, ..., hi} (the paper's Fig. 12.1 x-axis when hi = 20).
[[nodiscard]] std::vector<std::int64_t> arithmetic_range(std::int64_t lo, std::int64_t hi,
                                                         std::int64_t step = 1);

/// Values {base, base*factor, base*factor^2, ...} up to and including hi.
[[nodiscard]] std::vector<std::int64_t> geometric_range(std::int64_t base, std::int64_t hi,
                                                        std::int64_t factor);

/// The paper's Fig. 12.2 batch-size axis: {5, 10, 50, 100, 500, ..., hi}.
[[nodiscard]] std::vector<std::int64_t> one_five_decades(std::int64_t lo, std::int64_t hi);

/// Bulk-execution planning for an observed run: the number of balls to
/// move in one step_many call so that the next multiple of `interval`
/// (the next observation checkpoint) lands exactly on the chunk boundary,
/// capped by the `remaining` balls of the run.  Drivers loop this with
/// O(1) memory: step_many(chunk), observe, repeat until remaining is 0.
/// Returns 0 iff remaining is 0.
[[nodiscard]] step_count checkpoint_chunk(step_count balls_so_far, step_count remaining,
                                          step_count interval);

// ---------------------------------------------------------------------------
// Declarative sweep grids.

/// A cross-run experiment grid: every combination of process kind, noise
/// parameter and bin count becomes one sweep point, with m either fixed
/// (`m_override`) or scaled with n (`m_multiplier`, the paper's m = 1000n
/// convention).  Parameter meaning follows process_spec (g / sigma / b /
/// tau / beta / d depending on the kind); kinds that take no parameter
/// ignore it, so the default single 0 works for them.
struct sweep_grid {
  std::vector<std::string> kinds;
  std::vector<double> params = {0.0};
  std::vector<bin_count> bins;
  /// m = m_multiplier * n when m_override == 0.
  std::int64_t m_multiplier = 1000;
  /// > 0: the same m for every point, regardless of n.
  step_count m_override = 0;
  /// Generalized-model axes (specs per make_weighting / make_sampler in
  /// core/alloc_model.hpp).  The defaults add no new grid dimension and
  /// leave every expanded point's spec/label exactly as before.
  std::vector<std::string> weightings = {"unit"};
  std::vector<std::string> samplers = {"uniform"};
  /// Departure-channel axis (specs per make_departures): "none" keeps the
  /// historical insertion-only points; anything else marks the point for
  /// the steady-state churn driver.
  std::vector<std::string> departures = {"none"};
};

/// One expanded point of a sweep_grid.
struct sweep_point {
  std::string label;  ///< "kind/param@n=..." -- stable key for outputs.
  process_spec process;
  step_count m = 0;
};

/// Expands `grid` in a fixed, documented order: bins outermost, then
/// kinds, then params, then weightings, then samplers, then departures
/// (the model axes innermost, so default single-element axes reproduce
/// the historical order exactly) -- the points for one n are a contiguous
/// block of size kinds.size() * params.size() * weightings.size() *
/// samplers.size() * departures.size(), laid out kind-major.  Drivers
/// rely on this order to index results.
[[nodiscard]] std::vector<sweep_point> expand_grid(const sweep_grid& grid);

}  // namespace nb
