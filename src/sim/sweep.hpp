// Parameter-sweep helpers shared by the bench binaries.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace nb {

/// {1, 2, ..., hi} (the paper's Fig. 12.1 x-axis when hi = 20).
[[nodiscard]] std::vector<std::int64_t> arithmetic_range(std::int64_t lo, std::int64_t hi,
                                                         std::int64_t step = 1);

/// Values {base, base*factor, base*factor^2, ...} up to and including hi.
[[nodiscard]] std::vector<std::int64_t> geometric_range(std::int64_t base, std::int64_t hi,
                                                        std::int64_t factor);

/// The paper's Fig. 12.2 batch-size axis: {5, 10, 50, 100, 500, ..., hi}.
[[nodiscard]] std::vector<std::int64_t> one_five_decades(std::int64_t lo, std::int64_t hi);

/// Bulk-execution planning for an observed run: the number of balls to
/// move in one step_many call so that the next multiple of `interval`
/// (the next observation checkpoint) lands exactly on the chunk boundary,
/// capped by the `remaining` balls of the run.  Drivers loop this with
/// O(1) memory: step_many(chunk), observe, repeat until remaining is 0.
/// Returns 0 iff remaining is 0.
[[nodiscard]] step_count checkpoint_chunk(step_count balls_so_far, step_count remaining,
                                          step_count interval);

}  // namespace nb
