// Time-series instrumentation: sample the gap and the paper's potential
// functions along a run.  Used by the potential-dynamics ablation bench
// (Section 5/7 machinery) and by the self-stabilization experiments.
#pragma once

#include <vector>

#include "core/potential/potentials.hpp"
#include "core/process.hpp"
#include "sim/sweep.hpp"

namespace nb {

/// Which quantities to sample (gap and Delta/Upsilon are cheap; the
/// exponential potentials are O(n) each per sample).
struct trace_options {
  step_count sample_interval = 0;  ///< required: sample every this many balls
  bool record_gamma = false;
  double gamma = 0.0;  ///< smoothing parameter for Gamma
  bool record_lambda = false;
  double lambda_alpha = paper_constants::kAlpha;
  double lambda_offset = 0.0;
  bool record_absolute = true;
  bool record_quadratic = true;
  bool record_good_step = false;
  double good_step_g = 1.0;
};

struct trace_point {
  step_count t = 0;
  double gap = 0.0;
  double gamma = 0.0;
  double lambda = 0.0;
  double absolute = 0.0;
  double quadratic = 0.0;
  bool good_step = false;
};

struct trace {
  std::vector<trace_point> points;
};

/// Runs `process` for m balls, sampling per `opt`.  The state is sampled
/// after every `opt.sample_interval` allocations (and once at the end when
/// m is not a multiple).  Balls move through step_many in whole
/// inter-checkpoint chunks, so the per-ball path carries no sampling
/// check; results are bit-identical to the per-ball loop.
template <allocation_process P>
trace record_trace(P& process, step_count m, rng_t& rng, const trace_options& opt) {
  NB_REQUIRE(opt.sample_interval >= 1, "sample interval must be positive");
  trace out;
  out.points.reserve(static_cast<std::size_t>(m / opt.sample_interval) + 2);

  auto sample = [&] {
    trace_point p;
    p.t = process.state().balls();
    p.gap = process.state().gap();
    const std::vector<double> y = process.state().normalized();
    if (opt.record_gamma) p.gamma = gamma_potential(y, opt.gamma);
    if (opt.record_lambda) p.lambda = lambda_potential(y, opt.lambda_alpha, opt.lambda_offset);
    if (opt.record_absolute) p.absolute = absolute_potential(y);
    if (opt.record_quadratic) p.quadratic = quadratic_potential(y);
    if (opt.record_good_step) p.good_step = is_good_step(y, opt.good_step_g);
    out.points.push_back(p);
  };

  step_count remaining = m;
  while (remaining > 0) {
    const step_count chunk =
        checkpoint_chunk(process.state().balls(), remaining, opt.sample_interval);
    step_many(process, rng, chunk);
    remaining -= chunk;
    if (process.state().balls() % opt.sample_interval == 0) sample();
  }
  if (m % opt.sample_interval != 0) sample();
  return out;
}

}  // namespace nb
