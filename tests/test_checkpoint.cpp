// Tests for mid-run checkpoint/restore (src/exp/checkpoint.*): the file
// container and its corruption diagnostics, the capture/restore identity
// checks, and the design invariant --
//
//     checkpoint + restore == uninterrupted, bit for bit,
//
// across every process kind, the serial/shard/kernel engines, and
// different thread counts; plus the campaign integration (intra-cell
// resume producing byte-identical aggregate JSON).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "test_support.hpp"

namespace {

using namespace nb;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "nb_checkpoint_" + name;
}

bool file_exists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

// ---------------------------------------------------------------------------
// CRC32.

TEST(Crc32, MatchesKnownVectors) {
  // The standard IEEE check value, plus a couple of fixed points.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0x00000000u);
  EXPECT_EQ(crc32("a", 1), 0xE8B7BE43u);
  EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog", 43), 0x414FA339u);
}

TEST(Crc32, SlicedPathAgreesWithBytewisePath) {
  // Lengths straddling the 8-byte slicing boundary all hash consistently
  // with their prefix-extended forms (regression guard on the fast path).
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 64; ++i) data.push_back(static_cast<std::uint8_t>(i * 37 + 11));
  std::uint32_t previous = crc32(data.data(), 64);
  for (std::size_t len : {std::size_t{63}, std::size_t{9}, std::size_t{8}, std::size_t{7}}) {
    const std::uint32_t c = crc32(data.data(), len);
    EXPECT_NE(c, previous);  // truncation changes the checksum
    previous = c;
  }
}

// ---------------------------------------------------------------------------
// Container codec.

run_checkpoint sample_checkpoint(bin_count n = 32) {
  any_process process = make_process(process_spec{"two-choice", n, 0.0});
  rng_t rng(77);
  for (int i = 0; i < 100; ++i) process.step(rng);
  return capture_checkpoint(process, rng, "serial", 5, 77);
}

TEST(CheckpointCodec, RoundTripsEveryField) {
  const run_checkpoint ckpt = sample_checkpoint();
  const auto bytes = encode_checkpoint(ckpt);
  const run_checkpoint back = decode_checkpoint(bytes);
  EXPECT_EQ(back.process_name, ckpt.process_name);
  EXPECT_EQ(back.engine, ckpt.engine);
  EXPECT_EQ(back.cell, ckpt.cell);
  EXPECT_EQ(back.seed, ckpt.seed);
  EXPECT_EQ(back.balls_done, ckpt.balls_done);
  EXPECT_EQ(back.rng_state, ckpt.rng_state);
  EXPECT_EQ(back.process_state, ckpt.process_state);
}

TEST(CheckpointCodec, FileRoundTripAndMissingFile) {
  const std::string path = temp_path("roundtrip.ckpt");
  std::remove(path.c_str());
  EXPECT_FALSE(try_read_checkpoint_file(path).has_value());
  const run_checkpoint ckpt = sample_checkpoint();
  write_checkpoint_file(path, ckpt);
  EXPECT_FALSE(file_exists(path + ".tmp"));  // atomic write left no temp
  const auto back = try_read_checkpoint_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->process_state, ckpt.process_state);
  EXPECT_EQ(back->rng_state, ckpt.rng_state);
  std::remove(path.c_str());
}

TEST(CheckpointCodec, EveryTruncationThrowsCleanly) {
  const auto bytes = encode_checkpoint(sample_checkpoint());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)decode_checkpoint(cut), contract_error) << "truncated to " << len;
  }
}

TEST(CheckpointCodec, EveryByteFlipThrowsCleanly) {
  const auto bytes = encode_checkpoint(sample_checkpoint());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto mutated = bytes;
    mutated[i] ^= 0x5A;
    EXPECT_THROW((void)decode_checkpoint(mutated), contract_error) << "flipped byte " << i;
  }
}

TEST(CheckpointCodec, TrailingGarbageAndWrongHeaderThrow) {
  const auto bytes = encode_checkpoint(sample_checkpoint());
  auto longer = bytes;
  longer.push_back(0);
  EXPECT_THROW((void)decode_checkpoint(longer), contract_error);

  auto wrong_magic = bytes;
  wrong_magic[0] = 'X';
  EXPECT_THROW((void)decode_checkpoint(wrong_magic), contract_error);

  auto wrong_version = bytes;
  wrong_version[6] = 99;  // version u32 follows the 6-byte magic
  EXPECT_THROW((void)decode_checkpoint(wrong_version), contract_error);
}

TEST(CheckpointCodec, CorruptFileDiagnosticNamesThePath) {
  const std::string path = temp_path("corrupt.ckpt");
  write_checkpoint_file(path, sample_checkpoint());
  {
    // Flip one payload byte in place.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(40);
    const char evil = 0x7F;
    f.write(&evil, 1);
  }
  try {
    (void)try_read_checkpoint_file(path);
    FAIL() << "corrupt checkpoint did not throw";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Restore validation.

TEST(CheckpointRestore, RejectsEveryIdentityMismatch) {
  const run_checkpoint ckpt = sample_checkpoint(32);
  rng_t rng(77);

  any_process wrong_kind = make_process(process_spec{"one-choice", 32, 0.0});
  EXPECT_THROW(restore_from_checkpoint(wrong_kind, rng, ckpt, "serial", 5, 77, 1000),
               contract_error);

  any_process process = make_process(process_spec{"two-choice", 32, 0.0});
  EXPECT_THROW(restore_from_checkpoint(process, rng, ckpt, "kernel[lanes=8]", 5, 77, 1000),
               contract_error);
  EXPECT_THROW(restore_from_checkpoint(process, rng, ckpt, "serial", 6, 77, 1000), contract_error);
  EXPECT_THROW(restore_from_checkpoint(process, rng, ckpt, "serial", 5, 78, 1000), contract_error);
  // m below the checkpointed ball count: the checkpoint outlived its run.
  EXPECT_THROW(restore_from_checkpoint(process, rng, ckpt, "serial", 5, 77, 50), contract_error);

  // Same kind and name but a different bin count: the payload layer
  // catches what the identity fields cannot.
  any_process wrong_n = make_process(process_spec{"two-choice", 64, 0.0});
  EXPECT_THROW(restore_from_checkpoint(wrong_n, rng, ckpt, "serial", 5, 77, 1000), contract_error);

  // And the untampered restore passes.
  const step_count done = restore_from_checkpoint(process, rng, ckpt, "serial", 5, 77, 1000);
  EXPECT_EQ(done, 100);
  EXPECT_EQ(process.state().balls(), 100);
}

// ---------------------------------------------------------------------------
// The invariant: checkpoint + restore == uninterrupted, bit for bit.

/// Runs `spec` three ways under `eopt` -- uninterrupted, checkpointed
/// (capturing the first mark), and killed-at-that-mark-then-resumed
/// (through the full encode/decode codec) -- and asserts all three load
/// vectors and results are identical.
void expect_resume_identical(const process_spec& spec, step_count m, const engine_options& eopt,
                             step_count every, std::uint64_t seed = 4242) {
  any_process ref = make_process(spec);
  rng_t ref_rng(seed);
  run_engine ref_engine(eopt);
  const run_result ref_result = simulate_with(ref, m, ref_rng, ref_engine);

  any_process full = make_process(spec);
  rng_t full_rng(seed);
  run_engine full_engine(eopt);
  std::optional<run_checkpoint> ckpt;
  const run_result full_result =
      run_checkpointed(full, m, full_rng, full_engine, every, [&](step_count balls_done) {
        if (!ckpt) {
          ckpt = capture_checkpoint(full, full_rng, full_engine.fingerprint(), 0, seed);
          EXPECT_EQ(ckpt->balls_done, balls_done);
        }
      });
  // Checkpointing itself must not perturb the run.
  EXPECT_EQ(full.state().loads(), ref.state().loads()) << spec.kind << ": cadence changed results";
  EXPECT_EQ(full_result.gap, ref_result.gap);
  EXPECT_EQ(full_result.max_load, ref_result.max_load);
  ASSERT_TRUE(ckpt.has_value()) << spec.kind << ": no checkpoint mark fired";
  EXPECT_GT(ckpt->balls_done, 0);
  EXPECT_LT(ckpt->balls_done, m);

  // The kill: everything in memory is gone; only the encoded bytes
  // survive.  Fresh process, fresh RNG, restore, finish.
  const run_checkpoint survived = decode_checkpoint(encode_checkpoint(*ckpt));
  any_process resumed = make_process(spec);
  rng_t resumed_rng(seed ^ 0xABCDEF);  // seed irrelevant once state is set
  run_engine resumed_engine(eopt);
  const step_count done = restore_from_checkpoint(resumed, resumed_rng, survived,
                                                  resumed_engine.fingerprint(), 0, seed, m);
  EXPECT_EQ(done, survived.balls_done);
  const run_result resumed_result =
      run_checkpointed(resumed, m, resumed_rng, resumed_engine, every, {});
  EXPECT_EQ(resumed.state().loads(), ref.state().loads())
      << spec.kind << ": resumed run diverged from uninterrupted";
  EXPECT_EQ(resumed_result.gap, ref_result.gap);
  EXPECT_EQ(resumed_result.underload_gap, ref_result.underload_gap);
  EXPECT_EQ(resumed_result.max_load, ref_result.max_load);
  EXPECT_EQ(resumed_result.min_load, ref_result.min_load);
  EXPECT_EQ(resumed_result.balls, ref_result.balls);
}

class SerialResumeIdentity : public ::testing::TestWithParam<process_spec> {};

TEST_P(SerialResumeIdentity, ResumedEqualsUninterrupted) {
  expect_resume_identical(GetParam(), 4800, engine_options{}, 700);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SerialResumeIdentity,
    ::testing::Values(process_spec{"one-choice", 96, 0.0}, process_spec{"two-choice", 96, 0.0},
                      process_spec{"d-choice", 96, 3.0}, process_spec{"one-plus-beta", 96, 0.5},
                      process_spec{"g-bounded", 96, 2.0}, process_spec{"g-myopic", 96, 2.0},
                      process_spec{"g-adv-boost", 96, 2.0}, process_spec{"g-adv-load", 96, 2.0},
                      process_spec{"g-adv-load-uniform", 96, 2.0},
                      process_spec{"sigma-noisy-load", 96, 4.0},
                      process_spec{"sigma-noisy-gauss", 96, 2.0},
                      process_spec{"b-batch", 96, 96.0}, process_spec{"b-batch", 96, 384.0},
                      process_spec{"tau-delay", 96, 8.0}, process_spec{"tau-delay-oldest", 96, 24.0},
                      process_spec{"tau-delay-random", 96, 5.0},
                      process_spec{"mean-thinning", 96, 0.0},
                      process_spec{"noisy-mean-thinning", 96, 2.0},
                      process_spec{"noisy-one-plus-beta", 96, 2.0}),
    [](const ::testing::TestParamInfo<process_spec>& info) {
      std::string name = info.param.kind + "_" + std::to_string(static_cast<int>(info.param.param));
      for (char& c : name) {
        if (c == '-' || c == '.') c = '_';
      }
      return name;
    });

TEST(ResumeIdentity, DelayRingMidFillCheckpoint) {
  // The first mark lands while tau-Delay's ring is still FILLING (10
  // balls into a tau-1 = 49 capacity ring): the fill-phase cursor laws
  // must survive the round trip too.
  expect_resume_identical(process_spec{"tau-delay", 64, 50.0}, 400, engine_options{}, 10);
}

TEST(ResumeIdentity, ShardEngineAcrossKinds) {
  engine_options eopt;
  eopt.threads_per_run = 2;
  eopt.shards = 4;
  eopt.lanes = 4;
  // A window-parallel process (the engine's real path), a serial-fallback
  // process, and a window-probed always-zero process.
  expect_resume_identical(process_spec{"b-batch", 96, 480.0}, 4800, eopt, 700);
  expect_resume_identical(process_spec{"two-choice", 96, 0.0}, 4800, eopt, 700);
  expect_resume_identical(process_spec{"tau-delay", 96, 8.0}, 4800, eopt, 700);
}

TEST(ResumeIdentity, KernelEngine) {
  engine_options eopt;
  eopt.use_kernel = true;
  eopt.lanes = 4;
  expect_resume_identical(process_spec{"b-batch", 96, 480.0}, 4800, eopt, 700);
}

TEST(ResumeIdentity, RestoreUnderDifferentThreadCount) {
  // threads_per_run is execution-only and excluded from the engine
  // fingerprint: a checkpoint written under 1 worker restores under 3
  // (and vice versa) with bit-identical results.
  const process_spec spec{"b-batch", 96, 480.0};
  const std::uint64_t seed = 31337;
  const step_count m = 4800;
  engine_options one;
  one.threads_per_run = 1;
  one.shards = 4;
  engine_options three = one;
  three.threads_per_run = 3;

  any_process ref = make_process(spec);
  rng_t ref_rng(seed);
  run_engine ref_engine(three);
  const run_result ref_result = simulate_with(ref, m, ref_rng, ref_engine);

  any_process writer = make_process(spec);
  rng_t writer_rng(seed);
  run_engine writer_engine(one);
  std::optional<run_checkpoint> ckpt;
  (void)run_checkpointed(writer, m, writer_rng, writer_engine, 700, [&](step_count) {
    if (!ckpt) ckpt = capture_checkpoint(writer, writer_rng, writer_engine.fingerprint(), 0, seed);
  });
  ASSERT_TRUE(ckpt.has_value());

  any_process resumed = make_process(spec);
  rng_t resumed_rng(1);
  run_engine resumed_engine(three);
  ASSERT_EQ(writer_engine.fingerprint(), resumed_engine.fingerprint());
  restore_from_checkpoint(resumed, resumed_rng, *ckpt, resumed_engine.fingerprint(), 0, seed, m);
  const run_result resumed_result =
      run_checkpointed(resumed, m, resumed_rng, resumed_engine, 700, {});
  EXPECT_EQ(resumed.state().loads(), ref.state().loads());
  EXPECT_EQ(resumed_result.gap, ref_result.gap);
}

TEST(RunCheckpointed, NoCadenceMatchesPlainRun) {
  const process_spec spec{"sigma-noisy-load", 64, 4.0};
  for (const step_count every : {step_count{0}, step_count{100000}}) {
    any_process a = make_process(spec);
    rng_t rng_a(5);
    run_engine engine_a((engine_options{}));
    const run_result ra = simulate_with(a, 3200, rng_a, engine_a);

    any_process b = make_process(spec);
    rng_t rng_b(5);
    run_engine engine_b((engine_options{}));
    int marks = 0;
    const run_result rb =
        run_checkpointed(b, 3200, rng_b, engine_b, every, [&](step_count) { ++marks; });
    EXPECT_EQ(marks, 0);
    EXPECT_EQ(a.state().loads(), b.state().loads());
    EXPECT_EQ(ra.gap, rb.gap);
  }
}

// ---------------------------------------------------------------------------
// Non-checkpointable processes degrade, loudly.

/// Minimal allocation process WITHOUT checkpoint support, for the
/// degradation path.
class opaque_process {
 public:
  explicit opaque_process(bin_count n) : state_(n) {}
  void step(rng_t& rng) { deposit(state_, model_.weighting, sample_bin(rng, state_.n()), rng); }
  void step_many(rng_t& rng, step_count count) {
    const load_state::bulk_window window(state_, count);
    for (step_count t = 0; t < count; ++t) step(rng);
  }
  [[nodiscard]] const load_state& state() const noexcept { return state_; }
  void reset() { state_.reset(); }
  [[nodiscard]] std::string name() const { return "opaque"; }

 private:
  load_state state_;
  alloc_model model_;
};

static_assert(allocation_process<opaque_process>);
static_assert(!checkpointable_process<opaque_process>);

TEST(Checkpointable, ProbeAndThrowOnUnsupportedProcess) {
  any_process supported = make_process(process_spec{"two-choice", 16, 0.0});
  EXPECT_TRUE(supported.checkpointable());
  any_process opaque{opaque_process(16)};
  EXPECT_FALSE(opaque.checkpointable());
  state_writer w;
  EXPECT_THROW(opaque.save_checkpoint(w), contract_error);
  state_reader r(nullptr, 0);
  EXPECT_THROW(opaque.restore_checkpoint(r), contract_error);
}

// ---------------------------------------------------------------------------
// Campaign integration.

std::vector<campaign_config> small_configs(bin_count n, step_count m) {
  std::vector<campaign_config> configs;
  configs.push_back({"two-choice", {}, m, process_spec{"two-choice", n, 0.0}});
  configs.push_back({"b-batch/b=n", {}, m, process_spec{"b-batch", n, static_cast<double>(n)}});
  configs.push_back({"tau-delay/8", {}, m, process_spec{"tau-delay", n, 8.0}});
  return configs;
}

TEST(CampaignCheckpoint, RequiresJournalPath) {
  campaign_options opt;
  opt.repeats = 1;
  opt.checkpoint_every = 100;
  EXPECT_THROW((void)run_campaign(small_configs(32, 320), opt), contract_error);
}

TEST(CampaignCheckpoint, CompletedCampaignLeavesNoCheckpointFiles) {
  const std::string journal = temp_path("clean.jsonl");
  std::remove(journal.c_str());
  campaign_options opt;
  opt.repeats = 2;
  opt.seed = 11;
  opt.threads = 2;
  opt.journal_path = journal;
  opt.checkpoint_every = 150;
  const auto configs = small_configs(48, 1920);
  const auto result = run_campaign(configs, opt);
  EXPECT_EQ(result.cells_restored, 0u);
  for (std::size_t cell = 0; cell < configs.size() * opt.repeats; ++cell) {
    EXPECT_FALSE(file_exists(checkpoint_cell_path(journal, cell))) << "cell " << cell;
  }
  std::remove(journal.c_str());
}

TEST(CampaignCheckpoint, MidCellRestoreMatchesUninterruptedByteForByte) {
  const auto configs = small_configs(48, 1920);
  campaign_options base;
  base.repeats = 2;
  base.seed = 17;
  base.threads = 2;

  // Uninterrupted reference (no journal, no checkpoints).
  const std::string ref_json = run_campaign(configs, base).to_json();

  // Simulate a kill: a journal holding only the header (no finished
  // cells) plus ONE cell's mid-run checkpoint file on disk.
  const std::string journal = temp_path("restore.jsonl");
  std::remove(journal.c_str());
  campaign_options copt = base;
  copt.journal_path = journal;
  copt.checkpoint_every = 300;
  {
    // Let a full campaign write the journal so its header (with the grid
    // fingerprint) is authentic, then strip it back to header-only.
    (void)run_campaign(configs, copt);
    std::ifstream in(journal);
    std::string header_line;
    ASSERT_TRUE(std::getline(in, header_line));
    in.close();
    std::ofstream out(journal, std::ios::trunc);
    out << header_line << '\n';
  }
  // Re-create cell 3's state exactly as its in-campaign run would and
  // leave its first checkpoint behind, as if the kill landed right after.
  const std::size_t target = 3;
  {
    const campaign_config& config = configs[target / base.repeats];
    any_process process = make_process(config.process);
    rng_t rng(derive_seed(base.seed, target));
    run_engine engine(copt.engine());
    std::optional<run_checkpoint> ckpt;
    (void)run_checkpointed(process, config.m, rng, engine, copt.checkpoint_every,
                           [&](step_count) {
                             if (!ckpt) {
                               ckpt = capture_checkpoint(process, rng, engine.fingerprint(),
                                                         target, derive_seed(base.seed, target));
                             }
                           });
    ASSERT_TRUE(ckpt.has_value());
    write_checkpoint_file(checkpoint_cell_path(journal, target), *ckpt);
  }

  copt.resume = true;
  const auto resumed = run_campaign(configs, copt);
  EXPECT_EQ(resumed.cells_restored, 1u);
  EXPECT_EQ(resumed.cells_resumed, 0u);
  EXPECT_EQ(resumed.to_json(), ref_json);
  // The restored cell finished, so its checkpoint is gone too.
  EXPECT_FALSE(file_exists(checkpoint_cell_path(journal, target)));
  std::remove(journal.c_str());
}

TEST(CampaignCheckpoint, NonCheckpointableFactoryCellDegradesGracefully) {
  std::vector<campaign_config> configs;
  configs.push_back({"opaque (factory)", [] { return any_process(opaque_process(32)); }, 640});
  const std::string journal = temp_path("opaque.jsonl");
  std::remove(journal.c_str());
  campaign_options opt;
  opt.repeats = 2;
  opt.seed = 3;
  opt.journal_path = journal;
  opt.checkpoint_every = 100;
  const auto with_ckpt = run_campaign(configs, opt);  // warns once, completes

  campaign_options plain;
  plain.repeats = 2;
  plain.seed = 3;
  EXPECT_EQ(run_campaign(configs, plain).to_json(), with_ckpt.to_json());
  std::remove(journal.c_str());
}

// ---------------------------------------------------------------------------
// Journal hardening (atomic rewrite).

TEST(JournalWriter, AtomicRewriteLeavesOneCleanJournalAndNoTemp) {
  const std::string path = temp_path("journal.jsonl");
  std::remove(path.c_str());
  const journal_header header{2, 3, 42, 777};
  journal_entry preserved;
  preserved.cell = 1;
  preserved.result.seed = derive_seed(42, 1);
  preserved.result.balls = 100;
  preserved.result.gap = 2.5;
  {
    journal_writer writer;
    writer.open(path, header, {preserved});
    journal_entry fresh;
    fresh.cell = 4;
    fresh.result.seed = derive_seed(42, 4);
    fresh.result.balls = 100;
    writer.append(fresh);
  }
  EXPECT_FALSE(file_exists(path + ".tmp"));
  const auto replay = replay_journal(path);
  ASSERT_TRUE(replay.header_valid);
  EXPECT_EQ(replay.header, header);
  ASSERT_EQ(replay.entries.size(), 2u);
  EXPECT_EQ(replay.entries[0].cell, 1u);
  EXPECT_EQ(replay.entries[0].result.gap, 2.5);
  EXPECT_EQ(replay.entries[1].cell, 4u);
  std::remove(path.c_str());
}

}  // namespace
