// The level-compressed load index: incremental maintenance must match a
// from-scratch recomputation after arbitrary allocation sequences, and the
// O(1)/O(span) observation queries must agree with full scans/sorts.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>

#include "test_support.hpp"

namespace {

using namespace nb;

/// Checks every level_index query against a brute-force recomputation
/// from the raw load vector.
void expect_levels_consistent(const load_state& s) {
  const auto& loads = s.loads();
  const load_t mn = *std::min_element(loads.begin(), loads.end());
  const load_t mx = *std::max_element(loads.begin(), loads.end());
  const level_index& levels = s.levels();

  EXPECT_EQ(levels.min_level(), mn);
  EXPECT_EQ(levels.max_level(), mx);
  EXPECT_EQ(levels.bins(), s.n());
  EXPECT_EQ(levels.level_count(), mx - mn + 1);
  EXPECT_EQ(s.min_load(), mn);
  EXPECT_EQ(s.max_load(), mx);

  std::map<load_t, bin_count> histogram;
  for (const load_t x : loads) ++histogram[x];
  bin_count total = 0;
  for (load_t l = mn; l <= mx; ++l) {
    const auto it = histogram.find(l);
    const bin_count want = it == histogram.end() ? 0 : it->second;
    EXPECT_EQ(levels.count_at(l), want) << "level " << l;
    total += want;
  }
  EXPECT_EQ(total, s.n());
  EXPECT_EQ(levels.count_at(mn - 1), 0u);
  EXPECT_EQ(levels.count_at(mx + 1), 0u);

  // Suffix counts at, below and above the occupied range.
  EXPECT_EQ(levels.count_at_or_above(mn), s.n());
  EXPECT_EQ(levels.count_at_or_above(mn - 5), s.n());
  EXPECT_EQ(levels.count_at_or_above(mx + 1), 0u);
  const load_t mid = mn + (mx - mn) / 2 + 1;
  bin_count above = 0;
  for (const load_t x : loads) {
    if (x >= mid) ++above;
  }
  EXPECT_EQ(levels.count_at_or_above(mid), above);

  // Overloaded-bin count against the O(n) scan it replaced.
  const double avg = s.average_load();
  bin_count overloaded = 0;
  for (const load_t x : loads) {
    if (static_cast<double>(x) >= avg) ++overloaded;
  }
  EXPECT_EQ(s.overloaded_count(), overloaded);

  // Sort-free sorted normalized vector against an actual sort.
  std::vector<double> expected = s.normalized();
  std::sort(expected.begin(), expected.end(), std::greater<>());
  EXPECT_EQ(s.sorted_normalized_desc(), expected);

  // Descending iteration yields exactly the non-empty levels.
  load_t last = mx + 1;
  bin_count visited = 0;
  levels.for_each_level_desc([&](load_t level, bin_count count) {
    EXPECT_LT(level, last);
    EXPECT_GT(count, 0u);
    EXPECT_EQ(count, levels.count_at(level));
    last = level;
    visited += count;
  });
  EXPECT_EQ(visited, s.n());
}

TEST(LevelIndex, FreshStateIsAllAtZero) {
  load_state s(16);
  expect_levels_consistent(s);
  EXPECT_EQ(s.levels().count_at(0), 16u);
  EXPECT_EQ(s.levels().level_count(), 1);
}

TEST(LevelIndex, TracksRandomizedAllocationSequences) {
  load_state s(24);
  rng_t rng(1);
  for (int round = 0; round < 50; ++round) {
    for (int k = 0; k < 37; ++k) {
      s.allocate(static_cast<bin_index>(bounded(rng, s.n())));
    }
    expect_levels_consistent(s);
  }
}

TEST(LevelIndex, TracksSkewedSequences) {
  // All balls into one bin: a long, thin level window whose minimum never
  // moves (stresses the grow path, not the trim path).
  load_state s(4);
  for (int k = 0; k < 5000; ++k) {
    s.allocate(0);
    if (k % 500 == 0) expect_levels_consistent(s);
  }
  expect_levels_consistent(s);
  EXPECT_EQ(s.max_load(), 5000);
  EXPECT_EQ(s.min_load(), 0);
  EXPECT_EQ(s.levels().count_at(5000), 1u);
  EXPECT_EQ(s.levels().count_at(0), 3u);
}

TEST(LevelIndex, TrimsAdvancingMinimum) {
  // Round-robin allocation: every bin marches up in lockstep, so the
  // minimum advances constantly and dead levels must be trimmed away
  // without disturbing any query.
  load_state s(3);
  for (int k = 0; k < 9000; ++k) {
    s.allocate(static_cast<bin_index>(k % 3));
    if (k % 1000 == 999) expect_levels_consistent(s);
  }
  expect_levels_consistent(s);
  EXPECT_EQ(s.min_load(), 3000);
  EXPECT_EQ(s.max_load(), 3000);
  EXPECT_EQ(s.levels().level_count(), 1);
}

TEST(LevelIndex, SingleBinDeepRun) {
  load_state s(1);
  for (int k = 0; k < 100000; ++k) s.allocate(0);
  expect_levels_consistent(s);
  EXPECT_EQ(s.min_load(), 100000);
  EXPECT_EQ(s.levels().count_at(100000), 1u);
  EXPECT_EQ(s.levels().count_at_or_above(99999), 1u);
}

TEST(LevelIndex, ResetRestoresFreshState) {
  load_state s(8);
  rng_t rng(2);
  for (int k = 0; k < 700; ++k) s.allocate(static_cast<bin_index>(bounded(rng, 8)));
  s.reset();
  expect_levels_consistent(s);
  EXPECT_EQ(s.levels().count_at(0), 8u);
  EXPECT_EQ(s.max_load(), 0);
  EXPECT_EQ(s.min_load(), 0);
}

TEST(LevelIndex, StaysConsistentUnderEveryProcess) {
  // The index is maintained by allocate() regardless of which process is
  // driving; sweep the whole registry to cover every allocation pattern.
  for (const auto& [kind, description] : registered_process_kinds()) {
    process_spec spec;
    spec.kind = kind;
    spec.n = 32;
    spec.param = kind == "d-choice" ? 3.0 : (kind == "one-plus-beta" ? 0.5 : 2.0);
    any_process p = make_process(spec);
    rng_t rng(std::hash<std::string>{}(kind));
    step_many(p, rng, 3000);
    expect_levels_consistent(p.state());
  }
}

TEST(LevelIndex, GapAndUnderloadGapUseIndexedExtremes) {
  load_state s(4);
  for (int k = 0; k < 7; ++k) s.allocate(0);
  for (int k = 0; k < 2; ++k) s.allocate(1);
  // loads = {7, 2, 0, 0}, avg = 2.25
  EXPECT_DOUBLE_EQ(s.gap(), 7.0 - 2.25);
  EXPECT_DOUBLE_EQ(s.underload_gap(), 2.25);
  EXPECT_EQ(s.overloaded_count(), 1u);
}

}  // namespace
