// Multicore scaling correctness: the determinism contracts that make the
// scaling bench matrix trustworthy --
//   (1) the shard engine is bit-identical for ANY thread count, including
//       oversubscribed counts far past hardware_concurrency,
//   (2) the work-stealing campaign scheduler emits byte-identical
//       aggregate JSON for any worker count,
//   (3) per-index RNG streams are independent of the executing thread
//       (same seed on concurrent threads => same stream; distinct shard
//       seeds => distinct streams),
// plus the supporting machinery: the padded shard-delta rows, the
// work-stealing chunk distributor, oversubscription diagnostics, host
// detection and the perf-counter wrapper's graceful fallback.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "test_support.hpp"
#include "util/host_info.hpp"
#include "util/perf_counters.hpp"

namespace {

using namespace nb;

// ---------------------------------------------------------------------------
// (1) Shard engine: bit-invariance across 1/2/4/8/16 threads, including
// counts well past this machine's cores (oversubscription time-slices but
// must not perturb sampling).

std::vector<load_t> engine_loads(std::size_t threads, std::uint64_t seed) {
  const bin_count n = 8192;
  b_batch process(n, n);
  rng_t rng(seed);
  shard_engine engine(shard_options{.threads = threads, .shards = 16, .min_window = 1});
  step_many_parallel(process, rng, 8 * static_cast<step_count>(n), engine);
  return process.state().loads();
}

TEST(Multicore, ShardEngineBitIdenticalUpToSixteenThreads) {
  const auto reference = engine_loads(1, 2026);
  EXPECT_EQ(nb::testing::total_balls(reference), 8 * 8192);
  for (const std::size_t threads : {2, 4, 8, 16}) {
    EXPECT_EQ(engine_loads(threads, 2026), reference) << "threads = " << threads;
  }
  EXPECT_NE(engine_loads(16, 2027), reference);  // the engine is not inert
}

// ---------------------------------------------------------------------------
// (2) Campaign scheduler: work stealing reorders execution only -- the
// aggregate JSON is byte-identical for any worker count.

std::string campaign_json(std::size_t workers) {
  const bin_count n = 2048;
  std::vector<campaign_config> configs;
  for (int c = 0; c < 6; ++c) {
    campaign_config cfg;
    cfg.label = (c % 2 == 0 ? "b-batch-" : "two-choice-zipf-") + std::to_string(c);
    cfg.m = 4 * static_cast<step_count>(n);
    if (c % 2 == 0) {
      cfg.factory = [n] { return any_process(b_batch(n, n)); };
    } else {
      // Heterogeneous cell mix on purpose: fused zipf cells run at a very
      // different rate than kernel b-batch cells, so stealing actually
      // rebalances instead of degenerating to the fixed hand-out order.
      cfg.factory = [n] {
        two_choice p(n);
        p.set_model(make_model("unit", "zipf:1", n));
        return any_process(std::move(p));
      };
    }
    configs.push_back(std::move(cfg));
  }
  campaign_options opt;
  opt.repeats = 3;
  opt.seed = 77;
  opt.threads = workers;
  opt.use_kernel = true;
  opt.lanes = 8;
  return run_campaign(configs, opt).to_json();
}

TEST(Multicore, CampaignJsonByteIdenticalAcrossWorkerCounts) {
  const std::string reference = campaign_json(1);
  EXPECT_FALSE(reference.empty());
  for (const std::size_t workers : {2, 4, 8, 16}) {
    EXPECT_EQ(campaign_json(workers), reference) << "workers = " << workers;
  }
}

// ---------------------------------------------------------------------------
// (3) Per-thread generator independence (the Katana property): streams are
// a function of the seed alone, never of which thread advances them, and
// the shard seeding scheme hands distinct shards distinct streams.

TEST(Multicore, SameSeedStreamsIdenticalAcrossConcurrentThreads) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kDraws = 4096;
  std::vector<std::vector<std::uint64_t>> draws(kThreads, std::vector<std::uint64_t>(kDraws));
  std::atomic<int> go{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      rng_t rng(31337);  // every thread: the SAME seed
      go.fetch_add(1);
      while (go.load() < static_cast<int>(kThreads)) {
      }  // maximize overlap
      for (std::size_t i = 0; i < kDraws; ++i) draws[t][i] = rng.next();
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(draws[t], draws[0]) << "thread-local stream diverged on thread " << t;
  }
}

TEST(Multicore, DistinctShardSeedsGiveDistinctStreams) {
  const std::uint64_t token = 9001;
  std::vector<std::uint64_t> firsts;
  for (std::uint64_t s = 0; s < 32; ++s) {
    rng_t rng(shard_stream_seed(token, s));
    firsts.push_back(rng.next());
  }
  std::sort(firsts.begin(), firsts.end());
  EXPECT_EQ(std::adjacent_find(firsts.begin(), firsts.end()), firsts.end());
}

// ---------------------------------------------------------------------------
// Oversubscription diagnostics.

TEST(Multicore, OversubscriptionWarnsOnceAndOnlyWhenOver) {
  // One worker can never oversubscribe (hardware_concurrency floor is 1).
  EXPECT_FALSE(warn_if_oversubscribed(1, "test/never"));
  EXPECT_FALSE(warned("oversubscribed/test/never"));
  // 4096 workers exceeds any build machine we target.
  EXPECT_TRUE(warn_if_oversubscribed(4096, "test/always"));
  EXPECT_TRUE(warned("oversubscribed/test/always"));
  EXPECT_FALSE(warn_if_oversubscribed(4096, "test/always"));  // once per key
}

// ---------------------------------------------------------------------------
// Work-stealing chunk distributor: exact cover, no duplicates, whether
// chunks leave via pops or steals.

TEST(Multicore, StealingQueuesCoverEveryIndexExactlyOnce) {
  const std::size_t count = 1000;
  work_stealing_queues queues(count, 4);
  EXPECT_EQ(queues.workers(), 4u);
  EXPECT_GE(queues.chunk(), 1u);
  std::vector<int> hits(count, 0);
  work_stealing_queues::span s;
  // Worker 0 pops its own deque dry, then steals everything else.
  while (queues.try_pop(0, s) || queues.try_steal(0, s)) {
    for (std::size_t i = s.begin; i < s.end; ++i) ++hits[i];
  }
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(), [](int h) { return h == 1; }));
  EXPECT_FALSE(queues.try_steal(2, s));  // empty everywhere == done
}

TEST(Multicore, StealingQueuesConcurrentConsumersPartitionTheRange) {
  const std::size_t count = 10000;
  const std::size_t workers = 8;
  work_stealing_queues queues(count, workers);
  std::vector<std::atomic<int>> hits(count);
  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      work_stealing_queues::span s;
      while (queues.try_pop(w, s) || queues.try_steal(w, s)) {
        for (std::size_t i = s.begin; i < s.end; ++i) hits[i].fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t i = 0; i < count; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(Multicore, ParallelForIndexResultsThreadCountInvariant) {
  const std::size_t count = 257;  // deliberately not a multiple of anything
  auto run = [count](std::size_t threads) {
    std::vector<std::uint64_t> out(count, 0);
    parallel_for(count, threads, [&](std::size_t i) { out[i] = derive_seed(5, i); });
    return out;
  };
  const auto reference = run(1);
  for (const std::size_t threads : {2, 4, 16}) EXPECT_EQ(run(threads), reference);
}

// ---------------------------------------------------------------------------
// Padded shard-delta rows: the stride is cache-line padded, rows start on
// line boundaries (no false sharing between adjacent shards), and the
// padded layout still merges exactly.

TEST(Multicore, ShardDeltaRowsAreCacheLinePadded) {
  constexpr std::size_t line = shard_deltas::row_align_bytes;
  shard_deltas d;
  d.reset(5, 33);  // n deliberately not line-aligned
  EXPECT_GE(d.row_stride(), 33u);
  EXPECT_EQ(d.row_stride() * sizeof(std::uint16_t) % line, 0u);
  for (std::size_t s = 0; s < 5; ++s) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.row(s)) % line, 0u) << "row " << s;
    if (s > 0) {
      EXPECT_EQ(d.row(s) - d.row(s - 1), static_cast<std::ptrdiff_t>(d.row_stride()));
    }
  }
  // The padded layout still sums and clears per row exactly.
  for (std::size_t s = 0; s < 5; ++s) {
    for (bin_index i = 0; i < 33; ++i) d.row(s)[i] = static_cast<std::uint16_t>(s + 1);
  }
  std::vector<std::uint32_t> merged;
  d.sum_rows(merged);
  for (const std::uint32_t v : merged) EXPECT_EQ(v, 1u + 2u + 3u + 4u + 5u);
  d.clear_row(2);
  d.sum_rows(merged);
  for (const std::uint32_t v : merged) EXPECT_EQ(v, 1u + 2u + 4u + 5u);
}

// ---------------------------------------------------------------------------
// Host detection and perf counters: both must degrade gracefully (no PMU,
// containers, non-Linux) rather than fail.

TEST(Multicore, HostInfoIsSane) {
  const host_info host = detect_host_info();
  EXPECT_GE(host.hardware_concurrency, 1u);
  EXPECT_GE(host.cache_line_size, 16u);
  EXPECT_EQ(host.cache_line_size & (host.cache_line_size - 1), 0u);  // power of two
}

TEST(Multicore, PerfCountersMeasureOrReportUnavailable) {
  perf_counter_set counters;
  counters.start();
  // A little real work so cycles/instructions are nonzero when a PMU exists.
  volatile std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < 100000; ++i) sink = sink + i * i;
  const perf_sample sample = counters.stop();
  EXPECT_EQ(sample.available, counters.available());
  if (sample.available) {
    EXPECT_GT(sample.cycles, 0.0);
    EXPECT_GT(sample.instructions, 0.0);
    EXPECT_GT(sample.ipc(), 0.0);
  } else {
    EXPECT_EQ(sample.cycles, 0.0);
    EXPECT_EQ(sample.instructions, 0.0);
  }
}

}  // namespace
