// The intra-run shard-parallel batch engine and its building blocks:
// block-RNG sampling, the compact 8-bit snapshot, per-shard delta rows
// with the fixed-order merge, and the two determinism contracts --
//   (1) one (seed, shard count) is bit-identical for ANY thread count,
//   (2) the parallel path agrees with the serial bulk path on every
//       distributional invariant (it draws different randomness, so the
//       agreement is statistical, never bitwise).
#include <gtest/gtest.h>

#include <numeric>

#include "test_support.hpp"

namespace {

using namespace nb;

// ---------------------------------------------------------------------------
// Block RNG sampling.

TEST(BoundedBlock, MatchesSerialBoundedDrawForDraw) {
  // Identical accept/reject rule: from the same generator state the block
  // fill must produce the same samples AND leave the generator in the same
  // position as successive bounded() calls.
  for (const std::uint64_t bound : {2ULL, 3ULL, 7ULL, 1000ULL, (1ULL << 32) - 5}) {
    rng_t serial(99);
    rng_t block(99);
    std::array<std::uint64_t, 257> got{};
    bounded_block(block, bound, got.data(), got.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], bounded(serial, bound)) << "bound " << bound << " sample " << i;
    }
    EXPECT_EQ(serial.next(), block.next()) << "entropy consumption diverged at bound " << bound;
  }
}

TEST(BoundedBlock, RespectsBoundAndCoversSupport) {
  rng_t rng(7);
  std::array<std::uint32_t, 4096> buf{};
  bounded_block(rng, 10, buf.data(), buf.size());
  std::array<int, 10> hits{};
  for (const std::uint32_t v : buf) {
    ASSERT_LT(v, 10u);
    ++hits[v];
  }
  for (int h : hits) EXPECT_GT(h, 0);  // ~410 expected per value
}

TEST(ShardStreamSeed, IndependentPerShardAndWindow) {
  // Distinct (token, shard) pairs must give distinct seeds, and the scheme
  // must match the documented derive_seed layering.
  EXPECT_EQ(shard_stream_seed(42, 3), derive_seed(42, 3));
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t token : {1ULL, 2ULL}) {
    for (std::uint64_t s = 0; s < 8; ++s) seeds.push_back(shard_stream_seed(token, s));
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

// ---------------------------------------------------------------------------
// Compact snapshot.

TEST(CompactSnapshot, OffsetFromBaseRoundTrip) {
  const std::vector<load_t> loads = {7, 3, 3, 12, 258, 100};
  compact_snapshot snap;
  ASSERT_TRUE(snap.assign(loads));
  EXPECT_TRUE(snap.ok());
  EXPECT_EQ(snap.base(), 3);
  EXPECT_EQ(snap.size(), loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    EXPECT_EQ(static_cast<load_t>(snap.off(static_cast<bin_index>(i))) + snap.base(), loads[i]);
  }
}

TEST(CompactSnapshot, SaturatedSpanIsRejected) {
  compact_snapshot snap;
  EXPECT_TRUE(snap.assign({0, 255}));   // span exactly 255: still exact
  EXPECT_FALSE(snap.assign({0, 256}));  // span 256: would clamp, must refuse
  EXPECT_FALSE(snap.ok());
  EXPECT_TRUE(snap.assign({1000, 1000, 1255}));  // large base is fine
  EXPECT_EQ(snap.base(), 1000);
}

// ---------------------------------------------------------------------------
// Shard deltas and the merged increment application.

TEST(ShardDeltas, FixedOrderMergeSumsRows) {
  shard_deltas d;
  d.reset(3, 5);
  for (std::size_t s = 0; s < 3; ++s) {
    for (bin_index i = 0; i < 5; ++i) d.row(s)[i] = static_cast<std::uint16_t>(10 * s + i);
  }
  std::vector<std::uint32_t> merged;
  d.sum_rows(merged);
  ASSERT_EQ(merged.size(), 5u);
  for (bin_index i = 0; i < 5; ++i) EXPECT_EQ(merged[i], 3 * i + 30);
  // Range-wise sums (the engine's concurrent merge) agree with the whole.
  std::vector<std::uint32_t> ranged(5, 777);
  d.sum_rows(ranged, 0, 2);
  d.sum_rows(ranged, 2, 5);
  EXPECT_EQ(ranged, merged);
  // Merged counts widen past 16 bits even though rows are 16-bit.
  shard_deltas wide;
  wide.reset(4, 1);
  for (std::size_t s = 0; s < 4; ++s) wide.row(s)[0] = 65535;
  std::vector<std::uint32_t> wide_sum;
  wide.sum_rows(wide_sum);
  EXPECT_EQ(wide_sum[0], 4u * 65535u);
  // reset zeroes the rows again.
  d.reset(3, 5);
  d.sum_rows(merged);
  for (const std::uint32_t v : merged) EXPECT_EQ(v, 0u);
}

TEST(LoadState, ApplyIncrementsMatchesAllocateLoop) {
  load_state bulk(6);
  load_state serial(6);
  const std::vector<std::uint32_t> inc = {3, 0, 1, 7, 0, 2};
  bulk.apply_increments(inc);
  for (bin_index i = 0; i < 6; ++i) {
    for (std::uint32_t k = 0; k < inc[i]; ++k) serial.allocate(i);
  }
  EXPECT_EQ(bulk.loads(), serial.loads());
  EXPECT_EQ(bulk.balls(), serial.balls());
  EXPECT_EQ(bulk.max_load(), serial.max_load());
  EXPECT_EQ(bulk.min_load(), serial.min_load());
  EXPECT_EQ(bulk.overloaded_count(), serial.overloaded_count());
  EXPECT_EQ(bulk.sorted_normalized_desc(), serial.sorted_normalized_desc());
  EXPECT_THROW(bulk.apply_increments({1, 2}), contract_error);  // wrong size
}

// ---------------------------------------------------------------------------
// The engine: determinism contract (1) -- thread count never matters.

std::vector<load_t> parallel_run_loads(std::size_t threads, std::size_t shards, bin_count n,
                                       step_count b, step_count m, std::uint64_t seed,
                                       step_count min_window = 1) {
  b_batch process(n, b);
  rng_t rng(seed);
  shard_engine engine(shard_options{.threads = threads, .shards = shards, .min_window = min_window});
  step_many_parallel(process, rng, m, engine);
  return process.state().loads();
}

TEST(ShardEngine, BitIdenticalAcrossThreadCounts) {
  const bin_count n = 256;
  const step_count m = 16 * 256;
  const auto t1 = parallel_run_loads(1, 8, n, n, m, 4242);
  const auto t2 = parallel_run_loads(2, 8, n, n, m, 4242);
  const auto t8 = parallel_run_loads(8, 8, n, n, m, 4242);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
  EXPECT_EQ(nb::testing::total_balls(t1), m);
  // Different seeds still give different runs (the engine is not inert).
  EXPECT_NE(t1, parallel_run_loads(4, 8, n, n, m, 4243));
}

TEST(ShardEngine, BoundaryAlignedChunkingInvariance) {
  // Call-size cuts that land on window (batch) boundaries do not change
  // the window sequence, so the same windows draw the same tokens in the
  // same master-stream order: one whole-run call and boundary-aligned
  // chunked calls are bit-identical.  (Cuts INSIDE a window split it into
  // smaller windows and legitimately change the drawn randomness -- the
  // chunk pattern is part of the parallel sampling contract, which is why
  // the drivers checkpoint at multiples of the batch size.)
  const bin_count n = 128;
  b_batch whole(n, n);
  b_batch pieces(n, n);
  rng_t rng_a(5);
  rng_t rng_b(5);
  shard_engine engine(shard_options{.threads = 2, .shards = 4, .min_window = 1});
  step_many_parallel(whole, rng_a, 1280, engine);
  for (const step_count batches : {1, 3, 2, 4}) {
    step_many_parallel(pieces, rng_b, batches * static_cast<step_count>(n), engine);
  }
  EXPECT_EQ(whole.state().loads(), pieces.state().loads());
  EXPECT_EQ(rng_a.next(), rng_b.next());  // same number of window tokens
}

TEST(ShardEngine, SnapshotRefreshMatchesTrueLoadsAtBoundary) {
  const bin_count n = 64;
  b_batch process(n, n);
  rng_t rng(11);
  shard_engine engine(shard_options{.threads = 2, .shards = 4, .min_window = 1});
  step_many_parallel(process, rng, 5 * n, engine);  // ends exactly on a boundary
  for (bin_index i = 0; i < n; ++i) {
    EXPECT_EQ(process.reported_load(i), process.state().load(i)) << "stale bin " << i;
  }
  // Mid-batch, the snapshot must still show the batch-start loads: run half
  // a batch more and check the snapshot did NOT move.
  const auto frozen = process.state().loads();
  step_many_parallel(process, rng, n / 2, engine);
  for (bin_index i = 0; i < n; ++i) {
    EXPECT_EQ(process.reported_load(i), frozen[i]) << "snapshot moved mid-batch, bin " << i;
  }
}

// ---------------------------------------------------------------------------
// The engine: serial fallbacks are bit-identical to the serial bulk path.

TEST(ShardEngine, UndersizedWindowsFallBackToSerialExactly) {
  // min_window larger than every batch: the engine must walk the run with
  // the serial fused loop on the master stream -- bit-identical to
  // step_many, including the generator position afterwards.
  b_batch parallel(32, 32);
  b_batch serial(32, 32);
  rng_t rng_a(21);
  rng_t rng_b(21);
  shard_engine engine(shard_options{.threads = 4, .shards = 4, .min_window = 1 << 20});
  step_many_parallel(parallel, rng_a, 3210, engine);
  step_many(serial, rng_b, 3210);
  EXPECT_EQ(parallel.state().loads(), serial.state().loads());
  EXPECT_EQ(rng_a.next(), rng_b.next());
}

TEST(ShardEngine, WindowlessProcessesFallBackToSerialExactly) {
  // tau-Delay models only the probe (snapshot_window() == 0): sliding
  // windows never freeze.  two_choice has no window API at all.  Both must
  // take the serial path through the engine, bit for bit.
  tau_delay<delay_adversarial> delay_par(32, 9);
  tau_delay<delay_adversarial> delay_ser(32, 9);
  rng_t rng_a(31);
  rng_t rng_b(31);
  shard_engine engine(shard_options{.threads = 4, .shards = 4, .min_window = 1});
  step_many_parallel(delay_par, rng_a, 2000, engine);
  step_many(delay_ser, rng_b, 2000);
  EXPECT_EQ(delay_par.state().loads(), delay_ser.state().loads());
  EXPECT_EQ(rng_a.next(), rng_b.next());

  two_choice tc_par(32);
  two_choice tc_ser(32);
  rng_t rng_c(32);
  rng_t rng_d(32);
  step_many_parallel(tc_par, rng_c, 2000, engine);
  step_many(tc_ser, rng_d, 2000);
  EXPECT_EQ(tc_par.state().loads(), tc_ser.state().loads());
}

TEST(ShardEngine, TypeErasedRouteMatchesTemplateRoute) {
  // any_process must dispatch into the same engine code path as the
  // concrete type: identical seeds, options and chunking => identical runs.
  const bin_count n = 128;
  const step_count m = 10 * n;
  b_batch direct(n, n);
  any_process erased{b_batch(n, n)};
  rng_t rng_a(77);
  rng_t rng_b(77);
  shard_engine engine(shard_options{.threads = 2, .shards = 4, .min_window = 1});
  step_many_parallel(direct, rng_a, m, engine);
  step_many_parallel(erased, rng_b, m, engine);
  EXPECT_EQ(direct.state().loads(), erased.state().loads());
}

// ---------------------------------------------------------------------------
// Determinism contract (2): distributional parity with the serial path.

TEST(ShardEngine, GapDistributionMatchesSerialBulkPath) {
  // Same configuration, independent seeds: mean gap over repetitions of
  // the parallel path must agree with the serial path well within the
  // run-to-run spread (b = n, so both are one-choice-like per batch with
  // two-choice correction across batches; gaps concentrate tightly).
  const bin_count n = 100;
  const step_count m = 100 * n;
  const std::size_t runs = 24;
  double serial_mean = 0.0;
  double parallel_mean = 0.0;
  for (std::size_t r = 0; r < runs; ++r) {
    b_batch serial(n, n);
    rng_t rng_s(derive_seed(1000, r));
    step_many(serial, rng_s, m);
    serial_mean += serial.state().gap();

    b_batch parallel(n, n);
    rng_t rng_p(derive_seed(2000, r));
    shard_engine engine(shard_options{.threads = 2, .shards = 4, .min_window = 1});
    step_many_parallel(parallel, rng_p, m, engine);
    parallel_mean += parallel.state().gap();
    EXPECT_EQ(parallel.state().balls(), m);
  }
  serial_mean /= static_cast<double>(runs);
  parallel_mean /= static_cast<double>(runs);
  // Gaps at this configuration sit around 4-6 with spread well under 1;
  // a 1.5 tolerance on the means catches real distributional drift while
  // staying far from flaky.
  EXPECT_NEAR(serial_mean, parallel_mean, 1.5);
}

// ---------------------------------------------------------------------------
// Driver integration.

TEST(ShardEngine, SimulateParallelAndRepeatRouting) {
  b_batch process(64, 64);
  rng_t rng(3);
  shard_engine engine(shard_options{.threads = 2, .shards = 4, .min_window = 1});
  const auto result = simulate_parallel(process, 640, rng, engine);
  EXPECT_EQ(result.balls, 640);
  EXPECT_DOUBLE_EQ(result.gap, process.state().gap());

  // threads_per_run > 0 routes run_repeated through the engine; results
  // stay deterministic in the outer thread count AND the inner one.  The
  // batch (8192) clears the driver's default min_window, so the runs
  // genuinely take the parallel windows.
  repeat_options opt;
  opt.runs = 4;
  opt.master_seed = 9;
  opt.threads = 2;
  opt.threads_per_run = 2;
  opt.shards = 4;
  const auto a = run_repeated([&] { return any_process(b_batch(64, 8192)); }, 6400, opt);
  opt.threads = 1;
  opt.threads_per_run = 1;
  const auto b = run_repeated([&] { return any_process(b_batch(64, 8192)); }, 6400, opt);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t r = 0; r < a.runs.size(); ++r) {
    EXPECT_EQ(a.runs[r].max_load, b.runs[r].max_load);
    EXPECT_DOUBLE_EQ(a.runs[r].gap, b.runs[r].gap);
  }
  EXPECT_EQ(a.gap_histogram.entries(), b.gap_histogram.entries());
}

TEST(ShardEngine, RunCeilingUsesNamedConstant) {
  two_choice p(4);
  rng_t rng(1);
  EXPECT_THROW(static_cast<void>(simulate(p, max_run_balls + 1, rng)), contract_error);
  shard_engine engine(shard_options{.threads = 1});
  EXPECT_THROW(static_cast<void>(simulate_parallel(p, max_run_balls + 1, rng, engine)),
               contract_error);
}

}  // namespace
