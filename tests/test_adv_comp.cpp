// Tests for the g-Adv-Comp setting and its adversary strategies.
#include <gtest/gtest.h>

#include <cmath>

#include "test_support.hpp"

namespace {

using namespace nb;
using nb::testing::mean_gap_of;
using nb::testing::run_and_snapshot;
using nb::testing::total_balls;

// ---------------------------------------------------------------------------
// Strategy-level unit tests: decide() is called only for |diff| <= g, so we
// can probe it directly on crafted load states.

load_state crafted_state() {
  load_state s(4);
  // loads: bin0 = 3, bin1 = 1, bin2 = 1, bin3 = 0 (avg = 1.25)
  for (int i = 0; i < 3; ++i) s.allocate(0);
  s.allocate(1);
  s.allocate(2);
  return s;
}

TEST(AdversaryStrategy, GreedyReverserPicksHeavier) {
  const auto s = crafted_state();
  rng_t rng(1);
  greedy_reverser strategy;
  EXPECT_EQ(strategy.decide(0, 1, s, rng), 0u);
  EXPECT_EQ(strategy.decide(1, 0, s, rng), 0u);
  EXPECT_EQ(strategy.decide(3, 1, s, rng), 1u);
}

TEST(AdversaryStrategy, GreedyReverserTieIsFairCoin) {
  const auto s = crafted_state();
  rng_t rng(2);
  greedy_reverser strategy;
  int first = 0;
  for (int i = 0; i < 2000; ++i) {
    if (strategy.decide(1, 2, s, rng) == 1u) ++first;
  }
  EXPECT_NEAR(first / 2000.0, 0.5, 0.05);
}

TEST(AdversaryStrategy, AlwaysCorrectPicksLighter) {
  const auto s = crafted_state();
  rng_t rng(3);
  always_correct strategy;
  EXPECT_EQ(strategy.decide(0, 1, s, rng), 1u);
  EXPECT_EQ(strategy.decide(3, 0, s, rng), 3u);
}

TEST(AdversaryStrategy, RandomDecisionIsFair) {
  const auto s = crafted_state();
  rng_t rng(4);
  random_decision strategy;
  int first = 0;
  for (int i = 0; i < 2000; ++i) {
    if (strategy.decide(0, 3, s, rng) == 0u) ++first;
  }
  EXPECT_NEAR(first / 2000.0, 0.5, 0.05);
}

TEST(AdversaryStrategy, IndexBiasIsDeterministic) {
  const auto s = crafted_state();
  rng_t rng(5);
  index_bias strategy;
  EXPECT_EQ(strategy.decide(2, 3, s, rng), 2u);
  EXPECT_EQ(strategy.decide(3, 2, s, rng), 2u);
}

TEST(AdversaryStrategy, OverloadBoosterRevertsOnlyOntoOverloadedBins) {
  const auto s = crafted_state();  // avg 1.25; bin0 (3) overloaded, bins 1,2 (1) not
  rng_t rng(6);
  overload_booster strategy;
  // Heavier bin overloaded -> reverse (pick heavier).
  EXPECT_EQ(strategy.decide(0, 1, s, rng), 0u);
  // Heavier bin (load 1) underloaded -> play correct (pick lighter bin3).
  EXPECT_EQ(strategy.decide(1, 3, s, rng), 3u);
}

// ---------------------------------------------------------------------------
// Process-level semantics.

TEST(GAdvComp, RejectsNegativeG) { EXPECT_THROW(g_bounded(8, -1), nb::contract_error); }

TEST(GAdvComp, ConservesBalls) {
  EXPECT_EQ(total_balls(run_and_snapshot(g_bounded(64, 3), 5000, 7)), 5000);
  EXPECT_EQ(total_balls(run_and_snapshot(g_myopic_comp(64, 3), 5000, 8)), 5000);
}

TEST(GAdvComp, ComparisonsBeyondGAreAlwaysCorrect) {
  // Mirror the RNG to observe the sampled pair; whenever the pre-step load
  // difference exceeds g the allocation must go to the lighter bin.
  const bin_count n = 16;  // power of two: bounded() consumes exactly 1 draw
  const load_t g = 2;
  g_bounded p(n, g);
  rng_t rng(9);
  rng_t mirror(9);
  int checked = 0;
  for (int t = 0; t < 20000; ++t) {
    const auto before = p.state().loads();
    const auto i1 = static_cast<bin_index>(bounded(mirror, n));
    const auto i2 = static_cast<bin_index>(bounded(mirror, n));
    p.step(rng);
    const auto after = p.state().loads();
    bin_index chosen = 0;
    for (bin_index i = 0; i < n; ++i) {
      if (after[i] != before[i]) chosen = i;
    }
    const load_t diff = std::abs(before[i1] - before[i2]);
    if (diff > g) {
      const bin_index lighter = before[i1] < before[i2] ? i1 : i2;
      ASSERT_EQ(chosen, lighter) << "step " << t;
    } else if (before[i1] == before[i2]) {
      mirror.next();  // greedy strategy flips a coin on exact ties
    }
    ASSERT_TRUE(chosen == i1 || chosen == i2);
  }
  // The run must actually have exercised the uncontrolled branch.
  EXPECT_GT(p.state().gap(), static_cast<double>(g) / 2.0);
  (void)checked;
}

TEST(GAdvComp, GapGrowsWithG) {
  const step_count m = 100000;
  const double g2 = mean_gap_of([] { return g_bounded(256, 2); }, m, 10, 10);
  const double g8 = mean_gap_of([] { return g_bounded(256, 8); }, m, 10, 11);
  const double g16 = mean_gap_of([] { return g_bounded(256, 16); }, m, 10, 12);
  EXPECT_LT(g2, g8);
  EXPECT_LT(g8, g16);
}

TEST(GAdvComp, BoundedAtLeastAsBadAsMyopic) {
  // The greedy adversary always reverses; the myopic one only half the
  // time, so g-Bounded's gap dominates (paper: both Theta(g) for large g,
  // bounded constant larger; see Fig 12.1 ordering).
  const step_count m = 100000;
  const double bounded_gap = mean_gap_of([] { return g_bounded(256, 8); }, m, 15, 13);
  const double myopic_gap = mean_gap_of([] { return g_myopic_comp(256, 8); }, m, 15, 14);
  EXPECT_GE(bounded_gap + 0.5, myopic_gap);
}

TEST(GAdvComp, EveryAdversaryAtLeastTwoChoice) {
  // Observation 11.1: no adversary beats noise-free Two-Choice.
  const step_count m = 100000;
  const double tc = mean_gap_of([] { return two_choice(256); }, m, 15, 15);
  const double strategies[] = {
      mean_gap_of([] { return g_bounded(256, 4); }, m, 15, 16),
      mean_gap_of([] { return g_myopic_comp(256, 4); }, m, 15, 17),
      mean_gap_of([] { return g_adv_comp<overload_booster>(256, 4); }, m, 15, 18),
      mean_gap_of([] { return g_adv_comp<index_bias>(256, 4); }, m, 15, 19),
  };
  for (const double s : strategies) EXPECT_GE(s + 0.35, tc);
}

TEST(GAdvComp, MyopicGapStaysBelowLinearBound) {
  // Theorem 5.12 shape: Gap = O(g + log n).  Use a generous constant.
  const bin_count n = 256;
  const step_count m = 200000;
  for (const load_t g : {2, 4, 8, 16}) {
    const double gap = mean_gap_of([&] { return g_myopic_comp(n, g); }, m, 5, 20 + g);
    EXPECT_LE(gap, 4.0 * (static_cast<double>(g) + std::log(n))) << "g=" << g;
  }
}

TEST(GAdvComp, GapScalesRoughlyLinearlyForLargeG) {
  // For g >= log n the tight bound is Theta(g): doubling g should roughly
  // double the gap (allow generous slack).
  const step_count m = 200000;
  const double g16 = mean_gap_of([] { return g_bounded(256, 16); }, m, 10, 30);
  const double g32 = mean_gap_of([] { return g_bounded(256, 32); }, m, 10, 31);
  EXPECT_GT(g32 / g16, 1.4);
  EXPECT_LT(g32 / g16, 2.8);
}

TEST(GAdvComp, NameEncodesStrategyAndG) {
  EXPECT_EQ(g_bounded(8, 3).name(), "g-bounded[g=3]");
  EXPECT_EQ(g_myopic_comp(8, 5).name(), "g-myopic-comp[g=5]");
}

TEST(GAdvComp, SelfStabilizesAfterAdversarialPrefix) {
  // The self-stabilization property behind Theorem 5.12's recovery phase:
  // the phase_switch adversary reverses every controllable comparison for
  // the first 100k balls (poisoning the load vector), then plays correctly.
  // The gap must collapse back towards the Two-Choice level.
  const bin_count n = 256;
  const step_count poison_until = 100000;
  g_adv_comp<phase_switch> p(n, 20, phase_switch{poison_until});
  rng_t rng(91);
  for (step_count t = 0; t < poison_until; ++t) p.step(rng);
  const double poisoned_gap = p.state().gap();
  for (step_count t = 0; t < poison_until; ++t) p.step(rng);
  const double recovered_gap = p.state().gap();
  EXPECT_GT(poisoned_gap, 10.0);
  EXPECT_LT(recovered_gap, poisoned_gap / 2.0);
  EXPECT_LT(recovered_gap, 8.0);
}

}  // namespace
