// Tests for the baseline (noise-free) processes: One-Choice, Two-Choice,
// d-Choice and (1+beta).
#include <gtest/gtest.h>

#include "test_support.hpp"

namespace {

using namespace nb;
using nb::testing::mean_gap_of;
using nb::testing::run_and_snapshot;
using nb::testing::total_balls;
using nb::testing::traces_identical;

TEST(OneChoice, ConservesBalls) {
  const auto loads = run_and_snapshot(one_choice(50), 1000, 1);
  EXPECT_EQ(total_balls(loads), 1000);
}

TEST(OneChoice, DeterministicForSeed) {
  EXPECT_EQ(run_and_snapshot(one_choice(50), 500, 3), run_and_snapshot(one_choice(50), 500, 3));
  EXPECT_NE(run_and_snapshot(one_choice(50), 500, 3), run_and_snapshot(one_choice(50), 500, 4));
}

TEST(OneChoice, HitsEveryBinEventually) {
  const auto loads = run_and_snapshot(one_choice(10), 2000, 5);
  for (const auto x : loads) EXPECT_GT(x, 0);
}

TEST(TwoChoice, ConservesBalls) {
  const auto loads = run_and_snapshot(two_choice(50), 1000, 1);
  EXPECT_EQ(total_balls(loads), 1000);
}

TEST(TwoChoice, NeverAllocatesToStrictlyHeavierBin) {
  // Invariant check at every step via a mirrored manual simulation.
  const bin_count n = 16;
  two_choice p(n);
  rng_t rng(11);
  rng_t mirror(11);
  for (int t = 0; t < 5000; ++t) {
    const auto before = p.state().loads();
    const auto i1 = static_cast<bin_index>(bounded(mirror, n));
    const auto i2 = static_cast<bin_index>(bounded(mirror, n));
    p.step(rng);
    const auto after = p.state().loads();
    bin_index chosen = 0;
    for (bin_index i = 0; i < n; ++i) {
      if (after[i] != before[i]) chosen = i;
    }
    EXPECT_TRUE(chosen == i1 || chosen == i2);
    const bin_index other = (chosen == i1) ? i2 : i1;
    EXPECT_LE(before[chosen], before[other]) << "allocated to the heavier sampled bin";
    if (before[i1] == before[i2]) mirror.next();  // the tie-break coin
  }
}

TEST(TwoChoice, MuchBetterBalancedThanOneChoice) {
  const step_count m = 50000;
  const double one = mean_gap_of([] { return one_choice(500); }, m, 10, 21);
  const double two = mean_gap_of([] { return two_choice(500); }, m, 10, 22);
  EXPECT_LT(two * 4.0, one);  // the power of two choices
}

TEST(TwoChoice, GapStaysNearLogLogN) {
  // n = 1024, m = 100n: w.h.p. gap is log2 log n + O(1) ~ 3.3.
  const double gap = mean_gap_of([] { return two_choice(1024); }, 102400, 10, 33);
  EXPECT_GE(gap, 1.0);
  EXPECT_LE(gap, 6.0);
}

TEST(DChoice, RejectsBadD) { EXPECT_THROW(d_choice(10, 0), nb::contract_error); }

TEST(DChoice, DEqualsOneIsExactlyOneChoice) {
  EXPECT_TRUE(traces_identical(d_choice(64, 1), one_choice(64), 4000, 17));
}

TEST(DChoice, DEqualsTwoMatchesTwoChoiceDistributionally) {
  const step_count m = 50000;
  const double d2 = mean_gap_of([] { return d_choice(256, 2); }, m, 20, 41);
  const double tc = mean_gap_of([] { return two_choice(256); }, m, 20, 42);
  EXPECT_NEAR(d2, tc, 0.5);
}

TEST(DChoice, LargerDNeverWorse) {
  const step_count m = 20000;
  const double d2 = mean_gap_of([] { return d_choice(128, 2); }, m, 20, 51);
  const double d4 = mean_gap_of([] { return d_choice(128, 4); }, m, 20, 52);
  EXPECT_LE(d4, d2 + 0.3);
}

TEST(DChoice, ConservesBalls) {
  const auto loads = run_and_snapshot(d_choice(32, 5), 999, 2);
  EXPECT_EQ(total_balls(loads), 999);
}

TEST(OnePlusBeta, RejectsBetaOutsideUnitInterval) {
  EXPECT_THROW(one_plus_beta(10, -0.1), nb::contract_error);
  EXPECT_THROW(one_plus_beta(10, 1.1), nb::contract_error);
}

TEST(OnePlusBeta, BetaZeroIsExactlyOneChoice) {
  EXPECT_TRUE(traces_identical(one_plus_beta(64, 0.0), one_choice(64), 4000, 19));
}

TEST(OnePlusBeta, BetaOneIsExactlyTwoChoice) {
  EXPECT_TRUE(traces_identical(one_plus_beta(64, 1.0), two_choice(64), 4000, 23));
}

TEST(OnePlusBeta, GapInterpolatesBetweenExtremes) {
  const step_count m = 50000;
  const double one = mean_gap_of([] { return one_choice(256); }, m, 10, 61);
  const double half = mean_gap_of([] { return one_plus_beta(256, 0.5); }, m, 10, 62);
  const double two = mean_gap_of([] { return two_choice(256); }, m, 10, 63);
  EXPECT_LT(two, half);
  EXPECT_LT(half, one);
}

TEST(Names, AreDescriptive) {
  EXPECT_EQ(one_choice(4).name(), "one-choice");
  EXPECT_EQ(two_choice(4).name(), "two-choice");
  EXPECT_EQ(d_choice(4, 3).name(), "3-choice");
  EXPECT_NE(one_plus_beta(4, 0.25).name().find("(1+beta)"), std::string::npos);
}

TEST(Reset, AllowsReuseWithIdenticalResults) {
  two_choice p(32);
  rng_t rng(71);
  for (int t = 0; t < 1000; ++t) p.step(rng);
  const auto first = p.state().loads();
  p.reset();
  EXPECT_EQ(p.state().balls(), 0);
  rng_t rng2(71);
  for (int t = 0; t < 1000; ++t) p.step(rng2);
  EXPECT_EQ(p.state().loads(), first);
}

}  // namespace
