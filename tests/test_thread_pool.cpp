// thread_pool and parallel_for: lifecycle, wait_idle under concurrent
// submitters, the size floor, and the determinism contract the simulation
// drivers rely on (results depend on indices, never on thread count).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "test_support.hpp"

namespace {

using namespace nb;

TEST(ThreadPool, SizeFloorOfOne) {
  // 0 means "hardware concurrency", which may itself report 0 -- the pool
  // must still come up with at least one worker or submits would hang.
  thread_pool automatic(0);
  EXPECT_GE(automatic.size(), 1u);
  thread_pool three(3);
  EXPECT_EQ(three.size(), 3u);
  thread_pool one(1);
  EXPECT_EQ(one.size(), 1u);
}

TEST(ThreadPool, WaitIdleDrainsAllTasks) {
  thread_pool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
  // The pool stays usable after an idle barrier.
  pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 101);
}

TEST(ThreadPool, WaitIdleUnderConcurrentSubmits) {
  // Several external threads feed the pool while the main thread blocks on
  // wait_idle: the barrier must neither deadlock nor miss work that was
  // already enqueued by the time the submitters were joined.
  thread_pool pool(3);
  std::atomic<int> counter{0};
  constexpr int kSubmitters = 4;
  constexpr int kTasksEach = 200;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &counter] {
      for (int i = 0; i < kTasksEach; ++i) {
        pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  // Interleave idle barriers with the ongoing submissions; each call must
  // return (in-flight work only ever drains) without losing tasks.
  pool.wait_idle();
  for (auto& t : submitters) t.join();
  pool.wait_idle();
  EXPECT_EQ(counter.load(), kSubmitters * kTasksEach);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  thread_pool pool(2);
  pool.wait_idle();  // nothing submitted: must not block
  SUCCEED();
}

TEST(ParallelFor, DeterministicAcrossThreadCounts) {
  // The drivers' contract: body(i) results depend only on i, so any thread
  // count -- including the inlined threads == 1 path -- fills identically.
  constexpr std::size_t kCount = 500;
  const auto fill = [](std::size_t threads) {
    std::vector<std::uint64_t> out(kCount, 0);
    parallel_for(kCount, threads, [&out](std::size_t i) { out[i] = derive_seed(123, i); });
    return out;
  };
  const auto t1 = fill(1);
  const auto t2 = fill(2);
  const auto t8 = fill(8);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
  for (std::size_t i = 1; i < kCount; ++i) EXPECT_NE(t1[i], t1[0]);
}

TEST(ParallelFor, EdgeCounts) {
  std::atomic<int> ran{0};
  parallel_for(0, 4, [&ran](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 0);
  parallel_for(1, 4, [&ran](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 1);
  EXPECT_THROW(parallel_for(3, 2, nullptr), contract_error);
}

}  // namespace
