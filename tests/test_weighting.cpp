// Tests for the generalized allocation model (PR 5): ball weightings,
// alias-table bin sampling, the weight-based load_state, and the contract
// that the default unit/uniform configuration is bit-identical to the
// historical code while the generalized paths stay a pure function of
// (config, model, seed) across engines, thread counts and ISA backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "test_support.hpp"

namespace {

using namespace nb;

// ---------------------------------------------------------------------------
// ball_weighting.

TEST(BallWeighting, UnitAndFixedConsumeNoRandomness) {
  rng_t rng(7);
  const std::uint64_t before = rng.next();
  rng_t replay(7);
  (void)before;

  const ball_weighting unit = ball_weighting::unit();
  const ball_weighting fixed = ball_weighting::fixed(64);
  rng_t probe(7);
  EXPECT_EQ(unit.draw(probe), 1);
  EXPECT_EQ(fixed.draw(probe), 64);
  // The generator was never touched: its next output equals a fresh
  // generator's first output.
  EXPECT_EQ(probe.next(), replay.next());
}

TEST(BallWeighting, TwoPointDrawsBothValuesWithRoughlyTheRightMass) {
  const ball_weighting w = ball_weighting::two_point(1, 100, 0.25);
  rng_t rng(11);
  int hi = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const weight_t v = w.draw(rng);
    ASSERT_TRUE(v == 1 || v == 100);
    if (v == 100) ++hi;
  }
  // p_hi = 0.25; allow ~5 sigma of slack (sigma ~ sqrt(p(1-p)/k) ~ 0.003).
  EXPECT_NEAR(static_cast<double>(hi) / kDraws, 0.25, 0.02);
  EXPECT_EQ(w.max_weight(), 100);
  EXPECT_TRUE(w.is_random());
}

TEST(BallWeighting, ParetoDrawsAreInRangeAndHeavyTailed) {
  const weight_t cap = 4096;
  const ball_weighting w = ball_weighting::pareto(1.5, cap);
  rng_t rng(13);
  weight_t max_seen = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const weight_t v = w.draw(rng);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, cap);
    max_seen = std::max(max_seen, v);
  }
  // P(W >= 100) ~ 100^-1.5 = 1e-3, so 50k draws see a 3-digit weight with
  // overwhelming probability -- the tail is actually heavy.
  EXPECT_GT(max_seen, 100);
  EXPECT_EQ(w.max_weight(), cap);
}

TEST(BallWeighting, SpecParsingRoundTrips) {
  EXPECT_TRUE(make_weighting("unit").is_unit());
  EXPECT_EQ(make_weighting("fixed:8").fixed_weight(), 8);
  EXPECT_TRUE(make_weighting("two-point:1,64,0.1").is_random());
  EXPECT_TRUE(make_weighting("pareto:1.5").is_random());
  EXPECT_EQ(make_weighting("pareto:2,100").max_weight(), 100);
  EXPECT_THROW((void)make_weighting("bogus"), contract_error);
  EXPECT_THROW((void)make_weighting("fixed:0"), contract_error);
  EXPECT_THROW((void)make_weighting("fixed:1,2"), contract_error);
  EXPECT_THROW((void)make_weighting("two-point:5,3,0.5"), contract_error);
}

// ---------------------------------------------------------------------------
// alias_table / bin_sampler.

TEST(AliasTable, RealizesTheTargetDistributionExactly) {
  // probabilities() folds slot + alias mass back together; it must equal
  // the normalized input up to floating-point slack.
  const std::vector<double> w = {5.0, 1.0, 3.0, 0.0, 1.0};
  const alias_table table(w);
  const auto p = table.probabilities();
  ASSERT_EQ(p.size(), w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(p[i], w[i] / 10.0, 1e-12) << "bin " << i;
  }
}

TEST(AliasTable, ChiSquaredAgainstZipfTarget) {
  // Distributional sanity of the sampler itself: chi-squared against the
  // target probability vector.  df = n - 1 = 31; the 99.9% quantile of
  // chi2(31) is ~61.1, so a healthy sampler fails with p < 0.001.
  const bin_count n = 32;
  const bin_sampler sampler = make_sampler("zipf:1", n);
  const auto target = sampler.table().probabilities();
  rng_t rng(101);
  constexpr int kDraws = 200000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.sample(rng, n)];
  double chi2 = 0.0;
  for (bin_count i = 0; i < n; ++i) {
    const double expected = target[i] * kDraws;
    ASSERT_GT(expected, 5.0) << "chi-squared needs expected counts > 5";
    const double d = counts[i] - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 61.1) << "alias sampling diverges from the zipf:1 target";
}

TEST(AliasTable, SampleBlockMatchesPerSampleDraws) {
  const bin_count n = 17;
  const bin_sampler sampler = make_sampler("hot:3,0.7", n);
  rng_t a(55);
  rng_t b(55);
  std::vector<bin_index> block(1000);
  sampler.table().sample_block(a, block.data(), block.size());
  for (std::size_t i = 0; i < block.size(); ++i) {
    EXPECT_EQ(block[i], sampler.table().sample(b)) << "draw " << i;
  }
  // Both consumed the stream identically.
  EXPECT_EQ(a.next(), b.next());
}

TEST(BinSampler, UniformMatchesHistoricalBoundedStream) {
  const bin_count n = 1000;
  const bin_sampler uniform = bin_sampler::uniform();
  rng_t a(3);
  rng_t b(3);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(uniform.sample(a, n), static_cast<bin_index>(bounded(b, n)));
  }
}

TEST(BinSampler, SpecParsing) {
  EXPECT_TRUE(make_sampler("uniform", 8).is_uniform());
  EXPECT_EQ(make_sampler("zipf:0.5", 8).bins(), 8u);
  EXPECT_EQ(make_sampler("hot:2,0.9", 8).label(), "hot:2,0.9");
  EXPECT_THROW((void)make_sampler("zipf", 8), contract_error);
  EXPECT_THROW((void)make_sampler("hot:9,0.5", 8), contract_error);
  EXPECT_THROW((void)make_sampler("nope:1", 8), contract_error);
}

// ---------------------------------------------------------------------------
// Registry-wide (unit, uniform) parity: the explicit default model must be
// bit-identical to never touching the model at all, for every registered
// process x the serial per-ball AND fused bulk paths.

TEST(DefaultModelParity, EveryRegisteredKindIsBitIdentical) {
  constexpr bin_count kBins = 64;
  constexpr step_count kBalls = 4000;
  for (const auto& [kind, description] : registered_process_kinds()) {
    process_spec spec;
    spec.kind = kind;
    spec.n = kBins;
    spec.param = (kind == "one-plus-beta") ? 0.5 : 2.0;

    any_process plain = make_process(spec);
    any_process modeled = make_process(spec);
    modeled.set_model(alloc_model{ball_weighting::unit(), bin_sampler::uniform()});

    rng_t rng_a(42);
    rng_t rng_b(42);
    plain.step_many(rng_a, kBalls);
    modeled.step_many(rng_b, kBalls);
    EXPECT_EQ(plain.state().loads(), modeled.state().loads()) << kind;
    EXPECT_EQ(plain.name(), modeled.name()) << kind;

    // Per-ball stepping consumes the same stream as the fused loop.
    any_process per_ball = make_process(spec);
    rng_t rng_c(42);
    for (step_count t = 0; t < kBalls; ++t) per_ball.step(rng_c);
    EXPECT_EQ(per_ball.state().loads(), modeled.state().loads()) << kind;
  }
}

TEST(GeneralizedParity, EveryRegisteredKindRunsWeightedAndSkewed) {
  // The generalized path for every registered kind: fixed weights and a
  // hot-spot sampler, per-ball vs fused bulk bit parity (the step_many
  // contract survives the widened model).
  constexpr bin_count kBins = 48;
  constexpr step_count kBalls = 3000;
  for (const auto& [kind, description] : registered_process_kinds()) {
    process_spec spec;
    spec.kind = kind;
    spec.n = kBins;
    spec.param = (kind == "one-plus-beta") ? 0.5 : 2.0;
    spec.weighting = "fixed:3";
    spec.sampler = "hot:4,0.5";

    any_process bulk = make_process(spec);
    any_process per_ball = make_process(spec);
    rng_t rng_a(7);
    rng_t rng_b(7);
    bulk.step_many(rng_a, kBalls);
    for (step_count t = 0; t < kBalls; ++t) per_ball.step(rng_b);
    EXPECT_EQ(bulk.state().loads(), per_ball.state().loads()) << kind;
    EXPECT_EQ(bulk.state().balls(), kBalls) << kind;
    EXPECT_EQ(bulk.state().total_weight(), kBalls * 3) << kind;
    EXPECT_EQ(nb::testing::total_balls(bulk.state().loads()), kBalls * 3) << kind;
  }
}

TEST(GeneralizedParity, RandomWeightsConserveTotalWeight) {
  process_spec spec;
  spec.kind = "two-choice";
  spec.n = 32;
  spec.weighting = "pareto:1.5,1000";
  any_process p = make_process(spec);
  rng_t rng(9);
  p.step_many(rng, 5000);
  EXPECT_EQ(p.state().balls(), 5000);
  EXPECT_EQ(nb::testing::total_balls(p.state().loads()), p.state().total_weight());
  EXPECT_GT(p.state().total_weight(), 5000);  // heavy tail: some weight > 1
}

// ---------------------------------------------------------------------------
// Weight-based load_state: int64 accounting, overflow guards, wide-span
// fallback.

TEST(WeightedLoadState, ExtremeWeightsAccumulateExactlyInInt64) {
  // The extreme-weight regression surface: once weights replace unit
  // increments, the run's total blows through 32 bits while per-bin loads
  // approach their own 32-bit ceiling; every observable must stay exact.
  load_state s(4);
  const weight_t w = max_ball_weight;  // 2^24
  constexpr int kBalls = 400;          // 100 per bin: loads ~ 1.7e9, near the cap
  for (int i = 0; i < kBalls; ++i) s.allocate(static_cast<bin_index>(i % 4), w);
  EXPECT_EQ(s.balls(), kBalls);
  EXPECT_EQ(s.total_weight(), static_cast<weight_t>(kBalls) * w);  // 6.7e9 > 2^32
  EXPECT_EQ(static_cast<weight_t>(s.load(0)), 100 * w);
  EXPECT_EQ(static_cast<weight_t>(s.max_load()), 100 * w);
  EXPECT_EQ(static_cast<weight_t>(s.min_load()), 100 * w);
  EXPECT_DOUBLE_EQ(s.gap(), 0.0);
  EXPECT_DOUBLE_EQ(s.average_load(), static_cast<double>(100 * w));
  // The Welford inputs downstream of gap()/underload_gap() see exact
  // doubles: total_weight / n is far outside int32 and must not have
  // wrapped on the way.
  EXPECT_GT(s.average_load(), 1.5e9);
}

TEST(WeightedLoadState, PerBinOverflowGuardFires) {
  // A bin marching toward its 32-bit ceiling must throw (not wrap) on the
  // deposit that would cross it -- with the state still consistent.
  load_state s(2);
  const weight_t w = max_ball_weight;
  const int safe = static_cast<int>(std::numeric_limits<load_t>::max() / w);  // 127
  for (int i = 0; i < safe; ++i) s.allocate(0, w);
  EXPECT_THROW(s.allocate(0, w), contract_error);
  EXPECT_EQ(static_cast<weight_t>(s.load(0)), safe * w);
  EXPECT_EQ(s.total_weight(), safe * w);
  // The merged-window path guards identically.
  std::vector<std::uint32_t> add = {1, 0};
  EXPECT_THROW(s.apply_increments(add, w), contract_error);
  add = {0, 1};
  s.apply_increments(add, w);  // the other bin still has room
  EXPECT_EQ(static_cast<weight_t>(s.load(1)), w);
}

TEST(WeightedLoadState, InvalidWeightsRejected) {
  load_state s(2);
  EXPECT_THROW(s.allocate(0, 0), contract_error);
  EXPECT_THROW(s.allocate(0, -5), contract_error);
  EXPECT_THROW(s.allocate(0, max_ball_weight + 1), contract_error);
}

TEST(WeightedLoadState, WideSpanFallsBackToExactScans) {
  // One huge ball blows the dense level window; min/max/sorted queries
  // must degrade to exact scans, not garbage.
  load_state s(8);
  s.allocate(1);  // unit ball first: dense path
  EXPECT_TRUE(s.levels_valid());
  const weight_t w = level_index::max_dense_span + 7;
  s.allocate(3, w);
  EXPECT_FALSE(s.levels_valid());
  EXPECT_EQ(s.max_load(), w);
  EXPECT_EQ(s.min_load(), 0);
  EXPECT_EQ(s.total_weight(), w + 1);
  const auto sorted = s.sorted_normalized_desc();
  ASSERT_EQ(sorted.size(), 8u);
  EXPECT_DOUBLE_EQ(sorted.front(), static_cast<double>(w) - s.average_load());
  EXPECT_DOUBLE_EQ(sorted.back(), 0.0 - s.average_load());
  EXPECT_TRUE(std::is_sorted(sorted.rbegin(), sorted.rend()));
  EXPECT_EQ(s.overloaded_count(), 1u);
  // Unit allocations after saturation stay exact through the scans.
  s.allocate(5);
  EXPECT_EQ(s.min_load(), 0);
  EXPECT_EQ(s.load(5), 1);
  // reset() restores the dense index.
  s.reset();
  EXPECT_TRUE(s.levels_valid());
  EXPECT_EQ(s.total_weight(), 0);
}

TEST(WeightedLoadState, ModerateWeightsKeepTheDenseIndex) {
  // Weighted jumps inside the dense cap keep level queries O(1) and
  // identical to a from-scratch rebuild.
  load_state s(16);
  rng_t rng(3);
  const ball_weighting w = ball_weighting::two_point(1, 37, 0.3);
  for (int i = 0; i < 2000; ++i) {
    deposit(s, w, static_cast<bin_index>(bounded(rng, 16)), rng);
  }
  EXPECT_TRUE(s.levels_valid());
  level_index rebuilt;
  ASSERT_TRUE(rebuilt.rebuild(s.loads()));
  EXPECT_EQ(s.levels().min_level(), rebuilt.min_level());
  EXPECT_EQ(s.levels().max_level(), rebuilt.max_level());
  for (load_t l = rebuilt.min_level(); l <= rebuilt.max_level(); ++l) {
    EXPECT_EQ(s.levels().count_at(l), rebuilt.count_at(l)) << "level " << l;
  }
}

// ---------------------------------------------------------------------------
// Engine invariants for the generalized paths: pure function of
// (config, model, seed); identical across thread counts and ISA backends.

std::vector<load_t> run_weighted_batch_shard(std::size_t threads, kernel_isa isa,
                                             const std::string& weighting,
                                             const std::string& sampler) {
  const bin_count n = 512;
  const step_count m = 100000;
  b_batch process(n, 8192);
  process.set_model(make_model(weighting, sampler, n));
  shard_engine engine(shard_options{.threads = threads, .shards = 8, .min_window = 1024,
                                    .lanes = 4, .isa = isa});
  rng_t rng(77);
  engine.step_many(process, rng, m);
  return process.state().loads();
}

TEST(GeneralizedEngines, ShardEngineThreadAndIsaInvariantUnderAliasSampling) {
  const auto base = run_weighted_batch_shard(1, kernel_isa::scalar, "fixed:2", "zipf:1");
  EXPECT_EQ(base, run_weighted_batch_shard(4, kernel_isa::scalar, "fixed:2", "zipf:1"));
  EXPECT_EQ(base, run_weighted_batch_shard(2, kernel_isa::auto_detect, "fixed:2", "zipf:1"));
  // Sanity: the run moved weight 2 per ball.
  EXPECT_EQ(nb::testing::total_balls(base), 200000);
}

std::vector<load_t> run_weighted_batch_kernel(kernel_isa isa, const std::string& sampler) {
  const bin_count n = 512;
  const step_count m = 100000;
  b_batch process(n, 8192);
  process.set_model(make_model("fixed:2", sampler, n));
  kernel_engine engine(kernel_options{.lanes = 4, .isa = isa, .min_window = 1024});
  rng_t rng(78);
  engine.step_many(process, rng, m);
  return process.state().loads();
}

TEST(GeneralizedEngines, KernelEngineIsaInvariantUnderAliasSampling) {
  const auto scalar = run_weighted_batch_kernel(kernel_isa::scalar, "zipf:1");
  if (kernel_isa_supported(kernel_isa::sse2)) {
    EXPECT_EQ(scalar, run_weighted_batch_kernel(kernel_isa::sse2, "zipf:1"));
  }
  if (kernel_isa_supported(kernel_isa::avx2)) {
    EXPECT_EQ(scalar, run_weighted_batch_kernel(kernel_isa::avx2, "zipf:1"));
  }
  EXPECT_EQ(nb::testing::total_balls(scalar), 200000);
}

TEST(GeneralizedEngines, AliasSamplingSkewsAllocationToHotBins) {
  // Distributional sanity end-to-end: under hot:1,0.9 the hot bin's two
  // candidate samples are both almost always bin 0, so even two-choice
  // must pile weight onto it.
  const bin_count n = 64;
  two_choice p(n);
  p.set_model(make_model("unit", "hot:1,0.9", n));
  rng_t rng(5);
  step_many(p, rng, 20000);
  EXPECT_GT(p.state().load(0), 10000);
}

// ---------------------------------------------------------------------------
// warn_once fallback diagnostics (satellite: no silent scalar fallback).

TEST(GeneralizedEngines, RandomWeightingFallsBackSeriallyWithDiagnostic) {
  const bin_count n = 128;
  const step_count m = 50000;
  b_batch process(n, 8192);
  process.set_model(make_model("pareto:1.5,100", "uniform", n));
  const std::string key = "shard-engine-weighted/" + process.name();

  shard_engine engine(shard_options{.threads = 2, .shards = 4, .min_window = 1024});
  rng_t rng(31);
  engine.step_many(process, rng, m);
  EXPECT_TRUE(warned(key)) << "expected the one-time weighted-fallback diagnostic";

  // The fallback IS the serial fused loop: bit-identical to step_many on
  // the same stream.
  b_batch serial(n, 8192);
  serial.set_model(make_model("pareto:1.5,100", "uniform", n));
  rng_t rng2(31);
  step_many(serial, rng2, m);
  EXPECT_EQ(process.state().loads(), serial.state().loads());
}

TEST(GeneralizedEngines, KernelEngineRandomWeightingFallsBackSeriallyWithDiagnostic) {
  const bin_count n = 128;
  b_batch process(n, 8192);
  process.set_model(make_model("two-point:1,50,0.2", "uniform", n));
  const std::string key = "kernel-engine-weighted/" + process.name();
  kernel_engine engine(kernel_options{.min_window = 1024});
  rng_t rng(32);
  engine.step_many(process, rng, 50000);
  EXPECT_TRUE(warned(key));

  b_batch serial(n, 8192);
  serial.set_model(make_model("two-point:1,50,0.2", "uniform", n));
  rng_t rng2(32);
  step_many(serial, rng2, 50000);
  EXPECT_EQ(process.state().loads(), serial.state().loads());
}

// ---------------------------------------------------------------------------
// Model plumbing: any_process, registry, drivers, sweeps.

TEST(ModelPlumbing, AnyProcessForwardsTheModel) {
  any_process p = two_choice(16);
  EXPECT_TRUE(p.model().is_default());
  p.set_model(make_model("fixed:5", "uniform", 16));
  EXPECT_EQ(p.model().weighting.fixed_weight(), 5);
  // Clones carry the model.
  any_process q = p;
  EXPECT_EQ(q.model().weighting.fixed_weight(), 5);
}

TEST(ModelPlumbing, SamplerBinMismatchThrows) {
  two_choice p(16);
  EXPECT_THROW(p.set_model(make_model("unit", "zipf:1", 8)), contract_error);
}

TEST(ModelPlumbing, RunRepeatedAppliesModelSpecs) {
  repeat_options opt;
  opt.runs = 3;
  opt.master_seed = 5;
  opt.threads = 1;
  opt.weighting = "fixed:4";
  opt.sampler = "zipf:0.5";
  const bin_count n = 64;
  const auto result = run_repeated([n] { return any_process(two_choice(n)); }, 6400, opt);
  ASSERT_EQ(result.runs.size(), 3u);
  for (const auto& r : result.runs) {
    EXPECT_EQ(r.balls, 6400);
    // Weighted gap: max load minus average weight -- with weight 4 the
    // per-bin loads are multiples of 4, so the gap is too.
    EXPECT_EQ(std::fmod(r.gap, 4.0), 0.0);
  }
  // Deterministic: the same options reproduce bit-identically.
  const auto again = run_repeated([n] { return any_process(two_choice(n)); }, 6400, opt);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(result.runs[i].gap, again.runs[i].gap);
}

TEST(ModelPlumbing, SweepGridExpandsModelAxes) {
  sweep_grid grid;
  grid.kinds = {"two-choice"};
  grid.bins = {32};
  grid.weightings = {"unit", "fixed:2"};
  grid.samplers = {"uniform", "zipf:1"};
  const auto points = expand_grid(grid);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].label, "two-choice/0@n=32");  // defaults: historical label
  EXPECT_EQ(points[1].label, "two-choice/0@n=32|s=zipf:1");
  EXPECT_EQ(points[2].label, "two-choice/0@n=32|w=fixed:2");
  EXPECT_EQ(points[3].label, "two-choice/0@n=32|w=fixed:2|s=zipf:1");
  EXPECT_EQ(points[3].process.weighting, "fixed:2");
  EXPECT_EQ(points[3].process.sampler, "zipf:1");
}

TEST(ModelPlumbing, MidRunOverflowPropagatesOutOfPoolWorkers) {
  // A weighted cell whose per-bin loads cross the guarded 32-bit cap must
  // surface as contract_error on the caller's thread -- not terminate the
  // process from inside a noexcept pool task.
  sweep_grid grid;
  grid.kinds = {"one-choice"};
  grid.bins = {2};
  grid.m_override = 300;  // ~150 balls/bin * 2^24 > 2^31: overflows mid-run
  grid.weightings = {"fixed:16777216"};
  campaign_options opt;
  opt.repeats = 2;
  opt.threads = 2;
  EXPECT_THROW((void)run_campaign(grid, opt), contract_error);

  repeat_options ropt;
  ropt.runs = 2;
  ropt.threads = 2;
  ropt.weighting = "fixed:16777216";
  EXPECT_THROW((void)run_repeated([] { return any_process(one_choice(2)); }, 300, ropt),
               contract_error);
}

TEST(ModelPlumbing, CampaignRunsWeightedCellsDeterministically) {
  sweep_grid grid;
  grid.kinds = {"b-batch"};
  grid.params = {256.0};
  grid.bins = {64};
  grid.m_override = 6400;
  grid.weightings = {"unit", "fixed:3"};
  grid.samplers = {"uniform", "hot:4,0.6"};
  campaign_options opt;
  opt.repeats = 2;
  opt.seed = 21;
  opt.threads = 2;
  const auto a = run_campaign(grid, opt);
  const auto b = run_campaign(grid, opt);
  EXPECT_EQ(a.to_json(), b.to_json());
  ASSERT_EQ(a.configs.size(), 4u);
  // The weighted legs carry 3x the weight; mean max load reflects it.
  EXPECT_GT(a.configs[2].aggregate.max_load().mean(),
            2.0 * a.configs[0].aggregate.max_load().mean());
}

}  // namespace
