// Unit tests for the util substrate: thread pool, CLI parser, CSV writer,
// table formatter and string helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

// ---------------------------------------------------------------------------
// thread_pool / parallel_for

TEST(ThreadPool, RunsSubmittedTasks) {
  nb::thread_pool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  nb::thread_pool pool(2);
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, SizeReflectsRequestedThreads) {
  nb::thread_pool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, RejectsEmptyTask) {
  nb::thread_pool pool(1);
  EXPECT_THROW(pool.submit(nullptr), nb::contract_error);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
    std::vector<std::atomic<int>> hits(257);
    nb::parallel_for(hits.size(), threads, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelFor, ZeroCountIsNoop) {
  bool called = false;
  nb::parallel_for(0, 4, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleThreadRunsInOrder) {
  std::vector<std::size_t> order;
  nb::parallel_for(10, 1, [&](std::size_t i) { order.push_back(i); });
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

// ---------------------------------------------------------------------------
// cli_parser

TEST(Cli, ParsesAllValueForms) {
  nb::cli_parser cli("test");
  cli.add_int("n", 10, "bins");
  cli.add_double("sigma", 1.5, "noise");
  cli.add_string("mode", "quick", "mode");
  cli.add_bool("verbose", false, "verbosity");
  const char* argv[] = {"prog", "--n", "100", "--sigma=2.5", "--mode", "paper", "--verbose"};
  ASSERT_TRUE(cli.parse(7, argv));
  EXPECT_EQ(cli.get_int("n"), 100);
  EXPECT_DOUBLE_EQ(cli.get_double("sigma"), 2.5);
  EXPECT_EQ(cli.get_string("mode"), "paper");
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(Cli, DefaultsSurviveWhenNotPassed) {
  nb::cli_parser cli("test");
  cli.add_int("runs", 42, "repetitions");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("runs"), 42);
}

TEST(Cli, ExplicitBooleanValues) {
  nb::cli_parser cli("test");
  cli.add_bool("flag", true, "a flag");
  const char* argv[] = {"prog", "--flag", "false"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_FALSE(cli.get_bool("flag"));
  const char* argv2[] = {"prog", "--flag=1"};
  ASSERT_TRUE(cli.parse(2, argv2));
  EXPECT_TRUE(cli.get_bool("flag"));
}

TEST(Cli, UnknownFlagThrows) {
  nb::cli_parser cli("test");
  cli.add_int("n", 1, "bins");
  const char* argv[] = {"prog", "--typo", "3"};
  EXPECT_THROW(cli.parse(3, argv), nb::contract_error);
}

TEST(Cli, MalformedValueThrows) {
  nb::cli_parser cli("test");
  cli.add_int("n", 1, "bins");
  const char* argv[] = {"prog", "--n", "abc"};
  EXPECT_THROW(cli.parse(3, argv), nb::contract_error);
}

TEST(Cli, MissingValueThrows) {
  nb::cli_parser cli("test");
  cli.add_int("n", 1, "bins");
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW(cli.parse(2, argv), nb::contract_error);
}

TEST(Cli, DuplicateRegistrationThrows) {
  nb::cli_parser cli("test");
  cli.add_int("n", 1, "bins");
  EXPECT_THROW(cli.add_int("n", 2, "again"), nb::contract_error);
}

TEST(Cli, HelpReturnsFalseAndListsFlags) {
  nb::cli_parser cli("my tool");
  cli.add_int("n", 10, "number of bins");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
  const std::string help = cli.help_text();
  EXPECT_NE(help.find("my tool"), std::string::npos);
  EXPECT_NE(help.find("--n"), std::string::npos);
  EXPECT_NE(help.find("number of bins"), std::string::npos);
}

TEST(Cli, TypeMismatchOnGetThrows) {
  nb::cli_parser cli("test");
  cli.add_int("n", 1, "bins");
  EXPECT_THROW(static_cast<void>(cli.get_double("n")), nb::contract_error);
  EXPECT_THROW(static_cast<void>(cli.get_int("nope")), nb::contract_error);
}

// ---------------------------------------------------------------------------
// csv_writer

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/nb_csv_test1.csv";
  {
    nb::csv_writer csv(path, {"a", "b"});
    csv.write_row({"1", "2"});
    csv.write_row({"x", "y"});
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::remove(path.c_str());
}

TEST(Csv, QuotesSpecialCharacters) {
  const std::string path = ::testing::TempDir() + "/nb_csv_test2.csv";
  {
    nb::csv_writer csv(path, {"v"});
    csv.write_row({"has,comma"});
    csv.write_row({"has\"quote"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header
  std::getline(in, line);
  EXPECT_EQ(line, "\"has,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line, "\"has\"\"quote\"");
  std::remove(path.c_str());
}

TEST(Csv, RowWidthMismatchThrows) {
  const std::string path = ::testing::TempDir() + "/nb_csv_test3.csv";
  nb::csv_writer csv(path, {"a", "b"});
  EXPECT_THROW(csv.write_row({"only-one"}), nb::contract_error);
  std::remove(path.c_str());
}

TEST(Csv, FieldFormatting) {
  EXPECT_EQ(nb::csv_writer::field(std::int64_t{42}), "42");
  EXPECT_EQ(nb::csv_writer::field(2.5), "2.5");
}

// ---------------------------------------------------------------------------
// text_table

TEST(Table, RendersAlignedColumns) {
  nb::text_table t({"name", "gap"});
  t.add_row({"two-choice", "3"});
  t.add_row({"g-bounded", "25"});
  const std::string out = t.render();
  EXPECT_NE(out.find("two-choice"), std::string::npos);
  EXPECT_NE(out.find("25"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, RuleInsertsSeparator) {
  nb::text_table t({"a"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const std::string out = t.render();
  // Three separator lines: under header plus the explicit rule.
  int separators = 0;
  std::istringstream is(out);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.find_first_not_of('-') == std::string::npos) ++separators;
  }
  EXPECT_EQ(separators, 2);
}

TEST(Table, WidthMismatchThrows) {
  nb::text_table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), nb::contract_error);
}

TEST(Table, NumericCellsRightAligned) {
  nb::text_table t({"value"});
  t.add_row({"7"});
  t.add_row({"1234"});
  const std::string out = t.render();
  // "7" padded to width 5 and right-aligned -> line is "    7".
  EXPECT_NE(out.find("    7"), std::string::npos);
}

// ---------------------------------------------------------------------------
// strings

TEST(Strings, FormatFixed) {
  EXPECT_EQ(nb::format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(nb::format_fixed(2.0, 0), "2");
}

TEST(Strings, FormatPowerOfTen) {
  EXPECT_EQ(nb::format_power_of_ten(10000), "10^4");
  EXPECT_EQ(nb::format_power_of_ten(50000), "5x10^4");
  EXPECT_EQ(nb::format_power_of_ten(100000), "10^5");
  EXPECT_EQ(nb::format_power_of_ten(12345), "12345");
  EXPECT_EQ(nb::format_power_of_ten(1), "1");
  EXPECT_EQ(nb::format_power_of_ten(5), "5");
}

TEST(Strings, Split) {
  const auto parts = nb::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, ParseIntList) {
  const auto values = nb::parse_int_list("1,2,16");
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[2], 16);
  EXPECT_TRUE(nb::parse_int_list("").empty());
  EXPECT_THROW(nb::parse_int_list("1,x"), nb::contract_error);
  EXPECT_THROW(nb::parse_int_list("1,2.5"), nb::contract_error);
}

TEST(Strings, FormatDuration) {
  EXPECT_EQ(nb::format_duration(5.25), "5.2s");
  EXPECT_EQ(nb::format_duration(62.0), "1m02s");
}

}  // namespace
