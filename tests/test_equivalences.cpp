// The setting-hierarchy equivalences of the paper's Figure 2.1, verified in
// the strongest possible sense: *trace identity* (same allocations from the
// same RNG stream) where entropy consumption matches, and distributional
// agreement otherwise.
//
//   g=0 Adv-Comp (any strategy)  == Two-Choice
//   rho == 1                     == Two-Choice
//   b = 1 Batch                  == Two-Choice
//   tau = 1 Delay                == Two-Choice
//   truthful Adv-Load            == Two-Choice
//   g = infinity Myopic          == One-Choice       (distributional)
//   first batch of b-Batch       == One-Choice       (distributional)
#include <gtest/gtest.h>

#include "test_support.hpp"

namespace {

using namespace nb;
using nb::testing::mean_gap_of;
using nb::testing::traces_identical;

constexpr bin_count kN = 64;
constexpr step_count kM = 4000;

TEST(Equivalence, ZeroGBoundedIsTwoChoice) {
  EXPECT_TRUE(traces_identical(g_bounded(kN, 0), two_choice(kN), kM, 101));
}

TEST(Equivalence, ZeroGMyopicIsTwoChoice) {
  EXPECT_TRUE(traces_identical(g_myopic_comp(kN, 0), two_choice(kN), kM, 102));
}

TEST(Equivalence, ZeroGAlwaysCorrectIsTwoChoice) {
  EXPECT_TRUE(traces_identical(g_adv_comp<always_correct>(kN, 0), two_choice(kN), kM, 103));
}

TEST(Equivalence, AlwaysCorrectAnyGIsTwoChoice) {
  // The always-correct adversary neutralizes any g.
  EXPECT_TRUE(traces_identical(g_adv_comp<always_correct>(kN, 10), two_choice(kN), kM, 104));
}

TEST(Equivalence, RhoOneIsTwoChoice) {
  EXPECT_TRUE(
      traces_identical(rho_noisy_comp<rho_constant>(kN, rho_constant(1.0)), two_choice(kN), kM, 105));
}

TEST(Equivalence, BatchSizeOneIsTwoChoice) {
  EXPECT_TRUE(traces_identical(b_batch(kN, 1), two_choice(kN), kM, 106));
}

TEST(Equivalence, DelayOneAdversarialIsTwoChoice) {
  EXPECT_TRUE(traces_identical(tau_delay<delay_adversarial>(kN, 1), two_choice(kN), kM, 107));
}

TEST(Equivalence, DelayOneOldestIsTwoChoice) {
  EXPECT_TRUE(traces_identical(tau_delay<delay_oldest>(kN, 1), two_choice(kN), kM, 108));
}

TEST(Equivalence, TruthfulAdvLoadIsTwoChoice) {
  EXPECT_TRUE(
      traces_identical(g_adv_load<truthful_estimates>(kN, 5), two_choice(kN), kM, 109));
}

TEST(Equivalence, ZeroSigmaGaussianIsTwoChoiceDistributionally) {
  // sigma = 0 physical noise: estimates equal true loads.  Entropy use
  // differs (Gaussian draws), so compare gaps statistically.
  const double noisy = mean_gap_of([] { return sigma_noisy_load_gaussian(256, 0.0); }, 30000, 20, 110);
  const double clean = mean_gap_of([] { return two_choice(256); }, 30000, 20, 111);
  EXPECT_NEAR(noisy, clean, 0.5);
}

TEST(Equivalence, InfiniteGMyopicIsOneChoiceDistributionally) {
  // With g >= m every comparison is controlled and the myopic process
  // allocates to a uniformly random bin of the two samples == One-Choice.
  const step_count m = 50000;
  const double myopic = mean_gap_of([] { return g_myopic_comp(128, 1000000); }, m, 20, 112);
  const double one = mean_gap_of([] { return one_choice(128); }, m, 20, 113);
  EXPECT_NEAR(myopic, one, 0.15 * one);
}

TEST(Equivalence, RhoHalfIsOneChoiceDistributionally) {
  const step_count m = 50000;
  const double rho_half =
      mean_gap_of([] { return rho_noisy_comp<rho_constant>(128, rho_constant(0.5)); }, m, 20, 114);
  const double one = mean_gap_of([] { return one_choice(128); }, m, 20, 115);
  EXPECT_NEAR(rho_half, one, 0.15 * one);
}

TEST(Equivalence, RhoStepZeroMatchesGBounded) {
  // rho-step with low=0 *is* g-Bounded: both always send controlled
  // comparisons to the heavier bin.  Entropy differs (bernoulli(0) draws
  // nothing, but tie paths align), so check distributionally.
  const step_count m = 30000;
  const double via_rho =
      mean_gap_of([] { return rho_noisy_comp<rho_step>(128, rho_step(4, 0.0)); }, m, 20, 116);
  const double direct = mean_gap_of([] { return g_bounded(128, 4); }, m, 20, 117);
  EXPECT_NEAR(via_rho, direct, 0.6);
}

TEST(Equivalence, RhoStepHalfMatchesGMyopic) {
  const step_count m = 30000;
  const double via_rho =
      mean_gap_of([] { return rho_noisy_comp<rho_step>(128, rho_step(4, 0.5)); }, m, 20, 118);
  const double direct = mean_gap_of([] { return g_myopic_comp(128, 4); }, m, 20, 119);
  EXPECT_NEAR(via_rho, direct, 0.6);
}

TEST(Equivalence, FirstBatchOfBatchProcessIsOneChoice) {
  // During the first batch every reported load is 0, so every comparison
  // ties and the ball lands on a random sample: One-Choice on b balls.
  const bin_count n = 128;
  const step_count b = 2000;
  const double batch_gap = mean_gap_of([&] { return b_batch(n, b); }, b, 30, 120);
  const double one_gap = mean_gap_of([&] { return one_choice(n); }, b, 30, 121);
  EXPECT_NEAR(batch_gap, one_gap, 0.15 * one_gap + 0.3);
}

TEST(Equivalence, GAdvLoadInvertingIsBoundedByTwiceGAdvComp) {
  // The paper: g-Adv-Load can be simulated by (2g)-Adv-Comp, so the
  // inverting estimate adversary can never beat the worst (2g)-Adv-Comp
  // adversary.  Check the gap ordering statistically with headroom.
  const step_count m = 60000;
  const double adv_load = mean_gap_of([] { return g_adv_load<inverting_estimates>(128, 4); }, m, 15, 122);
  const double adv_comp_2g = mean_gap_of([] { return g_bounded(128, 8); }, m, 15, 123);
  EXPECT_LE(adv_load, adv_comp_2g + 2.0);
}

TEST(Equivalence, DelayTauEqualsBatchAtSameScaleIsComparable) {
  // b-Batch is an instance of tau-Delay with tau = b: the adversarial
  // delay cannot do *better* than the batch instance it can simulate.
  const bin_count n = 256;
  const step_count m = 50000;
  const double batch = mean_gap_of([&] { return b_batch(n, n); }, m, 15, 124);
  const double delay = mean_gap_of([&] { return tau_delay<delay_adversarial>(n, n); }, m, 15, 125);
  EXPECT_GE(delay + 1.5, batch);
}

}  // namespace
