// Tests for the potential-function module: agreement with brute-force
// evaluation, the paper's structural identities, and empirical drop
// behaviour of the hyperbolic cosine potential under Two-Choice.
#include <gtest/gtest.h>

#include <cmath>

#include "test_support.hpp"

namespace {

using namespace nb;

std::vector<double> example_y() { return {2.0, 0.5, -0.5, -2.0}; }

TEST(GammaPotential, MatchesBruteForce) {
  const auto y = example_y();
  const double gamma = 0.3;
  double expected = 0.0;
  for (double v : y) expected += std::cosh(gamma * v) * 2.0;  // e^x + e^-x = 2 cosh
  EXPECT_NEAR(gamma_potential(y, gamma), expected, 1e-12);
}

TEST(GammaPotential, MinimizedByBalancedVector) {
  const std::vector<double> balanced(8, 0.0);
  EXPECT_DOUBLE_EQ(gamma_potential(balanced, 0.5), 16.0);  // 2n
  EXPECT_GT(gamma_potential({1.0, -1.0, 0, 0, 0, 0, 0, 0}, 0.5), 16.0);
}

TEST(GammaPotential, RejectsNonPositiveGamma) {
  EXPECT_THROW((void)gamma_potential(example_y(), 0.0), nb::contract_error);
}

TEST(LambdaPotential, OffsetAbsorbsSmallDeviations) {
  // With |y_i| <= offset, Lambda == 2n exactly.
  const std::vector<double> y = {1.5, -1.0, 0.5, -1.5};
  EXPECT_DOUBLE_EQ(lambda_potential(y, 0.5, 2.0), 8.0);
  // Exceeding the offset contributes exponentially.
  const std::vector<double> y2 = {3.0, -1.0, 0.5, -1.5};
  EXPECT_NEAR(lambda_potential(y2, 0.5, 2.0), 7.0 + std::exp(0.5 * 1.0), 1e-12);
}

TEST(LambdaPotential, BothTailsCount) {
  const std::vector<double> y = {0.0, -5.0};
  EXPECT_NEAR(lambda_potential(y, 1.0, 2.0), 3.0 + std::exp(3.0), 1e-12);
}

TEST(AbsolutePotential, SimpleSum) {
  EXPECT_DOUBLE_EQ(absolute_potential(example_y()), 5.0);
  EXPECT_DOUBLE_EQ(absolute_potential({}), 0.0);
}

TEST(QuadraticPotential, SimpleSum) {
  EXPECT_DOUBLE_EQ(quadratic_potential(example_y()), 4.0 + 0.25 + 0.25 + 4.0);
}

TEST(QuadraticPotential, BoundedByAbsTimesMax) {
  const auto y = example_y();
  double max_abs = 0.0;
  for (double v : y) max_abs = std::max(max_abs, std::fabs(v));
  EXPECT_LE(quadratic_potential(y), absolute_potential(y) * max_abs + 1e-12);
}

TEST(SuperExpPotential, OnlyOverloadedSideContributes) {
  const std::vector<double> y = {5.0, 1.0, -10.0};
  const double phi = 2.0;
  const double z = 3.0;
  EXPECT_NEAR(super_exp_potential(y, phi, z), std::exp(2.0 * 2.0) + 1.0 + 1.0, 1e-12);
}

TEST(SuperExpPotential, AtLeastN) {
  EXPECT_GE(super_exp_potential(example_y(), 4.0, 1.0), 4.0);
}

TEST(SuperExpPotential, GapBoundFromPolyPotential) {
  // If Phi <= poly(n) then Gap <= z + log(Phi)/phi (Section 8.1).  Check
  // the contrapositive arithmetic on a crafted vector.
  const double phi = 4.0;
  const double z = 2.0;
  const std::vector<double> y = {6.0, 0.0, 0.0, 0.0};
  const double potential = super_exp_potential(y, phi, z);
  const double implied_gap_bound = z + std::log(potential) / phi;
  EXPECT_GE(implied_gap_bound, 6.0);  // must cover the actual gap
}

TEST(PaperConstants, GammaForG) {
  // gamma = -log(1 - 1/384)/g; for g=1 that is ~ 0.0026076...
  EXPECT_NEAR(paper_constants::gamma_for_g(1.0), 0.0026076, 1e-6);
  EXPECT_NEAR(paper_constants::gamma_for_g(10.0), 0.00026076, 1e-7);
  EXPECT_THROW((void)paper_constants::gamma_for_g(0.5), nb::contract_error);
}

TEST(GoodStep, ThresholdAtDNG) {
  // n = 4, g = 1, D = 365: Delta <= 1460 is good.
  std::vector<double> y = {100.0, -100.0, 0.0, 0.0};  // Delta = 200
  EXPECT_TRUE(is_good_step(y, 1.0));
  y = {1000.0, -1000.0, 0.0, 0.0};  // Delta = 2000 > 1460
  EXPECT_FALSE(is_good_step(y, 1.0));
}

TEST(GoodStep, AlmostAllStepsGoodUnderTwoChoice) {
  // Under noise-free Two-Choice the absolute potential stays O(n), far
  // below D*n*g: every observed step should be good.
  two_choice p(64);
  rng_t rng(1);
  int good = 0;
  const int kSamples = 200;
  for (int s = 0; s < kSamples; ++s) {
    for (int t = 0; t < 64; ++t) p.step(rng);
    if (is_good_step(p.state().normalized(), 1.0)) ++good;
  }
  EXPECT_EQ(good, kSamples);
}

TEST(GammaDrop, DecreasesInExpectationWhenLarge) {
  // Theorem 4.3(i) empirically: under g-Adv-Comp with the greedy
  // adversary, E[dGamma] <= -gamma/(96 n) Gamma + c.  Start from a
  // poisoned (large-Gamma) configuration and verify Gamma shrinks.
  const bin_count n = 64;
  const load_t g = 4;
  const double gamma = paper_constants::gamma_for_g(g);
  g_adv_comp<phase_switch> p(n, g, phase_switch{20000});
  rng_t rng(2);
  for (int t = 0; t < 20000; ++t) p.step(rng);  // poison phase
  const double poisoned = gamma_potential(p.state().normalized(), gamma);
  for (int t = 0; t < 20000; ++t) p.step(rng);  // correct phase
  const double recovered = gamma_potential(p.state().normalized(), gamma);
  EXPECT_LT(recovered, poisoned);
}

TEST(GammaDrop, StationaryValueIsLinearInN) {
  // Theorem 4.3(ii): E[Gamma] <= c n g; in particular Gamma/n stays O(1)
  // at stationarity for fixed g.
  const load_t g = 2;
  const double gamma = paper_constants::gamma_for_g(g);
  for (const bin_count n : {64u, 256u}) {
    g_bounded p(n, g);
    rng_t rng(3);
    for (step_count t = 0; t < 400 * static_cast<step_count>(n); ++t) p.step(rng);
    const double ratio = gamma_potential(p.state().normalized(), gamma) / n;
    EXPECT_GT(ratio, 1.9);  // >= 2 by AM-GM up to float slack
    EXPECT_LT(ratio, 10.0);
  }
}

}  // namespace
