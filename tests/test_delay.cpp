// Tests for the tau-Delay setting: sliding-window estimate semantics and
// the three reporting strategies.
#include <gtest/gtest.h>

#include <cmath>
#include <deque>

#include "test_support.hpp"

namespace {

using namespace nb;
using nb::testing::mean_gap_of;
using nb::testing::run_and_snapshot;
using nb::testing::total_balls;

TEST(TauDelay, RejectsTauBelowOne) {
  EXPECT_THROW(tau_delay<delay_oldest>(8, 0), nb::contract_error);
}

TEST(TauDelay, ConservesBalls) {
  EXPECT_EQ(total_balls(run_and_snapshot(tau_delay<delay_adversarial>(64, 32), 5000, 1)), 5000);
  EXPECT_EQ(total_balls(run_and_snapshot(tau_delay<delay_oldest>(64, 32), 5000, 2)), 5000);
  EXPECT_EQ(total_balls(run_and_snapshot(tau_delay<delay_random>(64, 32), 5000, 3)), 5000);
}

TEST(TauDelay, StaleLoadMatchesBruteForceHistory) {
  // Maintain the full load-vector history and check stale_load(i) equals
  // x^{t-tau}_i (with x at negative times = 0) at every step.
  const bin_count n = 8;
  const step_count tau = 5;
  tau_delay<delay_random> p(n, tau);
  rng_t rng(4);
  std::deque<std::vector<load_t>> history;  // history.front() = x^{t}, back older
  history.push_front(std::vector<load_t>(n, 0));
  for (int t = 1; t <= 2000; ++t) {
    // Before the step: stale_load must equal the load tau steps ago.
    for (bin_index i = 0; i < n; ++i) {
      const std::size_t back =
          std::min(static_cast<std::size_t>(tau - 1), history.size() - 1);
      ASSERT_EQ(p.stale_load(i), history[back][i]) << "t=" << t << " bin=" << i;
    }
    p.step(rng);
    history.push_front(p.state().loads());
    if (history.size() > static_cast<std::size_t>(tau + 1)) history.pop_back();
  }
}

TEST(TauDelay, EstimateWindowsAreOrderedCorrectly) {
  // stale_load <= current load always; difference bounded by tau - 1.
  const step_count tau = 9;
  tau_delay<delay_adversarial> p(16, tau);
  rng_t rng(5);
  for (int t = 0; t < 3000; ++t) {
    p.step(rng);
    for (bin_index i = 0; i < 16; ++i) {
      EXPECT_LE(p.stale_load(i), p.state().load(i));
      EXPECT_LE(p.state().load(i) - p.stale_load(i), static_cast<load_t>(tau - 1));
    }
  }
}

TEST(DelayStrategies, AdversarialReverserLogic) {
  delay_adversarial strategy;
  rng_t rng(6);
  // Bin 0 truly heavier (hi 10 vs 6); its window reaches down to 5 < 6:
  // reversal feasible, so the heavier bin 0 must win.
  EXPECT_EQ(strategy.decide(0, 5, 10, 1, 6, 6, rng), 0u);
  // Window bottom 8 > 6: reversal infeasible (every legal estimate of the
  // heavy bin exceeds the light bin's ceiling) -> correct allocation.
  EXPECT_EQ(strategy.decide(0, 8, 10, 1, 2, 6, rng), 1u);
  // Boundary lo_heavy == hi_light: adversarial tie-break favours heavier.
  EXPECT_EQ(strategy.decide(0, 6, 10, 1, 2, 6, rng), 0u);
}

TEST(DelayStrategies, OldestComparesWindowBottoms) {
  delay_oldest strategy;
  rng_t rng(7);
  EXPECT_EQ(strategy.decide(0, 3, 10, 1, 4, 4, rng), 0u);  // lo 3 < lo 4
  EXPECT_EQ(strategy.decide(0, 9, 9, 1, 2, 8, rng), 1u);
}

TEST(DelayStrategies, RandomInRangeStaysLegalAndCoversRange) {
  delay_random strategy;
  rng_t rng(8);
  int bin0_wins = 0;
  for (int i = 0; i < 4000; ++i) {
    // Ranges [0,4] vs [2,2]: bin 0's estimate is uniform on {0..4}.
    const bin_index chosen = strategy.decide(0, 0, 4, 1, 2, 2, rng);
    if (chosen == 0u) ++bin0_wins;
  }
  // P(win) = P(e0 < 2) + P(e0 == 2)/2 = 2/5 + 1/10 = 0.5.
  EXPECT_NEAR(bin0_wins / 4000.0, 0.5, 0.05);
}

TEST(TauDelay, GapGrowsWithTau) {
  const bin_count n = 256;
  const step_count m = 100000;
  const double t1 = mean_gap_of([&] { return tau_delay<delay_adversarial>(n, 1); }, m, 10, 9);
  const double tn = mean_gap_of([&] { return tau_delay<delay_adversarial>(n, n); }, m, 10, 10);
  const double t4n = mean_gap_of([&] { return tau_delay<delay_adversarial>(n, 4 * n); }, m, 10, 11);
  EXPECT_LT(t1, tn);
  EXPECT_LE(tn, t4n + 0.3);
}

TEST(TauDelay, AdversarialDominatesBenignStrategies) {
  const bin_count n = 256;
  const step_count m = 100000;
  const double adv = mean_gap_of([&] { return tau_delay<delay_adversarial>(n, n); }, m, 10, 12);
  const double oldest = mean_gap_of([&] { return tau_delay<delay_oldest>(n, n); }, m, 10, 13);
  const double random = mean_gap_of([&] { return tau_delay<delay_random>(n, n); }, m, 10, 14);
  EXPECT_GE(adv + 0.5, oldest);
  EXPECT_GE(adv + 0.5, random);
}

TEST(TauDelay, SublinearTauMatchesTheoremShape) {
  // Theorem 10.2 / Remark 10.6: for tau ~ n the gap is
  // O(log n / log log n); it must stay far below the One-Choice level of
  // the first n balls.
  const bin_count n = 1024;
  const step_count m = 200000;
  const double gap = mean_gap_of([&] { return tau_delay<delay_adversarial>(n, n); }, m, 5, 15);
  const double one_choice_level = mean_gap_of([&] { return one_choice(n); }, m, 5, 16);
  EXPECT_LT(gap * 3.0, one_choice_level);
  EXPECT_LE(gap, 4.0 * std::log(n) / std::log(std::log(n)));
}

TEST(TauDelay, ResetReproducesRun) {
  tau_delay<delay_adversarial> p(32, 16);
  rng_t rng(17);
  for (int t = 0; t < 2000; ++t) p.step(rng);
  const auto first = p.state().loads();
  p.reset();
  EXPECT_EQ(p.state().balls(), 0);
  EXPECT_EQ(p.stale_load(0), 0);
  rng_t rng2(17);
  for (int t = 0; t < 2000; ++t) p.step(rng2);
  EXPECT_EQ(p.state().loads(), first);
}

TEST(TauDelay, NameEncodesStrategyAndTau) {
  EXPECT_EQ(tau_delay<delay_oldest>(8, 3).name(), "tau-delay-oldest[tau=3]");
  EXPECT_EQ(tau_delay<delay_adversarial>(8, 5).name(), "tau-delay-adversarial[tau=5]");
}

}  // namespace
