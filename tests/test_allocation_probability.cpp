// Tests for the exact one-step analysis module: allocation probability
// vectors and exact potential drift.  These make the paper's drift lemmas
// deterministically checkable -- several tests below verify Lemma 4.1,
// Lemma 5.1, Lemma 5.2 and Lemma 5.3 *exactly* on concrete and random
// reachable load vectors.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/analysis/allocation_probability.hpp"
#include "test_support.hpp"

namespace {

using namespace nb;

std::vector<load_t> crafted_loads() { return {5, 3, 3, 1, 0}; }

double total(const std::vector<double>& v) { return std::accumulate(v.begin(), v.end(), 0.0); }

// ---------------------------------------------------------------------------
// Probability vectors.

TEST(AllocProb, SumsToOneForAllProcesses) {
  const auto loads = crafted_loads();
  EXPECT_NEAR(total(two_choice_probabilities(loads)), 1.0, 1e-12);
  EXPECT_NEAR(total(g_bounded_probabilities(loads, 2)), 1.0, 1e-12);
  EXPECT_NEAR(total(g_myopic_probabilities(loads, 2)), 1.0, 1e-12);
  EXPECT_NEAR(total(rho_allocation_probabilities(
                  loads, [](load_t d) { return 1.0 - 0.5 * std::exp(-d / 2.0); })),
              1.0, 1e-12);
}

TEST(AllocProb, TwoChoiceMatchesRankFormula) {
  // Distinct loads: the r-th most loaded bin is hit with prob (2r-1)/n^2.
  const std::vector<load_t> loads = {9, 7, 5, 2};  // already sorted descending
  const auto q = two_choice_probabilities(loads);
  const double n2 = 16.0;
  EXPECT_NEAR(q[0], 1.0 / n2, 1e-12);
  EXPECT_NEAR(q[1], 3.0 / n2, 1e-12);
  EXPECT_NEAR(q[2], 5.0 / n2, 1e-12);
  EXPECT_NEAR(q[3], 7.0 / n2, 1e-12);
}

TEST(AllocProb, UniformLoadsGiveUniformProbabilities) {
  const std::vector<load_t> loads(6, 4);
  for (const auto& q : {two_choice_probabilities(loads), g_bounded_probabilities(loads, 3),
                        g_myopic_probabilities(loads, 3)}) {
    for (const double qi : q) EXPECT_NEAR(qi, 1.0 / 6.0, 1e-12);
  }
}

TEST(AllocProb, GBoundedReversesWithinBand) {
  // loads {2, 0}: delta = 2 <= g = 2, so the heavier bin gets everything
  // except the lighter's self-pair: q_heavy = 1/4 + 2/4 = 3/4.
  const std::vector<load_t> loads = {2, 0};
  const auto q = g_bounded_probabilities(loads, 2);
  EXPECT_NEAR(q[0], 0.75, 1e-12);
  EXPECT_NEAR(q[1], 0.25, 1e-12);
  // Outside the band the comparison is correct: q_heavy = 1/4.
  const auto q2 = g_bounded_probabilities(loads, 1);
  EXPECT_NEAR(q2[0], 0.25, 1e-12);
  EXPECT_NEAR(q2[1], 0.75, 1e-12);
}

TEST(AllocProb, GMyopicIsUniformWithinBand) {
  const std::vector<load_t> loads = {2, 0};
  const auto q = g_myopic_probabilities(loads, 2);
  EXPECT_NEAR(q[0], 0.5, 1e-12);
  EXPECT_NEAR(q[1], 0.5, 1e-12);
}

TEST(AllocProb, MajorizationOrderOfNoiseLevels) {
  // In the sorted-by-load order, more noise moves probability mass towards
  // the heavier bins: q^{g-bounded} majorizes q^{myopic} majorizes
  // q^{two-choice} (prefix sums over the most-loaded bins).
  std::vector<load_t> loads = {8, 6, 5, 3, 2, 0};  // sorted descending
  const auto clean = two_choice_probabilities(loads);
  const auto myopic = g_myopic_probabilities(loads, 3);
  const auto bounded = g_bounded_probabilities(loads, 3);
  double pc = 0.0;
  double pm = 0.0;
  double pb = 0.0;
  for (std::size_t k = 0; k < loads.size(); ++k) {
    pc += clean[k];
    pm += myopic[k];
    pb += bounded[k];
    EXPECT_GE(pb + 1e-12, pm) << "prefix " << k;
    EXPECT_GE(pm + 1e-12, pc) << "prefix " << k;
  }
}

TEST(AllocProb, MatchesEmpiricalFrequencies) {
  // Clone a mid-run g-Bounded process repeatedly, take one step, and
  // compare observed allocation frequencies with the exact vector.
  const bin_count n = 8;
  g_bounded base(n, 2);
  rng_t warm(1);
  for (int t = 0; t < 200; ++t) base.step(warm);
  const auto q = g_bounded_probabilities(base.state().loads(), 2);
  std::vector<int> hits(n, 0);
  rng_t rng(2);
  constexpr int kTrials = 200000;
  for (int trial = 0; trial < kTrials; ++trial) {
    g_bounded probe = base;  // copy of the frozen state
    const auto before = probe.state().loads();
    probe.step(rng);
    for (bin_index i = 0; i < n; ++i) {
      if (probe.state().load(i) != before[i]) {
        ++hits[i];
        break;
      }
    }
  }
  for (bin_index i = 0; i < n; ++i) {
    EXPECT_NEAR(static_cast<double>(hits[i]) / kTrials, q[i], 0.01) << "bin " << i;
  }
}

TEST(AllocProb, RejectsBadInput) {
  EXPECT_THROW((void)rho_allocation_probabilities({}, [](load_t) { return 1.0; }),
               contract_error);
  EXPECT_THROW((void)rho_allocation_probabilities({1, 2}, nullptr), contract_error);
  EXPECT_THROW((void)rho_allocation_probabilities({1, 0}, [](load_t) { return 2.0; }),
               contract_error);
}

// ---------------------------------------------------------------------------
// Exact drift.

std::vector<double> normalize(const std::vector<load_t>& loads) {
  double avg = 0.0;
  for (const auto x : loads) avg += static_cast<double>(x);
  avg /= static_cast<double>(loads.size());
  std::vector<double> y;
  y.reserve(loads.size());
  for (const auto x : loads) y.push_back(static_cast<double>(x) - avg);
  return y;
}

TEST(ExactDrift, MatchesBruteForceEnumeration) {
  const auto loads = crafted_loads();
  const auto q = two_choice_probabilities(loads);
  const auto y = normalize(loads);
  const double gamma = 0.3;
  const auto f = [gamma](double v) { return std::exp(gamma * v) + std::exp(-gamma * v); };
  // Brute force: enumerate the landing bin.
  const double n = static_cast<double>(loads.size());
  double brute = 0.0;
  const double before = [&] {
    double acc = 0.0;
    for (const double v : y) acc += f(v);
    return acc;
  }();
  for (std::size_t i = 0; i < loads.size(); ++i) {
    double after = 0.0;
    for (std::size_t k = 0; k < loads.size(); ++k) {
      const double yk = y[k] - 1.0 / n + (k == i ? 1.0 : 0.0);
      after += f(yk);
    }
    brute += q[i] * (after - before);
  }
  EXPECT_NEAR(expected_potential_drift(y, q, f), brute, 1e-10);
}

TEST(ExactDrift, QuadraticIdentityOfLemma5_1) {
  // E[dUpsilon] computed through the generic drift must equal the closed
  // form sum 2 q_i y_i + 1 - 1/n of Lemma 5.1(i), for any process.
  const auto loads = crafted_loads();
  const auto y = normalize(loads);
  for (const auto& q : {two_choice_probabilities(loads), g_bounded_probabilities(loads, 2),
                        g_myopic_probabilities(loads, 4)}) {
    const double generic = expected_potential_drift(y, q, [](double v) { return v * v; });
    EXPECT_NEAR(generic, lemma_5_1_quadratic_drift(y, q), 1e-10);
  }
}

TEST(ExactDrift, Lemma5_2TwoChoiceQuadraticDropHolds) {
  // Lemma 5.2: for Two-Choice, E[dUpsilon] <= -Delta/n + 1, on *any*
  // reachable load vector.  Check across random trajectories.
  rng_t rng(3);
  two_choice p(16);
  for (int round = 0; round < 50; ++round) {
    for (int t = 0; t < 64; ++t) p.step(rng);
    const auto& loads = p.state().loads();
    const auto q = two_choice_probabilities(loads);
    const auto y = normalize(loads);
    double delta = 0.0;
    for (const double v : y) delta += std::fabs(v);
    const double drift = lemma_5_1_quadratic_drift(y, q);
    EXPECT_LE(drift, -delta / 16.0 + 1.0 + 1e-9) << "round " << round;
  }
}

TEST(ExactDrift, Lemma5_3GAdvCompQuadraticDropHolds) {
  // Lemma 5.3: under g-Adv-Comp, E[dUpsilon] <= -Delta/n + 2g + 1.
  rng_t rng(4);
  const load_t g = 3;
  g_bounded p(16, g);
  for (int round = 0; round < 50; ++round) {
    for (int t = 0; t < 64; ++t) p.step(rng);
    const auto& loads = p.state().loads();
    const auto q = g_bounded_probabilities(loads, g);
    const auto y = normalize(loads);
    double delta = 0.0;
    for (const double v : y) delta += std::fabs(v);
    const double drift = lemma_5_1_quadratic_drift(y, q);
    EXPECT_LE(drift, -delta / 16.0 + 2.0 * g + 1.0 + 1e-9) << "round " << round;
  }
}

TEST(ExactDrift, Lemma4_1UpperBoundsGammaDrift) {
  // Lemma 4.1: the exact E[dGamma] is bounded by the lemma's RHS, for any
  // allocation probability vector.  Verify along g-Bounded trajectories
  // with the paper's gamma(g).
  rng_t rng(5);
  const load_t g = 2;
  const double gamma = paper_constants::gamma_for_g(g);
  g_bounded p(12, g);
  const auto f = [gamma](double v) { return std::exp(gamma * v) + std::exp(-gamma * v); };
  for (int round = 0; round < 40; ++round) {
    for (int t = 0; t < 48; ++t) p.step(rng);
    const auto& loads = p.state().loads();
    const auto q = g_bounded_probabilities(loads, g);
    const auto y = normalize(loads);
    const double exact = expected_potential_drift(y, q, f);
    const double bound = lemma_4_1_upper_bound(y, q, gamma);
    EXPECT_LE(exact, bound + 1e-9) << "round " << round;
  }
}

TEST(ExactDrift, TwoChoiceGammaDriftNegativeWhenImbalanced) {
  // The engine of Theorem 4.3: on a strongly imbalanced vector, Two-Choice
  // drifts Gamma downward.
  const std::vector<load_t> loads = {40, 10, 10, 10, 10, 10, 10, 0};
  const auto q = two_choice_probabilities(loads);
  const auto y = normalize(loads);
  const double gamma = 0.2;
  const auto f = [gamma](double v) { return std::exp(gamma * v) + std::exp(-gamma * v); };
  EXPECT_LT(expected_potential_drift(y, q, f), 0.0);
}

TEST(ExactDrift, OneChoiceGammaDriftPositiveOnBalancedVector) {
  // One-Choice from a balanced vector must *increase* Gamma in expectation
  // (imbalance is created): uniform q, y = 0.
  const std::vector<load_t> loads(8, 5);
  const std::vector<double> q(8, 1.0 / 8.0);
  const auto y = normalize(loads);
  const double gamma = 0.5;
  const auto f = [gamma](double v) { return std::exp(gamma * v) + std::exp(-gamma * v); };
  EXPECT_GT(expected_potential_drift(y, q, f), 0.0);
}

TEST(ExactDrift, AbsolutePotentialDriftBounded) {
  // |dDelta| <= 2 per step deterministically; the expected drift must
  // respect that too.
  const auto loads = crafted_loads();
  const auto q = g_myopic_probabilities(loads, 2);
  const auto y = normalize(loads);
  const double drift = expected_potential_drift(y, q, [](double v) { return std::fabs(v); });
  EXPECT_LE(std::fabs(drift), 2.0);
}

}  // namespace
