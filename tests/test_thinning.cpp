// Tests for the future-work extension: noisy Mean-Thinning and noisy
// (1+beta) (Section 13 of the paper suggests studying these).
#include <gtest/gtest.h>

#include <cmath>

#include "test_support.hpp"

namespace {

using namespace nb;
using nb::testing::mean_gap_of;
using nb::testing::run_and_snapshot;
using nb::testing::total_balls;

// ---------------------------------------------------------------------------
// Strategy-level semantics.

TEST(ThinningStrategies, GreedyKeepsOverloadedDivertsUnderloaded) {
  thinning_greedy s;
  rng_t rng(1);
  EXPECT_TRUE(s.keep_here(2.5, rng));    // overloaded: keep (damaging)
  EXPECT_TRUE(s.keep_here(0.0, rng));    // boundary counts as overloaded
  EXPECT_FALSE(s.keep_here(-1.5, rng));  // underloaded: divert (damaging)
}

TEST(ThinningStrategies, CorrectIsComplementOfGreedy) {
  thinning_correct s;
  rng_t rng(2);
  EXPECT_FALSE(s.keep_here(2.5, rng));
  EXPECT_FALSE(s.keep_here(0.0, rng));
  EXPECT_TRUE(s.keep_here(-1.5, rng));
}

TEST(ThinningStrategies, RandomIsFair) {
  thinning_random s;
  rng_t rng(3);
  int keeps = 0;
  for (int i = 0; i < 4000; ++i) {
    if (s.keep_here(1.0, rng)) ++keeps;
  }
  EXPECT_NEAR(keeps / 4000.0, 0.5, 0.03);
}

// ---------------------------------------------------------------------------
// Process semantics.

TEST(MeanThinning, RejectsNegativeG) {
  EXPECT_THROW(noisy_mean_thinning<thinning_greedy>(8, -1), contract_error);
}

TEST(MeanThinning, ConservesBalls) {
  EXPECT_EQ(total_balls(run_and_snapshot(mean_thinning(64, 0), 5000, 4)), 5000);
  EXPECT_EQ(total_balls(run_and_snapshot(noisy_mean_thinning<thinning_greedy>(64, 3), 5000, 5)),
            5000);
  EXPECT_EQ(total_balls(run_and_snapshot(noisy_mean_thinning<thinning_random>(64, 3), 5000, 6)),
            5000);
}

TEST(MeanThinning, NoiseFreeBeatsOneChoiceSubstantially) {
  const step_count m = 100000;
  const double thin = mean_gap_of([] { return mean_thinning(256, 0); }, m, 10, 7);
  const double one = mean_gap_of([] { return one_choice(256); }, m, 10, 8);
  EXPECT_LT(thin * 2.5, one);
}

TEST(MeanThinning, NoiseFreeWorseThanTwoChoice) {
  // Mean-Thinning gets less information than Two-Choice (one threshold bit
  // per ball vs a full comparison): Theta(log log n) vs log2 log n, with a
  // larger constant in practice.
  const step_count m = 100000;
  const double thin = mean_gap_of([] { return mean_thinning(256, 0); }, m, 15, 9);
  const double two = mean_gap_of([] { return two_choice(256); }, m, 15, 10);
  EXPECT_GE(thin + 0.5, two);
}

TEST(MeanThinning, GapGrowsWithThresholdNoise) {
  const step_count m = 100000;
  const double g0 = mean_gap_of([] { return noisy_mean_thinning<thinning_greedy>(256, 0); }, m, 10, 11);
  const double g4 = mean_gap_of([] { return noisy_mean_thinning<thinning_greedy>(256, 4); }, m, 10, 12);
  const double g16 =
      mean_gap_of([] { return noisy_mean_thinning<thinning_greedy>(256, 16); }, m, 10, 13);
  EXPECT_LT(g0, g4);
  EXPECT_LT(g4, g16);
}

TEST(MeanThinning, GreedyAdversaryDominatesRandom) {
  const step_count m = 100000;
  const double greedy =
      mean_gap_of([] { return noisy_mean_thinning<thinning_greedy>(256, 8); }, m, 15, 14);
  const double random =
      mean_gap_of([] { return noisy_mean_thinning<thinning_random>(256, 8); }, m, 15, 15);
  EXPECT_GE(greedy + 0.5, random);
}

TEST(MeanThinning, NoisyGapStaysLinearInG) {
  // Extension analogue of Theorem 5.12: the corrupted threshold can cost
  // at most O(g + ...) -- check a generous linear envelope.
  const bin_count n = 256;
  const step_count m = 150000;
  for (const load_t g : {2, 8, 32}) {
    const double gap =
        mean_gap_of([&] { return noisy_mean_thinning<thinning_greedy>(n, g); }, m, 5, 16 + g);
    EXPECT_LE(gap, 6.0 * (static_cast<double>(g) + std::log(n))) << "g=" << g;
  }
}

TEST(NoisyOnePlusBeta, ValidatesParameters) {
  EXPECT_THROW(noisy_one_plus_beta<greedy_reverser>(8, 1.5, 2), contract_error);
  EXPECT_THROW(noisy_one_plus_beta<greedy_reverser>(8, 0.5, -1), contract_error);
}

TEST(NoisyOnePlusBeta, ConservesBalls) {
  EXPECT_EQ(
      total_balls(run_and_snapshot(noisy_one_plus_beta<greedy_reverser>(64, 0.7, 3), 5000, 20)),
      5000);
}

TEST(NoisyOnePlusBeta, BetaOneEqualsGBoundedTrace) {
  // With beta = 1 every step is a (noisy) Two-Choice step: identical to
  // g-Bounded given the same stream (bernoulli(1) consumes no entropy).
  EXPECT_TRUE(nb::testing::traces_identical(noisy_one_plus_beta<greedy_reverser>(64, 1.0, 5),
                                            g_bounded(64, 5), 4000, 21));
}

TEST(NoisyOnePlusBeta, BetaZeroIsOneChoiceTrace) {
  EXPECT_TRUE(nb::testing::traces_identical(noisy_one_plus_beta<greedy_reverser>(64, 0.0, 5),
                                            one_choice(64), 4000, 22));
}

TEST(NoisyOnePlusBeta, NoiseHurtsLessAtSmallBeta) {
  // With fewer Two-Choice steps there are fewer comparisons to corrupt:
  // the *additional* gap caused by the adversary shrinks with beta.
  const step_count m = 150000;
  const bin_count n = 256;
  const double hi_beta_clean =
      mean_gap_of([&] { return one_plus_beta(n, 0.9); }, m, 15, 23);
  const double hi_beta_noisy =
      mean_gap_of([&] { return noisy_one_plus_beta<greedy_reverser>(n, 0.9, 8); }, m, 15, 24);
  const double lo_beta_clean =
      mean_gap_of([&] { return one_plus_beta(n, 0.2); }, m, 15, 25);
  const double lo_beta_noisy =
      mean_gap_of([&] { return noisy_one_plus_beta<greedy_reverser>(n, 0.2, 8); }, m, 15, 26);
  const double hi_damage = hi_beta_noisy - hi_beta_clean;
  const double lo_damage = lo_beta_noisy - lo_beta_clean;
  EXPECT_GE(hi_damage + 1.0, lo_damage);
  EXPECT_GT(hi_damage, 0.5);  // the adversary does real damage at high beta
}

TEST(NoisyProcesses, NamesAreDescriptive) {
  EXPECT_NE(noisy_mean_thinning<thinning_greedy>(8, 2).name().find("greedy"), std::string::npos);
  EXPECT_NE(noisy_one_plus_beta<random_decision>(8, 0.5, 2).name().find("(1+beta)"),
            std::string::npos);
}

TEST(NoisyProcesses, ResetReproducesRun) {
  noisy_mean_thinning<thinning_greedy> p(32, 4);
  rng_t rng(27);
  for (int t = 0; t < 2000; ++t) p.step(rng);
  const auto first = p.state().loads();
  p.reset();
  rng_t rng2(27);
  for (int t = 0; t < 2000; ++t) p.step(rng2);
  EXPECT_EQ(p.state().loads(), first);
}

}  // namespace
