// Tests for the name-based process registry.
#include <gtest/gtest.h>

#include "core/process_registry.hpp"
#include "test_support.hpp"

namespace {

using namespace nb;

TEST(Registry, EveryRegisteredKindConstructsAndSteps) {
  for (const auto& [kind, description] : registered_process_kinds()) {
    process_spec spec;
    spec.kind = kind;
    spec.n = 32;
    // A parameter value that is legal for every kind (d, g, b, tau >= 1;
    // beta, sigma in range).
    spec.param = (kind == "one-plus-beta") ? 0.5 : 2.0;
    any_process p = make_process(spec);
    rng_t rng(1);
    for (int t = 0; t < 200; ++t) p.step(rng);
    EXPECT_EQ(p.state().balls(), 200) << kind;
    EXPECT_FALSE(p.name().empty()) << kind;
    EXPECT_FALSE(description.empty()) << kind;
  }
}

TEST(Registry, UnknownKindThrows) {
  process_spec spec;
  spec.kind = "three-and-a-half-choice";
  spec.n = 8;
  EXPECT_THROW(make_process(spec), contract_error);
}

TEST(Registry, RejectsZeroBins) {
  process_spec spec;
  spec.kind = "two-choice";
  spec.n = 0;
  EXPECT_THROW(make_process(spec), contract_error);
}

TEST(Registry, ValidatesIntegerParameters) {
  process_spec spec;
  spec.n = 8;
  spec.kind = "g-bounded";
  spec.param = 2.5;  // g must be integral
  EXPECT_THROW(make_process(spec), contract_error);
  spec.param = -1.0;
  EXPECT_THROW(make_process(spec), contract_error);
  spec.kind = "b-batch";
  spec.param = 0.0;  // b must be >= 1
  EXPECT_THROW(make_process(spec), contract_error);
}

TEST(Registry, ValidatesBeta) {
  process_spec spec;
  spec.n = 8;
  spec.kind = "one-plus-beta";
  spec.param = 1.5;
  EXPECT_THROW(make_process(spec), contract_error);
}

TEST(Registry, ProcessesMatchDirectConstruction) {
  process_spec spec;
  spec.kind = "g-myopic";
  spec.n = 64;
  spec.param = 3.0;
  any_process from_registry = make_process(spec);
  g_myopic_comp direct(64, 3);
  rng_t a(7);
  rng_t b(7);
  for (int t = 0; t < 2000; ++t) {
    from_registry.step(a);
    direct.step(b);
  }
  EXPECT_EQ(from_registry.state().loads(), direct.state().loads());
  EXPECT_EQ(from_registry.name(), direct.name());
}

TEST(Registry, KindListHasNoDuplicates) {
  const auto kinds = registered_process_kinds();
  std::set<std::string> seen;
  for (const auto& [kind, desc] : kinds) {
    EXPECT_TRUE(seen.insert(kind).second) << "duplicate kind " << kind;
  }
  EXPECT_GE(kinds.size(), 15u);
}

}  // namespace
