// Tests for the g-Adv-Load setting (perturbed load reports).
#include <gtest/gtest.h>

#include <cmath>

#include "test_support.hpp"

namespace {

using namespace nb;
using nb::testing::mean_gap_of;
using nb::testing::run_and_snapshot;
using nb::testing::total_balls;

TEST(GAdvLoad, RejectsNegativeG) {
  EXPECT_THROW(g_adv_load<inverting_estimates>(8, -1), nb::contract_error);
}

TEST(GAdvLoad, ConservesBalls) {
  EXPECT_EQ(total_balls(run_and_snapshot(g_adv_load<inverting_estimates>(32, 3), 3000, 1)), 3000);
  EXPECT_EQ(total_balls(run_and_snapshot(g_adv_load<uniform_noise_estimates>(32, 3), 3000, 2)), 3000);
}

TEST(GAdvLoad, EstimatesStayWithinLegalBox) {
  // Every strategy must report within [x - g, x + g].
  load_state s(4);
  for (int i = 0; i < 5; ++i) s.allocate(0);
  s.allocate(1);
  rng_t rng(3);
  const load_t g = 3;
  inverting_estimates inv;
  uniform_noise_estimates uni;
  truthful_estimates tru;
  for (bin_index i = 0; i < 4; ++i) {
    const double x = static_cast<double>(s.load(i));
    for (int trial = 0; trial < 50; ++trial) {
      EXPECT_LE(std::fabs(inv.estimate(i, s, g, rng) - x), g);
      EXPECT_LE(std::fabs(uni.estimate(i, s, g, rng) - x), g);
      EXPECT_DOUBLE_EQ(tru.estimate(i, s, g, rng), x);
    }
  }
}

TEST(GAdvLoad, InvertingStrategyFlipsCloseComparisons) {
  // Overloaded bin under-reports, underloaded over-reports: with g = 3 and
  // loads 5 vs 1 (diff 4 < 2g = 6) the estimates become 2 vs 4 -> reversed.
  load_state s(4);
  for (int i = 0; i < 5; ++i) s.allocate(0);
  s.allocate(1);  // loads (5,1,0,0), avg 1.5
  rng_t rng(4);
  inverting_estimates inv;
  const double e_heavy = inv.estimate(0, s, 3, rng);
  const double e_light = inv.estimate(1, s, 3, rng);
  EXPECT_DOUBLE_EQ(e_heavy, 2.0);
  EXPECT_DOUBLE_EQ(e_light, 4.0);
  EXPECT_LT(e_heavy, e_light);  // the heavier bin now *looks* lighter
}

TEST(GAdvLoad, UniformNoiseIsIntegerOffset) {
  load_state s(2);
  s.allocate(0);
  rng_t rng(5);
  uniform_noise_estimates uni;
  for (int trial = 0; trial < 200; ++trial) {
    const double e = uni.estimate(0, s, 2, rng);
    EXPECT_DOUBLE_EQ(e, std::round(e));
    EXPECT_GE(e, -1.0);
    EXPECT_LE(e, 3.0);
  }
}

TEST(GAdvLoad, InvertingWorseThanUniformNoise) {
  const step_count m = 80000;
  const double adversarial =
      mean_gap_of([] { return g_adv_load<inverting_estimates>(256, 4); }, m, 10, 6);
  const double benign =
      mean_gap_of([] { return g_adv_load<uniform_noise_estimates>(256, 4); }, m, 10, 7);
  EXPECT_GT(adversarial + 0.3, benign);
}

TEST(GAdvLoad, GapGrowsWithG) {
  const step_count m = 80000;
  const double g2 = mean_gap_of([] { return g_adv_load<inverting_estimates>(256, 2); }, m, 10, 8);
  const double g8 = mean_gap_of([] { return g_adv_load<inverting_estimates>(256, 8); }, m, 10, 9);
  EXPECT_LT(g2, g8);
}

TEST(GAdvLoad, StaysWithinWarmupBound) {
  // g-Adv-Load <= (2g)-Adv-Comp <= O(2g + log n) (Theorem 5.12 shape).
  const bin_count n = 256;
  const step_count m = 100000;
  for (const load_t g : {2, 4, 8}) {
    const double gap = mean_gap_of([&] { return g_adv_load<inverting_estimates>(n, g); }, m, 5, 10 + g);
    EXPECT_LE(gap, 4.0 * (2.0 * g + std::log(n))) << "g=" << g;
  }
}

TEST(GAdvLoad, NameIncludesStrategyAndParameter) {
  EXPECT_EQ(g_adv_load<inverting_estimates>(8, 3).name(), "g-adv-load-invert[g=3]");
  EXPECT_EQ(g_adv_load<uniform_noise_estimates>(8, 2).name(), "g-adv-load-uniform[g=2]");
}

TEST(GAdvLoad, ResetReproducesRun) {
  g_adv_load<inverting_estimates> p(32, 4);
  rng_t rng(11);
  for (int t = 0; t < 2000; ++t) p.step(rng);
  const auto first = p.state().loads();
  p.reset();
  rng_t rng2(11);
  for (int t = 0; t < 2000; ++t) p.step(rng2);
  EXPECT_EQ(p.state().loads(), first);
}

}  // namespace
