// step/step_many parity: for every process in the registry and every
// concrete strategy variant, the bulk path must consume randomness in the
// same order as the per-ball path, so a fixed seed yields an identical
// final load vector (and an identically positioned generator) no matter
// how the balls are chunked.
#include <gtest/gtest.h>

#include "test_support.hpp"

namespace {

using namespace nb;

/// Steps `bulk` through m balls in a deliberately uneven chunk pattern
/// (1, 2, 3, ... plus a zero-size chunk) while `per_ball` walks one ball
/// at a time, then requires identical loads and identical RNG positions.
template <allocation_process P>
void expect_parity(P per_ball, P bulk, step_count m, std::uint64_t seed) {
  rng_t rng_a(seed);
  rng_t rng_b(seed);
  for (step_count t = 0; t < m; ++t) per_ball.step(rng_a);
  step_count done = 0;
  step_count next = 1;
  step_many(bulk, rng_b, 0);  // zero-count bulk call is a no-op
  while (done < m) {
    const step_count chunk = std::min(next, m - done);
    step_many(bulk, rng_b, chunk);
    done += chunk;
    ++next;
  }
  ASSERT_EQ(per_ball.state().balls(), bulk.state().balls());
  EXPECT_EQ(per_ball.state().loads(), bulk.state().loads())
      << per_ball.name() << ": bulk path diverged from per-ball path";
  EXPECT_EQ(per_ball.state().gap(), bulk.state().gap());
  EXPECT_EQ(rng_a.next(), rng_b.next())
      << per_ball.name() << ": bulk path consumed a different amount of entropy";
}

template <allocation_process P>
void expect_parity(const P& process, step_count m, std::uint64_t seed) {
  expect_parity(process, process, m, seed);
}

/// Representative parameter for each registered kind.
double param_for(const std::string& kind) {
  if (kind == "d-choice") return 4.0;
  if (kind == "one-plus-beta") return 0.7;
  if (kind == "b-batch") return 37.0;  // deliberately not a divisor of m
  if (kind.rfind("tau-delay", 0) == 0) return 17.0;
  if (kind.rfind("sigma", 0) == 0) return 2.0;
  return 3.0;  // g for the adversarial kinds; ignored by one/two-choice
}

TEST(StepMany, EveryRegisteredProcessMatchesPerBallPath) {
  for (const auto& [kind, description] : registered_process_kinds()) {
    process_spec spec;
    spec.kind = kind;
    spec.n = 64;
    spec.param = param_for(kind);
    expect_parity(make_process(spec), 2500, 99 + std::hash<std::string>{}(kind));
  }
}

TEST(StepMany, BasicProcessVariants) {
  expect_parity(one_choice(32), 2000, 1);
  expect_parity(two_choice(32), 2000, 2);
  expect_parity(d_choice(32, 5), 2000, 3);
  expect_parity(one_plus_beta(32, 0.3), 2000, 4);
}

TEST(StepMany, NoiseWrapperVariants) {
  expect_parity(g_adv_comp<always_correct>(32, 4), 2000, 5);
  expect_parity(g_adv_comp<overload_booster>(32, 4), 2000, 6);
  expect_parity(g_adv_comp<index_bias>(32, 4), 2000, 7);
  expect_parity(g_adv_load<truthful_estimates>(32, 4), 2000, 8);
  expect_parity(rho_noisy_comp<rho_constant>(32, rho_constant(0.8)), 2000, 9);
  expect_parity(rho_noisy_comp<rho_step>(32, rho_step(2, 0.25)), 2000, 10);
  expect_parity(noisy_mean_thinning<thinning_random>(32, 2), 2000, 11);
  expect_parity(tau_delay<delay_random>(32, 9), 2000, 12);
}

TEST(StepMany, BatchBoundaryCases) {
  // b == 1 (refresh every ball), b a divisor of m, b > m (single batch),
  // and chunks that straddle many boundaries at once.
  expect_parity(b_batch(16, 1), 1000, 21);
  expect_parity(b_batch(16, 50), 1000, 22);
  expect_parity(b_batch(16, 5000), 1000, 23);
  b_batch per_ball(16, 25);
  b_batch bulk = per_ball;
  rng_t rng_a(24);
  rng_t rng_b(24);
  for (step_count t = 0; t < 400; ++t) per_ball.step(rng_a);
  step_many(bulk, rng_b, 400);  // one chunk spanning 16 whole batches
  EXPECT_EQ(per_ball.state().loads(), bulk.state().loads());
  EXPECT_EQ(per_ball.reported_load(3), bulk.reported_load(3));
}

TEST(StepMany, DelayWindowCases) {
  // tau == 1 (no window), window larger than the run (pure fill phase),
  // and resuming bulk execution from a half-filled window.
  expect_parity(tau_delay<delay_adversarial>(16, 1), 600, 31);
  expect_parity(tau_delay<delay_adversarial>(16, 2000), 600, 32);
  expect_parity(tau_delay<delay_oldest>(16, 64), 600, 33);
  tau_delay<delay_adversarial> per_ball(16, 40);
  tau_delay<delay_adversarial> bulk = per_ball;
  rng_t rng_a(34);
  rng_t rng_b(34);
  for (step_count t = 0; t < 20; ++t) per_ball.step(rng_a);  // half-filled
  step_many(bulk, rng_b, 20);
  for (step_count t = 0; t < 500; ++t) per_ball.step(rng_a);
  step_many(bulk, rng_b, 500);
  EXPECT_EQ(per_ball.state().loads(), bulk.state().loads());
  EXPECT_EQ(per_ball.stale_load(5), bulk.stale_load(5));
}

TEST(StepMany, ErasedPathUsesBulkLoop) {
  // any_process::step_many must agree with the wrapped process's per-ball
  // path (one indirect call per chunk, fused loop behind it).
  two_choice direct(48);
  any_process erased(direct);
  rng_t rng_a(41);
  rng_t rng_b(41);
  for (step_count t = 0; t < 3000; ++t) direct.step(rng_a);
  erased.step_many(rng_b, 3000);
  EXPECT_EQ(direct.state().loads(), erased.state().loads());
}

TEST(StepMany, SimulateMatchesPerBallLoop) {
  // simulate() now routes through step_many; it must agree with a manual
  // per-ball loop for both templated and type-erased processes.
  g_bounded manual(32, 2);
  g_bounded driven(32, 2);
  rng_t rng_a(51);
  rng_t rng_b(51);
  for (step_count t = 0; t < 4000; ++t) manual.step(rng_a);
  const auto result = simulate(driven, 4000, rng_b);
  EXPECT_EQ(manual.state().loads(), driven.state().loads());
  EXPECT_DOUBLE_EQ(result.gap, manual.state().gap());
  EXPECT_EQ(result.min_load, manual.state().min_load());
}

TEST(StepMany, RecordTraceMatchesPerBallLoop) {
  // The chunked recorder must sample the same states as the per-ball
  // recorder did: same trace length, same sample times, same gaps.
  two_choice chunked(32);
  two_choice manual(32);
  rng_t rng_a(61);
  rng_t rng_b(61);
  trace_options opt;
  opt.sample_interval = 70;  // not a divisor of m
  const auto tr = record_trace(chunked, 1000, rng_a, opt);
  std::vector<trace_point> expected;
  for (step_count t = 0; t < 1000; ++t) {
    manual.step(rng_b);
    if (manual.state().balls() % opt.sample_interval == 0) {
      expected.push_back({manual.state().balls(), manual.state().gap(), 0, 0, 0, 0, false});
    }
  }
  expected.push_back({manual.state().balls(), manual.state().gap(), 0, 0, 0, 0, false});
  ASSERT_EQ(tr.points.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(tr.points[i].t, expected[i].t);
    EXPECT_DOUBLE_EQ(tr.points[i].gap, expected[i].gap);
  }
  EXPECT_EQ(chunked.state().loads(), manual.state().loads());
}

/// A process with no member step_many: the free-function fallback must
/// loop over step() and still satisfy the allocation_process concept.
class fallback_only_process {
 public:
  explicit fallback_only_process(bin_count n) : state_(n) {}
  void step(rng_t& rng) { state_.allocate(sample_bin(rng, state_.n())); }
  [[nodiscard]] const load_state& state() const noexcept { return state_; }
  void reset() { state_.reset(); }
  [[nodiscard]] std::string name() const { return "fallback-only"; }

 private:
  load_state state_;
};

static_assert(allocation_process<fallback_only_process>);
static_assert(!bulk_steppable<fallback_only_process>);
static_assert(bulk_steppable<two_choice>);
static_assert(bulk_steppable<any_process>);

TEST(StepMany, FallbackLoopsOverStep) {
  expect_parity(fallback_only_process(32), 1500, 71);
  // The fallback process also works through type erasure.
  any_process erased{fallback_only_process(32)};
  rng_t rng(72);
  erased.step_many(rng, 500);
  EXPECT_EQ(erased.state().balls(), 500);
}

TEST(StepMany, CheckpointChunksCoverRunExactly) {
  // Start at 50 balls, run 1000 more with checkpoints every 300:
  // boundaries at 300, 600, 900 -> chunks 250, 300, 300, 150.
  std::vector<step_count> chunks;
  step_count balls = 50;
  step_count remaining = 1000;
  while (remaining > 0) {
    const step_count c = checkpoint_chunk(balls, remaining, 300);
    chunks.push_back(c);
    balls += c;
    remaining -= c;
  }
  ASSERT_EQ(chunks.size(), 4u);
  EXPECT_EQ(chunks[0], 250);
  EXPECT_EQ(chunks[1], 300);
  EXPECT_EQ(chunks[2], 300);
  EXPECT_EQ(chunks[3], 150);
  EXPECT_EQ(balls, 1050);
  EXPECT_EQ(checkpoint_chunk(0, 0, 10), 0);
  EXPECT_EQ(checkpoint_chunk(7, 100, 10), 3);  // runs to the next multiple
  EXPECT_THROW(static_cast<void>(checkpoint_chunk(0, 10, 0)), contract_error);
}

}  // namespace
