// The lane-interleaved SIMD departure kernel (core/kernel/kernel_depart)
// and its contract: per-bin departure counts are a pure function of
// (channel, lanes, n, snapshot, weight, k, seed) -- the ISA backend is
// execution-only and NEVER affects results.  Mirroring test_kernel.cpp,
// the suite pins
//   (1) the scalar backend of both channels to an independently written
//       replay of the documented draw order (drain: bounded(n) pairs plus
//       a raw tie draw, fuller-by-snapshot wins, drained-dry picks
//       re-served from the dedicated replay stream; random: bounded(n) /
//       bounded(B) attempt pairs accepted against remaining load),
//   (2) every vector backend to the scalar backend, bit for bit,
//       including the drain replay/fallback path and multi-block runs,
//   (3) the capacity guarantee (no bin is ever overdrawn) and the count
//       sum, so commit via load_state::apply_releases never trips,
//   (4) golden FNV values per channel so the sampling contract cannot
//       drift silently between releases,
//   (5) the engines' batched-departure routing: ISA- and thread-count
//       invariance, the bulk lease pop, and the warn_once diagnostics on
//       every silent serial fallback (no commit_departures, undersized
//       block, span-saturated snapshot).
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "core/kernel/kernel_common.hpp"
#include "test_support.hpp"

namespace {

using namespace nb;

/// Every ISA the dispatch knows (excluding auto_detect), supported or not.
const std::vector<kernel_isa>& all_backends() {
  static const std::vector<kernel_isa> isas = {kernel_isa::scalar, kernel_isa::sse2,
                                               kernel_isa::avx2, kernel_isa::avx512,
                                               kernel_isa::neon};
  return isas;
}

/// Backends that can execute on this machine (scalar always can).
std::vector<kernel_isa> supported_backends() {
  std::vector<kernel_isa> isas;
  for (const kernel_isa isa : all_backends()) {
    if (kernel_isa_supported(isa)) isas.push_back(isa);
  }
  return isas;
}

/// The allocation suite's snapshot shape (offsets cycle 0..4, padded for
/// the vector gathers) -- plenty of ties for the drain tie-break.
std::vector<std::uint8_t> make_snapshot(bin_count n) {
  std::vector<std::uint8_t> snap(static_cast<std::size_t>(n) + compact_snapshot::tail_padding, 0);
  for (bin_count i = 0; i < n; ++i) snap[i] = static_cast<std::uint8_t>(i % 5);
  return snap;
}

std::uint8_t span_of(const std::vector<std::uint8_t>& snap, bin_count n) {
  std::uint8_t mx = 0;
  for (bin_count i = 0; i < n; ++i) mx = snap[i] > mx ? snap[i] : mx;
  return mx;
}

std::vector<std::uint32_t> depart_counts(kernel_isa isa, std::size_t lanes,
                                         depart_channel channel, bin_count n,
                                         const std::vector<std::uint8_t>& snap, load_t base,
                                         weight_t w, step_count k, std::uint64_t seed) {
  std::vector<std::uint32_t> rel(n, 0);
  kernel_depart(isa, lanes, channel, n, snap.data(), base, span_of(snap, n), w, rel.data(), k,
                seed);
  return rel;
}

// ---------------------------------------------------------------------------
// (1) The scalar backend vs independent replays of the documented laws.

/// An independent replay of the drain channel: per-lane xoshiro streams,
/// ball t uses lane t % lanes and draws bounded(n), bounded(n), one raw
/// tie word; the FULLER bin by snapshot offset wins (tie bit set -> first
/// index).  Drained-dry picks re-serve from rng_t(derive_seed(seed,
/// lanes)) under the serial eligibility law over remaining load, with the
/// deterministic fullest-bin fallback.  Valid for k within one fill block
/// of the driver (lane rotation restarts per block).
std::vector<std::uint32_t> drain_reference(std::size_t lanes, bin_count n,
                                           const std::vector<std::uint8_t>& snap, load_t base,
                                           weight_t w, step_count k, std::uint64_t seed) {
  std::vector<rng_t> lane_rng;
  for (std::size_t l = 0; l < lanes; ++l) lane_rng.emplace_back(derive_seed(seed, l));
  rng_t replay(derive_seed(seed, lanes));
  std::vector<std::uint32_t> rel(n, 0);
  const auto remaining = [&](std::uint32_t c) {
    return static_cast<weight_t>(base) + snap[c] - static_cast<weight_t>(rel[c]) * w;
  };
  const auto replay_one = [&] {
    for (int attempt = 0; attempt < 4096; ++attempt) {
      const auto i = static_cast<std::uint32_t>(bounded(replay, n));
      const auto j = static_cast<std::uint32_t>(bounded(replay, n));
      const weight_t ri = remaining(i);
      const weight_t rj = remaining(j);
      if (ri < w && rj < w) continue;
      std::uint32_t c;
      if (ri != rj) {
        c = ri > rj ? i : j;
      } else {
        c = (replay.next() >> 63) != 0 ? i : j;
      }
      ++rel[c];
      return;
    }
    std::uint32_t best = 0;
    weight_t best_rem = remaining(0);
    for (bin_count i = 1; i < n; ++i) {
      if (remaining(i) > best_rem) {
        best = i;
        best_rem = remaining(i);
      }
    }
    ++rel[best];
  };
  for (step_count t = 0; t < k; ++t) {
    rng_t& rng = lane_rng[static_cast<std::size_t>(t) % lanes];
    const auto i1 = static_cast<std::uint32_t>(bounded(rng, n));
    const auto i2 = static_cast<std::uint32_t>(bounded(rng, n));
    const std::uint64_t c = rng.next();
    const std::uint32_t chosen = snap[i1] > snap[i2]   ? i1
                                 : snap[i2] > snap[i1] ? i2
                                 : ((c >> 63) != 0 ? i1 : i2);
    if (remaining(chosen) >= w) {
      ++rel[chosen];
    } else {
      replay_one();
    }
  }
  return rel;
}

TEST(DepartKernel, ScalarDrainMatchesDocumentedDrawOrder) {
  // base 12 over 97 bins: k = 1003 retires ~74% of the snapshot's total
  // load, so the fold's remaining-capacity check and the replay stream
  // are exercised heavily, not just the happy path.
  const bin_count n = 97;
  const std::size_t lanes = 4;
  const step_count k = 1003;
  const auto snap = make_snapshot(n);
  const auto expected = drain_reference(lanes, n, snap, 12, 1, k, 77);
  EXPECT_EQ(depart_counts(kernel_isa::scalar, lanes, depart_channel::drain, n, snap, 12, 1, k, 77),
            expected);
  EXPECT_EQ(std::accumulate(expected.begin(), expected.end(), std::int64_t{0}), k);
}

TEST(DepartKernel, ScalarWeightedDrainMatchesDocumentedDrawOrder) {
  // Fixed per-ball weight 3: eligibility, the remaining fold and the
  // capacity guarantee all scale by w.
  const bin_count n = 16;
  const std::size_t lanes = 3;
  const step_count k = 120;
  const auto snap = make_snapshot(n);
  const auto expected = drain_reference(lanes, n, snap, 30, 3, k, 5);
  const auto got =
      depart_counts(kernel_isa::scalar, lanes, depart_channel::drain, n, snap, 30, 3, k, 5);
  EXPECT_EQ(got, expected);
  for (bin_count i = 0; i < n; ++i) {
    EXPECT_LE(static_cast<weight_t>(got[i]) * 3, static_cast<weight_t>(30) + snap[i])
        << "bin " << i << " overdrawn";
  }
}

TEST(DepartKernel, ScalarRandomMatchesDocumentedDrawOrder) {
  // Per attempt, lane t % lanes draws bounded(n) (a bin) then bounded(B)
  // (acceptance, B frozen at base + span); the attempt serves iff the
  // draw lands under the bin's remaining load.  Valid within one attempt
  // block; base >> k keeps acceptance near 1 so that holds by a mile.
  const bin_count n = 97;
  const std::size_t lanes = 4;
  const step_count k = 1000;
  const load_t base = 10000;
  const auto snap = make_snapshot(n);
  const std::uint64_t bound = static_cast<std::uint64_t>(base) + span_of(snap, n);

  std::vector<rng_t> lane_rng;
  for (std::size_t l = 0; l < lanes; ++l) lane_rng.emplace_back(derive_seed(123, l));
  std::vector<std::uint32_t> expected(n, 0);
  step_count served = 0;
  std::size_t attempts = 0;
  while (served < k) {
    rng_t& rng = lane_rng[attempts % lanes];
    const auto j = static_cast<std::uint32_t>(bounded(rng, n));
    const auto u = static_cast<weight_t>(bounded(rng, bound));
    const weight_t rem = static_cast<weight_t>(base) + snap[j] - expected[j];
    if (rem > 0 && u < rem) {
      ++expected[j];
      ++served;
    }
    ++attempts;
  }
  ASSERT_LT(attempts, 8000u) << "reference must stay within one attempt block";

  EXPECT_EQ(
      depart_counts(kernel_isa::scalar, lanes, depart_channel::random, n, snap, base, 1, k, 123),
      expected);
}

// ---------------------------------------------------------------------------
// (2) Backend bit-parity.

TEST(DepartKernel, BackendsBitIdenticalAcrossShapes) {
  // Every supported backend must reproduce the scalar counts bit for bit
  // over awkward shapes, for both channels: remainder lanes (1, 3, 5),
  // tiny bins, and event counts that cross the driver's 8192-event block.
  const auto isas = supported_backends();
  ASSERT_GE(isas.size(), 1u);
  for (const bin_count n : {1u, 2u, 7u, 97u, 4096u}) {
    const auto snap = make_snapshot(n);
    for (const std::size_t lanes : {std::size_t{1}, std::size_t{3}, std::size_t{5},
                                    std::size_t{8}, std::size_t{64}}) {
      for (const step_count k : {step_count{1}, step_count{63}, step_count{1000},
                                 step_count{20000}}) {
        for (const depart_channel channel : {depart_channel::drain, depart_channel::random}) {
          // base 25000 keeps even the n = 1, k = 20000 shape within
          // capacity for both channels.
          const auto reference =
              depart_counts(kernel_isa::scalar, lanes, channel, n, snap, 25000, 1, k, 31337);
          EXPECT_EQ(std::accumulate(reference.begin(), reference.end(), std::int64_t{0}), k);
          for (const kernel_isa isa : isas) {
            EXPECT_EQ(depart_counts(isa, lanes, channel, n, snap, 25000, 1, k, 31337), reference)
                << kernel_isa_name(isa) << " channel=" << static_cast<int>(channel) << " n=" << n
                << " lanes=" << lanes << " k=" << k;
          }
        }
      }
    }
  }
}

TEST(DepartKernel, DrainFullExhaustionBitIdenticalAndGuarded) {
  // k equal to the snapshot's total load drains every bin to exactly
  // zero -- the replay stream and the deterministic fullest-bin fallback
  // both fire, on every backend, with identical counts.  One more event
  // must refuse with the weight-naming contract error.
  const bin_count n = 97;
  const auto snap = make_snapshot(n);
  const load_t base = 12;
  step_count capacity = 0;
  for (bin_count i = 0; i < n; ++i) capacity += base + snap[i];

  const auto reference =
      depart_counts(kernel_isa::scalar, 8, depart_channel::drain, n, snap, base, 1, capacity, 9);
  for (bin_count i = 0; i < n; ++i) {
    EXPECT_EQ(reference[i], static_cast<std::uint32_t>(base + snap[i])) << "bin " << i;
  }
  for (const kernel_isa isa : supported_backends()) {
    EXPECT_EQ(depart_counts(isa, 8, depart_channel::drain, n, snap, base, 1, capacity, 9),
              reference)
        << kernel_isa_name(isa);
    try {
      (void)depart_counts(isa, 8, depart_channel::drain, n, snap, base, 1, capacity + 1, 9);
      FAIL() << "draining past the total load must throw (" << kernel_isa_name(isa) << ")";
    } catch (const contract_error& e) {
      EXPECT_NE(std::string(e.what()).find("weight 1"), std::string::npos) << e.what();
    }
  }
}

TEST(DepartKernel, UInt16AndUInt32RowsAgree) {
  const bin_count n = 53;
  const auto snap = make_snapshot(n);
  for (const depart_channel channel : {depart_channel::drain, depart_channel::random}) {
    for (const kernel_isa isa : supported_backends()) {
      std::vector<std::uint16_t> row16(n, 0);
      kernel_depart(isa, 8, channel, n, snap.data(), 25000, span_of(snap, n), 1, row16.data(),
                    9999, 5);
      const auto row32 = depart_counts(isa, 8, channel, n, snap, 25000, 1, 9999, 5);
      for (bin_index i = 0; i < n; ++i) {
        EXPECT_EQ(row16[i], row32[i])
            << kernel_isa_name(isa) << " channel=" << static_cast<int>(channel) << " bin " << i;
      }
    }
  }
}

TEST(DepartKernel, TuningIsExecutionOnly) {
  // The memory-latency knobs reorder loads and stores in the fill
  // backends, never draws: both channels stay bit-identical under every
  // combination, on every backend.
  const kernel_tuning saved = current_kernel_tuning();
  const bin_count n = 257;
  const auto snap = make_snapshot(n);
  for (const depart_channel channel : {depart_channel::drain, depart_channel::random}) {
    set_kernel_tuning(kernel_tuning{.prefetch = true, .interleave = true});
    const auto reference =
        depart_counts(kernel_isa::scalar, 13, channel, n, snap, 500, 1, 30000, 2026);
    for (const bool prefetch : {false, true}) {
      for (const bool interleave : {false, true}) {
        set_kernel_tuning(kernel_tuning{.prefetch = prefetch, .interleave = interleave});
        for (const kernel_isa isa : supported_backends()) {
          EXPECT_EQ(depart_counts(isa, 13, channel, n, snap, 500, 1, 30000, 2026), reference)
              << kernel_isa_name(isa) << " channel=" << static_cast<int>(channel)
              << " prefetch=" << prefetch << " interleave=" << interleave;
        }
      }
    }
  }
  set_kernel_tuning(saved);
}

// ---------------------------------------------------------------------------
// (3) Capacity guarantee and count sums.

TEST(DepartKernel, CountsSumToKAndRespectCapacity) {
  const bin_count n = 64;
  const auto snap = make_snapshot(n);
  for (const kernel_isa isa : supported_backends()) {
    // Weighted drain: rel[i] * w can never exceed the bin's snapshot load.
    const auto drained = depart_counts(isa, 8, depart_channel::drain, n, snap, 301, 3, 5000, 11);
    EXPECT_EQ(std::accumulate(drained.begin(), drained.end(), std::int64_t{0}), 5000);
    for (bin_count i = 0; i < n; ++i) {
      EXPECT_LE(static_cast<weight_t>(drained[i]) * 3, static_cast<weight_t>(301) + snap[i])
          << kernel_isa_name(isa) << " bin " << i;
    }
    // Random: unit quanta, same per-bin bound.
    const auto random = depart_counts(isa, 8, depart_channel::random, n, snap, 100, 1, 6000, 12);
    EXPECT_EQ(std::accumulate(random.begin(), random.end(), std::int64_t{0}), 6000);
    for (bin_count i = 0; i < n; ++i) {
      EXPECT_LE(random[i], static_cast<std::uint32_t>(100 + snap[i]))
          << kernel_isa_name(isa) << " bin " << i;
    }
  }
}

TEST(DepartKernel, LaneCountIsASamplingParameter) {
  const bin_count n = 512;
  const auto snap = make_snapshot(n);
  const auto l4 = depart_counts(kernel_isa::scalar, 4, depart_channel::drain, n, snap, 100, 1,
                                10000, 42);
  const auto l8 = depart_counts(kernel_isa::scalar, 8, depart_channel::drain, n, snap, 100, 1,
                                10000, 42);
  EXPECT_NE(l4, l8);
}

// ---------------------------------------------------------------------------
// (4) Golden contract regression.

TEST(DepartKernel, GoldenContractRegression) {
  // Frozen FNV-1a folds of the count vectors for (seed 42, n 101, lanes
  // 8, k 10^5, base 2000) on the cyclic snapshot, per channel.  EVERY
  // compiled backend must hit the same golden hash directly -- a contract
  // drift that slipped into all backends at once still fails here.
  const bin_count n = 101;
  const auto snap = make_snapshot(n);
  const auto fnv_of = [](const std::vector<std::uint32_t>& counts) {
    std::uint64_t fnv = 0xCBF29CE484222325ULL;
    for (const std::uint32_t c : counts) {
      fnv ^= c;
      fnv *= 0x100000001B3ULL;
    }
    return fnv;
  };
  for (const kernel_isa isa : supported_backends()) {
    const auto drained = depart_counts(isa, 8, depart_channel::drain, n, snap, 2000, 1, 100000, 42);
    EXPECT_EQ(std::accumulate(drained.begin(), drained.end(), std::int64_t{0}), 100000)
        << kernel_isa_name(isa);
    EXPECT_EQ(fnv_of(drained), 7532978351616542871ULL) << kernel_isa_name(isa);
    const auto random = depart_counts(isa, 8, depart_channel::random, n, snap, 2000, 1, 100000, 42);
    EXPECT_EQ(std::accumulate(random.begin(), random.end(), std::int64_t{0}), 100000)
        << kernel_isa_name(isa);
    EXPECT_EQ(fnv_of(random), 14558517916894183099ULL) << kernel_isa_name(isa);
  }
}

// ---------------------------------------------------------------------------
// (5) Contract surface.

TEST(DepartKernel, RejectsContractViolations) {
  const auto snap = make_snapshot(8);
  std::vector<std::uint32_t> rel(8, 0);
  // Lanes and bins, like kernel_run.
  EXPECT_THROW(kernel_depart(kernel_isa::scalar, 0, depart_channel::drain, 8, snap.data(), 100, 4,
                             1, rel.data(), 10, 1),
               contract_error);
  EXPECT_THROW(kernel_depart(kernel_isa::scalar, kernel_max_lanes + 1, depart_channel::drain, 8,
                             snap.data(), 100, 4, 1, rel.data(), 10, 1),
               contract_error);
  EXPECT_THROW(kernel_depart(kernel_isa::scalar, 8, depart_channel::drain, 0, snap.data(), 100, 4,
                             1, rel.data(), 10, 1),
               contract_error);
  // The random channel retires unit quanta only, and needs resident load.
  EXPECT_THROW(kernel_depart(kernel_isa::scalar, 8, depart_channel::random, 8, snap.data(), 100, 4,
                             2, rel.data(), 10, 1),
               contract_error);
  const std::vector<std::uint8_t> empty(8 + compact_snapshot::tail_padding, 0);
  EXPECT_THROW(kernel_depart(kernel_isa::scalar, 8, depart_channel::random, 8, empty.data(), 0, 0,
                             1, rel.data(), 10, 1),
               contract_error);
  // Weight bounds.
  EXPECT_THROW(kernel_depart(kernel_isa::scalar, 8, depart_channel::drain, 8, snap.data(), 100, 4,
                             0, rel.data(), 10, 1),
               contract_error);
}

// ---------------------------------------------------------------------------
// (6) Engine routing: batched departures through the serial kernel engine
// and the shard engine.

any_process churned_process(const char* channel, bin_count n, step_count warm,
                            std::uint64_t seed, rng_t& rng) {
  any_process process{two_choice(n)};
  process.set_model(make_model("unit", "uniform", n, channel));
  rng = rng_t(seed);
  step_many(process, rng, warm);
  return process;
}

TEST(DepartEngineKernel, BatchedBitIdenticalAcrossIsaBackends) {
  for (const char* channel : {"drain", "random"}) {
    std::vector<load_t> reference;
    std::uint64_t reference_rng_state = 0;
    for (const kernel_isa isa : supported_backends()) {
      rng_t rng(7);
      any_process process = churned_process(channel, 64, 20000, 7, rng);
      kernel_engine engine(kernel_options{.lanes = 8, .isa = isa, .min_window = 1});
      depart_many_kernel(process, rng, 8000, engine);
      EXPECT_EQ(process.state().balls(), 12000) << channel;
      if (reference.empty()) {
        reference = process.state().loads();
        reference_rng_state = rng.next();
      } else {
        EXPECT_EQ(process.state().loads(), reference)
            << channel << " " << kernel_isa_name(isa);
        EXPECT_EQ(rng.next(), reference_rng_state)
            << channel << " " << kernel_isa_name(isa);
      }
    }
    // The batched path is a declared sampling-contract change: it must
    // NOT reproduce the serial per-event stream.
    rng_t serial_rng(7);
    any_process serial = churned_process(channel, 64, 20000, 7, serial_rng);
    depart_many(serial, serial_rng, 8000);
    EXPECT_NE(serial.state().loads(), reference) << channel;
  }
}

TEST(DepartEngineShard, BatchedBitIdenticalAcrossThreadCountsAndBackends) {
  std::vector<load_t> reference;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    for (const kernel_isa isa : supported_backends()) {
      rng_t rng(21);
      any_process process = churned_process("drain", 64, 20000, 21, rng);
      shard_engine engine(shard_options{
          .threads = threads, .shards = 8, .min_window = 1, .lanes = 8, .isa = isa});
      depart_many_parallel(process, rng, 8000, engine);
      EXPECT_EQ(process.state().balls(), 12000);
      if (reference.empty()) {
        reference = process.state().loads();
      } else {
        EXPECT_EQ(process.state().loads(), reference)
            << threads << " threads, " << kernel_isa_name(isa);
      }
    }
  }
}

TEST(DepartEngineKernel, BulkLeasePopIsBitIdenticalToSerial) {
  // The lease channel is RNG-free FIFO popping: the engine's bulk path
  // must be the serial per-event loop exactly, stream position included.
  rng_t rng_a(3);
  any_process batched = churned_process("lease", 32, 5000, 3, rng_a);
  kernel_engine engine(kernel_options{.min_window = 1});
  depart_many_kernel(batched, rng_a, 4000, engine);

  rng_t rng_b(3);
  any_process serial = churned_process("lease", 32, 5000, 3, rng_b);
  depart_many(serial, rng_b, 4000);

  EXPECT_EQ(batched.state().loads(), serial.state().loads());
  EXPECT_EQ(batched.state().balls(), 1000);
  EXPECT_EQ(rng_a.next(), rng_b.next());
}

TEST(DepartEngineKernel, WeightedDrainRetiresTheBallsActualWeight) {
  // Fixed per-ball weight 3: every batched departure must retire exactly
  // 3 load units, so total load tracks 3 * balls throughout.
  const bin_count n = 32;
  any_process process{two_choice(n)};
  process.set_model(make_model("fixed:3", "uniform", n, "drain"));
  rng_t rng(9);
  step_many(process, rng, 3000);
  ASSERT_EQ(nb::testing::total_balls(process.state().loads()), 9000);
  kernel_engine engine(kernel_options{.min_window = 1});
  depart_many_kernel(process, rng, 1000, engine);
  EXPECT_EQ(process.state().balls(), 2000);
  EXPECT_EQ(nb::testing::total_balls(process.state().loads()), 6000);
}

// ---------------------------------------------------------------------------
// (7) The silent-fallback diagnostics: every path that quietly serves a
// batched-departure request through the serial per-event loop must say so
// once (warn_once), and must still serve it bit-identically to the serial
// reference.

TEST(DepartEngineKernel, UndersizedBlocksFallBackToSerialWithDiagnostic) {
  rng_t rng_a(13);
  any_process via_engine = churned_process("drain", 64, 2000, 13, rng_a);
  const std::string key = "depart-engine-window/" + via_engine.name();
  kernel_engine engine(kernel_options{});  // default min_window = 4096
  depart_many_kernel(via_engine, rng_a, 100, engine);
  EXPECT_TRUE(warned(key)) << key;

  rng_t rng_b(13);
  any_process serial = churned_process("drain", 64, 2000, 13, rng_b);
  depart_many(serial, rng_b, 100);
  EXPECT_EQ(via_engine.state().loads(), serial.state().loads());
  EXPECT_EQ(rng_a.next(), rng_b.next());
}

TEST(DepartEngineKernel, SpanSaturatedLoadsFallBackToSerialWithDiagnostic) {
  // Three fixed-weight-300 balls over two bins leave loads {600, 300}:
  // the 300-unit span exceeds the compact snapshot's 8-bit range, so the
  // batched path must decline, warn once, and serve serially.
  any_process process{two_choice(2)};
  process.set_model(make_model("fixed:300", "uniform", 2, "drain"));
  rng_t rng(1);
  step_many(process, rng, 3);
  ASSERT_EQ(nb::testing::total_balls(process.state().loads()), 900);
  const std::string key = "depart-engine-span/" + process.name();
  kernel_engine engine(kernel_options{.min_window = 1});
  depart_many_kernel(process, rng, 1, engine);
  EXPECT_TRUE(warned(key)) << key;
  EXPECT_EQ(process.state().balls(), 2);
  EXPECT_EQ(nb::testing::total_balls(process.state().loads()), 600);
}

/// A minimal process with a per-event depart() but no commit_departures:
/// the engines must accept it, warn once, and run the serial loop.
struct bare_departer {
  load_state st{16};
  void step(rng_t& rng) { st.allocate(static_cast<bin_index>(bounded(rng, 16))); }
  void depart(rng_t& rng) {
    (void)rng;
    const auto& loads = st.loads();
    for (std::size_t i = 0; i < loads.size(); ++i) {
      if (loads[i] > 0) {
        st.release(static_cast<bin_index>(i), 1);
        return;
      }
    }
  }
  [[nodiscard]] const load_state& state() const { return st; }
  [[nodiscard]] std::string name() const { return "bare-departer"; }
};

TEST(DepartEngine, NonBatchDepartableFallsBackToSerialWithDiagnostic) {
  bare_departer process;
  rng_t rng(2);
  for (int i = 0; i < 50; ++i) process.step(rng);
  kernel_engine kernel(kernel_options{.min_window = 1});
  kernel.depart_many(process, rng, 5);
  EXPECT_TRUE(warned("depart-engine/bare-departer"));
  EXPECT_EQ(process.state().balls(), 45);

  shard_engine shard(shard_options{.threads = 2, .min_window = 1});
  shard.depart_many(process, rng, 5);
  EXPECT_EQ(process.state().balls(), 40);
}

}  // namespace
