// Shared helpers for the noisebalance test suites.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "noisebalance.hpp"

namespace nb::testing {

/// Runs `process` for m balls from a fresh RNG with `seed`.
template <allocation_process P>
std::vector<load_t> run_and_snapshot(P process, step_count m, std::uint64_t seed) {
  rng_t rng(seed);
  for (step_count t = 0; t < m; ++t) process.step(rng);
  return process.state().loads();
}

/// Asserts two processes produce *identical* load vectors when driven by
/// identical RNG streams -- the strongest form of process equivalence
/// (same sampling decisions, same entropy consumption, same allocations).
template <allocation_process P1, allocation_process P2>
::testing::AssertionResult traces_identical(P1 a, P2 b, step_count m, std::uint64_t seed) {
  rng_t rng_a(seed);
  rng_t rng_b(seed);
  for (step_count t = 0; t < m; ++t) {
    a.step(rng_a);
    b.step(rng_b);
    if (a.state().loads() != b.state().loads()) {
      return ::testing::AssertionFailure()
             << a.name() << " and " << b.name() << " diverged at step " << (t + 1) << " of " << m;
    }
  }
  return ::testing::AssertionSuccess();
}

/// Mean gap over `runs` independent runs (deterministic given the seed).
template <typename Factory>
double mean_gap_of(Factory&& factory, step_count m, std::size_t runs, std::uint64_t seed) {
  double acc = 0.0;
  for (std::size_t r = 0; r < runs; ++r) {
    auto process = factory();
    rng_t rng(derive_seed(seed, r));
    acc += simulate(process, m, rng).gap;
  }
  return acc / static_cast<double>(runs);
}

/// Total number of balls across bins.
inline std::int64_t total_balls(const std::vector<load_t>& loads) {
  std::int64_t sum = 0;
  for (const load_t x : loads) sum += x;
  return sum;
}

}  // namespace nb::testing
