// Integration tests: scaled-to-n=10^4 reproductions of the paper's
// Section 12 experiments (single seeds, so deterministic).  The expected
// ranges come from Tables 12.3/12.4 at n = 10^4, widened by +/-1-2 around
// the published support.
#include <gtest/gtest.h>

#include "test_support.hpp"

namespace {

using namespace nb;

constexpr bin_count kN = 10000;
constexpr step_count kM = 1000LL * kN;  // the paper's m = 1000 n

double single_gap(any_process p, step_count m, std::uint64_t seed) {
  rng_t rng(seed);
  return simulate(p, m, rng).gap;
}

TEST(PaperScale, TwoChoiceGapMatchesTable12_3) {
  // Paper: 2:46% 3:54%.
  const double gap = single_gap(two_choice(kN), kM, 1001);
  EXPECT_GE(gap, 2.0);
  EXPECT_LE(gap, 4.0);
}

TEST(PaperScale, GBounded4MatchesTable12_3) {
  // Paper: 8:1% 9:82% 10:17%.
  const double gap = single_gap(g_bounded(kN, 4), kM, 1002);
  EXPECT_GE(gap, 7.0);
  EXPECT_LE(gap, 11.0);
}

TEST(PaperScale, GBounded16MatchesTable12_3) {
  // Paper: 23:4% 24:37% 25:43% 26:11% 27:5%.
  const double gap = single_gap(g_bounded(kN, 16), kM, 1003);
  EXPECT_GE(gap, 21.0);
  EXPECT_LE(gap, 29.0);
}

TEST(PaperScale, GMyopic4MatchesTable12_3) {
  // Paper: 7:2% 8:87% 9:11%.
  const double gap = single_gap(g_myopic_comp(kN, 4), kM, 1004);
  EXPECT_GE(gap, 6.0);
  EXPECT_LE(gap, 10.0);
}

TEST(PaperScale, GMyopic16MatchesTable12_3) {
  // Paper: 20:14% 21:47% 22:29% 23:8% 25:2%.  Implementing the paper's
  // *written definition* of g-Myopic-Comp (random bin when |diff| <= g)
  // gives 16-18 here -- confirmed by an independent textbook
  // reimplementation with a different RNG; the paper's plotted values run
  // ~0.25 g higher (see EXPERIMENTS.md).  Accept the union of both ranges.
  const double gap = single_gap(g_myopic_comp(kN, 16), kM, 1005);
  EXPECT_GE(gap, 15.0);
  EXPECT_LE(gap, 26.0);
}

TEST(PaperScale, SigmaNoisy4MatchesTable12_3) {
  // Paper: 6:20% 7:73% 8:7%.
  const double gap = single_gap(sigma_noisy_load(kN, rho_gaussian(4.0)), kM, 1006);
  EXPECT_GE(gap, 5.0);
  EXPECT_LE(gap, 9.0);
}

TEST(PaperScale, SigmaNoisy16MatchesTable12_3) {
  // Paper: 12:2% 13:33% 14:42% 15:16% 16:6% 18:1%.
  const double gap = single_gap(sigma_noisy_load(kN, rho_gaussian(16.0)), kM, 1007);
  EXPECT_GE(gap, 11.0);
  EXPECT_LE(gap, 19.0);
}

TEST(PaperScale, BatchNMatchesTable12_4) {
  // Paper, b = n = 10^4: 5:29% 6:49% 7:18% 8:4%.
  const double gap = single_gap(b_batch(kN, kN), kM, 1008);
  EXPECT_GE(gap, 4.0);
  EXPECT_LE(gap, 9.0);
}

TEST(PaperScale, Batch10MatchesTable12_4) {
  // Paper, b = 10: 3:44% 4:56% -- essentially Two-Choice.
  const double gap = single_gap(b_batch(kN, 10), kM, 1009);
  EXPECT_GE(gap, 2.0);
  EXPECT_LE(gap, 5.0);
}

TEST(PaperScale, OneChoice10kBallsMatchesTable12_4) {
  // Paper, One-Choice with m = b = 10^4 = n: 6:22% 7:56% 8:19% 9:3%.
  const double gap = single_gap(one_choice(kN), kN, 1010);
  EXPECT_GE(gap, 5.0);
  EXPECT_LE(gap, 10.0);
}

TEST(PaperScale, Fig12_1OrderingHolds) {
  // At g = sigma = 12: g-Bounded > g-Myopic > sigma-Noisy-Load (Fig 12.1).
  const double bounded_gap = single_gap(g_bounded(kN, 12), kM, 1011);
  const double myopic_gap = single_gap(g_myopic_comp(kN, 12), kM, 1012);
  const double noisy_gap = single_gap(sigma_noisy_load(kN, rho_gaussian(12.0)), kM, 1013);
  EXPECT_GT(bounded_gap, myopic_gap);
  EXPECT_GT(myopic_gap, noisy_gap);
}

TEST(PaperScale, Prop11_2MyopicLowerBound) {
  // Proposition 11.2(i): for m = n g / 2, Gap(m) >= g/35 w.h.p.
  const load_t g = 16;
  const auto m = static_cast<step_count>(kN) * g / 2;
  const double gap = single_gap(g_myopic_comp(kN, g), m, 1014);
  EXPECT_GE(gap, static_cast<double>(g) / 35.0);
}

TEST(PaperScale, Obs11_6BatchFirstBatchMatchesOneChoice) {
  // Observation 11.6: Gap(b) of b-Batch equals One-Choice's gap with b
  // balls.  Compare distributions over a few runs at b = 10^4.
  const step_count b = 10000;
  const double batch = nb::testing::mean_gap_of([&] { return b_batch(kN, b); }, b, 10, 1015);
  const double one = nb::testing::mean_gap_of([&] { return one_choice(kN); }, b, 10, 1016);
  EXPECT_NEAR(batch, one, 0.6);
}

}  // namespace
