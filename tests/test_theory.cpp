// Tests for the closed-form theory bounds (Table 2.3 / Table 11.1 shapes).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/theory/bounds.hpp"

namespace {

namespace th = nb::theory;

TEST(TwoChoiceGap, KnownValues) {
  // log2 log n: n = e^8 -> 3.
  EXPECT_NEAR(th::two_choice_gap(std::exp(8.0)), 3.0, 1e-9);
  EXPECT_NEAR(th::two_choice_gap(1e4), std::log2(std::log(1e4)), 1e-9);
}

TEST(TwoChoiceGap, MonotoneInN) {
  EXPECT_LT(th::two_choice_gap(1e3), th::two_choice_gap(1e6));
  EXPECT_THROW((void)th::two_choice_gap(1.0), nb::contract_error);
}

TEST(OneChoiceLight, MEqualsNGivesLogOverLogLog) {
  const double n = 1e6;
  const double v = th::one_choice_maxload_light(n, n);
  const double expected = std::log(n) / std::log(4.0 * std::log(n));
  EXPECT_NEAR(v, expected, 1e-9);
}

TEST(OneChoiceLight, DecreasesAsMShrinks) {
  const double n = 1e6;
  EXPECT_GT(th::one_choice_maxload_light(n, n), th::one_choice_maxload_light(n, n / 100.0));
}

TEST(OneChoiceHeavy, SqrtShape) {
  EXPECT_NEAR(th::one_choice_gap_heavy(1e4, 1e6), std::sqrt(100.0 * std::log(1e4)), 1e-9);
}

TEST(OneChoiceGap, ContinuousAcrossRegimes) {
  const double n = 1e4;
  // Light regime value positive and finite; heavy regime grows with m.
  EXPECT_GT(th::one_choice_gap(n, n), 0.0);
  EXPECT_GT(th::one_choice_gap(n, 100.0 * n * std::log(n)),
            th::one_choice_gap(n, n * std::log(n)));
}

TEST(AdvCompBounds, WarmupDominatesLinearForSmallG) {
  const double n = 1e5;
  for (double g = 1.0; g <= 32.0; g *= 2.0) {
    EXPECT_GE(th::adv_comp_warmup_bound(n, g), th::adv_comp_linear_bound(n, g) * 0.1);
  }
}

TEST(AdvCompBounds, SublinearBeatsLinearForSmallG) {
  // For g << log n the refined bound g/log g * log log n is far below
  // g + log n.
  const double n = 1e18;  // log n ~ 41.4, log log n ~ 3.7
  const double g = 4.0;
  EXPECT_LT(th::adv_comp_sublinear_bound(n, g), th::adv_comp_linear_bound(n, g));
}

TEST(AdvCompBounds, TightGapPhaseTransition) {
  const double n = 1e6;
  const double logn = std::log(n);
  // Below log n: dominated by the sublinear term ordering; above: linear.
  const double small_g = th::adv_comp_tight_gap(n, 2.0);
  const double large_g = th::adv_comp_tight_gap(n, 4.0 * logn);
  EXPECT_LT(small_g, large_g);
  // For g >= log n the curve is ~linear: ratio of consecutive doublings
  // approaches 2.
  const double r = th::adv_comp_tight_gap(n, 8.0 * logn) / th::adv_comp_tight_gap(n, 4.0 * logn);
  EXPECT_NEAR(r, 2.0, 0.35);
}

TEST(AdvCompBounds, TightGapMonotoneInG) {
  const double n = 1e6;
  double prev = 0.0;
  for (double g = 2.0; g <= 1024.0; g *= 2.0) {
    const double v = th::adv_comp_tight_gap(n, g);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(BatchGap, BEqualsNMatchesLogOverLogLog) {
  const double n = 1e6;
  const double expected = std::log(n) / std::log(4.0 * std::log(n));
  EXPECT_NEAR(th::batch_gap(n, n), expected, 1e-9);
}

TEST(BatchGap, HeavyRegimeIsBOverN) {
  const double n = 1e4;
  const double b = 4.0 * n * std::log(n);
  EXPECT_NEAR(th::batch_gap(n, b), b / n, 1e-9);
}

TEST(BatchGap, MonotoneInB) {
  const double n = 1e5;
  double prev = 0.0;
  for (double b = 2.0; b <= 64.0 * n; b *= 4.0) {
    const double v = th::batch_gap(n, b);
    EXPECT_GE(v, prev - 1e-9) << "b=" << b;
    prev = v;
  }
}

TEST(SigmaBounds, UpperAboveLower) {
  const double n = 1e5;
  for (double sigma = 1.0; sigma <= 256.0; sigma *= 4.0) {
    EXPECT_GT(th::sigma_noisy_load_upper(n, sigma), th::sigma_noisy_load_lower(n, sigma));
  }
}

TEST(SigmaBounds, LowerBoundRegimes) {
  const double n = std::exp(16.0);  // log n = 16
  // Small sigma: sigma^{4/5} < sigma^{2/5} sqrt(16) = 4 sigma^{2/5}
  // iff sigma^{2/5} < 4 iff sigma < 32.
  EXPECT_NEAR(th::sigma_noisy_load_lower(n, 8.0), std::pow(8.0, 0.8), 1e-9);
  EXPECT_NEAR(th::sigma_noisy_load_lower(n, 1024.0), std::pow(1024.0, 0.4) * 4.0, 1e-9);
}

TEST(MyopicLowerBound, BallCountFormula) {
  EXPECT_DOUBLE_EQ(th::myopic_lower_bound_m(100.0, 8.0), 400.0);
}

TEST(LayeredInduction, KnownLevels) {
  const double n = std::exp(16.0);  // log n = 16
  // g = 4 = 16^{1/2} -> k = 2; g = 2 ~ 16^{1/4} -> k = 4.
  EXPECT_EQ(th::layered_induction_levels(n, 4.0), 2);
  EXPECT_EQ(th::layered_induction_levels(n, 2.0), 4);
}

TEST(LayeredInduction, MonotoneDecreasingInG) {
  const double n = 1e9;
  int prev = 1000;
  for (double g = 1.5; g <= 32.0; g *= 2.0) {
    const int k = th::layered_induction_levels(n, g);
    EXPECT_LE(k, prev);
    prev = k;
  }
  EXPECT_THROW((void)th::layered_induction_levels(n, 1.0), nb::contract_error);
}

TEST(Preconditions, RejectDegenerateArguments) {
  EXPECT_THROW((void)th::one_choice_maxload_light(0.5, 10.0), nb::contract_error);
  EXPECT_THROW((void)th::adv_comp_warmup_bound(100.0, 0.5), nb::contract_error);
  EXPECT_THROW((void)th::adv_comp_sublinear_bound(100.0, 1.0), nb::contract_error);
  EXPECT_THROW((void)th::batch_gap(100.0, 0.5), nb::contract_error);
  EXPECT_THROW((void)th::sigma_noisy_load_upper(100.0, 0.0), nb::contract_error);
}

}  // namespace
