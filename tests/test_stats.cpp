// Unit tests for the statistics substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "stats/histogram.hpp"
#include "stats/regression.hpp"
#include "stats/summary.hpp"

namespace {

using nb::fit_linear;
using nb::int_histogram;
using nb::pearson;
using nb::quantile_sorted;
using nb::running_stats;
using nb::summarize;

// ---------------------------------------------------------------------------
// running_stats

TEST(RunningStats, EmptyIsZero) {
  running_stats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  running_stats rs;
  rs.add(3.5);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.5);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 3.5);
  EXPECT_DOUBLE_EQ(rs.max(), 3.5);
}

TEST(RunningStats, MatchesNaiveComputation) {
  const std::vector<double> xs = {1.0, 2.5, -3.0, 7.25, 0.0, 4.5, -1.25};
  running_stats rs;
  double sum = 0.0;
  for (double x : xs) {
    rs.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  const double var = ss / static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(rs.mean(), mean, 1e-12);
  EXPECT_NEAR(rs.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), -3.0);
  EXPECT_DOUBLE_EQ(rs.max(), 7.25);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  running_stats rs;
  const double offset = 1e9;
  for (int i = 0; i < 1000; ++i) rs.add(offset + (i % 2 == 0 ? 1.0 : -1.0));
  EXPECT_NEAR(rs.mean(), offset, 1e-3);
  EXPECT_NEAR(rs.variance(), 1.001, 0.01);  // alternating +/-1 around offset
}

TEST(RunningStats, MergeEqualsSequential) {
  running_stats all;
  running_stats left;
  running_stats right;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10.0;
    all.add(v);
    (i < 20 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  running_stats a;
  running_stats b;
  b.add(2.0);
  b.add(4.0);
  a.merge(b);  // empty <- non-empty
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  running_stats empty;
  a.merge(empty);  // non-empty <- empty
  EXPECT_EQ(a.count(), 2u);
}

// ---------------------------------------------------------------------------
// quantiles / summarize

TEST(Quantile, ExactOrderStatistics) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.25), 2.0);
}

TEST(Quantile, InterpolatesBetweenValues) {
  const std::vector<double> sorted = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.75), 7.5);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW((void)quantile_sorted({}, 0.5), nb::contract_error);
  EXPECT_THROW((void)quantile_sorted({1.0}, 1.5), nb::contract_error);
  EXPECT_THROW((void)quantile_sorted({1.0}, -0.1), nb::contract_error);
}

TEST(Summarize, FullSummary) {
  const auto s = summarize({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Summarize, EmptySampleIsAllZero) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

// ---------------------------------------------------------------------------
// int_histogram

TEST(Histogram, CountsAndFractions) {
  int_histogram h;
  h.add(3);
  h.add(3);
  h.add(4);
  EXPECT_EQ(h.total(), 3);
  EXPECT_EQ(h.count(3), 2);
  EXPECT_EQ(h.count(4), 1);
  EXPECT_EQ(h.count(99), 0);
  EXPECT_NEAR(h.fraction(3), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(h.min_value(), 3);
  EXPECT_EQ(h.max_value(), 4);
}

TEST(Histogram, WeightedAdd) {
  int_histogram h;
  h.add(1, 10);
  h.add(2, 30);
  EXPECT_EQ(h.total(), 40);
  EXPECT_NEAR(h.mean(), 1.75, 1e-12);
  EXPECT_THROW(h.add(1, 0), nb::contract_error);
}

TEST(Histogram, QuantileAndMode) {
  int_histogram h;
  h.add(2, 46);
  h.add(3, 54);  // the paper's Two-Choice n=10^4 distribution
  EXPECT_EQ(h.mode(), 3);
  EXPECT_EQ(h.quantile(0.25), 2);
  EXPECT_EQ(h.quantile(0.5), 3);
  EXPECT_EQ(h.quantile(1.0), 3);
  EXPECT_NEAR(h.mean(), 2.54, 1e-12);
}

TEST(Histogram, PaperStyleRendering) {
  int_histogram h;
  h.add(2, 46);
  h.add(3, 54);
  EXPECT_EQ(h.to_paper_style(), "2:46%  3:54%");
}

TEST(Histogram, MergeAccumulates) {
  int_histogram a;
  int_histogram b;
  a.add(1, 2);
  b.add(1, 3);
  b.add(5, 1);
  a.merge(b);
  EXPECT_EQ(a.total(), 6);
  EXPECT_EQ(a.count(1), 5);
  EXPECT_EQ(a.count(5), 1);
}

TEST(Histogram, EmptyHistogramGuards) {
  int_histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_THROW((void)h.min_value(), nb::contract_error);
  EXPECT_THROW((void)h.mean(), nb::contract_error);
  EXPECT_THROW((void)h.quantile(0.5), nb::contract_error);
}

TEST(Histogram, EntriesSorted) {
  int_histogram h;
  h.add(7);
  h.add(-2);
  h.add(3);
  const auto entries = h.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].first, -2);
  EXPECT_EQ(entries[1].first, 3);
  EXPECT_EQ(entries[2].first, 7);
}

// ---------------------------------------------------------------------------
// regression

TEST(Regression, ExactLineRecovered) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {3, 5, 7, 9, 11};  // y = 2x + 1
  const auto fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Regression, NoisyLineHasHighButImperfectR2) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i + ((i % 2 == 0) ? 1.0 : -1.0));
  }
  const auto fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 0.01);
  EXPECT_GT(fit.r_squared, 0.99);
  EXPECT_LT(fit.r_squared, 1.0);
}

TEST(Regression, ConstantYGivesZeroSlope) {
  const auto fit = fit_linear({1, 2, 3}, {4, 4, 4});
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);
}

TEST(Regression, RejectsDegenerateInput) {
  EXPECT_THROW((void)fit_linear({1}, {2}), nb::contract_error);
  EXPECT_THROW((void)fit_linear({1, 2}, {1}), nb::contract_error);
  EXPECT_THROW((void)fit_linear({2, 2}, {1, 3}), nb::contract_error);
}

TEST(Pearson, PerfectCorrelations) {
  EXPECT_NEAR(pearson({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(pearson({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(Pearson, UncorrelatedIsNearZero) {
  // Symmetric pattern with exactly zero covariance against 1..4.
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {1, -1, -1, 1}), 0.0, 1e-12);
  EXPECT_EQ(pearson({1, 2, 3}, {5, 5, 5}), 0.0);  // zero-variance convention
}

}  // namespace
