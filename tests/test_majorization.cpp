// Tests for probability allocation vectors and majorization utilities.
#include <gtest/gtest.h>

#include <numeric>

#include "core/potential/majorization.hpp"
#include "test_support.hpp"

namespace {

using namespace nb;

TEST(AllocationVectors, TwoChoiceFormula) {
  const auto p = two_choice_allocation_vector(4);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_NEAR(p[0], 1.0 / 16.0, 1e-12);
  EXPECT_NEAR(p[1], 3.0 / 16.0, 1e-12);
  EXPECT_NEAR(p[2], 5.0 / 16.0, 1e-12);
  EXPECT_NEAR(p[3], 7.0 / 16.0, 1e-12);
}

TEST(AllocationVectors, SumToOne) {
  for (const bin_count n : {1u, 2u, 7u, 100u}) {
    const auto p = two_choice_allocation_vector(n);
    const auto q = one_choice_allocation_vector(n);
    const auto r = one_plus_beta_allocation_vector(n, 0.3);
    EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 1.0, 1e-9);
    EXPECT_NEAR(std::accumulate(q.begin(), q.end(), 0.0), 1.0, 1e-9);
    EXPECT_NEAR(std::accumulate(r.begin(), r.end(), 0.0), 1.0, 1e-9);
  }
}

TEST(AllocationVectors, TwoChoiceIsNonDecreasing) {
  const auto p = two_choice_allocation_vector(50);
  for (std::size_t i = 1; i < p.size(); ++i) EXPECT_GE(p[i], p[i - 1]);
}

TEST(Majorization, UniformMajorizesTwoChoice) {
  // In the i-th-most-loaded ordering, One-Choice's prefix sums dominate:
  // it puts *more* probability on the heavier bins (hence worse balance).
  const auto one = one_choice_allocation_vector(16);
  const auto two = two_choice_allocation_vector(16);
  EXPECT_TRUE(majorizes(one, two));
  EXPECT_FALSE(majorizes(two, one));
}

TEST(Majorization, OnePlusBetaBetweenExtremes) {
  const auto one = one_choice_allocation_vector(16);
  const auto two = two_choice_allocation_vector(16);
  const auto mid = one_plus_beta_allocation_vector(16, 0.5);
  EXPECT_TRUE(majorizes(one, mid));
  EXPECT_TRUE(majorizes(mid, two));
}

TEST(Majorization, ReflexiveAndToleratesFloatNoise) {
  const auto p = two_choice_allocation_vector(8);
  EXPECT_TRUE(majorizes(p, p));
}

TEST(Majorization, RejectsMismatchedLengths) {
  EXPECT_THROW((void)majorizes({0.5, 0.5}, {1.0}), nb::contract_error);
}

TEST(LoadMajorization, DetectsDominance) {
  // (4,0,0) majorizes (2,1,1); both hold 4 balls.
  EXPECT_TRUE(load_vector_majorizes({4, 0, 0}, {2, 1, 1}));
  EXPECT_FALSE(load_vector_majorizes({2, 1, 1}, {4, 0, 0}));
}

TEST(LoadMajorization, OrderInsensitive) {
  EXPECT_TRUE(load_vector_majorizes({0, 0, 4}, {1, 2, 1}));
}

TEST(LoadMajorization, EqualVectorsMajorizeEachOther) {
  EXPECT_TRUE(load_vector_majorizes({2, 2, 2}, {2, 2, 2}));
}

TEST(LoadMajorization, RejectsDifferentBallCounts) {
  EXPECT_THROW((void)load_vector_majorizes({3, 0}, {1, 1}), nb::contract_error);
}

TEST(LoadMajorization, IncomparableVectorsBothFalse) {
  // (3,3,0,0) vs (4,1,1,0): prefix sums 3,6 vs 4,5 -- neither dominates.
  EXPECT_FALSE(load_vector_majorizes({3, 3, 0, 0}, {4, 1, 1, 0}));
  EXPECT_FALSE(load_vector_majorizes({4, 1, 1, 0}, {3, 3, 0, 0}));
}

TEST(LoadMajorization, OneChoiceTypicallyMajorizesTwoChoice) {
  // Lemma A.13's consequence, checked on mean prefix sums across runs: the
  // averaged sorted One-Choice load vector dominates Two-Choice's.
  const bin_count n = 64;
  const step_count m = 6400;
  std::vector<double> prefix_one(n, 0.0);
  std::vector<double> prefix_two(n, 0.0);
  const int kRuns = 20;
  for (int r = 0; r < kRuns; ++r) {
    auto loads1 = nb::testing::run_and_snapshot(one_choice(n), m, 100 + r);
    auto loads2 = nb::testing::run_and_snapshot(two_choice(n), m, 200 + r);
    std::sort(loads1.begin(), loads1.end(), std::greater<>());
    std::sort(loads2.begin(), loads2.end(), std::greater<>());
    double acc1 = 0.0;
    double acc2 = 0.0;
    for (bin_count i = 0; i < n; ++i) {
      acc1 += loads1[i];
      acc2 += loads2[i];
      prefix_one[i] += acc1 / kRuns;
      prefix_two[i] += acc2 / kRuns;
    }
  }
  for (bin_count i = 0; i < n; ++i) {
    EXPECT_GE(prefix_one[i] + 1.0, prefix_two[i]) << "prefix " << i;
  }
}

}  // namespace
