// The lane-interleaved SIMD allocation kernel (core/kernel/) and its hard
// contract: the accumulated counts are a pure function of (lanes, n,
// snapshot, balls, seed) -- the instruction-set backend is execution only
// and NEVER affects results, while `lanes` is a sampling parameter exactly
// like shard_options::shards.  The suite pins
//   (1) the lane streams to the public xoshiro256++/derive_seed reference,
//   (2) the scalar backend to an independently written replay of the
//       documented per-ball draw order (Lemire i1, Lemire i2, tie draw),
//   (3) every vector backend to the scalar backend, bit for bit, including
//       partial rounds, remainder lanes and the rejection replay path,
//   (4) the engines (serial kernel_engine, shard_engine with the kernel
//       engaged) to ISA- and thread-count-invariance for every registered
//       process, plus distributional parity with the serial bulk path,
//   (5) a lane-count golden value so the sampling contract cannot drift
//       silently between releases.
#include <gtest/gtest.h>

#include <numeric>

#include "core/kernel/kernel_common.hpp"
#include "test_support.hpp"

namespace {

using namespace nb;

/// Every ISA the dispatch knows (excluding auto_detect), supported or not.
const std::vector<kernel_isa>& all_backends() {
  static const std::vector<kernel_isa> isas = {kernel_isa::scalar, kernel_isa::sse2,
                                               kernel_isa::avx2, kernel_isa::avx512,
                                               kernel_isa::neon};
  return isas;
}

/// Backends that can execute on this machine (scalar always can).
std::vector<kernel_isa> supported_backends() {
  std::vector<kernel_isa> isas;
  for (const kernel_isa isa : all_backends()) {
    if (kernel_isa_supported(isa)) isas.push_back(isa);
  }
  return isas;
}

/// A deterministic snapshot with plenty of ties (offsets cycle 0..4) and
/// the 3 padding bytes the vector gathers require.
std::vector<std::uint8_t> make_snapshot(bin_count n) {
  std::vector<std::uint8_t> snap(static_cast<std::size_t>(n) + compact_snapshot::tail_padding, 0);
  for (bin_count i = 0; i < n; ++i) snap[i] = static_cast<std::uint8_t>(i % 5);
  return snap;
}

std::vector<std::uint32_t> kernel_counts(kernel_isa isa, std::size_t lanes, bin_count n,
                                         const std::vector<std::uint8_t>& snap, step_count balls,
                                         std::uint64_t seed) {
  std::vector<std::uint32_t> row(n, 0);
  kernel_run(isa, lanes, n, snap.data(), row.data(), balls, seed);
  return row;
}

// ---------------------------------------------------------------------------
// (1) Lane streams.

TEST(KernelLanes, LaneStreamsMatchDerivedXoshiroReference) {
  // Lane l of the SoA state must replay nb::xoshiro256pp(derive_seed(seed, l))
  // exactly -- this is what makes the kernel's sampling auditable from the
  // public RNG API alone.
  kernel_detail::lane_soa st;
  st.init(5, 2024);
  for (std::size_t l = 0; l < 5; ++l) {
    rng_t reference(derive_seed(2024, l));
    for (int i = 0; i < 100; ++i) {
      ASSERT_EQ(st.next(l), reference.next()) << "lane " << l << " draw " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// (2) The scalar backend vs an independent replay of the documented
// sampling order.

TEST(Kernel, ScalarMatchesDocumentedDrawOrder) {
  const bin_count n = 97;
  const std::size_t lanes = 4;
  const step_count balls = 1003;  // partial trailing round on purpose
  const std::uint64_t seed = 77;
  const auto snap = make_snapshot(n);

  // Reference: per-lane xoshiro streams; ball t uses lane t % lanes and
  // draws, in order, bounded(i1), bounded(i2), one raw tie draw.
  std::vector<rng_t> lane_rng;
  for (std::size_t l = 0; l < lanes; ++l) lane_rng.emplace_back(derive_seed(seed, l));
  std::vector<std::uint32_t> expected(n, 0);
  for (step_count t = 0; t < balls; ++t) {
    rng_t& rng = lane_rng[static_cast<std::size_t>(t) % lanes];
    const auto i1 = static_cast<bin_index>(bounded(rng, n));
    const auto i2 = static_cast<bin_index>(bounded(rng, n));
    const std::uint64_t c = rng.next();
    const std::uint8_t a = snap[i1];
    const std::uint8_t b = snap[i2];
    const bin_index chosen = a < b ? i1 : (b < a ? i2 : ((c >> 63) != 0 ? i1 : i2));
    ++expected[chosen];
  }

  EXPECT_EQ(kernel_counts(kernel_isa::scalar, lanes, n, snap, balls, seed), expected);
  EXPECT_EQ(std::accumulate(expected.begin(), expected.end(), std::int64_t{0}), balls);
}

TEST(Kernel, DecideAgreesWithBBatchSnapshotDecide) {
  // The kernel's branchless decide and b_batch::snapshot_decide implement
  // the same rule: feed snapshot_decide an rng whose next draw is exactly
  // the kernel's tie word and the choices must coincide -- for every
  // (less, greater, tie) x (bit set, bit clear) combination.
  const std::uint8_t snap[4] = {3, 7, 3, 0};
  rng_t rng(1234);
  for (int trial = 0; trial < 64; ++trial) {
    for (bin_index i1 = 0; i1 < 3; ++i1) {
      for (bin_index i2 = 0; i2 < 3; ++i2) {
        rng_t peek = rng;                   // snapshot_decide may consume one draw
        const std::uint64_t c = peek.next();  // ... and it would draw exactly this
        rng_t ref = rng;
        const bin_index want = b_batch::snapshot_decide(snap, i1, i2, ref);
        EXPECT_EQ(kernel_detail::decide(snap[i1], snap[i2], c, i1, i2), want)
            << "i1=" << i1 << " i2=" << i2 << " c.top=" << (c >> 63);
      }
    }
    rng.next();
  }
}

TEST(Kernel, ReplayBallConsumesQueueThenLiveStream) {
  // Force a genuine Lemire rejection through the queue: for bound = 3 the
  // threshold is (2^64 mod 3) = 1 and x = 0 yields low = 0 < 1, so a
  // queued first draw of 0 must be rejected and the retry must come from
  // the lane's live stream -- the exact continuation the vector backends
  // rely on when their coarse rejection test fires.
  const std::uint64_t bound = 3;
  const std::uint64_t threshold = kernel_detail::lemire_threshold(bound);
  ASSERT_EQ(threshold, 1u);
  const std::uint8_t snap[8] = {0, 1, 2, 0, 1, 2, 0, 1};

  kernel_detail::lane_soa st;
  st.init(2, 99);
  const std::uint64_t queue[3] = {0, 5, std::uint64_t{1} << 63};  // draw 1 rejects
  const std::uint32_t got = kernel_detail::replay_ball(st, 1, bound, threshold, snap, queue, 3);

  // Reference: same composite stream (queue, then lane 1's live draws).
  rng_t live(derive_seed(99, 1));
  std::vector<std::uint64_t> stream = {0, 5, std::uint64_t{1} << 63};
  for (int i = 0; i < 8; ++i) stream.push_back(live.next());
  std::size_t pos = 0;
  const auto draw_bounded = [&] {
    for (;;) {
      const std::uint64_t x = stream[pos++];
      const auto m = static_cast<__uint128_t>(x) * bound;
      if (static_cast<std::uint64_t>(m) >= threshold) return static_cast<std::uint32_t>(m >> 64);
    }
  };
  const std::uint32_t i1 = draw_bounded();
  const std::uint32_t i2 = draw_bounded();
  const std::uint64_t c = stream[pos++];
  EXPECT_EQ(got, kernel_detail::decide(snap[i1], snap[i2], c, i1, i2));
  EXPECT_GE(pos, 4u);  // the rejection actually consumed an extra draw

  // The lane must sit exactly past the draws the ball consumed: its next
  // output continues the reference stream.
  EXPECT_EQ(st.next(1), stream[pos]);
}

// ---------------------------------------------------------------------------
// (3) Backend bit-parity.

TEST(Kernel, BackendsBitIdenticalAcrossShapes) {
  // Every supported backend must reproduce the scalar counts bit for bit
  // over awkward shapes: lane counts that leave SSE2/AVX2 remainder lanes
  // (1, 3, 5, 7), tiny bins, ball counts that end mid-round, and multiple
  // blocks (balls > the driver's 8192-ball block).
  const auto isas = supported_backends();
  ASSERT_GE(isas.size(), 1u);
  for (const bin_count n : {1u, 2u, 7u, 97u, 4096u}) {
    const auto snap = make_snapshot(n);
    for (const std::size_t lanes : {std::size_t{1}, std::size_t{3}, std::size_t{5},
                                    std::size_t{8}, std::size_t{64}}) {
      for (const step_count balls : {step_count{1}, step_count{63}, step_count{1000},
                                     step_count{20000}}) {
        const auto reference = kernel_counts(kernel_isa::scalar, lanes, n, snap, balls, 31337);
        EXPECT_EQ(std::accumulate(reference.begin(), reference.end(), std::int64_t{0}), balls);
        for (const kernel_isa isa : isas) {
          EXPECT_EQ(kernel_counts(isa, lanes, n, snap, balls, 31337), reference)
              << kernel_isa_name(isa) << " n=" << n << " lanes=" << lanes
              << " balls=" << balls;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Alias-sampled lane path (PR 5): non-uniform bin probabilities through
// the same lane contract.

std::vector<std::uint32_t> kernel_alias_counts(kernel_isa isa, std::size_t lanes, bin_count n,
                                               const std::vector<std::uint8_t>& snap,
                                               const alias_table& table, step_count balls,
                                               std::uint64_t seed) {
  std::vector<std::uint32_t> row(n, 0);
  kernel_run_alias(isa, lanes, n, snap.data(), table.thresholds(), table.aliases(), row.data(),
                   balls, seed);
  return row;
}

TEST(KernelAlias, BackendsBitIdenticalAcrossShapes) {
  // The alias lane path's backend contract, over the same awkward shapes
  // as the uniform path: remainder lanes, tiny bins, mid-round tails,
  // multi-block runs.  AVX2 uses hardware gathers for the threshold /
  // alias / snapshot lookups; SSE2 vectorizes only the draw generation --
  // all must match the scalar reference bit for bit.
  const auto isas = supported_backends();
  for (const bin_count n : {1u, 2u, 7u, 97u, 4096u}) {
    const auto snap = make_snapshot(n);
    std::vector<double> weights(n);
    for (bin_count i = 0; i < n; ++i) weights[i] = 1.0 / (1.0 + static_cast<double>(i));
    const alias_table table(weights);
    for (const std::size_t lanes : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
      for (const step_count balls : {step_count{1}, step_count{63}, step_count{20000}}) {
        const auto reference =
            kernel_alias_counts(kernel_isa::scalar, lanes, n, snap, table, balls, 99);
        EXPECT_EQ(std::accumulate(reference.begin(), reference.end(), std::int64_t{0}), balls);
        for (const kernel_isa isa : isas) {
          EXPECT_EQ(kernel_alias_counts(isa, lanes, n, snap, table, balls, 99), reference)
              << kernel_isa_name(isa) << " n=" << n << " lanes=" << lanes << " balls=" << balls;
        }
      }
    }
  }
}

TEST(KernelAlias, ScalarMatchesDocumentedAliasDrawOrder) {
  // Per ball and lane: slot1 (Lemire draws), u1, slot2, u2, tie -- the
  // documented order, auditable from the public RNG API plus the table.
  const bin_count n = 11;
  const auto snap = make_snapshot(n);
  std::vector<double> weights(n, 1.0);
  weights[3] = 8.0;  // something non-uniform
  const alias_table table(weights);
  const std::uint64_t seed = 4242;
  const std::size_t lanes = 3;
  const step_count balls = 500;

  std::vector<std::uint32_t> expected(n, 0);
  std::vector<rng_t> lane_rng;
  for (std::size_t l = 0; l < lanes; ++l) lane_rng.emplace_back(derive_seed(seed, l));
  for (step_count t = 0; t < balls; ++t) {
    rng_t& rng = lane_rng[static_cast<std::size_t>(t) % lanes];
    const auto slot1 = static_cast<bin_index>(bounded(rng, n));
    const std::uint64_t u1 = rng.next();
    const bin_index i1 = u1 < table.thresholds()[slot1] ? slot1 : table.aliases()[slot1];
    const auto slot2 = static_cast<bin_index>(bounded(rng, n));
    const std::uint64_t u2 = rng.next();
    const bin_index i2 = u2 < table.thresholds()[slot2] ? slot2 : table.aliases()[slot2];
    const std::uint64_t c = rng.next();
    const bool pick_first = (snap[i1] < snap[i2]) || ((snap[i1] == snap[i2]) && (c >> 63) != 0);
    ++expected[pick_first ? i1 : i2];
  }
  EXPECT_EQ(kernel_alias_counts(kernel_isa::scalar, lanes, n, snap, table, balls, seed),
            expected);
}

TEST(KernelAlias, UInt16AndUInt32RowsAgree) {
  const bin_count n = 53;
  const auto snap = make_snapshot(n);
  std::vector<double> weights(n);
  for (bin_count i = 0; i < n; ++i) weights[i] = static_cast<double>((i % 7) + 1);
  const alias_table table(weights);
  for (const kernel_isa isa : supported_backends()) {
    std::vector<std::uint16_t> row16(n, 0);
    kernel_run_alias(isa, 8, n, snap.data(), table.thresholds(), table.aliases(), row16.data(),
                     9999, 5);
    const auto row32 = kernel_alias_counts(isa, 8, n, snap, table, 9999, 5);
    for (bin_index i = 0; i < n; ++i) {
      EXPECT_EQ(row16[i], row32[i]) << kernel_isa_name(isa) << " bin " << i;
    }
  }
}

TEST(Kernel, UInt16AndUInt32RowsAgree) {
  const bin_count n = 53;
  const auto snap = make_snapshot(n);
  for (const kernel_isa isa : supported_backends()) {
    std::vector<std::uint16_t> row16(n, 0);
    kernel_run(isa, 8, n, snap.data(), row16.data(), 9999, 5);
    const auto row32 = kernel_counts(isa, 8, n, snap, 9999, 5);
    for (bin_index i = 0; i < n; ++i) {
      EXPECT_EQ(row16[i], row32[i]) << kernel_isa_name(isa) << " bin " << i;
    }
  }
}

TEST(Kernel, LaneCountIsASamplingParameter) {
  // Different lane counts are different substream sets, so (with the same
  // seed) they must draw different randomness -- while each stays
  // internally ISA-invariant (covered above).
  const bin_count n = 512;
  const auto snap = make_snapshot(n);
  const auto l4 = kernel_counts(kernel_isa::scalar, 4, n, snap, 10000, 42);
  const auto l8 = kernel_counts(kernel_isa::scalar, 8, n, snap, 10000, 42);
  EXPECT_NE(l4, l8);
}

TEST(Kernel, GoldenLaneContractRegression) {
  // Frozen reference values for (seed 42, n 101, lanes 8, balls 10^5) on
  // the cyclic snapshot: an FNV-1a fold of the count vector plus spot
  // counts.  These pin the sampling contract itself -- any change to lane
  // seeding, draw order, Lemire acceptance or the tie rule shows up here.
  // EVERY compiled backend must hit the same golden hash directly (not
  // just match scalar): a contract drift that slipped into all backends at
  // once would still fail here.
  const bin_count n = 101;
  const auto snap = make_snapshot(n);
  for (const kernel_isa isa : supported_backends()) {
    const auto counts = kernel_counts(isa, 8, n, snap, 100000, 42);
    std::uint64_t fnv = 0xCBF29CE484222325ULL;
    for (const std::uint32_t c : counts) {
      fnv ^= c;
      fnv *= 0x100000001B3ULL;
    }
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::int64_t{0}), 100000)
        << kernel_isa_name(isa);
    EXPECT_EQ(fnv, 852822278533736135ULL) << kernel_isa_name(isa);
    EXPECT_EQ(counts[0], 1784u) << kernel_isa_name(isa);
    EXPECT_EQ(counts[1], 1301u) << kernel_isa_name(isa);
    EXPECT_EQ(counts[2], 986u) << kernel_isa_name(isa);
    EXPECT_EQ(counts[3], 579u) << kernel_isa_name(isa);
    EXPECT_EQ(counts[4], 206u) << kernel_isa_name(isa);
  }
}

TEST(Kernel, TuningIsExecutionOnly) {
  // Every combination of the memory-latency tuning knobs (prefetch,
  // interleave) must be bit-identical on every backend -- they reorder
  // loads and stores, never draws.  Shapes cover the interleaved two-round
  // path (balls >> lanes), its odd-tail handoff to the single-round loop,
  // remainder lanes, and multi-block runs.
  const kernel_tuning saved = current_kernel_tuning();
  const bin_count n = 257;
  const auto snap = make_snapshot(n);
  std::vector<double> weights(n);
  for (bin_count i = 0; i < n; ++i) weights[i] = static_cast<double>((i % 5) + 1);
  const alias_table table(weights);
  for (const std::size_t lanes : {std::size_t{8}, std::size_t{13}, std::size_t{16}}) {
    for (const step_count balls : {step_count{40}, step_count{1001}, step_count{30000}}) {
      set_kernel_tuning(kernel_tuning{.prefetch = true, .interleave = true});
      const auto reference = kernel_counts(kernel_isa::scalar, lanes, n, snap, balls, 2026);
      const auto alias_reference =
          kernel_alias_counts(kernel_isa::scalar, lanes, n, snap, table, balls, 2026);
      for (const bool prefetch : {false, true}) {
        for (const bool interleave : {false, true}) {
          set_kernel_tuning(kernel_tuning{.prefetch = prefetch, .interleave = interleave});
          for (const kernel_isa isa : supported_backends()) {
            EXPECT_EQ(kernel_counts(isa, lanes, n, snap, balls, 2026), reference)
                << kernel_isa_name(isa) << " lanes=" << lanes << " balls=" << balls
                << " prefetch=" << prefetch << " interleave=" << interleave;
            EXPECT_EQ(kernel_alias_counts(isa, lanes, n, snap, table, balls, 2026),
                      alias_reference)
                << kernel_isa_name(isa) << " lanes=" << lanes << " balls=" << balls
                << " prefetch=" << prefetch << " interleave=" << interleave;
          }
        }
      }
    }
  }
  set_kernel_tuning(saved);
}

// ---------------------------------------------------------------------------
// (4) Engines: ISA- and thread-count invariance, serial fallbacks, and
// distributional parity.

std::vector<load_t> kernel_engine_loads(kernel_isa isa, std::size_t lanes, bin_count n,
                                        step_count m, std::uint64_t seed) {
  b_batch process(n, n);
  rng_t rng(seed);
  kernel_engine engine(kernel_options{.lanes = lanes, .isa = isa, .min_window = 1});
  step_many_kernel(process, rng, m, engine);
  return process.state().loads();
}

TEST(KernelEngine, BitIdenticalAcrossIsaBackends) {
  const bin_count n = 1024;
  const step_count m = 64 * n;
  const auto reference = kernel_engine_loads(kernel_isa::scalar, 8, n, m, 7);
  EXPECT_EQ(nb::testing::total_balls(reference), m);
  for (const kernel_isa isa : supported_backends()) {
    EXPECT_EQ(kernel_engine_loads(isa, 8, n, m, 7), reference) << kernel_isa_name(isa);
  }
  // auto_detect resolves to one of the backends, so it matches too.
  EXPECT_EQ(kernel_engine_loads(kernel_isa::auto_detect, 8, n, m, 7), reference);
  // Different lanes: different sampling.
  EXPECT_NE(kernel_engine_loads(kernel_isa::scalar, 4, n, m, 7), reference);
}

TEST(KernelEngine, UndersizedWindowsFallBackToSerialExactly) {
  // min_window above every batch: the engine must walk the run through the
  // serial fused loop on the master stream, bit-identical to step_many
  // including the generator position afterwards.
  b_batch via_engine(32, 32);
  b_batch serial(32, 32);
  rng_t rng_a(21);
  rng_t rng_b(21);
  kernel_engine engine(kernel_options{.min_window = 1 << 20});
  step_many_kernel(via_engine, rng_a, 3210, engine);
  step_many(serial, rng_b, 3210);
  EXPECT_EQ(via_engine.state().loads(), serial.state().loads());
  EXPECT_EQ(rng_a.next(), rng_b.next());
}

TEST(KernelEngine, NonMinSelectProcessesFallBackToSerialExactly) {
  // two_choice has no window API; tau-Delay only probes (window 0).  Both
  // must route through the serial path bit for bit.
  two_choice tc_kernel(32);
  two_choice tc_serial(32);
  rng_t rng_a(5);
  rng_t rng_b(5);
  kernel_engine engine(kernel_options{.min_window = 1});
  step_many_kernel(tc_kernel, rng_a, 2000, engine);
  step_many(tc_serial, rng_b, 2000);
  EXPECT_EQ(tc_kernel.state().loads(), tc_serial.state().loads());
  EXPECT_EQ(rng_a.next(), rng_b.next());

  tau_delay<delay_adversarial> td_kernel(32, 9);
  tau_delay<delay_adversarial> td_serial(32, 9);
  rng_t rng_c(6);
  rng_t rng_d(6);
  step_many_kernel(td_kernel, rng_c, 2000, engine);
  step_many(td_serial, rng_d, 2000);
  EXPECT_EQ(td_kernel.state().loads(), td_serial.state().loads());
}

TEST(KernelEngine, TypeErasedRouteMatchesTemplateRoute) {
  const bin_count n = 256;
  const step_count m = 32 * n;
  b_batch direct(n, n);
  any_process erased{b_batch(n, n)};
  rng_t rng_a(88);
  rng_t rng_b(88);
  kernel_engine engine(kernel_options{.min_window = 1});
  step_many_kernel(direct, rng_a, m, engine);
  step_many_kernel(erased, rng_b, m, engine);
  EXPECT_EQ(direct.state().loads(), erased.state().loads());
}

TEST(KernelEngine, GapDistributionMatchesSerialBulkPath) {
  // The kernel path draws different (identically distributed) randomness
  // than the serial fused loop; agreement is distributional.  Same bar as
  // the shard engine's parity test: means over 24 runs within 1.5.
  const bin_count n = 100;
  const step_count m = 100 * n;
  const std::size_t runs = 24;
  double serial_mean = 0.0;
  double kernel_mean = 0.0;
  for (std::size_t r = 0; r < runs; ++r) {
    b_batch serial(n, n);
    rng_t rng_s(derive_seed(3000, r));
    step_many(serial, rng_s, m);
    serial_mean += serial.state().gap();

    b_batch kern(n, n);
    rng_t rng_k(derive_seed(4000, r));
    kernel_engine engine(kernel_options{.min_window = 1});
    step_many_kernel(kern, rng_k, m, engine);
    kernel_mean += kern.state().gap();
    EXPECT_EQ(kern.state().balls(), m);
  }
  EXPECT_NEAR(serial_mean / runs, kernel_mean / runs, 1.5);
}

std::vector<load_t> shard_kernel_loads(std::size_t threads, kernel_isa isa, bin_count n,
                                       step_count m, std::uint64_t seed) {
  b_batch process(n, n);
  rng_t rng(seed);
  shard_engine engine(shard_options{
      .threads = threads, .shards = 8, .min_window = 1, .lanes = 8, .isa = isa});
  step_many_parallel(process, rng, m, engine);
  return process.state().loads();
}

TEST(ShardEngineKernel, BitIdenticalAcrossThreadCountsAndBackends) {
  // The shard engine now runs min-select shards through the kernel: the
  // result must stay a pure function of (seed, shards, lanes) -- invariant
  // in BOTH the thread count and the ISA backend, jointly.
  const bin_count n = 256;
  const step_count m = 32 * n;
  const auto reference = shard_kernel_loads(1, kernel_isa::scalar, n, m, 2025);
  EXPECT_EQ(nb::testing::total_balls(reference), m);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    for (const kernel_isa isa : supported_backends()) {
      EXPECT_EQ(shard_kernel_loads(threads, isa, n, m, 2025), reference)
          << threads << " threads, " << kernel_isa_name(isa);
    }
  }
}

TEST(ShardEngineKernel, GapHistogramInvariantAcrossBackendsForRegistry) {
  // Every registered process kind, driven through run_repeated's
  // shard-parallel route with explicit scalar vs auto backends and 1 vs 2
  // worker threads: per-run max loads, gaps and the aggregate gap
  // histogram must all be bit-identical.  Non-windowed kinds exercise the
  // serial fallback; b-batch exercises the kernel.
  for (const auto& [kind, description] : registered_process_kinds()) {
    // One valid parameter per kind: (1+beta) needs beta in [0,1], every
    // other parameterized kind accepts a small positive integer.
    const process_spec spec{kind, 64, kind == "one-plus-beta" ? 0.5 : 4.0};
    repeat_options opt;
    opt.runs = 3;
    opt.master_seed = 17;
    opt.threads = 1;
    opt.threads_per_run = 1;
    opt.shards = 4;
    opt.lanes = 8;
    opt.isa = kernel_isa::scalar;
    const auto scalar_run = run_repeated([&] { return make_process(spec); }, 64 * 64, opt);
    opt.threads = 2;
    opt.threads_per_run = 2;
    opt.isa = kernel_isa::auto_detect;
    const auto simd_run = run_repeated([&] { return make_process(spec); }, 64 * 64, opt);
    ASSERT_EQ(scalar_run.runs.size(), simd_run.runs.size()) << kind;
    for (std::size_t r = 0; r < scalar_run.runs.size(); ++r) {
      EXPECT_EQ(scalar_run.runs[r].max_load, simd_run.runs[r].max_load) << kind << " run " << r;
      EXPECT_DOUBLE_EQ(scalar_run.runs[r].gap, simd_run.runs[r].gap) << kind << " run " << r;
    }
    EXPECT_EQ(scalar_run.gap_histogram.entries(), simd_run.gap_histogram.entries()) << kind;
  }
}

TEST(KernelEngine, SimulateKernelAndRepeatRouting) {
  b_batch process(64, 64);
  rng_t rng(3);
  kernel_engine engine(kernel_options{.min_window = 1});
  const auto result = simulate_kernel(process, 640, rng, engine);
  EXPECT_EQ(result.balls, 640);
  EXPECT_DOUBLE_EQ(result.gap, process.state().gap());

  // use_kernel routes run_repeated through the serial kernel engine;
  // results must not depend on the ISA backend.
  repeat_options opt;
  opt.runs = 3;
  opt.master_seed = 9;
  opt.use_kernel = true;
  opt.isa = kernel_isa::scalar;
  const auto a = run_repeated([] { return any_process(b_batch(64, 8192)); }, 64 * 256, opt);
  opt.isa = kernel_isa::auto_detect;
  const auto b = run_repeated([] { return any_process(b_batch(64, 8192)); }, 64 * 256, opt);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t r = 0; r < a.runs.size(); ++r) {
    EXPECT_EQ(a.runs[r].max_load, b.runs[r].max_load);
    EXPECT_DOUBLE_EQ(a.runs[r].gap, b.runs[r].gap);
  }
  EXPECT_EQ(a.gap_histogram.entries(), b.gap_histogram.entries());
}

// ---------------------------------------------------------------------------
// (5) Dispatch plumbing.

TEST(KernelIsa, NamesRoundTripAndAliases) {
  for (const kernel_isa isa : all_backends()) {
    const auto back = kernel_isa_from_name(kernel_isa_name(isa));
    ASSERT_TRUE(back.has_value()) << kernel_isa_name(isa);
    EXPECT_EQ(*back, isa) << kernel_isa_name(isa);
  }
  EXPECT_EQ(kernel_isa_from_name("auto"), kernel_isa::auto_detect);
  EXPECT_EQ(kernel_isa_from_name("simd"), kernel_isa::auto_detect);
  EXPECT_FALSE(kernel_isa_from_name("sve").has_value());
  EXPECT_FALSE(kernel_isa_from_name("").has_value());
}

TEST(KernelIsa, ResolutionIsSupportedAndStable) {
  const kernel_isa best = detect_kernel_isa();
  EXPECT_NE(best, kernel_isa::auto_detect);
  EXPECT_TRUE(kernel_isa_supported(best));
  EXPECT_EQ(resolve_kernel_isa(kernel_isa::auto_detect), best);
  EXPECT_EQ(resolve_kernel_isa(kernel_isa::scalar), kernel_isa::scalar);
  // An explicit but unsupported request downgrades (legal: the backend
  // never affects results).
  if (!kernel_isa_supported(kernel_isa::avx2)) {
    EXPECT_EQ(resolve_kernel_isa(kernel_isa::avx2), best);
  }
}

TEST(KernelIsa, UnsupportedForcedIsaWarnsOnceOnFallback) {
  // Forcing a backend the CPU lacks must still resolve (downgrade is legal)
  // but emit the one-shot kernel-isa-fallback diagnostic, so a benchmark
  // that silently measured the wrong ISA is visible in its output.  Every
  // build has at least one unsupported backend (neon on x86, the x86 ISAs
  // on aarch64).
  bool exercised = false;
  for (const kernel_isa isa : all_backends()) {
    if (kernel_isa_supported(isa)) continue;
    exercised = true;
    const std::string key = std::string("kernel-isa-fallback:") + kernel_isa_name(isa);
    const kernel_isa resolved = resolve_kernel_isa(isa);
    EXPECT_TRUE(kernel_isa_supported(resolved)) << kernel_isa_name(isa);
    EXPECT_NE(resolved, isa);
    EXPECT_TRUE(warned(key)) << key;
  }
  EXPECT_TRUE(exercised);
  // Supported requests resolve to themselves and never warn.
  EXPECT_EQ(resolve_kernel_isa(kernel_isa::scalar), kernel_isa::scalar);
  EXPECT_FALSE(warned("kernel-isa-fallback:scalar"));
}

TEST(Kernel, RejectsContractViolations) {
  const auto snap = make_snapshot(8);
  std::vector<std::uint32_t> row(8, 0);
  EXPECT_THROW(kernel_run(kernel_isa::scalar, 0, 8, snap.data(), row.data(), 10, 1),
               contract_error);
  EXPECT_THROW(
      kernel_run(kernel_isa::scalar, kernel_max_lanes + 1, 8, snap.data(), row.data(), 10, 1),
      contract_error);
  EXPECT_THROW(kernel_run(kernel_isa::scalar, 8, 0, snap.data(), row.data(), 10, 1),
               contract_error);
  EXPECT_THROW(static_cast<void>(shard_engine(shard_options{.lanes = 0})), contract_error);
  EXPECT_THROW(static_cast<void>(kernel_engine(kernel_options{.lanes = 65})), contract_error);
}

}  // namespace
