// Tests for the exact n = 2 birth-death chain and the super-exponential
// potential ladder (Section 6.1).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/analysis/exact_chain.hpp"
#include "core/potential/super_exp_ladder.hpp"
#include "test_support.hpp"

namespace {

using namespace nb;

// ---------------------------------------------------------------------------
// Exact two-bin chain.

TEST(TwoBinChain, DistributionSumsToOne) {
  const auto pi = two_bin_stationary_distribution([](load_t) { return 1.0; }, 64);
  EXPECT_NEAR(std::accumulate(pi.begin(), pi.end(), 0.0), 1.0, 1e-12);
}

TEST(TwoBinChain, TwoChoiceClosedForm) {
  // rho == 1: p_up = 1/4 for all d >= 1, p_down = 3/4; pi is geometric
  // with ratio 1/3 above d = 1 and pi(1) = (4/3) pi(0).
  const auto pi = two_bin_stationary_distribution([](load_t) { return 1.0; }, 64);
  EXPECT_NEAR(pi[1] / pi[0], 4.0 / 3.0, 1e-12);
  for (int d = 1; d < 10; ++d) {
    EXPECT_NEAR(pi[static_cast<std::size_t>(d) + 1] / pi[static_cast<std::size_t>(d)], 1.0 / 3.0,
                1e-12)
        << "d=" << d;
  }
}

TEST(TwoBinChain, OneChoiceDivergesAtTruncation) {
  // rho == 1/2 is an unbiased random walk: no stationary distribution;
  // the truncation guard must fire.
  EXPECT_THROW((void)two_bin_stationary_distribution([](load_t) { return 0.5; }, 64),
               contract_error);
}

TEST(TwoBinChain, GapIncreasesWithNoiseBand) {
  const double clean = two_bin_stationary_gap([](load_t) { return 1.0; });
  const double myopic2 = two_bin_stationary_gap([](load_t d) { return d <= 2 ? 0.5 : 1.0; });
  const double myopic8 = two_bin_stationary_gap([](load_t d) { return d <= 8 ? 0.5 : 1.0; });
  const double bounded8 = two_bin_stationary_gap([](load_t d) { return d <= 8 ? 0.0 : 1.0; });
  EXPECT_LT(clean, myopic2);
  EXPECT_LT(myopic2, myopic8);
  EXPECT_LT(myopic8, bounded8);
}

TEST(TwoBinChain, MatchesSimulatedTwoChoice) {
  // Exact stationary gap for n = 2 Two-Choice: E[d]/2 where
  // pi ~ {1, 4/3, 4/9, 4/27, ...} -> E[d] = (4/3) sum d 3^{-(d-1)} / Z.
  const double exact = two_bin_stationary_gap([](load_t) { return 1.0; });
  // Simulate and average the *time-averaged* gap over a long run.
  two_choice p(2);
  rng_t rng(1);
  for (int t = 0; t < 10000; ++t) p.step(rng);  // burn-in
  double acc = 0.0;
  const int kSteps = 400000;
  for (int t = 0; t < kSteps; ++t) {
    p.step(rng);
    acc += p.state().gap();
  }
  EXPECT_NEAR(acc / kSteps, exact, 0.02);
}

TEST(TwoBinChain, MatchesSimulatedGMyopic) {
  const load_t g = 4;
  const double exact = two_bin_stationary_gap([g](load_t d) { return d <= g ? 0.5 : 1.0; });
  g_myopic_comp p(2, g);
  rng_t rng(2);
  for (int t = 0; t < 20000; ++t) p.step(rng);
  double acc = 0.0;
  const int kSteps = 600000;
  for (int t = 0; t < kSteps; ++t) {
    p.step(rng);
    acc += p.state().gap();
  }
  EXPECT_NEAR(acc / kSteps, exact, 0.05 * exact + 0.05);
}

TEST(TwoBinChain, MatchesSimulatedGBounded) {
  const load_t g = 3;
  const double exact = two_bin_stationary_gap([g](load_t d) { return d <= g ? 0.0 : 1.0; });
  g_bounded p(2, g);
  rng_t rng(3);
  for (int t = 0; t < 20000; ++t) p.step(rng);
  double acc = 0.0;
  const int kSteps = 600000;
  for (int t = 0; t < kSteps; ++t) {
    p.step(rng);
    acc += p.state().gap();
  }
  EXPECT_NEAR(acc / kSteps, exact, 0.05 * exact + 0.05);
}

TEST(TwoBinChain, MatchesSimulatedSigmaNoisy) {
  const double sigma = 2.0;
  const rho_gaussian rho(sigma);
  const double exact =
      two_bin_stationary_gap([&rho](load_t d) { return rho(d); });
  sigma_noisy_load p(2, rho_gaussian(sigma));
  rng_t rng(4);
  for (int t = 0; t < 20000; ++t) p.step(rng);
  double acc = 0.0;
  const int kSteps = 600000;
  for (int t = 0; t < kSteps; ++t) {
    p.step(rng);
    acc += p.state().gap();
  }
  EXPECT_NEAR(acc / kSteps, exact, 0.05 * exact + 0.05);
}

// ---------------------------------------------------------------------------
// Super-exponential ladder.

TEST(Ladder, LevelsMatchSectionSixOne) {
  // n with log n = 16, g = 4 -> k = 2 and one intermediate level.
  const auto n = static_cast<bin_count>(std::lround(std::exp(16.0)));
  super_exp_ladder ladder(n, 4.0, 0.25, 2.0);
  EXPECT_EQ(ladder.k(), 2);
  EXPECT_EQ(ladder.levels(), 2);  // Phi_0 .. Phi_{k-1}
  // z_0 = c5 g = 8; z_1 = 8 + ceil(4/0.25) * 4 = 8 + 64.
  EXPECT_DOUBLE_EQ(ladder.level(0).offset, 8.0);
  EXPECT_DOUBLE_EQ(ladder.level(1).offset, 72.0);
  // phi_0 = alpha2; phi_1 = alpha2 log n g^{1-2} = 0.25 * 16 / 4 = 1.
  EXPECT_DOUBLE_EQ(ladder.level(0).smoothing, 0.25);
  // log n carries the rounding of n = lround(e^16), so compare loosely.
  EXPECT_NEAR(ladder.level(1).smoothing, 1.0, 1e-6);
  EXPECT_DOUBLE_EQ(ladder.final_offset(), 136.0);
}

TEST(Ladder, SmallerGMeansMoreLevels) {
  const bin_count n = 1 << 20;
  super_exp_ladder coarse(n, 8.0);
  super_exp_ladder fine(n, 1.5);
  EXPECT_LT(coarse.k(), fine.k());
  EXPECT_EQ(coarse.levels(), coarse.k());
}

TEST(Ladder, SmoothingIncreasesWithLevel) {
  super_exp_ladder ladder(1 << 16, 2.0);
  for (int j = 1; j < ladder.levels(); ++j) {
    EXPECT_GT(ladder.level(j).smoothing, ladder.level(j - 1).smoothing * 0.999) << "level " << j;
    EXPECT_GT(ladder.level(j).offset, ladder.level(j - 1).offset) << "level " << j;
  }
}

TEST(Ladder, EvaluateMatchesDirectPotential) {
  super_exp_ladder ladder(1 << 16, 2.0);
  const std::vector<double> y = {10.0, 2.0, -3.0, -9.0};
  const auto all = ladder.evaluate_all(y);
  ASSERT_EQ(static_cast<int>(all.size()), ladder.levels());
  for (int j = 0; j < ladder.levels(); ++j) {
    EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(j)], ladder.evaluate(j, y));
    EXPECT_GE(all[static_cast<std::size_t>(j)], static_cast<double>(y.size()));
  }
}

TEST(Ladder, AllLevelsLinearAtStationarity) {
  // The conclusion of the layered induction: at stationarity every Phi_j
  // is O(n) (here: within a small constant of n, since the gap sits far
  // below even z_0).
  const bin_count n = 4096;
  const load_t g = 3;
  super_exp_ladder ladder(n, g);
  g_bounded p(n, g);
  rng_t rng(5);
  for (step_count t = 0; t < 300LL * n; ++t) p.step(rng);
  const auto values = ladder.evaluate_all(p.state().normalized());
  for (int j = 0; j < ladder.levels(); ++j) {
    EXPECT_LE(values[static_cast<std::size_t>(j)], 3.0 * n) << "level " << j;
  }
  // And the gap is below the final offset, as Theorem 9.2's proof infers.
  EXPECT_LE(p.state().gap(), ladder.final_offset());
}

TEST(Ladder, RejectsDegenerateParameters) {
  EXPECT_THROW(super_exp_ladder(1, 4.0), contract_error);
  EXPECT_THROW(super_exp_ladder(1024, 1.0), contract_error);
  EXPECT_THROW(super_exp_ladder(1024, 4.0, 0.0), contract_error);
  EXPECT_THROW(super_exp_ladder(1024, 4.0, 0.25, -1.0), contract_error);
}

}  // namespace
